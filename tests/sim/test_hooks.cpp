#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "sim/tool.hpp"

namespace cham::sim {
namespace {

/// Records every hook invocation.
class RecordingTool : public Tool {
 public:
  struct Entry {
    Rank rank;
    Op op;
    bool pre;
    bool marker;
  };

  void on_init(Rank rank, Pmpi&) override { init_ranks.push_back(rank); }
  void on_pre(Rank rank, const CallInfo& info, Pmpi&) override {
    entries.push_back({rank, info.op, true, info.is_marker});
  }
  void on_post(Rank rank, const CallInfo& info, Pmpi&) override {
    entries.push_back({rank, info.op, false, info.is_marker});
  }

  std::vector<Rank> init_ranks;
  std::vector<Entry> entries;

  [[nodiscard]] std::size_t count(Op op, bool pre) const {
    std::size_t n = 0;
    for (const auto& e : entries)
      if (e.op == op && e.pre == pre) ++n;
    return n;
  }
};

TEST(Hooks, InitAndFinalizeFirePerRank) {
  Engine engine({.nprocs = 3});
  RecordingTool tool;
  engine.set_tool(&tool);
  engine.run([](Mpi&) {});
  EXPECT_EQ(tool.init_ranks.size(), 3u);
  EXPECT_EQ(tool.count(Op::kInit, true), 3u);
  EXPECT_EQ(tool.count(Op::kInit, false), 3u);
  EXPECT_EQ(tool.count(Op::kFinalize, true), 3u);
  EXPECT_EQ(tool.count(Op::kFinalize, false), 3u);
}

TEST(Hooks, PreAndPostWrapEveryTracedCall) {
  Engine engine({.nprocs = 2});
  RecordingTool tool;
  engine.set_tool(&tool);
  engine.run([](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(1, 16);
    } else {
      mpi.recv(0, 16);
    }
    mpi.barrier();
  });
  EXPECT_EQ(tool.count(Op::kSend, true), 1u);
  EXPECT_EQ(tool.count(Op::kSend, false), 1u);
  EXPECT_EQ(tool.count(Op::kRecv, true), 1u);
  EXPECT_EQ(tool.count(Op::kRecv, false), 1u);
  EXPECT_EQ(tool.count(Op::kBarrier, true), 2u);
  EXPECT_EQ(tool.count(Op::kBarrier, false), 2u);
}

TEST(Hooks, MarkerFlagVisibleOnlyOnMarkerBarrier) {
  Engine engine({.nprocs = 2});
  RecordingTool tool;
  engine.set_tool(&tool);
  engine.run([](Mpi& mpi) {
    mpi.barrier();
    mpi.marker();
  });
  std::size_t marked = 0, unmarked = 0;
  for (const auto& e : tool.entries) {
    if (e.op != Op::kBarrier) continue;
    (e.marker ? marked : unmarked) += 1;
  }
  EXPECT_EQ(marked, 4u);    // pre+post on both ranks
  EXPECT_EQ(unmarked, 4u);
}

TEST(Hooks, ToolTrafficInvisibleToHooks) {
  // A tool that performs Pmpi communication inside hooks must not trigger
  // further hooks (the PMPI recursion guard the paper's design relies on).
  class ChattyTool : public Tool {
   public:
    void on_post(Rank /*rank*/, const CallInfo& info, Pmpi& pmpi) override {
      ++posts;
      if (info.op != Op::kBarrier) return;
      // A vote like Algorithm 1's Reduce+Bcast.
      const std::uint64_t sum = pmpi.reduce_u64(1, ReduceOp::kSum, 0);
      const std::uint64_t all = pmpi.bcast_u64(sum, 0);
      if (pmpi.rank() == 0) {
        EXPECT_EQ(all, static_cast<std::uint64_t>(pmpi.size()));
      }
    }
    int posts = 0;
  };
  Engine engine({.nprocs = 4});
  ChattyTool tool;
  engine.set_tool(&tool);
  engine.run([](Mpi& mpi) { mpi.barrier(); });
  // init + barrier + finalize per rank, nothing from the tool's own traffic.
  EXPECT_EQ(tool.posts, 3 * 4);
}

TEST(Hooks, WildcardRecvReportsMatchedPeerInPost) {
  class PeerTool : public Tool {
   public:
    void on_post(Rank, const CallInfo& info, Pmpi&) override {
      if (info.op == Op::kRecv) matched = info.matched_peer;
    }
    Rank matched = -42;
  };
  Engine engine({.nprocs = 2});
  PeerTool tool;
  engine.set_tool(&tool);
  engine.run([](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.recv(kAnySource, 8);
    } else {
      mpi.send(0, 8);
    }
  });
  EXPECT_EQ(tool.matched, 1);
}

TEST(Hooks, NoToolMeansNoDispatchAndNoCrash) {
  Engine engine({.nprocs = 2});
  EXPECT_NO_THROW(engine.run([](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(1, 4);
    } else {
      mpi.recv(0, 4);
    }
  }));
}

}  // namespace
}  // namespace cham::sim
