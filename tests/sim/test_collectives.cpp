#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/mpi.hpp"

namespace cham::sim {
namespace {

TEST(Collectives, BarrierSynchronizesVirtualClocks) {
  Engine engine({.nprocs = 4});
  std::vector<double> after(4);
  engine.run([&](Mpi& mpi) {
    mpi.compute(static_cast<double>(mpi.rank()));  // skewed clocks
    mpi.barrier();
    after[static_cast<std::size_t>(mpi.rank())] = mpi.vtime();
  });
  for (int r = 1; r < 4; ++r) EXPECT_DOUBLE_EQ(after[0], after[static_cast<std::size_t>(r)]);
  EXPECT_GT(after[0], 3.0);  // slowest rank dominates
}

TEST(Collectives, ReduceSumsAtRoot) {
  Engine engine({.nprocs = 8});
  std::uint64_t at_root = 0;
  engine.run([&](Mpi& mpi) {
    const std::uint64_t v =
        mpi.pmpi().reduce_u64(static_cast<std::uint64_t>(mpi.rank()),
                              ReduceOp::kSum, 0);
    if (mpi.rank() == 0) at_root = v;
  });
  EXPECT_EQ(at_root, 28u);  // 0+1+...+7
}

TEST(Collectives, ReduceMaxMin) {
  Engine engine({.nprocs = 5});
  std::uint64_t got_max = 0, got_min = 99;
  engine.run([&](Mpi& mpi) {
    const auto v = static_cast<std::uint64_t>(mpi.rank() * 10 + 1);
    const std::uint64_t mx = mpi.pmpi().reduce_u64(v, ReduceOp::kMax, 0);
    const std::uint64_t mn = mpi.pmpi().reduce_u64(v, ReduceOp::kMin, 0);
    if (mpi.rank() == 0) {
      got_max = mx;
      got_min = mn;
    }
  });
  EXPECT_EQ(got_max, 41u);
  EXPECT_EQ(got_min, 1u);
}

TEST(Collectives, AllreduceVisibleEverywhere) {
  Engine engine({.nprocs = 6});
  std::vector<std::uint64_t> results(6);
  engine.run([&](Mpi& mpi) {
    results[static_cast<std::size_t>(mpi.rank())] =
        mpi.pmpi().allreduce_u64(1, ReduceOp::kSum);
  });
  for (auto v : results) EXPECT_EQ(v, 6u);
}

TEST(Collectives, BcastFromNonzeroRoot) {
  Engine engine({.nprocs = 4});
  std::vector<std::uint64_t> results(4);
  engine.run([&](Mpi& mpi) {
    const std::uint64_t mine = mpi.rank() == 2 ? 777 : 0;
    results[static_cast<std::size_t>(mpi.rank())] =
        mpi.pmpi().bcast_u64(mine, 2);
  });
  for (auto v : results) EXPECT_EQ(v, 777u);
}

TEST(Collectives, BcastBytesCopiesBlob) {
  Engine engine({.nprocs = 3});
  std::vector<std::vector<std::uint8_t>> results(3);
  engine.run([&](Mpi& mpi) {
    std::vector<std::uint8_t> data;
    if (mpi.rank() == 0) data = {5, 6, 7};
    results[static_cast<std::size_t>(mpi.rank())] =
        mpi.pmpi().bcast_bytes(std::move(data), 0);
  });
  for (const auto& v : results) {
    EXPECT_EQ(v, (std::vector<std::uint8_t>{5, 6, 7}));
  }
}

TEST(Collectives, GatherCollectsPerRankBlobs) {
  Engine engine({.nprocs = 4});
  std::vector<std::vector<std::uint8_t>> at_root;
  engine.run([&](Mpi& mpi) {
    auto out = mpi.pmpi().gather_bytes(
        {static_cast<std::uint8_t>(mpi.rank() * 2)}, 0);
    if (mpi.rank() == 0) at_root = std::move(out);
  });
  ASSERT_EQ(at_root.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    ASSERT_EQ(at_root[static_cast<std::size_t>(r)].size(), 1u);
    EXPECT_EQ(at_root[static_cast<std::size_t>(r)][0], r * 2);
  }
}

TEST(Collectives, SequentialCollectivesKeepSlotsSeparate) {
  // Two barriers back to back must be two distinct rendezvous.
  Engine engine({.nprocs = 3});
  engine.run([&](Mpi& mpi) {
    mpi.barrier();
    mpi.barrier();
    mpi.barrier();
  });
  EXPECT_EQ(engine.collectives_run(), 3u);
}

TEST(Collectives, MarkerUsesDistinctCommunicator) {
  // Marker barriers and world barriers must not rendezvous together even
  // when interleaved — distinct communicators carry distinct slot counters.
  Engine engine({.nprocs = 2});
  engine.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.marker();
      mpi.barrier();
    } else {
      mpi.marker();
      mpi.barrier();
    }
  });
  EXPECT_EQ(engine.collectives_run(), 2u);
}

TEST(Collectives, SkeletonCollectivesAdvanceClock) {
  Engine engine({.nprocs = 4});
  std::vector<double> t(4);
  engine.run([&](Mpi& mpi) {
    mpi.bcast(1 << 20, 0);
    mpi.allreduce(64);
    mpi.gather(4096, 0);
    mpi.allgather(512);
    mpi.alltoall(256);
    mpi.scatter(2048, 0);
    mpi.reduce(64, 0);
    t[static_cast<std::size_t>(mpi.rank())] = mpi.vtime();
  });
  EXPECT_GT(t[0], 0.0);
  for (int r = 1; r < 4; ++r) EXPECT_DOUBLE_EQ(t[0], t[static_cast<std::size_t>(r)]);
  EXPECT_EQ(engine.collectives_run(), 7u);
}

TEST(Collectives, LargeWorldBarrier) {
  Engine engine({.nprocs = 512});
  engine.run([](Mpi& mpi) { mpi.barrier(); });
  EXPECT_EQ(engine.collectives_run(), 1u);
}

}  // namespace
}  // namespace cham::sim
