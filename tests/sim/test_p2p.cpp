#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/mpi.hpp"

namespace cham::sim {
namespace {

std::vector<std::uint8_t> blob(std::initializer_list<std::uint8_t> b) {
  return std::vector<std::uint8_t>(b);
}

TEST(P2P, BlockingSendRecvDeliversPayload) {
  Engine engine({.nprocs = 2});
  std::vector<std::uint8_t> got;
  engine.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(1, 8, /*tag=*/7, blob({1, 2, 3}));
    } else {
      RecvStatus st = mpi.recv(0, 8, 7, &got);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
    }
  });
  EXPECT_EQ(got, blob({1, 2, 3}));
}

TEST(P2P, RecvBeforeSend) {
  // Receiver posts first and blocks; sender arrives later.
  Engine engine({.nprocs = 2});
  bool received = false;
  engine.run([&](Mpi& mpi) {
    if (mpi.rank() == 1) {
      mpi.recv(0, 4, 3);
      received = true;
    } else {
      mpi.compute(1.0);  // delay the send
      mpi.send(1, 4, 3);
    }
  });
  EXPECT_TRUE(received);
}

TEST(P2P, TagMatchingIsSelective) {
  Engine engine({.nprocs = 2});
  std::vector<int> arrival_order;
  engine.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(1, 4, /*tag=*/10);
      mpi.send(1, 4, /*tag=*/20);
    } else {
      // Receive in reverse tag order: matching must honor tags, not FIFO.
      RecvStatus st1 = mpi.recv(0, 4, 20);
      arrival_order.push_back(st1.tag);
      RecvStatus st2 = mpi.recv(0, 4, 10);
      arrival_order.push_back(st2.tag);
    }
  });
  const std::vector<int> expected = {20, 10};
  EXPECT_EQ(arrival_order, expected);
}

TEST(P2P, AnySourceMatchesFirstArrival) {
  Engine engine({.nprocs = 3});
  std::vector<Rank> sources;
  engine.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        RecvStatus st = mpi.recv(kAnySource, 4, kAnyTag);
        sources.push_back(st.source);
      }
    } else {
      mpi.send(0, 4, mpi.rank());
    }
  });
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_NE(sources[0], sources[1]);
}

TEST(P2P, FifoOrderPreservedPerSenderAndTag) {
  Engine engine({.nprocs = 2});
  std::vector<std::uint8_t> order;
  engine.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      for (std::uint8_t i = 0; i < 5; ++i) mpi.send(1, 1, 0, {i});
    } else {
      for (int i = 0; i < 5; ++i) {
        std::vector<std::uint8_t> payload;
        mpi.recv(0, 1, 0, &payload);
        ASSERT_EQ(payload.size(), 1u);
        order.push_back(payload[0]);
      }
    }
  });
  const std::vector<std::uint8_t> expected = {0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);
}

TEST(P2P, NonblockingExchangeCompletes) {
  // Classic halo exchange: both ranks Irecv, Isend, Waitall.
  Engine engine({.nprocs = 2});
  engine.run([&](Mpi& mpi) {
    const Rank peer = 1 - mpi.rank();
    std::vector<Request> reqs;
    reqs.push_back(mpi.irecv(peer, 64, 5));
    reqs.push_back(mpi.isend(peer, 64, 5));
    mpi.waitall(reqs);
  });
  EXPECT_EQ(engine.messages_sent(), 2u);
}

TEST(P2P, WaitReturnsMatchedSource) {
  Engine engine({.nprocs = 2});
  Rank matched = -99;
  engine.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      Request r = mpi.irecv(kAnySource, 4);
      RecvStatus st = mpi.wait(r);
      matched = st.source;
    } else {
      mpi.send(0, 4);
    }
  });
  EXPECT_EQ(matched, 1);
}

TEST(P2P, UnmatchedRecvDeadlocks) {
  Engine engine({.nprocs = 2});
  EXPECT_THROW(engine.run([](Mpi& mpi) {
    if (mpi.rank() == 0) mpi.recv(1, 4, 99);  // nobody sends tag 99
  }),
               std::runtime_error);
}

TEST(P2P, SendToInvalidRankRejected) {
  Engine engine({.nprocs = 2});
  EXPECT_ANY_THROW(engine.run([](Mpi& mpi) {
    if (mpi.rank() == 0) mpi.send(5, 4);
  }));
}

TEST(P2P, ByteAccountingTracksDeclaredSizes) {
  Engine engine({.nprocs = 2});
  engine.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(1, 1000);
      mpi.send(1, 24);
    } else {
      mpi.recv(0, 1000);
      mpi.recv(0, 24);
    }
  });
  EXPECT_EQ(engine.messages_sent(), 2u);
  EXPECT_EQ(engine.bytes_sent(), 1024u);
}

TEST(P2P, RingPassesTokenAroundManyRanks) {
  const int p = 64;
  Engine engine({.nprocs = p});
  int hops = 0;
  engine.run([&](Mpi& mpi) {
    const Rank next = (mpi.rank() + 1) % p;
    const Rank prev = (mpi.rank() + p - 1) % p;
    if (mpi.rank() == 0) {
      mpi.send(next, 8);
      mpi.recv(prev, 8);
      ++hops;
    } else {
      mpi.recv(prev, 8);
      ++hops;
      mpi.send(next, 8);
    }
  });
  EXPECT_EQ(hops, p);
  EXPECT_EQ(engine.messages_sent(), static_cast<std::uint64_t>(p));
}

TEST(P2P, ToolAndWorldTrafficDoNotMix) {
  // A tool-comm message must not satisfy a world-comm receive.
  Engine engine({.nprocs = 2});
  int world_payload = -1;
  engine.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.pmpi().send_bytes(1, 0, {9});  // tool comm
      mpi.send(1, 1, 0, {42});           // world comm
    } else {
      std::vector<std::uint8_t> payload;
      mpi.recv(0, 1, 0, &payload);  // world recv sees only the world message
      ASSERT_EQ(payload.size(), 1u);
      world_payload = payload[0];
      auto tool_payload = mpi.pmpi().recv_bytes(0, 0);
      ASSERT_EQ(tool_payload.size(), 1u);
      EXPECT_EQ(tool_payload[0], 9);
    }
  });
  EXPECT_EQ(world_payload, 42);
}

}  // namespace
}  // namespace cham::sim
