// Fault injection runtime: plan parsing, deterministic crash/drop/slowdown
// delivery, and the engine's liveness semantics (sends to dead ranks fail
// with a status, receives from dead sources time out, collectives route
// around dead subtrees).
#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "sim/tool.hpp"

namespace cham::sim {
namespace {

TEST(FaultPlan, ParsesTextForm) {
  const FaultPlan plan = FaultPlan::parse(
      "# full grammar, one spec per line or ';'-separated\n"
      "crash rank=3 marker=2\n"
      "crash rank=5 call=17; drop src=1 dest=2 prob=0.5\n"
      "slow rank=0 call=5 span=10 secs=1e-4\n",
      42);
  ASSERT_EQ(plan.faults.size(), 4u);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.faults[0].rank, 3);
  EXPECT_EQ(plan.faults[0].at_marker, 2u);
  EXPECT_EQ(plan.faults[1].at_call, 17u);
  EXPECT_EQ(plan.faults[2].kind, FaultKind::kDrop);
  EXPECT_EQ(plan.faults[2].rank, 1);
  EXPECT_EQ(plan.faults[2].dest, 2);
  EXPECT_DOUBLE_EQ(plan.faults[2].probability, 0.5);
  EXPECT_EQ(plan.faults[3].kind, FaultKind::kSlowdown);
  EXPECT_EQ(plan.faults[3].span_calls, 10u);
  EXPECT_DOUBLE_EQ(plan.faults[3].slow_seconds, 1e-4);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("explode rank=1 call=2"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash rank=x call=1"), std::invalid_argument);
}

TEST(FaultInjector, CrashStopsRankAndCollectivesRouteAround) {
  FaultInjector injector(FaultPlan::parse("crash rank=2 call=3"));
  Engine engine({.nprocs = 4});
  engine.set_fault_injector(&injector);
  std::array<int, 4> iters{};
  engine.run([&](Mpi& mpi) {
    for (int i = 0; i < 10; ++i) {
      mpi.barrier();
      ++iters[static_cast<std::size_t>(mpi.rank())];
    }
  });
  EXPECT_EQ(injector.crashes_injected(), 1u);
  EXPECT_TRUE(engine.is_failed(2));
  EXPECT_EQ(engine.failed_count(), 1);
  EXPECT_EQ(engine.live_ranks(), (std::vector<Rank>{0, 1, 3}));
  EXPECT_EQ(engine.failed_ranks(), (std::vector<Rank>{2}));
  // Traced calls count MPI_Init as call 1: the victim completed one
  // barrier and died entering its second; survivors ran to the end.
  EXPECT_EQ(iters[2], 1);
  for (const Rank r : {0, 1, 3}) {
    EXPECT_EQ(iters[static_cast<std::size_t>(r)], 10) << "rank " << r;
  }
}

TEST(FaultInjector, SendToDeadRankReportsPeerFailure) {
  FaultInjector injector(FaultPlan::parse("crash rank=1 call=1"));
  Engine engine({.nprocs = 2});
  engine.set_fault_injector(&injector);
  CommResult result = CommResult::kOk;
  engine.run([&](Mpi& mpi) {
    mpi.barrier();  // completes among survivors once rank 1 is dead
    if (mpi.rank() == 0) result = mpi.send(1, 64);
  });
  EXPECT_EQ(result, CommResult::kPeerFailed);
  EXPECT_EQ(engine.messages_lost(), 1u);
}

TEST(FaultInjector, RecvFromDeadRankTimesOut) {
  FaultInjector injector(FaultPlan::parse("crash rank=1 call=1"));
  Engine engine({.nprocs = 2});
  engine.set_fault_injector(&injector);
  RecvStatus status;
  double after_recv = 0.0;
  engine.run([&](Mpi& mpi) {
    mpi.barrier();
    if (mpi.rank() == 0) {
      status = mpi.recv(1, 64);
      after_recv = mpi.vtime();
    }
  });
  EXPECT_TRUE(status.peer_failed);
  // The failed receive charges the full retry/backoff budget.
  EXPECT_GE(after_recv, engine.options().ft.recv_fail_delay());
}

TEST(FaultInjector, DropsExhaustRetryBudget) {
  FaultInjector injector(FaultPlan::parse("drop src=0 dest=1 prob=1"));
  Engine engine({.nprocs = 2});
  engine.set_fault_injector(&injector);
  CommResult result = CommResult::kOk;
  engine.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) result = mpi.send(1, 32);
  });
  EXPECT_EQ(result, CommResult::kLost);
  EXPECT_EQ(engine.messages_lost(), 1u);
  EXPECT_GE(engine.retransmissions(),
            static_cast<std::uint64_t>(engine.options().ft.retries));
  EXPECT_GT(injector.drops_injected(), 0u);
  EXPECT_FALSE(engine.is_failed(1));  // drops do not kill ranks
}

TEST(FaultInjector, DropDecisionsAreSeedDeterministic) {
  const auto roll = [](std::uint64_t seed) {
    FaultInjector injector(
        FaultPlan::parse("drop src=0 dest=1 prob=0.5", seed));
    std::vector<bool> rolls;
    rolls.reserve(64);
    for (int i = 0; i < 64; ++i) rolls.push_back(injector.drop_message(0, 1));
    return rolls;
  };
  EXPECT_EQ(roll(7), roll(7));
  EXPECT_NE(roll(7), roll(8));
}

TEST(FaultInjector, PartialDropsAreRetriedTransparently) {
  // With drop probability < 1 most messages arrive after bounded retry;
  // the few that exhaust the budget are reported kLost, every outcome is
  // deterministic, and the engine's counters reconcile exactly.
  const auto run_once = [] {
    FaultInjector injector(FaultPlan::parse("drop src=0 dest=1 prob=0.4", 9));
    Engine engine({.nprocs = 2});
    engine.set_fault_injector(&injector);
    std::vector<CommResult> results;
    engine.run([&](Mpi& mpi) {
      if (mpi.rank() != 0) return;
      for (int i = 0; i < 20; ++i) results.push_back(mpi.send(1, 8, i));
    });
    std::size_t delivered = 0;
    for (const CommResult r : results)
      if (r == CommResult::kOk) ++delivered;
    EXPECT_EQ(delivered, engine.unexpected_messages(kCommWorld, 1).size());
    EXPECT_EQ(delivered + engine.messages_lost(), results.size());
    return std::tuple(results, engine.retransmissions(),
                      engine.messages_lost());
  };
  const auto first = run_once();
  EXPECT_GT(std::get<1>(first), 0u);  // some attempts were retried
  EXPECT_EQ(first, run_once());       // ... identically on every run
}

TEST(FaultInjector, SlowdownAddsVirtualTime) {
  const auto vtime_of = [](const char* plan) {
    FaultInjector injector(FaultPlan::parse(plan));
    Engine engine({.nprocs = 1});
    engine.set_fault_injector(&injector);
    engine.run([](Mpi& mpi) {
      for (int i = 0; i < 10; ++i) mpi.barrier();
    });
    return engine.vtime(0);
  };
  const double base = vtime_of("");
  const double slowed = vtime_of("slow rank=0 call=1 span=5 secs=0.001");
  EXPECT_NEAR(slowed - base, 5 * 0.001, 1e-9);
}

TEST(FaultInjector, CrashAtToolOpKillsMidProtocol) {
  // A tool-side exchange after every barrier; rank 0 dies entering its
  // 2nd tool-comm operation, so rank 1's second receive sees the failure.
  class ChattyTool : public Tool {
   public:
    void on_post(Rank rank, const CallInfo& info, Pmpi& pmpi) override {
      if (info.op != Op::kBarrier) return;
      if (rank == 0) {
        pmpi.send_bytes(1, 99, std::vector<std::uint8_t>{1, 2, 3});
      } else {
        statuses.emplace_back();
        pmpi.recv_bytes(0, 99, &statuses.back());
      }
    }
    std::vector<RecvStatus> statuses;
  };

  FaultInjector injector(FaultPlan::parse("crash rank=0 toolop=2"));
  Engine engine({.nprocs = 2});
  engine.set_fault_injector(&injector);
  ChattyTool tool;
  engine.set_tool(&tool);
  engine.run([](Mpi& mpi) {
    mpi.barrier();
    mpi.barrier();
  });
  EXPECT_TRUE(engine.is_failed(0));
  ASSERT_EQ(tool.statuses.size(), 2u);
  EXPECT_FALSE(tool.statuses[0].peer_failed);
  EXPECT_TRUE(tool.statuses[1].peer_failed);
}

TEST(FaultInjector, NoInjectorMeansNoFaultPaths) {
  Engine engine({.nprocs = 2});
  EXPECT_FALSE(engine.fault_injection_enabled());
  engine.run([](Mpi& mpi) { mpi.barrier(); });
  EXPECT_EQ(engine.failed_count(), 0);
  EXPECT_EQ(engine.messages_lost(), 0u);
  EXPECT_EQ(engine.retransmissions(), 0u);
}

}  // namespace
}  // namespace cham::sim
