#include "sim/fiber.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/prof/profiler.hpp"

namespace cham::sim {
namespace {

TEST(Fiber, RunsAllToCompletion) {
  FiberScheduler sched;
  std::vector<int> done;
  for (int i = 0; i < 5; ++i)
    sched.spawn([&done, i] { done.push_back(i); }, 64 * 1024);
  sched.run();
  EXPECT_EQ(done.size(), 5u);
  EXPECT_EQ(sched.finished_count(), 5u);
}

TEST(Fiber, RoundRobinIsDeterministicFifo) {
  FiberScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sched.spawn(
        [&sched, &order, i] {
          order.push_back(i);
          sched.yield();
          order.push_back(i + 10);
        },
        64 * 1024);
  }
  sched.run();
  const std::vector<int> expected = {0, 1, 2, 10, 11, 12};
  EXPECT_EQ(order, expected);
}

TEST(Fiber, ProfilerScopeChainsStayFiberLocal) {
  // Regression: PhaseScopes live on fiber stacks and straddle yields, so
  // each fiber's open-scope chain must be parked at the dispatch boundary.
  // Before the suspend/resume handoff, fiber 1's scope would chain onto
  // fiber 0's stack-resident scope and leave() would write through a
  // dangling parent pointer once fiber 0 unwound.
  obs::prof::Profiler prof;
  obs::prof::set_profiler(&prof);
  FiberScheduler sched;
  for (int i = 0; i < 4; ++i) {
    sched.spawn(
        [&sched] {
          const obs::prof::PhaseScope outer(obs::prof::Phase::kClustering);
          sched.yield();
          {
            const obs::prof::PhaseScope inner(obs::prof::Phase::kFold);
            sched.yield();
          }
          sched.yield();
        },
        64 * 1024);
  }
  sched.run();
  obs::prof::set_profiler(nullptr);
  const obs::prof::ShardSlot& slot = prof.slot(0);
  const auto at = [&](obs::prof::Phase p) {
    return slot.phase_seconds[static_cast<std::size_t>(p)];
  };
  EXPECT_GT(at(obs::prof::Phase::kFold), 0.0);
  EXPECT_GE(at(obs::prof::Phase::kClustering), 0.0);
  EXPECT_EQ(slot.cur_phase.load(),
            static_cast<std::uint8_t>(obs::prof::Phase::kIdle));
}

TEST(Fiber, BlockUnblockHandshake) {
  FiberScheduler sched;
  std::vector<std::string> events;
  // Fiber 0 blocks; fiber 1 unblocks it.
  sched.spawn(
      [&] {
        events.push_back("a-before");
        sched.block("waiting for b");
        events.push_back("a-after");
      },
      64 * 1024);
  sched.spawn(
      [&] {
        events.push_back("b");
        sched.unblock(0);
      },
      64 * 1024);
  sched.run();
  const std::vector<std::string> expected = {"a-before", "b", "a-after"};
  EXPECT_EQ(events, expected);
}

TEST(Fiber, UnblockOfReadyFiberIsNoop) {
  FiberScheduler sched;
  sched.spawn([&sched] { sched.unblock(1); }, 64 * 1024);
  sched.spawn([] {}, 64 * 1024);
  EXPECT_NO_THROW(sched.run());
}

TEST(Fiber, DeadlockDetected) {
  FiberScheduler sched;
  sched.spawn([&sched] { sched.block("forever"); }, 64 * 1024);
  EXPECT_THROW(sched.run(), std::runtime_error);
}

TEST(Fiber, DeadlockReportNamesBlockedFiber) {
  FiberScheduler sched;
  sched.spawn([&sched] { sched.block("waiting for godot"); }, 64 * 1024);
  try {
    sched.run();
    FAIL() << "expected deadlock";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("waiting for godot"),
              std::string::npos);
  }
}

TEST(Fiber, ExceptionPropagatesToRun) {
  FiberScheduler sched;
  sched.spawn([] { throw std::logic_error("boom"); }, 64 * 1024);
  sched.spawn([] {}, 64 * 1024);
  EXPECT_THROW(sched.run(), std::logic_error);
}

TEST(Fiber, CurrentIdInsideFiber) {
  FiberScheduler sched;
  std::vector<int> ids;
  for (int i = 0; i < 4; ++i)
    sched.spawn([&] { ids.push_back(sched.current()); }, 64 * 1024);
  sched.run();
  const std::vector<int> expected = {0, 1, 2, 3};
  EXPECT_EQ(ids, expected);
  EXPECT_EQ(sched.current(), -1);
}

TEST(Fiber, ManyFibersScale) {
  FiberScheduler sched;
  int counter = 0;
  const int n = 1024;
  for (int i = 0; i < n; ++i)
    sched.spawn(
        [&sched, &counter] {
          ++counter;
          sched.yield();
          ++counter;
        },
        64 * 1024);
  sched.run();
  EXPECT_EQ(counter, 2 * n);
  EXPECT_GE(sched.switch_count(), static_cast<std::uint64_t>(2 * n));
}

TEST(Fiber, NestedSpawnRejected) {
  FiberScheduler sched;
  sched.spawn(
      [&sched] {
        EXPECT_ANY_THROW(sched.spawn([] {}, 64 * 1024));
      },
      64 * 1024);
  sched.run();
}

}  // namespace
}  // namespace cham::sim
