// ChamShard: the sharded multi-threaded fiber scheduler and its engine
// integration (sim/shard.hpp, EngineOptions::threads).
//
// Two layers of coverage:
//   - ShardedScheduler unit tests: fibers partitioned across real worker
//     threads all run to completion, the wake-token protocol turns an
//     unblock() racing a block() into an immediate return instead of a
//     lost wakeup, and a genuine deadlock still unwinds every fiber stack
//     before DeadlockError propagates.
//   - Engine determinism matrix: the protocol output of a (workload, P,
//     seed) triple — per-epoch digests, the final cluster table bytes, and
//     the --perf counter totals — must be identical at every thread count.
//     This is the contract tools/check.sh and `chamtrace race` audit at
//     larger scale; docs/ENGINE.md explains why it holds.
// Build with -DCHAM_TSAN=ON to validate this slice under ThreadSanitizer
// (the tools/check.sh TSan leg runs `ctest -L "race|engine"`).
#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/chameleon.hpp"
#include "obs/prof/profiler.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/mpi.hpp"
#include "trace/callsite.hpp"
#include "trace/perf.hpp"
#include "workloads/workload.hpp"

namespace cham {
namespace {

constexpr std::size_t kStack = 64 * 1024;

TEST(ShardedScheduler, RunsEveryFiberAcrossShards) {
  sim::ShardedScheduler sched(4);
  EXPECT_EQ(sched.shards(), 4);
  std::atomic<int> total{0};
  constexpr int kFibers = 16;
  for (int i = 0; i < kFibers; ++i)
    sched.spawn(
        [&sched, &total] {
          for (int y = 0; y < 3; ++y) sched.yield();
          total.fetch_add(1, std::memory_order_relaxed);
        },
        kStack);
  EXPECT_EQ(sched.fiber_count(), static_cast<std::size_t>(kFibers));
  sched.run();
  EXPECT_EQ(total.load(), kFibers);
  EXPECT_EQ(sched.finished_count(), static_cast<std::size_t>(kFibers));
  // Three yields each means at least four barrier rounds ran.
  EXPECT_GE(sched.epochs(), 4u);
}

TEST(ShardedScheduler, ShardCountClampsToOne) {
  sim::ShardedScheduler sched(1);
  EXPECT_EQ(sched.shards(), 1);
  bool ran = false;
  sched.spawn([&ran] { ran = true; }, kStack);
  sched.run();
  EXPECT_TRUE(ran);
}

TEST(ShardedScheduler, ProfilerScopeChainsStayFiberLocal) {
  // Regression: PhaseScopes on fiber stacks straddle yields, so each
  // worker must park the outgoing fiber's scope chain at the dispatch
  // boundary instead of letting the next fiber chain onto it (dangling
  // parent writes once the first fiber unwinds). Multiple fibers per
  // shard make every epoch interleave open scopes on each worker.
  obs::prof::Profiler prof;
  obs::prof::set_profiler(&prof);
  {
    sim::ShardedScheduler sched(2);
    for (int i = 0; i < 8; ++i)
      sched.spawn(
          [&sched] {
            const obs::prof::PhaseScope outer(obs::prof::Phase::kClustering);
            sched.yield();
            {
              const obs::prof::PhaseScope inner(obs::prof::Phase::kFold);
              sched.yield();
            }
            sched.yield();
          },
          kStack);
    sched.run();
  }
  obs::prof::set_profiler(nullptr);
  double fold = 0.0;
  for (int s = 0; s < 2; ++s)
    fold += prof.slot(s)
                .phase_seconds[static_cast<std::size_t>(obs::prof::Phase::kFold)];
  EXPECT_GT(fold, 0.0);
}

TEST(ShardedScheduler, WakeTokenPreventsLostWakeup) {
  // Fiber 0 (shard 0) wakes fiber 1 (shard 1); both run concurrently in
  // the same epoch, so the unblock may land before, during, or after the
  // block. Every interleaving must complete: if the wake arrives early the
  // token makes the next block() return immediately, if it arrives late
  // the fiber is moved back to its shard's ready queue. A lost wakeup
  // would deadlock (and fail the test with DeadlockError).
  sim::ShardedScheduler sched(2);
  std::atomic<bool> flag{false};
  sched.spawn(
      [&sched, &flag] {
        flag.store(true, std::memory_order_release);
        sched.unblock(1);
      },
      kStack);
  sched.spawn(
      [&sched, &flag] {
        while (!flag.load(std::memory_order_acquire))
          sched.block("waiting for flag");
      },
      kStack);
  sched.run();
  EXPECT_EQ(sched.finished_count(), 2u);
}

TEST(ShardedScheduler, DeadlockUnwindsStacksBeforeThrowing) {
  sim::ShardedScheduler sched(2);
  std::atomic<bool> unwound{false};
  struct Guard {
    std::atomic<bool>* flag;
    ~Guard() { flag->store(true, std::memory_order_release); }
  };
  sched.spawn(
      [&sched, &unwound] {
        const Guard g{&unwound};
        sched.block("never woken");  // no one will unblock fiber 0
      },
      kStack);
  sched.spawn([] {}, kStack);
  EXPECT_THROW(sched.run(), sim::DeadlockError);
  EXPECT_TRUE(unwound.load(std::memory_order_acquire));
}

TEST(ShardedScheduler, BlockNoteVisibleToStallHandler) {
  sim::ShardedScheduler sched(2);
  std::string seen;
  sched.spawn([&sched] { sched.block("waiting on message"); }, kStack);
  sched.set_stall_handler([&sched, &seen] {
    if (!seen.empty()) return false;
    seen = sched.block_note(0);
    sched.unblock(0);
    return true;
  });
  sched.run();
  EXPECT_EQ(seen, "waiting on message");
}

// --- engine determinism matrix ---------------------------------------------

struct RunOutput {
  std::vector<std::uint64_t> digests;
  std::vector<std::uint8_t> table;
  trace::PerfCounters perf;
};

RunOutput run_workload(const std::string& name, int procs, int steps,
                       std::uint64_t seed, int threads) {
  const workloads::WorkloadInfo* info = workloads::find_workload(name);
  EXPECT_NE(info, nullptr) << name;
  sim::Engine engine(sim::EngineOptions{
      .nprocs = procs, .sched_seed = seed, .threads = threads});
  trace::CallSiteRegistry stacks(procs);
  core::ChameleonConfig config;
  config.record_digests = true;
  core::ChameleonTool tool(procs, &stacks, config);
  engine.set_tool(&tool);
  workloads::WorkloadParams params{.cls = 'A', .timesteps = steps};
  engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });
  RunOutput out;
  out.digests = tool.epoch_digests();
  out.table = tool.clusters().encode();
  out.perf = tool.perf_counters();
  return out;
}

TEST(ShardedEngine, ClusterTablesByteIdenticalAcrossThreadsAndSeeds) {
  for (const char* workload : {"lu", "sweep3d"}) {
    const RunOutput base = run_workload(workload, 8, 4, 0, 1);
    ASSERT_FALSE(base.digests.empty()) << workload;
    ASSERT_FALSE(base.table.empty()) << workload;
    for (const int threads : {2, 8}) {
      for (const std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{5}}) {
        const RunOutput got = run_workload(workload, 8, 4, seed, threads);
        EXPECT_EQ(got.digests, base.digests)
            << workload << " threads=" << threads << " seed=" << seed;
        EXPECT_EQ(got.table, base.table)
            << workload << " threads=" << threads << " seed=" << seed;
      }
    }
  }
}

TEST(ShardedEngine, PerfTotalsExactAcrossThreadCounts) {
  // PerfCounters are accumulated per rank by the owning fiber and summed at
  // report time, so the totals must be *exactly* equal — not approximately —
  // no matter how ranks were spread over shards.
  const RunOutput base = run_workload("lu", 8, 4, 0, 1);
  const RunOutput sharded = run_workload("lu", 8, 4, 0, 4);
  EXPECT_EQ(sharded.perf.fold_windows_tested, base.perf.fold_windows_tested);
  EXPECT_EQ(sharded.perf.folds_performed, base.perf.folds_performed);
  EXPECT_EQ(sharded.perf.merge_prechecks, base.perf.merge_prechecks);
  EXPECT_EQ(sharded.perf.merge_deep_compares, base.perf.merge_deep_compares);
  EXPECT_EQ(sharded.perf.bytes_encoded, base.perf.bytes_encoded);
  EXPECT_EQ(sharded.perf.bytes_decoded, base.perf.bytes_decoded);
  EXPECT_GT(base.perf.fold_windows_tested, 0u);
}

TEST(ShardedEngine, DeadlockReportedUnderThreads) {
  sim::Engine engine(sim::EngineOptions{.nprocs = 8, .threads = 4});
  EXPECT_THROW(
      engine.run([](sim::Mpi& mpi) {
        // Everyone receives, nobody sends: a full-world deadlock that the
        // planner must detect with all shards parked.
        mpi.recv((mpi.rank() + 1) % mpi.size(), 64, 7);
      }),
      sim::DeadlockError);
}

TEST(ShardedEngine, FaultCrashBehavesIdenticallyUnderThreads) {
  const auto iterations = [](int threads) {
    sim::FaultInjector injector(
        sim::FaultPlan::parse("crash rank=2 call=3"));
    sim::Engine engine(sim::EngineOptions{.nprocs = 4, .threads = threads});
    engine.set_fault_injector(&injector);
    std::vector<int> iters(4, 0);
    engine.run([&](sim::Mpi& mpi) {
      for (int i = 0; i < 10; ++i) {
        mpi.barrier();
        ++iters[static_cast<std::size_t>(mpi.rank())];
      }
    });
    return iters;
  };
  const std::vector<int> single = iterations(1);
  EXPECT_EQ(iterations(4), single);
  EXPECT_LT(single[2], 10);  // the crashed rank stopped early
}

}  // namespace
}  // namespace cham
