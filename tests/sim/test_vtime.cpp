#include <gtest/gtest.h>

#include <array>

#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "sim/netmodel.hpp"

namespace cham::sim {
namespace {

TEST(NetModel, SingleProcessCollectiveIsFree) {
  // Regression: a P=1 communicator needs zero tree rounds — nothing
  // crosses the wire, so collectives cost no network time regardless of
  // the payload size.
  const NetModel net;
  EXPECT_EQ(net.collective(1, 0), 0.0);
  EXPECT_EQ(net.collective(1, 1 << 20), 0.0);
  EXPECT_GT(net.collective(2, 0), 0.0);

  Engine engine({.nprocs = 1});
  engine.run([](Mpi& mpi) {
    mpi.barrier();
    mpi.allreduce(1 << 20);
    mpi.bcast(1 << 20, 0);
  });
  EXPECT_EQ(engine.vtime(0), 0.0);
}

TEST(NetModel, Log2Ceil) {
  EXPECT_EQ(NetModel::log2_ceil(1), 0);
  EXPECT_EQ(NetModel::log2_ceil(2), 1);
  EXPECT_EQ(NetModel::log2_ceil(3), 2);
  EXPECT_EQ(NetModel::log2_ceil(4), 2);
  EXPECT_EQ(NetModel::log2_ceil(1024), 10);
  EXPECT_EQ(NetModel::log2_ceil(1025), 11);
}

TEST(NetModel, TransferScalesWithBytes) {
  NetModel net;
  EXPECT_GT(net.p2p_transfer(1 << 20), net.p2p_transfer(64));
  EXPECT_GE(net.p2p_transfer(0), net.latency);
}

TEST(NetModel, CollectiveScalesLogarithmically) {
  NetModel net;
  const double c16 = net.collective(16, 8);
  const double c1024 = net.collective(1024, 8);
  EXPECT_NEAR(c1024 / c16, 10.0 / 4.0, 1e-9);
}

TEST(VTime, ComputeAdvancesOnlyOwnClock) {
  // Sample clocks inside rank_main: MPI_Finalize synchronizes them at exit.
  Engine engine({.nprocs = 2});
  std::array<double, 2> mid{};
  engine.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) mpi.compute(5.0);
    mid[static_cast<std::size_t>(mpi.rank())] = mpi.vtime();
  });
  EXPECT_GT(mid[0], 4.9);
  EXPECT_LT(mid[1], 0.1);
  EXPECT_GE(engine.max_vtime(), 5.0);
  // Finalize is collective: final clocks agree.
  EXPECT_DOUBLE_EQ(engine.vtime(0), engine.vtime(1));
}

TEST(VTime, RecvWaitsForMessageArrival) {
  // Receiver posts immediately; sender computes 2s first. Receiver's clock
  // must jump past 2s + transfer.
  Engine engine({.nprocs = 2});
  engine.run([](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.compute(2.0);
      mpi.send(1, 100);
    } else {
      mpi.recv(0, 100);
    }
  });
  EXPECT_GT(engine.vtime(1), 2.0);
}

TEST(VTime, LateRecvNotDelayedByEarlySend) {
  // Sender sends at t=0; receiver computes 3s then receives: message already
  // arrived, so the receive costs only the receive overhead.
  Engine engine({.nprocs = 2});
  engine.run([](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(1, 8);
    } else {
      mpi.compute(3.0);
      mpi.recv(0, 8);
    }
  });
  EXPECT_LT(engine.vtime(1), 3.001);
  EXPECT_GT(engine.vtime(1), 3.0);
}

TEST(VTime, NegativeComputeRejected) {
  Engine engine({.nprocs = 1});
  EXPECT_ANY_THROW(engine.run([](Mpi& mpi) { mpi.compute(-1.0); }));
}

TEST(VTime, BigTransfersDominateLatency) {
  Engine engine({.nprocs = 2});
  engine.run([](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(1, 1 << 30);  // 1 GiB at ~3.2 GB/s ≈ 0.33 s
    } else {
      mpi.recv(0, 1 << 30);
    }
  });
  EXPECT_GT(engine.vtime(1), 0.2);
  EXPECT_LT(engine.vtime(1), 0.5);
}

TEST(VTime, PipelineAccumulatesLatency) {
  // A chain 0 -> 1 -> 2 -> 3: rank 3 finishes after three hops; rank 0 is
  // long done by then (sampled before the synchronizing finalize).
  Engine engine({.nprocs = 4});
  std::array<double, 4> mid{};
  engine.run([&](Mpi& mpi) {
    const int r = mpi.rank();
    if (r > 0) mpi.recv(r - 1, 8);
    mpi.compute(1.0);
    if (r < 3) mpi.send(r + 1, 8);
    mid[static_cast<std::size_t>(r)] = mpi.vtime();
  });
  EXPECT_GT(mid[3], 4.0);  // 4 compute stages serialized
  EXPECT_LT(mid[0], 1.1);
  EXPECT_GT(engine.vtime(0), 4.0);  // finalize drags everyone to the max
}

}  // namespace
}  // namespace cham::sim
