// ToolChain: composing tools must preserve the sandwich ordering — pre
// hooks run first-to-last, post hooks last-to-first — and forward stall
// notifications to every link in order.
#include "sim/tool.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/mpi.hpp"

namespace cham::sim {
namespace {

class RecordingTool : public Tool {
 public:
  RecordingTool(std::string name, std::vector<std::string>* log)
      : name_(std::move(name)), log_(log) {}

  void on_init(Rank rank, Pmpi&) override {
    log_->push_back(name_ + ".init:" + std::to_string(rank));
  }
  void on_pre(Rank, const CallInfo& info, Pmpi&) override {
    if (info.op == Op::kBarrier) log_->push_back(name_ + ".pre");
  }
  void on_post(Rank, const CallInfo& info, Pmpi&) override {
    if (info.op == Op::kBarrier) log_->push_back(name_ + ".post");
  }
  void on_stall(Engine&) override { log_->push_back(name_ + ".stall"); }

 private:
  std::string name_;
  std::vector<std::string>* log_;
};

TEST(ToolChain, PreRunsForwardPostRunsReverse) {
  std::vector<std::string> log;
  RecordingTool a("A", &log);
  RecordingTool b("B", &log);
  ToolChain chain({&a, &b});
  ASSERT_EQ(chain.size(), 2u);

  Engine engine({.nprocs = 1});
  engine.set_tool(&chain);
  engine.run([](Mpi& mpi) { mpi.barrier(); });

  const std::vector<std::string> expected = {
      "A.init:0", "B.init:0",          // init forwards (rank 0)
      "A.pre",    "B.pre",             // pre: first-to-last
      "B.post",   "A.post",            // post: last-to-first (sandwich)
  };
  ASSERT_GE(log.size(), expected.size());
  EXPECT_EQ(std::vector<std::string>(log.begin(),
                                     log.begin() + expected.size()),
            expected);
}

TEST(ToolChain, StallIsForwardedToEveryToolInOrder) {
  std::vector<std::string> log;
  RecordingTool a("A", &log);
  RecordingTool b("B", &log);
  ToolChain chain({&a, &b});

  Engine engine({.nprocs = 2});
  engine.set_tool(&chain);
  EXPECT_THROW(
      engine.run([](Mpi& mpi) { mpi.recv(1 - mpi.rank(), 8, 0); }),
      DeadlockError);

  std::vector<std::string> stalls;
  for (const std::string& entry : log)
    if (entry.find(".stall") != std::string::npos) stalls.push_back(entry);
  EXPECT_EQ(stalls, (std::vector<std::string>{"A.stall", "B.stall"}));
}

class ThrowingTool : public RecordingTool {
 public:
  using RecordingTool::RecordingTool;
  void on_post(Rank rank, const CallInfo& info, Pmpi& pmpi) override {
    RecordingTool::on_post(rank, info, pmpi);
    if (info.op == Op::kBarrier) throw std::runtime_error("mid-chain failure");
  }
};

TEST(ToolChain, PostChainRunsEveryLayerWhenOneThrows) {
  // B (innermost in post order) throws; the outer layer A must still get
  // its post hook — a real PMPI stack unwinds through every wrapper — and
  // the failure must surface to the caller afterwards.
  std::vector<std::string> log;
  RecordingTool a("A", &log);
  ThrowingTool b("B", &log);
  ToolChain chain({&a, &b});

  Engine engine({.nprocs = 1});
  engine.set_tool(&chain);
  EXPECT_THROW(engine.run([](Mpi& mpi) { mpi.barrier(); }),
               std::runtime_error);

  const std::vector<std::string> posts = {"B.post", "A.post"};
  std::vector<std::string> seen;
  for (const std::string& entry : log)
    if (entry.find(".post") != std::string::npos) seen.push_back(entry);
  EXPECT_EQ(seen, posts);
}

TEST(ToolChain, ThreeToolStackKeepsTheSandwich) {
  // The sharded-engine gating runs verifier + tracer + race instrumentation
  // stacked three deep; the sandwich must hold at that depth too.
  std::vector<std::string> log;
  RecordingTool a("A", &log);
  RecordingTool b("B", &log);
  RecordingTool c("C", &log);
  ToolChain chain({&a, &b, &c});

  Engine engine({.nprocs = 1});
  engine.set_tool(&chain);
  engine.run([](Mpi& mpi) { mpi.barrier(); });

  std::vector<std::string> hooks;
  for (const std::string& entry : log)
    if (entry.find(".pre") != std::string::npos ||
        entry.find(".post") != std::string::npos)
      hooks.push_back(entry);
  EXPECT_EQ(hooks, (std::vector<std::string>{"A.pre", "B.pre", "C.pre",
                                             "C.post", "B.post", "A.post"}));
}

TEST(ToolChain, PostChainRethrowsTheFirstOfSeveralFailures) {
  // Two layers fail in the same post chain: every layer still runs, and the
  // *first* failure in post order (the innermost layer, C) is what the
  // caller sees — later failures must not mask it.
  std::vector<std::string> log;
  RecordingTool a("A", &log);
  ThrowingTool b("B", &log);
  ThrowingTool c("C", &log);
  ToolChain chain({&a, &b, &c});

  Engine engine({.nprocs = 1});
  engine.set_tool(&chain);
  bool threw = false;
  try {
    engine.run([](Mpi& mpi) { mpi.barrier(); });
  } catch (const std::runtime_error& e) {
    threw = true;
    EXPECT_STREQ(e.what(), "mid-chain failure");
  }
  EXPECT_TRUE(threw);

  std::vector<std::string> posts;
  for (const std::string& entry : log)
    if (entry.find(".post") != std::string::npos) posts.push_back(entry);
  EXPECT_EQ(posts, (std::vector<std::string>{"C.post", "B.post", "A.post"}));
}

class StallInspectorTool : public Tool {
 public:
  void on_stall(Engine& engine) override {
    // The contract: inspect and record only. Every rank of this deadlock
    // is blocked on a receive that can never match.
    for (Rank r = 0; r < 2; ++r)
      if (engine.blocked_state(r).kind != BlockedState::Kind::kNone)
        ++blocked_ranks;
  }
  int blocked_ranks = 0;
};

TEST(ToolChain, StallHooksCanInspectTheStalledEngine) {
  std::vector<std::string> log;
  RecordingTool a("A", &log);
  StallInspectorTool inspector;
  ToolChain chain({&a, &inspector});

  Engine engine({.nprocs = 2});
  engine.set_tool(&chain);
  EXPECT_THROW(
      engine.run([](Mpi& mpi) { mpi.recv(1 - mpi.rank(), 8, 0); }),
      DeadlockError);
  EXPECT_EQ(inspector.blocked_ranks, 2);
}

TEST(ToolChain, AddAppendsAfterConstruction) {
  std::vector<std::string> log;
  RecordingTool a("A", &log);
  RecordingTool b("B", &log);
  ToolChain chain;
  chain.add(&a);
  chain.add(&b);
  EXPECT_EQ(chain.size(), 2u);

  Engine engine({.nprocs = 1});
  engine.set_tool(&chain);
  engine.run([](Mpi&) {});
  EXPECT_EQ(log.front(), "A.init:0");
}

}  // namespace
}  // namespace cham::sim
