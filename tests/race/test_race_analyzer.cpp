// Unit tests for the ChamRace vector-clock analyzer: happens-before
// semantics (sync objects, fork, epochs), finding kinds, deduplication,
// and the chameleon.race.v1 document.
#include "analysis/race/analyzer.hpp"

#include <gtest/gtest.h>

#include "analysis/race/annotate.hpp"
#include "analysis/race/determinism.hpp"
#include "analysis/race/vectorclock.hpp"
#include "obs/validate.hpp"

namespace cham::analysis::race {
namespace {

using cham::race::Sink;

TEST(VectorClock, JoinTakesComponentwiseMax) {
  VectorClock a;
  VectorClock b;
  a.set(0, 5);
  a.set(1, 1);
  b.set(0, 2);
  b.set(1, 7);
  a.join(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 7u);
}

TEST(VectorClock, OrderedAfterComparesOneComponent) {
  VectorClock vc;
  vc.set(2, 4);
  EXPECT_TRUE(vc.ordered_after(2, 4));
  EXPECT_TRUE(vc.ordered_after(2, 3));
  EXPECT_FALSE(vc.ordered_after(2, 5));
}

TEST(RaceAnalyzer, UnsynchronizedWritesAreWriteWrite) {
  RaceAnalyzer an(2);
  an.on_task(0);
  an.on_write("x", 0, 0);
  an.on_task(1);
  an.on_write("x", 0, 0);
  ASSERT_EQ(an.findings().size(), 1u);
  const RaceFinding& f = an.findings()[0];
  EXPECT_EQ(f.kind, RaceFinding::Kind::kWriteWrite);
  EXPECT_EQ(f.location, "x");
  EXPECT_EQ(f.prior.task, 0);
  EXPECT_EQ(f.current.task, 1);
}

TEST(RaceAnalyzer, WriteThenUnorderedReadIsWriteRead) {
  RaceAnalyzer an(2);
  an.on_task(0);
  an.on_write("cfg", 0, 0);
  an.on_task(1);
  an.on_read("cfg", 0, 0);
  ASSERT_EQ(an.findings().size(), 1u);
  EXPECT_EQ(an.findings()[0].kind, RaceFinding::Kind::kWriteRead);
}

TEST(RaceAnalyzer, ReadThenUnorderedWriteIsReadWrite) {
  RaceAnalyzer an(2);
  an.on_task(0);
  an.on_read("cfg", 0, 0);
  an.on_task(1);
  an.on_write("cfg", 0, 0);
  ASSERT_EQ(an.findings().size(), 1u);
  EXPECT_EQ(an.findings()[0].kind, RaceFinding::Kind::kReadWrite);
}

TEST(RaceAnalyzer, SameTaskNeverRacesWithItself) {
  RaceAnalyzer an(2);
  an.on_task(0);
  an.on_write("x", 0, 0);
  an.on_read("x", 0, 0);
  an.on_write("x", 0, 0);
  EXPECT_TRUE(an.findings().empty());
}

TEST(RaceAnalyzer, ReleaseAcquireOrdersAccesses) {
  RaceAnalyzer an(2);
  // Task 0 writes, then publishes through a sync object; task 1 acquires
  // before touching the location — a clean message-passing handoff.
  an.on_task(0);
  an.on_write("token", 0, 0);
  an.on_release("chan", 0, 0);
  an.on_task(1);
  an.on_acquire("chan", 0, 0);
  an.on_write("token", 0, 0);
  EXPECT_TRUE(an.findings().empty());
}

TEST(RaceAnalyzer, AcquireWithoutPriorReleaseOrdersNothing) {
  RaceAnalyzer an(2);
  an.on_task(0);
  an.on_write("x", 0, 0);
  an.on_task(1);
  an.on_acquire("never-released", 0, 0);
  an.on_write("x", 0, 0);
  EXPECT_EQ(an.findings().size(), 1u);
}

TEST(RaceAnalyzer, SyncIdentityIncludesOperands) {
  RaceAnalyzer an(2);
  an.on_task(0);
  an.on_write("x", 0, 0);
  an.on_release("chan", 1, 0);  // channel 1...
  an.on_task(1);
  an.on_acquire("chan", 2, 0);  // ...is not channel 2
  an.on_write("x", 0, 0);
  EXPECT_EQ(an.findings().size(), 1u);
}

TEST(RaceAnalyzer, ForkOrdersChildAfterParent) {
  RaceAnalyzer an(2);
  an.on_task(-1);  // scheduler/main
  an.on_write("init", 0, 0);
  an.on_fork(0);
  an.on_task(0);
  an.on_read("init", 0, 0);  // child sees the pre-fork write: ordered
  EXPECT_TRUE(an.findings().empty());
}

TEST(RaceAnalyzer, AtomicsAreCountedButNeverRace) {
  RaceAnalyzer an(2);
  an.on_task(0);
  an.on_atomic("counter", 0, 0);
  an.on_task(1);
  an.on_atomic("counter", 0, 0);
  an.on_write("counter", 0, 0);  // plain write vs atomic: no pairing either
  EXPECT_TRUE(an.findings().empty());
  EXPECT_EQ(an.atomic_accesses(), 2u);
  EXPECT_EQ(an.accesses(), 1u);
}

TEST(RaceAnalyzer, AtomicsCarryNoHappensBefore) {
  RaceAnalyzer an(2);
  an.on_task(0);
  an.on_write("x", 0, 0);
  an.on_atomic("flag", 0, 0);
  an.on_task(1);
  an.on_atomic("flag", 0, 0);  // reading the flag does NOT order the write
  an.on_write("x", 0, 0);
  EXPECT_EQ(an.findings().size(), 1u);
}

TEST(RaceAnalyzer, RepeatedPairDeduplicatesWithCount) {
  // Dedup key is (location, kind, prior task, current task): five unordered
  // reads of the same stale write collapse into one finding, count 5.
  RaceAnalyzer an(2);
  an.on_task(0);
  an.on_write("x", 0, 0);
  an.on_task(1);
  for (int i = 0; i < 5; ++i) an.on_read("x", 0, 0);
  ASSERT_EQ(an.findings().size(), 1u);
  EXPECT_EQ(an.findings()[0].kind, RaceFinding::Kind::kWriteRead);
  EXPECT_EQ(an.findings()[0].count, 5u);
}

TEST(RaceAnalyzer, DistinctOperandsAreDistinctLocations) {
  RaceAnalyzer an(2);
  an.on_task(0);
  an.on_write("slot", 0, 0);
  an.on_task(1);
  an.on_write("slot", 1, 0);  // different (a, b): no conflict
  EXPECT_TRUE(an.findings().empty());
  EXPECT_EQ(an.locations(), 2u);
}

TEST(RaceAnalyzer, EpochsAreCountedAndStamped) {
  RaceAnalyzer an(2);
  an.on_task(0);
  an.on_epoch();
  an.on_epoch();
  an.on_write("x", 0, 0);
  an.on_task(1);
  an.on_write("x", 0, 0);
  EXPECT_EQ(an.epochs(), 2u);
  ASSERT_EQ(an.findings().size(), 1u);
  EXPECT_EQ(an.findings()[0].prior.epoch, 2u);
}

TEST(RaceAnalyzer, ReportEmitsErrorDiagnostics) {
  RaceAnalyzer an(2);
  an.on_task(0);
  an.on_write("x", 0, 0);
  an.on_task(1);
  an.on_write("x", 0, 0);
  DiagnosticSink sink;
  an.report(sink);
  EXPECT_FALSE(sink.clean());
  EXPECT_EQ(sink.count("race.conflict"), 1u);
  EXPECT_NE(sink.find("race.conflict"), nullptr);
}

TEST(RaceAnalyzer, KindNamesMatchSchema) {
  EXPECT_EQ(kind_name(RaceFinding::Kind::kWriteWrite), "write-write");
  EXPECT_EQ(kind_name(RaceFinding::Kind::kWriteRead), "write-read");
  EXPECT_EQ(kind_name(RaceFinding::Kind::kReadWrite), "read-write");
}

TEST(RaceJson, DocumentValidatesAgainstSchema) {
  RaceAnalyzer an(4);
  an.on_task(0);
  an.on_write("x", 0, 0);
  an.on_task(1);
  an.on_write("x", 0, 0);
  DeterminismResult det;
  det.seeds = {0, 1, 2};
  det.epochs_compared = 5;
  const std::string doc =
      write_race_json(an, {"racefix", "chameleon", 4}, &det);
  std::string error;
  EXPECT_TRUE(obs::validate_race_json(doc, &error)) << error;
  EXPECT_NE(doc.find("\"chameleon.race.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"write-write\""), std::string::npos);
}

TEST(RaceJson, OmitsDeterminismWhenNull) {
  RaceAnalyzer an(2);
  const std::string doc = write_race_json(an, {"lu", "chameleon", 2}, nullptr);
  std::string error;
  EXPECT_TRUE(obs::validate_race_json(doc, &error)) << error;
  EXPECT_EQ(doc.find("\"determinism\""), std::string::npos);
}

TEST(DeterminismAudit, IdenticalDigestsAreDeterministic) {
  const auto result = audit_determinism(
      [](std::uint64_t) { return std::vector<std::uint64_t>{1, 2, 3}; },
      {0, 1, 2, 3});
  EXPECT_TRUE(result.deterministic);
  EXPECT_EQ(result.first_divergent_epoch, -1);
  EXPECT_EQ(result.epochs_compared, 3u);
  EXPECT_EQ(result.seeds.size(), 4u);
}

TEST(DeterminismAudit, ReportsFirstDivergentEpochAndSeed) {
  const auto result = audit_determinism(
      [](std::uint64_t seed) {
        std::vector<std::uint64_t> d{1, 2, 3};
        if (seed == 2) d[1] = 99;
        return d;
      },
      {0, 1, 2});
  EXPECT_FALSE(result.deterministic);
  EXPECT_EQ(result.first_divergent_epoch, 1);
  EXPECT_EQ(result.divergent_seed, 2u);
}

TEST(DeterminismAudit, LengthMismatchDiverges) {
  const auto result = audit_determinism(
      [](std::uint64_t seed) {
        return seed == 0 ? std::vector<std::uint64_t>{1, 2, 3}
                         : std::vector<std::uint64_t>{1, 2};
      },
      {0, 1});
  EXPECT_FALSE(result.deterministic);
  EXPECT_EQ(result.first_divergent_epoch, 2);
}

TEST(Annotate, ForwardersAreNoOpsWithoutSink) {
  // Must not crash or touch anything when no sink is installed.
  cham::race::set_sink(nullptr);
  RACE_READ("x", 0, 0);
  RACE_WRITE("x", 0, 0);
  RACE_ATOMIC("x", 0, 0);
  cham::race::ScopedSync sync("m", 0, 0);
  cham::race::set_task(3);
  cham::race::fork(1);
  cham::race::epoch();
}

TEST(Annotate, ScopedSyncPairsAcquireRelease) {
  RaceAnalyzer an(2);
  cham::race::set_sink(&an);
  an.on_task(0);
  { cham::race::ScopedSync sync("m", 0, 0); }
  cham::race::set_sink(nullptr);
  EXPECT_EQ(an.sync_ops(), 2u);
}

}  // namespace
}  // namespace cham::analysis::race
