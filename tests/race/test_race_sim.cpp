// End-to-end ChamRace tests: the analyzer driving real engine runs.
//
// The racefix fixture seeds exactly two conflicts (shared_counter,
// config) next to two correctly synchronized controls (token, turn); the
// analyzer must report precisely that split. Stock workloads must come out
// clean, and the determinism audit must see identical per-epoch digests
// across shuffled scheduler seeds.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/race/analyzer.hpp"
#include "analysis/race/annotate.hpp"
#include "analysis/race/determinism.hpp"
#include "analysis/verifier.hpp"
#include "core/chameleon.hpp"
#include "sim/engine.hpp"
#include "sim/tool.hpp"
#include "trace/callsite.hpp"
#include "workloads/workload.hpp"

namespace cham::analysis::race {
namespace {

/// Installs the analyzer as the global annotation sink for one scope.
class SinkScope {
 public:
  explicit SinkScope(cham::race::Sink* sink) { cham::race::set_sink(sink); }
  ~SinkScope() { cham::race::set_sink(nullptr); }
  SinkScope(const SinkScope&) = delete;
  SinkScope& operator=(const SinkScope&) = delete;
};

std::vector<RaceFinding> analyze(const std::string& workload, int procs,
                                 int steps) {
  const workloads::WorkloadInfo* info = workloads::find_workload(workload);
  EXPECT_NE(info, nullptr) << workload;
  RaceAnalyzer analyzer(procs);
  SinkScope scope(&analyzer);
  sim::Engine engine({.nprocs = procs});
  trace::CallSiteRegistry stacks(procs);
  core::ChameleonTool tool(procs, &stacks, {});
  engine.set_tool(&tool);
  workloads::WorkloadParams params{.cls = 'A', .timesteps = steps};
  engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });
  EXPECT_GT(analyzer.accesses(), 0u);
  EXPECT_GT(analyzer.sync_ops(), 0u);
  return analyzer.findings();
}

bool has_finding(const std::vector<RaceFinding>& findings,
                 std::string_view location, RaceFinding::Kind kind) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const RaceFinding& f) {
                       return f.location == location && f.kind == kind;
                     });
}

bool touches_location(const std::vector<RaceFinding>& findings,
                      std::string_view location) {
  return std::any_of(
      findings.begin(), findings.end(),
      [&](const RaceFinding& f) { return f.location == location; });
}

TEST(RaceSim, RacefixReportsExactlyTheSeededConflicts) {
  const auto findings = analyze("racefix", 8, 4);
  ASSERT_FALSE(findings.empty());

  // The two seeded conflicts must be found...
  EXPECT_TRUE(has_finding(findings, "racefix.shared_counter",
                          RaceFinding::Kind::kWriteWrite));
  EXPECT_TRUE(
      has_finding(findings, "racefix.config", RaceFinding::Kind::kWriteRead) ||
      has_finding(findings, "racefix.config", RaceFinding::Kind::kReadWrite));

  // ...and the synchronized controls must stay quiet.
  EXPECT_FALSE(touches_location(findings, "racefix.token"));
  EXPECT_FALSE(touches_location(findings, "racefix.turn"));

  // Nothing in the runtime itself may be flagged alongside the fixture.
  for (const RaceFinding& f : findings)
    EXPECT_EQ(f.location.rfind("racefix.", 0), 0u) << f.to_string();
}

TEST(RaceSim, StockLuIsClean) {
  const auto findings = analyze("lu", 8, 4);
  for (const RaceFinding& f : findings) ADD_FAILURE() << f.to_string();
}

TEST(RaceSim, StockSweep3dIsClean) {
  const auto findings = analyze("sweep3d", 8, 4);
  for (const RaceFinding& f : findings) ADD_FAILURE() << f.to_string();
}

std::vector<std::uint64_t> digests_for_seed(const std::string& workload,
                                            int procs, int steps,
                                            std::uint64_t seed) {
  const workloads::WorkloadInfo* info = workloads::find_workload(workload);
  EXPECT_NE(info, nullptr) << workload;
  sim::Engine engine(sim::EngineOptions{.nprocs = procs, .sched_seed = seed});
  trace::CallSiteRegistry stacks(procs);
  core::ChameleonConfig config;
  config.record_digests = true;
  core::ChameleonTool tool(procs, &stacks, config);
  engine.set_tool(&tool);
  workloads::WorkloadParams params{.cls = 'A', .timesteps = steps};
  engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });
  return tool.epoch_digests();
}

TEST(RaceSim, DeterminismAuditPassesAcrossTenShuffledSeeds) {
  std::vector<std::uint64_t> seeds{0};  // FIFO baseline
  for (std::uint64_t s = 1; s <= 10; ++s) seeds.push_back(s);
  const DeterminismResult result = audit_determinism(
      [&](std::uint64_t seed) {
        return digests_for_seed("racefix", 8, 4, seed);
      },
      seeds);
  EXPECT_TRUE(result.deterministic)
      << "seed " << result.divergent_seed << " diverges at epoch "
      << result.first_divergent_epoch;
  EXPECT_GT(result.epochs_compared, 0u);
}

TEST(RaceSim, SeedZeroIsReproducible) {
  const auto a = digests_for_seed("lu", 8, 4, 0);
  const auto b = digests_for_seed("lu", 8, 4, 0);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(RaceSim, AnalyzerComposesWithStackedTools) {
  // The gating configuration the sharded engine will run: correctness
  // verifier + Chameleon tracer stacked in one ToolChain, with the race
  // analyzer listening underneath. The verifier must stay clean, the racy
  // fixture must still be caught, and the clean controls must stay quiet —
  // stacking tools must not add or mask edges.
  const workloads::WorkloadInfo* info = workloads::find_workload("racefix");
  ASSERT_NE(info, nullptr);
  RaceAnalyzer analyzer(8);
  SinkScope scope(&analyzer);
  sim::Engine engine({.nprocs = 8});
  trace::CallSiteRegistry stacks(8);
  VerifierTool verifier(8, &stacks);
  core::ChameleonTool chameleon(8, &stacks, {});
  sim::ToolChain chain({&verifier, &chameleon});
  engine.set_tool(&chain);
  workloads::WorkloadParams params{.cls = 'A', .timesteps = 4};
  engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });

  EXPECT_TRUE(verifier.clean()) << verifier.sink().format_report();
  EXPECT_TRUE(has_finding(analyzer.findings(), "racefix.shared_counter",
                          RaceFinding::Kind::kWriteWrite));
  EXPECT_FALSE(touches_location(analyzer.findings(), "racefix.token"));
  EXPECT_FALSE(touches_location(analyzer.findings(), "racefix.turn"));
}

TEST(RaceSim, ShuffledSeedsStayCleanOfFalsePositives) {
  // Scheduling order must not manufacture conflicts in clean code: the
  // modelled sync edges have to hold under every schedule, not just FIFO.
  for (std::uint64_t seed : {1ull, 7ull}) {
    const workloads::WorkloadInfo* info = workloads::find_workload("lu");
    RaceAnalyzer analyzer(8);
    SinkScope scope(&analyzer);
    sim::Engine engine(sim::EngineOptions{.nprocs = 8, .sched_seed = seed});
    trace::CallSiteRegistry stacks(8);
    core::ChameleonTool tool(8, &stacks, {});
    engine.set_tool(&tool);
    workloads::WorkloadParams params{.cls = 'A', .timesteps = 4};
    engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });
    for (const RaceFinding& f : analyzer.findings())
      ADD_FAILURE() << "seed " << seed << ": " << f.to_string();
  }
}

}  // namespace
}  // namespace cham::analysis::race
