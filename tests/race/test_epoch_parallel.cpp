// Epoch-parallel std::thread pilot for the sharded-engine roadmap item.
//
// The sharded engine will run epoch work on real threads. This pilot
// exercises the pieces that must already be thread-clean today:
//   - whole engine instances on concurrent threads (the intern table and
//     the global annotation/observability sinks are the only shared state),
//   - the atomic annotation-sink pointer under concurrent callbacks,
//   - a parallel per-node encode fold that must be byte-identical to the
//     serial wire image.
// Build with -DCHAM_TSAN=ON to validate the same binary under
// ThreadSanitizer (the tools/check.sh TSan leg runs exactly this slice).
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/race/annotate.hpp"
#include "core/chameleon.hpp"
#include "sim/engine.hpp"
#include "trace/callsite.hpp"
#include "trace/serialize.hpp"
#include "workloads/workload.hpp"

namespace cham {
namespace {

std::vector<std::uint64_t> run_digests(const std::string& workload, int procs,
                                       int steps, std::uint64_t seed) {
  const workloads::WorkloadInfo* info = workloads::find_workload(workload);
  EXPECT_NE(info, nullptr) << workload;
  sim::Engine engine(sim::EngineOptions{.nprocs = procs, .sched_seed = seed});
  trace::CallSiteRegistry stacks(procs);
  core::ChameleonConfig config;
  config.record_digests = true;
  core::ChameleonTool tool(procs, &stacks, config);
  engine.set_tool(&tool);
  workloads::WorkloadParams params{.cls = 'A', .timesteps = steps};
  engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });
  return tool.epoch_digests();
}

TEST(EpochParallel, EnginePerThreadProducesIdenticalDigests) {
  constexpr int kThreads = 4;
  std::vector<std::vector<std::uint64_t>> digests(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back(
        [&digests, t] { digests[static_cast<std::size_t>(t)] =
                            run_digests("lu", 8, 4, 0); });
  for (std::thread& th : pool) th.join();
  ASSERT_FALSE(digests[0].empty());
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(digests[static_cast<std::size_t>(t)], digests[0])
        << "thread " << t;
}

TEST(EpochParallel, ParallelSeedSweepMatchesSerialRuns) {
  // The determinism audit's seed sweep, but with every seed on its own
  // thread: results must match both each other and a serial re-run.
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4};
  std::vector<std::vector<std::uint64_t>> parallel(seeds.size());
  std::vector<std::thread> pool;
  for (std::size_t i = 0; i < seeds.size(); ++i)
    pool.emplace_back([&parallel, &seeds, i] {
      parallel[i] = run_digests("racefix", 8, 4, seeds[i]);
    });
  for (std::thread& th : pool) th.join();
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(parallel[i], run_digests("racefix", 8, 4, seeds[i]))
        << "seed " << seeds[i];
    EXPECT_EQ(parallel[i], parallel[0]) << "seed " << seeds[i];
  }
}

/// Thread-safe annotation sink: every callback is a relaxed atomic bump, so
/// it can stay installed while engines run on several threads at once.
class CountingSink final : public race::Sink {
 public:
  void on_read(std::string_view, std::uint64_t, std::uint64_t) override {
    accesses.fetch_add(1, std::memory_order_relaxed);
  }
  void on_write(std::string_view, std::uint64_t, std::uint64_t) override {
    accesses.fetch_add(1, std::memory_order_relaxed);
  }
  void on_atomic(std::string_view, std::uint64_t, std::uint64_t) override {
    atomics.fetch_add(1, std::memory_order_relaxed);
  }
  void on_acquire(std::string_view, std::uint64_t, std::uint64_t) override {
    syncs.fetch_add(1, std::memory_order_relaxed);
  }
  void on_release(std::string_view, std::uint64_t, std::uint64_t) override {
    syncs.fetch_add(1, std::memory_order_relaxed);
  }
  void on_task(int) override {
    scheds.fetch_add(1, std::memory_order_relaxed);
  }
  void on_fork(int) override {
    scheds.fetch_add(1, std::memory_order_relaxed);
  }
  void on_epoch() override {
    epochs.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> accesses{0};
  std::atomic<std::uint64_t> atomics{0};
  std::atomic<std::uint64_t> syncs{0};
  std::atomic<std::uint64_t> scheds{0};
  std::atomic<std::uint64_t> epochs{0};
};

TEST(EpochParallel, AnnotationSinkSurvivesConcurrentEngines) {
  CountingSink sink;
  race::set_sink(&sink);
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t)
    pool.emplace_back([] { (void)run_digests("racefix", 4, 2, 0); });
  for (std::thread& th : pool) th.join();
  race::set_sink(nullptr);
  EXPECT_GT(sink.accesses.load(), 0u);
  EXPECT_GT(sink.syncs.load(), 0u);
  EXPECT_GT(sink.scheds.load(), 0u);
  EXPECT_GT(sink.epochs.load(), 0u);
}

TEST(EpochParallel, ParallelNodeEncodeFoldIsByteIdentical) {
  // Capture one online trace, then encode its nodes on worker threads and
  // splice the buffers: the fold must reproduce the serial wire image
  // byte for byte (minus the length prefix, which the splice re-adds).
  const workloads::WorkloadInfo* info = workloads::find_workload("sweep3d");
  ASSERT_NE(info, nullptr);
  sim::Engine engine({.nprocs = 8});
  trace::CallSiteRegistry stacks(8);
  core::ChameleonTool tool(8, &stacks, {});
  engine.set_tool(&tool);
  workloads::WorkloadParams params{.cls = 'A', .timesteps = 4};
  engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });
  const std::vector<trace::TraceNode>& nodes = tool.online_trace();
  ASSERT_FALSE(nodes.empty());

  const std::vector<std::uint8_t> serial = trace::encode_trace(nodes);

  std::vector<std::vector<std::uint8_t>> parts(nodes.size());
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t)
    pool.emplace_back([&parts, &nodes, &next] {
      for (std::size_t i = next.fetch_add(1); i < nodes.size();
           i = next.fetch_add(1)) {
        trace::ByteWriter w;
        trace::encode_node(w, nodes[i]);
        parts[i] = w.take();
      }
    });
  for (std::thread& th : pool) th.join();

  trace::ByteWriter spliced;
  spliced.u32(static_cast<std::uint32_t>(nodes.size()));
  std::vector<std::uint8_t> folded = spliced.take();
  for (const auto& part : parts)
    folded.insert(folded.end(), part.begin(), part.end());
  EXPECT_EQ(folded, serial);
}

}  // namespace
}  // namespace cham
