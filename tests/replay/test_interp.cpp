#include "replay/interp.hpp"

#include <gtest/gtest.h>

namespace cham::replay {
namespace {

trace::EventRecord ev(std::uint64_t stack, std::vector<sim::Rank> ranks) {
  trace::EventRecord record;
  record.op = sim::Op::kBarrier;
  record.stack_sig = stack;
  record.ranks = trace::RankList::from_ranks(std::move(ranks));
  return record;
}

TEST(EventCursor, FlatSequence) {
  std::vector<trace::TraceNode> trace = {
      trace::TraceNode::leaf(ev(1, {0, 1})),
      trace::TraceNode::leaf(ev(2, {0})),
      trace::TraceNode::leaf(ev(3, {0, 1}))};
  EventCursor c0(trace, 0);
  std::vector<std::uint64_t> seen;
  while (!c0.done()) {
    seen.push_back(c0.current()->stack_sig);
    c0.next();
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3}));

  EventCursor c1(trace, 1);
  seen.clear();
  while (!c1.done()) {
    seen.push_back(c1.current()->stack_sig);
    c1.next();
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 3}));  // rank 1 skips event 2
}

TEST(EventCursor, LoopExpandsInOrder) {
  std::vector<trace::TraceNode> trace = {trace::TraceNode::loop(
      3, {trace::TraceNode::leaf(ev(1, {0})), trace::TraceNode::leaf(ev(2, {0}))})};
  EventCursor cursor(trace, 0);
  std::vector<std::uint64_t> seen;
  while (!cursor.done()) {
    seen.push_back(cursor.current()->stack_sig);
    cursor.next();
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 1, 2, 1, 2}));
}

TEST(EventCursor, NestedLoops) {
  // loop 2 { loop 3 { A } B }
  std::vector<trace::TraceNode> trace = {trace::TraceNode::loop(
      2, {trace::TraceNode::loop(3, {trace::TraceNode::leaf(ev(0xA, {0}))}),
          trace::TraceNode::leaf(ev(0xB, {0}))})};
  EventCursor cursor(trace, 0);
  std::vector<std::uint64_t> seen;
  while (!cursor.done()) {
    seen.push_back(cursor.current()->stack_sig);
    cursor.next();
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0xA, 0xA, 0xA, 0xB, 0xA, 0xA,
                                              0xA, 0xB}));
  EXPECT_EQ(cursor.yielded(), 8u);
}

TEST(EventCursor, NonParticipantSeesNothing) {
  std::vector<trace::TraceNode> trace = {
      trace::TraceNode::loop(10, {trace::TraceNode::leaf(ev(1, {0, 1, 2}))})};
  EventCursor cursor(trace, 7);
  EXPECT_TRUE(cursor.done());
  EXPECT_EQ(cursor.yielded(), 0u);
}

TEST(EventCursor, EmptyTrace) {
  std::vector<trace::TraceNode> trace;
  EventCursor cursor(trace, 0);
  EXPECT_TRUE(cursor.done());
}

TEST(ExpandedPairs, CountsRanksTimesIterations) {
  std::vector<trace::TraceNode> trace = {trace::TraceNode::loop(
      5, {trace::TraceNode::leaf(ev(1, {0, 1, 2, 3}))})};
  EXPECT_EQ(expanded_event_rank_pairs(trace), 20u);
}

}  // namespace
}  // namespace cham::replay
