// End-to-end replay: trace an app, replay the trace, compare virtual times.
#include "replay/replayer.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "replay/interp.hpp"

#include "core/chameleon.hpp"
#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "trace/tracer.hpp"

namespace cham::replay {
namespace {

using trace::CallScope;
using trace::CallSiteRegistry;
using trace::site_id;

// The tracer charges its real CPU overhead into virtual time (as on a real
// cluster), so accuracy thresholds assume tracing overhead is small relative
// to the modeled compute. Sanitizer instrumentation slows the tracer by an
// order of magnitude and breaks that assumption — keep the structural
// assertions but skip the numeric thresholds there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kTimingExact = false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kTimingExact = false;
#else
constexpr bool kTimingExact = true;
#endif
#else
constexpr bool kTimingExact = true;
#endif

void expect_accuracy_above(double t_app, double t_replay, double threshold) {
  if (!kTimingExact) return;
  EXPECT_GT(replay_accuracy(t_app, t_replay), threshold);
}

/// Ring stencil with compute: the app whose time replay must reproduce.
void stencil_app(sim::Mpi& mpi, CallSiteRegistry* stacks, int steps) {
  const int p = mpi.size();
  for (int step = 0; step < steps; ++step) {
    std::optional<CallScope> scope;
    if (stacks != nullptr)
      scope.emplace(stacks->stack(mpi.rank()), site_id("stencil.step"));
    const sim::Rank next = (mpi.rank() + 1) % p;
    const sim::Rank prev = (mpi.rank() + p - 1) % p;
    mpi.compute(0.002);
    mpi.isend(next, 4096, 1);
    mpi.recv(prev, 4096, 1);
    mpi.allreduce(8);
    mpi.marker();
  }
}

double app_time(int p, int steps) {
  sim::Engine engine({.nprocs = p});
  engine.run([&](sim::Mpi& mpi) { stencil_app(mpi, nullptr, steps); });
  return engine.max_vtime();
}

TEST(Replay, ScalaTraceTraceReproducesAppTime) {
  const int p = 8;
  const int steps = 20;
  const double t_app = app_time(p, steps);

  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  trace::ScalaTraceTool tool(p, &stacks);
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { stencil_app(mpi, &stacks, steps); });

  const ReplayResult replayed =
      replay_trace(tool.global_trace(), {.nprocs = p});
  expect_accuracy_above(t_app, replayed.vtime, 0.9);
}

TEST(Replay, ChameleonOnlineTraceReproducesAppTime) {
  // Observation 3: clustered traces of lead processes represent application
  // execution time as accurately as per-node traces.
  const int p = 16;
  const int steps = 20;
  const double t_app = app_time(p, steps);

  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  core::ChameleonTool tool(p, &stacks, {.k = 3});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { stencil_app(mpi, &stacks, steps); });

  const ReplayResult replayed =
      replay_trace(tool.online_trace(), {.nprocs = p});
  expect_accuracy_above(t_app, replayed.vtime, 0.85);
  EXPECT_GT(replayed.events_replayed, 0u);
}

TEST(Replay, ReplaysEveryRecordedEvent) {
  const int p = 8;
  const int steps = 10;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  trace::ScalaTraceTool tool(p, &stacks);
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { stencil_app(mpi, &stacks, steps); });

  const auto expected = expanded_event_rank_pairs(tool.global_trace());
  const ReplayResult replayed =
      replay_trace(tool.global_trace(), {.nprocs = p});
  EXPECT_EQ(replayed.events_replayed, expected);
  // isend+recv per rank per step -> p*steps messages.
  EXPECT_EQ(replayed.messages, static_cast<std::uint64_t>(p * steps));
  // allreduce + marker per step.
  EXPECT_EQ(replayed.collectives, static_cast<std::uint64_t>(2 * steps));
}

TEST(Replay, MasterWorkerClusterTraceReplays) {
  // The EMF pattern: workers talk to an absolute master; the clustered
  // trace must replay without deadlock on every rank.
  const int p = 8;
  const int rounds = 6;
  auto app = [&](sim::Mpi& mpi, CallSiteRegistry* stacks) {
    for (int round = 0; round < rounds; ++round) {
      std::optional<CallScope> scope;
      if (mpi.rank() == 0) {
        if (stacks != nullptr)
          scope.emplace(stacks->stack(0), site_id("emf.master"));
        for (int w = 1; w < p; ++w) mpi.recv(sim::kAnySource, 256);
        for (int w = 1; w < p; ++w)
          mpi.send(w, 64, 0, {}, /*absolute_peer=*/false);
      } else {
        if (stacks != nullptr)
          scope.emplace(stacks->stack(mpi.rank()), site_id("emf.worker"));
        mpi.compute(0.001);
        mpi.send(0, 256, 0, {}, /*absolute_peer=*/true);
        mpi.recv(0, 64, 0, nullptr, /*absolute_peer=*/true);
      }
      mpi.marker();
    }
  };

  sim::Engine app_engine({.nprocs = p});
  app_engine.run([&](sim::Mpi& mpi) { app(mpi, nullptr); });
  const double t_app = app_engine.max_vtime();

  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  core::ChameleonTool tool(p, &stacks, {.k = 2});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { app(mpi, &stacks); });

  EXPECT_EQ(tool.num_callpath_clusters(), 2u);
  const ReplayResult replayed =
      replay_trace(tool.online_trace(), {.nprocs = p});
  expect_accuracy_above(t_app, replayed.vtime, 0.7);
}

TEST(Replay, LoadImbalanceSurvivesHistogramAveraging) {
  // Sweep3D-style imbalance: rank-dependent compute times. The histogram
  // representative flattens the distribution but the replay must stay in
  // the right ballpark (the paper reports 98% for S3D).
  const int p = 8;
  const int steps = 16;
  auto app = [&](sim::Mpi& mpi, CallSiteRegistry* stacks) {
    for (int step = 0; step < steps; ++step) {
      std::optional<CallScope> scope;
      if (stacks != nullptr)
        scope.emplace(stacks->stack(mpi.rank()), site_id("imbalanced"));
      mpi.compute(0.001 * (1 + mpi.rank() % 3));
      mpi.barrier();
      mpi.marker();
    }
  };
  sim::Engine app_engine({.nprocs = p});
  app_engine.run([&](sim::Mpi& mpi) { app(mpi, nullptr); });
  const double t_app = app_engine.max_vtime();

  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  core::ChameleonTool tool(p, &stacks, {.k = 3});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { app(mpi, &stacks); });

  const ReplayResult replayed =
      replay_trace(tool.online_trace(), {.nprocs = p});
  expect_accuracy_above(t_app, replayed.vtime, 0.6);
}

TEST(ReplayAccuracy, Formula) {
  EXPECT_DOUBLE_EQ(replay_accuracy(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(replay_accuracy(10.0, 9.0), 0.9);
  EXPECT_DOUBLE_EQ(replay_accuracy(10.0, 11.0), 0.9);
  EXPECT_DOUBLE_EQ(replay_accuracy(10.0, 25.0), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(replay_accuracy(0.0, 1.0), 0.0);
}

TEST(Replay, EmptyTraceIsTrivial) {
  const ReplayResult r = replay_trace({}, {.nprocs = 4});
  EXPECT_EQ(r.events_replayed, 0u);
  EXPECT_EQ(r.messages, 0u);
}

}  // namespace
}  // namespace cham::replay
