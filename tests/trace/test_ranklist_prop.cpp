// ChamScale property suite: the sparse interned ranklists must be
// indistinguishable from the dense seed representation on every observable
// surface — members, set algebra, factored sections, wire bytes — and the
// intern table must keep its canonicalization invariants (one entry per
// member set, equality by pointer, memoized unions).
//
// Randomized properties run a fixed number of seeded trials; a failing
// trial is greedily minimized before reporting, so the failure message
// carries the smallest member set (plus the generator seed) that still
// breaks the property.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "trace/ranklist.hpp"
#include "trace/scale.hpp"
#include "trace/serialize.hpp"

#ifndef CHAM_TESTS_DATA_DIR
#error "CHAM_TESTS_DATA_DIR must point at tests/data"
#endif

namespace cham::trace {
namespace {

constexpr int kTrials = 200;

/// Random member set with the shapes the protocol produces: arithmetic
/// progressions (rows/columns), dense blocks, plus uniform noise, in a
/// rank space large enough to force multi-run factorizations.
std::vector<sim::Rank> random_set(support::Rng& rng) {
  std::vector<sim::Rank> out;
  const int nprogs = static_cast<int>(rng.next_below(4));
  for (int p = 0; p < nprogs; ++p) {
    const auto start = static_cast<sim::Rank>(rng.next_below(300));
    const int stride = 1 + static_cast<int>(rng.next_below(8));
    const int len = 1 + static_cast<int>(rng.next_below(12));
    for (int i = 0; i < len; ++i) out.push_back(start + i * stride);
  }
  const int noise = static_cast<int>(rng.next_below(10));
  for (int i = 0; i < noise; ++i)
    out.push_back(static_cast<sim::Rank>(rng.next_below(400)));
  return out;
}

std::vector<sim::Rank> sorted_unique(std::vector<sim::Rank> ranks) {
  std::sort(ranks.begin(), ranks.end());
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
  return ranks;
}

std::string set_to_string(const std::vector<sim::Rank>& ranks) {
  std::string out = "{";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(ranks[i]);
  }
  return out + "}";
}

/// Greedy one-pass shrinker: drop each member in turn, keeping the drop
/// whenever the property still fails, until no single removal preserves
/// the failure. The result is 1-minimal — small enough to debug by eye.
std::vector<sim::Rank> minimize(
    std::vector<sim::Rank> ranks,
    const std::function<bool(const std::vector<sim::Rank>&)>& fails) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      std::vector<sim::Rank> candidate = ranks;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(candidate)) {
        ranks = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return ranks;
}

/// Run `fails` over seeded random sets; on the first failure, minimize and
/// report the smallest reproducing set.
void check_property(
    const char* what,
    const std::function<bool(const std::vector<sim::Rank>&)>& fails) {
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    support::Rng rng(seed);
    std::vector<sim::Rank> ranks = random_set(rng);
    if (!fails(ranks)) continue;
    const std::vector<sim::Rank> minimal = minimize(ranks, fails);
    FAIL() << what << " failed at seed " << seed
           << "; minimized input: " << set_to_string(minimal);
  }
}

std::vector<std::uint8_t> wire_bytes(const RankList& list) {
  ByteWriter w;
  encode_ranklist(w, list);
  return w.take();
}

// ---------------------------------------------------------------------------
// Dense-oracle equivalence: everything observable about a sparse list must
// match the dense list over the same member set.
// ---------------------------------------------------------------------------

TEST(RankListProp, MembersMatchDenseOracle) {
  check_property("sparse members == dense members", [](const auto& ranks) {
    ScaleOptionsGuard off(kScaleAllOff);
    const std::vector<sim::Rank> dense = RankList::from_ranks(ranks).members();
    ScaleOptionsGuard on(kScaleAllOn);
    const RankList sparse = RankList::from_ranks(ranks);
    return sparse.members() != dense || sparse.count() != dense.size();
  });
}

TEST(RankListProp, SectionsMatchDenseOracle) {
  check_property("sparse sections == dense sections", [](const auto& ranks) {
    ScaleOptionsGuard off(kScaleAllOff);
    const auto dense = RankList::from_ranks(ranks).sections();
    ScaleOptionsGuard on(kScaleAllOn);
    return RankList::from_ranks(ranks).sections() != dense;
  });
}

TEST(RankListProp, WireBytesMatchDenseOracle) {
  check_property("sparse wire bytes == dense wire bytes",
                 [](const auto& ranks) {
                   ScaleOptionsGuard off(kScaleAllOff);
                   const auto dense = wire_bytes(RankList::from_ranks(ranks));
                   ScaleOptionsGuard on(kScaleAllOn);
                   return wire_bytes(RankList::from_ranks(ranks)) != dense;
                 });
}

TEST(RankListProp, FootprintMatchesDenseOracle) {
  check_property("sparse footprint == dense footprint",
                 [](const auto& ranks) {
                   ScaleOptionsGuard off(kScaleAllOff);
                   const std::size_t dense =
                       RankList::from_ranks(ranks).footprint_bytes();
                   ScaleOptionsGuard on(kScaleAllOn);
                   return RankList::from_ranks(ranks).footprint_bytes() !=
                          dense;
                 });
}

// ---------------------------------------------------------------------------
// Set-algebra laws against a std::set<int> oracle.
// ---------------------------------------------------------------------------

TEST(RankListProp, MergeMatchesSetUnionOracle) {
  ScaleOptionsGuard on(kScaleAllOn);
  check_property("merge == set union", [](const auto& ranks) {
    support::Rng rng(ranks.empty() ? 7u : static_cast<std::uint64_t>(
                                              ranks.front() + 11));
    const std::vector<sim::Rank> other = random_set(rng);
    std::set<sim::Rank> oracle(ranks.begin(), ranks.end());
    oracle.insert(other.begin(), other.end());
    RankList a = RankList::from_ranks(ranks);
    a.merge(RankList::from_ranks(other));
    return a.members() !=
           std::vector<sim::Rank>(oracle.begin(), oracle.end());
  });
}

TEST(RankListProp, IntersectMatchesSetOracle) {
  ScaleOptionsGuard on(kScaleAllOn);
  check_property("intersect == set intersection", [](const auto& ranks) {
    support::Rng rng(ranks.empty() ? 13u : static_cast<std::uint64_t>(
                                               ranks.front() + 29));
    const std::vector<sim::Rank> other = random_set(rng);
    const std::set<sim::Rank> left(ranks.begin(), ranks.end());
    std::vector<sim::Rank> oracle;
    for (const sim::Rank r : sorted_unique(other))
      if (left.count(r) != 0) oracle.push_back(r);
    const RankList meet = RankList::intersect(RankList::from_ranks(ranks),
                                              RankList::from_ranks(other));
    return meet.members() != oracle;
  });
}

TEST(RankListProp, ContainsMatchesSetOracle) {
  ScaleOptionsGuard on(kScaleAllOn);
  check_property("contains == set membership", [](const auto& ranks) {
    const std::set<sim::Rank> oracle(ranks.begin(), ranks.end());
    const RankList list = RankList::from_ranks(ranks);
    for (sim::Rank r = -2; r < 420; ++r)
      if (list.contains(r) != (oracle.count(r) != 0)) return true;
    return false;
  });
}

TEST(RankListProp, MergeChainsMatchOracle) {
  ScaleOptionsGuard on(kScaleAllOn);
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    support::Rng rng(seed * 97);
    RankList acc;
    std::set<sim::Rank> oracle;
    for (int step = 0; step < 8; ++step) {
      const std::vector<sim::Rank> next = random_set(rng);
      oracle.insert(next.begin(), next.end());
      acc.merge(RankList::from_ranks(next));
      ASSERT_EQ(acc.members(),
                std::vector<sim::Rank>(oracle.begin(), oracle.end()))
          << "seed " << seed << " step " << step;
      ASSERT_EQ(acc.count(), oracle.size());
    }
  }
}

TEST(RankListProp, EmptyAndSelfIdentities) {
  ScaleOptionsGuard on(kScaleAllOn);
  RankList a = RankList::from_ranks({3, 7, 11});
  const std::vector<sim::Rank> before = a.members();
  a.merge(a);
  EXPECT_EQ(a.members(), before);
  a.merge(RankList{});
  EXPECT_EQ(a.members(), before);
  RankList empty;
  empty.merge(a);
  EXPECT_EQ(empty.members(), before);
  EXPECT_EQ(RankList::intersect(a, a).members(), before);
  EXPECT_TRUE(RankList::intersect(a, RankList{}).empty());
}

// ---------------------------------------------------------------------------
// Member iteration.
// ---------------------------------------------------------------------------

TEST(RankListProp, ForEachMemberVisitsAscendingExactlyOnce) {
  ScaleOptionsGuard on(kScaleAllOn);
  check_property("for_each_member == members()", [](const auto& ranks) {
    const RankList list = RankList::from_ranks(ranks);
    std::vector<sim::Rank> visited;
    list.for_each_member([&](sim::Rank r) { visited.push_back(r); });
    return visited != sorted_unique(ranks);
  });
}

TEST(RankListProp, ForEachMemberEarlyExitStops) {
  ScaleOptionsGuard on(kScaleAllOn);
  const RankList list = RankList::from_ranks({0, 4, 8, 12, 16});
  std::vector<sim::Rank> visited;
  list.for_each_member([&](sim::Rank r) {
    visited.push_back(r);
    return r < 8;  // false at 8 stops the walk
  });
  EXPECT_EQ(visited, (std::vector<sim::Rank>{0, 4, 8}));
}

// ---------------------------------------------------------------------------
// Intern-table canonicalization invariants.
// ---------------------------------------------------------------------------

TEST(RankListIntern, SameSetSharesOneEntry) {
  ScaleOptionsGuard on(kScaleAllOn);
  check_property("same set -> same intern id", [](const auto& ranks) {
    std::vector<sim::Rank> reversed(ranks.rbegin(), ranks.rend());
    const RankList a = RankList::from_ranks(ranks);
    const RankList b = RankList::from_ranks(reversed);
    if (ranks.empty()) return a.intern_id() != nullptr || a.intern_id() != b.intern_id();
    return a.intern_id() == nullptr || a.intern_id() != b.intern_id();
  });
}

TEST(RankListIntern, DistinctSetsGetDistinctEntries) {
  ScaleOptionsGuard on(kScaleAllOn);
  check_property("distinct sets -> distinct intern ids",
                 [](const auto& ranks) {
                   if (ranks.empty()) return false;
                   std::vector<sim::Rank> other = sorted_unique(ranks);
                   other.push_back(other.back() + 1);
                   const RankList a = RankList::from_ranks(ranks);
                   const RankList b = RankList::from_ranks(other);
                   return a.intern_id() == b.intern_id();
                 });
}

TEST(RankListIntern, SingletonsComeFromTheWorldTable) {
  ScaleOptionsGuard on(kScaleAllOn);
  ranklist_intern_ensure_world(64);
  const RankListInternStats before = ranklist_intern_stats();
  const RankList a = RankList::single(17);
  const RankList b = RankList::single(17);
  const RankListInternStats after = ranklist_intern_stats();
  EXPECT_EQ(a.intern_id(), b.intern_id());
  EXPECT_EQ(a.intern_id(), RankList::from_ranks({17}).intern_id());
  // Pre-installed singletons are lookups, never fresh entries.
  EXPECT_EQ(after.entries, before.entries);
  EXPECT_GE(after.singleton_hits, before.singleton_hits + 2);
}

TEST(RankListIntern, RepeatedUnionsAreMemoized) {
  ScaleOptionsGuard on(kScaleAllOn);
  const RankList a = RankList::from_ranks({1, 5, 9, 13});
  const RankList b = RankList::from_ranks({2, 5, 8, 11});
  RankList first = a;
  first.merge(b);
  const RankListInternStats mid = ranklist_intern_stats();
  RankList second = a;
  second.merge(b);
  // Same pair again: served from the union memo, not recomputed — and the
  // memo key is order-independent.
  RankList swapped = b;
  swapped.merge(a);
  const RankListInternStats after = ranklist_intern_stats();
  EXPECT_EQ(second.intern_id(), first.intern_id());
  EXPECT_EQ(swapped.intern_id(), first.intern_id());
  EXPECT_GE(after.union_memo_hits, mid.union_memo_hits + 2);
  EXPECT_EQ(after.union_computed, mid.union_computed);
}

TEST(RankListIntern, EqualityMatchesOracleAcrossModes) {
  check_property("operator== == member-set equality", [](const auto& ranks) {
    support::Rng rng(ranks.size() + 3);
    const std::vector<sim::Rank> other = random_set(rng);
    const bool same = sorted_unique(ranks) == sorted_unique(other);
    ScaleOptionsGuard on(kScaleAllOn);
    const RankList sa = RankList::from_ranks(ranks);
    const RankList sb = RankList::from_ranks(other);
    if ((sa == sb) != same) return true;
    ScaleOptionsGuard off(kScaleAllOff);
    const RankList da = RankList::from_ranks(ranks);
    // Cross-mode comparisons (dense vs sparse) must agree too: da and sb
    // mix modes, and da/sa hold the same set across modes.
    return (da == sb) != same || !(sa == da);
  });
}

// ---------------------------------------------------------------------------
// Canonical run factorization.
// ---------------------------------------------------------------------------

TEST(RankListRuns, RunsAreCanonicalGreedyAndExact) {
  ScaleOptionsGuard on(kScaleAllOn);
  check_property("runs canonical + greedy + exact", [](const auto& ranks) {
    const RankList list = RankList::from_ranks(ranks);
    const auto runs = list.runs();
    std::vector<sim::Rank> expanded;
    sim::Rank prev_end = -1;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const RankRun& run = runs[i];
      if (run.len < 1 || run.stride < 1) return true;
      if (run.len == 1 && run.stride != 1) return true;  // not normalized
      if (i != 0 && run.start <= prev_end) return true;  // overlap/disorder
      // Greedy maximality: the next member after this run's end would have
      // been absorbed if it continued the progression.
      if (i + 1 < runs.size() && run.len >= 2 &&
          runs[i + 1].start == run.back() + run.stride) {
        return true;
      }
      prev_end = run.back();
      for (std::int32_t k = 0; k < run.len; ++k)
        expanded.push_back(run.start + k * run.stride);
    }
    return expanded != sorted_unique(ranks);
  });
}

TEST(RankListRuns, FromRunsMatchesFromRanks) {
  ScaleOptionsGuard on(kScaleAllOn);
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    support::Rng rng(seed * 31);
    // Random sorted disjoint runs, expanded to the equivalent member list.
    std::vector<RankRun> runs;
    std::vector<sim::Rank> ranks;
    sim::Rank next_start = static_cast<sim::Rank>(rng.next_below(8));
    const int nruns = 1 + static_cast<int>(rng.next_below(6));
    for (int i = 0; i < nruns; ++i) {
      const int len = 1 + static_cast<int>(rng.next_below(9));
      const int stride = 1 + static_cast<int>(rng.next_below(5));
      const RankRun run{next_start, len, len == 1 ? 1 : stride};
      runs.push_back(run);
      for (int k = 0; k < len; ++k) ranks.push_back(run.start + k * run.stride);
      next_start = run.back() + 1 + static_cast<sim::Rank>(rng.next_below(10));
    }
    const RankList via_runs = RankList::from_runs(runs);
    const RankList via_ranks = RankList::from_ranks(ranks);
    ASSERT_EQ(via_runs.intern_id(), via_ranks.intern_id())
        << "seed " << seed << ": " << set_to_string(ranks);
    ASSERT_EQ(via_runs.members(), via_ranks.members());
  }
}

// ---------------------------------------------------------------------------
// Wire round-trips across modes.
// ---------------------------------------------------------------------------

TEST(RankListWire, SparseRoundTripIsExact) {
  ScaleOptionsGuard on(kScaleAllOn);
  check_property("encode -> decode -> encode is identity",
                 [](const auto& ranks) {
                   const RankList list = RankList::from_ranks(ranks);
                   const auto image = encode_ranklist_image(list);
                   const RankList back = decode_ranklist_image(image);
                   return back.members() != sorted_unique(ranks) ||
                          encode_ranklist_image(back) != image;
                 });
}

TEST(RankListWire, CrossModeDecodeAgrees) {
  check_property("dense bytes decode sparsely (and back)",
                 [](const auto& ranks) {
                   std::vector<std::uint8_t> dense_image;
                   {
                     ScaleOptionsGuard off(kScaleAllOff);
                     dense_image =
                         encode_ranklist_image(RankList::from_ranks(ranks));
                   }
                   ScaleOptionsGuard on(kScaleAllOn);
                   const RankList sparse = decode_ranklist_image(dense_image);
                   if (sparse.members() != sorted_unique(ranks)) return true;
                   const auto sparse_image = encode_ranklist_image(sparse);
                   ScaleOptionsGuard off(kScaleAllOff);
                   return decode_ranklist_image(sparse_image).members() !=
                          sorted_unique(ranks);
                 });
}

// ---------------------------------------------------------------------------
// Golden sparse image + version skew + hostile inputs.
// ---------------------------------------------------------------------------

std::string golden_path() {
  return std::string(CHAM_TESTS_DATA_DIR) + "/ranklist_sparse.golden.bin";
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

/// The committed image covers every encoder shape at once: a dense block
/// (1-D stride 1), a strided row, a 2-D sub-grid, and isolated singletons.
RankList golden_list() {
  std::vector<sim::Rank> ranks;
  for (int i = 0; i < 16; ++i) ranks.push_back(i);            // block
  for (int i = 0; i < 12; ++i) ranks.push_back(100 + 4 * i);  // strided row
  for (int row = 0; row < 5; ++row)                           // 5x6 grid
    for (int col = 0; col < 6; ++col) ranks.push_back(200 + row * 16 + col);
  ranks.push_back(300);
  ranks.push_back(333);
  return RankList::from_ranks(std::move(ranks));
}

TEST(RankListGolden, SparseImageMatchesCommittedBytes) {
  ScaleOptionsGuard on(kScaleAllOn);
  const auto image = encode_ranklist_image(golden_list());
  {
    // The sparse image must be byte-identical to the dense encoder's.
    ScaleOptionsGuard off(kScaleAllOff);
    ASSERT_EQ(encode_ranklist_image(golden_list()), image);
  }
  if (std::getenv("CHAM_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  const auto golden = read_file(golden_path());
  ASSERT_FALSE(golden.empty())
      << "missing golden; regenerate with CHAM_REGEN_GOLDEN=1";
  EXPECT_EQ(image, golden) << "sparse ranklist wire format drifted";
  EXPECT_EQ(decode_ranklist_image(golden).members(), golden_list().members());
}

TEST(RankListGolden, FutureVersionImageIsRejected) {
  ScaleOptionsGuard on(kScaleAllOn);
  auto image = encode_ranklist_image(RankList::from_ranks({1, 2, 3}));
  image[0] = 2;  // pretend a newer format wrote it
  EXPECT_THROW(decode_ranklist_image(image), DecodeError);
}

TEST(RankListGolden, TrailingBytesAreRejected) {
  ScaleOptionsGuard on(kScaleAllOn);
  auto image = encode_ranklist_image(RankList::from_ranks({1, 2, 3}));
  image.push_back(0);
  EXPECT_THROW(decode_ranklist_image(image), DecodeError);
}

TEST(RankListHostile, SectionCountBeyondBufferIsRejected) {
  for (const ScaleOptions& mode : {kScaleAllOn, kScaleAllOff}) {
    ScaleOptionsGuard guard(mode);
    ByteWriter w;
    w.u32(0x00FFFFFF);  // claims 16M sections in a 10-byte buffer
    w.i32(0);
    w.u16(0);
    const auto bytes = w.take();
    ByteReader r(bytes);
    EXPECT_THROW(decode_ranklist(r), DecodeError);
  }
}

TEST(RankListHostile, IterationProductBeyondMemberCapIsRejected) {
  for (const ScaleOptions& mode : {kScaleAllOn, kScaleAllOff}) {
    ScaleOptionsGuard guard(mode);
    ByteWriter w;
    w.u32(1);
    w.i32(0);
    w.u16(2);
    w.i32(1 << 13);  // 8192 * 8192 = 2^26 members > 2^24 cap
    w.i32(1);
    w.i32(1 << 13);
    w.i32(1);
    const auto bytes = w.take();
    ByteReader r(bytes);
    EXPECT_THROW(decode_ranklist(r), DecodeError);
  }
}

TEST(RankListHostile, ImplausibleDimensionsAreRejected) {
  ScaleOptionsGuard on(kScaleAllOn);
  {
    ByteWriter w;  // 9 dims exceeds the dimension-count cap
    w.u32(1);
    w.i32(0);
    w.u16(9);
    for (int d = 0; d < 9; ++d) {
      w.i32(1);
      w.i32(1);
    }
    const auto bytes = w.take();
    ByteReader r(bytes);
    EXPECT_THROW(decode_ranklist(r), DecodeError);
  }
  {
    ByteWriter w;  // zero iterations
    w.u32(1);
    w.i32(0);
    w.u16(1);
    w.i32(0);
    w.i32(1);
    const auto bytes = w.take();
    ByteReader r(bytes);
    EXPECT_THROW(decode_ranklist(r), DecodeError);
  }
}

TEST(RankListHostile, LegacyShapesFallBackToDenseExpansion) {
  // A section whose dims the run fast path refuses (negative stride, or
  // out-of-order starts) must still decode to the exact member set via the
  // dense fallback, in both modes.
  for (const ScaleOptions& mode : {kScaleAllOn, kScaleAllOff}) {
    ScaleOptionsGuard guard(mode);
    ByteWriter w;
    w.u32(2);
    w.i32(50);  // descending progression: 50, 47, 44, 41
    w.u16(1);
    w.i32(4);
    w.i32(-3);
    w.i32(10);  // second section starts *below* the first
    w.u16(1);
    w.i32(3);
    w.i32(1);
    const auto bytes = w.take();
    ByteReader r(bytes);
    const RankList list = decode_ranklist(r);
    EXPECT_EQ(list.members(),
              (std::vector<sim::Rank>{10, 11, 12, 41, 44, 47, 50}));
  }
}

}  // namespace
}  // namespace cham::trace
