#include "trace/rsd.hpp"

#include <gtest/gtest.h>

#include "trace/callsite.hpp"

namespace cham::trace {
namespace {

EventRecord ev(sim::Op op, std::uint64_t stack, double delta = 0.0,
               std::int32_t dest_off = 0) {
  EventRecord record;
  record.op = op;
  record.stack_sig = stack;
  if (op == sim::Op::kSend) record.dest = Endpoint{Endpoint::Kind::kRelative, dest_off};
  if (op == sim::Op::kRecv) record.src = Endpoint{Endpoint::Kind::kRelative, -dest_off};
  record.bytes = 64;
  record.ranks = RankList::single(0);
  if (delta > 0) record.delta.add(delta);
  return record;
}

constexpr std::uint64_t kSendSig = 0x1111;
constexpr std::uint64_t kRecvSig = 0x2222;
constexpr std::uint64_t kBarrierSig = 0x3333;

TEST(Rsd, SingleEventStaysLeaf) {
  IntraTrace trace;
  trace.append(ev(sim::Op::kSend, kSendSig));
  ASSERT_EQ(trace.nodes().size(), 1u);
  EXPECT_FALSE(trace.nodes()[0].is_loop());
}

TEST(Rsd, PaperExampleFoldsToPrsd) {
  // for 1000 { for 100 { send; recv } barrier }  (background section example)
  IntraTrace trace;
  const int outer = 50, inner = 20;  // scaled-down but same structure
  for (int i = 0; i < outer; ++i) {
    for (int k = 0; k < inner; ++k) {
      trace.append(ev(sim::Op::kSend, kSendSig, 0.001, 1));
      trace.append(ev(sim::Op::kRecv, kRecvSig, 0.001, 1));
    }
    trace.append(ev(sim::Op::kBarrier, kBarrierSig, 0.002));
  }
  ASSERT_EQ(trace.nodes().size(), 1u);
  const TraceNode& top = trace.nodes()[0];
  ASSERT_TRUE(top.is_loop());
  EXPECT_EQ(top.iters, static_cast<std::uint64_t>(outer));
  ASSERT_EQ(top.body.size(), 2u);
  const TraceNode& inner_loop = top.body[0];
  ASSERT_TRUE(inner_loop.is_loop());
  EXPECT_EQ(inner_loop.iters, static_cast<std::uint64_t>(inner));
  ASSERT_EQ(inner_loop.body.size(), 2u);
  EXPECT_EQ(inner_loop.body[0].event.op, sim::Op::kSend);
  EXPECT_EQ(inner_loop.body[1].event.op, sim::Op::kRecv);
  EXPECT_EQ(top.body[1].event.op, sim::Op::kBarrier);
}

TEST(Rsd, CompressedSizeConstantInIterationCount) {
  IntraTrace a, b;
  for (int i = 0; i < 10; ++i) a.append(ev(sim::Op::kSend, kSendSig));
  for (int i = 0; i < 10000; ++i) b.append(ev(sim::Op::kSend, kSendSig));
  EXPECT_EQ(a.nodes().size(), b.nodes().size());
  EXPECT_EQ(a.compressed_events(), b.compressed_events());
  EXPECT_EQ(b.compressed_events(), 1u);
  EXPECT_EQ(b.footprint_bytes(), a.footprint_bytes());
}

TEST(Rsd, ExpandedCountMatchesAppends) {
  IntraTrace trace;
  const int outer = 17, inner = 5;
  std::uint64_t appended = 0;
  for (int i = 0; i < outer; ++i) {
    for (int k = 0; k < inner; ++k) {
      trace.append(ev(sim::Op::kSend, kSendSig));
      ++appended;
      trace.append(ev(sim::Op::kRecv, kRecvSig));
      ++appended;
    }
    trace.append(ev(sim::Op::kBarrier, kBarrierSig));
    ++appended;
  }
  std::uint64_t expanded = 0;
  for (const auto& node : trace.nodes()) expanded += node.expanded_count();
  EXPECT_EQ(expanded, appended);
  EXPECT_EQ(trace.recorded_events(), appended);
}

TEST(Rsd, DeltaHistogramsAccumulateAcrossFolds) {
  IntraTrace trace;
  for (int i = 0; i < 100; ++i)
    trace.append(ev(sim::Op::kSend, kSendSig, 0.5));
  ASSERT_EQ(trace.nodes().size(), 1u);
  const TraceNode& loop = trace.nodes()[0];
  ASSERT_TRUE(loop.is_loop());
  EXPECT_EQ(loop.body[0].event.delta.count(), 100u);
  EXPECT_DOUBLE_EQ(loop.body[0].event.delta.mean(), 0.5);
}

TEST(Rsd, DifferentStackSignaturesDoNotFold) {
  // Sends from two different call sites are distinct events.
  IntraTrace trace;
  for (int i = 0; i < 10; ++i) {
    trace.append(ev(sim::Op::kSend, 0xAAA));
    trace.append(ev(sim::Op::kSend, 0xBBB));
  }
  ASSERT_EQ(trace.nodes().size(), 1u);
  const TraceNode& loop = trace.nodes()[0];
  ASSERT_TRUE(loop.is_loop());
  EXPECT_EQ(loop.iters, 10u);
  ASSERT_EQ(loop.body.size(), 2u);
  EXPECT_EQ(loop.body[0].event.stack_sig, 0xAAAu);
  EXPECT_EQ(loop.body[1].event.stack_sig, 0xBBBu);
}

TEST(Rsd, DifferentEndpointsDoNotFold) {
  IntraTrace trace;
  trace.append(ev(sim::Op::kSend, kSendSig, 0, +1));
  trace.append(ev(sim::Op::kSend, kSendSig, 0, -1));
  EXPECT_EQ(trace.nodes().size(), 2u);
}

TEST(Rsd, DifferentByteCountsDoNotFold) {
  IntraTrace trace;
  EventRecord a = ev(sim::Op::kSend, kSendSig);
  EventRecord b = ev(sim::Op::kSend, kSendSig);
  b.bytes = 128;
  trace.append(a);
  trace.append(b);
  EXPECT_EQ(trace.nodes().size(), 2u);
}

TEST(Rsd, PhaseChangeBreaksLoop) {
  IntraTrace trace;
  for (int i = 0; i < 20; ++i) trace.append(ev(sim::Op::kSend, kSendSig));
  trace.append(ev(sim::Op::kBarrier, kBarrierSig));
  for (int i = 0; i < 20; ++i) trace.append(ev(sim::Op::kRecv, kRecvSig));
  ASSERT_EQ(trace.nodes().size(), 3u);
  EXPECT_TRUE(trace.nodes()[0].is_loop());
  EXPECT_FALSE(trace.nodes()[1].is_loop());
  EXPECT_TRUE(trace.nodes()[2].is_loop());
}

TEST(Rsd, TakeMovesAndClears) {
  IntraTrace trace;
  trace.append(ev(sim::Op::kSend, kSendSig));
  auto nodes = trace.take();
  EXPECT_EQ(nodes.size(), 1u);
  EXPECT_TRUE(trace.empty());
}

TEST(Rsd, TripleNesting) {
  // for 4 { for 3 { for 5 { send } recv } barrier }
  IntraTrace trace;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 5; ++c) trace.append(ev(sim::Op::kSend, kSendSig));
      trace.append(ev(sim::Op::kRecv, kRecvSig));
    }
    trace.append(ev(sim::Op::kBarrier, kBarrierSig));
  }
  ASSERT_EQ(trace.nodes().size(), 1u);
  const TraceNode& outer = trace.nodes()[0];
  EXPECT_EQ(outer.iters, 4u);
  ASSERT_EQ(outer.body.size(), 2u);
  const TraceNode& mid = outer.body[0];
  ASSERT_TRUE(mid.is_loop());
  EXPECT_EQ(mid.iters, 3u);
  const TraceNode& innermost = mid.body[0];
  ASSERT_TRUE(innermost.is_loop());
  EXPECT_EQ(innermost.iters, 5u);
}

TEST(Rsd, NonPositiveMaxWindowDisablesFolding) {
  // Regression: a negative max_window used to be static_cast into a huge
  // unsigned window limit ("fold everything") instead of "fold nothing".
  std::vector<TraceNode> nodes;
  for (int i = 0; i < 8; ++i)
    nodes.push_back(TraceNode::leaf(ev(sim::Op::kSend, kSendSig)));

  std::vector<TraceNode> zero = nodes;
  EXPECT_EQ(fold_tail(zero, 0), 0);
  EXPECT_EQ(zero.size(), 8u);

  std::vector<TraceNode> negative = nodes;
  EXPECT_EQ(fold_tail(negative, -3), 0);
  EXPECT_EQ(negative.size(), 8u);

  IntraTrace trace(-1);
  for (int i = 0; i < 6; ++i) trace.append(ev(sim::Op::kSend, kSendSig));
  EXPECT_EQ(trace.nodes().size(), 6u);
}

TEST(Rsd, FoldTailIdempotentOnCompressed) {
  IntraTrace trace;
  for (int i = 0; i < 30; ++i) trace.append(ev(sim::Op::kSend, kSendSig));
  auto nodes = trace.take();
  EXPECT_EQ(fold_tail(nodes, 32), 0);  // already fully folded
}

TEST(CallStack, SignatureReflectsCallSequence) {
  CallStack stack;
  const std::uint64_t empty = stack.signature();
  stack.push(site_id("main"));
  const std::uint64_t in_main = stack.signature();
  stack.push(site_id("solver"));
  const std::uint64_t in_solver = stack.signature();
  EXPECT_NE(empty, in_main);
  EXPECT_NE(in_main, in_solver);
  stack.pop();
  EXPECT_EQ(stack.signature(), in_main);
  stack.pop();
  EXPECT_EQ(stack.signature(), empty);
}

TEST(CallStack, SameSequenceSameSignatureAcrossRanks) {
  CallSiteRegistry registry(2);
  for (int r = 0; r < 2; ++r) {
    registry.stack(r).push(site_id("main"));
    registry.stack(r).push(site_id("exchange"));
  }
  EXPECT_EQ(registry.stack(0).signature(), registry.stack(1).signature());
}

TEST(CallStack, OrderMatters) {
  CallStack a, b;
  a.push(1);
  a.push(2);
  b.push(2);
  b.push(1);
  EXPECT_NE(a.signature(), b.signature());
}

TEST(CallStack, ScopeIsRaii) {
  CallStack stack;
  const auto base = stack.signature();
  {
    CallScope scope(stack, site_id("phase1"));
    EXPECT_NE(stack.signature(), base);
  }
  EXPECT_EQ(stack.signature(), base);
}

}  // namespace
}  // namespace cham::trace
