#include "trace/merge.hpp"

#include <gtest/gtest.h>

#include "trace/rsd.hpp"

namespace cham::trace {
namespace {

EventRecord ev(std::uint64_t stack, sim::Rank rank, sim::Op op = sim::Op::kSend,
               std::int32_t off = 1) {
  EventRecord record;
  record.op = op;
  record.stack_sig = stack;
  if (op == sim::Op::kSend) record.dest = Endpoint{Endpoint::Kind::kRelative, off};
  record.bytes = 8;
  record.ranks = RankList::single(rank);
  return record;
}

TEST(InterMerge, IdenticalSequencesUnionRanklists) {
  std::vector<TraceNode> a = {TraceNode::leaf(ev(1, 0)),
                              TraceNode::leaf(ev(2, 0, sim::Op::kRecv))};
  std::vector<TraceNode> b = {TraceNode::leaf(ev(1, 1)),
                              TraceNode::leaf(ev(2, 1, sim::Op::kRecv))};
  const auto merged = inter_merge(a, b);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].event.ranks, RankList::from_ranks({0, 1}));
  EXPECT_EQ(merged[1].event.ranks, RankList::from_ranks({0, 1}));
}

TEST(InterMerge, DisjointSequencesConcatenate) {
  std::vector<TraceNode> a = {TraceNode::leaf(ev(1, 0))};
  std::vector<TraceNode> b = {TraceNode::leaf(ev(99, 1))};
  const auto merged = inter_merge(a, b);
  EXPECT_EQ(merged.size(), 2u);
}

TEST(InterMerge, PartialOverlapSplicesInOrder) {
  // a: X Y Z ; b: X W Z  ->  X {Y,W} Z with X and Z unioned.
  std::vector<TraceNode> a = {TraceNode::leaf(ev(1, 0)),
                              TraceNode::leaf(ev(2, 0)),
                              TraceNode::leaf(ev(3, 0))};
  std::vector<TraceNode> b = {TraceNode::leaf(ev(1, 5)),
                              TraceNode::leaf(ev(7, 5)),
                              TraceNode::leaf(ev(3, 5))};
  const auto merged = inter_merge(a, b);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].event.stack_sig, 1u);
  EXPECT_EQ(merged[0].event.ranks.count(), 2u);
  EXPECT_EQ(merged[3].event.stack_sig, 3u);
  EXPECT_EQ(merged[3].event.ranks.count(), 2u);
}

TEST(InterMerge, EmptySidesAreIdentity) {
  std::vector<TraceNode> a = {TraceNode::leaf(ev(1, 0))};
  EXPECT_EQ(inter_merge(a, {}).size(), 1u);
  EXPECT_EQ(inter_merge({}, a).size(), 1u);
  EXPECT_TRUE(inter_merge({}, {}).empty());
}

TEST(InterMerge, LoopsWithSameShapeMergeRecursively) {
  auto make_loop = [](sim::Rank r) {
    return TraceNode::loop(100, {TraceNode::leaf(ev(1, r)),
                                 TraceNode::leaf(ev(2, r, sim::Op::kRecv))});
  };
  const auto merged = inter_merge({make_loop(0)}, {make_loop(3)});
  ASSERT_EQ(merged.size(), 1u);
  ASSERT_TRUE(merged[0].is_loop());
  EXPECT_EQ(merged[0].body[0].event.ranks, RankList::from_ranks({0, 3}));
}

TEST(InterMerge, LoopsWithDifferentItersStaySeparate) {
  auto loop_of = [](std::uint64_t iters, sim::Rank r) {
    return TraceNode::loop(iters, {TraceNode::leaf(ev(1, r))});
  };
  const auto merged = inter_merge({loop_of(10, 0)}, {loop_of(20, 1)});
  EXPECT_EQ(merged.size(), 2u);
}

TEST(InterMerge, DifferentRelativeOffsetsStaySeparate) {
  // Rank 0 sends +1, rank 1 sends -1: structurally different events.
  std::vector<TraceNode> a = {TraceNode::leaf(ev(1, 0, sim::Op::kSend, +1))};
  std::vector<TraceNode> b = {TraceNode::leaf(ev(1, 1, sim::Op::kSend, -1))};
  const auto merged = inter_merge(a, b);
  EXPECT_EQ(merged.size(), 2u);
}

TEST(InterMerge, ManyRanksFoldToConstantSize) {
  // The SPMD ideal: P identical traces merge into one sequence whose size
  // does not depend on P and whose ranklist covers everyone.
  std::vector<TraceNode> acc;
  const int p = 64;
  for (int r = 0; r < p; ++r) {
    std::vector<TraceNode> mine = {
        TraceNode::leaf(ev(1, r)),
        TraceNode::loop(50, {TraceNode::leaf(ev(2, r, sim::Op::kRecv))})};
    acc = inter_merge(std::move(acc), std::move(mine));
  }
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_EQ(acc[0].event.ranks.count(), static_cast<std::size_t>(p));
  EXPECT_EQ(acc[1].body[0].event.ranks.count(), static_cast<std::size_t>(p));
  // And the ranklist factors to one section: footprint is P-independent.
  EXPECT_EQ(acc[0].event.ranks.sections().size(), 1u);
}

TEST(InterMerge, HistogramsMergeOnAlignment) {
  EventRecord ea = ev(1, 0);
  ea.delta.add(1.0);
  EventRecord eb = ev(1, 1);
  eb.delta.add(3.0);
  const auto merged =
      inter_merge({TraceNode::leaf(ea)}, {TraceNode::leaf(eb)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].event.delta.count(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].event.delta.mean(), 2.0);
}

TEST(AppendOnline, RepeatedIntervalsFoldIntoLoop) {
  // The online trace must compress repeated per-marker intervals the same
  // way intra-node compression compresses repeated loop bodies.
  std::vector<TraceNode> online;
  for (int interval = 0; interval < 10; ++interval) {
    std::vector<TraceNode> chunk = {
        TraceNode::leaf(ev(1, 0)),
        TraceNode::leaf(ev(2, 0, sim::Op::kRecv))};
    append_online(online, std::move(chunk));
  }
  ASSERT_EQ(online.size(), 1u);
  ASSERT_TRUE(online[0].is_loop());
  EXPECT_EQ(online[0].iters, 10u);
}

TEST(InterMerge, MasterWorkerSendsGeneralizeToAbsolute) {
  // Worker i records "send offset -i" (all targeting rank 0): singleton
  // ranklists let the merge discover the common absolute target.
  std::vector<TraceNode> acc;
  for (sim::Rank r = 1; r <= 6; ++r) {
    EventRecord e;
    e.op = sim::Op::kSend;
    e.stack_sig = 0x77;
    e.dest = Endpoint::relative(r, 0);  // -r
    e.bytes = 16;
    e.ranks = RankList::single(r);
    acc = inter_merge(std::move(acc), {TraceNode::leaf(e)});
  }
  ASSERT_EQ(acc.size(), 1u);
  EXPECT_EQ(acc[0].event.dest.kind, Endpoint::Kind::kAbsolute);
  EXPECT_EQ(acc[0].event.dest.value, 0);
  EXPECT_EQ(acc[0].event.ranks.count(), 6u);
}

TEST(InterMerge, AbsoluteAndMatchingRelativeGeneralize) {
  EventRecord abs_ev;
  abs_ev.op = sim::Op::kSend;
  abs_ev.stack_sig = 0x9;
  abs_ev.dest = Endpoint::absolute(0);
  abs_ev.ranks = RankList::single(3);
  EventRecord rel_ev = abs_ev;
  rel_ev.dest = Endpoint::relative(5, 0);  // -5, still targets 0
  rel_ev.ranks = RankList::single(5);
  const auto merged =
      inter_merge({TraceNode::leaf(abs_ev)}, {TraceNode::leaf(rel_ev)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].event.dest, Endpoint::absolute(0));
}

TEST(InterMerge, MultiRankRelativeDoesNotFalselyGeneralize) {
  // A relative endpoint over a multi-rank list has no single target; only
  // identical offsets may merge.
  EventRecord a;
  a.op = sim::Op::kSend;
  a.stack_sig = 0x5;
  a.dest = Endpoint{Endpoint::Kind::kRelative, +1};
  a.ranks = RankList::from_ranks({1, 2, 3});
  EventRecord b = a;
  b.dest = Endpoint{Endpoint::Kind::kRelative, -1};
  b.ranks = RankList::from_ranks({4, 5});
  const auto merged = inter_merge({TraceNode::leaf(a)}, {TraceNode::leaf(b)});
  EXPECT_EQ(merged.size(), 2u);
}

TEST(AppendOnline, DistinctPhasesStaySequential) {
  std::vector<TraceNode> online;
  append_online(online, {TraceNode::leaf(ev(1, 0))});
  append_online(online, {TraceNode::leaf(ev(2, 0))});
  append_online(online, {TraceNode::leaf(ev(3, 0))});
  EXPECT_EQ(online.size(), 3u);
}

}  // namespace
}  // namespace cham::trace
