// End-to-end: ScalaTrace tool over the minimpi runtime.
#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "trace/serialize.hpp"

namespace cham::trace {
namespace {

/// A small SPMD ring kernel every rank executes identically.
void ring_kernel(sim::Mpi& mpi, CallSiteRegistry& stacks, int steps) {
  CallScope main_scope(stacks.stack(mpi.rank()), site_id("main"));
  const int p = mpi.size();
  for (int step = 0; step < steps; ++step) {
    CallScope loop_scope(stacks.stack(mpi.rank()), site_id("main.loop"));
    const sim::Rank next = (mpi.rank() + 1) % p;
    const sim::Rank prev = (mpi.rank() + p - 1) % p;
    mpi.compute(0.001);
    mpi.isend(next, 64, 1);
    mpi.recv(prev, 64, 1);
    mpi.barrier();
  }
}

TEST(Tracer, GlobalTraceCoversAllRanksCompactly) {
  const int p = 16;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  ScalaTraceTool tool(p, &stacks);
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { ring_kernel(mpi, stacks, 20); });

  const auto& global = tool.global_trace();
  ASSERT_FALSE(global.empty());
  // Relative endpoint encoding splits a ring into exactly three behaviour
  // groups (rank 0 wraps its receive, the interior, the last rank wraps its
  // send), each compressed to one loop — 9 leaves total, independent of P.
  std::size_t leaves = 0;
  std::size_t covered = 0;
  for (const auto& node : global) {
    leaves += node.leaf_count();
    ASSERT_TRUE(node.is_loop());
    EXPECT_EQ(node.iters, 20u);
    covered += node.body[0].event.ranks.count();
  }
  EXPECT_EQ(leaves, 9u);
  EXPECT_EQ(global.size(), 3u);
  EXPECT_EQ(covered, static_cast<std::size_t>(p));  // groups partition ranks
}

TEST(Tracer, EventCountsMatchCalls) {
  const int p = 4;
  const int steps = 10;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  ScalaTraceTool tool(p, &stacks);
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { ring_kernel(mpi, stacks, steps); });
  // isend + recv + barrier per step per rank (wait folded into recv; the
  // barrier is one event per rank).
  EXPECT_EQ(tool.events_recorded_total(),
            static_cast<std::uint64_t>(p * steps * 3));
}

TEST(Tracer, TraceSizeIndependentOfP) {
  auto run_size = [](int p) {
    sim::Engine engine({.nprocs = p});
    CallSiteRegistry stacks(p);
    ScalaTraceTool tool(p, &stacks);
    engine.set_tool(&tool);
    engine.run([&](sim::Mpi& mpi) { ring_kernel(mpi, stacks, 10); });
    return encode_trace(tool.global_trace()).size();
  };
  const auto s8 = run_size(8);
  const auto s64 = run_size(64);
  // Near-constant-size global traces regardless of node count (ScalaTrace's
  // headline property); allow small wobble from ranklist sections.
  EXPECT_LT(s64, s8 * 2);
}

TEST(Tracer, DeltaTimesCaptureComputePhases) {
  const int p = 2;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  ScalaTraceTool tool(p, &stacks);
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) {
    CallScope scope(stacks.stack(mpi.rank()), site_id("main"));
    for (int i = 0; i < 5; ++i) {
      mpi.compute(0.25);
      mpi.barrier();
    }
  });
  const auto& global = tool.global_trace();
  ASSERT_EQ(global.size(), 1u);
  ASSERT_TRUE(global[0].is_loop());
  const auto& barrier = global[0].body[0];
  EXPECT_EQ(barrier.event.op, sim::Op::kBarrier);
  EXPECT_NEAR(barrier.event.delta.mean(), 0.25, 0.01);
}

TEST(Tracer, RelativeEncodingMakesNeighborSendsIdentical) {
  // In a ring, every rank sends to +1: the merged trace should contain ONE
  // isend event covering all ranks (the relative encoding property).
  const int p = 8;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  ScalaTraceTool tool(p, &stacks);
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) {
    CallScope scope(stacks.stack(mpi.rank()), site_id("main"));
    const sim::Rank next = (mpi.rank() + 1) % p;
    const sim::Rank prev = (mpi.rank() + p - 1) % p;
    mpi.isend(next, 32, 0);
    mpi.recv(prev, 32, 0);
  });
  int isend_events = 0;
  for (const auto& node : tool.global_trace()) {
    if (!node.is_loop() && node.event.op == sim::Op::kIsend) ++isend_events;
  }
  // Ranks 0..p-2 send +1; rank p-1 sends -(p-1): two distinct events.
  EXPECT_EQ(isend_events, 2);
}

TEST(Tracer, StoringFlagSuppressesTraceGrowth) {
  const int p = 2;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);

  class NonStoringTool : public ScalaTraceTool {
   public:
    using ScalaTraceTool::ScalaTraceTool;
    void on_init(sim::Rank rank, sim::Pmpi& pmpi) override {
      ScalaTraceTool::on_init(rank, pmpi);
      if (rank == 1) state(rank).storing = false;
    }
  };
  NonStoringTool tool(p, &stacks, {.merge_at_finalize = false});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) {
    for (int i = 0; i < 10; ++i) mpi.barrier();
  });
  EXPECT_GT(tool.rank_state(0).events_recorded, 0u);
  EXPECT_EQ(tool.rank_state(1).events_recorded, 0u);
  EXPECT_EQ(tool.rank_state(1).events_observed,
            tool.rank_state(0).events_observed);
  EXPECT_GT(tool.rank_trace_bytes(0), tool.rank_trace_bytes(1));
}

TEST(Tracer, MergeDisabledLeavesGlobalEmpty) {
  const int p = 2;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  ScalaTraceTool tool(p, &stacks, {.merge_at_finalize = false});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { mpi.barrier(); });
  EXPECT_TRUE(tool.global_trace().empty());
  EXPECT_FALSE(tool.rank_state(0).intra.empty());
}

TEST(Tracer, TimersAccumulate) {
  const int p = 8;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  ScalaTraceTool tool(p, &stacks);
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { ring_kernel(mpi, stacks, 50); });
  EXPECT_GT(tool.intra_seconds(), 0.0);
  EXPECT_GT(tool.inter_seconds(), 0.0);
}

TEST(Tracer, MasterWorkerWildcardTraced) {
  const int p = 4;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  ScalaTraceTool tool(p, &stacks);
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) {
    CallScope scope(stacks.stack(mpi.rank()),
                    site_id(mpi.rank() == 0 ? "master" : "worker"));
    if (mpi.rank() == 0) {
      for (int i = 0; i < p - 1; ++i) mpi.recv(sim::kAnySource, 8);
    } else {
      mpi.send(0, 8);
    }
  });
  // Find the wildcard receive in the global trace.
  bool found_any = false;
  for (const auto& node : tool.global_trace()) {
    const auto check = [&](const TraceNode& n) {
      if (!n.is_loop() && n.event.op == sim::Op::kRecv &&
          n.event.src.kind == Endpoint::Kind::kAny) {
        found_any = true;
      }
    };
    if (node.is_loop()) {
      for (const auto& child : node.body) check(child);
    } else {
      check(node);
    }
  }
  EXPECT_TRUE(found_any);
}

}  // namespace
}  // namespace cham::trace
