// Property-based tests over randomized inputs: invariants that must hold
// for every event sequence, not just the hand-written cases.
#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "trace/merge.hpp"
#include "trace/rsd.hpp"
#include "trace/serialize.hpp"

namespace cham::trace {
namespace {

/// Random event stream with loop-ish structure: a few distinct event kinds
/// repeated in random runs, so folding has something to chew on.
std::vector<EventRecord> random_stream(support::Rng& rng, int length,
                                       int distinct) {
  std::vector<EventRecord> events;
  events.reserve(static_cast<std::size_t>(length));
  while (static_cast<int>(events.size()) < length) {
    const std::uint64_t kind = rng.next_below(static_cast<std::uint64_t>(distinct));
    const int run = 1 + static_cast<int>(rng.next_below(6));
    for (int i = 0; i < run && static_cast<int>(events.size()) < length; ++i) {
      EventRecord ev;
      ev.op = kind % 2 == 0 ? sim::Op::kSend : sim::Op::kRecv;
      ev.stack_sig = 0x1000 + kind;
      if (ev.op == sim::Op::kSend) {
        ev.dest = Endpoint{Endpoint::Kind::kRelative,
                           static_cast<std::int32_t>(kind % 3) - 1};
      } else {
        ev.src = Endpoint{Endpoint::Kind::kRelative, 1};
      }
      ev.bytes = 8u << (kind % 4);
      ev.ranks = RankList::single(0);
      ev.delta.add(rng.next_double() * 0.01);
      events.push_back(std::move(ev));
    }
  }
  return events;
}

class RandomStreams : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RandomStreams,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(RandomStreams, FoldingConservesExpandedEventCount) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto events = random_stream(rng, 300, 5);
  IntraTrace trace;
  for (const auto& ev : events) trace.append(ev);
  std::uint64_t expanded = 0;
  for (const auto& node : trace.nodes()) expanded += node.expanded_count();
  EXPECT_EQ(expanded, events.size());
}

TEST_P(RandomStreams, FoldingConservesDeltaSampleCount) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7);
  const auto events = random_stream(rng, 200, 4);
  IntraTrace trace;
  std::uint64_t samples_in = 0;
  for (const auto& ev : events) {
    samples_in += ev.delta.count();
    trace.append(ev);
  }
  std::function<std::uint64_t(const TraceNode&)> count_samples =
      [&](const TraceNode& node) -> std::uint64_t {
    if (!node.is_loop()) return node.event.delta.count();
    std::uint64_t n = 0;
    for (const auto& child : node.body) n += count_samples(child);
    return n;
  };
  std::uint64_t samples_out = 0;
  for (const auto& node : trace.nodes()) samples_out += count_samples(node);
  EXPECT_EQ(samples_out, samples_in);
}

TEST_P(RandomStreams, SerializationRoundTripsExactly) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31);
  const auto events = random_stream(rng, 150, 6);
  IntraTrace trace;
  for (const auto& ev : events) trace.append(ev);
  const auto wire = encode_trace(trace.nodes());
  const auto decoded = decode_trace(wire);
  ASSERT_TRUE(same_shape(decoded, trace.nodes()));
  // Deep check via re-encoding: byte-identical wire form.
  EXPECT_EQ(encode_trace(decoded), wire);
}

TEST_P(RandomStreams, MergeConservesEventRankCoverage) {
  // Merging two rank-disjoint traces must preserve the total (event, rank)
  // expansion regardless of how sequences align.
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101);
  auto build = [&rng](sim::Rank rank, int length) {
    const auto events = random_stream(rng, length, 4);
    IntraTrace trace;
    for (auto ev : events) {
      ev.ranks = RankList::single(rank);
      trace.append(std::move(ev));
    }
    return trace.take();
  };
  auto a = build(0, 120);
  auto b = build(1, 90);
  std::function<std::uint64_t(const TraceNode&)> coverage =
      [&](const TraceNode& node) -> std::uint64_t {
    if (!node.is_loop()) return node.event.ranks.count();
    std::uint64_t n = 0;
    for (const auto& child : node.body) n += coverage(child);
    return n * node.iters;
  };
  auto total = [&](const std::vector<TraceNode>& nodes) {
    std::uint64_t n = 0;
    for (const auto& node : nodes) n += coverage(node);
    return n;
  };
  const std::uint64_t before = total(a) + total(b);
  const auto merged = inter_merge(std::move(a), std::move(b));
  EXPECT_EQ(total(merged), before);
}

TEST_P(RandomStreams, FuzzDecodeNeverCrashes) {
  // Random bytes must either decode or throw DecodeError — never UB.
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 997);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(200));
    for (auto& byte : junk)
      byte = static_cast<std::uint8_t>(rng.next_u64());
    try {
      const auto nodes = decode_trace(junk);
      (void)nodes;  // absurdly unlikely but legal
    } catch (const DecodeError&) {
      // expected path
    }
  }
  SUCCEED();
}

TEST_P(RandomStreams, CorruptedValidTraceThrowsOrDecodes) {
  // Bit-flipping a valid wire image must never produce UB.
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 37);
  const auto events = random_stream(rng, 60, 3);
  IntraTrace trace;
  for (const auto& ev : events) trace.append(ev);
  const auto wire = encode_trace(trace.nodes());
  for (int trial = 0; trial < 100; ++trial) {
    auto corrupted = wire;
    const std::size_t pos = rng.next_below(corrupted.size());
    corrupted[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    try {
      const auto nodes = decode_trace(corrupted);
      (void)nodes;
    } catch (const DecodeError&) {
    } catch (const std::logic_error&) {
      // CHAM_CHECK inside ranklist reconstruction may fire; also fine.
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace cham::trace
