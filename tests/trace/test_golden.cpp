// Golden-file byte-identity tests for the compression pipeline.
//
// The committed files under tests/data/ hold the wire encodings produced by
// the pre-optimization deep-comparison code on fixed deterministic inputs.
// Every test encodes the same inputs twice — fast path off (the oracle code
// path) and on — and requires both to match the golden bytes exactly, so
// any hash-precheck bug that changes a fold or merge decision shows up as a
// byte diff, not just a plausible-looking trace.
//
// Regenerate after an *intentional* wire or fold-rule change with
//   CHAM_REGEN_GOLDEN=1 ctest -R Golden
// and review the binary diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "trace/merge.hpp"
#include "trace/perf.hpp"
#include "trace/rsd.hpp"
#include "trace/serialize.hpp"

#ifndef CHAM_TESTS_DATA_DIR
#error "CHAM_TESTS_DATA_DIR must point at tests/data"
#endif

namespace cham::trace {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(CHAM_TESTS_DATA_DIR) + "/" + name;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << "cannot write " << path;
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

/// Deterministic stream with the bench workload's character: repeated
/// timesteps whose nested structure matches while one message size varies,
/// plus seeded irregular events — exercises both fold rules, loop
/// increments, and merge alignment.
std::vector<EventRecord> oracle_stream(std::uint64_t seed, int timesteps) {
  support::Rng rng(seed);
  std::vector<EventRecord> out;
  auto push = [&out](sim::Op op, std::uint64_t stack, std::uint64_t bytes,
                     std::int32_t off) {
    EventRecord ev;
    ev.op = op;
    ev.stack_sig = stack;
    ev.bytes = bytes;
    if (op == sim::Op::kSend) ev.dest = Endpoint{Endpoint::Kind::kRelative, off};
    if (op == sim::Op::kRecv) ev.src = Endpoint{Endpoint::Kind::kRelative, off};
    ev.ranks = RankList::single(0);
    ev.delta.add(1e-6 + 1e-9 * static_cast<double>(bytes % 97));
    out.push_back(std::move(ev));
  };
  for (int t = 0; t < timesteps; ++t) {
    const std::uint64_t adaptive = 4096 + 8 * static_cast<std::uint64_t>(t % 4);
    for (int rep = 0; rep < 2; ++rep) {
      for (int d = 0; d < 3; ++d) push(sim::Op::kSend, 0x11, 512 + d, +1);
      push(sim::Op::kSend, 0x11, adaptive, +1);
      push(sim::Op::kRecv, 0x12, adaptive, -1);
    }
    if (rng.next_below(5) == 0)
      push(sim::Op::kAllreduce, 0x13, 8 * (1 + rng.next_below(4)), 0);
    push(sim::Op::kBarrier, 0x14, 0, 0);
  }
  return out;
}

std::vector<TraceNode> fold(const std::vector<EventRecord>& stream) {
  IntraTrace intra;
  for (const EventRecord& ev : stream) intra.append(ev);
  return intra.take();
}

class FastPathGuard {
 public:
  FastPathGuard() : saved_(fast_path_enabled()) {}
  ~FastPathGuard() { set_fast_path_enabled(saved_); }

 private:
  bool saved_;
};

/// Run `produce` with the fast path off (oracle) and on, require the two
/// encodings byte-identical, then compare against / regenerate the golden.
void check_golden(const std::string& name,
                  const std::function<std::vector<std::uint8_t>()>& produce) {
  FastPathGuard guard;
  set_fast_path_enabled(false);
  const std::vector<std::uint8_t> oracle = produce();
  set_fast_path_enabled(true);
  const std::vector<std::uint8_t> fast = produce();
  ASSERT_EQ(oracle, fast) << name
                          << ": fast path changed the encoded trace";

  const std::string path = golden_path(name);
  if (std::getenv("CHAM_REGEN_GOLDEN") != nullptr) {
    write_file(path, oracle);
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::vector<std::uint8_t> golden = read_file(path);
  ASSERT_FALSE(golden.empty())
      << path << " missing — run with CHAM_REGEN_GOLDEN=1 to create it";
  EXPECT_EQ(oracle, golden) << name << ": output drifted from golden bytes";
}

TEST(Golden, FoldedTraceBytes) {
  check_golden("fold_single_rank.golden.bin", [] {
    return encode_trace(fold(oracle_stream(0xD00D, 48)));
  });
}

TEST(Golden, IrregularFoldedTraceBytes) {
  check_golden("fold_irregular.golden.bin", [] {
    // Different seed and period: more jitter events, partial folds at the
    // tail, windows that never close.
    auto stream = oracle_stream(0xBEEF, 31);
    auto extra = oracle_stream(0xF00D, 5);
    stream.insert(stream.end(), extra.begin(), extra.end());
    return encode_trace(fold(stream));
  });
}

TEST(Golden, MergedTraceBytes) {
  check_golden("merge_four_ranks.golden.bin", [] {
    std::vector<std::vector<TraceNode>> per_rank;
    for (std::uint64_t r = 0; r < 4; ++r) {
      auto stream = oracle_stream(0xA110 + r, 40);
      for (EventRecord& ev : stream)
        ev.ranks = RankList::single(static_cast<sim::Rank>(r));
      per_rank.push_back(fold(stream));
    }
    auto merged = inter_merge(std::move(per_rank[0]), std::move(per_rank[1]));
    auto other = inter_merge(std::move(per_rank[2]), std::move(per_rank[3]));
    return encode_trace(inter_merge(std::move(merged), std::move(other)));
  });
}

}  // namespace
}  // namespace cham::trace
