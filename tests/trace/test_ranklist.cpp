#include "trace/ranklist.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"

namespace cham::trace {
namespace {

TEST(RankList, SingletonBasics) {
  RankList list = RankList::single(7);
  EXPECT_EQ(list.count(), 1u);
  EXPECT_TRUE(list.contains(7));
  EXPECT_FALSE(list.contains(6));
  EXPECT_EQ(list.first(), 7);
}

TEST(RankList, FromRanksDeduplicatesAndSorts) {
  RankList list = RankList::from_ranks({5, 1, 3, 1, 5});
  EXPECT_EQ(list.count(), 3u);
  const std::vector<sim::Rank> expected = {1, 3, 5};
  EXPECT_EQ(list.members(), expected);
}

TEST(RankList, MergeIsSetUnion) {
  RankList a = RankList::from_ranks({0, 2, 4});
  RankList b = RankList::from_ranks({1, 2, 3});
  a.merge(b);
  const std::vector<sim::Rank> expected = {0, 1, 2, 3, 4};
  EXPECT_EQ(a.members(), expected);
}

TEST(RankList, ContiguousRangeFactorsToOneSection) {
  std::vector<sim::Rank> ranks;
  for (int i = 0; i < 64; ++i) ranks.push_back(i);
  RankList list = RankList::from_ranks(std::move(ranks));
  const auto sections = list.sections();
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].start, 0);
  ASSERT_EQ(sections[0].dims.size(), 1u);
  EXPECT_EQ(sections[0].dims[0], (std::pair<int, int>{64, 1}));
}

TEST(RankList, StridedRangeFactorsToOneSection) {
  std::vector<sim::Rank> ranks;
  for (int i = 0; i < 16; ++i) ranks.push_back(3 + 4 * i);
  RankList list = RankList::from_ranks(std::move(ranks));
  const auto sections = list.sections();
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].start, 3);
  EXPECT_EQ(sections[0].dims[0], (std::pair<int, int>{16, 4}));
}

TEST(RankList, GridInteriorFactorsTo2D) {
  // Interior of an 8x8 grid: rows 1..6, cols 1..6 -> 36 ranks.
  std::vector<sim::Rank> ranks;
  for (int row = 1; row <= 6; ++row)
    for (int col = 1; col <= 6; ++col) ranks.push_back(row * 8 + col);
  RankList list = RankList::from_ranks(std::move(ranks));
  const auto sections = list.sections();
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].start, 9);
  ASSERT_EQ(sections[0].dims.size(), 2u);
  EXPECT_EQ(sections[0].dims[0], (std::pair<int, int>{6, 8}));  // rows
  EXPECT_EQ(sections[0].dims[1], (std::pair<int, int>{6, 1}));  // cols
  EXPECT_EQ(sections[0].count(), 36u);
}

TEST(RankList, SectionsExpandBackExactly) {
  support::Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<sim::Rank> ranks;
    const int n = 1 + static_cast<int>(rng.next_below(40));
    for (int i = 0; i < n; ++i)
      ranks.push_back(static_cast<sim::Rank>(rng.next_below(200)));
    RankList list = RankList::from_ranks(ranks);
    std::vector<sim::Rank> expanded;
    for (const auto& sec : list.sections()) sec.expand_into(expanded);
    RankList rebuilt = RankList::from_ranks(std::move(expanded));
    EXPECT_EQ(rebuilt, list) << "trial " << trial;
  }
}

TEST(RankList, FootprintIndependentOfSizeForRegularSets) {
  // The compressed encoding of [0, P) must not grow with P.
  std::vector<sim::Rank> small_ranks, big_ranks;
  for (int i = 0; i < 16; ++i) small_ranks.push_back(i);
  for (int i = 0; i < 1024; ++i) big_ranks.push_back(i);
  const RankList small = RankList::from_ranks(std::move(small_ranks));
  const RankList big = RankList::from_ranks(std::move(big_ranks));
  EXPECT_EQ(small.footprint_bytes(), big.footprint_bytes());
}

TEST(RankList, ToStringEbnfShape) {
  RankList list = RankList::from_ranks({0, 1, 2, 3});
  EXPECT_EQ(list.to_string(), "<1 0 4 1>");
  RankList single = RankList::single(5);
  EXPECT_EQ(single.to_string(), "<0 5>");
}

TEST(RankList, EmptyListBehaves) {
  RankList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.count(), 0u);
  EXPECT_TRUE(list.sections().empty());
  EXPECT_FALSE(list.contains(0));
}

TEST(RankList, MergeManySingletonsMatchesRange) {
  RankList acc;
  for (int i = 0; i < 100; ++i) acc.merge(RankList::single(i));
  std::vector<sim::Rank> all;
  for (int i = 0; i < 100; ++i) all.push_back(i);
  EXPECT_EQ(acc, RankList::from_ranks(std::move(all)));
  EXPECT_EQ(acc.sections().size(), 1u);
}

TEST(RankSection, CountMultiplies) {
  RankSection sec;
  sec.start = 0;
  sec.dims = {{4, 8}, {4, 1}};
  EXPECT_EQ(sec.count(), 16u);
}

}  // namespace
}  // namespace cham::trace
