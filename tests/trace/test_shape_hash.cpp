// Property tests for the structural shape hashes behind the compression
// fast path (docs/PERF.md). The invariants the hot loops rely on:
//
//   soundness   equal shapes  =>  equal, nonzero hashes (exact, always)
//   precision   different shapes => different hashes (w.h.p.; a collision
//               costs a wasted deep compare, never a wrong fold/merge)
//   maintenance every library mutation (folding, merging, decode) leaves
//               cached hashes equal to a from-scratch rehash
//   identity    fast path on/off produces byte-identical traces
#include <gtest/gtest.h>

#include <functional>

#include "support/rng.hpp"
#include "trace/merge.hpp"
#include "trace/perf.hpp"
#include "trace/rsd.hpp"
#include "trace/serialize.hpp"

namespace cham::trace {
namespace {

/// Restore the process-wide fast-path switch on scope exit so a failing
/// test cannot poison the rest of the suite.
class FastPathGuard {
 public:
  FastPathGuard() : saved_(fast_path_enabled()) {}
  ~FastPathGuard() { set_fast_path_enabled(saved_); }

 private:
  bool saved_;
};

EventRecord random_event(support::Rng& rng) {
  EventRecord ev;
  const std::uint64_t kind = rng.next_below(4);
  ev.op = kind == 0   ? sim::Op::kSend
          : kind == 1 ? sim::Op::kRecv
          : kind == 2 ? sim::Op::kBarrier
                      : sim::Op::kAllreduce;
  ev.stack_sig = 0x4000 + rng.next_below(6);
  if (ev.op == sim::Op::kSend)
    ev.dest = Endpoint{Endpoint::Kind::kRelative,
                       static_cast<std::int32_t>(rng.next_below(5)) - 2};
  if (ev.op == sim::Op::kRecv)
    ev.src = Endpoint{Endpoint::Kind::kRelative,
                      static_cast<std::int32_t>(rng.next_below(5)) - 2};
  ev.bytes = 8u << rng.next_below(5);
  ev.tag = static_cast<std::int32_t>(rng.next_below(3));
  ev.ranks = RankList::single(0);
  ev.delta.add(rng.next_double() * 0.01);
  return ev;
}

std::vector<TraceNode> fold_random_stream(std::uint64_t seed, int length) {
  support::Rng rng(seed);
  IntraTrace trace;
  while (static_cast<int>(trace.recorded_events()) < length) {
    const EventRecord ev = random_event(rng);
    const int run = 1 + static_cast<int>(rng.next_below(5));
    for (int i = 0; i < run; ++i) trace.append(ev);
  }
  return trace.take();
}

/// Recursively check a node's cached hashes against a from-scratch rehash
/// of a private copy.
void expect_hashes_consistent(const TraceNode& node) {
  ASSERT_TRUE(node.hashed());
  TraceNode copy = node;
  copy.rehash_deep();
  EXPECT_EQ(node.shape_hash, copy.shape_hash);
  EXPECT_EQ(node.merge_hash, copy.merge_hash);
  EXPECT_EQ(node.body_seq, copy.body_seq);
  for (const TraceNode& child : node.body) expect_hashes_consistent(child);
}

class ShapeHashSeeds : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, ShapeHashSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(ShapeHashSeeds, EventHashEqualIffSameShape) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x9E37);
  std::vector<EventRecord> events;
  for (int i = 0; i < 64; ++i) events.push_back(random_event(rng));
  for (const EventRecord& a : events) {
    for (const EventRecord& b : events) {
      if (a.same_shape(b)) {
        EXPECT_EQ(a.shape_hash(), b.shape_hash());  // soundness: exact
      } else {
        // Precision: a violation here is a 2^-64-scale collision inside a
        // 64-event pool — report it, it means the hash lost a field.
        EXPECT_NE(a.shape_hash(), b.shape_hash());
      }
      EXPECT_NE(a.shape_hash(), 0u);  // 0 is the "not computed" sentinel
    }
  }
}

TEST_P(ShapeHashSeeds, MergeClassHashIgnoresEndpointsOnly) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x51ED);
  for (int i = 0; i < 64; ++i) {
    EventRecord a = random_event(rng);
    EventRecord b = a;
    b.src = Endpoint::any();
    b.dest = Endpoint{Endpoint::Kind::kRelative, 17};
    // Endpoint changes never move an event out of its merge class...
    EXPECT_EQ(a.merge_class_hash(), b.merge_class_hash());
    // ...but any merge-invariant field does.
    EventRecord c = a;
    c.bytes += 1;
    EXPECT_NE(a.merge_class_hash(), c.merge_class_hash());
    EventRecord d = a;
    d.stack_sig ^= 1;
    EXPECT_NE(a.merge_class_hash(), d.merge_class_hash());
  }
}

TEST_P(ShapeHashSeeds, FoldedTraceKeepsHashesConsistent) {
  const auto nodes =
      fold_random_stream(static_cast<std::uint64_t>(GetParam()), 400);
  for (const TraceNode& node : nodes) expect_hashes_consistent(node);
}

TEST_P(ShapeHashSeeds, LoopBodySeqMatchesPolynomialOfChildren) {
  const auto nodes =
      fold_random_stream(static_cast<std::uint64_t>(GetParam()) * 3, 300);
  std::function<void(const TraceNode&)> check = [&](const TraceNode& node) {
    if (!node.is_loop()) return;
    std::uint64_t seq = 0;
    for (const TraceNode& child : node.body) {
      seq = seq * kShapeSeqBase + child.shape_hash;
      check(child);
    }
    EXPECT_EQ(node.body_seq, seq);
  };
  for (const TraceNode& node : nodes) check(node);
}

TEST_P(ShapeHashSeeds, DecodePreservesShapeHashes) {
  const auto nodes =
      fold_random_stream(static_cast<std::uint64_t>(GetParam()) * 7, 300);
  const auto decoded = decode_trace(encode_trace(nodes));
  ASSERT_EQ(decoded.size(), nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(decoded[i].shape_hash, nodes[i].shape_hash);
    EXPECT_EQ(decoded[i].merge_hash, nodes[i].merge_hash);
    expect_hashes_consistent(decoded[i]);
  }
}

TEST_P(ShapeHashSeeds, MergedTraceKeepsHashesConsistent) {
  auto a = fold_random_stream(static_cast<std::uint64_t>(GetParam()) * 11, 250);
  auto b = fold_random_stream(static_cast<std::uint64_t>(GetParam()) * 13, 250);
  substitute_ranks(a, RankList::single(0));
  substitute_ranks(b, RankList::single(1));
  const auto merged = inter_merge(std::move(a), std::move(b));
  for (const TraceNode& node : merged) expect_hashes_consistent(node);
}

TEST_P(ShapeHashSeeds, FastPathProducesByteIdenticalTraces) {
  FastPathGuard guard;
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 17;

  set_fast_path_enabled(false);
  auto base_a = fold_random_stream(seed, 350);
  auto base_b = fold_random_stream(seed + 1, 350);
  substitute_ranks(base_b, RankList::single(1));
  const auto base_wire = encode_trace(
      inter_merge(std::move(base_a), std::move(base_b)));

  set_fast_path_enabled(true);
  auto fast_a = fold_random_stream(seed, 350);
  auto fast_b = fold_random_stream(seed + 1, 350);
  substitute_ranks(fast_b, RankList::single(1));
  const auto fast_wire = encode_trace(
      inter_merge(std::move(fast_a), std::move(fast_b)));

  EXPECT_EQ(base_wire, fast_wire);
}

TEST(ShapeHash, AbsorbStatsKeepsShape) {
  // Histograms and ranklists are not shape: absorbing stats must not
  // disturb any cached hash.
  support::Rng rng(0xABCD);
  TraceNode a = TraceNode::leaf(random_event(rng));
  TraceNode b = a;
  b.event.delta.add(0.5);
  const std::uint64_t before = a.shape_hash;
  a.absorb_stats(b);
  EXPECT_EQ(a.shape_hash, before);
  expect_hashes_consistent(a);
}

TEST(ShapeHash, SubstituteRanksKeepsShapeHashes) {
  auto nodes = fold_random_stream(0x5EED, 300);
  std::vector<std::uint64_t> before;
  for (const TraceNode& node : nodes) before.push_back(node.shape_hash);
  substitute_ranks(nodes, RankList::single(3));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i].shape_hash, before[i]);
    expect_hashes_consistent(nodes[i]);
  }
}

}  // namespace
}  // namespace cham::trace
