#include "trace/serialize.hpp"

#include <gtest/gtest.h>

#include "trace/rsd.hpp"

namespace cham::trace {
namespace {

EventRecord sample_event(std::uint64_t stack, sim::Op op = sim::Op::kSend) {
  EventRecord ev;
  ev.op = op;
  ev.stack_sig = stack;
  ev.src = Endpoint::any();
  ev.dest = Endpoint{Endpoint::Kind::kRelative, -3};
  ev.bytes = 4096;
  ev.tag = 17;
  ev.comm = sim::kCommWorld;
  ev.ranks = RankList::from_ranks({0, 1, 2, 3, 8, 16});
  ev.delta.add(0.5);
  ev.delta.add(1.5);
  return ev;
}

/// Deep equality including stats (same_shape ignores ranklist/histogram).
bool deep_equal(const TraceNode& a, const TraceNode& b) {
  if (a.iters != b.iters) return false;
  if (a.is_loop()) {
    if (a.body.size() != b.body.size()) return false;
    for (std::size_t i = 0; i < a.body.size(); ++i)
      if (!deep_equal(a.body[i], b.body[i])) return false;
    return true;
  }
  return a.event.same_shape(b.event) && a.event.ranks == b.event.ranks &&
         a.event.delta == b.event.delta;
}

TEST(Serialize, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.f64(3.14159);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, TruncationThrows) {
  ByteWriter w;
  w.u32(7);
  const auto buf = w.take();
  ByteReader r(buf);
  r.u16();
  EXPECT_THROW(r.u64(), DecodeError);
}

TEST(Serialize, RanklistRoundTrip) {
  const RankList list = RankList::from_ranks({0, 1, 2, 3, 10, 20, 30, 41});
  ByteWriter w;
  encode_ranklist(w, list);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(decode_ranklist(r), list);
}

TEST(Serialize, LeafRoundTrip) {
  const TraceNode node = TraceNode::leaf(sample_event(0x1234));
  const auto buf = encode_trace({node});
  const auto decoded = decode_trace(buf);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_TRUE(deep_equal(decoded[0], node));
}

TEST(Serialize, NestedLoopRoundTrip) {
  TraceNode inner = TraceNode::loop(
      100, {TraceNode::leaf(sample_event(1)),
            TraceNode::leaf(sample_event(2, sim::Op::kRecv))});
  TraceNode outer = TraceNode::loop(
      1000,
      {std::move(inner), TraceNode::leaf(sample_event(3, sim::Op::kBarrier))});
  const auto buf = encode_trace({outer});
  const auto decoded = decode_trace(buf);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_TRUE(deep_equal(decoded[0], outer));
}

TEST(Serialize, MultiNodeSequenceRoundTrip) {
  std::vector<TraceNode> nodes;
  for (int i = 0; i < 5; ++i)
    nodes.push_back(TraceNode::leaf(sample_event(static_cast<std::uint64_t>(i))));
  const auto buf = encode_trace(nodes);
  const auto decoded = decode_trace(buf);
  ASSERT_EQ(decoded.size(), nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i)
    EXPECT_TRUE(deep_equal(decoded[i], nodes[i]));
}

TEST(Serialize, EmptyTraceRoundTrip) {
  const auto buf = encode_trace({});
  EXPECT_TRUE(decode_trace(buf).empty());
}

TEST(Serialize, GarbageRejected) {
  std::vector<std::uint8_t> garbage = {1, 0, 0, 0, 0x55};
  EXPECT_THROW(decode_trace(garbage), DecodeError);
}

TEST(Serialize, OversizedCountClaimsRejectedWithoutAllocation) {
  // A corrupt header claiming 4 billion nodes must be rejected by the
  // remaining-bytes bound before any reservation, not OOM the process.
  std::vector<std::uint8_t> huge = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_THROW(decode_trace(huge), DecodeError);
  // Same for a ranklist whose element count exceeds the buffer.
  ByteWriter w;
  w.u32(0xFFFFFFFFu);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_THROW(decode_ranklist(r), DecodeError);
}

TEST(Serialize, ReaderRawBoundsChecked) {
  const std::vector<std::uint8_t> buf = {1, 2, 3};
  ByteReader r(buf);
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_EQ(r.raw(2), (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_THROW(r.raw(2), DecodeError);
}

TEST(Serialize, TrailingBytesRejected) {
  auto buf = encode_trace({TraceNode::leaf(sample_event(9))});
  buf.push_back(0);
  EXPECT_THROW(decode_trace(buf), DecodeError);
}

TEST(Serialize, HistogramStatsSurviveRoundTrip) {
  EventRecord ev = sample_event(5);
  for (int i = 0; i < 100; ++i) ev.delta.add(static_cast<double>(i) * 0.01);
  const auto buf = encode_trace({TraceNode::leaf(ev)});
  const auto decoded = decode_trace(buf);
  const auto& h = decoded[0].event.delta;
  EXPECT_EQ(h.count(), ev.delta.count());
  EXPECT_DOUBLE_EQ(h.mean(), ev.delta.mean());
  EXPECT_DOUBLE_EQ(h.min(), ev.delta.min());
  EXPECT_DOUBLE_EQ(h.max(), ev.delta.max());
}

TEST(Serialize, CompressedTraceIsCompact) {
  // 10k folded events must serialize to well under a kilobyte.
  IntraTrace trace;
  EventRecord ev = sample_event(0xF00D);
  for (int i = 0; i < 10000; ++i) trace.append(ev);
  const auto buf = encode_trace(trace.nodes());
  EXPECT_LT(buf.size(), 1024u);
}

}  // namespace
}  // namespace cham::trace
