#include "core/acurdion.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/mpi.hpp"

namespace cham::core {
namespace {

using trace::CallScope;
using trace::CallSiteRegistry;
using trace::site_id;

void kernel(sim::Mpi& mpi, CallSiteRegistry& stacks, int steps) {
  const int p = mpi.size();
  for (int step = 0; step < steps; ++step) {
    CallScope scope(stacks.stack(mpi.rank()), site_id("kernel"));
    const sim::Rank next = (mpi.rank() + 1) % p;
    const sim::Rank prev = (mpi.rank() + p - 1) % p;
    mpi.isend(next, 64, 0);
    mpi.recv(prev, 64, 0);
    mpi.marker();  // ACURDION ignores markers; traced as plain barriers
  }
}

TEST(Acurdion, ClustersOnceAtFinalize) {
  const int p = 16;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  AcurdionTool tool(p, &stacks, {.k = 3});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { kernel(mpi, stacks, 10); });
  EXPECT_EQ(tool.effective_k(), 3u);
  EXPECT_EQ(tool.clusters().total_members(), 16u);
  EXPECT_FALSE(tool.global_trace().empty());
}

TEST(Acurdion, AllRanksPayFullTraceStorageUntilFinalize) {
  // The contrast with Chameleon's Table IV: under ACURDION every rank keeps
  // its full trace in memory because clustering happens only at the end.
  const int p = 8;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);

  class ProbeTool : public AcurdionTool {
   public:
    using AcurdionTool::AcurdionTool;
    void handle_finalize(sim::Rank rank, sim::Pmpi& pmpi) override {
      bytes_at_finalize.push_back(rank_trace_bytes(rank));
      AcurdionTool::handle_finalize(rank, pmpi);
    }
    std::vector<std::size_t> bytes_at_finalize;
  };
  ProbeTool tool(p, &stacks, {.k = 2});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { kernel(mpi, stacks, 20); });
  ASSERT_EQ(tool.bytes_at_finalize.size(), static_cast<std::size_t>(p));
  for (std::size_t bytes : tool.bytes_at_finalize) EXPECT_GT(bytes, 0u);
}

TEST(Acurdion, GlobalTraceCoversEveryRank) {
  const int p = 8;
  const int steps = 5;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  AcurdionTool tool(p, &stacks, {.k = 3});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { kernel(mpi, stacks, steps); });

  std::uint64_t covered = 0;
  std::function<void(const trace::TraceNode&, std::uint64_t)> walk =
      [&](const trace::TraceNode& node, std::uint64_t mult) {
        if (node.is_loop()) {
          for (const auto& child : node.body) walk(child, mult * node.iters);
        } else {
          covered += mult * node.event.ranks.count();
        }
      };
  for (const auto& node : tool.global_trace()) walk(node, 1);
  // isend + recv + marker barrier per step per rank.
  EXPECT_EQ(covered, static_cast<std::uint64_t>(p * steps * 3));
}

TEST(Acurdion, ClusteringTimeIsSinglePass) {
  // ACURDION's clustering cost must not scale with the number of markers
  // (it runs once): 10x more markers, similar clustering seconds.
  auto run_seconds = [](int steps) {
    const int p = 8;
    sim::Engine engine({.nprocs = p});
    CallSiteRegistry stacks(p);
    AcurdionTool tool(p, &stacks, {.k = 2});
    engine.set_tool(&tool);
    engine.run([&](sim::Mpi& mpi) { kernel(mpi, stacks, steps); });
    return tool.clustering_seconds();
  };
  // Not a strict timing assertion (noisy on shared CPU): just sanity-check
  // both complete and report nonzero cost.
  EXPECT_GT(run_seconds(5), 0.0);
  EXPECT_GT(run_seconds(50), 0.0);
}

}  // namespace
}  // namespace cham::core
