// ChamScale differential suite: the full protocol, run with the scaling
// optimizations ON, must be indistinguishable from the seed semantics run
// with them OFF — byte-identical broadcast cluster tables, byte-identical
// structural trace projections, and identical invariant counters — across
// workloads, per-flag ablations, thread counts, and the failover path.
//
// Full wire images are deliberately NOT compared across runs: delta-time
// histograms embed ChargedSection host-CPU seconds, which legitimately
// differ between two runs of the same schedule. Everything schedule- and
// host-invariant is pinned exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/chameleon.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/mpi.hpp"
#include "support/rng.hpp"
#include "trace/merge.hpp"
#include "trace/perf.hpp"
#include "trace/scale.hpp"
#include "trace/serialize.hpp"
#include "workloads/workload.hpp"

namespace cham::core {
namespace {

using trace::ScaleOptions;
using trace::ScaleOptionsGuard;

/// Everything a protocol run exposes that must not depend on the scale
/// optimizations: the broadcast cluster table's wire bytes, the online
/// trace's structural projection, and the protocol's invariant counters.
struct ProtocolResult {
  std::vector<std::uint8_t> cluster_bytes;
  std::vector<std::uint8_t> structure_bytes;
  std::uint64_t markers = 0;
  std::uint64_t folds = 0;
  std::uint64_t merge_ops = 0;
  std::size_t total_clusters = 0;
  std::size_t total_members = 0;
};

void expect_identical(const ProtocolResult& a, const ProtocolResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.cluster_bytes, b.cluster_bytes)
      << what << ": cluster table wire bytes differ";
  EXPECT_EQ(a.structure_bytes, b.structure_bytes)
      << what << ": online trace structure differs";
  EXPECT_EQ(a.markers, b.markers) << what;
  EXPECT_EQ(a.folds, b.folds) << what << ": fold decisions differ";
  EXPECT_EQ(a.merge_ops, b.merge_ops) << what;
  EXPECT_EQ(a.total_clusters, b.total_clusters) << what;
  EXPECT_EQ(a.total_members, b.total_members) << what;
}

ProtocolResult run_workload(const char* name, int procs, int steps,
                            const ScaleOptions& opts, int threads = 1) {
  ScaleOptionsGuard guard(opts);
  const workloads::WorkloadInfo* info = workloads::find_workload(name);
  EXPECT_NE(info, nullptr) << name;
  ProtocolResult result;
  {
    sim::Engine engine({.nprocs = procs, .threads = threads});
    trace::CallSiteRegistry stacks(procs);
    ChameleonTool tool(procs, &stacks, {.k = info->default_k});
    engine.set_tool(&tool);
    workloads::WorkloadParams params;
    params.cls = 'A';
    params.timesteps = steps;
    params.weak = true;
    engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });
    result.cluster_bytes = tool.clusters().encode();
    result.structure_bytes = trace::encode_trace_structure(tool.online_trace());
    result.markers = tool.marker_calls_processed();
    result.folds = tool.perf_counters().folds_performed;
    result.merge_ops = tool.merge_operations();
    result.total_clusters = tool.clusters().total_clusters();
    result.total_members = tool.clusters().total_members();
  }
  // All sparse lists died with the tool; safe to drop the intern table so
  // the next run (possibly in the other mode) starts from a clean slate.
  trace::ranklist_intern_reset();
  return result;
}

void expect_workload_invariant(const char* name, int procs, int steps) {
  const ProtocolResult off =
      run_workload(name, procs, steps, trace::kScaleAllOff);
  const ProtocolResult on = run_workload(name, procs, steps, trace::kScaleAllOn);
  expect_identical(on, off, std::string(name) + " ON vs OFF");
  EXPECT_FALSE(on.cluster_bytes.empty());
  EXPECT_EQ(on.total_members, static_cast<std::size_t>(procs));
}

TEST(ScaleDiff, LuOnVsOff64) { expect_workload_invariant("lu", 64, 8); }

TEST(ScaleDiff, LuOnVsOff256) { expect_workload_invariant("lu", 256, 6); }

TEST(ScaleDiff, LuOnVsOff1024Sharded) {
  // The bench scale's smallest committed row, on the 4-thread engine.
  const ProtocolResult off =
      run_workload("lu", 1024, 4, trace::kScaleAllOff, /*threads=*/4);
  const ProtocolResult on =
      run_workload("lu", 1024, 4, trace::kScaleAllOn, /*threads=*/4);
  expect_identical(on, off, "lu 1024 ON vs OFF");
  EXPECT_EQ(on.total_members, 1024u);
}

TEST(ScaleDiff, LuOnVsOff4096Sharded) {
  const ProtocolResult off =
      run_workload("lu", 4096, 3, trace::kScaleAllOff, /*threads=*/4);
  const ProtocolResult on =
      run_workload("lu", 4096, 3, trace::kScaleAllOn, /*threads=*/4);
  expect_identical(on, off, "lu 4096 ON vs OFF");
  EXPECT_EQ(on.total_members, 4096u);
}

TEST(ScaleDiff, Sweep3dOnVsOff64) {
  expect_workload_invariant("sweep3d", 64, 6);
}

TEST(ScaleDiff, BtOnVsOff64) { expect_workload_invariant("bt", 64, 8); }

TEST(ScaleDiff, PopSeededOnVsOff64) {
  // POP's convergence loop is data-dependent (seeded), so the trace shape
  // is irregular — the worst case for run factorization and dedup.
  expect_workload_invariant("pop", 64, 8);
}

TEST(ScaleDiff, PerturbedLuOnVsOff64) {
  // lu_mod forces Call-Path changes (flush + recluster every 3rd step):
  // covers the L-state flush path and repeated reclusterings.
  const auto run = [](const ScaleOptions& opts) {
    ScaleOptionsGuard guard(opts);
    const workloads::WorkloadInfo* info = workloads::find_workload("lu_mod");
    EXPECT_NE(info, nullptr);
    ProtocolResult result;
    {
      sim::Engine engine({.nprocs = 64});
      trace::CallSiteRegistry stacks(64);
      ChameleonTool tool(64, &stacks, {.k = info->default_k});
      engine.set_tool(&tool);
      workloads::WorkloadParams params;
      params.cls = 'A';
      params.timesteps = 9;
      params.perturb_every = 3;
      params.weak = true;
      engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });
      result.cluster_bytes = tool.clusters().encode();
      result.structure_bytes =
          trace::encode_trace_structure(tool.online_trace());
      result.markers = tool.marker_calls_processed();
      result.folds = tool.perf_counters().folds_performed;
      result.merge_ops = tool.merge_operations();
      result.total_clusters = tool.clusters().total_clusters();
      result.total_members = tool.clusters().total_members();
    }
    trace::ranklist_intern_reset();
    return result;
  };
  expect_identical(run(trace::kScaleAllOn), run(trace::kScaleAllOff),
                   "lu_mod ON vs OFF");
}

// Per-flag ablations: each optimization alone must already be invariant,
// so a future regression points at one flag instead of the whole set.

TEST(ScaleDiff, SparseRanklistsAloneMatchBaseline) {
  const ProtocolResult off = run_workload("lu", 64, 8, trace::kScaleAllOff);
  const ProtocolResult sparse =
      run_workload("lu", 64, 8, ScaleOptions{true, false, false});
  expect_identical(sparse, off, "sparse_ranklists only");
}

TEST(ScaleDiff, DedupMergeAloneMatchesBaseline) {
  const ProtocolResult off = run_workload("lu", 64, 8, trace::kScaleAllOff);
  const ProtocolResult dedup =
      run_workload("lu", 64, 8, ScaleOptions{false, true, false});
  expect_identical(dedup, off, "dedup_merge only");
}

TEST(ScaleDiff, ArenaAloneMatchesBaseline) {
  const ProtocolResult off = run_workload("lu", 64, 8, trace::kScaleAllOff);
  const ProtocolResult arena =
      run_workload("lu", 64, 8, ScaleOptions{false, false, true});
  expect_identical(arena, off, "arena only");
}

TEST(ScaleDiff, ShardedEngineMatchesSingleThreadWithScaleOn) {
  // The optimized paths must preserve the engine's cross-thread
  // determinism contract: 4 shards and 1 shard produce the same tables.
  const ProtocolResult one =
      run_workload("lu", 64, 8, trace::kScaleAllOn, /*threads=*/1);
  const ProtocolResult four =
      run_workload("lu", 64, 8, trace::kScaleAllOn, /*threads=*/4);
  expect_identical(four, one, "threads=4 vs threads=1");
}

// ---------------------------------------------------------------------------
// Failover: the O(clusters) survivor scan must promote the same leads and
// emit the same gap structure as the seed's O(members) loop.
// ---------------------------------------------------------------------------

void steady_phase(sim::Mpi& mpi, trace::CallSiteRegistry& stacks, int steps) {
  const int p = mpi.size();
  for (int step = 0; step < steps; ++step) {
    trace::CallScope scope(stacks.stack(mpi.rank()),
                           trace::site_id("phase.steady"));
    const sim::Rank next = (mpi.rank() + 1) % p;
    const sim::Rank prev = (mpi.rank() + p - 1) % p;
    mpi.compute(0.001);
    mpi.isend(next, 128, 1);
    mpi.recv(prev, 128, 1);
    mpi.allreduce(8);
    mpi.marker();
  }
}

ProtocolResult run_faulty(const ScaleOptions& opts) {
  ScaleOptionsGuard guard(opts);
  ProtocolResult result;
  {
    sim::FaultInjector injector(
        sim::FaultPlan::parse("crash rank=5 marker=4", 0));
    sim::Engine engine({.nprocs = 16});
    trace::CallSiteRegistry stacks(16);
    ChameleonTool tool(16, &stacks, {.k = 3});
    engine.set_fault_injector(&injector);
    engine.set_site_probe([&stacks](sim::Rank r) -> std::uint64_t {
      const auto& frames = stacks.stack(r).frames();
      return frames.empty() ? 0 : frames.back();
    });
    engine.set_tool(&tool);
    engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, stacks, 10); });
    result.cluster_bytes = tool.clusters().encode();
    result.structure_bytes = trace::encode_trace_structure(tool.online_trace());
    result.markers = tool.marker_calls_processed();
    result.total_clusters = tool.clusters().total_clusters();
    result.total_members = tool.clusters().total_members();
  }
  trace::ranklist_intern_reset();
  return result;
}

TEST(ScaleDiff, LeadFailoverOnVsOff) {
  const ProtocolResult on = run_faulty(trace::kScaleAllOn);
  const ProtocolResult off = run_faulty(trace::kScaleAllOff);
  EXPECT_EQ(on.cluster_bytes, off.cluster_bytes);
  EXPECT_EQ(on.structure_bytes, off.structure_bytes);
  EXPECT_EQ(on.markers, off.markers);
  EXPECT_EQ(on.total_clusters, off.total_clusters);
  // The crashed rank drops out of the surviving cluster membership.
  EXPECT_EQ(on.total_members, off.total_members);
}

// ---------------------------------------------------------------------------
// The dedup zip fast path in isolation: it must fire on structurally
// identical sequences and produce bytes identical to the full LCS.
// ---------------------------------------------------------------------------

trace::EventRecord leaf_event(std::uint64_t stack, sim::Rank rank,
                              sim::Op op = sim::Op::kSend,
                              std::int32_t off = 1) {
  trace::EventRecord record;
  record.op = op;
  record.stack_sig = stack;
  if (op == sim::Op::kSend)
    record.dest = trace::Endpoint{trace::Endpoint::Kind::kRelative, off};
  record.bytes = 8;
  record.ranks = trace::RankList::single(rank);
  return record;
}

std::vector<trace::TraceNode> spmd_trace(sim::Rank rank) {
  return {trace::TraceNode::leaf(leaf_event(1, rank)),
          trace::TraceNode::leaf(leaf_event(2, rank, sim::Op::kRecv)),
          trace::TraceNode::loop(50,
                                 {trace::TraceNode::leaf(leaf_event(3, rank)),
                                  trace::TraceNode::leaf(leaf_event(
                                      4, rank, sim::Op::kBarrier))}),
          trace::TraceNode::leaf(leaf_event(5, rank, sim::Op::kAllreduce))};
}

TEST(ScaleZip, FiresOnIdenticalShapesAndMatchesLcsBytes) {
  std::vector<std::uint8_t> lcs_bytes;
  {
    ScaleOptionsGuard off(trace::kScaleAllOff);
    const auto merged = trace::inter_merge(spmd_trace(0), spmd_trace(9));
    lcs_bytes = trace::encode_trace(merged);
  }
  ScaleOptionsGuard on(trace::kScaleAllOn);
  trace::PerfCounters pc;
  const auto merged = trace::inter_merge(spmd_trace(0), spmd_trace(9), &pc);
  // The weak-scaled SPMD shape is exactly what the zip recognizes.
  EXPECT_GE(pc.merge_zip_hits, 1u);
  EXPECT_EQ(trace::encode_trace(merged), lcs_bytes);
  trace::ranklist_intern_reset();
}

TEST(ScaleZip, DoesNotFireAcrossStructuralDifferences) {
  ScaleOptionsGuard on(trace::kScaleAllOn);
  auto a = spmd_trace(0);
  auto b = spmd_trace(9);
  b[3] = trace::TraceNode::leaf(leaf_event(99, 9));  // break the diagonal
  trace::PerfCounters pc;
  const auto merged = trace::inter_merge(std::move(a), std::move(b), &pc);
  EXPECT_EQ(pc.merge_zip_hits, 0u);
  EXPECT_EQ(merged.size(), 5u);  // splice, not zip
  trace::ranklist_intern_reset();
}

TEST(ScaleZip, RandomStreamsMatchLcsBytes) {
  // Random leaf/loop sequences over a small call-site alphabet: whenever
  // the zip fires it must be invisible in the output bytes, and when it
  // cannot fire the LCS path must be untouched by the dedup flag.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    support::Rng rng(seed * 131);
    const auto random_trace = [&rng](sim::Rank rank) {
      std::vector<trace::TraceNode> nodes;
      const int len = 1 + static_cast<int>(rng.next_below(8));
      for (int i = 0; i < len; ++i) {
        const auto stack = 1 + rng.next_below(5);
        if (rng.next_below(4) == 0) {
          nodes.push_back(trace::TraceNode::loop(
              2 + rng.next_below(20),
              {trace::TraceNode::leaf(leaf_event(stack, rank))}));
        } else {
          nodes.push_back(trace::TraceNode::leaf(leaf_event(
              stack, rank, rng.next_below(2) == 0 ? sim::Op::kSend
                                                  : sim::Op::kRecv)));
        }
      }
      return nodes;
    };
    // Same generator state replayed per side keeps ~half the pairs
    // structurally identical (zip eligible), the rest divergent.
    const std::uint64_t shape_seed = rng.next_below(3);
    support::Rng save = rng;
    auto build_pair = [&](sim::Rank ra, sim::Rank rb) {
      rng = save;
      auto a = random_trace(ra);
      if (shape_seed == 0) rng = save;  // replay: identical shape for b
      auto b = random_trace(rb);
      return std::make_pair(std::move(a), std::move(b));
    };
    std::vector<std::uint8_t> off_bytes;
    {
      ScaleOptionsGuard off(trace::kScaleAllOff);
      auto [a, b] = build_pair(0, 7);
      off_bytes = trace::encode_trace(trace::inter_merge(a, b));
    }
    {
      ScaleOptionsGuard on(trace::kScaleAllOn);
      auto [a, b] = build_pair(0, 7);
      const auto on_bytes =
          trace::encode_trace(trace::inter_merge(a, b));
      ASSERT_EQ(on_bytes, off_bytes) << "seed " << seed;
    }
    trace::ranklist_intern_reset();
  }
}

}  // namespace
}  // namespace cham::core
