#include "core/energy.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/mpi.hpp"

namespace cham::core {
namespace {

TEST(Energy, NoWaitNoSavings) {
  const EnergyReport r = estimate_energy({10.0, 10.0}, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(r.savings_joules, 0.0);
  EXPECT_DOUBLE_EQ(r.busy_joules, r.dvfs_joules);
  EXPECT_DOUBLE_EQ(r.busy_joules, 2 * 10.0 * PowerModel{}.busy_watts);
}

TEST(Energy, WaitHarvestedAtIdlePower) {
  PowerModel model{.busy_watts = 100.0, .idle_watts = 20.0,
                   .harvest_efficiency = 1.0};
  const EnergyReport r = estimate_energy({10.0}, {4.0}, model);
  // 6 s at 100 W + 4 s at 20 W.
  EXPECT_DOUBLE_EQ(r.dvfs_joules, 6 * 100.0 + 4 * 20.0);
  EXPECT_DOUBLE_EQ(r.savings_joules, 4 * 80.0);
  EXPECT_NEAR(r.savings_fraction, 320.0 / 1000.0, 1e-12);
}

TEST(Energy, HarvestEfficiencyScalesSavings) {
  PowerModel ideal{.harvest_efficiency = 1.0};
  PowerModel half{.harvest_efficiency = 0.5};
  const auto full = estimate_energy({10.0}, {4.0}, ideal);
  const auto part = estimate_energy({10.0}, {4.0}, half);
  EXPECT_NEAR(part.savings_joules, full.savings_joules / 2, 1e-9);
}

TEST(Energy, WaitClampedToRuntime) {
  const EnergyReport r = estimate_energy({2.0}, {100.0});
  EXPECT_DOUBLE_EQ(r.total_deficit_seconds, 2.0);
  EXPECT_GE(r.dvfs_joules, 0.0);
}

TEST(Energy, InvalidInputsRejected) {
  EXPECT_ANY_THROW(estimate_energy({}, {}));
  EXPECT_ANY_THROW(estimate_energy({1.0}, {1.0, 2.0}));
  PowerModel bad{.busy_watts = 10.0, .idle_watts = 20.0};
  EXPECT_ANY_THROW(estimate_energy({1.0}, {0.0}, bad));
}

TEST(Energy, EngineWaitTimesFeedTheModel) {
  // A pipeline where rank 1 waits for rank 0's long compute phase: the
  // engine's wait tracking must surface as harvestable energy.
  sim::Engine engine({.nprocs = 2});
  engine.run([](sim::Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.compute(5.0);
      mpi.send(1, 8);
    } else {
      mpi.recv(0, 8);
    }
  });
  EXPECT_GT(engine.wait_seconds(1), 4.9);
  EXPECT_LT(engine.wait_seconds(0), 0.1);
  const EnergyReport r = estimate_energy(engine);
  EXPECT_GT(r.savings_fraction, 0.2);  // one of two ranks mostly idle
}

TEST(Energy, BarrierImbalanceIsHarvestable) {
  sim::Engine engine({.nprocs = 4});
  engine.run([](sim::Mpi& mpi) {
    mpi.compute(mpi.rank() == 0 ? 4.0 : 0.5);  // rank 0 straggles
    mpi.barrier();
  });
  for (int r = 1; r < 4; ++r) EXPECT_GT(engine.wait_seconds(r), 3.0);
  const EnergyReport report = estimate_energy(engine);
  EXPECT_GT(report.total_deficit_seconds, 9.0);
}

}  // namespace
}  // namespace cham::core
