// Fault-tolerant Chameleon protocol: lead failover, gap nodes, degraded
// clustering and resilient merge. A crashed rank must never hang the
// survivors — the next processed marker detects the dead lead, promotes the
// lowest-rank surviving member, records an explicit gap node for the lost
// interval, and the finalize-time merge still yields a lint-clean trace
// that round-trips the serializer.
#include "core/chameleon.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/lint.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/mpi.hpp"
#include "trace/serialize.hpp"

namespace cham::core {
namespace {

using trace::CallScope;
using trace::CallSiteRegistry;
using trace::site_id;

/// The steady ring phase from test_chameleon.cpp: neighbour exchange +
/// allreduce per timestep, one marker per timestep.
void steady_phase(sim::Mpi& mpi, CallSiteRegistry& stacks, int steps) {
  const int p = mpi.size();
  for (int step = 0; step < steps; ++step) {
    CallScope scope(stacks.stack(mpi.rank()), site_id("phase.steady"));
    const sim::Rank next = (mpi.rank() + 1) % p;
    const sim::Rank prev = (mpi.rank() + p - 1) % p;
    mpi.compute(0.001);
    mpi.isend(next, 128, 1);
    mpi.recv(prev, 128, 1);
    mpi.allreduce(8);
    mpi.marker();
  }
}

struct FaultyHarness {
  FaultyHarness(int p, const std::string& plan, std::uint64_t seed = 0,
                ChameleonConfig cfg = {.k = 3})
      : injector(sim::FaultPlan::parse(plan, seed)),
        engine({.nprocs = p}),
        stacks(p),
        tool(p, &stacks, cfg) {
    engine.set_fault_injector(&injector);
    engine.set_site_probe([this](sim::Rank r) -> std::uint64_t {
      const auto& frames = stacks.stack(r).frames();
      return frames.empty() ? 0 : frames.back();
    });
    engine.set_tool(&tool);
  }
  sim::FaultInjector injector;
  sim::Engine engine;
  CallSiteRegistry stacks;
  ChameleonTool tool;
};

std::size_t count_gaps(const std::vector<trace::TraceNode>& nodes) {
  std::size_t gaps = 0;
  for (const auto& node : nodes) {
    if (node.is_loop()) {
      gaps += count_gaps(node.body);
    } else if (node.event.op == sim::Op::kGap) {
      ++gaps;
    }
  }
  return gaps;
}

const trace::EventRecord* find_gap(const std::vector<trace::TraceNode>& nodes) {
  for (const auto& node : nodes) {
    if (node.is_loop()) {
      if (const auto* gap = find_gap(node.body)) return gap;
    } else if (node.event.op == sim::Op::kGap) {
      return &node.event;
    }
  }
  return nullptr;
}

std::size_t lint_errors(const std::vector<trace::TraceNode>& nodes, int p,
                        bool full_cover = false) {
  analysis::DiagnosticSink sink;
  analysis::lint_trace(nodes, {.nprocs = p, .expect_full_cover = full_cover},
                       sink);
  return sink.errors();
}

/// Structural fingerprint of a trace: everything except the delta
/// histograms, which embed measured tool CPU time and therefore differ
/// between otherwise identical runs.
void shape_into(const std::vector<trace::TraceNode>& nodes, std::string* out) {
  for (const auto& node : nodes) {
    if (node.is_loop()) {
      *out += 'L' + std::to_string(node.iters) + '[';
      shape_into(node.body, out);
      *out += ']';
      continue;
    }
    const trace::EventRecord& e = node.event;
    *out += op_name(e.op);
    *out += '#' + std::to_string(e.tag) + '@' + std::to_string(e.comm) + ':' +
            e.ranks.to_string() + '/' + std::to_string(e.bytes) + ';';
  }
}

std::string shape_of(const std::vector<trace::TraceNode>& nodes) {
  std::string out;
  shape_into(nodes, &out);
  return out;
}

/// Cluster table of the fault-free reference run (stable from the first
/// clustering on; used to aim crashes at actual leads).
cluster::ClusterSet reference_clusters(int p, int steps) {
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  ChameleonTool tool(p, &stacks, {.k = 3});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, stacks, steps); });
  return tool.clusters();
}

// --- every rank × several markers: no hang, at most one gap, clean merge --

class LeadCrash : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LeadCrash, SurvivorsFinalizeCleanly) {
  const auto [victim, marker] = GetParam();
  FaultyHarness h(16, "crash rank=" + std::to_string(victim) +
                          " marker=" + std::to_string(marker));
  h.engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, h.stacks, 12); });

  EXPECT_TRUE(h.engine.is_failed(victim));
  EXPECT_EQ(h.engine.failed_count(), 1);

  const auto& online = h.tool.online_trace();
  EXPECT_FALSE(online.empty());
  // One gap if the victim led a cluster when it died, none otherwise —
  // never more (gaps are deduplicated per dead lead).
  EXPECT_LE(count_gaps(online), 1u);

  // Every cluster with a surviving member is led by a survivor after the
  // repair (a cluster whose members all died keeps its dead lead — there
  // is nobody to promote; rank 0's table copy is only maintained while
  // rank 0 is alive).
  if (victim != 0) {
    for (const auto& [callpath, entries] : h.tool.clusters().groups()) {
      for (const auto& entry : entries) {
        bool any_alive = false;
        for (const sim::Rank member : entry.members.members())
          if (!h.engine.is_failed(member)) any_alive = true;
        if (!any_alive) continue;
        EXPECT_FALSE(h.engine.is_failed(entry.lead))
            << "cluster of call-path " << callpath << " led by dead rank "
            << entry.lead;
      }
    }
  }

  // The merged trace is lint-clean and round-trips the serializer.
  EXPECT_EQ(lint_errors(online, 16), 0u);
  const auto bytes = trace::encode_trace(online);
  EXPECT_EQ(trace::encode_trace(trace::decode_trace(bytes)), bytes);
}

INSTANTIATE_TEST_SUITE_P(EveryRank, LeadCrash,
                         ::testing::Combine(::testing::Range(0, 16),
                                            ::testing::Values(2, 5, 8)));

// --- aimed at a known lead: exactly one gap + promotion ------------------

TEST(LeadFailover, DeadLeadYieldsExactlyOneGapAndPromotion) {
  // Aim at the lead of a multi-member cluster (so a survivor exists to be
  // promoted) that is not the home rank 0.
  const cluster::ClusterSet reference = reference_clusters(16, 12);
  sim::Rank victim = sim::kAnySource;
  for (const auto& [callpath, entries] : reference.groups()) {
    for (const auto& entry : entries) {
      if (entry.lead != 0 && entry.members.count() > 1) victim = entry.lead;
    }
  }
  ASSERT_NE(victim, sim::kAnySource);

  FaultyHarness h(16, "crash rank=" + std::to_string(victim) + " marker=8");
  h.engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, h.stacks, 12); });

  const auto& online = h.tool.online_trace();
  ASSERT_EQ(count_gaps(online), 1u);
  const trace::EventRecord* gap = find_gap(online);
  ASSERT_NE(gap, nullptr);
  EXPECT_EQ(gap->tag, victim);  // the gap names the dead lead
  // ... and spans the cluster the dead lead represented.
  EXPECT_TRUE(gap->ranks.contains(victim));

  // The victim's cluster is now led by its lowest-rank surviving member,
  // whose trace covers the post-crash intervals: full rank coverage holds.
  const auto* entry = h.tool.clusters().cluster_of(victim);
  ASSERT_NE(entry, nullptr);
  EXPECT_NE(entry->lead, victim);
  EXPECT_FALSE(h.engine.is_failed(entry->lead));
  for (sim::Rank member : entry->members.members()) {
    if (h.engine.is_failed(member)) continue;
    EXPECT_GE(entry->lead, 0);
    EXPECT_LE(entry->lead, member);  // lowest survivor wins
    break;
  }
  EXPECT_EQ(lint_errors(online, 16, /*full_cover=*/true), 0u);
}

// --- crash mid-reduction: table still reaches every survivor -------------

TEST(LeadFailover, MidReductionCrashStillYieldsClusterTable) {
  // The victim dies entering its first tool-comm send — the middle of the
  // binomial clustering reduction. CHAMELEON_FAULT_SEEDS rotates the base
  // seed in CI; determinism must hold for every seed.
  const char* env = std::getenv("CHAMELEON_FAULT_SEED");
  const std::uint64_t base =
      env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
  for (std::uint64_t seed = base; seed < base + 3; ++seed) {
    const auto run_once = [&](std::uint64_t s) {
      FaultyHarness h(16, "crash rank=5 toolop=1", s);
      h.engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, h.stacks, 10); });
      EXPECT_TRUE(h.engine.is_failed(5));
      // The survivors still agreed on a cluster table.
      EXPECT_GT(h.tool.clusters().total_clusters(), 0u);
      return std::pair(shape_of(h.tool.online_trace()), h.tool.clusters());
    };
    const auto first = run_once(seed);
    EXPECT_FALSE(first.first.empty());
    EXPECT_EQ(first, run_once(seed)) << "seed " << seed;
  }
}

// --- majority of leads dead: degrade to all-ranks tracing ----------------

TEST(LeadFailover, MajorityLeadDeathDegradesToAllRanksTracing) {
  const std::vector<sim::Rank> leads = reference_clusters(16, 12).leads();
  ASSERT_GE(leads.size(), 3u);
  // Kill two of the three leads (spare the home rank so the rank-0 view
  // stays observable): 2/3 > degrade_fraction = 0.5.
  const sim::Rank a = leads[leads.size() - 2];
  const sim::Rank b = leads[leads.size() - 1];
  ASSERT_NE(a, 0);
  ASSERT_NE(b, 0);

  FaultyHarness h(16, "crash rank=" + std::to_string(a) +
                          " marker=6; crash rank=" + std::to_string(b) +
                          " marker=6");
  h.engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, h.stacks, 14); });

  EXPECT_EQ(h.engine.failed_count(), 2);
  const auto& online = h.tool.online_trace();
  // One gap per dead lead.
  EXPECT_EQ(count_gaps(online), 2u);
  // The degradation fell back to all-ranks tracing and re-clustered.
  EXPECT_GE(h.tool.state_count(MarkerState::kClustering), 2u);
  EXPECT_EQ(lint_errors(online, 16), 0u);
}

// --- the injector must be invisible when absent --------------------------

TEST(LeadFailover, FaultFreeRunsAreStructurallyIdentical) {
  // Without an injector no fault-tolerance branch is taken: the trace
  // structure is reproducible and carries no gap nodes. (Byte-for-byte
  // identity cannot hold — delta histograms embed measured tool CPU time.)
  const auto run_once = [] {
    sim::Engine engine({.nprocs = 16});
    CallSiteRegistry stacks(16);
    ChameleonTool tool(16, &stacks, {.k = 3});
    engine.set_tool(&tool);
    EXPECT_FALSE(engine.fault_injection_enabled());
    engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, stacks, 12); });
    EXPECT_EQ(count_gaps(tool.online_trace()), 0u);
    return std::pair(shape_of(tool.online_trace()), tool.clusters());
  };
  const auto first = run_once();
  EXPECT_FALSE(first.first.empty());
  EXPECT_EQ(first, run_once());
}

}  // namespace
}  // namespace cham::core
