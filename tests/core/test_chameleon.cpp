// End-to-end tests of the Chameleon state machine (Algorithms 1–3).
#include "core/chameleon.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/mpi.hpp"

namespace cham::core {
namespace {

using trace::CallScope;
using trace::CallSiteRegistry;
using trace::site_id;

/// One repetitive SPMD phase: neighbour exchange + allreduce per timestep,
/// a marker after every timestep.
void steady_phase(sim::Mpi& mpi, CallSiteRegistry& stacks, int steps) {
  const int p = mpi.size();
  for (int step = 0; step < steps; ++step) {
    CallScope scope(stacks.stack(mpi.rank()), site_id("phase.steady"));
    const sim::Rank next = (mpi.rank() + 1) % p;
    const sim::Rank prev = (mpi.rank() + p - 1) % p;
    mpi.compute(0.001);
    mpi.isend(next, 128, 1);
    mpi.recv(prev, 128, 1);
    mpi.allreduce(8);
    mpi.marker();
  }
}

/// A structurally different phase (other call site, other pattern).
void other_phase(sim::Mpi& mpi, CallSiteRegistry& stacks, int steps) {
  for (int step = 0; step < steps; ++step) {
    CallScope scope(stacks.stack(mpi.rank()), site_id("phase.other"));
    mpi.compute(0.002);
    mpi.barrier();
    mpi.marker();
  }
}

struct Harness {
  explicit Harness(int p, ChameleonConfig cfg = {})
      : engine({.nprocs = p}), stacks(p), tool(p, &stacks, cfg) {
    engine.set_tool(&tool);
  }
  sim::Engine engine;
  CallSiteRegistry stacks;
  ChameleonTool tool;
};

TEST(Chameleon, SteadyPhaseClustersExactlyOnce) {
  // Table II's signature pattern: 10 markers -> 1 AT, 1 C, 8 L.
  Harness h(16, {.k = 3});
  h.engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, h.stacks, 10); });
  EXPECT_EQ(h.tool.marker_calls_processed(), 10u);
  EXPECT_EQ(h.tool.state_count(MarkerState::kAllTracing), 1u);
  EXPECT_EQ(h.tool.state_count(MarkerState::kClustering), 1u);
  EXPECT_EQ(h.tool.state_count(MarkerState::kLead), 8u);
  EXPECT_EQ(h.tool.state_count(MarkerState::kFinal), 1u);
}

TEST(Chameleon, LeadStateDominatesLongRuns) {
  // Observation 1: L accounts for > 70% of marker calls on steady codes.
  Harness h(16, {.k = 3});
  h.engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, h.stacks, 50); });
  const double lead_fraction =
      static_cast<double>(h.tool.state_count(MarkerState::kLead)) /
      static_cast<double>(h.tool.marker_calls_processed());
  EXPECT_GT(lead_fraction, 0.7);
}

TEST(Chameleon, CallFrequencyGatesProcessing) {
  Harness h(8, {.k = 3, .call_frequency = 5});
  h.engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, h.stacks, 20); });
  EXPECT_EQ(h.tool.marker_calls_processed(), 4u);
}

TEST(Chameleon, PhaseChangeTriggersFlushAndRecluster) {
  // steady -> other -> steady again: at least two clusterings and at least
  // one flush (the L that ends the first steady phase).
  Harness h(8, {.k = 3});
  h.engine.run([&](sim::Mpi& mpi) {
    steady_phase(mpi, h.stacks, 6);
    other_phase(mpi, h.stacks, 6);
  });
  EXPECT_GE(h.tool.state_count(MarkerState::kClustering), 2u);
  // AT appears at start and on each phase boundary.
  EXPECT_GE(h.tool.state_count(MarkerState::kAllTracing), 1u);
}

TEST(Chameleon, RingClustersIntoBoundaryAndInteriorGroups) {
  // The ring has 3 behaviour groups (rank 0, interior, last); with K >= 3
  // clustering should find exactly the SRC/DEST geometry split.
  Harness h(16, {.k = 3});
  h.engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, h.stacks, 8); });
  const auto& clusters = h.tool.clusters();
  EXPECT_EQ(clusters.total_members(), 16u);
  EXPECT_EQ(clusters.total_clusters(), 3u);
  // All three groups share one Call-Path (same code path).
  EXPECT_EQ(clusters.num_callpaths(), 1u);
}

TEST(Chameleon, NonLeadsStopStoring) {
  Harness h(16, {.k = 3});
  h.engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, h.stacks, 12); });
  const auto leads = h.tool.clusters().leads();
  ASSERT_EQ(leads.size(), 3u);
  // Non-leads allocate exactly 0 bytes per L-state call (Table IV).
  for (int r = 0; r < 16; ++r) {
    const auto& lead_bytes = h.tool.rank_state_bytes(r, MarkerState::kLead);
    const bool is_lead =
        std::find(leads.begin(), leads.end(), r) != leads.end();
    if (is_lead || r == 0) continue;
    EXPECT_EQ(lead_bytes.bytes_per_call(), 0u) << "rank " << r;
  }
  // Leads keep a bounded per-interval trace in L state.
  for (sim::Rank lead : leads) {
    if (lead == 0) continue;
    EXPECT_GT(h.tool.rank_state_bytes(lead, MarkerState::kLead).bytes_per_call(),
              0u);
  }
}

TEST(Chameleon, LeadTraceStaysBoundedAcrossQuietMarkers) {
  // RSD folding must keep the accumulating lead trace near-constant: the
  // per-call L-state bytes after 40 quiet markers should not exceed a few
  // times the bytes after 5.
  auto bytes_after = [](int steps) {
    Harness h(8, {.k = 3});
    h.engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, h.stacks, steps); });
    const auto leads = h.tool.clusters().leads();
    std::uint64_t worst = 0;
    for (sim::Rank lead : leads) {
      worst = std::max(
          worst,
          h.tool.rank_state_bytes(lead, MarkerState::kLead).bytes_per_call());
    }
    return worst;
  };
  const auto small = bytes_after(5);
  const auto large = bytes_after(40);
  ASSERT_GT(small, 0u);
  EXPECT_LT(large, small * 3);
}

TEST(Chameleon, OnlineTraceCoversAllEvents) {
  // The online trace must account for every traced call of the whole world:
  // expanded events * represented ranks == total world events.
  const int p = 8;
  const int steps = 10;
  Harness h(p, {.k = 3});
  h.engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, h.stacks, steps); });
  std::uint64_t covered = 0;
  std::vector<const trace::TraceNode*> stack;
  // Count expanded (event, rank) pairs in the online trace.
  std::function<void(const trace::TraceNode&, std::uint64_t)> walk =
      [&](const trace::TraceNode& node, std::uint64_t mult) {
        if (node.is_loop()) {
          for (const auto& child : node.body) walk(child, mult * node.iters);
        } else {
          covered += mult * node.event.ranks.count();
        }
      };
  for (const auto& node : h.tool.online_trace()) walk(node, 1);
  // Each rank records isend + recv + allreduce + marker per step = 4 events.
  EXPECT_EQ(covered, static_cast<std::uint64_t>(p * steps * 4));
}

TEST(Chameleon, OnlineTraceMatchesScalaTraceShape) {
  // Chameleon's online trace and ScalaTrace's finalize-time global trace
  // must describe the same event classes for the same app.
  const int p = 8;
  auto leaves_of = [](const std::vector<trace::TraceNode>& nodes) {
    std::size_t n = 0;
    for (const auto& node : nodes) n += node.leaf_count();
    return n;
  };

  Harness ch(p, {.k = 3});
  ch.engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, ch.stacks, 10); });

  sim::Engine engine2({.nprocs = p});
  CallSiteRegistry stacks2(p);
  trace::ScalaTraceTool st(p, &stacks2);
  engine2.set_tool(&st);
  engine2.run([&](sim::Mpi& mpi) { steady_phase(mpi, stacks2, 10); });

  EXPECT_FALSE(ch.tool.online_trace().empty());
  EXPECT_FALSE(st.global_trace().empty());
  // Same order of magnitude of distinct event classes (exact equality is
  // not required: interval boundaries can split loops differently).
  const auto ch_leaves = leaves_of(ch.tool.online_trace());
  const auto st_leaves = leaves_of(st.global_trace());
  EXPECT_LE(ch_leaves, st_leaves * 3);
  EXPECT_LE(st_leaves, ch_leaves * 3);
}

TEST(Chameleon, DynamicKGrowsWithCallpaths) {
  // Master/worker split produces 2 Call-Paths; K=1 must still keep one
  // representative per Call-Path.
  const int p = 8;
  Harness h(p, {.k = 1});
  h.engine.run([&](sim::Mpi& mpi) {
    for (int step = 0; step < 8; ++step) {
      if (mpi.rank() == 0) {
        CallScope scope(h.stacks.stack(0), site_id("master"));
        for (int w = 1; w < p; ++w) mpi.recv(sim::kAnySource, 16);
      } else {
        CallScope scope(h.stacks.stack(mpi.rank()), site_id("worker"));
        mpi.send(0, 16);
      }
      mpi.marker();
    }
  });
  EXPECT_EQ(h.tool.num_callpath_clusters(), 2u);
  EXPECT_GE(h.tool.effective_k(), 2u);
}

TEST(Chameleon, StateCountersConsistent) {
  Harness h(8, {.k = 3});
  h.engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, h.stacks, 25); });
  const auto total = h.tool.state_count(MarkerState::kAllTracing) +
                     h.tool.state_count(MarkerState::kClustering) +
                     h.tool.state_count(MarkerState::kLead);
  EXPECT_EQ(total, h.tool.marker_calls_processed());
  EXPECT_EQ(h.tool.state_count(MarkerState::kFinal), 1u);
}

TEST(Chameleon, SingleRankWorldWorks) {
  Harness h(1, {.k = 3});
  h.engine.run([&](sim::Mpi& mpi) {
    for (int i = 0; i < 5; ++i) {
      CallScope scope(h.stacks.stack(0), site_id("solo"));
      mpi.compute(0.001);
      mpi.barrier();
      mpi.marker();
    }
  });
  EXPECT_EQ(h.tool.marker_calls_processed(), 5u);
  EXPECT_FALSE(h.tool.online_trace().empty());
}

TEST(Chameleon, NoMarkersStillProducesTraceAtFinalize) {
  Harness h(4, {.k = 2});
  h.engine.run([&](sim::Mpi& mpi) {
    CallScope scope(h.stacks.stack(mpi.rank()), site_id("plain"));
    for (int i = 0; i < 10; ++i) mpi.barrier();
  });
  EXPECT_EQ(h.tool.marker_calls_processed(), 0u);
  EXPECT_FALSE(h.tool.online_trace().empty());
  EXPECT_EQ(h.tool.state_count(MarkerState::kFinal), 1u);
}

TEST(Chameleon, ChameleonInterWorkMuchSmallerThanScalaTrace) {
  // The core claim (Observations 2/6): inter-compression work with K leads
  // is far below ScalaTrace's all-P merge for the same app.
  const int p = 64;
  Harness ch(p, {.k = 3});
  ch.engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, ch.stacks, 20); });

  sim::Engine engine2({.nprocs = p});
  CallSiteRegistry stacks2(p);
  trace::ScalaTraceTool st(p, &stacks2);
  engine2.set_tool(&st);
  engine2.run([&](sim::Mpi& mpi) { steady_phase(mpi, stacks2, 20); });

  // Participants: 3 leads versus 64 ranks. Allow generous slack — this is
  // a structural assertion, not a benchmark.
  EXPECT_LT(ch.tool.online_inter_seconds(), st.inter_seconds());
}

}  // namespace
}  // namespace cham::core
