// §VII extension: automated marker detection for iterative codes that were
// not modified to insert explicit markers.
#include <gtest/gtest.h>

#include "core/chameleon.hpp"
#include "sim/engine.hpp"
#include "sim/mpi.hpp"

namespace cham::core {
namespace {

using trace::CallScope;
using trace::CallSiteRegistry;
using trace::site_id;

/// An iterative kernel with a per-step world collective but NO explicit
/// marker calls (an "unmodified" application).
void unmarked_kernel(sim::Mpi& mpi, CallSiteRegistry& stacks, int steps) {
  const int p = mpi.size();
  for (int step = 0; step < steps; ++step) {
    CallScope scope(stacks.stack(mpi.rank()), site_id("unmarked.step"));
    const sim::Rank next = (mpi.rank() + 1) % p;
    const sim::Rank prev = (mpi.rank() + p - 1) % p;
    mpi.compute(0.001);
    mpi.isend(next, 64, 1);
    mpi.recv(prev, 64, 1);
    mpi.allreduce(8);  // the recurring collective the heuristic latches onto
  }
}

TEST(AutoMarker, DetectsRecurringCollectiveAsMarker) {
  const int p = 8;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  ChameleonTool tool(p, &stacks, {.k = 3, .auto_marker = true});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { unmarked_kernel(mpi, stacks, 12); });

  EXPECT_NE(tool.auto_marker_site(), 0u);
  // The site recurs at step 2, so steps 2..12 are processed markers.
  EXPECT_EQ(tool.marker_calls_processed(), 11u);
  EXPECT_EQ(tool.state_count(MarkerState::kClustering), 1u);
  EXPECT_GE(tool.state_count(MarkerState::kLead), 8u);
  EXPECT_FALSE(tool.online_trace().empty());
}

TEST(AutoMarker, MatchesExplicitMarkerStateMachine) {
  // Auto-detected markers must drive the same AT -> C -> L progression an
  // explicitly instrumented run produces.
  const int p = 8;
  const int steps = 15;

  sim::Engine auto_engine({.nprocs = p});
  CallSiteRegistry auto_stacks(p);
  ChameleonTool auto_tool(p, &auto_stacks, {.k = 3, .auto_marker = true});
  auto_engine.set_tool(&auto_tool);
  auto_engine.run(
      [&](sim::Mpi& mpi) { unmarked_kernel(mpi, auto_stacks, steps); });

  sim::Engine manual_engine({.nprocs = p});
  CallSiteRegistry manual_stacks(p);
  ChameleonTool manual_tool(p, &manual_stacks, {.k = 3});
  manual_engine.set_tool(&manual_tool);
  manual_engine.run([&](sim::Mpi& mpi) {
    unmarked_kernel(mpi, manual_stacks, steps);
    // (explicit marker variant: marker after each step)
  });
  // The manual run above has no markers either; instead compare against an
  // explicitly marked variant:
  sim::Engine marked_engine({.nprocs = p});
  CallSiteRegistry marked_stacks(p);
  ChameleonTool marked_tool(p, &marked_stacks, {.k = 3});
  marked_engine.set_tool(&marked_tool);
  marked_engine.run([&](sim::Mpi& mpi) {
    const int world = mpi.size();
    for (int step = 0; step < steps; ++step) {
      CallScope scope(marked_stacks.stack(mpi.rank()), site_id("unmarked.step"));
      const sim::Rank next = (mpi.rank() + 1) % world;
      const sim::Rank prev = (mpi.rank() + world - 1) % world;
      mpi.compute(0.001);
      mpi.isend(next, 64, 1);
      mpi.recv(prev, 64, 1);
      mpi.allreduce(8);
      mpi.marker();
    }
  });

  // Same single clustering, same cluster structure.
  EXPECT_EQ(auto_tool.state_count(MarkerState::kClustering),
            marked_tool.state_count(MarkerState::kClustering));
  EXPECT_EQ(auto_tool.clusters().total_clusters(),
            marked_tool.clusters().total_clusters());
  EXPECT_EQ(auto_tool.clusters().num_callpaths(),
            marked_tool.clusters().num_callpaths());
}

TEST(AutoMarker, NoRecurringCollectiveFallsBackToFinalize) {
  // A code without a repeated world collective: the heuristic never fires,
  // clustering happens once at finalize (the paper: automation works only
  // "in some cases").
  const int p = 4;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  ChameleonTool tool(p, &stacks, {.k = 2, .auto_marker = true});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) {
    CallScope scope(stacks.stack(mpi.rank()), site_id("oneshot"));
    for (int i = 0; i < 10; ++i) {
      mpi.isend((mpi.rank() + 1) % p, 32, 0);
      mpi.recv((mpi.rank() + p - 1) % p, 32, 0);
    }
  });
  EXPECT_EQ(tool.auto_marker_site(), 0u);
  EXPECT_EQ(tool.marker_calls_processed(), 0u);
  EXPECT_EQ(tool.state_count(MarkerState::kFinal), 1u);
  EXPECT_FALSE(tool.online_trace().empty());
}

TEST(AutoMarker, DisabledByDefault) {
  const int p = 4;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  ChameleonTool tool(p, &stacks, {.k = 2});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { unmarked_kernel(mpi, stacks, 10); });
  EXPECT_EQ(tool.marker_calls_processed(), 0u);
}

TEST(AutoMarker, ExplicitMarkersStillWorkWhenEnabled) {
  // auto_marker must not double-process explicit marker barriers.
  const int p = 4;
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  ChameleonTool tool(p, &stacks, {.k = 2, .auto_marker = true});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) {
    for (int step = 0; step < 8; ++step) {
      CallScope scope(stacks.stack(mpi.rank()), site_id("mixed.step"));
      mpi.compute(0.001);
      mpi.barrier();  // recurring world collective -> auto marker
      mpi.marker();   // explicit marker too
    }
  });
  // Both the barrier (from step 2) and every explicit marker process:
  // 7 auto + 8 explicit = 15.
  EXPECT_EQ(tool.marker_calls_processed(), 15u);
  EXPECT_EQ(tool.state_count(MarkerState::kClustering), 1u);
}

}  // namespace
}  // namespace cham::core
