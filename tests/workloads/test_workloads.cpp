// Workload skeleton tests: structure, determinism, cluster geometry.
#include "workloads/workload.hpp"

#include <gtest/gtest.h>

#include "core/chameleon.hpp"
#include "sim/engine.hpp"
#include "workloads/grid.hpp"

namespace cham::workloads {
namespace {

struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  double vtime = 0.0;
  std::size_t callpaths = 0;
  std::size_t clusters = 0;
};

RunResult run_with_chameleon(const std::string& name, int p,
                             WorkloadParams params, std::size_t k) {
  const WorkloadInfo* info = find_workload(name);
  EXPECT_NE(info, nullptr);
  sim::Engine engine({.nprocs = p});
  trace::CallSiteRegistry stacks(p);
  core::ChameleonTool tool(p, &stacks, {.k = k});
  engine.set_tool(&tool);
  engine.run(
      [&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });
  RunResult result;
  result.events = tool.events_recorded_total();
  result.messages = engine.messages_sent();
  result.vtime = engine.max_vtime();
  result.callpaths = tool.clusters().num_callpaths();
  result.clusters = tool.clusters().total_clusters();
  return result;
}

class AllWorkloads : public ::testing::TestWithParam<const WorkloadInfo*> {};

INSTANTIATE_TEST_SUITE_P(
    Registry, AllWorkloads,
    ::testing::ValuesIn([] {
      std::vector<const WorkloadInfo*> infos;
      for (const auto& info : all_workloads()) infos.push_back(&info);
      return infos;
    }()),
    [](const auto& info) { return std::string(info.param->name); });

TEST_P(AllWorkloads, RunsUninstrumentedWithoutDeadlock) {
  const WorkloadInfo& info = *GetParam();
  sim::Engine engine({.nprocs = 8});
  trace::CallSiteRegistry stacks(8);
  WorkloadParams params{.cls = 'A', .timesteps = 4};
  EXPECT_NO_THROW(engine.run(
      [&](sim::Mpi& mpi) { info.run(mpi, stacks, params); }))
      << info.name;
  EXPECT_GT(engine.max_vtime(), 0.0);
}

TEST_P(AllWorkloads, DeterministicVirtualTime) {
  const WorkloadInfo& info = *GetParam();
  auto run_once = [&] {
    sim::Engine engine({.nprocs = 8});
    trace::CallSiteRegistry stacks(8);
    WorkloadParams params{.cls = 'A', .timesteps = 3};
    engine.run([&](sim::Mpi& mpi) { info.run(mpi, stacks, params); });
    return engine.max_vtime();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once()) << info.name;
}

TEST_P(AllWorkloads, TracesUnderChameleonWithDefaultK) {
  const WorkloadInfo& info = *GetParam();
  const RunResult r = run_with_chameleon(std::string(info.name), 8,
                                         {.cls = 'A', .timesteps = 6},
                                         info.default_k);
  EXPECT_GT(r.events, 0u) << info.name;
  EXPECT_GE(r.clusters, 1u) << info.name;
}

TEST(Workloads, RegistryFindsAllAndRejectsUnknown) {
  EXPECT_EQ(find_workload("nonexistent"), nullptr);
  for (const char* name : {"bt", "sp", "lu", "luw", "lu_mod", "pop", "sweep3d",
                           "emf", "cg", "racefix"}) {
    EXPECT_NE(find_workload(name), nullptr) << name;
  }
  EXPECT_EQ(all_workloads().size(), 10u);
}

TEST(Workloads, TableIClusterGeometry) {
  // The paper's Table I cluster counts arise from decomposition geometry:
  // chains -> 3, 2-D wavefronts -> <= 9, master/worker -> 2.
  const auto bt = run_with_chameleon("bt", 16, {.cls = 'A', .timesteps = 8}, 3);
  EXPECT_EQ(bt.clusters, 3u);

  const auto sp = run_with_chameleon("sp", 16, {.cls = 'A', .timesteps = 8}, 3);
  EXPECT_EQ(sp.clusters, 3u);

  const auto pop =
      run_with_chameleon("pop", 16, {.cls = 'A', .timesteps = 8}, 3);
  EXPECT_EQ(pop.clusters, 3u);

  const auto lu = run_with_chameleon("lu", 16, {.cls = 'A', .timesteps = 8}, 9);
  EXPECT_EQ(lu.clusters, 9u);  // 4 corners + 4 edges + interior on 4x4

  const auto s3d =
      run_with_chameleon("sweep3d", 16, {.cls = 'A', .timesteps = 4}, 9);
  EXPECT_EQ(s3d.clusters, 9u);

  const auto emf = run_with_chameleon("emf", 8, {.timesteps = 8}, 2);
  EXPECT_EQ(emf.callpaths, 2u);  // master + worker call paths
  EXPECT_EQ(emf.clusters, 2u);
}

TEST(Workloads, ClassScalesMessageVolume) {
  auto bytes_for = [](char cls) {
    const WorkloadInfo* info = find_workload("bt");
    sim::Engine engine({.nprocs = 4});
    trace::CallSiteRegistry stacks(4);
    WorkloadParams params{.cls = cls, .timesteps = 2};
    engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });
    return engine.bytes_sent();
  };
  EXPECT_LT(bytes_for('A'), bytes_for('B'));
  EXPECT_LT(bytes_for('B'), bytes_for('C'));
  EXPECT_LT(bytes_for('C'), bytes_for('D'));
}

TEST(Workloads, WeakScalingKeepsPerRankBytesFlat) {
  auto per_rank_bytes = [](int p) {
    const WorkloadInfo* info = find_workload("luw");
    sim::Engine engine({.nprocs = p});
    trace::CallSiteRegistry stacks(p);
    WorkloadParams params{.cls = 'D', .timesteps = 3, .weak = true};
    engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });
    return static_cast<double>(engine.bytes_sent()) / p;
  };
  const double at8 = per_rank_bytes(8);
  const double at32 = per_rank_bytes(32);
  EXPECT_NEAR(at32 / at8, 1.0, 0.35);  // flat up to boundary effects
}

TEST(Workloads, LuModifiedForcesReclusterings) {
  // Figure 10's mechanism: the injected barrier call site changes the
  // Call-Path every perturb_every steps, forcing flush + re-cluster cycles.
  const WorkloadInfo* info = find_workload("lu_mod");
  auto reclusterings = [&](int perturb) {
    const int p = 8;
    sim::Engine engine({.nprocs = p});
    trace::CallSiteRegistry stacks(p);
    core::ChameleonTool tool(p, &stacks, {.k = 9});
    engine.set_tool(&tool);
    WorkloadParams params{.cls = 'A', .timesteps = 60,
                          .perturb_every = perturb};
    engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });
    return tool.reclusterings();
  };
  const auto none = reclusterings(0);
  const auto sparse = reclusterings(30);
  const auto dense = reclusterings(10);
  EXPECT_EQ(none, 1u);
  EXPECT_GT(dense, sparse);
  EXPECT_GE(sparse, 2u);
}

TEST(Workloads, PopInnerLoopVariesButClustersStayAtThree) {
  // The paper's POP observation: irregular convergence depth does not
  // perturb clustering (Call-Paths are over distinct signatures).
  const auto r1 =
      run_with_chameleon("pop", 16, {.cls = 'A', .timesteps = 10, .seed = 1}, 3);
  const auto r2 =
      run_with_chameleon("pop", 16, {.cls = 'A', .timesteps = 10, .seed = 9}, 3);
  EXPECT_EQ(r1.clusters, 3u);
  EXPECT_EQ(r2.clusters, 3u);
  EXPECT_NE(r1.messages, r2.messages);  // the seeds did change the depth
}

TEST(Workloads, EmfIterationsMatchTableII) {
  // iterations = 36000 / (P-1): 288@126 ... 36@1001.
  const WorkloadInfo* info = find_workload("emf");
  ASSERT_NE(info, nullptr);
  for (const auto& [p, iters] :
       std::vector<std::pair<int, int>>{{126, 288}, {251, 144}, {501, 72},
                                        {1001, 36}}) {
    EXPECT_EQ(36000 / (p - 1), iters);
  }
}

TEST(Grid2DTest, FactorsBalanced) {
  EXPECT_EQ(Grid2D::factor(16).qx, 4);
  EXPECT_EQ(Grid2D::factor(16).qy, 4);
  EXPECT_EQ(Grid2D::factor(1024).qx, 32);
  EXPECT_EQ(Grid2D::factor(12).qx, 3);
  EXPECT_EQ(Grid2D::factor(12).qy, 4);
  EXPECT_EQ(Grid2D::factor(7).qx, 1);
}

TEST(Grid2DTest, NeighborsRespectBoundaries) {
  const Grid2D grid = Grid2D::factor(16);  // 4x4
  EXPECT_EQ(grid.neighbor(0, -1, 0), sim::kAnySource);
  EXPECT_EQ(grid.neighbor(0, +1, 0), 1);
  EXPECT_EQ(grid.neighbor(0, 0, +1), 4);
  EXPECT_EQ(grid.neighbor(15, +1, 0), sim::kAnySource);
  EXPECT_EQ(grid.neighbor(15, 0, +1), sim::kAnySource);
  EXPECT_EQ(grid.neighbor(5, -1, 0), 4);
}

}  // namespace
}  // namespace cham::workloads
