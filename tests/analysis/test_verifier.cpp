// VerifierTool: argument checks, collective agreement, finalize leaks,
// truncation — and composition with the Chameleon tracer on the paper's
// workloads (a clean run must produce zero diagnostics).
#include "analysis/verifier.hpp"

#include <gtest/gtest.h>

#include "core/chameleon.hpp"
#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "sim/tool.hpp"
#include "workloads/workload.hpp"

namespace cham::analysis {
namespace {

TEST(Verifier, CleanRingExchangeProducesZeroDiagnostics) {
  const int p = 4;
  sim::Engine engine({.nprocs = p});
  VerifierTool verifier(p);
  engine.set_tool(&verifier);
  engine.run([&](sim::Mpi& mpi) {
    const sim::Rank next = (mpi.rank() + 1) % mpi.size();
    const sim::Rank prev = (mpi.rank() + mpi.size() - 1) % mpi.size();
    for (int step = 0; step < 3; ++step) {
      const sim::Request req = mpi.irecv(prev, 256, 9);
      mpi.send(next, 256, 9);
      mpi.wait(req);
      mpi.allreduce(8);
    }
  });
  EXPECT_TRUE(verifier.clean()) << verifier.sink().format_report();
  EXPECT_EQ(verifier.sink().diagnostics().size(), 0u);
  EXPECT_GT(verifier.calls_checked(), 0u);
}

TEST(Verifier, DetectsCollectiveOperationDivergence) {
  // Rank 0 enters a barrier where everyone else enters an allreduce. The
  // engine itself aborts the whole process on this, so the verifier must
  // catch it in the pre hook and (fail-fast) throw first.
  const int p = 4;
  sim::Engine engine({.nprocs = p});
  VerifierTool verifier(p, nullptr, {.fail_fast = true});
  engine.set_tool(&verifier);
  EXPECT_THROW(engine.run([&](sim::Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.barrier();
    } else {
      mpi.allreduce(8);
    }
  }),
               VerificationError);
  EXPECT_GE(verifier.sink().count("collective.divergence"), 1u);
}

TEST(Verifier, DetectsCollectiveRootDivergence) {
  // All ranks bcast, but they disagree about the root. The engine computes
  // something anyway; the verifier must flag every dissenting rank.
  const int p = 4;
  sim::Engine engine({.nprocs = p});
  VerifierTool verifier(p);
  engine.set_tool(&verifier);
  engine.run([&](sim::Mpi& mpi) {
    mpi.bcast(64, mpi.rank() == 0 ? 0 : 1);
  });
  EXPECT_FALSE(verifier.clean());
  EXPECT_EQ(verifier.sink().count("collective.root_divergence"), 3u);
}

TEST(Verifier, WarnsOnCollectiveBytesDivergence) {
  const int p = 2;
  sim::Engine engine({.nprocs = p});
  VerifierTool verifier(p);
  engine.set_tool(&verifier);
  engine.run([&](sim::Mpi& mpi) {
    mpi.allreduce(mpi.rank() == 0 ? 8 : 16);
  });
  EXPECT_EQ(verifier.sink().count("collective.bytes_divergence"), 1u);
  EXPECT_EQ(verifier.sink().errors(), 0u);
  EXPECT_EQ(verifier.sink().warnings(), 1u);
}

TEST(Verifier, FlagsMessageLeakAtFinalize) {
  // Rank 0 sends a message nobody ever receives: eager delivery lets the
  // run complete, and the verifier finds the orphan at finalize.
  const int p = 2;
  sim::Engine engine({.nprocs = p});
  VerifierTool verifier(p);
  engine.set_tool(&verifier);
  engine.run([&](sim::Mpi& mpi) {
    if (mpi.rank() == 0) mpi.send(1, 512, 3);
  });
  EXPECT_FALSE(verifier.clean());
  EXPECT_EQ(verifier.sink().count("finalize.message_leak"), 1u);
  const Diagnostic* d = verifier.sink().find("finalize.message_leak");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->rank, 1);  // leaked at the would-be receiver
  EXPECT_NE(d->message.find("512"), std::string::npos);
}

TEST(Verifier, FlagsUnmatchedRecvAtFinalize) {
  // Rank 1 posts a receive that never matches and never waits on it.
  const int p = 2;
  sim::Engine engine({.nprocs = p});
  VerifierTool verifier(p);
  engine.set_tool(&verifier);
  engine.run([&](sim::Mpi& mpi) {
    if (mpi.rank() == 1) (void)mpi.irecv(0, 64, 5);
  });
  EXPECT_FALSE(verifier.clean());
  EXPECT_EQ(verifier.sink().count("finalize.pending_recv"), 1u);
  EXPECT_EQ(verifier.sink().count("finalize.unwaited_recv"), 1u);
}

TEST(Verifier, FlagsReceiveTruncation) {
  // A 1 KiB message lands in a 16-byte receive: MPI_ERR_TRUNCATE.
  const int p = 2;
  sim::Engine engine({.nprocs = p});
  VerifierTool verifier(p);
  engine.set_tool(&verifier);
  engine.run([&](sim::Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(1, 1024, 7);
    } else {
      mpi.recv(0, 16, 7);
    }
  });
  EXPECT_EQ(verifier.sink().count("recv.truncation"), 1u);
  const Diagnostic* d = verifier.sink().find("recv.truncation");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->rank, 1);
}

TEST(Verifier, FailFastThrowsOnInvalidPeerBeforeEngineAborts) {
  // Sending to rank 99 in a 2-rank world trips a fatal engine check; the
  // fail-fast verifier must throw out of the pre hook first.
  const int p = 2;
  sim::Engine engine({.nprocs = p});
  VerifierTool verifier(p, nullptr, {.fail_fast = true});
  engine.set_tool(&verifier);
  EXPECT_THROW(engine.run([&](sim::Mpi& mpi) {
    if (mpi.rank() == 0) mpi.send(99, 8, 0);
  }),
               VerificationError);
  EXPECT_EQ(verifier.sink().count("send.invalid_peer"), 1u);
}

TEST(Verifier, FlagsInvalidSendTag) {
  const int p = 2;
  sim::Engine engine({.nprocs = p});
  VerifierTool verifier(p, nullptr, {.fail_fast = true});
  engine.set_tool(&verifier);
  EXPECT_THROW(engine.run([&](sim::Mpi& mpi) {
    if (mpi.rank() == 0) mpi.send(1, 8, sim::kAnyTag);
  }),
               VerificationError);
  EXPECT_EQ(verifier.sink().count("send.invalid_tag"), 1u);
}

TEST(Verifier, FlagsInvalidCollectiveRoot) {
  const int p = 2;
  sim::Engine engine({.nprocs = p});
  VerifierTool verifier(p, nullptr, {.fail_fast = true});
  engine.set_tool(&verifier);
  EXPECT_THROW(engine.run([&](sim::Mpi& mpi) { mpi.bcast(8, 7); }),
               VerificationError);
  EXPECT_GE(verifier.sink().count("collective.invalid_root"), 1u);
}

// --- composition with the tracer on the paper's workloads ----------------

class VerifiedWorkloads : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Chained, VerifiedWorkloads,
                         ::testing::Values("bt", "pop", "sweep3d", "emf"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST_P(VerifiedWorkloads, ChameleonPlusVerifierIsClean) {
  const workloads::WorkloadInfo* info = workloads::find_workload(GetParam());
  ASSERT_NE(info, nullptr);
  const int p = 8;
  sim::Engine engine({.nprocs = p});
  trace::CallSiteRegistry stacks(p);
  core::ChameleonTool chameleon(p, &stacks, {.k = info->default_k});
  VerifierTool verifier(p, &stacks);
  sim::ToolChain chain({&verifier, &chameleon});
  engine.set_tool(&chain);
  workloads::WorkloadParams params{.cls = 'A', .timesteps = 6};
  engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });

  // A correct workload under a correct tracer: zero diagnostics of any
  // severity, while the tracer still produced its online trace.
  EXPECT_TRUE(verifier.clean()) << verifier.sink().format_report();
  EXPECT_EQ(verifier.sink().diagnostics().size(), 0u)
      << verifier.sink().format_report();
  EXPECT_GT(chameleon.events_recorded_total(), 0u);
  EXPECT_GT(verifier.calls_checked(), 0u);
}

}  // namespace
}  // namespace cham::analysis
