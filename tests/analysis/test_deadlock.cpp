// Deadlock detection: stalled runs must terminate with a DeadlockError and
// the verifier must name the wait-for cycle, the blocked ranks and their
// symbolic call paths — instead of hanging forever.
#include <gtest/gtest.h>

#include "analysis/verifier.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/mpi.hpp"
#include "trace/callsite.hpp"

namespace cham::analysis {
namespace {

TEST(Deadlock, HeadToHeadReceivesReportCycleWithBacktraces) {
  // Both ranks receive before sending (the classic unsafe ordering; with
  // the engine's eager sends a literal send/send cannot deadlock, so the
  // deadlock manifests on the receive side).
  const int p = 2;
  sim::Engine engine({.nprocs = p});
  trace::CallSiteRegistry stacks(p);
  VerifierTool verifier(p, &stacks);
  engine.set_tool(&verifier);
  EXPECT_THROW(engine.run([&](sim::Mpi& mpi) {
    trace::CallScope scope(stacks.stack(mpi.rank()), "app.exchange");
    const sim::Rank peer = 1 - mpi.rank();
    mpi.recv(peer, 64, 7);
    mpi.send(peer, 64, 7);
  }),
               sim::DeadlockError);

  ASSERT_EQ(verifier.sink().count("deadlock.cycle"), 1u);
  const Diagnostic* d = verifier.sink().find("deadlock.cycle");
  ASSERT_NE(d, nullptr);
  // The report names the cycle, both blocked ranks, the blocking calls and
  // the branded call path.
  EXPECT_NE(d->message.find("wait-for cycle"), std::string::npos)
      << d->message;
  EXPECT_NE(d->message.find("rank 0"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("rank 1"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("MPI_Recv"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("app.exchange"), std::string::npos) << d->message;
}

TEST(Deadlock, ThreeRankReceiveChainReportsFullCycle) {
  const int p = 3;
  sim::Engine engine({.nprocs = p});
  trace::CallSiteRegistry stacks(p);
  VerifierTool verifier(p, &stacks);
  engine.set_tool(&verifier);
  EXPECT_THROW(engine.run([&](sim::Mpi& mpi) {
    trace::CallScope scope(stacks.stack(mpi.rank()), "app.chain");
    // 0 waits on 2, 1 waits on 0, 2 waits on 1: a three-cycle.
    const sim::Rank upstream = (mpi.rank() + p - 1) % p;
    mpi.recv(upstream, 32, 1);
  }),
               sim::DeadlockError);
  const Diagnostic* d = verifier.sink().find("deadlock.cycle");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("->"), std::string::npos);
  for (const char* needle : {"rank 0", "rank 1", "rank 2"})
    EXPECT_NE(d->message.find(needle), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("3/3 ranks blocked"), std::string::npos)
      << d->message;
}

TEST(Deadlock, CrossCommunicatorCollectiveMismatchIsReported) {
  // Rank 0 enters the world barrier, rank 1 enters the marker barrier:
  // two half-full rendezvous on different communicators, no progress.
  const int p = 2;
  sim::Engine engine({.nprocs = p});
  trace::CallSiteRegistry stacks(p);
  VerifierTool verifier(p, &stacks);
  engine.set_tool(&verifier);
  EXPECT_THROW(engine.run([&](sim::Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.barrier();
    } else {
      mpi.marker();
    }
  }),
               sim::DeadlockError);
  const Diagnostic* d = verifier.sink().find("deadlock.cycle");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("MPI_Barrier"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("rank 0"), std::string::npos);
  EXPECT_NE(d->message.find("rank 1"), std::string::npos);
}

TEST(Deadlock, EngineWithoutToolStillTerminatesWithReport) {
  // The engine-level safety net: no tool installed, the stall still turns
  // into a DeadlockError naming the blocked fibers.
  sim::Engine engine({.nprocs = 2});
  try {
    engine.run([&](sim::Mpi& mpi) { mpi.recv(1 - mpi.rank(), 8, 0); });
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("none runnable"), std::string::npos);
  }
}

TEST(Deadlock, FibersUnwindSoHeapObjectsAreReleased) {
  // Cancellation must unwind blocked fibers' stacks: objects owning heap
  // memory (payload vectors here) would otherwise leak — caught by the
  // ASan test-suite run the build presets add.
  sim::Engine engine({.nprocs = 2});
  auto destroyed = std::make_shared<int>(0);
  struct Guard {
    std::shared_ptr<int> counter;
    ~Guard() { ++*counter; }
  };
  EXPECT_THROW(engine.run([&](sim::Mpi& mpi) {
    Guard guard{destroyed};
    std::vector<std::uint8_t> payload(4096, 0xAB);
    mpi.recv(1 - mpi.rank(), payload.size(), 0);
    (void)payload;
  }),
               sim::DeadlockError);
  EXPECT_EQ(*destroyed, 2);
}

TEST(Deadlock, CleanRunReportsNothing) {
  const int p = 4;
  sim::Engine engine({.nprocs = p});
  VerifierTool verifier(p);
  engine.set_tool(&verifier);
  engine.run([&](sim::Mpi& mpi) {
    const sim::Rank next = (mpi.rank() + 1) % mpi.size();
    const sim::Rank prev = (mpi.rank() + mpi.size() - 1) % mpi.size();
    const sim::Request req = mpi.irecv(prev, 64, 2);
    mpi.send(next, 64, 2);
    mpi.wait(req);
    mpi.barrier();
  });
  EXPECT_EQ(verifier.sink().count("deadlock.cycle"), 0u);
  EXPECT_EQ(verifier.sink().count("deadlock.stall"), 0u);
  EXPECT_TRUE(verifier.clean());
}

}  // namespace
}  // namespace cham::analysis
