// TraceLint: semantic and wire-level trace validation. Corrupt traces are
// hand-built byte streams seeded with exactly one defect each; the linter
// must flag the intended diagnostic. Real tracer output must pass clean.
#include "analysis/lint.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analysis/diagnostic.hpp"
#include "cluster/signature.hpp"
#include "support/logging.hpp"
#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "trace/callsite.hpp"
#include "trace/serialize.hpp"
#include "trace/tracer.hpp"

namespace cham::analysis {
namespace {

using trace::ByteWriter;

// --- wire-format builders (mirror trace/serialize.cpp) -------------------

void put_endpoint(ByteWriter& w, std::uint8_t kind, std::int32_t value) {
  w.u8(kind);
  w.i32(value);
}

void put_empty_histogram(ByteWriter& w) {
  for (int i = 0; i < 16; ++i) w.u64(0);
  w.u64(0);   // count
  w.f64(0);   // min
  w.f64(0);   // max
  w.f64(0);   // sum
}

/// A singleton-section ranklist per rank in `starts` (no dims = {start}).
void put_ranklist(ByteWriter& w, const std::vector<std::int32_t>& starts) {
  w.u32(static_cast<std::uint32_t>(starts.size()));
  for (std::int32_t start : starts) {
    w.i32(start);
    w.u16(0);
  }
}

/// A minimal well-formed barrier leaf covering `ranks`.
void put_leaf(ByteWriter& w, const std::vector<std::int32_t>& ranks,
              std::uint8_t op = 6 /* kBarrier */, std::uint8_t comm = 0) {
  w.u8(0xE1);
  w.u8(op);
  w.u64(0x1234);  // stack_sig
  put_endpoint(w, 0, 0);
  put_endpoint(w, 0, 0);
  w.u64(0);  // bytes
  w.i32(0);  // tag
  w.u8(comm);
  w.u8(0);  // is_marker
  put_ranklist(w, ranks);
  put_empty_histogram(w);
}

TEST(WireLint, WellFormedLeafPasses) {
  ByteWriter w;
  w.u32(1);
  put_leaf(w, {0, 1});
  DiagnosticSink sink;
  EXPECT_TRUE(lint_trace_bytes(w.take(), {.nprocs = 2}, sink));
  EXPECT_TRUE(sink.clean()) << sink.format_report();
}

TEST(WireLint, OverlappingRanklistSectionsAreFlagged) {
  // Two sections both claiming rank 0: the canonicalizing decoder would
  // silently dedup this — only the wire-level pass can see it.
  ByteWriter w;
  w.u32(1);
  put_leaf(w, {0, 0});
  DiagnosticSink sink;
  lint_trace_bytes(w.take(), {.nprocs = 2}, sink);
  EXPECT_EQ(sink.count("ranklist.overlap"), 1u);
  const Diagnostic* d = sink.find("ranklist.overlap");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("covered more than once"), std::string::npos);
}

TEST(WireLint, ZeroIterationLoopIsFlagged) {
  ByteWriter w;
  w.u32(1);
  w.u8(0xE2);  // loop mark
  w.u64(0);    // iters = 0: invalid
  w.u32(1);    // body length
  put_leaf(w, {0});
  DiagnosticSink sink;
  EXPECT_TRUE(lint_trace_bytes(w.take(), {}, sink));
  EXPECT_EQ(sink.count("rsd.zero_iterations"), 1u);
}

TEST(WireLint, InconsistentLoopBodyLengthIsFlagged) {
  // The loop claims three body nodes but the stream holds only one: the
  // walk runs off the end of the buffer.
  ByteWriter w;
  w.u32(1);
  w.u8(0xE2);
  w.u64(4);
  w.u32(3);  // claims 3 children
  put_leaf(w, {0});
  DiagnosticSink sink;
  EXPECT_FALSE(lint_trace_bytes(w.take(), {}, sink));
  EXPECT_EQ(sink.count("wire.truncated"), 1u);
}

TEST(WireLint, EmptyLoopBodyIsFlagged) {
  ByteWriter w;
  w.u32(1);
  w.u8(0xE2);
  w.u64(5);
  w.u32(0);
  DiagnosticSink sink;
  lint_trace_bytes(w.take(), {}, sink);
  EXPECT_EQ(sink.count("rsd.empty_body"), 1u);
}

TEST(WireLint, NonPositiveRanklistIterationIsFlagged) {
  ByteWriter w;
  w.u32(1);
  w.u8(0xE1);
  w.u8(6);
  w.u64(0x1234);
  put_endpoint(w, 0, 0);
  put_endpoint(w, 0, 0);
  w.u64(0);
  w.i32(0);
  w.u8(0);
  w.u8(0);
  w.u32(1);   // 1 section
  w.i32(0);   // start
  w.u16(1);   // 1 dim
  w.i32(-3);  // iters <= 0: invalid
  w.i32(1);   // stride
  put_empty_histogram(w);
  DiagnosticSink sink;
  lint_trace_bytes(w.take(), {}, sink);
  EXPECT_EQ(sink.count("ranklist.nonpositive_iters"), 1u);
}

TEST(WireLint, BadNodeMarkAbortsWalk) {
  ByteWriter w;
  w.u32(1);
  w.u8(0xAA);
  DiagnosticSink sink;
  EXPECT_FALSE(lint_trace_bytes(w.take(), {}, sink));
  EXPECT_EQ(sink.count("wire.bad_mark"), 1u);
}

TEST(WireLint, TrailingBytesAreFlagged) {
  ByteWriter w;
  w.u32(1);
  put_leaf(w, {0});
  w.u8(0xFF);  // junk after the declared node count
  DiagnosticSink sink;
  lint_trace_bytes(w.take(), {}, sink);
  EXPECT_EQ(sink.count("wire.trailing_bytes"), 1u);
}

TEST(WireLint, RanklistBeyondWorldIsFlagged) {
  ByteWriter w;
  w.u32(1);
  put_leaf(w, {0, 9});
  DiagnosticSink sink;
  lint_trace_bytes(w.take(), {.nprocs = 4}, sink);
  EXPECT_EQ(sink.count("ranklist.out_of_range"), 1u);
}

TEST(WireLint, ToolCommunicatorEventIsFlagged) {
  ByteWriter w;
  w.u32(1);
  put_leaf(w, {0}, 6, /*comm=*/2);
  DiagnosticSink sink;
  lint_trace_bytes(w.take(), {}, sink);
  EXPECT_EQ(sink.count("event.bad_comm"), 1u);
}

TEST(WireLint, CorruptHistogramCountIsFlagged) {
  ByteWriter w;
  w.u32(1);
  w.u8(0xE1);
  w.u8(6);
  w.u64(0x1234);
  put_endpoint(w, 0, 0);
  put_endpoint(w, 0, 0);
  w.u64(0);
  w.i32(0);
  w.u8(0);
  w.u8(0);
  put_ranklist(w, {0});
  for (int i = 0; i < 16; ++i) w.u64(0);  // all bins empty...
  w.u64(5);                               // ...but count claims 5 samples
  w.f64(0);
  w.f64(0);
  w.f64(0);
  DiagnosticSink sink;
  lint_trace_bytes(w.take(), {}, sink);
  EXPECT_EQ(sink.count("histogram.bin_sum"), 1u);
}

// --- semantic lint over decoded nodes ------------------------------------

trace::EventRecord make_event(std::uint64_t sig) {
  trace::EventRecord ev;
  ev.op = sim::Op::kBarrier;
  ev.stack_sig = sig;
  ev.ranks = trace::RankList::from_ranks({0, 1});
  return ev;
}

TEST(Lint, EmptyRanklistIsFlagged) {
  trace::EventRecord ev = make_event(1);
  ev.ranks = trace::RankList();
  DiagnosticSink sink;
  lint_trace({trace::TraceNode::leaf(ev)}, {}, sink);
  EXPECT_EQ(sink.count("ranklist.empty"), 1u);
}

TEST(Lint, MarkerFlagMismatchIsFlagged) {
  trace::EventRecord ev = make_event(1);
  ev.op = sim::Op::kAllreduce;
  ev.is_marker = true;  // markers are barriers on the marker communicator
  DiagnosticSink sink;
  lint_trace({trace::TraceNode::leaf(ev)}, {}, sink);
  EXPECT_EQ(sink.count("event.marker_mismatch"), 1u);
}

TEST(Lint, AbsoluteEndpointBeyondWorldIsFlagged) {
  trace::EventRecord ev = make_event(1);
  ev.op = sim::Op::kBcast;
  ev.dest = trace::Endpoint::absolute(12);
  DiagnosticSink sink;
  lint_trace({trace::TraceNode::leaf(ev)}, {.nprocs = 8}, sink);
  EXPECT_EQ(sink.count("endpoint.out_of_range"), 1u);
}

TEST(Lint, EmptyLoopBodyIsFlagged) {
  DiagnosticSink sink;
  lint_trace({trace::TraceNode::loop(4, {})}, {}, sink);
  EXPECT_EQ(sink.count("rsd.empty_body"), 1u);
}

TEST(Lint, FullCoverDetectsMissingRanks) {
  DiagnosticSink sink;
  lint_trace({trace::TraceNode::leaf(make_event(1))},
             {.nprocs = 4, .expect_full_cover = true}, sink);
  const Diagnostic* d = sink.find("merge.missing_ranks");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("2 3"), std::string::npos) << d->message;
}

// --- signature consistency -----------------------------------------------

TEST(Signature, RecomputedCallpathMatchesIntervalSignature) {
  // The Call-Path half of the interval signature must be exactly
  // recomputable from the compressed trace: distinct stack signatures in
  // first-seen order, position-weighted. Loop iterations add no distinct
  // signatures, so compressed and expanded orders agree.
  cluster::IntervalSignature interval;
  std::vector<trace::TraceNode> nodes;
  // Expanded: A, (B, C) x3, A, D  — first-seen order A, B, C, D.
  const auto a = make_event(0xA);
  const auto b = make_event(0xB);
  const auto c = make_event(0xC);
  const auto d = make_event(0xD);
  nodes.push_back(trace::TraceNode::leaf(a));
  nodes.push_back(trace::TraceNode::loop(
      3, {trace::TraceNode::leaf(b), trace::TraceNode::leaf(c)}));
  nodes.push_back(trace::TraceNode::leaf(a));
  nodes.push_back(trace::TraceNode::leaf(d));
  interval.observe(a);
  for (int i = 0; i < 3; ++i) {
    interval.observe(b);
    interval.observe(c);
  }
  interval.observe(a);
  interval.observe(d);
  EXPECT_EQ(recompute_callpath(nodes), interval.current().callpath);
}

TEST(Signature, MismatchIsFlaggedAndMatchIsClean) {
  std::vector<trace::TraceNode> nodes;
  nodes.push_back(trace::TraceNode::leaf(make_event(0xBEEF)));
  const std::uint64_t good = recompute_callpath(nodes);

  DiagnosticSink clean_sink;
  lint_signature(nodes, good, clean_sink);
  EXPECT_TRUE(clean_sink.clean());

  DiagnosticSink bad_sink;
  lint_signature(nodes, good ^ 1, bad_sink);
  EXPECT_EQ(bad_sink.count("signature.mismatch"), 1u);
}

// --- real tracer output must pass ----------------------------------------

TEST(Lint, ScalaTraceOutputPassesBothLintLevels) {
  const int p = 8;
  sim::Engine engine({.nprocs = p});
  trace::CallSiteRegistry stacks(p);
  trace::ScalaTraceTool tracer(p, &stacks);
  engine.set_tool(&tracer);
  engine.run([&](sim::Mpi& mpi) {
    trace::CallScope scope(stacks.stack(mpi.rank()), "lint.app");
    const sim::Rank next = (mpi.rank() + 1) % mpi.size();
    const sim::Rank prev = (mpi.rank() + mpi.size() - 1) % mpi.size();
    for (int step = 0; step < 5; ++step) {
      const sim::Request req = mpi.irecv(prev, 128, 4);
      mpi.send(next, 128, 4);
      mpi.wait(req);
      mpi.allreduce(8);
    }
  });
  const auto& nodes = tracer.global_trace();
  ASSERT_FALSE(nodes.empty());

  DiagnosticSink sink;
  const LintOptions opts{.nprocs = p, .expect_full_cover = true};
  lint_trace(nodes, opts, sink);
  EXPECT_EQ(sink.errors(), 0u) << sink.format_report();
  EXPECT_EQ(sink.warnings(), 0u) << sink.format_report();

  EXPECT_TRUE(lint_trace_bytes(trace::encode_trace(nodes), opts, sink));
  EXPECT_EQ(sink.errors(), 0u) << sink.format_report();
}

TEST(Diagnostics, ForwardedFindingsReachTheLogObserver) {
  std::vector<support::LogRecord> seen;
  support::set_log_observer(
      [&seen](const support::LogRecord& rec) { seen.push_back(rec); });

  DiagnosticSink sink;
  sink.set_log_forwarding(true);
  sink.report(Severity::kError, "wire.decode", 3, "boom");
  sink.report(Severity::kWarning, "event.odd", -1, "meh");
  support::set_log_observer(nullptr);

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].level, support::LogLevel::kError);
  EXPECT_NE(seen[0].message.find("wire.decode"), std::string::npos);
  EXPECT_NE(seen[0].message.find("rank 3"), std::string::npos);
  EXPECT_EQ(seen[1].level, support::LogLevel::kWarn);
}

TEST(Diagnostics, ForwardingIsOffByDefault) {
  std::vector<support::LogRecord> seen;
  support::set_log_observer(
      [&seen](const support::LogRecord& rec) { seen.push_back(rec); });
  DiagnosticSink sink;
  sink.report(Severity::kError, "wire.decode", -1, "boom");
  support::set_log_observer(nullptr);
  EXPECT_TRUE(seen.empty());
}

}  // namespace
}  // namespace cham::analysis
