# Uniform CLI input-error contract (docs/DURABILITY.md): bad input files
# exit 2 with one typed diagnostic line — plain by default, a JSON object
# under --log-json — and missing files surface as io errors, not crashes.
# Invoked by ctest with -DCHAMTRACE=<binary> -DWORKDIR=<scratch>.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

# A corrupt trace file: valid-looking length prefix, garbage body.
file(WRITE ${WORKDIR}/corrupt.bin "\x07\x00\x00\x00garbagegarbage")

execute_process(
  COMMAND ${CHAMTRACE} show ${WORKDIR}/corrupt.bin
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "corrupt trace: expected exit 2, got ${rc}")
endif()
if(NOT err MATCHES "chamtrace: decode error:")
  message(FATAL_ERROR "corrupt trace: missing typed diagnostic: ${err}")
endif()

execute_process(
  COMMAND ${CHAMTRACE} show ${WORKDIR}/corrupt.bin --log-json
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(NOT rc EQUAL 2 OR NOT err MATCHES "\"kind\":\"decode\"")
  message(FATAL_ERROR "corrupt trace --log-json: got ${rc}: ${err}")
endif()

execute_process(
  COMMAND ${CHAMTRACE} show ${WORKDIR}/no_such_file.bin
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(NOT rc EQUAL 2 OR NOT err MATCHES "chamtrace: io error:")
  message(FATAL_ERROR "missing trace: got ${rc}: ${err}")
endif()

execute_process(
  COMMAND ${CHAMTRACE} run --resume ${WORKDIR}/no_such_dir
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(NOT rc EQUAL 2 OR NOT err MATCHES "chamtrace: io error:")
  message(FATAL_ERROR "missing checkpoint dir: got ${rc}: ${err}")
endif()

execute_process(
  COMMAND ${CHAMTRACE} replay ${WORKDIR}/corrupt.bin --procs 4
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_QUIET)
if(NOT rc EQUAL 2 OR NOT err MATCHES "chamtrace: decode error:")
  message(FATAL_ERROR "replay corrupt trace: got ${rc}: ${err}")
endif()
