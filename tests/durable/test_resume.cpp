// ChamDurable end-to-end: a checkpointed run's durable state matches the
// live tool, a power-cut (journal truncation) resumes to a byte-identical
// final clusterset, and a dead lead is restored from the journal instead of
// costing a GAP node.
#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/chameleon.hpp"
#include "durable/checkpoint.hpp"
#include "durable/wire.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/mpi.hpp"
#include "trace/serialize.hpp"

namespace cham::core {
namespace {

using trace::CallScope;
using trace::CallSiteRegistry;
using trace::site_id;

void steady_phase(sim::Mpi& mpi, CallSiteRegistry& stacks, int steps) {
  const int p = mpi.size();
  for (int step = 0; step < steps; ++step) {
    CallScope scope(stacks.stack(mpi.rank()), site_id("phase.steady"));
    const sim::Rank next = (mpi.rank() + 1) % p;
    const sim::Rank prev = (mpi.rank() + p - 1) % p;
    mpi.compute(0.001);
    mpi.isend(next, 128, 1);
    mpi.recv(prev, 128, 1);
    mpi.allreduce(8);
    mpi.marker();
  }
}

durable::RunManifest steady_manifest(int p) {
  durable::RunManifest m;
  m.workload = "test.steady";
  m.procs = p;
  m.k = 3;
  m.snapshot_every = 1000;  // keep every epoch in the journal
  return m;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::remove((dir + "/manifest.bin").c_str());
  std::remove((dir + "/snapshot.bin").c_str());
  std::remove((dir + "/journal.bin").c_str());
  return dir;
}

/// Run `steps` of the steady phase on `p` ranks under Chameleon with the
/// given durable wiring; returns the final cluster-table wire image.
std::vector<std::uint8_t> run_steady(int p, int steps, ChameleonConfig cfg,
                                     std::vector<trace::TraceNode>* online,
                                     const std::string& fault_plan = "") {
  sim::Engine engine({.nprocs = p});
  CallSiteRegistry stacks(p);
  std::optional<sim::FaultInjector> injector;
  if (!fault_plan.empty()) {
    injector.emplace(sim::FaultPlan::parse(fault_plan, 0));
    engine.set_fault_injector(&*injector);
  }
  ChameleonTool tool(p, &stacks, cfg);
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, stacks, steps); });
  if (online != nullptr) *online = tool.online_trace();
  return tool.clusters().encode();
}

/// Structural fingerprint ignoring delta-time histograms (which embed
/// virtual timing the fast-forward intentionally does not re-charge).
void shape_into(const std::vector<trace::TraceNode>& nodes, std::string* out) {
  for (const auto& node : nodes) {
    if (node.is_loop()) {
      *out += 'L' + std::to_string(node.iters) + '[';
      shape_into(node.body, out);
      *out += ']';
      continue;
    }
    const trace::EventRecord& e = node.event;
    *out += op_name(e.op);
    *out += '#' + std::to_string(e.tag) + ':' + e.ranks.to_string() + '/' +
            std::to_string(e.bytes) + ';';
  }
}

std::string shape_of(const std::vector<trace::TraceNode>& nodes) {
  std::string out;
  shape_into(nodes, &out);
  return out;
}

std::size_t count_gaps(const std::vector<trace::TraceNode>& nodes) {
  std::size_t gaps = 0;
  for (const auto& node : nodes) {
    if (node.is_loop()) {
      gaps += count_gaps(node.body);
    } else if (node.event.op == sim::Op::kGap) {
      ++gaps;
    }
  }
  return gaps;
}

TEST(DurableResume, FinalizedStateMatchesLiveTool) {
  const int p = 8;
  const std::string dir = fresh_dir("resume_full");
  std::vector<trace::TraceNode> online;
  std::vector<std::uint8_t> clusters;
  {
    auto cp = durable::Checkpointer::create(dir, steady_manifest(p),
                                            {.snapshot_every = 4});
    clusters = run_steady(p, 6, {.k = 3, .checkpointer = cp.get()}, &online);
  }
  const durable::RecoveredState rec = durable::recover(dir);
  EXPECT_TRUE(rec.finalized);
  EXPECT_EQ(rec.clusters_wire, clusters);
  EXPECT_EQ(rec.online_wire, trace::encode_trace(online));
  EXPECT_EQ(rec.state_counts[0] + rec.state_counts[1] + rec.state_counts[2],
            6u);
}

TEST(DurableResume, PowerCutResumesToByteIdenticalClusterset) {
  const int p = 8;
  const int steps = 6;
  const std::string ref_dir = fresh_dir("resume_ref");
  std::vector<trace::TraceNode> ref_online;
  std::vector<std::uint8_t> ref_clusters;
  // The finalize-time snapshot roll swaps in a fresh journal, so stash the
  // journal image mid-run: rank 0 is the epoch home, so right after its
  // marker() returns the epoch's delta is committed and on disk.
  std::vector<std::uint8_t> journal;
  {
    auto cp = durable::Checkpointer::create(ref_dir, steady_manifest(p));
    sim::Engine engine({.nprocs = p});
    CallSiteRegistry stacks(p);
    ChameleonTool tool(p, &stacks, {.k = 3, .checkpointer = cp.get()});
    engine.set_tool(&tool);
    engine.run([&](sim::Mpi& mpi) {
      for (int step = 0; step < steps; ++step) {
        CallScope scope(stacks.stack(mpi.rank()), site_id("phase.steady"));
        const sim::Rank next = (mpi.rank() + 1) % p;
        const sim::Rank prev = (mpi.rank() + p - 1) % p;
        mpi.compute(0.001);
        mpi.isend(next, 128, 1);
        mpi.recv(prev, 128, 1);
        mpi.allreduce(8);
        mpi.marker();
        if (mpi.rank() == 0 && step == 3)
          journal = durable::read_file(ref_dir + "/journal.bin");
      }
    });
    ref_clusters = tool.clusters().encode();
    ref_online = tool.online_trace();
  }
  ASSERT_FALSE(journal.empty());
  const auto manifest = durable::read_file(ref_dir + "/manifest.bin");

  // A power cut is a journal prefix: cut at several arbitrary byte offsets
  // (torn tails included), recover, resume, and require the byte-identical
  // final cluster table every time.
  for (const std::size_t cut :
       {journal.size(), journal.size() - 7, journal.size() / 2}) {
    const std::string dir =
        fresh_dir("resume_cut_" + std::to_string(cut));
    auto cp0 = durable::Checkpointer::create(dir, steady_manifest(p));
    cp0.reset();  // just materialize the directory + manifest
    durable::write_file_sync(dir + "/manifest.bin", manifest);
    durable::write_file_sync(
        dir + "/journal.bin",
        std::vector<std::uint8_t>(journal.begin(), journal.begin() + cut));

    const durable::RecoveredState rec = durable::recover(dir);
    ASSERT_FALSE(rec.finalized);
    ASSERT_GT(rec.epoch, 0u) << "cut " << cut << " recovered nothing";
    ASSERT_LT(rec.epoch, static_cast<std::uint64_t>(steps));

    // Resume without re-journaling: protocol equivalence alone.
    std::vector<trace::TraceNode> online_a;
    const auto clusters_a =
        run_steady(p, steps, {.k = 3, .resume = &rec}, &online_a);
    EXPECT_EQ(clusters_a, ref_clusters) << "cut " << cut;
    EXPECT_EQ(shape_of(online_a), shape_of(ref_online)) << "cut " << cut;

    // Resume with re-journaling: afterwards the directory recovers to the
    // same finalized state as the uninterrupted run.
    {
      auto cp = durable::Checkpointer::attach(dir, rec, {.snapshot_every = 4});
      const auto clusters_b = run_steady(
          p, steps, {.k = 3, .checkpointer = cp.get(), .resume = &rec},
          nullptr);
      EXPECT_EQ(clusters_b, ref_clusters) << "cut " << cut;
    }
    const durable::RecoveredState fin = durable::recover(dir);
    EXPECT_TRUE(fin.finalized) << "cut " << cut;
    EXPECT_EQ(fin.clusters_wire, ref_clusters) << "cut " << cut;
  }
}

TEST(DurableResume, DeadLeadRestoredFromJournalInsteadOfGap) {
  const int p = 16;
  const int steps = 12;
  // Find a non-home multi-member cluster lead in the fault-free reference.
  sim::Engine ref_engine({.nprocs = p});
  CallSiteRegistry ref_stacks(p);
  ChameleonTool ref_tool(p, &ref_stacks, {.k = 3});
  ref_engine.set_tool(&ref_tool);
  ref_engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, ref_stacks, steps); });
  sim::Rank victim = sim::kAnySource;
  for (const auto& [callpath, entries] : ref_tool.clusters().groups())
    for (const auto& entry : entries)
      if (entry.lead != 0 && entry.members.count() > 1) victim = entry.lead;
  ASSERT_NE(victim, sim::kAnySource);
  const std::string plan =
      "crash rank=" + std::to_string(victim) + " marker=8";

  // Without durability the death costs a GAP node...
  std::vector<trace::TraceNode> online_gap;
  run_steady(p, steps, {.k = 3}, &online_gap, plan);
  EXPECT_EQ(count_gaps(online_gap), 1u);

  // ...with a checkpointer the promoted lead restores the journaled trace.
  const std::string dir = fresh_dir("resume_lead_restore");
  std::vector<trace::TraceNode> online_restored;
  {
    auto cp = durable::Checkpointer::create(dir, steady_manifest(p));
    run_steady(p, steps, {.k = 3, .checkpointer = cp.get()}, &online_restored,
               plan);
  }
  EXPECT_EQ(count_gaps(online_restored), 0u);
  const durable::RecoveredState rec = durable::recover(dir);
  EXPECT_TRUE(rec.finalized);
  EXPECT_TRUE(rec.gap_ranks.empty());
}

}  // namespace
}  // namespace cham::core
