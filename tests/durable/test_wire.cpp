// Durable envelope + file primitives: every corruption is a typed
// trace::DecodeError, every OS failure a std::system_error.
#include "durable/wire.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <system_error>

namespace cham::durable {
namespace {

std::vector<std::uint8_t> payload_bytes() {
  return {0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03};
}

TEST(Envelope, RoundTrip) {
  const auto sealed = seal(kSnapshotMagic, 1, 0x1234, payload_bytes());
  const Envelope env = unseal(kSnapshotMagic, 1, 0x1234, sealed, "snapshot");
  EXPECT_EQ(env.version, 1);
  EXPECT_EQ(env.config_digest, 0x1234u);
  EXPECT_EQ(env.payload, payload_bytes());
}

TEST(Envelope, DigestZeroSkipsPinning) {
  const auto sealed = seal(kManifestMagic, 1, 0x9999, payload_bytes());
  EXPECT_NO_THROW(unseal(kManifestMagic, 1, 0, sealed, "manifest"));
}

TEST(Envelope, WrongMagicRejected) {
  const auto sealed = seal(kSnapshotMagic, 1, 7, payload_bytes());
  EXPECT_THROW(unseal(kJournalMagic, 1, 7, sealed, "journal"),
               trace::DecodeError);
}

TEST(Envelope, FutureVersionRejectedWithDiagnostic) {
  const auto sealed = seal(kSnapshotMagic, 2, 7, payload_bytes());
  try {
    unseal(kSnapshotMagic, 1, 7, sealed, "snapshot");
    FAIL() << "future version accepted";
  } catch (const trace::DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported format version"),
              std::string::npos)
        << e.what();
  }
}

TEST(Envelope, DigestMismatchRejected) {
  const auto sealed = seal(kSnapshotMagic, 1, 7, payload_bytes());
  EXPECT_THROW(unseal(kSnapshotMagic, 1, 8, sealed, "snapshot"),
               trace::DecodeError);
}

TEST(Envelope, EveryPayloadBitFlipRejected) {
  const auto sealed = seal(kSnapshotMagic, 1, 7, payload_bytes());
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    auto bad = sealed;
    bad[i] ^= 0x40;
    EXPECT_THROW(unseal(kSnapshotMagic, 1, 7, bad, "snapshot"),
                 trace::DecodeError)
        << "flip at byte " << i << " slipped through";
  }
}

TEST(Envelope, EveryTruncationRejected) {
  const auto sealed = seal(kSnapshotMagic, 1, 7, payload_bytes());
  for (std::size_t keep = 0; keep < sealed.size(); ++keep) {
    const std::vector<std::uint8_t> bad(sealed.begin(),
                                        sealed.begin() + keep);
    EXPECT_THROW(unseal(kSnapshotMagic, 1, 7, bad, "snapshot"),
                 trace::DecodeError)
        << "truncation to " << keep << " bytes slipped through";
  }
}

TEST(Envelope, TrailingGarbageRejected) {
  auto sealed = seal(kSnapshotMagic, 1, 7, payload_bytes());
  sealed.push_back(0x00);
  EXPECT_THROW(unseal(kSnapshotMagic, 1, 7, sealed, "snapshot"),
               trace::DecodeError);
}

TEST(StringBlob, RoundTrip) {
  trace::ByteWriter w;
  put_string(w, "phase.steady");
  put_blob(w, payload_bytes());
  put_string(w, "");
  const auto buf = w.take();
  trace::ByteReader r(buf);
  EXPECT_EQ(get_string(r), "phase.steady");
  EXPECT_EQ(get_blob(r), payload_bytes());
  EXPECT_EQ(get_string(r), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(StringBlob, OversizedLengthClaimsRejected) {
  // A corrupt length prefix must be bounded by the remaining buffer, not
  // trusted into a giant allocation.
  trace::ByteWriter ws;
  ws.u32(0xFFFFFFFFu);
  const auto bs = ws.take();
  trace::ByteReader rs(bs);
  EXPECT_THROW(get_string(rs), trace::DecodeError);

  trace::ByteWriter wb;
  wb.u64(0xFFFFFFFFFFFFFFFFull);
  const auto bb = wb.take();
  trace::ByteReader rb(bb);
  EXPECT_THROW(get_blob(rb), trace::DecodeError);
}

TEST(Files, MissingFileIsSystemError) {
  EXPECT_THROW(read_file(testing::TempDir() + "/durable_no_such_file.bin"),
               std::system_error);
  EXPECT_FALSE(file_exists(testing::TempDir() + "/durable_no_such_file.bin"));
}

TEST(Files, AtomicWriteRoundTrip) {
  const std::string path = testing::TempDir() + "/durable_wire_atomic.bin";
  write_file_atomic(path, payload_bytes());
  EXPECT_TRUE(file_exists(path));
  EXPECT_EQ(read_file(path), payload_bytes());
  // Overwrite publishes the new image, and no .tmp residue survives.
  write_file_atomic(path, {0x42});
  EXPECT_EQ(read_file(path), std::vector<std::uint8_t>{0x42});
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cham::durable
