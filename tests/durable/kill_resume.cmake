# Drives the CLI kill/resume smoke: reference checkpointed run, a second
# run SIGKILL'd mid-epoch by the --kill-at-epoch test hook, then --resume,
# and finally a byte comparison of the two cluster-table wire images.
# Invoked by ctest with -DCHAMTRACE=<binary> -DWORKDIR=<scratch>; pass
# -DTHREADS=<N> to run every leg on the sharded scheduler (the reference
# run stays single-threaded, so the comparison doubles as a cross-thread
# determinism check on the recovery path).
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

if(NOT DEFINED THREADS)
  set(THREADS 1)
endif()

execute_process(
  COMMAND ${CHAMTRACE} run --workload lu --procs 8 --class S
          --checkpoint-dir ${WORKDIR}/ref
          --clusters-out ${WORKDIR}/ref-clusters.bin
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference checkpointed run failed: ${rc}")
endif()

execute_process(
  COMMAND ${CHAMTRACE} run --workload lu --procs 8 --class S
          --threads ${THREADS}
          --checkpoint-dir ${WORKDIR}/kill --kill-at-epoch 4
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
# The hook raises SIGKILL: execute_process reports the signal, not 0.
if(rc EQUAL 0)
  message(FATAL_ERROR "--kill-at-epoch run was expected to die, exited 0")
endif()

execute_process(
  COMMAND ${CHAMTRACE} run --resume ${WORKDIR}/kill --threads ${THREADS}
          --clusters-out ${WORKDIR}/res-clusters.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume failed (${rc}): ${out}")
endif()
if(NOT out MATCHES "recovered lu/8")
  message(FATAL_ERROR "resume did not report recovery: ${out}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/ref-clusters.bin ${WORKDIR}/res-clusters.bin
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed cluster table differs from the reference run")
endif()

# Resuming the now-finalized directory serves outputs without re-running.
execute_process(
  COMMAND ${CHAMTRACE} run --resume ${WORKDIR}/kill
          --clusters-out ${WORKDIR}/fin-clusters.bin
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "already finalized")
  message(FATAL_ERROR "finalized resume failed (${rc}): ${out}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/ref-clusters.bin ${WORKDIR}/fin-clusters.bin
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "finalized-resume cluster table differs")
endif()
