// Snapshot/journal wire formats: roundtrips, the torn-tail contract, and
// typed rejection of every other inconsistency.
#include "durable/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "durable/wire.hpp"
#include "trace/serialize.hpp"

namespace cham::durable {
namespace {

RankRecord sample_record(std::int32_t rank, std::uint64_t epoch) {
  RankRecord rec;
  rec.epoch = epoch;
  rec.rank = rank;
  rec.final_epoch = false;
  rec.first_marker = (rank % 2) == 0;
  rec.reclustering = (rank % 3) == 0;
  rec.lead_phase = rank == 1;
  rec.storing = rank != 2;
  rec.old_callpath = 0xC0FFEEull + static_cast<std::uint64_t>(rank);
  rec.markers_seen = epoch * 2;
  rec.auto_site = rank == 0 ? 0x5EED : 0;
  rec.intra_wire = {0x01, 0x02, 0x03, static_cast<std::uint8_t>(rank)};
  return rec;
}

EpochDelta sample_delta(std::uint64_t epoch) {
  EpochDelta d;
  d.epoch = epoch;
  d.final_epoch = false;
  d.state = 2;
  d.action = 1;
  d.gaps_wire = {0x00, 0x00, 0x00, 0x00};
  d.interval_wire = {0xAA, 0xBB};
  d.clusters_wire = {0x10, 0x20, 0x30};
  d.state_counts = {epoch, 1, 2, 0};
  d.effective_k = 3;
  d.num_callpaths = 2;
  d.live = {0, 1, 2, 3};
  return d;
}

TEST(RankRecordWire, RoundTripAllFlagCombinations) {
  for (int bits = 0; bits < 32; ++bits) {
    RankRecord rec = sample_record(7, 9);
    rec.final_epoch = (bits & 1) != 0;
    rec.first_marker = (bits & 2) != 0;
    rec.reclustering = (bits & 4) != 0;
    rec.lead_phase = (bits & 8) != 0;
    rec.storing = (bits & 16) != 0;
    trace::ByteWriter w;
    encode_rank_record(w, rec);
    const auto buf = w.take();
    trace::ByteReader r(buf);
    const RankRecord out = decode_rank_record(r);
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(out.final_epoch, rec.final_epoch);
    EXPECT_EQ(out.first_marker, rec.first_marker);
    EXPECT_EQ(out.reclustering, rec.reclustering);
    EXPECT_EQ(out.lead_phase, rec.lead_phase);
    EXPECT_EQ(out.storing, rec.storing);
    EXPECT_EQ(out.epoch, rec.epoch);
    EXPECT_EQ(out.rank, rec.rank);
    EXPECT_EQ(out.old_callpath, rec.old_callpath);
    EXPECT_EQ(out.markers_seen, rec.markers_seen);
    EXPECT_EQ(out.auto_site, rec.auto_site);
    EXPECT_EQ(out.intra_wire, rec.intra_wire);
  }
}

TEST(EpochDeltaWire, RoundTrip) {
  const EpochDelta d = sample_delta(5);
  const EpochDelta out = decode_epoch_delta(encode_epoch_delta(d));
  EXPECT_EQ(out.epoch, d.epoch);
  EXPECT_EQ(out.final_epoch, d.final_epoch);
  EXPECT_EQ(out.state, d.state);
  EXPECT_EQ(out.action, d.action);
  EXPECT_EQ(out.gaps_wire, d.gaps_wire);
  EXPECT_EQ(out.interval_wire, d.interval_wire);
  EXPECT_EQ(out.clusters_wire, d.clusters_wire);
  EXPECT_EQ(out.state_counts, d.state_counts);
  EXPECT_EQ(out.effective_k, d.effective_k);
  EXPECT_EQ(out.num_callpaths, d.num_callpaths);
  EXPECT_EQ(out.live, d.live);
}

TEST(EpochDeltaWire, TrailingBytesRejected) {
  auto bytes = encode_epoch_delta(sample_delta(5));
  bytes.push_back(0x00);
  EXPECT_THROW(decode_epoch_delta(bytes), trace::DecodeError);
}

std::vector<std::uint8_t> journal_image(std::uint64_t digest, int epochs) {
  std::vector<std::uint8_t> image = journal_header(digest);
  for (int e = 1; e <= epochs; ++e) {
    for (std::int32_t r = 0; r < 4; ++r) {
      trace::ByteWriter w;
      encode_rank_record(w, sample_record(r, static_cast<std::uint64_t>(e)));
      const auto frame = frame_record(RecordType::kRankRecord, w.take());
      image.insert(image.end(), frame.begin(), frame.end());
    }
    const auto frame = frame_record(
        RecordType::kEpochDelta,
        encode_epoch_delta(sample_delta(static_cast<std::uint64_t>(e))));
    image.insert(image.end(), frame.begin(), frame.end());
  }
  return image;
}

TEST(Journal, ParseRoundTrip) {
  const auto image = journal_image(0x77, 2);
  const JournalImage parsed = parse_journal(image, 0x77);
  EXPECT_EQ(parsed.version, kJournalVersion);
  EXPECT_EQ(parsed.config_digest, 0x77u);
  EXPECT_FALSE(parsed.torn_tail);
  ASSERT_EQ(parsed.records.size(), 10u);  // (4 records + 1 delta) * 2
  EXPECT_EQ(parsed.records[4].type, RecordType::kEpochDelta);
  EXPECT_EQ(parsed.records[9].type, RecordType::kEpochDelta);
}

TEST(Journal, EveryTruncationIsTornTailOrShorterPrefix) {
  // Cutting a journal anywhere past the header must never throw: the
  // complete frames before the cut parse, the torn frame is dropped and
  // reported. This is exactly what a SIGKILL mid-append leaves behind.
  const auto image = journal_image(0x77, 2);
  const std::size_t header = journal_header(0x77).size();
  std::size_t torn_count = 0;
  for (std::size_t keep = header; keep < image.size(); ++keep) {
    const std::vector<std::uint8_t> cut(image.begin(), image.begin() + keep);
    const JournalImage parsed = parse_journal(cut, 0x77);
    EXPECT_LE(parsed.records.size(), 10u);
    if (parsed.torn_tail) ++torn_count;
    if (keep == image.size() - 1) EXPECT_TRUE(parsed.torn_tail);
  }
  EXPECT_GT(torn_count, 0u);
}

TEST(Journal, HeaderTruncationRejected) {
  const auto header = journal_header(0x77);
  for (std::size_t keep = 0; keep < header.size(); ++keep) {
    const std::vector<std::uint8_t> cut(header.begin(),
                                        header.begin() + keep);
    EXPECT_THROW(parse_journal(cut, 0x77), trace::DecodeError);
  }
}

TEST(Journal, MidFilePayloadFlipRejected) {
  auto image = journal_image(0x77, 2);
  // Flip a byte inside the first frame's payload: checksum mismatch, and
  // because complete frames follow it this is corruption, not a torn tail.
  image[journal_header(0x77).size() + 24] ^= 0x01;
  EXPECT_THROW(parse_journal(image, 0x77), trace::DecodeError);
}

TEST(Journal, WrongDigestRejected) {
  const auto image = journal_image(0x77, 1);
  EXPECT_THROW(parse_journal(image, 0x78), trace::DecodeError);
  EXPECT_NO_THROW(parse_journal(image, 0));  // 0 = don't pin
}

TEST(Journal, UnknownRecordTypeRejected) {
  auto image = journal_header(0x77);
  auto frame = frame_record(RecordType::kRankRecord, {0x01});
  // Type byte sits right after the 4-byte frame magic; forging it breaks
  // the checksum too, so rebuild the frame through the public API with a
  // casted bogus type instead.
  frame = frame_record(static_cast<RecordType>(9), {0x01});
  image.insert(image.end(), frame.begin(), frame.end());
  EXPECT_THROW(parse_journal(image, 0x77), trace::DecodeError);
}

TEST(JournalWriter, AppendReopenParse) {
  const std::string path = testing::TempDir() + "/durable_test_journal.bin";
  {
    JournalWriter w;
    w.create(path, 0x42);
    trace::ByteWriter rw;
    encode_rank_record(rw, sample_record(0, 1));
    w.append(RecordType::kRankRecord, rw.take());
    w.sync();
    EXPECT_EQ(w.syncs(), 2u);  // header + explicit sync
    w.close();
  }
  {
    JournalWriter w;
    w.open_append(path);
    w.append(RecordType::kEpochDelta, encode_epoch_delta(sample_delta(1)));
    w.sync();
    w.close();
  }
  const JournalImage parsed = parse_journal(read_file(path), 0x42);
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.records[0].type, RecordType::kRankRecord);
  EXPECT_EQ(parsed.records[1].type, RecordType::kEpochDelta);
  EXPECT_FALSE(parsed.torn_tail);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cham::durable
