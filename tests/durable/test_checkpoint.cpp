// Checkpointer commit/roll protocol and recover() semantics, plus golden
// version-skew images (regenerate with CHAM_REGEN_GOLDEN=1, like the trace
// goldens).
#include "durable/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include "durable/wire.hpp"
#include "trace/event.hpp"
#include "trace/serialize.hpp"

#ifndef CHAM_TESTS_DATA_DIR
#error "CHAM_TESTS_DATA_DIR must point at tests/data"
#endif

namespace cham::durable {
namespace {

RunManifest test_manifest() {
  RunManifest m;
  m.workload = "lu";
  m.cls = "S";
  m.timesteps = 4;
  m.procs = 2;
  m.k = 3;
  m.sched_seed = 7;
  m.snapshot_every = 8;
  return m;
}

trace::TraceNode sample_leaf(std::uint64_t stack) {
  trace::EventRecord ev;
  ev.op = sim::Op::kSend;
  ev.stack_sig = stack;
  ev.dest = trace::Endpoint{trace::Endpoint::Kind::kRelative, 1};
  ev.bytes = 64;
  ev.tag = 5;
  ev.ranks = trace::RankList::from_ranks({0, 1});
  return trace::TraceNode::leaf(ev);
}

RankRecord rank_record(std::int32_t rank, std::uint64_t epoch,
                       bool final_epoch = false) {
  RankRecord rec;
  rec.epoch = epoch;
  rec.rank = rank;
  rec.final_epoch = final_epoch;
  rec.markers_seen = epoch;
  rec.intra_wire = trace::encode_trace({});
  return rec;
}

EpochDelta delta(std::uint64_t epoch, std::vector<std::int32_t> live,
                 bool final_epoch = false) {
  EpochDelta d;
  d.epoch = epoch;
  d.final_epoch = final_epoch;
  d.gaps_wire = trace::encode_trace({});
  d.interval_wire = trace::encode_trace({sample_leaf(0x100 + epoch)});
  d.clusters_wire = {0x01, 0x02};
  d.state_counts = {epoch, 0, 0, 0};
  d.effective_k = 3;
  d.live = std::move(live);
  return d;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::remove((dir + "/manifest.bin").c_str());
  std::remove((dir + "/snapshot.bin").c_str());
  std::remove((dir + "/journal.bin").c_str());
  return dir;
}

void commit_epochs(Checkpointer& cp, std::uint64_t from, std::uint64_t to,
                   bool final_last = false) {
  for (std::uint64_t e = from; e <= to; ++e) {
    const bool fin = final_last && e == to;
    cp.append_rank_record(rank_record(0, e, fin));
    cp.append_rank_record(rank_record(1, e, fin));
    cp.commit_epoch(delta(e, {0, 1}, fin),
                    trace::encode_trace({sample_leaf(0x900)}));
  }
}

TEST(Checkpointer, JournalOnlyRecover) {
  const std::string dir = fresh_dir("ck_journal_only");
  auto cp = Checkpointer::create(dir, test_manifest());
  commit_epochs(*cp, 1, 3);
  EXPECT_EQ(cp->epochs_committed(), 3u);
  EXPECT_EQ(cp->records_appended(), 9u);  // 2 ranks * 3 + 3 deltas
  EXPECT_EQ(cp->snapshots_written(), 0u);
  cp.reset();

  const RecoveredState rec = recover(dir);
  EXPECT_EQ(rec.epoch, 3u);
  EXPECT_EQ(rec.snapshot_epoch, 0u);
  EXPECT_EQ(rec.journal_epochs_replayed, 3u);
  EXPECT_FALSE(rec.finalized);
  EXPECT_FALSE(rec.journal_torn_tail);
  EXPECT_EQ(rec.state_counts[0], 3u);
  EXPECT_EQ(rec.clusters_wire, (std::vector<std::uint8_t>{0x01, 0x02}));
  ASSERT_EQ(rec.ranks.size(), 2u);
  EXPECT_EQ(rec.ranks[0].epoch, 3u);
  // Three one-leaf intervals were appended; the online trace is non-empty.
  EXPECT_FALSE(trace::decode_trace(rec.online_wire).empty());
  EXPECT_EQ(rec.manifest.workload, "lu");
}

TEST(Checkpointer, SnapshotRollAndStaleDeltaSkip) {
  const std::string dir = fresh_dir("ck_roll");
  CheckpointerOptions opts;
  opts.snapshot_every = 2;
  auto cp = Checkpointer::create(dir, test_manifest(), opts);
  commit_epochs(*cp, 1, 5);
  EXPECT_GE(cp->snapshots_written(), 2u);
  cp.reset();
  EXPECT_TRUE(file_exists(dir + "/snapshot.bin"));

  const RecoveredState rec = recover(dir);
  EXPECT_EQ(rec.epoch, 5u);
  EXPECT_GE(rec.snapshot_epoch, 4u);
  // Everything at or before the snapshot must come from the snapshot, not
  // be double-applied from the journal.
  EXPECT_LE(rec.journal_epochs_replayed, 1u);
  EXPECT_EQ(rec.state_counts[0], 5u);
}

TEST(Checkpointer, FinalEpochMarksFinalized) {
  const std::string dir = fresh_dir("ck_final");
  auto cp = Checkpointer::create(dir, test_manifest());
  commit_epochs(*cp, 1, 2, /*final_last=*/true);
  cp.reset();
  const RecoveredState rec = recover(dir);
  EXPECT_TRUE(rec.finalized);
  EXPECT_EQ(rec.epoch, 2u);
}

TEST(Checkpointer, LatestRankRecordServesInRunRestore) {
  const std::string dir = fresh_dir("ck_latest");
  auto cp = Checkpointer::create(dir, test_manifest());
  commit_epochs(*cp, 1, 2);
  const auto rec = cp->latest_rank_record(1);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->epoch, 2u);
  EXPECT_FALSE(cp->latest_rank_record(9).has_value());
}

TEST(Checkpointer, AttachContinuesAfterRecovery) {
  const std::string dir = fresh_dir("ck_attach");
  {
    auto cp = Checkpointer::create(dir, test_manifest());
    commit_epochs(*cp, 1, 2);
  }
  const RecoveredState rec = recover(dir);
  {
    // attach() folds the recovery into a fresh snapshot (the old journal
    // may have a torn tail) and keeps appending after rec.epoch.
    auto cp = Checkpointer::attach(dir, rec);
    EXPECT_EQ(cp->latest_rank_record(0)->epoch, 2u);
    commit_epochs(*cp, 3, 3);
  }
  const RecoveredState again = recover(dir);
  EXPECT_EQ(again.epoch, 3u);
  EXPECT_GE(again.snapshot_epoch, 2u);
  EXPECT_EQ(again.state_counts[0], 3u);
}

TEST(Checkpointer, DeltaWithoutRankRecordsIsCorruption) {
  const std::string dir = fresh_dir("ck_orphan_delta");
  {
    auto cp = Checkpointer::create(dir, test_manifest());
    // Violate the commit protocol: a delta for ranks that never journaled.
    cp->commit_epoch(delta(1, {0, 1}), trace::encode_trace({}));
  }
  EXPECT_THROW(recover(dir), trace::DecodeError);
}

TEST(Checkpointer, ForeignArtifactsRejected) {
  // A snapshot sealed under a different manifest digest must not load.
  const std::string dir_a = fresh_dir("ck_foreign_a");
  const std::string dir_b = fresh_dir("ck_foreign_b");
  {
    auto cp = Checkpointer::create(dir_a, test_manifest());
    CheckpointerOptions opts;
    opts.snapshot_every = 1;
    RunManifest other = test_manifest();
    other.sched_seed = 99;  // different run configuration
    auto cp_b = Checkpointer::create(dir_b, other, opts);
    commit_epochs(*cp_b, 1, 1);
  }
  // Splice B's snapshot+journal under A's manifest.
  write_file_sync(dir_a + "/snapshot.bin", read_file(dir_b + "/snapshot.bin"));
  write_file_sync(dir_a + "/journal.bin", read_file(dir_b + "/journal.bin"));
  EXPECT_THROW(recover(dir_a), trace::DecodeError);
}

TEST(Manifest, RoundTripAndDigestStability) {
  const RunManifest m = test_manifest();
  const RunManifest out = decode_manifest(encode_manifest(m));
  EXPECT_EQ(out.workload, m.workload);
  EXPECT_EQ(out.cls, m.cls);
  EXPECT_EQ(out.procs, m.procs);
  EXPECT_EQ(out.sched_seed, m.sched_seed);
  EXPECT_EQ(out.digest(), m.digest());
  RunManifest other = m;
  other.fault_plan = "crash rank=3 marker=4";
  EXPECT_NE(other.digest(), m.digest());
}

// --- golden version-skew images -------------------------------------------

constexpr std::uint64_t kGoldenDigest = 0xC0DEC0DEull;

std::string golden_path(const std::string& name) {
  return std::string(CHAM_TESTS_DATA_DIR) + "/" + name;
}

std::vector<std::uint8_t> read_golden(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

ProtocolSnapshot golden_snapshot() {
  ProtocolSnapshot snap;
  snap.epoch = 4;
  snap.online_wire = trace::encode_trace({sample_leaf(0xAB)});
  snap.clusters_wire = {0x11, 0x22};
  snap.state_counts = {2, 1, 1, 0};
  snap.effective_k = 3;
  snap.num_callpaths = 2;
  snap.gap_ranks = {5};
  snap.sites = {{0x123, "phase.steady"}};
  RankRecord rec;
  rec.epoch = 4;
  rec.rank = 0;
  rec.intra_wire = trace::encode_trace({});
  snap.ranks = {rec};
  return snap;
}

/// The committed goldens: a valid v1 snapshot, the same payload sealed as a
/// (fictitious) future version, and the v1 image with one payload byte
/// flipped. A format change invalidates the goldens loudly — regenerate
/// with CHAM_REGEN_GOLDEN=1 and review the diff like code.
TEST(GoldenSkew, ImagesMatchAndSkewIsRejected) {
  const std::string good = golden_path("durable_snapshot_v1.golden.bin");
  const std::string future = golden_path("durable_snapshot_future.golden.bin");
  const std::string badsum = golden_path("durable_snapshot_badsum.golden.bin");

  if (std::getenv("CHAM_REGEN_GOLDEN") != nullptr) {
    const auto image = encode_snapshot(golden_snapshot(), kGoldenDigest);
    const Envelope env =
        unseal(kSnapshotMagic, kSnapshotVersion, kGoldenDigest, image, "s");
    const auto future_image =
        seal(kSnapshotMagic, kSnapshotVersion + 1, kGoldenDigest, env.payload);
    auto bad_image = image;
    bad_image[bad_image.size() / 2] ^= 0x01;
    write_file_sync(good, image);
    write_file_sync(future, future_image);
    write_file_sync(badsum, bad_image);
    GTEST_SKIP() << "regenerated golden images";
  }

  const auto good_image = read_golden(good);
  ASSERT_FALSE(good_image.empty()) << "missing golden " << good;
  // Byte-stability: today's encoder must reproduce the committed image.
  EXPECT_EQ(encode_snapshot(golden_snapshot(), kGoldenDigest), good_image);
  const ProtocolSnapshot snap = decode_snapshot(good_image, kGoldenDigest);
  EXPECT_EQ(snap.epoch, 4u);
  EXPECT_EQ(snap.gap_ranks, std::vector<std::int32_t>{5});
  ASSERT_EQ(snap.sites.size(), 1u);
  EXPECT_EQ(snap.sites[0].second, "phase.steady");

  const auto future_image = read_golden(future);
  ASSERT_FALSE(future_image.empty()) << "missing golden " << future;
  try {
    decode_snapshot(future_image, kGoldenDigest);
    FAIL() << "future-versioned snapshot accepted";
  } catch (const trace::DecodeError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported format version"),
              std::string::npos)
        << e.what();
  }

  const auto bad_image = read_golden(badsum);
  ASSERT_FALSE(bad_image.empty()) << "missing golden " << badsum;
  EXPECT_THROW(decode_snapshot(bad_image, kGoldenDigest), trace::DecodeError);
}

}  // namespace
}  // namespace cham::durable
