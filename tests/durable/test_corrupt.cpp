// Deterministic corruption injector + the corruption matrix: every decode
// path fed mutated images must either succeed or throw a typed error —
// never crash, hang, or allocate past the input. Iteration count scales
// with CHAM_CORRUPT_ITERS (default 300; tools/check.sh runs >=1000 under
// ASan/UBSan).
#include "durable/corrupt.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdlib>
#include <string>

#include "durable/checkpoint.hpp"
#include "durable/journal.hpp"
#include "durable/wire.hpp"
#include "trace/event.hpp"
#include "trace/serialize.hpp"

namespace cham::durable {
namespace {

TEST(Injector, DeterministicAndAlwaysMutates) {
  std::vector<std::uint8_t> image(257);
  for (std::size_t i = 0; i < image.size(); ++i)
    image[i] = static_cast<std::uint8_t>(i * 31);
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    MutationReport a, b;
    const auto out1 = mutate_image(image, seed, &a);
    const auto out2 = mutate_image(image, seed, &b);
    EXPECT_EQ(out1, out2) << "seed " << seed << " not deterministic";
    EXPECT_EQ(a.to_string(), b.to_string());
    EXPECT_NE(out1, image) << "seed " << seed << " left the image intact";
  }
}

TEST(Injector, EmptyImageStaysEmpty) {
  EXPECT_TRUE(mutate_image({}, 3, nullptr).empty());
}

struct Corpus {
  RunManifest manifest;
  std::vector<std::uint8_t> manifest_image;
  std::vector<std::uint8_t> snapshot_image;
  std::vector<std::uint8_t> journal_image;
  std::string dir;
};

/// A real checkpoint directory (snapshot + journal + manifest) produced
/// through the Checkpointer, so mutations hit the same byte layouts the
/// production writer emits.
Corpus build_corpus(const std::string& name) {
  Corpus c;
  c.manifest.workload = "lu";
  c.manifest.cls = "S";
  c.manifest.procs = 2;
  c.manifest.k = 3;
  // ctest -j runs each case as its own process: the corpus dir must be
  // unique per test or concurrent cases race on the same files.
  c.dir = testing::TempDir() + "/durable_corrupt_corpus_" + name;
  CheckpointerOptions opts;
  opts.snapshot_every = 2;
  auto cp = Checkpointer::create(c.dir, c.manifest, opts);
  for (std::uint64_t e = 1; e <= 3; ++e) {
    for (std::int32_t rank = 0; rank < 2; ++rank) {
      RankRecord rec;
      rec.epoch = e;
      rec.rank = rank;
      rec.intra_wire = trace::encode_trace({});
      cp->append_rank_record(rec);
    }
    EpochDelta d;
    d.epoch = e;
    d.gaps_wire = trace::encode_trace({});
    d.interval_wire = trace::encode_trace({trace::TraceNode::leaf([] {
      trace::EventRecord ev;
      ev.op = sim::Op::kBarrier;
      ev.stack_sig = 0xAB;
      ev.ranks = trace::RankList::from_ranks({0, 1});
      return ev;
    }())});
    d.live = {0, 1};
    cp->commit_epoch(d, d.interval_wire);
  }
  cp.reset();
  c.manifest_image = read_file(c.dir + "/manifest.bin");
  c.snapshot_image = read_file(c.dir + "/snapshot.bin");
  c.journal_image = read_file(c.dir + "/journal.bin");
  return c;
}

int corrupt_iters() {
  if (const char* env = std::getenv("CHAM_CORRUPT_ITERS"))
    return std::max(1, std::atoi(env));
  return 300;
}

TEST(Matrix, MutatedImagesNeverCrashDecoders) {
  const Corpus c = build_corpus("images");
  const std::uint64_t digest = c.manifest.digest();
  const int iters = corrupt_iters();
  int rejected = 0, survived = 0;
  for (int i = 0; i < iters; ++i) {
    const auto seed = static_cast<std::uint64_t>(i);
    const auto target = i % 3;
    const auto& base = target == 0   ? c.manifest_image
                       : target == 1 ? c.snapshot_image
                                     : c.journal_image;
    MutationReport report;
    const auto mutated = mutate_image(base, seed, &report);
    try {
      if (target == 0) {
        (void)decode_manifest(mutated);
      } else if (target == 1) {
        (void)decode_snapshot(mutated, digest);
      } else {
        const JournalImage img = parse_journal(mutated, digest);
        // Frames that still parse must still decode without crashing.
        for (const auto& rec : img.records) {
          if (rec.type == RecordType::kEpochDelta) {
            (void)decode_epoch_delta(rec.payload);
          } else {
            trace::ByteReader r(rec.payload);
            (void)decode_rank_record(r);
          }
        }
      }
      ++survived;  // mutation hit slack bytes or a torn-tail-tolerated spot
    } catch (const trace::DecodeError&) {
      ++rejected;
    }
    // Any other exception type (or a crash) fails the test.
  }
  // The checksummed envelopes make almost every mutation detectable.
  EXPECT_GT(rejected, iters / 2)
      << "only " << rejected << "/" << iters << " mutations rejected";
  (void)survived;
}

TEST(Matrix, MutatedDirectoriesNeverCrashRecover) {
  const Corpus c = build_corpus("recover");
  const std::string dir = testing::TempDir() + "/durable_corrupt_scratch";
  ::mkdir(dir.c_str(), 0755);
  const int iters = std::max(1, corrupt_iters() / 3);
  for (int i = 0; i < iters; ++i) {
    const auto seed = static_cast<std::uint64_t>(i) ^ 0xD15EA5Eull;
    const auto target = i % 3;
    write_file_sync(dir + "/manifest.bin",
                    target == 0 ? mutate_image(c.manifest_image, seed, nullptr)
                                : c.manifest_image);
    write_file_sync(dir + "/snapshot.bin",
                    target == 1 ? mutate_image(c.snapshot_image, seed, nullptr)
                                : c.snapshot_image);
    write_file_sync(dir + "/journal.bin",
                    target == 2 ? mutate_image(c.journal_image, seed, nullptr)
                                : c.journal_image);
    try {
      const RecoveredState rec = recover(dir);
      EXPECT_LE(rec.epoch, 3u);
    } catch (const trace::DecodeError&) {
    } catch (const std::system_error&) {
    }
  }
}

}  // namespace
}  // namespace cham::durable
