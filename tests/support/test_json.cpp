#include "support/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace cham::support::json {
namespace {

// --- escaping ---------------------------------------------------------------

TEST(JsonEscape, PassesPlainAsciiThrough) {
  EXPECT_EQ(escape("hello world_42"), "hello world_42");
}

TEST(JsonEscape, EscapesQuotesAndBackslash) {
  EXPECT_EQ(escape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscape, EscapesNamedControlCharacters) {
  EXPECT_EQ(escape("a\nb\tc\rd\be\ff"), "a\\nb\\tc\\rd\\be\\ff");
}

TEST(JsonEscape, EscapesOtherControlCharactersAsUnicode) {
  EXPECT_EQ(escape(std::string("x\x01y\x1fz", 5)), "x\\u0001y\\u001fz");
  EXPECT_EQ(escape(std::string("\0", 1)), "\\u0000");
}

TEST(JsonEscape, PassesNonAsciiUtf8Through) {
  // Multi-byte UTF-8 sequences are legal in JSON strings as-is; escaping
  // them would corrupt the byte sequence.
  EXPECT_EQ(escape("caf\xc3\xa9 \xe6\xbc\xa2"), "caf\xc3\xa9 \xe6\xbc\xa2");
}

TEST(JsonNumber, NonFiniteBecomesZero) {
  EXPECT_EQ(number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(number(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(number(1.5), "1.5");
}

// --- writer -----------------------------------------------------------------

TEST(JsonWriter, CompactObject) {
  Writer w(false);
  w.begin_object();
  w.member("a", 1);
  w.member("b", "two");
  w.key("c").begin_array().value(true).null().end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"two","c":[true,null]})");
}

TEST(JsonWriter, PrettyUsesColonSpaceAndIndent) {
  Writer w(true);
  w.begin_object();
  w.member("k", 7);
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"k\": 7\n}");
}

TEST(JsonWriter, EscapesKeysAndValues) {
  Writer w(false);
  w.begin_object();
  w.member("we\"ird", "line\nbreak");
  w.end_object();
  EXPECT_EQ(w.str(), R"({"we\"ird":"line\nbreak"})");
}

TEST(JsonWriter, EmptyContainers) {
  Writer w(true);
  w.begin_object();
  w.key("a").begin_array().end_array();
  w.key("o").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"a\": [],\n  \"o\": {}\n}");
}

TEST(JsonWriter, RawSplicesVerbatim) {
  Writer w(false);
  w.begin_array().raw("0.25").value(1).end_array();
  EXPECT_EQ(w.str(), "[0.25,1]");
}

TEST(JsonWriter, MisuseIsFatal) {
  Writer w(false);
  w.begin_object();
  EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  Writer w2(false);
  w2.begin_array();
  EXPECT_THROW(w2.key("k"), std::logic_error);  // key inside array
  Writer w3(false);
  w3.begin_object();
  EXPECT_THROW(w3.end_array(), std::logic_error);  // mismatched close
}

// --- parser -----------------------------------------------------------------

TEST(JsonParse, Scalars) {
  Value v;
  std::string err;
  ASSERT_TRUE(parse("42.5", &v, &err)) << err;
  EXPECT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.as_number(), 42.5);
  ASSERT_TRUE(parse("true", &v, &err));
  EXPECT_TRUE(v.as_bool());
  ASSERT_TRUE(parse("null", &v, &err));
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(parse("\"hi\"", &v, &err));
  EXPECT_EQ(v.as_string(), "hi");
}

TEST(JsonParse, NestedStructure) {
  Value v;
  std::string err;
  ASSERT_TRUE(parse(R"({"a": [1, {"b": "c"}], "d": -2e3})", &v, &err)) << err;
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 2u);
  const Value* b = a->as_array()[1].find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->as_string(), "c");
  EXPECT_DOUBLE_EQ(v.find("d")->as_number(), -2000.0);
}

TEST(JsonParse, StringEscapes) {
  Value v;
  std::string err;
  ASSERT_TRUE(parse(R"("a\"b\\c\nAé")", &v, &err)) << err;
  EXPECT_EQ(v.as_string(), "a\"b\\c\nA\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedInput) {
  Value v;
  std::string err;
  EXPECT_FALSE(parse("{", &v, &err));
  EXPECT_FALSE(parse("[1,]", &v, &err));
  EXPECT_FALSE(parse("\"unterminated", &v, &err));
  EXPECT_FALSE(parse("{\"k\": 1} trailing", &v, &err));
  EXPECT_FALSE(parse("nul", &v, &err));
  EXPECT_FALSE(parse("\"bad \x01 control\"", &v, &err));
  // Errors carry a byte offset for debugging.
  EXPECT_NE(err.find("at byte"), std::string::npos);
}

TEST(JsonParse, WriterOutputRoundTrips) {
  Writer w(true);
  w.begin_object();
  w.member("name", "tricky \"quotes\"\n");
  w.member("count", std::uint64_t{7});
  w.key("items").begin_array().value(1.25).value(false).end_array();
  w.end_object();

  Value v;
  std::string err;
  ASSERT_TRUE(parse(w.str(), &v, &err)) << err;
  EXPECT_EQ(v.find("name")->as_string(), "tricky \"quotes\"\n");
  EXPECT_DOUBLE_EQ(v.find("count")->as_number(), 7.0);
  EXPECT_EQ(v.find("items")->as_array().size(), 2u);
}

}  // namespace
}  // namespace cham::support::json
