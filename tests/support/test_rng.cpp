#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cham::support {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsSafe) {
  Rng r(0);
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 100; ++i) vals.insert(r.next_u64());
  EXPECT_GT(vals.size(), 95u);  // not stuck at a fixed point
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundReturnsZero) {
  Rng r(7);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // roughly uniform
}

}  // namespace
}  // namespace cham::support
