#include "support/histogram.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace cham::support {
namespace {

TEST(Histogram, EmptyState) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(Histogram, SingleSample) {
  Histogram h;
  h.add(3.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 3.5);
  EXPECT_DOUBLE_EQ(h.max(), 3.5);
  EXPECT_DOUBLE_EQ(h.mean(), 3.5);
}

TEST(Histogram, TracksRangeAndMean) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, CountConservedAcrossRebins) {
  Histogram h;
  Rng rng(5);
  // Values arriving in a widening pattern force repeated rebinning.
  for (int i = 0; i < 1000; ++i) {
    h.add(rng.next_double() * static_cast<double>(i + 1));
  }
  EXPECT_EQ(h.count(), 1000u);
  std::uint64_t binned = 0;
  for (int i = 0; i < Histogram::kBins; ++i) binned += h.bin(i);
  EXPECT_EQ(binned, 1000u);
}

TEST(Histogram, MergeConservesCountAndSum) {
  Histogram a, b;
  Rng rng(6);
  for (int i = 0; i < 300; ++i) a.add(rng.next_double());
  for (int i = 0; i < 500; ++i) b.add(10.0 + rng.next_double());
  const double sum = a.total() + b.total();
  a.merge(b);
  EXPECT_EQ(a.count(), 800u);
  EXPECT_NEAR(a.total(), sum, 1e-9);
  EXPECT_DOUBLE_EQ(a.max(), b.max());
  std::uint64_t binned = 0;
  for (int i = 0; i < Histogram::kBins; ++i) binned += a.bin(i);
  EXPECT_EQ(binned, 800u);
}

TEST(Histogram, MergeWithEmpty) {
  Histogram a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  Histogram c;
  c.merge(a);
  EXPECT_EQ(c.count(), 1u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.0);
}

TEST(Histogram, EqualityOnIdenticalStreams) {
  Histogram a, b;
  for (double v : {0.1, 0.2, 0.9, 0.4}) {
    a.add(v);
    b.add(v);
  }
  EXPECT_TRUE(a == b);
  b.add(0.5);
  EXPECT_FALSE(a == b);
}

TEST(Histogram, RepresentativeIsMean) {
  Histogram h;
  h.add(2.0);
  h.add(4.0);
  EXPECT_DOUBLE_EQ(h.representative(), 3.0);
}

TEST(Histogram, ConstantStreamLandsInOneBin) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.add(7.0);
  int nonzero = 0;
  for (int i = 0; i < Histogram::kBins; ++i)
    if (h.bin(i) > 0) ++nonzero;
  EXPECT_EQ(nonzero, 1);
}

TEST(Histogram, PercentileOnEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.0), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.percentile(1.0), 0.0);
}

TEST(Histogram, PercentileClampsOutOfRangeP) {
  Histogram h;
  h.add(1.0);
  h.add(3.0);
  EXPECT_EQ(h.percentile(-0.5), h.percentile(0.0));
  EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));
}

TEST(Histogram, PercentileOfConstantStreamIsTheConstant) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(4.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 4.0);
}

TEST(Histogram, PercentileIsMonotoneAndBounded) {
  Histogram h;
  Rng rng(42);
  for (int i = 0; i < 1000; ++i)
    h.add(static_cast<double>(rng.next_below(1000)) / 1000.0);
  double prev = h.percentile(0.0);
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double q = h.percentile(p);
    EXPECT_GE(q, prev);
    EXPECT_LE(q, h.max());
    prev = q;
  }
  // The tail quantile must sit near the top of the range, not at the mean.
  EXPECT_GT(h.percentile(0.99), h.mean());
}

}  // namespace
}  // namespace cham::support
