#include "support/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace cham::support {
namespace {

TEST(Hash, Fnv1aMatchesKnownVectors) {
  // Reference values for FNV-1a 64-bit.
  EXPECT_EQ(fnv1a64(std::string_view{""}), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64(std::string_view{"a"}), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64(std::string_view{"foobar"}), 0x85944171f73967e8ull);
}

TEST(Hash, FnvBytesAgreesWithStringView) {
  const std::string s = "chameleon";
  EXPECT_EQ(fnv1a64(s.data(), s.size()), fnv1a64(std::string_view{s}));
}

TEST(Hash, Mix64IsBijectiveOnSamples) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Hash, Mix64AvalanchesLowBits) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  const int samples = 256;
  for (int i = 0; i < samples; ++i) {
    const auto a = mix64(static_cast<std::uint64_t>(i));
    const auto b = mix64(static_cast<std::uint64_t>(i) ^ 1u);
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total_flips) / samples;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Hash, CombineIsOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Hash, CombineChainsDistinctly) {
  // Hashing sequences [1,2,3] vs [1,3,2] vs [1,2] must all differ.
  auto chain = [](const std::vector<std::uint64_t>& xs) {
    std::uint64_t h = 0;
    for (auto x : xs) h = hash_combine(h, x);
    return h;
  };
  EXPECT_NE(chain({1, 2, 3}), chain({1, 3, 2}));
  EXPECT_NE(chain({1, 2, 3}), chain({1, 2}));
  EXPECT_NE(chain({1, 2}), chain({2, 1}));
}

TEST(Hash, ConstexprUsable) {
  constexpr auto h = fnv1a64(std::string_view{"compile-time"});
  static_assert(h != 0);
  EXPECT_NE(h, 0u);
}

}  // namespace
}  // namespace cham::support
