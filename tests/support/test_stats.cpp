#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "support/rng.hpp"

namespace cham::support {
namespace {

TEST(RunningMean, ExactForConstantStream) {
  RunningMean m;
  for (int i = 0; i < 1000; ++i) m.add(42);
  EXPECT_EQ(m.mean(), 42u);
  EXPECT_EQ(m.count(), 1000u);
}

TEST(RunningMean, NoOverflowNearU64Max) {
  // This is the paper's motivating case: summing would overflow, the
  // estimation function must not.
  RunningMean m;
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max() - 5;
  for (int i = 0; i < 100; ++i) m.add(big);
  EXPECT_EQ(m.mean(), big);
}

TEST(RunningMean, ApproximatesTrueMean) {
  RunningMean m;
  Rng rng(9);
  unsigned __int128 sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = rng.next_below(1000000);
    sum += v;
    m.add(v);
  }
  const auto true_mean = static_cast<std::uint64_t>(sum / n);
  const std::uint64_t diff =
      m.mean() > true_mean ? m.mean() - true_mean : true_mean - m.mean();
  EXPECT_LE(diff, 2u);  // integer estimation drift stays tiny
}

TEST(RunningMean, MergeMatchesSequential) {
  RunningMean whole, a, b;
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.next_below(10000);
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  // The estimation function trades exactness for overflow safety; drift on
  // merge stays within a handful of units for ~10k-scale means.
  const std::uint64_t diff =
      a.mean() > whole.mean() ? a.mean() - whole.mean() : whole.mean() - a.mean();
  EXPECT_LE(diff, 16u);
}

TEST(RunningMean, MergeWithEmpty) {
  RunningMean a, empty;
  a.add(5);
  a.add(7);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 6u);
  RunningMean b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 6u);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole, a, b;
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 100.0;
    whole.add(v);
    (i < 300 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

}  // namespace
}  // namespace cham::support
