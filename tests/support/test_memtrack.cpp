#include "support/memtrack.hpp"

#include <gtest/gtest.h>

namespace cham::support {
namespace {

TEST(MemTracker, ChargesAndRefunds) {
  MemTracker t;
  t.charge(100);
  EXPECT_EQ(t.current(), 100);
  EXPECT_EQ(t.peak(), 100);
  t.charge(-40);
  EXPECT_EQ(t.current(), 60);
  EXPECT_EQ(t.peak(), 100);
  EXPECT_EQ(t.allocated_total(), 100u);
}

TEST(MemTracker, PeakFollowsHighWater) {
  MemTracker t;
  t.charge(10);
  t.charge(-10);
  t.charge(50);
  EXPECT_EQ(t.peak(), 50);
  EXPECT_EQ(t.allocated_total(), 60u);
}

TEST(MemTracker, ScopedChargeRefundsOnExit) {
  MemTracker t;
  {
    ScopedCharge guard(t, 64);
    EXPECT_EQ(t.current(), 64);
  }
  EXPECT_EQ(t.current(), 0);
  EXPECT_EQ(t.peak(), 64);
}

TEST(MemTracker, ResetClearsEverything) {
  MemTracker t;
  t.charge(10);
  t.reset();
  EXPECT_EQ(t.current(), 0);
  EXPECT_EQ(t.peak(), 0);
  EXPECT_EQ(t.allocated_total(), 0u);
}

TEST(MemTracker, NegativeChargeCanUnderflowBelowZero) {
  // Refunding more than was charged leaves a negative live balance (signed
  // accounting is deliberate: it surfaces double-refund bugs instead of
  // clamping them away). Peak and allocated_total are unaffected.
  MemTracker t;
  t.charge(10);
  t.charge(-25);
  EXPECT_EQ(t.current(), -15);
  EXPECT_EQ(t.peak(), 10);
  EXPECT_EQ(t.allocated_total(), 10u);
  // Recovering only counts new allocations, not the repaid debt.
  t.charge(20);
  EXPECT_EQ(t.current(), 5);
  EXPECT_EQ(t.allocated_total(), 30u);
}

TEST(MemTracker, ResetAfterPeakForgetsHistory) {
  MemTracker t;
  t.charge(100);
  t.charge(-40);
  EXPECT_EQ(t.peak(), 100);
  t.reset();
  EXPECT_EQ(t.peak(), 0);
  // A smaller post-reset episode establishes its own peak, unaffected by
  // the pre-reset high-water mark.
  t.charge(7);
  EXPECT_EQ(t.current(), 7);
  EXPECT_EQ(t.peak(), 7);
  EXPECT_EQ(t.allocated_total(), 7u);
}

TEST(FormatBytes, HumanReadable) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.00 MiB");
}

}  // namespace
}  // namespace cham::support
