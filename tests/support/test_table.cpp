#include "support/table.hpp"

#include <gtest/gtest.h>

#include "support/csv.hpp"

namespace cham::support {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("Demo");
  t.header({"Pgm", "K"});
  t.row({"BT", "3"});
  t.row({"LU", "9"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("Pgm"), std::string::npos);
  EXPECT_NE(out.find("BT"), std::string::npos);
  EXPECT_NE(out.find("LU"), std::string::npos);
}

TEST(Table, ColumnsAlign) {
  Table t;
  t.header({"a", "bbbb"});
  t.row({"cccc", "d"});
  const std::string out = t.render();
  // Both lines should have the same position for the second column.
  const auto first_line_end = out.find('\n');
  const std::string l1 = out.substr(0, first_line_end);
  EXPECT_EQ(l1.find("bbbb"), 6u);  // "cccc" width + 2 spaces
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<std::uint64_t>(42)), "42");
  EXPECT_EQ(Table::percent(0.9775, 2), "97.75%");
}

TEST(Table, RaggedRowsTolerated) {
  Table t;
  t.header({"x", "y", "z"});
  t.row({"1"});
  EXPECT_NO_THROW({ auto s = t.render(); (void)s; });
}

TEST(Csv, HeaderAndRows) {
  CsvWriter w({"prog", "p", "overhead"});
  w.row({"BT", "1024", "1.5"});
  EXPECT_EQ(w.content(), "prog,p,overhead\nBT,1024,1.5\n");
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, PadsShortRows) {
  CsvWriter w({"a", "b"});
  w.row({"1"});
  EXPECT_EQ(w.content(), "a,b\n1,\n");
}

}  // namespace
}  // namespace cham::support
