#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/validate.hpp"
#include "support/json.hpp"

namespace cham::obs {
namespace {

TEST(Metrics, CounterAccumulatesPerLabelSet) {
  MetricsRegistry reg;
  reg.add_counter("cham.fold.performed", {{"tool", "chameleon"}}, 3);
  reg.add_counter("cham.fold.performed", {{"tool", "chameleon"}}, 4);
  reg.add_counter("cham.fold.performed", {{"tool", "scalatrace"}}, 1);
  EXPECT_EQ(reg.counter("cham.fold.performed", {{"tool", "chameleon"}}), 7u);
  EXPECT_EQ(reg.counter("cham.fold.performed", {{"tool", "scalatrace"}}), 1u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, SetCounterOverwrites) {
  MetricsRegistry reg;
  reg.add_counter("c", {}, 5);
  reg.set_counter("c", {}, 2);
  EXPECT_EQ(reg.counter("c", {}), 2u);
}

TEST(Metrics, GaugeHoldsLatestValue) {
  MetricsRegistry reg;
  reg.set_gauge("cham.phase.seconds", {{"phase", "intra"}}, 1.5);
  reg.set_gauge("cham.phase.seconds", {{"phase", "intra"}}, 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("cham.phase.seconds", {{"phase", "intra"}}), 2.5);
}

TEST(Metrics, HistogramRecordsAndMerges) {
  MetricsRegistry reg;
  reg.record("lat", {}, 0.1);
  reg.record("lat", {}, 0.3);
  support::Histogram extra;
  extra.add(0.2);
  reg.merge_histogram("lat", {}, extra);
  const support::Histogram* h = reg.histogram("lat", {});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->max(), 0.3);
}

TEST(Metrics, MissingMetricsReadAsZeroOrNull) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter("absent", {}), 0u);
  EXPECT_EQ(reg.gauge("absent", {}), 0.0);
  EXPECT_EQ(reg.histogram("absent", {}), nullptr);
}

TEST(Metrics, KindMismatchIsFatal) {
  MetricsRegistry reg;
  reg.add_counter("m", {}, 1);
  EXPECT_THROW(reg.set_gauge("m", {}, 1.0), std::logic_error);
  EXPECT_THROW(reg.record("m", {}, 1.0), std::logic_error);
}

TEST(Metrics, JsonExportIsValidAndCarriesValues) {
  MetricsRegistry reg;
  reg.set_counter("cham.fold.performed", {{"tool", "chameleon"}}, 11);
  reg.set_gauge("cham.phase.seconds",
                {{"tool", "chameleon"}, {"phase", "intra"}}, 0.25);
  reg.record("lat", {}, 1.0);
  const std::string doc = reg.to_json_string();

  std::string error;
  EXPECT_TRUE(validate_metrics_json(doc, &error)) << error;

  support::json::Value v;
  ASSERT_TRUE(support::json::parse(doc, &v, &error)) << error;
  EXPECT_EQ(v.find("schema")->as_string(), "chameleon.metrics.v1");
  const auto& metrics = v.find("metrics")->as_array();
  ASSERT_EQ(metrics.size(), 3u);
  bool saw_counter = false;
  for (const auto& m : metrics) {
    if (m.find("name")->as_string() == "cham.fold.performed") {
      saw_counter = true;
      EXPECT_EQ(m.find("type")->as_string(), "counter");
      EXPECT_DOUBLE_EQ(m.find("value")->as_number(), 11.0);
      EXPECT_EQ(m.find("labels")->find("tool")->as_string(), "chameleon");
    }
  }
  EXPECT_TRUE(saw_counter);
}

TEST(Metrics, ExportIsDeterministicallySorted) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.set_counter("z", {}, 1);
  a.set_counter("a", {{"rank", "1"}}, 2);
  a.set_counter("a", {{"rank", "0"}}, 3);
  b.set_counter("a", {{"rank", "0"}}, 3);
  b.set_counter("z", {}, 1);
  b.set_counter("a", {{"rank", "1"}}, 2);
  EXPECT_EQ(a.to_json_string(), b.to_json_string());
}

TEST(Metrics, GlobalPointerDefaultsToNull) {
  EXPECT_EQ(metrics(), nullptr);
  MetricsRegistry reg;
  set_metrics(&reg);
  EXPECT_EQ(metrics(), &reg);
  set_metrics(nullptr);
  EXPECT_EQ(metrics(), nullptr);
}

}  // namespace
}  // namespace cham::obs
