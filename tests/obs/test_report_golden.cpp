// Golden-file test for `chamtrace report`: a fixed 16-rank LU run with
// epoch recording on must reproduce the committed cluster-evolution JSON
// byte-for-byte. The report carries no wall-clock fields, so the document
// is fully determined by the protocol — any drift in clustering, lead
// assignment, fold behaviour or report rendering shows up here.
//
// Regenerate after an *intentional* protocol or schema change with
//   CHAM_REGEN_GOLDEN=1 ctest -R ReportGolden
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include "core/chameleon.hpp"
#include "obs/report.hpp"
#include "obs/validate.hpp"
#include "sim/engine.hpp"
#include "support/json.hpp"
#include "workloads/workload.hpp"

#ifndef CHAM_TESTS_DATA_DIR
#error "CHAM_TESTS_DATA_DIR must point at tests/data"
#endif

namespace cham::core {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(CHAM_TESTS_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << "cannot write " << path;
  out << data;
}

/// Same setup as
/// `chamtrace report --workload lu --procs 16 --class A --steps 12 --freq 1`.
std::string render_lu16_report() {
  const workloads::WorkloadInfo* info = workloads::find_workload("lu");
  if (info == nullptr) ADD_FAILURE() << "lu workload missing";

  const int procs = 16;
  workloads::WorkloadParams params;
  params.cls = 'A';
  params.timesteps = 12;

  ChameleonConfig config;
  config.k = info->default_k;
  config.call_frequency = 1;
  config.record_epochs = true;

  sim::Engine engine({.nprocs = procs});
  trace::CallSiteRegistry stacks(procs);
  ChameleonTool tool(procs, &stacks, config);
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });

  support::json::Writer w(/*pretty=*/true);
  obs::render_json(build_report_input(tool, "lu"), w);
  return w.str() + "\n";
}

TEST(ReportGolden, Lu16EpochTableMatchesGoldenJson) {
  const std::string report = render_lu16_report();

  // Structural sanity regardless of golden state: parseable, right schema,
  // a real epoch history with cluster assignments for all 16 ranks.
  support::json::Value v;
  std::string error;
  ASSERT_TRUE(support::json::parse(report, &v, &error)) << error;
  EXPECT_EQ(v.find("schema")->as_string(), "chameleon.report.v1");
  EXPECT_DOUBLE_EQ(v.find("nranks")->as_number(), 16.0);
  const auto& epochs = v.find("epochs")->as_array();
  ASSERT_GE(epochs.size(), 3u);
  for (const auto& e : epochs)
    EXPECT_EQ(e.find("lead_of")->as_array().size(), 16u);

  const std::string path = golden_path("report_lu16.golden.json");
  if (std::getenv("CHAM_REGEN_GOLDEN") != nullptr) {
    write_file(path, report);
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::string golden = read_file(path);
  ASSERT_FALSE(golden.empty())
      << path << " missing — run with CHAM_REGEN_GOLDEN=1 to create it";
  EXPECT_EQ(report, golden) << "report drifted from golden JSON";
}

TEST(ReportGolden, ReportIsDeterministicAcrossRuns) {
  EXPECT_EQ(render_lu16_report(), render_lu16_report());
}

}  // namespace
}  // namespace cham::core
