#include "obs/validate.hpp"

#include <gtest/gtest.h>

namespace cham::obs {
namespace {

// --- timeline ---------------------------------------------------------------

TEST(ValidateTimeline, AcceptsMinimalDocument) {
  std::string error;
  EXPECT_TRUE(validate_timeline_json(R"({"traceEvents": []})", &error))
      << error;
  EXPECT_TRUE(validate_timeline_json(
      R"({"displayTimeUnit": "ms", "traceEvents": [
        {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
         "args": {"name": "scheduler"}},
        {"ph": "B", "ts": 0, "pid": 1, "tid": 1, "name": "a"},
        {"ph": "i", "ts": 1, "pid": 1, "tid": 1, "name": "x", "s": "t"},
        {"ph": "E", "ts": 2, "pid": 1, "tid": 1}
      ]})",
      &error))
      << error;
}

TEST(ValidateTimeline, RejectsNonJson) {
  std::string error;
  EXPECT_FALSE(validate_timeline_json("not json", &error));
  EXPECT_FALSE(error.empty());
}

TEST(ValidateTimeline, RejectsMissingTraceEvents) {
  std::string error;
  EXPECT_FALSE(validate_timeline_json(R"({"events": []})", &error));
}

TEST(ValidateTimeline, RejectsUnmatchedBegin) {
  std::string error;
  EXPECT_FALSE(validate_timeline_json(
      R"({"traceEvents": [{"ph": "B", "ts": 0, "pid": 1, "tid": 1,
                           "name": "a"}]})",
      &error));
  EXPECT_NE(error.find("unclosed"), std::string::npos);
}

TEST(ValidateTimeline, RejectsEndWithoutBegin) {
  std::string error;
  EXPECT_FALSE(validate_timeline_json(
      R"({"traceEvents": [{"ph": "E", "ts": 0, "pid": 1, "tid": 1}]})",
      &error));
}

TEST(ValidateTimeline, RejectsCrossTrackSpanClose) {
  // B on tid 1, E on tid 2: both tracks end up unbalanced.
  std::string error;
  EXPECT_FALSE(validate_timeline_json(
      R"({"traceEvents": [
        {"ph": "B", "ts": 0, "pid": 1, "tid": 1, "name": "a"},
        {"ph": "E", "ts": 1, "pid": 1, "tid": 2}
      ]})",
      &error));
}

TEST(ValidateTimeline, RejectsDecreasingTimestamps) {
  std::string error;
  EXPECT_FALSE(validate_timeline_json(
      R"({"traceEvents": [
        {"ph": "i", "ts": 5, "pid": 1, "tid": 1, "name": "a"},
        {"ph": "i", "ts": 4, "pid": 1, "tid": 1, "name": "b"}
      ]})",
      &error));
  EXPECT_NE(error.find("ts"), std::string::npos);
}

TEST(ValidateTimeline, RejectsUnknownPhase) {
  std::string error;
  EXPECT_FALSE(validate_timeline_json(
      R"({"traceEvents": [{"ph": "X", "ts": 0, "pid": 1, "tid": 1,
                           "name": "a"}]})",
      &error));
}

// --- metrics ----------------------------------------------------------------

TEST(ValidateMetrics, AcceptsWellFormedDocument) {
  std::string error;
  EXPECT_TRUE(validate_metrics_json(
      R"({"schema": "chameleon.metrics.v1", "metrics": [
        {"name": "c", "type": "counter", "labels": {"tool": "x"}, "value": 3},
        {"name": "g", "type": "gauge", "labels": {}, "value": 1.5},
        {"name": "h", "type": "histogram", "labels": {},
         "value": {"count": 2, "min": 0, "max": 1, "mean": 0.5, "total": 1,
                   "bins": [1, 1]}}
      ]})",
      &error))
      << error;
}

TEST(ValidateMetrics, RejectsWrongSchema) {
  std::string error;
  EXPECT_FALSE(validate_metrics_json(
      R"({"schema": "chameleon.metrics.v2", "metrics": []})", &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST(ValidateMetrics, RejectsMissingFields) {
  std::string error;
  EXPECT_FALSE(validate_metrics_json(
      R"({"schema": "chameleon.metrics.v1", "metrics": [
        {"name": "c", "type": "counter", "value": 3}
      ]})",
      &error));
}

TEST(ValidateMetrics, RejectsNonNumericCounterValue) {
  std::string error;
  EXPECT_FALSE(validate_metrics_json(
      R"({"schema": "chameleon.metrics.v1", "metrics": [
        {"name": "c", "type": "counter", "labels": {}, "value": "three"}
      ]})",
      &error));
  EXPECT_NE(error.find('c'), std::string::npos);
}

TEST(ValidateMetrics, RejectsUnknownType) {
  std::string error;
  EXPECT_FALSE(validate_metrics_json(
      R"({"schema": "chameleon.metrics.v1", "metrics": [
        {"name": "m", "type": "summary", "labels": {}, "value": 1}
      ]})",
      &error));
}

}  // namespace
}  // namespace cham::obs
