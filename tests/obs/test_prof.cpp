// ChamProf unit tests: timed lock acquisition, phase self-time
// attribution, the chameleon.prof.v1 export (validator + renderers),
// counter-track merging, and the Timeline streaming-flush mode.
#include "obs/prof/profiler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/prof/summary.hpp"
#include "obs/timeline.hpp"
#include "obs/validate.hpp"
#include "support/json.hpp"

namespace cham::obs::prof {
namespace {

support::json::Value parse_ok(const std::string& doc) {
  support::json::Value v;
  std::string error;
  EXPECT_TRUE(support::json::parse(doc, &v, &error)) << error;
  return v;
}

/// Installs a profiler for one test and guarantees removal.
class ProfilerScope {
 public:
  explicit ProfilerScope(Profiler* p) { set_profiler(p); }
  ~ProfilerScope() { set_profiler(nullptr); }
};

TEST(Prof, DisabledByDefault) {
  EXPECT_EQ(profiler(), nullptr);
  // Hooks must be safe no-ops without an installed profiler.
  std::mutex m;
  { const TimedLockGuard lock(m, LockClass::kMailbox); }
  { const PhaseScope phase(Phase::kFold); }
}

TEST(Prof, TimedLockGuardCountsAcquisitions) {
  Profiler prof;
  ProfilerScope scope(&prof);
  std::mutex m;
  for (int i = 0; i < 5; ++i) {
    const TimedLockGuard lock(m, LockClass::kInbox);
  }
  const LockStats& stats = prof.lock_stats(LockClass::kInbox);
  EXPECT_EQ(stats.acquisitions.load(), 5u);
  // Uncontended acquisitions take the try_lock fast path: no clock reads.
  EXPECT_EQ(stats.contended.load(), 0u);
  EXPECT_EQ(stats.wait_ns.load(), 0u);
}

TEST(Prof, ContendedAcquirePaysAndRecordsWait) {
  Profiler prof;
  ProfilerScope scope(&prof);
  std::mutex m;
  m.lock();
  std::thread waiter([&] {
    const TimedLockGuard lock(m, LockClass::kShardQueue);
  });
  // Hold the mutex long enough that the waiter reliably misses try_lock.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  m.unlock();
  waiter.join();
  const LockStats& stats = prof.lock_stats(LockClass::kShardQueue);
  EXPECT_EQ(stats.acquisitions.load(), 1u);
  EXPECT_EQ(stats.contended.load(), 1u);
  EXPECT_GT(stats.wait_ns.load(), 0u);
}

TEST(Prof, PhaseScopeAttributesSelfTime) {
  Profiler prof;
  ProfilerScope scope(&prof);
  prof.bind_shards(1);
  {
    const PhaseScope outer(Phase::kClustering);
    { const PhaseScope inner(Phase::kFold); }
  }
  const ShardSlot& slot = prof.slot(0);
  const auto at = [&](Phase p) {
    return slot.phase_seconds[static_cast<std::size_t>(p)];
  };
  EXPECT_GE(at(Phase::kClustering), 0.0);
  EXPECT_GT(at(Phase::kFold), 0.0);
  // The sampler tag is restored on exit.
  EXPECT_EQ(slot.cur_phase.load(), static_cast<std::uint8_t>(Phase::kIdle));
}

/// Busy-wait so host (wall) time visibly advances.
void spin_for(double seconds) {
  const double t0 = host_seconds();
  while (host_seconds() - t0 < seconds) {
  }
}

TEST(Prof, PhaseScopeChainIsFiberLocalAcrossDispatch) {
  Profiler prof;
  ProfilerScope scope(&prof);
  prof.bind_shards(1);
  const auto at = [&](Phase p) {
    return prof.slot(0).phase_seconds[static_cast<std::size_t>(p)];
  };
  // "Fiber A" opens a scope and blocks mid-scope: the scheduler parks its
  // chain at the dispatch boundary.
  auto a = std::make_unique<PhaseScope>(Phase::kClustering);
  PhaseScope* parked = PhaseScope::suspend();
  EXPECT_NE(parked, nullptr);
  // "Fiber B" dispatched on the same thread starts with an empty chain:
  // its scope must not chain onto A's parked scope, and its runtime lands
  // on its own phase.
  {
    const PhaseScope b(Phase::kFold);
    spin_for(2e-3);
  }
  EXPECT_GT(at(Phase::kFold), 1.5e-3);
  // Resume A and close its scope: the parked interval (B's run) must be
  // excluded from A's attribution.
  PhaseScope::resume(parked);
  a.reset();
  EXPECT_LT(at(Phase::kClustering), 1e-3);
  EXPECT_EQ(prof.slot(0).cur_phase.load(),
            static_cast<std::uint8_t>(Phase::kIdle));
}

TEST(Prof, NoteEpochBoundsTheSeries) {
  Profiler prof(ProfilerOptions{.sample_interval_us = 500,
                                .max_epoch_samples = 4});
  prof.bind_shards(2);
  for (std::uint64_t e = 1; e <= 10; ++e) prof.note_epoch(e, {1, 2});
  const auto doc = parse_ok(prof.to_json_string());
  const auto* epochs = doc.find("epochs");
  ASSERT_NE(epochs, nullptr);
  EXPECT_DOUBLE_EQ(epochs->find("planned")->as_number(), 10.0);
  EXPECT_DOUBLE_EQ(epochs->find("series_recorded")->as_number(), 4.0);
  EXPECT_DOUBLE_EQ(epochs->find("series_dropped")->as_number(), 6.0);
}

TEST(Prof, ExportValidatesAndRenders) {
  Profiler prof(ProfilerOptions{.sample_interval_us = 100});
  ProfilerScope scope(&prof);
  prof.bind_shards(2);
  prof.start_sampling();
  {
    std::mutex m;
    const TimedLockGuard lock(m, LockClass::kMailbox);
    const PhaseScope phase(Phase::kRadixMerge);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  prof.note_epoch(1, {3, 1});
  prof.stop_sampling();

  const std::string doc = prof.to_json_string();
  std::string error;
  EXPECT_TRUE(validate_prof_json(doc, &error)) << error;

  const auto v = parse_ok(doc);
  EXPECT_EQ(v.find("schema")->as_string(), "chameleon.prof.v1");
  EXPECT_EQ(v.find("shards")->as_array().size(), 2u);

  const std::string summary = render_profile_summary(v);
  EXPECT_NE(summary.find("shard"), std::string::npos);
  EXPECT_NE(summary.find("busiest locks"), std::string::npos);
  // Folded lines render (possibly empty if no tick landed mid-phase).
  (void)render_folded(v);
}

TEST(Prof, CounterTracksMergeIntoTimeline) {
  Profiler prof;
  prof.bind_shards(2);
  prof.note_epoch(1, {2, 3});
  prof.note_epoch(2, {1, 0});
  Timeline tl;
  tl.instant(Timeline::kSchedulerTid, "marker", "test");
  prof.export_counter_tracks(tl);
  const std::string doc = tl.to_json();
  std::string error;
  EXPECT_TRUE(validate_timeline_json(doc, &error)) << error;
  // Two epochs x (two shards + total).
  const auto v = parse_ok(doc);
  std::size_t counters = 0;
  for (const auto& ev : v.find("traceEvents")->as_array())
    if (ev.find("ph")->as_string() == "C") ++counters;
  EXPECT_EQ(counters, 6u);
}

TEST(Prof, WorkerShardBindingIsPerThread) {
  bind_worker_shard(7);
  EXPECT_EQ(worker_shard(), 7);
  std::thread other([] { EXPECT_EQ(worker_shard(), 0); });
  other.join();
  bind_worker_shard(0);
}

// --------------------------------------------------------------------------
// Timeline streaming flush
// --------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in), {}};
}

void emit_events(Timeline& tl) {
  tl.set_track_name(Timeline::rank_tid(0), "rank 0");
  for (int i = 0; i < 25; ++i) {
    tl.begin(Timeline::rank_tid(0), "op " + std::to_string(i), "test");
    tl.instant(Timeline::kSchedulerTid, "tick", "test");
    tl.end(Timeline::rank_tid(0));
  }
}

TEST(TimelineFlush, StreamedDocumentMatchesInMemoryModuloTimestamps) {
  const std::string path = "test_prof_flush.json";
  Timeline streamed;
  streamed.set_flush(path, 10);
  EXPECT_TRUE(streamed.flushing());
  emit_events(streamed);
  EXPECT_TRUE(streamed.finish_flush());

  Timeline buffered;
  emit_events(buffered);

  const std::string streamed_doc = slurp(path);
  const std::string buffered_doc = buffered.to_json();
  std::string error;
  EXPECT_TRUE(validate_timeline_json(streamed_doc, &error)) << error;
  EXPECT_TRUE(validate_timeline_json(buffered_doc, &error)) << error;

  // Same event set with the same metadata; the streamed file appends
  // metadata at the end (it can only be known once flushing finishes),
  // and only the timestamps (real clock reads) may differ between the
  // two instances — so compare sorted (ph, name) multisets.
  const auto flatten = [](const std::string& doc) {
    std::vector<std::string> out;
    support::json::Value v;
    std::string err;
    EXPECT_TRUE(support::json::parse(doc, &v, &err)) << err;
    for (const auto& ev : v.find("traceEvents")->as_array()) {
      std::string line = ev.find("ph")->as_string();
      // 'E' events carry no name.
      const auto* name = ev.find("name");
      line += '|' + (name != nullptr ? name->as_string() : std::string());
      out.push_back(std::move(line));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(flatten(streamed_doc), flatten(buffered_doc));
  EXPECT_EQ(streamed.event_count(), buffered.event_count());
  std::remove(path.c_str());
}

TEST(TimelineFlush, CounterEventsStreamToo) {
  const std::string path = "test_prof_flush_counters.json";
  Timeline tl;
  tl.set_flush(path, 2);
  Profiler prof;
  prof.bind_shards(1);
  for (std::uint64_t e = 1; e <= 5; ++e) prof.note_epoch(e, {1});
  prof.export_counter_tracks(tl);
  EXPECT_TRUE(tl.finish_flush());
  const std::string doc = slurp(path);
  std::string error;
  EXPECT_TRUE(validate_timeline_json(doc, &error)) << error;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cham::obs::prof
