#include "obs/report.hpp"

#include <gtest/gtest.h>

#include "obs/validate.hpp"
#include "support/json.hpp"

namespace cham::obs {
namespace {

EpochRecord epoch(std::uint64_t marker, std::string state, std::string action,
                  std::vector<int> leads, std::vector<int> lead_of) {
  EpochRecord e;
  e.marker = marker;
  e.state = std::move(state);
  e.action = std::move(action);
  e.callpaths = 1;
  e.clusters = leads.size();
  e.leads = std::move(leads);
  e.lead_of = std::move(lead_of);
  return e;
}

TEST(Churn, UnassignedRanksLeadThemselves) {
  // AT epoch (nobody assigned) -> C epoch where everyone follows rank 0:
  // ranks 1..3 change lead (0 keeps leading itself).
  const EpochRecord at = epoch(1, "AT", "none", {}, {-1, -1, -1, -1});
  const EpochRecord c = epoch(2, "C", "cluster", {0}, {0, 0, 0, 0});
  EXPECT_EQ(churn(at, c), 3);
}

TEST(Churn, NoChangeMeansZero) {
  const EpochRecord a = epoch(1, "L", "none", {0, 2}, {0, 0, 2, 2});
  const EpochRecord b = epoch(2, "L", "none", {0, 2}, {0, 0, 2, 2});
  EXPECT_EQ(churn(a, b), 0);
}

TEST(Churn, LeadFailoverCountsAffectedRanks) {
  // Lead 2's cluster fails over to lead 3: ranks 2 and 3 both change.
  const EpochRecord a = epoch(1, "L", "none", {0, 2}, {0, 0, 2, 2});
  const EpochRecord b = epoch(2, "L", "none", {0, 3}, {0, 0, 3, 3});
  EXPECT_EQ(churn(a, b), 2);
}

TEST(Churn, HandlesMismatchedWorldSizes) {
  const EpochRecord small = epoch(1, "C", "cluster", {0}, {0, 0});
  const EpochRecord big = epoch(2, "C", "cluster", {0}, {0, 0, 0, 0});
  // Ranks 2 and 3 go from self-led (absent) to led by 0.
  EXPECT_EQ(churn(small, big), 2);
}

ReportInput sample_input() {
  ReportInput in;
  in.workload = "toy";
  in.nranks = 4;
  in.epochs.push_back(epoch(1, "AT", "none", {}, {-1, -1, -1, -1}));
  in.epochs.push_back(epoch(2, "C", "cluster", {0, 2}, {0, 0, 2, 2}));
  in.epochs.push_back(epoch(3, "L", "none", {0, 2}, {0, 0, 2, 2}));
  StateMemoryRow row;
  row.state = "AT";
  row.ranks = 4;
  row.calls = 8;
  row.bytes_total = 400;
  row.bytes_min = 50;
  row.bytes_max = 150;
  in.memory.push_back(row);
  return in;
}

TEST(Report, TextRenderingShowsEpochAndMemoryTables) {
  const std::string text = render_text(sample_input());
  EXPECT_NE(text.find("cluster evolution: toy (4 ranks, 3 epochs)"),
            std::string::npos);
  EXPECT_NE(text.find("per-marker epochs"), std::string::npos);
  EXPECT_NE(text.find("trace memory by state"), std::string::npos);
  EXPECT_NE(text.find("cluster"), std::string::npos);
  // The AT epoch has no leads yet — rendered as "-".
  EXPECT_NE(text.find('-'), std::string::npos);
}

TEST(Report, CsvRenderingIsOneLinePerEpoch) {
  const std::string csv = render_csv(sample_input());
  EXPECT_EQ(csv,
            "epoch,marker,state,action,callpaths,clusters,churn,leads\n"
            "1,1,AT,none,1,0,0,\"\"\n"
            "2,2,C,cluster,1,2,2,\"0 2\"\n"
            "3,3,L,none,1,2,0,\"0 2\"\n");
}

TEST(Report, JsonRenderingParsesAndCarriesChurn) {
  support::json::Writer w;
  render_json(sample_input(), w);

  support::json::Value v;
  std::string error;
  ASSERT_TRUE(support::json::parse(w.str(), &v, &error)) << error;
  EXPECT_EQ(v.find("schema")->as_string(), "chameleon.report.v1");
  EXPECT_EQ(v.find("workload")->as_string(), "toy");
  const auto& epochs = v.find("epochs")->as_array();
  ASSERT_EQ(epochs.size(), 3u);
  EXPECT_DOUBLE_EQ(epochs[0].find("churn")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(epochs[1].find("churn")->as_number(), 2.0);
  EXPECT_EQ(epochs[1].find("leads")->as_array().size(), 2u);
  EXPECT_EQ(epochs[1].find("lead_of")->as_array().size(), 4u);
  const auto& memory = v.find("memory_by_state")->as_array();
  ASSERT_EQ(memory.size(), 1u);
  EXPECT_DOUBLE_EQ(memory[0].find("bytes_total")->as_number(), 400.0);
}

}  // namespace
}  // namespace cham::obs
