#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include "obs/validate.hpp"
#include "support/json.hpp"

namespace cham::obs {
namespace {

support::json::Value parse_ok(const std::string& doc) {
  support::json::Value v;
  std::string error;
  EXPECT_TRUE(support::json::parse(doc, &v, &error)) << error;
  return v;
}

TEST(Timeline, MatchedSpansAndInstants) {
  Timeline tl;
  tl.begin(Timeline::rank_tid(0), "MPI_Send", "mpi",
           {arg_int("peer", 1), arg_int("bytes", 128)});
  tl.instant(Timeline::rank_tid(0), "fault.drop", "fault");
  tl.end(Timeline::rank_tid(0));
  EXPECT_EQ(tl.event_count(), 3u);
  EXPECT_EQ(tl.open_spans(), 0u);

  const std::string doc = tl.to_json();
  std::string error;
  EXPECT_TRUE(validate_timeline_json(doc, &error)) << error;

  const auto v = parse_ok(doc);
  const auto& events = v.find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].find("ph")->as_string(), "B");
  EXPECT_EQ(events[0].find("name")->as_string(), "MPI_Send");
  EXPECT_DOUBLE_EQ(events[0].find("args")->find("peer")->as_number(), 1.0);
  EXPECT_EQ(events[1].find("ph")->as_string(), "i");
  EXPECT_EQ(events[2].find("ph")->as_string(), "E");
}

TEST(Timeline, OpenSpansAreClosedAtRender) {
  // A crashed rank leaves its MPI-call span open; the document must still
  // come out with matched B/E pairs.
  Timeline tl;
  tl.begin(Timeline::rank_tid(3), "MPI_Recv", "mpi");
  tl.begin(Timeline::rank_tid(3), "inner", "trace");
  tl.begin(Timeline::rank_tid(7), "MPI_Barrier", "mpi");
  EXPECT_EQ(tl.open_spans(), 3u);

  const std::string doc = tl.to_json();
  std::string error;
  EXPECT_TRUE(validate_timeline_json(doc, &error)) << error;
  EXPECT_EQ(tl.open_spans(), 0u);
}

TEST(Timeline, EndWithoutBeginIsIgnored) {
  Timeline tl;
  tl.end(Timeline::rank_tid(0));
  EXPECT_EQ(tl.event_count(), 0u);
  std::string error;
  EXPECT_TRUE(validate_timeline_json(tl.to_json(), &error)) << error;
}

TEST(Timeline, TrackNamesBecomeThreadMetadata) {
  Timeline tl;
  tl.set_track_name(Timeline::kSchedulerTid, "scheduler");
  tl.set_track_name(Timeline::rank_tid(0), "rank 0");
  tl.instant(Timeline::rank_tid(0), "x", "test");

  const auto v = parse_ok(tl.to_json());
  const auto& events = v.find("traceEvents")->as_array();
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events[0].find("ph")->as_string(), "M");
  EXPECT_EQ(events[0].find("name")->as_string(), "thread_name");
  EXPECT_EQ(events[0].find("args")->find("name")->as_string(), "scheduler");
}

TEST(Timeline, TimestampsAreMonotonicPerTrack) {
  Timeline tl;
  for (int i = 0; i < 100; ++i) {
    tl.begin(1, "s", "t");
    tl.end(1);
  }
  const auto v = parse_ok(tl.to_json());
  double prev = -1.0;
  for (const auto& e : v.find("traceEvents")->as_array()) {
    if (e.find("ph")->as_string() == "M") continue;
    const double ts = e.find("ts")->as_number();
    EXPECT_GE(ts, prev);
    prev = ts;
  }
}

TEST(Timeline, RankTidLayout) {
  EXPECT_EQ(Timeline::kSchedulerTid, 0);
  EXPECT_EQ(Timeline::rank_tid(0), 1);
  EXPECT_EQ(Timeline::rank_tid(15), 16);
}

TEST(TimelineSpan, NoOpWhenGlobalDisabled) {
  ASSERT_EQ(timeline(), nullptr);
  { Span span(1, "work", "test"); }  // must not crash or allocate a timeline
  EXPECT_EQ(timeline(), nullptr);
}

TEST(TimelineSpan, RecordsThroughGlobal) {
  Timeline tl;
  set_timeline(&tl);
  {
    Span outer(1, "outer", "test");
    Span inner(1, "inner", "test", {arg_str("k", "v")});
  }
  set_timeline(nullptr);
  EXPECT_EQ(tl.event_count(), 4u);
  EXPECT_EQ(tl.open_spans(), 0u);
}

TEST(TimelineArgs, HelpersRenderJsonTokens) {
  EXPECT_EQ(arg_str("k", "a\"b").token, "\"a\\\"b\"");
  EXPECT_EQ(arg_int("k", -3).token, "-3");
  EXPECT_EQ(arg_num("k", 0.5).token, "0.5");
}

}  // namespace
}  // namespace cham::obs
