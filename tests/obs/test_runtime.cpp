// End-to-end ChamScope: run a real workload on the simulator with the
// timeline + metrics globals installed and check what the runtime recorded.
#include <gtest/gtest.h>

#include <string>

#include "core/chameleon.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/validate.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/mpi.hpp"
#include "support/json.hpp"
#include "trace/perf.hpp"

namespace cham::core {
namespace {

using trace::CallScope;
using trace::CallSiteRegistry;
using trace::site_id;

void steady_phase(sim::Mpi& mpi, CallSiteRegistry& stacks, int steps) {
  const int p = mpi.size();
  for (int step = 0; step < steps; ++step) {
    CallScope scope(stacks.stack(mpi.rank()), site_id("phase.steady"));
    const sim::Rank next = (mpi.rank() + 1) % p;
    const sim::Rank prev = (mpi.rank() + p - 1) % p;
    mpi.compute(0.001);
    mpi.isend(next, 128, 1);
    mpi.recv(prev, 128, 1);
    mpi.allreduce(8);
    mpi.marker();
  }
}

class TimelineGuard {
 public:
  explicit TimelineGuard(obs::Timeline* tl) { obs::set_timeline(tl); }
  ~TimelineGuard() { obs::set_timeline(nullptr); }
};

/// Count events whose rendered JSON name matches (cheap structural probe:
/// parse the document once, walk traceEvents).
std::size_t count_named(const support::json::Value& doc,
                        const std::string& name) {
  std::size_t n = 0;
  for (const auto& e : doc.find("traceEvents")->as_array()) {
    const auto* ev_name = e.find("name");
    if (ev_name != nullptr && ev_name->is_string() &&
        ev_name->as_string() == name)
      ++n;
  }
  return n;
}

TEST(ChamScopeRuntime, TimelineCapturesSchedulerMpiAndProtocol) {
  obs::Timeline tl;
  TimelineGuard guard(&tl);

  sim::Engine engine({.nprocs = 8});
  CallSiteRegistry stacks(8);
  ChameleonTool tool(8, &stacks, {.k = 3});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, stacks, 6); });

  ASSERT_GT(tl.event_count(), 0u);
  EXPECT_EQ(tl.open_spans(), 0u);  // every fiber ran to completion

  const std::string json = tl.to_json();
  std::string error;
  ASSERT_TRUE(obs::validate_timeline_json(json, &error)) << error;

  support::json::Value doc;
  ASSERT_TRUE(support::json::parse(json, &doc, &error)) << error;
  // Fiber dispatch slices on the scheduler track.
  EXPECT_GT(count_named(doc, "rank 0"), 0u);
  // MPI call spans on the rank tracks.
  EXPECT_GT(count_named(doc, "MPI_Allreduce"), 0u);
  // Protocol work: one clustering pass, lead merges, state instants.
  EXPECT_GT(count_named(doc, "clustering"), 0u);
  EXPECT_GT(count_named(doc, "lead_merge"), 0u);
  EXPECT_GT(count_named(doc, "state.C"), 0u);
  EXPECT_GT(count_named(doc, "state.L"), 0u);
}

TEST(ChamScopeRuntime, CrashedRankLeavesValidTimeline) {
  obs::Timeline tl;
  TimelineGuard guard(&tl);

  sim::FaultInjector injector(
      sim::FaultPlan::parse("crash rank=3 marker=2", 0));
  sim::Engine engine({.nprocs = 8});
  engine.set_fault_injector(&injector);
  CallSiteRegistry stacks(8);
  ChameleonTool tool(8, &stacks, {.k = 3});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, stacks, 6); });

  const std::string json = tl.to_json();
  std::string error;
  EXPECT_TRUE(obs::validate_timeline_json(json, &error)) << error;

  support::json::Value doc;
  ASSERT_TRUE(support::json::parse(json, &doc, &error)) << error;
  EXPECT_EQ(count_named(doc, "fault.crash"), 1u);
}

TEST(ChamScopeRuntime, PerfCountersBridgeIntoRegistry) {
  sim::Engine engine({.nprocs = 8});
  CallSiteRegistry stacks(8);
  ChameleonTool tool(8, &stacks, {.k = 3});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, stacks, 6); });

  obs::MetricsRegistry reg;
  trace::export_to_metrics(tool.perf_counters(), reg, "chameleon");
  EXPECT_GT(reg.size(), 0u);
  // Fold counters carry the tool label; phase seconds appear per phase.
  EXPECT_GT(
      reg.counter("cham.fold.windows_tested", {{"tool", "chameleon"}}), 0u);
  EXPECT_GE(reg.gauge("cham.phase.seconds",
                      {{"tool", "chameleon"}, {"phase", "clustering"}}),
            0.0);
  std::string error;
  EXPECT_TRUE(obs::validate_metrics_json(reg.to_json_string(), &error))
      << error;
}

TEST(ChamScopeRuntime, EpochRecordingFollowsConfigFlag) {
  sim::Engine engine({.nprocs = 8});
  CallSiteRegistry stacks(8);
  ChameleonTool off(8, &stacks, {.k = 3});
  engine.set_tool(&off);
  engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, stacks, 4); });
  EXPECT_TRUE(off.epochs().empty());

  sim::Engine engine2({.nprocs = 8});
  CallSiteRegistry stacks2(8);
  ChameleonTool on(8, &stacks2, {.k = 3, .record_epochs = true});
  engine2.set_tool(&on);
  engine2.run([&](sim::Mpi& mpi) { steady_phase(mpi, stacks2, 4); });
  // One record per processed marker plus the finalize epoch.
  ASSERT_EQ(on.epochs().size(), 5u);
  EXPECT_EQ(on.epochs().front().state, "AT");
  EXPECT_EQ(on.epochs()[1].state, "C");
  EXPECT_EQ(on.epochs()[1].action, "cluster");
  EXPECT_EQ(on.epochs().back().state, "F");
  for (const auto& e : on.epochs())
    EXPECT_EQ(e.lead_of.size(), 8u);
}

TEST(ChamScopeRuntime, DisabledObservabilityRecordsNothing) {
  ASSERT_EQ(obs::timeline(), nullptr);
  ASSERT_EQ(obs::metrics(), nullptr);
  sim::Engine engine({.nprocs = 8});
  CallSiteRegistry stacks(8);
  ChameleonTool tool(8, &stacks, {.k = 3});
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { steady_phase(mpi, stacks, 4); });
  // Nothing to assert on the timeline (there is none) — the test is that
  // the run completes and the protocol counters still work.
  EXPECT_EQ(tool.marker_calls_processed(), 4u);
}

}  // namespace
}  // namespace cham::core
