// ChamScope sink thread-safety stress: N threads hammer one
// MetricsRegistry and one Timeline through the same TimedLockGuard-
// protected entry points the engine uses, with a live Profiler installed
// so the contended lock path and the sampler run concurrently too. The
// tools/check.sh TSan leg runs this binary (label "engine") under
// ThreadSanitizer; the assertions prove the merged output is exact and
// deterministic, not just crash-free.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prof/profiler.hpp"
#include "obs/timeline.hpp"
#include "obs/validate.hpp"

namespace cham::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 500;

void hammer_metrics(MetricsRegistry& reg) {
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      const Labels labels{{"thread", std::to_string(t)}};
      for (int i = 0; i < kOpsPerThread; ++i) {
        reg.add_counter("stress.total", {}, 1);
        reg.add_counter("stress.per_thread", labels, 1);
        reg.set_gauge("stress.last", labels, static_cast<double>(i));
        // Exactly-representable values keep the histogram sum independent
        // of the cross-thread interleaving order, so two hammered
        // registries render byte-identical JSON.
        reg.record("stress.latency", {}, 0.25 * (i % 7));
      }
    });
  }
  for (auto& w : workers) w.join();
}

TEST(ObsConcurrent, MetricsRegistryMergesExactlyUnderContention) {
  prof::Profiler prof;
  prof::set_profiler(&prof);
  prof.start_sampling();

  MetricsRegistry reg;
  hammer_metrics(reg);

  prof::set_profiler(nullptr);
  prof.stop_sampling();

  EXPECT_EQ(reg.counter("stress.total", {}),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("stress.per_thread",
                          {{"thread", std::to_string(t)}}),
              static_cast<std::uint64_t>(kOpsPerThread));
  }
  const support::Histogram* h = reg.histogram("stress.latency", {});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);

  // Every profiled sink acquisition was tallied (the registry mutex is
  // LockClass::kMetricsSink; 4 guarded calls per op, plus to_json below
  // takes it once more per render).
  EXPECT_GE(prof.lock_stats(prof::LockClass::kMetricsSink).acquisitions.load(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread * 4);

  std::string error;
  EXPECT_TRUE(validate_metrics_json(reg.to_json_string(), &error)) << error;
}

TEST(ObsConcurrent, MetricsJsonIsDeterministicAcrossRuns) {
  // Two registries hammered by independently interleaved thread pools must
  // render byte-identical documents: the registry orders output by
  // (name, labels), never by arrival.
  MetricsRegistry a;
  MetricsRegistry b;
  hammer_metrics(a);
  hammer_metrics(b);
  EXPECT_EQ(a.to_json_string(), b.to_json_string());
}

TEST(ObsConcurrent, TimelineAbsorbsParallelWritersPerTrack) {
  prof::Profiler prof;
  prof::set_profiler(&prof);

  Timeline tl;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tl, t] {
      const int tid = Timeline::rank_tid(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        tl.begin(tid, "op", "stress");
        tl.end(tid);
      }
    });
  }
  for (auto& w : workers) w.join();
  prof::set_profiler(nullptr);

  EXPECT_EQ(tl.event_count(),
            static_cast<std::size_t>(kThreads) * kOpsPerThread * 2);
  EXPECT_EQ(tl.open_spans(), 0u);
  EXPECT_GT(prof.lock_stats(prof::LockClass::kTimelineSink).acquisitions.load(),
            0u);
  std::string error;
  EXPECT_TRUE(validate_timeline_json(tl.to_json(), &error)) << error;
}

}  // namespace
}  // namespace cham::obs
