#include "cluster/clusterset.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cham::cluster {
namespace {

RankSignature sig(std::uint64_t callpath, std::uint64_t src,
                  std::uint64_t dest = 0) {
  return RankSignature{callpath, src, dest};
}

TEST(ClusterSet, LeafIsSingleton) {
  const ClusterSet set = ClusterSet::leaf(5, sig(0xCAFE, 42));
  EXPECT_EQ(set.num_callpaths(), 1u);
  EXPECT_EQ(set.total_clusters(), 1u);
  EXPECT_EQ(set.total_members(), 1u);
  const auto* entry = set.cluster_of(5);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->lead, 5);
  EXPECT_EQ(set.cluster_of(4), nullptr);
}

TEST(ClusterSet, AbsorbConcatenatesPerCallpath) {
  ClusterSet a = ClusterSet::leaf(0, sig(1, 10));
  a.absorb(ClusterSet::leaf(1, sig(1, 20)));
  a.absorb(ClusterSet::leaf(2, sig(2, 30)));
  EXPECT_EQ(a.num_callpaths(), 2u);
  EXPECT_EQ(a.total_clusters(), 3u);
  EXPECT_EQ(a.total_members(), 3u);
}

TEST(ClusterSet, ShrinkRespectsBudgetAndKeepsAllMembers) {
  ClusterSet set;
  for (int r = 0; r < 16; ++r)
    set.absorb(ClusterSet::leaf(r, sig(0x1, static_cast<std::uint64_t>(r * 100))));
  const std::size_t total = set.shrink(3, SelectPolicy::kFarthest);
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(set.total_clusters(), 3u);
  // No rank may be lost: dropped clusters merge into survivors.
  EXPECT_EQ(set.total_members(), 16u);
  for (int r = 0; r < 16; ++r) EXPECT_NE(set.cluster_of(r), nullptr);
}

TEST(ClusterSet, ShrinkKeepsOnePerCallpathMinimum) {
  // 5 call paths but budget 3: dynamic K grows to one per call path so no
  // event class loses its representative.
  ClusterSet set;
  for (int cp = 0; cp < 5; ++cp)
    for (int r = 0; r < 4; ++r)
      set.absorb(ClusterSet::leaf(cp * 4 + r,
                                  sig(static_cast<std::uint64_t>(cp + 1),
                                      static_cast<std::uint64_t>(r))));
  const std::size_t total = set.shrink(3, SelectPolicy::kFarthest);
  EXPECT_EQ(set.num_callpaths(), 5u);
  EXPECT_EQ(total, 5u);  // one lead per call path
  EXPECT_EQ(set.total_members(), 20u);
}

TEST(ClusterSet, ShrinkSplitsBudgetAcrossCallpaths) {
  // 2 call paths, budget 9 -> up to 4 clusters each (9/2 = 4).
  ClusterSet set;
  for (int r = 0; r < 10; ++r)
    set.absorb(ClusterSet::leaf(r, sig(1, static_cast<std::uint64_t>(r * 50))));
  for (int r = 10; r < 20; ++r)
    set.absorb(ClusterSet::leaf(r, sig(2, static_cast<std::uint64_t>(r * 50))));
  set.shrink(9, SelectPolicy::kFarthest);
  for (const auto& [callpath, entries] : set.groups()) {
    EXPECT_LE(entries.size(), 4u);
    EXPECT_GE(entries.size(), 1u);
  }
  EXPECT_EQ(set.total_members(), 20u);
}

TEST(ClusterSet, LeadsSortedUnique) {
  ClusterSet set;
  set.absorb(ClusterSet::leaf(9, sig(1, 0)));
  set.absorb(ClusterSet::leaf(3, sig(2, 0)));
  set.absorb(ClusterSet::leaf(7, sig(1, 1000)));
  const auto leads = set.leads();
  const std::vector<sim::Rank> expected = {3, 7, 9};
  EXPECT_EQ(leads, expected);
}

TEST(ClusterSet, EncodeDecodeRoundTrip) {
  ClusterSet set;
  for (int r = 0; r < 12; ++r)
    set.absorb(ClusterSet::leaf(
        r, sig(static_cast<std::uint64_t>(r % 3), static_cast<std::uint64_t>(r * 11),
               static_cast<std::uint64_t>(r * 7))));
  set.shrink(6, SelectPolicy::kFarthest);
  const auto bytes = set.encode();
  const ClusterSet decoded = ClusterSet::decode(bytes);
  EXPECT_EQ(decoded, set);
}

TEST(ClusterSet, HierarchicalMergeMatchesFlatClustering) {
  // Tree-merging leaf sets (with intermediate shrinks) must still cover all
  // ranks and respect the budget at the root — the invariant Algorithm 3
  // depends on regardless of merge order.
  const int p = 32;
  const std::size_t k = 4;
  std::vector<ClusterSet> level;
  for (int r = 0; r < p; ++r)
    level.push_back(ClusterSet::leaf(
        r, sig(0x1, static_cast<std::uint64_t>((r % 4) * 1000 + r))));
  while (level.size() > 1) {
    std::vector<ClusterSet> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      ClusterSet merged = std::move(level[i]);
      merged.absorb(level[i + 1]);
      merged.shrink(k, SelectPolicy::kFarthest);
      next.push_back(std::move(merged));
    }
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  const ClusterSet& root = level[0];
  EXPECT_LE(root.total_clusters(), k);
  EXPECT_EQ(root.total_members(), static_cast<std::size_t>(p));
  EXPECT_EQ(root.leads().size(), root.total_clusters());
}

TEST(ClusterSet, GarbageDecodeRejected) {
  std::vector<std::uint8_t> garbage = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_THROW(ClusterSet::decode(garbage), trace::DecodeError);
}

}  // namespace
}  // namespace cham::cluster
