#include "cluster/select.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace cham::cluster {
namespace {

RankSignature sig(std::uint64_t src, std::uint64_t dest = 0) {
  return RankSignature{0x1, src, dest};
}

class SelectPolicies : public ::testing::TestWithParam<SelectPolicy> {};

INSTANTIATE_TEST_SUITE_P(AllPolicies, SelectPolicies,
                         ::testing::Values(SelectPolicy::kFarthest,
                                           SelectPolicy::kMedoid,
                                           SelectPolicy::kRandom),
                         [](const auto& info) {
                           switch (info.param) {
                             case SelectPolicy::kFarthest: return "Farthest";
                             case SelectPolicy::kMedoid: return "Medoid";
                             case SelectPolicy::kRandom: return "Random";
                           }
                           return "?";
                         });

TEST_P(SelectPolicies, ReturnsExactlyKDistinctIndices) {
  std::vector<RankSignature> points;
  for (int i = 0; i < 20; ++i) points.push_back(sig(static_cast<std::uint64_t>(i * 7)));
  for (std::size_t k : {1u, 2u, 5u, 19u}) {
    const auto picked = find_top_k(points, k, GetParam(), 42);
    EXPECT_EQ(picked.size(), k);
    std::set<std::size_t> unique(picked.begin(), picked.end());
    EXPECT_EQ(unique.size(), k);
    for (std::size_t idx : picked) EXPECT_LT(idx, points.size());
  }
}

TEST_P(SelectPolicies, KAtLeastNReturnsEveryone) {
  std::vector<RankSignature> points = {sig(1), sig(2), sig(3)};
  const auto picked = find_top_k(points, 10, GetParam(), 1);
  EXPECT_EQ(picked.size(), 3u);
}

TEST_P(SelectPolicies, DeterministicAcrossCalls) {
  std::vector<RankSignature> points;
  for (int i = 0; i < 30; ++i)
    points.push_back(sig(static_cast<std::uint64_t>(i * i), static_cast<std::uint64_t>(i)));
  const auto a = find_top_k(points, 5, GetParam(), 7);
  const auto b = find_top_k(points, 5, GetParam(), 7);
  EXPECT_EQ(a, b);
}

TEST(KFarthest, SpreadsAcrossWellSeparatedGroups) {
  // Three tight groups far apart: k=3 must pick one from each.
  std::vector<RankSignature> points;
  for (std::uint64_t base : {0ull, 1000000ull, 2000000ull}) {
    for (int i = 0; i < 5; ++i) points.push_back(sig(base + static_cast<std::uint64_t>(i)));
  }
  const auto picked = find_top_k(points, 3, SelectPolicy::kFarthest);
  std::set<std::uint64_t> groups;
  for (std::size_t idx : picked) groups.insert(points[idx].src / 1000000);
  EXPECT_EQ(groups.size(), 3u);
}

TEST(KMedoid, PicksCentersOfTightGroups) {
  // Two groups; the medoid of each is its middle point.
  std::vector<RankSignature> points = {
      sig(10), sig(11), sig(12),          // group A, center idx 1
      sig(1000), sig(1001), sig(1002)};   // group B, center idx 4
  const auto picked = find_top_k(points, 2, SelectPolicy::kMedoid);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0], 1u);
  EXPECT_EQ(picked[1], 4u);
}

TEST(KRandom, SeedChangesSelection) {
  std::vector<RankSignature> points;
  for (int i = 0; i < 50; ++i) points.push_back(sig(static_cast<std::uint64_t>(i)));
  const auto a = find_top_k(points, 5, SelectPolicy::kRandom, 1);
  const auto b = find_top_k(points, 5, SelectPolicy::kRandom, 2);
  EXPECT_NE(a, b);  // overwhelmingly likely with 50 choose 5
}

TEST(NearestPick, FindsClosest) {
  std::vector<RankSignature> points = {sig(0), sig(100), sig(200)};
  const std::vector<std::size_t> picked = {0, 2};
  EXPECT_EQ(nearest_pick(points, picked, sig(30)), 0u);
  EXPECT_EQ(nearest_pick(points, picked, sig(180)), 1u);
}

TEST(FindTopK, SinglePointSingleK) {
  std::vector<RankSignature> points = {sig(5)};
  const auto picked = find_top_k(points, 1, SelectPolicy::kFarthest);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], 0u);
}

TEST(FindTopK, IdenticalPointsStillPickK) {
  std::vector<RankSignature> points(10, sig(7));
  const auto picked = find_top_k(points, 3, SelectPolicy::kFarthest);
  EXPECT_EQ(picked.size(), 3u);
}

TEST(PolicyName, AllNamed) {
  EXPECT_STREQ(policy_name(SelectPolicy::kFarthest), "k-farthest");
  EXPECT_STREQ(policy_name(SelectPolicy::kMedoid), "k-medoid");
  EXPECT_STREQ(policy_name(SelectPolicy::kRandom), "k-random");
}

}  // namespace
}  // namespace cham::cluster
