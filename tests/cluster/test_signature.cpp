#include "cluster/signature.hpp"

#include <gtest/gtest.h>

namespace cham::cluster {
namespace {

trace::EventRecord ev(std::uint64_t stack, std::int32_t dest_off = 1,
                      bool with_src = false) {
  trace::EventRecord record;
  record.op = sim::Op::kSend;
  record.stack_sig = stack;
  record.dest = trace::Endpoint{trace::Endpoint::Kind::kRelative, dest_off};
  if (with_src)
    record.src = trace::Endpoint{trace::Endpoint::Kind::kRelative, -dest_off};
  return record;
}

TEST(IntervalSignature, EmptyIsZeroCallpath) {
  IntervalSignature sig;
  EXPECT_TRUE(sig.empty());
  EXPECT_EQ(sig.current().callpath, 0u);
}

TEST(IntervalSignature, RepeatedEventsCountOnce) {
  // Call-Path is over PRSD-compressed (distinct) events: a loop of 1000
  // identical sends contributes one term — and crucially cannot XOR-cancel.
  IntervalSignature once, thousand;
  once.observe(ev(0xAB));
  for (int i = 0; i < 1000; ++i) thousand.observe(ev(0xAB));
  EXPECT_EQ(once.current().callpath, thousand.current().callpath);
  EXPECT_EQ(thousand.distinct_events(), 1u);
}

TEST(IntervalSignature, OrderSensitiveViaSequenceMultiplier) {
  IntervalSignature ab, ba;
  ab.observe(ev(0xA));
  ab.observe(ev(0xB));
  ba.observe(ev(0xB));
  ba.observe(ev(0xA));
  // 1*A ^ 2*B != 1*B ^ 2*A in general.
  EXPECT_NE(ab.current().callpath, ba.current().callpath);
}

TEST(IntervalSignature, PermutationsCannotCancel) {
  // With plain XOR, {A,B} vs {B,A} would be identical and {A,A} would
  // vanish; the (seq mod 10)+1 multiplier prevents both degeneracies.
  IntervalSignature sig;
  sig.observe(ev(0xA));
  sig.observe(ev(0xB));
  EXPECT_NE(sig.current().callpath, 0u);
}

TEST(IntervalSignature, IdenticalStreamsAgreeAcrossRanks) {
  // The collective vote only works if ranks with the same behaviour compute
  // bit-identical signatures.
  IntervalSignature a, b;
  for (int i = 0; i < 50; ++i) {
    a.observe(ev(0x1, +1, true));
    a.observe(ev(0x2, -1));
    b.observe(ev(0x1, +1, true));
    b.observe(ev(0x2, -1));
  }
  EXPECT_EQ(a.current(), b.current());
}

TEST(IntervalSignature, SrcDestReflectEndpointGeometry) {
  // A rank that sends +1 and a rank that sends -1 must differ in DEST.
  IntervalSignature right, left;
  right.observe(ev(0x1, +1));
  left.observe(ev(0x1, -1));
  EXPECT_EQ(right.current().callpath, left.current().callpath);
  EXPECT_NE(right.current().dest, left.current().dest);
}

TEST(IntervalSignature, ResetStartsFresh) {
  IntervalSignature sig;
  sig.observe(ev(0x9));
  const auto before = sig.current();
  sig.reset();
  EXPECT_TRUE(sig.empty());
  sig.observe(ev(0x9));
  EXPECT_EQ(sig.current(), before);  // same interval contents -> same triple
}

TEST(IntervalSignature, NewCallSiteChangesCallpath) {
  IntervalSignature sig;
  sig.observe(ev(0x1));
  const auto phase1 = sig.current().callpath;
  sig.observe(ev(0x2));
  EXPECT_NE(sig.current().callpath, phase1);
}

TEST(SignatureDistance, ZeroForIdentical) {
  RankSignature a{1, 100, 200};
  EXPECT_EQ(signature_distance(a, a), 0u);
}

TEST(SignatureDistance, SymmetricL1) {
  RankSignature a{1, 100, 200};
  RankSignature b{1, 150, 180};
  EXPECT_EQ(signature_distance(a, b), 70u);
  EXPECT_EQ(signature_distance(b, a), 70u);
}

TEST(SignatureDistance, SaturatesInsteadOfWrapping) {
  RankSignature a{0, 0, 0};
  RankSignature b{0, ~0ull, ~0ull};
  EXPECT_EQ(signature_distance(a, b), ~0ull);
}

}  // namespace
}  // namespace cham::cluster
