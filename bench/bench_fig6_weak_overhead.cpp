// Figure 6: weak-scaling execution overhead — LU and Sweep3D.
//
// The per-rank problem size stays fixed as P grows. Expected shape
// (Observation 4): Chameleon 1-3 orders of magnitude below ScalaTrace.
#include <cstdio>

#include "harness/experiment.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace cham;
  using bench::RunConfig;
  using bench::ToolKind;

  struct Bench {
    const char* workload;
    int paper_steps;
    int freq;
    std::size_t k;
  };
  const Bench benches[] = {{"luw", 250, 25, 9}, {"sweep3d", 10, 1, 9}};

  support::Table table("Figure 6: weak-scaling aggregated overhead [secs]");
  table.header({"Pgm", "P", "APP agg", "Chameleon", "ScalaTrace",
                "ST/CH ratio", "CH merges", "ST merges"});
  support::CsvWriter csv(
      {"workload", "p", "app_vtime", "chameleon", "scalatrace", "ratio", "ch_merges", "st_merges"});

  for (const Bench& bench : benches) {
    for (int p : bench::strong_scaling_procs()) {
      RunConfig config;
      config.workload = bench.workload;
      config.nprocs = p;
      config.params.cls = 'D';
      config.params.timesteps = bench::scaled_steps(bench.paper_steps);
      config.params.weak = true;
      config.cham.k = bench.k;
      config.cham.call_frequency =
          std::max(1, bench.freq / bench::bench_step_divisor());

      const auto app = bench::run_experiment(ToolKind::kNone, config);
      const auto ch = bench::run_experiment(ToolKind::kChameleon, config);
      const auto st = bench::run_experiment(ToolKind::kScalaTrace, config);
      const double ch_ovh = bench::aggregated_overhead(ch, app);
      const double st_ovh = bench::aggregated_overhead(st, app);
      const double ratio = ch_ovh > 0 ? st_ovh / ch_ovh : 0;
      table.row({bench.workload, support::Table::num(static_cast<std::uint64_t>(p)),
                 support::Table::num(app.vtime_sum, 2),
                 support::Table::num(ch_ovh, 4), support::Table::num(st_ovh, 4),
                 support::Table::num(ratio, 2),
                 support::Table::num(ch.merge_operations),
                 support::Table::num(st.merge_operations)});
      csv.row({bench.workload, std::to_string(p), std::to_string(app.vtime_sum),
               std::to_string(ch_ovh), std::to_string(st_ovh),
               std::to_string(ratio), std::to_string(ch.merge_operations),
               std::to_string(st.merge_operations)});
    }
  }

  std::fputs(table.render().c_str(), stdout);
  bench::save_csv("fig6_weak_overhead", csv.content());
  return 0;
}
