// Figure 7: weak-scaling replay time and accuracy — LU and Sweep3D.
//
// Paper: LU 90.75%, Sweep3D 98.32% relative to application runtime; the
// Sweep3D load imbalance is absorbed by the delta-time histograms
// (Observation 5).
#include <cstdio>

#include "harness/experiment.hpp"
#include "replay/replayer.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace cham;
  using bench::RunConfig;
  using bench::ToolKind;

  struct Bench {
    const char* workload;
    int paper_steps;
    int freq;
    std::size_t k;
  };
  const Bench benches[] = {{"luw", 250, 25, 9}, {"sweep3d", 10, 1, 9}};

  support::Table table("Figure 7: weak-scaling replay time & accuracy");
  table.header({"Pgm", "P", "APP", "replay(CH)", "ACC(CH)", "replay(ST)",
                "ACC(ST)"});
  support::CsvWriter csv({"workload", "p", "app", "replay_ch", "acc_ch",
                          "replay_st", "acc_st"});

  for (const Bench& bench : benches) {
    for (int p : bench::strong_scaling_procs()) {
      RunConfig config;
      config.workload = bench.workload;
      config.nprocs = p;
      config.params.cls = 'D';
      config.params.timesteps = bench::scaled_steps(bench.paper_steps);
      config.params.weak = true;
      config.cham.k = bench.k;
      config.cham.call_frequency =
          std::max(1, bench.freq / bench::bench_step_divisor());

      const auto app = bench::run_experiment(ToolKind::kNone, config);
      const auto ch = bench::run_experiment(ToolKind::kChameleon, config);
      const auto st = bench::run_experiment(ToolKind::kScalaTrace, config);
      const auto replay_ch = replay::replay_trace(ch.trace, {.nprocs = p});
      const auto replay_st = replay::replay_trace(st.trace, {.nprocs = p});
      const double acc_ch = replay::replay_accuracy(app.app_vtime, replay_ch.vtime);
      const double acc_st = replay::replay_accuracy(app.app_vtime, replay_st.vtime);

      table.row({bench.workload, support::Table::num(static_cast<std::uint64_t>(p)),
                 support::Table::num(app.app_vtime, 2),
                 support::Table::num(replay_ch.vtime, 2),
                 support::Table::percent(acc_ch, 2),
                 support::Table::num(replay_st.vtime, 2),
                 support::Table::percent(acc_st, 2)});
      csv.row({bench.workload, std::to_string(p), std::to_string(app.app_vtime),
               std::to_string(replay_ch.vtime), std::to_string(acc_ch),
               std::to_string(replay_st.vtime), std::to_string(acc_st)});
    }
  }

  std::fputs(table.render().c_str(), stdout);
  bench::save_csv("fig7_weak_replay", csv.content());
  return 0;
}
