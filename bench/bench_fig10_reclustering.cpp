// Figure 10: re-clustering cost — modified LU, 300 markers, P=1024.
//
// The modified LU executes an extra barrier from a new call site every Nth
// timestep, forcing a phase change and a re-clustering. Sweeping N from 300
// down to 10 raises the number of re-clusterings from 1 to 30. Expected
// shape: overhead grows with re-clusterings but stays an order of magnitude
// below ScalaTrace even at 30 (Observation 7).
#include <cstdio>

#include "harness/experiment.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace cham;
  using bench::RunConfig;
  using bench::ToolKind;

  const int p = std::min(1024, bench::bench_max_p());
  const int steps = bench::scaled_steps(300);

  support::Table table(
      "Figure 10: re-clustering cost, modified LU, 300 markers");
  table.header({"perturb every", "#re-clusterings", "Chameleon [s]",
                "clustering [s]", "inter [s]"});
  support::CsvWriter csv({"perturb_every", "reclusterings", "chameleon",
                          "clustering", "inter"});

  RunConfig base;
  base.workload = "lu_mod";
  base.nprocs = p;
  base.params.cls = 'D';
  base.params.timesteps = steps;
  base.cham.k = 9;
  base.cham.call_frequency = 1;

  for (int divisor : {1, 2, 3, 5, 10, 15, 30}) {
    RunConfig config = base;
    config.params.perturb_every = std::max(1, steps / divisor);
    const auto ch = bench::run_experiment(ToolKind::kChameleon, config);
    table.row({support::Table::num(static_cast<std::uint64_t>(config.params.perturb_every)),
               support::Table::num(ch.state_counts[1]),
               support::Table::num(ch.overhead_seconds, 4),
               support::Table::num(ch.clustering_seconds, 4),
               support::Table::num(ch.inter_seconds, 4)});
    csv.row({std::to_string(config.params.perturb_every),
             std::to_string(ch.state_counts[1]),
             std::to_string(ch.overhead_seconds),
             std::to_string(ch.clustering_seconds),
             std::to_string(ch.inter_seconds)});
  }

  const auto st = bench::run_experiment(ToolKind::kScalaTrace, base);
  table.row({"(ScalaTrace ref)", "-",
             support::Table::num(st.overhead_seconds, 4), "-",
             support::Table::num(st.inter_seconds, 4)});

  std::fputs(table.render().c_str(), stdout);
  bench::save_csv("fig10_reclustering", csv.content());
  return 0;
}
