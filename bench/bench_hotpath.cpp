// Hot-path regression benchmark for the shape-hash compression fast path.
//
// Drives a synthetic 100k+-event workload through the three compression hot
// loops — online append/fold (IntraTrace), inter-node merge (inter_merge),
// and trace encode/decode — once with the fast path disabled (the
// pre-optimization deep-comparison code) and once enabled, on identical
// inputs. Both modes must produce byte-identical traces; the speedups and
// the optimized run's PerfCounters land in bench_results/BENCH_hotpath.json
// (schema documented in docs/PERF.md).
//
// The event stream is adversarial on purpose: repeated phases whose nested
// loops match structurally but differ in message size deep inside (adaptive
// message sizes), so the baseline's window comparisons descend into loop
// bodies before failing — the case the O(1) hash precheck eliminates.
// Every 16 phases the sizes cycle, so long windows genuinely fold and the
// deep-verify path runs too.
//
// Usage: bench_hotpath [--events N] [--reps R] [--smoke] [--out FILE]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/rng.hpp"
#include "trace/merge.hpp"
#include "trace/perf.hpp"
#include "trace/rsd.hpp"
#include "trace/serialize.hpp"

using namespace cham;
using trace::EventRecord;
using trace::TraceNode;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

EventRecord make_event(sim::Op op, std::uint64_t stack, std::uint64_t bytes,
                       int peer) {
  EventRecord ev;
  ev.op = op;
  ev.stack_sig = stack;
  ev.bytes = bytes;
  ev.tag = 7;
  if (op == sim::Op::kSend) ev.dest = trace::Endpoint::relative(0, peer);
  if (op == sim::Op::kRecv) ev.src = trace::Endpoint::relative(0, peer);
  ev.ranks = trace::RankList::single(0);
  ev.delta.add(1e-6 + 1e-9 * static_cast<double>(bytes % 97));
  return ev;
}

/// One halo-exchange "timestep": eight distinct exchanges repeated twice,
/// folding into loop_2{8 leaves}. Seven of the eight sizes are fixed; the
/// eighth is the timestep's adaptive message size `c`, so timesteps with
/// equal c fold together while timesteps with different c only *nearly*
/// match — a baseline window comparison descends through the loop and
/// through seven equal leaves before failing on the eighth, the exact cost
/// the O(1) hash precheck removes.
void emit_timestep(std::vector<EventRecord>& out, std::uint64_t c) {
  for (int rep = 0; rep < 2; ++rep) {
    for (int d = 0; d < 7; ++d)
      out.push_back(make_event(sim::Op::kSend, 0x11, 1000 + d, 1));
    out.push_back(make_event(sim::Op::kSend, 0x11, c, 1));
  }
}

/// Adaptive-message-size stream: c cycles with period 16 (clean cycles fold
/// into big nested loops) plus a seeded jitter lane that keeps a fraction
/// of timesteps unique per stream.
std::vector<EventRecord> make_stream(std::size_t min_events,
                                     std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<EventRecord> out;
  out.reserve(min_events + 64);
  std::uint64_t t = 0;
  while (out.size() < min_events) {
    std::uint64_t c = 1000000 + 8 * (t % 16);
    if (rng.next_below(32) == 0) c = 2000000 + 8 * rng.next_below(1u << 16);
    emit_timestep(out, c);
    ++t;
  }
  return out;
}

std::vector<TraceNode> fold_stream(const std::vector<EventRecord>& stream,
                                   trace::PerfCounters* pc) {
  trace::IntraTrace intra(32, pc);
  for (const EventRecord& ev : stream) intra.append(ev);
  return intra.take();
}

/// Binomial-style reduction over per-rank traces, mirroring radix_merge's
/// merge order without the message passing.
std::vector<TraceNode> merge_all(std::vector<std::vector<TraceNode>> traces,
                                 trace::PerfCounters* pc) {
  for (std::size_t step = 1; step < traces.size(); step <<= 1)
    for (std::size_t i = 0; i + step < traces.size(); i += 2 * step)
      traces[i] = trace::inter_merge(std::move(traces[i]),
                                     std::move(traces[i + step]), pc);
  return std::move(traces.front());
}

struct Timed {
  double seconds = 0.0;
  std::vector<std::uint8_t> encoded;  ///< byte-identity witness
};

template <typename Fn>
Timed time_best_of(int reps, Fn&& fn) {
  Timed best;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    std::vector<TraceNode> result = fn();
    const double dt = now_seconds() - t0;
    if (r == 0 || dt < best.seconds) best.seconds = dt;
    if (r == 0) best.encoded = trace::encode_trace(result);
  }
  return best;
}

/// A float rendered with fixed precision (the report schema in docs/PERF.md
/// shows 6-digit seconds and 2-digit speedups; Writer::value(double) would
/// use shortest-round-trip formatting instead).
std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

void json_section(support::json::Writer& w, const char* name, double base,
                  double fast) {
  w.key(name).begin_object();
  w.key("baseline_seconds").raw(fixed(base, 6));
  w.key("optimized_seconds").raw(fixed(fast, 6));
  w.key("speedup").raw(fixed(base / fast, 2));
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t events = 120000;
  int reps = 3;
  std::string out_path = "bench_results/BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--events" && i + 1 < argc) {
      events = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else if (arg == "--smoke") {
      events = 8000;
      reps = 1;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_hotpath [--events N] [--reps R] [--smoke] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  // --- append/fold -------------------------------------------------------
  const std::vector<EventRecord> stream = make_stream(events, 0xC0FFEE);
  trace::PerfCounters counters;

  trace::set_fast_path_enabled(false);
  const Timed fold_base =
      time_best_of(reps, [&] { return fold_stream(stream, nullptr); });
  trace::set_fast_path_enabled(true);
  const Timed fold_fast =
      time_best_of(reps, [&] { return fold_stream(stream, &counters); });
  bool identical = fold_base.encoded == fold_fast.encoded;

  // --- inter-merge -------------------------------------------------------
  // 16 per-rank traces: shared phase skeleton, rank-seeded jitter, distinct
  // endpoints — the LCS has long matching runs and a quadratic fringe of
  // near-matching pairs.
  constexpr std::size_t kRanks = 16;
  std::vector<std::vector<TraceNode>> rank_traces(kRanks);
  {
    const std::size_t per_rank = std::max<std::size_t>(events / kRanks, 1000);
    for (std::size_t r = 0; r < kRanks; ++r) {
      std::vector<EventRecord> s = make_stream(per_rank, 0xACE0 + r);
      for (EventRecord& ev : s)
        ev.ranks = trace::RankList::single(static_cast<sim::Rank>(r));
      rank_traces[r] = fold_stream(s, nullptr);
    }
  }

  trace::set_fast_path_enabled(false);
  const Timed merge_base =
      time_best_of(reps, [&] { return merge_all(rank_traces, nullptr); });
  trace::set_fast_path_enabled(true);
  const Timed merge_fast =
      time_best_of(reps, [&] { return merge_all(rank_traces, &counters); });
  identical = identical && merge_base.encoded == merge_fast.encoded;

  // --- encode/decode -----------------------------------------------------
  const std::vector<TraceNode> merged = trace::decode_trace(merge_fast.encoded);
  double codec_seconds = 0.0;
  std::uint64_t codec_bytes = 0;
  {
    const double t0 = now_seconds();
    for (int r = 0; r < std::max(reps, 1) * 8; ++r) {
      const std::vector<std::uint8_t> bytes = trace::encode_trace(merged);
      counters.bytes_encoded += bytes.size();
      const std::vector<TraceNode> back = trace::decode_trace(bytes);
      counters.bytes_decoded += bytes.size();
      codec_bytes += 2 * bytes.size();
    }
    codec_seconds = now_seconds() - t0;
  }

  // --- report ------------------------------------------------------------
  support::json::Writer w;
  w.begin_object();
  w.member("schema", "chameleon.bench_hotpath.v1");
  w.member("events", static_cast<std::uint64_t>(stream.size()));
  w.member("reps", reps);
  json_section(w, "append_fold", fold_base.seconds, fold_fast.seconds);
  json_section(w, "inter_merge", merge_base.seconds, merge_fast.seconds);
  w.key("encode_decode").begin_object();
  w.key("seconds").raw(fixed(codec_seconds, 6));
  w.member("bytes", codec_bytes);
  w.key("mb_per_second")
      .raw(fixed(static_cast<double>(codec_bytes) / 1e6 / codec_seconds, 1));
  w.end_object();
  w.key("counters").begin_object();
  w.member("fold_windows_tested", counters.fold_windows_tested);
  w.member("fold_hash_rejects", counters.fold_hash_rejects);
  w.member("fold_hash_hits", counters.fold_hash_hits);
  w.member("fold_false_positives", counters.fold_false_positives);
  w.member("fold_deep_compares", counters.fold_deep_compares);
  w.member("folds_performed", counters.folds_performed);
  w.member("merge_prechecks", counters.merge_prechecks);
  w.member("merge_hash_rejects", counters.merge_hash_rejects);
  w.member("merge_deep_compares", counters.merge_deep_compares);
  w.member("merge_memo_hits", counters.merge_memo_hits);
  w.member("bytes_encoded", counters.bytes_encoded);
  w.member("bytes_decoded", counters.bytes_decoded);
  w.end_object();
  w.member("byte_identical", identical);
  w.end_object();
  const std::string json = w.str() + "\n";

  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream file(out_path, std::ios::trunc);
    if (file) {
      file << json;
      std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", out_path.c_str());
    }
  }
  return identical ? 0 : 1;
}
