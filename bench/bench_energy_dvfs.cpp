// Extension bench: DVFS energy projection (the paper's §VIII future work).
//
// "We currently plan to leverage the idle time for non representative
// processes at interim execution points by utilizing DVFS. This would
// reduce energy consumption and make clustered tracing energy efficient."
//
// For each tool we run LU and BT, collect per-rank wait time from the
// engine, and project package energy with and without DVFS harvesting.
// Expected shape: ScalaTrace adds the most harvestable-but-wasteful wait
// (everyone idles through the finalize merge chain), Chameleon adds the
// least absolute energy, and the clustered idle time of non-leads is
// recoverable.
#include <cstdio>

#include "core/acurdion.hpp"
#include "core/chameleon.hpp"
#include "core/energy.hpp"
#include "harness/experiment.hpp"
#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

using namespace cham;

namespace {

struct Row {
  double busy_kj;
  double dvfs_kj;
  double savings_pct;
};

Row run_tool(const char* workload, int p, int steps, sim::Tool* tool,
             trace::CallSiteRegistry& stacks) {
  const auto* info = workloads::find_workload(workload);
  sim::Engine engine({.nprocs = p});
  engine.set_tool(tool);
  workloads::WorkloadParams params{.cls = 'C', .timesteps = steps};
  engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });
  const core::EnergyReport report = core::estimate_energy(engine);
  return Row{report.busy_joules / 1e3, report.dvfs_joules / 1e3,
             report.savings_fraction * 100.0};
}

}  // namespace

int main() {
  const int p = std::min(256, bench::bench_max_p());
  const int steps = bench::scaled_steps(100);

  support::Table table("Extension: projected package energy with DVFS "
                       "harvesting of wait time");
  table.header({"Pgm", "tool", "busy [kJ]", "DVFS [kJ]", "savings",
                "tracing extra [J]"});
  support::CsvWriter csv({"workload", "tool", "busy_kj", "dvfs_kj",
                          "savings_pct", "extra_j"});

  for (const char* workload : {"lu", "bt"}) {
    const std::size_t k = workload[0] == 'l' ? 9 : 3;

    trace::CallSiteRegistry s0(p);
    const Row app = run_tool(workload, p, steps, nullptr, s0);

    trace::CallSiteRegistry s1(p);
    core::ChameleonTool chameleon(p, &s1, {.k = k, .call_frequency = 5});
    const Row ch = run_tool(workload, p, steps, &chameleon, s1);

    trace::CallSiteRegistry s2(p);
    trace::ScalaTraceTool scalatrace(p, &s2);
    const Row st = run_tool(workload, p, steps, &scalatrace, s2);

    const struct {
      const char* name;
      const Row& row;
    } rows[] = {{"app", app}, {"chameleon", ch}, {"scalatrace", st}};
    for (const auto& [name, row] : rows) {
      const double extra_j = (row.busy_kj - app.busy_kj) * 1e3;
      table.row({workload, name, support::Table::num(row.busy_kj, 3),
                 support::Table::num(row.dvfs_kj, 3),
                 support::Table::num(row.savings_pct, 1) + "%",
                 support::Table::num(extra_j, 1)});
      csv.row({workload, name, std::to_string(row.busy_kj),
               std::to_string(row.dvfs_kj), std::to_string(row.savings_pct),
               std::to_string(extra_j)});
    }
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts("(extension of the paper's §VIII: wait time of non-lead and "
            "merge-idle ranks harvested at a 30 W DVFS floor)");
  bench::save_csv("energy_dvfs", csv.content());
  return 0;
}
