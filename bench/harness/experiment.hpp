// Shared experiment driver for the table/figure benches.
//
// One call = one (workload, P, tool) run, returning everything the paper's
// tables and figures report: aggregated tool CPU overhead (the stand-in for
// aggregated wall-clock across nodes, see DESIGN.md), virtual app time,
// Chameleon state counters, per-state times, per-rank space, and the
// resulting global/online trace for replay experiments.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/chameleon.hpp"
#include "workloads/workload.hpp"

namespace cham::bench {

enum class ToolKind { kNone, kScalaTrace, kChameleon, kAcurdion };

const char* tool_name(ToolKind kind);

struct RunConfig {
  std::string workload;
  int nprocs = 16;
  workloads::WorkloadParams params{};
  /// K / Call_Frequency / policy; k==0 means "use the workload default".
  core::ChameleonConfig cham{.k = 0};
};

struct RunOutcome {
  // --- both app and tool runs ---
  double app_vtime = 0.0;   ///< virtual completion time (slowest rank)
  double vtime_sum = 0.0;   ///< aggregated completion time over all ranks

  // --- tool runs ---
  double tool_cpu_seconds = 0.0;  ///< intra + clustering + inter, all ranks
  /// The paper's Figure 4/6/8-11 "overhead": clustering + inter-compression
  /// work only — intra-node tracing is common to every tool and excluded
  /// ("the execution overhead of ScalaTrace features just regular
  /// inter-node compression performed in MPI_Finalize").
  double overhead_seconds = 0.0;
  double intra_seconds = 0.0;
  double clustering_seconds = 0.0;
  double inter_seconds = 0.0;
  /// Pairwise merge operations / compressed bytes merged (see
  /// ScalaTraceTool::merge_operations) — the hardware-independent view of
  /// the P-vs-K participant contrast.
  std::uint64_t merge_operations = 0;
  std::uint64_t merge_bytes = 0;
  std::vector<trace::TraceNode> trace;  ///< global (ST/ACURDION) or online (CH)

  // --- Chameleon-only ---
  std::uint64_t markers_processed = 0;
  std::array<std::uint64_t, 4> state_counts{};  // AT, C, L, F
  std::array<double, 4> state_seconds{};
  std::size_t effective_k = 0;
  std::size_t num_callpaths = 0;
  /// Per-rank, per-state average bytes per call (Table IV); empty unless
  /// requested via RunConfig-independent flag below.
  std::vector<std::array<core::ChameleonTool::StateBytes, 4>> rank_state_bytes;
};

/// Execute the configured workload under the given tool.
/// `keep_rank_bytes` copies the Table IV accounting out of the tool.
RunOutcome run_experiment(ToolKind kind, const RunConfig& config,
                          bool keep_rank_bytes = false);

/// The paper's overhead metric: aggregated wall-clock of the instrumented
/// run minus the uninstrumented one (tool CPU is charged to the virtual
/// clocks, so this covers compute + communication + waiting).
inline double aggregated_overhead(const RunOutcome& tool_run,
                                  const RunOutcome& app_run) {
  return std::max(0.0, tool_run.vtime_sum - app_run.vtime_sum);
}

/// Environment-driven scaling so the full suite stays runnable on small
/// hosts: CHAM_BENCH_MAXP caps process counts (default 1024),
/// CHAM_BENCH_STEP_DIVISOR divides timestep counts (default 1 = paper
/// scale).
int bench_max_p();
int bench_step_divisor();

/// The paper's strong-scaling process counts, capped by CHAM_BENCH_MAXP.
std::vector<int> strong_scaling_procs();

/// Scale a Table II timestep count by the divisor (at least 4 steps).
int scaled_steps(int paper_steps);

/// Write a CSV next to the binary (bench_results/<name>.csv); best effort.
void save_csv(const std::string& name, const std::string& content);

}  // namespace cham::bench
