#include "harness/experiment.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/acurdion.hpp"
#include "sim/engine.hpp"
#include "support/logging.hpp"

namespace cham::bench {

const char* tool_name(ToolKind kind) {
  switch (kind) {
    case ToolKind::kNone: return "app";
    case ToolKind::kScalaTrace: return "scalatrace";
    case ToolKind::kChameleon: return "chameleon";
    case ToolKind::kAcurdion: return "acurdion";
  }
  return "?";
}

RunOutcome run_experiment(ToolKind kind, const RunConfig& config,
                          bool keep_rank_bytes) {
  const workloads::WorkloadInfo* info =
      workloads::find_workload(config.workload);
  CHAM_CHECK_MSG(info != nullptr, "unknown workload: " + config.workload);

  core::ChameleonConfig cham = config.cham;
  if (cham.k == 0) cham.k = info->default_k;

  sim::Engine engine({.nprocs = config.nprocs});
  trace::CallSiteRegistry stacks(config.nprocs);

  std::optional<trace::ScalaTraceTool> scalatrace;
  std::optional<core::ChameleonTool> chameleon;
  std::optional<core::AcurdionTool> acurdion;
  switch (kind) {
    case ToolKind::kNone:
      break;
    case ToolKind::kScalaTrace:
      scalatrace.emplace(config.nprocs, &stacks,
                         trace::TracerOptions{.max_window = cham.max_window});
      engine.set_tool(&*scalatrace);
      break;
    case ToolKind::kChameleon:
      chameleon.emplace(config.nprocs, &stacks, cham);
      engine.set_tool(&*chameleon);
      break;
    case ToolKind::kAcurdion:
      acurdion.emplace(config.nprocs, &stacks, cham);
      engine.set_tool(&*acurdion);
      break;
  }

  engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, config.params); });

  RunOutcome out;
  out.app_vtime = engine.max_vtime();
  out.vtime_sum = engine.vtime_sum();
  if (scalatrace.has_value()) {
    out.intra_seconds = scalatrace->intra_seconds();
    out.merge_operations = scalatrace->merge_operations();
    out.merge_bytes = scalatrace->merge_bytes();
    out.inter_seconds = scalatrace->inter_seconds();
    out.tool_cpu_seconds = out.intra_seconds + out.inter_seconds;
    out.overhead_seconds = out.inter_seconds;
    out.trace = scalatrace->global_trace();
  } else if (chameleon.has_value()) {
    out.intra_seconds = chameleon->intra_seconds();
    out.merge_operations = chameleon->merge_operations();
    out.merge_bytes = chameleon->merge_bytes();
    out.clustering_seconds = chameleon->clustering_seconds();
    out.inter_seconds = chameleon->inter_seconds();
    out.tool_cpu_seconds = chameleon->total_tool_seconds();
    out.overhead_seconds = out.clustering_seconds + out.inter_seconds;
    out.trace = chameleon->online_trace();
    out.markers_processed = chameleon->marker_calls_processed();
    for (std::size_t s = 0; s < 4; ++s) {
      out.state_counts[s] =
          chameleon->state_count(static_cast<core::MarkerState>(s));
      out.state_seconds[s] =
          chameleon->state_seconds(static_cast<core::MarkerState>(s));
    }
    out.effective_k = chameleon->effective_k();
    out.num_callpaths = chameleon->num_callpath_clusters();
    if (keep_rank_bytes) {
      out.rank_state_bytes.resize(static_cast<std::size_t>(config.nprocs));
      for (int r = 0; r < config.nprocs; ++r) {
        for (std::size_t s = 0; s < 4; ++s) {
          out.rank_state_bytes[static_cast<std::size_t>(r)][s] =
              chameleon->rank_state_bytes(r, static_cast<core::MarkerState>(s));
        }
      }
    }
  } else if (acurdion.has_value()) {
    out.intra_seconds = acurdion->intra_seconds();
    out.merge_operations = acurdion->merge_operations();
    out.merge_bytes = acurdion->merge_bytes();
    out.clustering_seconds = acurdion->clustering_seconds();
    out.inter_seconds = acurdion->inter_seconds();
    out.tool_cpu_seconds = acurdion->total_tool_seconds();
    out.overhead_seconds = out.clustering_seconds + out.inter_seconds;
    out.trace = acurdion->global_trace();
    out.effective_k = acurdion->effective_k();
  }
  return out;
}

namespace {
int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::max(1, std::atoi(value));
}
}  // namespace

int bench_max_p() { return env_int("CHAM_BENCH_MAXP", 1024); }

int bench_step_divisor() { return env_int("CHAM_BENCH_STEP_DIVISOR", 1); }

std::vector<int> strong_scaling_procs() {
  std::vector<int> procs;
  for (int p : {16, 64, 256, 1024}) {
    if (p <= bench_max_p()) procs.push_back(p);
  }
  return procs;
}

int scaled_steps(int paper_steps) {
  return std::max(4, paper_steps / bench_step_divisor());
}

void save_csv(const std::string& name, const std::string& content) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  std::ofstream out("bench_results/" + name + ".csv", std::ios::trunc);
  if (out) out << content;
}

}  // namespace cham::bench
