// Figure 4: strong-scaling execution overhead — APP vs Chameleon vs
// ScalaTrace, per benchmark, over the process counts 16..1024 (EMF:
// 126..1001). Overhead is aggregated tool CPU seconds (DESIGN.md); the
// paper plots it on a log axis. Expected shape: ScalaTrace's all-P
// finalize merge grows steeply with P, Chameleon stays orders of magnitude
// lower; EMF's tiny 6-event traces let ScalaTrace win at small P with
// Chameleon ahead by ~2x at P~1000.
#include <cstdio>

#include "harness/experiment.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace cham;
  using bench::RunConfig;
  using bench::ToolKind;

  struct Bench {
    const char* workload;
    int paper_steps;
    int freq;
    std::size_t k;
    bool emf_procs;  // EMF uses its own P series
  };
  const Bench benches[] = {
      {"bt", 250, 25, 3, false}, {"lu", 300, 20, 9, false},
      {"sp", 500, 20, 3, false}, {"pop", 20, 1, 3, false},
      {"emf", 0, 4, 2, true},
  };

  support::Table table(
      "Figure 4: strong-scaling aggregated overhead [secs] vs APP");
  table.header({"Pgm", "P", "APP agg", "Chameleon", "ScalaTrace",
                "ST/CH ratio", "CH merges", "ST merges"});
  support::CsvWriter csv(
      {"workload", "p", "app_vtime", "chameleon", "scalatrace", "ratio", "ch_merges", "st_merges"});

  for (const Bench& bench : benches) {
    std::vector<int> procs;
    if (bench.emf_procs) {
      for (int p : {126, 251, 501, 1001})
        if (p <= bench::bench_max_p()) procs.push_back(p);
    } else {
      procs = bench::strong_scaling_procs();
    }
    for (int p : procs) {
      RunConfig config;
      config.workload = bench.workload;
      config.nprocs = p;
      config.params.cls = 'D';
      config.params.timesteps =
          bench.emf_procs ? std::max(1, 36000 / (p - 1) / bench::bench_step_divisor())
                          : bench::scaled_steps(bench.paper_steps);
      config.cham.k = bench.k;
      config.cham.call_frequency = std::max(1, bench.freq / bench::bench_step_divisor());

      const auto app = bench::run_experiment(ToolKind::kNone, config);
      const auto ch = bench::run_experiment(ToolKind::kChameleon, config);
      const auto st = bench::run_experiment(ToolKind::kScalaTrace, config);
      const double ch_ovh = bench::aggregated_overhead(ch, app);
      const double st_ovh = bench::aggregated_overhead(st, app);
      const double ratio = ch_ovh > 0 ? st_ovh / ch_ovh : 0;
      table.row({bench.workload, support::Table::num(static_cast<std::uint64_t>(p)),
                 support::Table::num(app.vtime_sum, 2),
                 support::Table::num(ch_ovh, 4),
                 support::Table::num(st_ovh, 4),
                 support::Table::num(ratio, 2),
                 support::Table::num(ch.merge_operations),
                 support::Table::num(st.merge_operations)});
      csv.row({bench.workload, std::to_string(p), std::to_string(app.vtime_sum),
               std::to_string(ch_ovh), std::to_string(st_ovh),
               std::to_string(ratio), std::to_string(ch.merge_operations),
               std::to_string(st.merge_operations)});
    }
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "(expected shape: ST/CH ratio grows with P; EMF crosses over near "
      "P~500)");
  bench::save_csv("fig4_strong_overhead", csv.content());
  return 0;
}
