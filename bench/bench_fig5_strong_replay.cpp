// Figure 5: strong-scaling replay time and accuracy.
//
// Replays the Chameleon online trace and the ScalaTrace global trace with
// the ScalaReplay-equivalent engine and compares both against the original
// application's virtual time. Paper accuracies: BT 97.75%, SP 95.5%,
// LU 91%, POP 89.75%, EMF 87% — Chameleon ~ ScalaTrace throughout.
#include <cstdio>

#include "harness/experiment.hpp"
#include "replay/replayer.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace cham;
  using bench::RunConfig;
  using bench::ToolKind;

  struct Bench {
    const char* workload;
    int paper_steps;
    int freq;
    std::size_t k;
    bool emf_procs;
  };
  const Bench benches[] = {
      {"bt", 250, 25, 3, false}, {"lu", 300, 20, 9, false},
      {"sp", 500, 20, 3, false}, {"pop", 20, 1, 3, false},
      {"emf", 0, 4, 2, true},
  };

  support::Table table("Figure 5: strong-scaling replay time & accuracy");
  table.header({"Pgm", "P", "APP", "replay(CH)", "ACC(CH)", "replay(ST)",
                "ACC(ST)"});
  support::CsvWriter csv({"workload", "p", "app", "replay_ch", "acc_ch",
                          "replay_st", "acc_st"});

  for (const Bench& bench : benches) {
    std::vector<int> procs;
    if (bench.emf_procs) {
      for (int p : {126, 251, 501, 1001})
        if (p <= bench::bench_max_p()) procs.push_back(p);
    } else {
      procs = bench::strong_scaling_procs();
    }
    for (int p : procs) {
      RunConfig config;
      config.workload = bench.workload;
      config.nprocs = p;
      config.params.cls = 'D';
      config.params.timesteps =
          bench.emf_procs ? std::max(1, 36000 / (p - 1) / bench::bench_step_divisor())
                          : bench::scaled_steps(bench.paper_steps);
      config.cham.k = bench.k;
      config.cham.call_frequency =
          std::max(1, bench.freq / bench::bench_step_divisor());

      const auto app = bench::run_experiment(ToolKind::kNone, config);
      const auto ch = bench::run_experiment(ToolKind::kChameleon, config);
      const auto st = bench::run_experiment(ToolKind::kScalaTrace, config);

      const auto replay_ch = replay::replay_trace(ch.trace, {.nprocs = p});
      const auto replay_st = replay::replay_trace(st.trace, {.nprocs = p});
      const double acc_ch = replay::replay_accuracy(app.app_vtime, replay_ch.vtime);
      const double acc_st = replay::replay_accuracy(app.app_vtime, replay_st.vtime);

      table.row({bench.workload, support::Table::num(static_cast<std::uint64_t>(p)),
                 support::Table::num(app.app_vtime, 2),
                 support::Table::num(replay_ch.vtime, 2),
                 support::Table::percent(acc_ch, 2),
                 support::Table::num(replay_st.vtime, 2),
                 support::Table::percent(acc_st, 2)});
      csv.row({bench.workload, std::to_string(p), std::to_string(app.app_vtime),
               std::to_string(replay_ch.vtime), std::to_string(acc_ch),
               std::to_string(replay_st.vtime), std::to_string(acc_st)});
    }
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "(expected shape: ACC(CH) ~ ACC(ST), both near the paper's 87-98%)");
  bench::save_csv("fig5_strong_replay", csv.content());
  return 0;
}
