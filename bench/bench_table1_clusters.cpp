// Table I: number of clusters per benchmark.
//
// The paper fixes K a priori (3 for BT/SP/POP, 9 for LU/S3D/LUW, 2 for
// EMF). We run each benchmark under Chameleon with that budget and report
// the measured cluster structure: the configured K, the number of distinct
// Call-Paths, and the effective number of clusters actually used.
#include <cstdio>

#include "harness/experiment.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace cham;
  using bench::RunConfig;
  using bench::ToolKind;

  struct Row {
    const char* workload;
    int nprocs;
    std::size_t paper_k;
    bool weak;
  };
  const Row rows[] = {
      {"bt", 64, 3, false},     {"lu", 64, 9, false},  {"sp", 64, 3, false},
      {"pop", 64, 3, false},    {"sweep3d", 64, 9, false},
      {"luw", 64, 9, true},     {"emf", 126, 2, false},
  };

  support::Table table("Table I: # of clusters for the tested benchmarks");
  table.header({"Pgm", "K (paper)", "K (effective)", "#Call-Paths"});
  support::CsvWriter csv({"workload", "k_paper", "k_effective", "callpaths"});

  for (const Row& row : rows) {
    RunConfig config;
    config.workload = row.workload;
    config.nprocs = std::min(row.nprocs, bench::bench_max_p());
    config.params.cls = 'A';  // cluster structure is size-independent
    config.params.timesteps = bench::scaled_steps(20);
    config.params.weak = row.weak;
    config.cham.k = row.paper_k;

    const auto outcome =
        bench::run_experiment(ToolKind::kChameleon, config);
    table.row({row.workload, support::Table::num(static_cast<std::uint64_t>(row.paper_k)),
               support::Table::num(static_cast<std::uint64_t>(outcome.effective_k)),
               support::Table::num(static_cast<std::uint64_t>(outcome.num_callpaths))});
    csv.row({row.workload, std::to_string(row.paper_k),
             std::to_string(outcome.effective_k),
             std::to_string(outcome.num_callpaths)});
  }

  std::fputs(table.render().c_str(), stdout);
  bench::save_csv("table1_clusters", csv.content());
  return 0;
}
