// Table II: number of marker calls and per-state counts (C / L / AT).
//
// Paper row format: Pgm(P)  #Iters  #Freq  #Calls  #C  #L  #AT.
// Expected shape: exactly one clustering per run and L >= 70% of calls.
#include <cstdio>

#include "harness/experiment.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

namespace {

using namespace cham;
using bench::RunConfig;
using bench::ToolKind;

struct Row {
  const char* workload;
  int nprocs;
  int iters;
  int freq;
  char cls;
  bool weak;
};

}  // namespace

int main() {
  // The paper's Table II rows (P capped by CHAM_BENCH_MAXP for small hosts).
  const Row rows[] = {
      {"bt", 1024, 250, 25, 'D', false},  {"lu", 1024, 300, 20, 'D', false},
      {"sp", 1024, 500, 20, 'D', false},  {"pop", 1024, 20, 1, 'D', false},
      {"sweep3d", 1024, 10, 1, 'D', false}, {"luw", 1024, 250, 25, 'D', true},
      {"emf", 126, 288, 32, 'D', false},  {"emf", 251, 144, 16, 'D', false},
      {"emf", 501, 72, 8, 'D', false},    {"emf", 1001, 36, 4, 'D', false},
  };

  support::Table table(
      "Table II: # marker calls and states Clustering(C)/Lead(L)/AllTracing(AT)");
  table.header({"Pgm (P)", "#Iters", "#Freq", "#Calls", "#C", "#L", "#AT"});
  support::CsvWriter csv(
      {"workload", "p", "iters", "freq", "calls", "c", "l", "at"});

  for (const Row& row : rows) {
    const int p = std::min(row.nprocs, bench::bench_max_p());
    const int divisor = bench::bench_step_divisor();
    const int iters = bench::scaled_steps(row.iters);
    const int freq = std::max(1, row.freq / divisor);

    RunConfig config;
    config.workload = row.workload;
    config.nprocs = p;
    config.params.cls = row.cls;
    config.params.timesteps = iters;
    config.params.weak = row.weak;
    config.cham.call_frequency = freq;

    const auto outcome = bench::run_experiment(ToolKind::kChameleon, config);
    char label[64];
    std::snprintf(label, sizeof label, "%s(%d)", row.workload, p);
    table.row({label, support::Table::num(static_cast<std::uint64_t>(iters)),
               support::Table::num(static_cast<std::uint64_t>(freq)),
               support::Table::num(outcome.markers_processed),
               support::Table::num(outcome.state_counts[1]),
               support::Table::num(outcome.state_counts[2]),
               support::Table::num(outcome.state_counts[0])});
    csv.row({row.workload, std::to_string(p), std::to_string(iters),
             std::to_string(freq), std::to_string(outcome.markers_processed),
             std::to_string(outcome.state_counts[1]),
             std::to_string(outcome.state_counts[2]),
             std::to_string(outcome.state_counts[0])});
  }

  std::fputs(table.render().c_str(), stdout);
  bench::save_csv("table2_markers", csv.content());
  return 0;
}
