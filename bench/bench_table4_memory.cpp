// Table IV: memory allocation for traces in bytes — BT class D, P=256.
//
// Paper shape: 3 lead processes; rank 0 additionally holds the global
// online trace (~+49% vs. the no-clustering baseline), the other leads
// hold roughly half (only their per-interval partial), and all non-leads
// allocate 0 bytes per call in the L state (~-99% on average).
#include <algorithm>
#include <cstdio>

#include "harness/experiment.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace cham;
  using bench::RunConfig;
  using bench::ToolKind;

  const int p = std::min(256, bench::bench_max_p());
  RunConfig config;
  config.workload = "bt";
  config.nprocs = p;
  config.params.cls = 'D';
  config.params.timesteps = bench::scaled_steps(250);
  config.cham.k = 3;
  config.cham.call_frequency = 1;

  const auto outcome =
      bench::run_experiment(ToolKind::kChameleon, config, /*keep_rank_bytes=*/true);

  // Identify the leads: ranks whose L-state bytes are nonzero (plus rank 0).
  std::vector<int> leads;
  for (int r = 0; r < p; ++r) {
    if (outcome.rank_state_bytes[static_cast<std::size_t>(r)][2].bytes_per_call() > 0)
      leads.push_back(r);
  }

  const char* state_names[4] = {"All Tracing (AT)", "Clustering (C)",
                                "Lead (L)", "Finalize (F)"};
  char title[128];
  std::snprintf(title, sizeof title,
                "Table IV: trace memory in bytes, BT class D, P=%d (%zu leads)",
                p, leads.size());
  support::Table table(title);
  std::vector<std::string> header = {"State", "#Calls"};
  for (int lead : leads) header.push_back("rank " + std::to_string(lead) +
                                          (lead == 0 ? "*" : ""));
  header.push_back("non-lead avg");
  table.header(header);
  support::CsvWriter csv({"state", "calls", "lead_rank", "bytes_per_call"});

  for (std::size_t s : {0u, 1u, 2u, 3u}) {
    std::vector<std::string> cells = {state_names[s]};
    std::uint64_t calls = 0;
    for (int lead : leads) {
      calls = std::max(
          calls, outcome.rank_state_bytes[static_cast<std::size_t>(lead)][s].calls);
    }
    cells.push_back(support::Table::num(calls));
    for (int lead : leads) {
      const auto& bucket =
          outcome.rank_state_bytes[static_cast<std::size_t>(lead)][s];
      cells.push_back(support::Table::num(bucket.bytes_per_call()));
      csv.row({state_names[s], std::to_string(bucket.calls),
               std::to_string(lead), std::to_string(bucket.bytes_per_call())});
    }
    // Average over non-leads.
    std::uint64_t total = 0;
    std::uint64_t count = 0;
    for (int r = 0; r < p; ++r) {
      if (std::find(leads.begin(), leads.end(), r) != leads.end()) continue;
      total += outcome.rank_state_bytes[static_cast<std::size_t>(r)][s].bytes_per_call();
      ++count;
    }
    const std::uint64_t avg = count ? total / count : 0;
    cells.push_back(support::Table::num(avg));
    csv.row({state_names[s], "-", "-1", std::to_string(avg)});
    table.row(cells);
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts("* rank 0 holds its own partial trace plus the global online trace");
  bench::save_csv("table4_memory", csv.content());
  return 0;
}
