// Table III: execution overhead, ACURDION vs Chameleon — BT class D.
//
// ACURDION clusters once at MPI_Finalize; Chameleon processes markers all
// run long. The paper constrains Chameleon to the maximum number of marker
// calls (250 for BT class D) and finds its overhead roughly 2x ACURDION's.
#include <cstdio>

#include "harness/experiment.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace cham;
  using bench::RunConfig;
  using bench::ToolKind;

  support::Table table("Table III: overhead [secs of tool CPU], BT class D");
  table.header({"P", "ACURDION", "Chameleon", "CH/AC ratio"});
  support::CsvWriter csv({"p", "acurdion", "chameleon", "ratio"});

  for (int p : bench::strong_scaling_procs()) {
    RunConfig config;
    config.workload = "bt";
    config.nprocs = p;
    config.params.cls = 'D';
    config.params.timesteps = bench::scaled_steps(250);
    config.cham.k = 3;
    config.cham.call_frequency = 1;  // maximum marker-call count

    const auto ac = bench::run_experiment(ToolKind::kAcurdion, config);
    const auto ch = bench::run_experiment(ToolKind::kChameleon, config);
    // Compare the clustering machinery itself (signatures + clustering +
    // inter-compression); intra-node tracing is identical in both tools.
    const double ac_cost = ac.clustering_seconds + ac.inter_seconds;
    const double ch_cost = ch.clustering_seconds + ch.inter_seconds;
    table.row({support::Table::num(static_cast<std::uint64_t>(p)),
               support::Table::num(ac_cost, 4), support::Table::num(ch_cost, 4),
               support::Table::num(ac_cost > 0 ? ch_cost / ac_cost : 0.0, 2)});
    csv.row({std::to_string(p), std::to_string(ac_cost),
             std::to_string(ch_cost),
             std::to_string(ac_cost > 0 ? ch_cost / ac_cost : 0.0)});
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts("(expected shape: Chameleon ~2x ACURDION at max marker calls)");
  bench::save_csv("table3_acurdion", csv.content());
  return 0;
}
