// Micro-benchmarks (google-benchmark) for the core data-path operations:
// RSD append/fold, inter-node merge, signature computation, ranklist
// algebra, cluster-set shrinking. These are the per-event / per-marker
// primitives whose costs the paper's complexity analysis (O(n),
// O(n^2 log P/K), O(K^3)) is about.
#include <benchmark/benchmark.h>

#include "cluster/clusterset.hpp"
#include "cluster/signature.hpp"
#include "trace/merge.hpp"
#include "trace/rsd.hpp"
#include "trace/serialize.hpp"

namespace {

using namespace cham;

trace::EventRecord make_event(std::uint64_t stack, int offset = 1) {
  trace::EventRecord ev;
  ev.op = sim::Op::kSend;
  ev.stack_sig = stack;
  ev.dest = trace::Endpoint{trace::Endpoint::Kind::kRelative, offset};
  ev.bytes = 1024;
  ev.ranks = trace::RankList::single(0);
  ev.delta.add(0.001);
  return ev;
}

void BM_IntraAppendFolding(benchmark::State& state) {
  // Appends that fold perfectly: the hot path of a steady loop.
  const auto body = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    trace::IntraTrace trace;
    for (int iter = 0; iter < 256; ++iter) {
      for (std::uint64_t e = 0; e < body; ++e)
        trace.append(make_event(e + 1));
    }
    benchmark::DoNotOptimize(trace.nodes().data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * state.range(0));
}
BENCHMARK(BM_IntraAppendFolding)->Arg(1)->Arg(4)->Arg(16);

void BM_IntraAppendNoFold(benchmark::State& state) {
  // Worst case: every event distinct, nothing folds.
  for (auto _ : state) {
    trace::IntraTrace trace;
    for (std::uint64_t e = 0; e < 256; ++e) trace.append(make_event(e * 7 + 1));
    benchmark::DoNotOptimize(trace.nodes().data());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_IntraAppendNoFold);

void BM_InterMerge(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::vector<trace::TraceNode> a, b;
  for (std::uint64_t i = 0; i < n; ++i) {
    a.push_back(trace::TraceNode::leaf(make_event(i + 1)));
    trace::EventRecord other = make_event(i + 1);
    other.ranks = trace::RankList::single(1);
    b.push_back(trace::TraceNode::leaf(other));
  }
  for (auto _ : state) {
    auto merged = trace::inter_merge(a, b);
    benchmark::DoNotOptimize(merged.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_InterMerge)->Range(4, 128)->Complexity(benchmark::oNSquared);

void BM_IntervalSignature(benchmark::State& state) {
  const auto distinct = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    cluster::IntervalSignature sig;
    for (int e = 0; e < 1024; ++e)
      sig.observe(make_event(static_cast<std::uint64_t>(e) % distinct + 1));
    benchmark::DoNotOptimize(sig.current());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_IntervalSignature)->Arg(4)->Arg(32);

void BM_RanklistMergeAndFactor(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    trace::RankList acc;
    for (int r = 0; r < p; ++r) acc.merge(trace::RankList::single(r));
    benchmark::DoNotOptimize(acc.sections());
  }
}
BENCHMARK(BM_RanklistMergeAndFactor)->Arg(64)->Arg(1024);

void BM_ClusterShrink(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  cluster::ClusterSet base;
  for (int r = 0; r < n; ++r) {
    base.absorb(cluster::ClusterSet::leaf(
        r, cluster::RankSignature{1, static_cast<std::uint64_t>(r * 37), 0}));
  }
  for (auto _ : state) {
    cluster::ClusterSet set = base;
    set.shrink(9, cluster::SelectPolicy::kFarthest);
    benchmark::DoNotOptimize(set.total_clusters());
  }
}
BENCHMARK(BM_ClusterShrink)->Arg(16)->Arg(64)->Arg(256);

void BM_TraceSerializeRoundTrip(benchmark::State& state) {
  trace::IntraTrace trace;
  for (int iter = 0; iter < 100; ++iter)
    for (std::uint64_t e = 0; e < 8; ++e) trace.append(make_event(e + 1));
  const auto& nodes = trace.nodes();
  for (auto _ : state) {
    auto bytes = trace::encode_trace(nodes);
    auto decoded = trace::decode_trace(bytes);
    benchmark::DoNotOptimize(decoded.data());
  }
}
BENCHMARK(BM_TraceSerializeRoundTrip);

}  // namespace

BENCHMARK_MAIN();
