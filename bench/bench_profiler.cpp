// ChamProf overhead benchmark.
//
// Runs the same pure-engine ring workload as bench_engine twice per thread
// count: once with the profiler hooks compiled in but disabled (the null
// global — one load and branch per hook, the shipping default) and once
// with a live Profiler installed and the sampler ticking. Each
// configuration runs --repeat times and keeps the minimum wall time, so
// the reported ratio compares best-case against best-case rather than
// scheduler noise against scheduler noise. The engine digests of the off
// and on runs must match — the profiler observes the run, it must never
// change it.
//
// Results land in bench_results/BENCH_profiler.json (schema
// "chameleon.bench_profiler.v1", gated by tools/check.sh). The separate
// compiled-out configuration (-DCHAMELEON_PROF=OFF) is gated by the
// check.sh disabled-overhead leg, not here: this binary measures what
// turning the profiler ON costs, check.sh proves that leaving it OFF
// costs nothing.
//
// Usage: bench_profiler [--steps N] [--repeat R] [--smoke] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/prof/profiler.hpp"
#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"

using namespace cham;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Same shape as bench_engine's workload: ring halo exchange with a
/// periodic allreduce, per-rank message-size variation.
void ring_step(sim::Mpi& mpi, int step) {
  const int p = mpi.size();
  const sim::Rank right = (mpi.rank() + 1) % p;
  const std::size_t bytes = 1024 + 64 * static_cast<std::size_t>(mpi.rank() % 7);
  mpi.compute(1e-6 * static_cast<double>(1 + (mpi.rank() + step) % 3));
  mpi.send(right, bytes, /*tag=*/step % 16);
  mpi.recv(sim::kAnySource, bytes, step % 16);
  if (step % 8 == 7) mpi.allreduce(8);
}

struct RunResult {
  double seconds = 0.0;
  std::uint64_t digest = 0;
  std::uint64_t samples = 0;      ///< profiled runs only
  double self_seconds = 0.0;      ///< profiler's self-measured cost
};

/// Installs the global profiler for one run and guarantees removal even if
/// the run throws — a leaked global would dangle at the stack-local
/// Profiler in subsequent iterations.
class ProfilerGuard {
 public:
  explicit ProfilerGuard(obs::prof::Profiler* p) { obs::prof::set_profiler(p); }
  ~ProfilerGuard() { obs::prof::set_profiler(nullptr); }
  ProfilerGuard(const ProfilerGuard&) = delete;
  ProfilerGuard& operator=(const ProfilerGuard&) = delete;
};

RunResult run_once(int fibers, int threads, int steps, bool profiled) {
  obs::prof::Profiler prof;

  sim::EngineOptions opts;
  opts.nprocs = fibers;
  opts.stack_bytes = 64 * 1024;
  opts.threads = threads;
  sim::Engine engine(opts);

  RunResult r;
  {
    const ProfilerGuard guard(profiled ? &prof : nullptr);
    if (profiled) prof.start_sampling();
    const double t0 = now_seconds();
    engine.run([steps](sim::Mpi& mpi) {
      for (int s = 0; s < steps; ++s) ring_step(mpi, s);
    });
    r.seconds = now_seconds() - t0;
  }

  if (profiled) {
    prof.stop_sampling();
    r.samples = prof.samples_taken();
    r.self_seconds = prof.self_seconds();
  }

  for (int rank = 0; rank < fibers; ++rank) {
    std::uint64_t bits;
    const double v = engine.vtime(rank);
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    r.digest += support::mix64(bits ^ static_cast<std::uint64_t>(rank));
  }
  r.digest ^= support::mix64(engine.messages_sent());
  r.digest ^= support::mix64(engine.bytes_sent() + 1);
  r.digest ^= support::mix64(engine.collectives_run() + 2);
  return r;
}

/// Best-of-R: keeps the minimum wall time (and that run's counters).
RunResult run_best(int fibers, int threads, int steps, bool profiled,
                   int repeat) {
  RunResult best;
  for (int i = 0; i < repeat; ++i) {
    const RunResult r = run_once(fibers, threads, steps, profiled);
    if (i == 0 || r.seconds < best.seconds) best = r;
  }
  return best;
}

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  int steps = 200;
  int repeat = 3;
  int fibers = 1024;
  std::vector<int> thread_counts = {1, 4};
  std::string out_path = "bench_results/BENCH_profiler.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--steps" && i + 1 < argc) {
      steps = std::stoi(argv[++i]);
    } else if (arg == "--repeat" && i + 1 < argc) {
      repeat = std::stoi(argv[++i]);
    } else if (arg == "--smoke") {
      steps = 24;
      repeat = 2;
      fibers = 256;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_profiler [--steps N] [--repeat R] [--smoke] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  bool digests_match = true;
  support::json::Writer w;
  w.begin_object();
  w.member("schema", "chameleon.bench_profiler.v1");
  w.member("compiled_in", obs::prof::kCompiledIn);
  w.member("steps", steps);
  w.member("fibers", fibers);
  w.member("repeat", repeat);
  w.member("hardware_concurrency",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.key("results").begin_array();
  for (const int threads : thread_counts) {
    const RunResult off = run_best(fibers, threads, steps, false, repeat);
    const RunResult on = run_best(fibers, threads, steps, true, repeat);
    if (on.digest != off.digest) {
      digests_match = false;
      std::fprintf(stderr,
                   "DIGEST MISMATCH: %d threads profiled run diverges from "
                   "unprofiled baseline\n",
                   threads);
    }
    w.begin_object();
    w.member("threads", threads);
    w.key("seconds_off").raw(fixed(off.seconds, 6));
    w.key("seconds_on").raw(fixed(on.seconds, 6));
    w.key("overhead_ratio").raw(fixed(on.seconds / off.seconds, 3));
    w.member("samples", on.samples);
    w.key("profiler_self_seconds").raw(fixed(on.self_seconds, 6));
    w.member("digest_match", on.digest == off.digest);
    w.end_object();
    std::fprintf(stderr,
                 "%d threads  off %8.4fs  on %8.4fs  ratio %.3f  "
                 "(%llu samples, self %.3fms)\n",
                 threads, off.seconds, on.seconds, on.seconds / off.seconds,
                 static_cast<unsigned long long>(on.samples),
                 on.self_seconds * 1e3);
  }
  w.end_array();
  w.member("digests_match", digests_match);
  w.end_object();
  const std::string json = w.str() + "\n";

  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream file(out_path, std::ios::trunc);
    if (file) {
      file << json;
      std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", out_path.c_str());
    }
  }
  return digests_match ? 0 : 1;
}
