// ChamShard engine throughput benchmark.
//
// Drives the discrete-event engine with a pure-engine workload (ring halo
// exchange plus a periodic allreduce — no tracing tool attached, so the
// numbers isolate scheduler + matching + collective cost) at 1k/4k/16k rank
// fibers and 1/2/4/8 scheduler threads, and reports rank-timesteps per
// second for every cell of the matrix. Alongside the timings the harness
// folds each run's observable outcome (final per-rank virtual clocks and
// the engine counters) into a digest and fails if any thread count's digest
// diverges from the single-threaded baseline — a throughput number for a
// wrong answer is worthless.
//
// Results land in bench_results/BENCH_engine.json (schema
// "chameleon.bench_engine.v1", gated by tools/check.sh). The report records
// std::thread::hardware_concurrency() because speedup expectations only
// apply when the host actually has the cores: on a 1-core box the sharded
// runs still have to produce identical digests, but they are allowed to be
// slower than the single-threaded scheduler.
//
// Usage: bench_engine [--steps N] [--smoke] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

using namespace cham;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Ring halo exchange with a periodic allreduce: every timestep each rank
/// computes, sends one message around the ring, receives its neighbour's,
/// and every eighth step the whole world synchronizes. Message sizes vary
/// per rank so the net model exercises distinct latencies, keeping the
/// virtual clocks (and hence the epoch structure) non-trivial.
void ring_step(sim::Mpi& mpi, int step) {
  const int p = mpi.size();
  const sim::Rank right = (mpi.rank() + 1) % p;
  const std::size_t bytes = 1024 + 64 * static_cast<std::size_t>(mpi.rank() % 7);
  mpi.compute(1e-6 * static_cast<double>(1 + (mpi.rank() + step) % 3));
  mpi.send(right, bytes, /*tag=*/step % 16);
  mpi.recv(sim::kAnySource, bytes, step % 16);
  if (step % 8 == 7) mpi.allreduce(8);
}

struct RunResult {
  double seconds = 0.0;
  std::uint64_t digest = 0;  ///< final vtimes + counters, order-independent
  std::uint64_t epochs = 0;  ///< sharded scheduler only; 0 for FiberScheduler
};

RunResult run_once(int fibers, int threads, int steps) {
  sim::EngineOptions opts;
  opts.nprocs = fibers;
  opts.stack_bytes = 64 * 1024;  // 16k fibers at the default 256k would be 4 GiB
  opts.threads = threads;
  sim::Engine engine(opts);

  RunResult r;
  const double t0 = now_seconds();
  engine.run([steps](sim::Mpi& mpi) {
    for (int s = 0; s < steps; ++s) ring_step(mpi, s);
  });
  r.seconds = now_seconds() - t0;

  // Order-independent digest: sum of per-rank clock hashes, folded with the
  // totals the counters accumulated. Any scheduling bug that changes what
  // the simulation computed — not just when it ran — moves this value.
  for (int rank = 0; rank < fibers; ++rank) {
    std::uint64_t bits;
    const double v = engine.vtime(rank);
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    r.digest += support::mix64(bits ^ static_cast<std::uint64_t>(rank));
  }
  r.digest ^= support::mix64(engine.messages_sent());
  r.digest ^= support::mix64(engine.bytes_sent() + 1);
  r.digest ^= support::mix64(engine.collectives_run() + 2);
  return r;
}

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  int steps = 200;
  std::vector<int> fiber_counts = {1024, 4096, 16384};
  std::vector<int> thread_counts = {1, 2, 4, 8};
  std::string out_path = "bench_results/BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--steps" && i + 1 < argc) {
      steps = std::stoi(argv[++i]);
    } else if (arg == "--smoke") {
      steps = 24;
      fiber_counts = {256};
      thread_counts = {1, 2, 4};
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_engine [--steps N] [--smoke] [--out FILE]\n");
      return 2;
    }
  }

  bool deterministic = true;
  support::json::Writer w;
  w.begin_object();
  w.member("schema", "chameleon.bench_engine.v1");
  w.member("steps", steps);
  w.member("hardware_concurrency",
           static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.key("results").begin_array();
  for (const int fibers : fiber_counts) {
    double base_seconds = 0.0;
    std::uint64_t base_digest = 0;
    for (const int threads : thread_counts) {
      const RunResult r = run_once(fibers, threads, steps);
      if (threads == 1) {
        base_seconds = r.seconds;
        base_digest = r.digest;
      } else if (r.digest != base_digest) {
        deterministic = false;
        std::fprintf(stderr,
                     "DIGEST MISMATCH: %d fibers, %d threads diverges from "
                     "single-threaded baseline\n",
                     fibers, threads);
      }
      const double ranks_per_second =
          static_cast<double>(fibers) * steps / r.seconds;
      w.begin_object();
      w.member("fibers", fibers);
      w.member("threads", threads);
      w.key("seconds").raw(fixed(r.seconds, 6));
      w.key("ranks_per_second").raw(fixed(ranks_per_second, 1));
      w.key("speedup_vs_1thread").raw(fixed(base_seconds / r.seconds, 2));
      w.end_object();
      std::fprintf(stderr, "%6d fibers  %d threads  %9.4fs  %12.0f ranks/s\n",
                   fibers, threads, r.seconds, ranks_per_second);
    }
  }
  w.end_array();
  w.member("deterministic", deterministic);
  w.end_object();
  const std::string json = w.str() + "\n";

  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream file(out_path, std::ios::trunc);
    if (file) {
      file << json;
      std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "warning: cannot write %s\n", out_path.c_str());
    }
  }
  return deterministic ? 0 : 1;
}
