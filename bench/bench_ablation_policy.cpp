// Ablation: lead-selection policy (Algorithm 2's pluggable clustering).
//
// The paper's predecessors compared K-medoid and K-farthest and found
// trace accuracy "very close"; Chameleon therefore lets users pick any
// policy. This ablation re-checks the claim: replay accuracy and overhead
// for k-farthest / k-medoid / k-random on LU and BT.
#include <cstdio>

#include "harness/experiment.hpp"
#include "replay/replayer.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace cham;
  using bench::RunConfig;
  using bench::ToolKind;

  const int p = std::min(64, bench::bench_max_p());

  support::Table table("Ablation: lead-selection policy (Algorithm 2)");
  table.header({"Pgm", "policy", "eff. K", "overhead [s]", "replay ACC"});
  support::CsvWriter csv({"workload", "policy", "k", "overhead", "acc"});

  for (const char* workload : {"lu", "bt"}) {
    RunConfig base;
    base.workload = workload;
    base.nprocs = p;
    base.params.cls = 'B';
    base.params.timesteps = bench::scaled_steps(60);
    base.cham.k = workload[0] == 'l' ? 9 : 3;
    base.cham.call_frequency = 5;

    const auto app = bench::run_experiment(ToolKind::kNone, base);

    for (auto policy :
         {cluster::SelectPolicy::kFarthest, cluster::SelectPolicy::kMedoid,
          cluster::SelectPolicy::kRandom}) {
      RunConfig config = base;
      config.cham.policy = policy;
      config.cham.seed = 1234;
      const auto ch = bench::run_experiment(ToolKind::kChameleon, config);
      const auto replayed = replay::replay_trace(ch.trace, {.nprocs = p});
      const double acc = replay::replay_accuracy(app.app_vtime, replayed.vtime);
      table.row({workload, cluster::policy_name(policy),
                 support::Table::num(static_cast<std::uint64_t>(ch.effective_k)),
                 support::Table::num(ch.tool_cpu_seconds, 4),
                 support::Table::percent(acc, 2)});
      csv.row({workload, cluster::policy_name(policy),
               std::to_string(ch.effective_k),
               std::to_string(ch.tool_cpu_seconds), std::to_string(acc)});
    }
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "(expected: k-farthest ~ k-medoid, confirming the paper; k-random can"
      " collapse when a randomly chosen lead misrepresents the geometry"
      " groups merged into its cluster)");
  bench::save_csv("ablation_policy", csv.content());
  return 0;
}
