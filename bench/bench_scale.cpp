// ChamScale weak-scaling benchmark: the clustering protocol at 1k-64k ranks.
//
// Runs the lu workload (weak scaling: per-rank problem size fixed) under the
// full Chameleon protocol on the sharded engine and reports wall time and
// peak RSS per rank count, plus the intern-table/dedup telemetry that
// explains the scaling (docs/PERF.md "64k memory budget"). Results land in
// bench_results/BENCH_scale.json (schema chameleon.bench_scale.v1), gated
// by tools/check.sh.
//
// Each rank count runs in a child process (`--row P`) so ru_maxrss is that
// row's peak RSS, not the high-water mark of whichever row ran first. At
// rank counts <= 1024 the driver also runs a `--off` child with every
// ChamScale optimization disabled (the seed code paths) and requires the
// FNV-64 digests of the cluster table and the online-trace structural
// projection to match exactly — the cross-process form of the byte-identity
// contract the `ctest -L scale` differential suite pins in-process.
//
// Usage: bench_scale [--smoke] [--out FILE] [--ranks CSV] [--threads N]
//                    [--steps N] [--row P [--off]]
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/chameleon.hpp"
#include "sim/engine.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"
#include "trace/ranklist.hpp"
#include "trace/scale.hpp"
#include "trace/serialize.hpp"
#include "workloads/workload.hpp"

using namespace cham;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t digest(const std::vector<std::uint8_t>& bytes) {
  return support::fnv1a64(bytes.data(), bytes.size());
}

struct RowResult {
  int nprocs = 0;
  int threads = 0;
  bool scale_on = true;
  double wall_seconds = 0.0;
  long max_rss_kb = 0;
  std::uint64_t table_digest = 0;
  std::uint64_t structure_digest = 0;
  std::uint64_t events_recorded = 0;
  std::uint64_t merge_operations = 0;
  std::uint64_t merge_zip_hits = 0;
  std::size_t clusters = 0;
  std::size_t intern_entries = 0;
  std::size_t intern_arena_kb = 0;
  std::size_t union_memo_hits = 0;
};

/// One full protocol run. The timed region covers engine construction
/// through finalize — the whole instrumented lifetime a real deployment
/// would pay for.
RowResult run_row(int nprocs, int threads, int steps, bool scale_on) {
  trace::set_scale_options(scale_on ? trace::kScaleAllOn
                                    : trace::kScaleAllOff);
  const workloads::WorkloadInfo* info = workloads::find_workload("lu");
  if (info == nullptr) {
    std::fprintf(stderr, "lu workload missing\n");
    std::exit(2);
  }
  workloads::WorkloadParams params;
  params.cls = 'C';
  params.timesteps = steps;
  params.weak = true;

  core::ChameleonConfig cham;
  cham.k = info->default_k;

  const double t0 = now_seconds();
  sim::Engine engine({.nprocs = nprocs, .threads = threads});
  trace::CallSiteRegistry stacks(nprocs);
  core::ChameleonTool tool(nprocs, &stacks, cham);
  engine.set_tool(&tool);
  engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });

  RowResult row;
  row.wall_seconds = now_seconds() - t0;
  row.nprocs = nprocs;
  row.threads = threads;
  row.scale_on = scale_on;
  row.table_digest = digest(tool.clusters().encode());
  row.structure_digest =
      digest(trace::encode_trace_structure(tool.online_trace()));
  row.events_recorded = tool.perf_counters().folds_performed;
  row.merge_operations = tool.merge_operations();
  row.merge_zip_hits = tool.perf_counters().merge_zip_hits;
  row.clusters = tool.clusters().total_clusters();
  const trace::RankListInternStats intern = trace::ranklist_intern_stats();
  row.intern_entries = intern.entries;
  row.intern_arena_kb = intern.arena_bytes / 1024;
  row.union_memo_hits = intern.union_memo_hits;

  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  row.max_rss_kb = usage.ru_maxrss;  // KB on Linux
  return row;
}

void print_row(const RowResult& row) {
  support::json::Writer w(/*pretty=*/false);
  w.begin_object();
  w.member("nprocs", row.nprocs);
  w.member("threads", row.threads);
  w.member("scale_on", row.scale_on);
  w.key("wall_seconds").raw(fixed(row.wall_seconds, 3));
  w.member("max_rss_kb", static_cast<std::int64_t>(row.max_rss_kb));
  w.member("table_digest", hex64(row.table_digest));
  w.member("structure_digest", hex64(row.structure_digest));
  w.member("events_recorded", row.events_recorded);
  w.member("merge_operations", row.merge_operations);
  w.member("merge_zip_hits", row.merge_zip_hits);
  w.member("clusters", static_cast<std::uint64_t>(row.clusters));
  w.member("intern_entries", static_cast<std::uint64_t>(row.intern_entries));
  w.member("intern_arena_kb",
           static_cast<std::uint64_t>(row.intern_arena_kb));
  w.member("union_memo_hits",
           static_cast<std::uint64_t>(row.union_memo_hits));
  w.end_object();
  std::printf("%s\n", w.str().c_str());
}

/// Run one row in a child process (clean per-row peak RSS) and parse the
/// fields the driver needs back out of its single-line JSON.
std::optional<RowResult> spawn_row(const std::string& self, int nprocs,
                                   int threads, int steps, bool scale_on) {
  std::ostringstream cmd;
  cmd << '"' << self << "\" --row " << nprocs << " --threads " << threads
      << " --steps " << steps;
  if (!scale_on) cmd << " --off";
  FILE* pipe = popen(cmd.str().c_str(), "r");
  if (pipe == nullptr) return std::nullopt;
  std::string output;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) output += buf;
  const int status = pclose(pipe);
  if (status != 0) {
    std::fprintf(stderr, "row P=%d failed (status %d):\n%s", nprocs, status,
                 output.c_str());
    return std::nullopt;
  }
  support::json::Value doc;
  std::string error;
  if (!support::json::parse(output, &doc, &error) || !doc.is_object()) {
    std::fprintf(stderr, "row P=%d produced unparseable JSON: %s\n", nprocs,
                 error.c_str());
    return std::nullopt;
  }
  RowResult row;
  const auto u64_field = [&](const char* name) -> std::uint64_t {
    const support::json::Value* v = doc.find(name);
    return v != nullptr ? static_cast<std::uint64_t>(v->as_number()) : 0;
  };
  const auto hex_field = [&](const char* name) -> std::uint64_t {
    const support::json::Value* v = doc.find(name);
    if (v == nullptr) return 0;
    return std::strtoull(v->as_string().c_str(), nullptr, 16);
  };
  row.nprocs = nprocs;
  row.threads = threads;
  row.scale_on = scale_on;
  const support::json::Value* wall = doc.find("wall_seconds");
  row.wall_seconds = wall != nullptr ? wall->as_number() : 0.0;
  row.max_rss_kb = static_cast<long>(u64_field("max_rss_kb"));
  row.table_digest = hex_field("table_digest");
  row.structure_digest = hex_field("structure_digest");
  row.events_recorded = u64_field("events_recorded");
  row.merge_operations = u64_field("merge_operations");
  row.merge_zip_hits = u64_field("merge_zip_hits");
  row.clusters = u64_field("clusters");
  row.intern_entries = u64_field("intern_entries");
  row.intern_arena_kb = u64_field("intern_arena_kb");
  row.union_memo_hits = u64_field("union_memo_hits");
  return row;
}

void write_json_row(support::json::Writer& w, const RowResult& row) {
  w.begin_object();
  w.member("nprocs", row.nprocs);
  w.member("threads", row.threads);
  w.key("wall_seconds").raw(fixed(row.wall_seconds, 3));
  w.member("max_rss_kb", static_cast<std::int64_t>(row.max_rss_kb));
  w.key("rss_bytes_per_rank")
      .raw(fixed(1024.0 * static_cast<double>(row.max_rss_kb) /
                     static_cast<double>(row.nprocs),
                 1));
  w.member("table_digest", hex64(row.table_digest));
  w.member("structure_digest", hex64(row.structure_digest));
  w.member("events_recorded", row.events_recorded);
  w.member("merge_operations", row.merge_operations);
  w.member("merge_zip_hits", row.merge_zip_hits);
  w.member("clusters", static_cast<std::uint64_t>(row.clusters));
  w.member("intern_entries", static_cast<std::uint64_t>(row.intern_entries));
  w.member("intern_arena_kb",
           static_cast<std::uint64_t>(row.intern_arena_kb));
  w.member("union_memo_hits",
           static_cast<std::uint64_t>(row.union_memo_hits));
  w.end_object();
}

std::vector<int> parse_ranks(const std::string& csv) {
  std::vector<int> out;
  std::istringstream is(csv);
  std::string tok;
  while (std::getline(is, tok, ',')) out.push_back(std::stoi(tok));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> ranks = {1024, 4096, 16384, 65536};
  std::string out_path = "bench_results/BENCH_scale.json";
  int threads = 4;  // the sharded engine is the deployment target
  int steps = 4;
  std::optional<int> row_nprocs;
  bool row_on = true;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--row" && i + 1 < argc) {
      row_nprocs = std::stoi(argv[++i]);
    } else if (arg == "--off") {
      row_on = false;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::stoi(argv[++i]);
    } else if (arg == "--steps" && i + 1 < argc) {
      steps = std::stoi(argv[++i]);
    } else if (arg == "--ranks" && i + 1 < argc) {
      ranks = parse_ranks(argv[++i]);
    } else if (arg == "--smoke") {
      smoke = true;
      ranks = {256, 1024};
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_scale [--smoke] [--out FILE] [--ranks CSV] "
                   "[--threads N] [--steps N] [--row P [--off]]\n");
      return 2;
    }
  }

  if (row_nprocs.has_value()) {
    print_row(run_row(*row_nprocs, threads, steps, row_on));
    return 0;
  }

  const std::string self = argv[0];
  std::vector<RowResult> rows;
  bool identical = true;
  for (const int p : ranks) {
    std::fprintf(stderr, "bench_scale: P=%d threads=%d steps=%d...\n", p,
                 threads, steps);
    const std::optional<RowResult> on =
        spawn_row(self, p, threads, steps, /*scale_on=*/true);
    if (!on.has_value()) return 1;
    rows.push_back(*on);
    // Differential leg: the seed (all-OFF) code paths must produce the
    // same cluster table and online-trace structure. Dense ranklists make
    // the OFF run O(P^2) in places, so the contract is checked at <= 1k
    // ranks (the "1k ranks-equivalent" identity check); the in-process
    // `ctest -L scale` suite covers the same property per component.
    if (p <= 1024) {
      const std::optional<RowResult> off =
          spawn_row(self, p, threads, steps, /*scale_on=*/false);
      if (!off.has_value()) return 1;
      const bool same = off->table_digest == on->table_digest &&
                        off->structure_digest == on->structure_digest &&
                        off->events_recorded == on->events_recorded &&
                        off->merge_operations == on->merge_operations;
      if (!same) {
        std::fprintf(stderr,
                     "bench_scale: ON/OFF divergence at P=%d "
                     "(table %s vs %s, structure %s vs %s)\n",
                     p, hex64(on->table_digest).c_str(),
                     hex64(off->table_digest).c_str(),
                     hex64(on->structure_digest).c_str(),
                     hex64(off->structure_digest).c_str());
        identical = false;
      }
    }
  }

  support::json::Writer w;
  w.begin_object();
  w.member("schema", "chameleon.bench_scale.v1");
  w.member("workload", "lu");
  w.member("weak_scaling", true);
  w.member("steps", steps);
  w.member("threads", threads);
  w.member("smoke", smoke);
  w.member("baseline_identical", identical);
  w.key("rows").begin_array();
  for (const RowResult& row : rows) write_json_row(w, row);
  w.end_array();
  w.end_object();

  const std::string doc = w.str();
  std::printf("%s\n", doc.c_str());
  if (out_path != "-") {
    if (FILE* f = std::fopen(out_path.c_str(), "w"); f != nullptr) {
      std::fputs(doc.c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "bench_scale: cannot write %s\n",
                   out_path.c_str());
    }
  }
  return identical ? 0 : 1;
}
