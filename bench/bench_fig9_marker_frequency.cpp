// Figure 9: Chameleon overhead vs. number of processed marker calls —
// LU class D, P=1024.
//
// Call_Frequency sweeps the number of processed markers from a handful up
// to one per timestep (300). Expected shape: overhead rises with marker
// calls, maxing out at 300, yet stays an order of magnitude below
// ScalaTrace's.
#include <cstdio>

#include "harness/experiment.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace cham;
  using bench::RunConfig;
  using bench::ToolKind;

  const int p = std::min(1024, bench::bench_max_p());
  const int steps = bench::scaled_steps(300);

  support::Table table("Figure 9: overhead vs # marker calls, LU class D");
  table.header({"#Marker calls", "Chameleon [s]", "clustering [s]",
                "inter [s]"});
  support::CsvWriter csv({"calls", "chameleon", "clustering", "inter"});

  RunConfig base;
  base.workload = "lu";
  base.nprocs = p;
  base.params.cls = 'D';
  base.params.timesteps = steps;
  base.cham.k = 9;

  for (int calls : {steps / 20, steps / 10, steps / 4, steps / 2, steps}) {
    if (calls < 1) continue;
    RunConfig config = base;
    config.cham.call_frequency = std::max(1, steps / calls);
    const auto ch = bench::run_experiment(ToolKind::kChameleon, config);
    table.row({support::Table::num(ch.markers_processed),
               support::Table::num(ch.overhead_seconds, 4),
               support::Table::num(ch.clustering_seconds, 4),
               support::Table::num(ch.inter_seconds, 4)});
    csv.row({std::to_string(ch.markers_processed),
             std::to_string(ch.overhead_seconds),
             std::to_string(ch.clustering_seconds),
             std::to_string(ch.inter_seconds)});
  }

  const auto st = bench::run_experiment(ToolKind::kScalaTrace, base);
  table.row({"(ScalaTrace ref)", support::Table::num(st.overhead_seconds, 4),
             "-", support::Table::num(st.inter_seconds, 4)});

  std::fputs(table.render().c_str(), stdout);
  bench::save_csv("fig9_marker_frequency", csv.content());
  return 0;
}
