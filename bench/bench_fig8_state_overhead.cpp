// Figure 8: time per clustering state under the maximum number of marker
// calls (one per timestep), P=1024 — Chameleon (CH) vs ScalaTrace (ST).
//
// Expected shape: even at one marker per timestep, Chameleon's clustering
// plus online inter-compression stays an order of magnitude below
// ScalaTrace's finalize-time merge (Observation 6). For EMF the paper
// reports the tuple in text: CH (clustering 0.46%, inter 0.11%) vs
// ST (0%, 0.53%) of total tracing cost.
#include <cstdio>

#include "harness/experiment.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace cham;
  using bench::RunConfig;
  using bench::ToolKind;

  struct Bench {
    const char* workload;
    int paper_steps;
    std::size_t k;
    bool emf;
  };
  const Bench benches[] = {
      {"bt", 250, 3, false},     {"lu", 300, 9, false},
      {"sp", 500, 3, false},     {"pop", 20, 3, false},
      {"sweep3d", 10, 9, false}, {"emf", 0, 2, true},
  };
  const int p_target = std::min(1024, bench::bench_max_p());

  support::Table table(
      "Figure 8: per-state tool CPU [secs], max marker calls");
  table.header({"Pgm", "P", "CH:AT", "CH:C", "CH:L", "CH:F", "CH total",
                "ST total (F)"});
  support::CsvWriter csv({"workload", "p", "ch_at", "ch_c", "ch_l", "ch_f",
                          "ch_total", "st_total"});

  for (const Bench& bench : benches) {
    const int p = bench.emf ? std::min(1001, bench::bench_max_p()) : p_target;
    RunConfig config;
    config.workload = bench.workload;
    config.nprocs = p;
    config.params.cls = 'D';
    config.params.timesteps =
        bench.emf ? std::max(1, 36000 / (p - 1) / bench::bench_step_divisor())
                  : bench::scaled_steps(bench.paper_steps);
    config.cham.k = bench.k;
    config.cham.call_frequency = 1;  // marker processed at every timestep

    const auto ch = bench::run_experiment(ToolKind::kChameleon, config);
    const auto st = bench::run_experiment(ToolKind::kScalaTrace, config);

    table.row({bench.workload, support::Table::num(static_cast<std::uint64_t>(p)),
               support::Table::num(ch.state_seconds[0], 4),
               support::Table::num(ch.state_seconds[1], 4),
               support::Table::num(ch.state_seconds[2], 4),
               support::Table::num(ch.state_seconds[3], 4),
               support::Table::num(ch.overhead_seconds, 4),
               support::Table::num(st.overhead_seconds, 4)});
    csv.row({bench.workload, std::to_string(p),
             std::to_string(ch.state_seconds[0]),
             std::to_string(ch.state_seconds[1]),
             std::to_string(ch.state_seconds[2]),
             std::to_string(ch.state_seconds[3]),
             std::to_string(ch.overhead_seconds),
             std::to_string(st.overhead_seconds)});
  }

  std::fputs(table.render().c_str(), stdout);
  bench::save_csv("fig8_state_overhead", csv.content());
  return 0;
}
