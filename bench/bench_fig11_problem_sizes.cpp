// Figure 11: overhead per method vs. input problem size — LU classes
// A/B/C/D, P=256, maximum marker-call count.
//
// Expected shape (Observation 8): overhead grows with the timestep count
// and class, but Chameleon stays an order of magnitude below ScalaTrace
// for every input size.
#include <cstdio>

#include "harness/experiment.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace cham;
  using bench::RunConfig;
  using bench::ToolKind;

  const int p = std::min(256, bench::bench_max_p());

  support::Table table(
      "Figure 11: overhead per method vs input class, LU, P=256");
  table.header({"Class", "#Steps", "CH:AT", "CH:C", "CH:L", "CH:F",
                "CH total", "ST total"});
  support::CsvWriter csv({"class", "steps", "ch_at", "ch_c", "ch_l", "ch_f",
                          "ch_total", "st_total"});

  for (char cls : {'A', 'B', 'C', 'D'}) {
    RunConfig config;
    config.workload = "lu";
    config.nprocs = p;
    config.params.cls = cls;
    config.params.timesteps =
        bench::scaled_steps(cls == 'D' ? 300 : 250);
    config.cham.k = 9;
    config.cham.call_frequency = 1;

    const auto ch = bench::run_experiment(ToolKind::kChameleon, config);
    const auto st = bench::run_experiment(ToolKind::kScalaTrace, config);

    table.row({std::string(1, cls),
               support::Table::num(static_cast<std::uint64_t>(config.params.timesteps)),
               support::Table::num(ch.state_seconds[0], 4),
               support::Table::num(ch.state_seconds[1], 4),
               support::Table::num(ch.state_seconds[2], 4),
               support::Table::num(ch.state_seconds[3], 4),
               support::Table::num(ch.overhead_seconds, 4),
               support::Table::num(st.overhead_seconds, 4)});
    csv.row({std::string(1, cls), std::to_string(config.params.timesteps),
             std::to_string(ch.state_seconds[0]),
             std::to_string(ch.state_seconds[1]),
             std::to_string(ch.state_seconds[2]),
             std::to_string(ch.state_seconds[3]),
             std::to_string(ch.overhead_seconds),
             std::to_string(st.overhead_seconds)});
  }

  std::fputs(table.render().c_str(), stdout);
  bench::save_csv("fig11_problem_sizes", csv.content());
  return 0;
}
