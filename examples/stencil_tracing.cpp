// Example: trace a 2-D wavefront stencil (LU-style) under all three tools
// and compare what each one costs and produces.
//
// Demonstrates:
//   * running the same workload uninstrumented / ScalaTrace / ACURDION /
//     Chameleon,
//   * the cluster geometry a non-periodic 2-D grid induces (corners,
//     edges, interior -> up to 9 clusters),
//   * the trace-size and merge-work contrast between the tools.
#include <cstdio>

#include "core/acurdion.hpp"
#include "core/chameleon.hpp"
#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "trace/serialize.hpp"
#include "workloads/workload.hpp"

using namespace cham;

namespace {

struct ToolReport {
  const char* name;
  double agg_wallclock;
  std::uint64_t merges;
  std::size_t trace_bytes;
};

}  // namespace

int main() {
  constexpr int kProcs = 16;
  const workloads::WorkloadInfo* lu = workloads::find_workload("lu");
  workloads::WorkloadParams params{.cls = 'A', .timesteps = 20};

  auto run = [&](sim::Tool* tool, trace::CallSiteRegistry& stacks) {
    sim::Engine engine({.nprocs = kProcs});
    engine.set_tool(tool);
    engine.run([&](sim::Mpi& mpi) { lu->run(mpi, stacks, params); });
    return engine.vtime_sum();
  };

  trace::CallSiteRegistry plain_stacks(kProcs);
  const double app_agg = run(nullptr, plain_stacks);

  trace::CallSiteRegistry st_stacks(kProcs);
  trace::ScalaTraceTool scalatrace(kProcs, &st_stacks);
  const double st_agg = run(&scalatrace, st_stacks);

  trace::CallSiteRegistry ac_stacks(kProcs);
  core::AcurdionTool acurdion(kProcs, &ac_stacks, {.k = 9});
  const double ac_agg = run(&acurdion, ac_stacks);

  trace::CallSiteRegistry ch_stacks(kProcs);
  core::ChameleonTool chameleon(kProcs, &ch_stacks, {.k = 9});
  const double ch_agg = run(&chameleon, ch_stacks);

  const ToolReport reports[] = {
      {"ScalaTrace", st_agg - app_agg, scalatrace.merge_operations(),
       trace::encode_trace(scalatrace.global_trace()).size()},
      {"ACURDION", ac_agg - app_agg, acurdion.merge_operations(),
       trace::encode_trace(acurdion.global_trace()).size()},
      {"Chameleon", ch_agg - app_agg, chameleon.merge_operations(),
       trace::encode_trace(chameleon.online_trace()).size()},
  };

  std::printf("LU wavefront on a 4x4 grid, %d timesteps (class A skeleton)\n",
              params.timesteps);
  std::printf("aggregated app time: %.3f s (over %d ranks)\n\n", app_agg,
              kProcs);
  std::printf("%-12s %-22s %-12s %s\n", "tool", "aggregated overhead [s]",
              "merge ops", "global trace bytes");
  for (const auto& report : reports) {
    std::printf("%-12s %-22.4f %-12llu %zu\n", report.name,
                report.agg_wallclock,
                static_cast<unsigned long long>(report.merges),
                report.trace_bytes);
  }

  std::printf("\nChameleon found %zu Call-Path group(s), %zu cluster(s):\n",
              chameleon.clusters().num_callpaths(),
              chameleon.clusters().total_clusters());
  std::printf("%s", chameleon.clusters().to_string().c_str());
  return 0;
}
