// Example: master/worker pipeline (the paper's ElasticMedFlow scenario).
//
// Demonstrates:
//   * wildcard receives and absolute-endpoint hints (the mpi4py-level
//     adaptation the paper made for EMF),
//   * dynamic K growth: with budget K=1, Chameleon still keeps one lead
//     per Call-Path so neither the master's nor the workers' events are
//     lost,
//   * replaying the clustered trace and checking its timing accuracy.
#include <cstdio>

#include "core/chameleon.hpp"
#include "replay/replayer.hpp"
#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "workloads/workload.hpp"

using namespace cham;

int main() {
  constexpr int kProcs = 12;  // 1 master + 11 workers
  const workloads::WorkloadInfo* emf = workloads::find_workload("emf");
  workloads::WorkloadParams params{.timesteps = 24};

  // Uninstrumented reference run.
  double app_time = 0;
  {
    sim::Engine engine({.nprocs = kProcs});
    trace::CallSiteRegistry stacks(kProcs);
    engine.run([&](sim::Mpi& mpi) { emf->run(mpi, stacks, params); });
    app_time = engine.max_vtime();
  }

  // Traced run with a deliberately tight budget: K=1 must still grow to 2.
  sim::Engine engine({.nprocs = kProcs});
  trace::CallSiteRegistry stacks(kProcs);
  core::ChameleonTool chameleon(kProcs, &stacks, {.k = 1});
  engine.set_tool(&chameleon);
  engine.run([&](sim::Mpi& mpi) { emf->run(mpi, stacks, params); });

  std::printf("EMF pipeline: %d ranks, %d dispatch iterations\n", kProcs,
              params.timesteps);
  std::printf("Call-Path groups: %zu (master + workers)\n",
              chameleon.clusters().num_callpaths());
  std::printf("clusters kept (requested K=1, dynamic growth): %zu\n",
              chameleon.effective_k());
  std::printf("%s\n", chameleon.clusters().to_string().c_str());

  // Replay the online trace on all ranks: workers re-interpret the lead
  // worker's trace, with the master endpoint staying absolute.
  const auto replayed =
      replay::replay_trace(chameleon.online_trace(), {.nprocs = kProcs});
  const double acc = replay::replay_accuracy(app_time, replayed.vtime);
  std::printf("application time : %.4f s\n", app_time);
  std::printf("replayed time    : %.4f s\n", replayed.vtime);
  std::printf("accuracy         : %.2f%% (paper reports 87%% for EMF)\n",
              acc * 100.0);
  std::printf("events replayed  : %llu, messages: %llu\n",
              static_cast<unsigned long long>(replayed.events_replayed),
              static_cast<unsigned long long>(replayed.messages));
  return 0;
}
