// Quickstart: trace a tiny SPMD program with Chameleon and print the
// online trace plus the clustering decisions.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/chameleon.hpp"
#include "sim/engine.hpp"
#include "sim/mpi.hpp"

using namespace cham;

int main() {
  constexpr int kProcs = 8;
  constexpr int kSteps = 12;

  // 1. The runtime: every MPI rank is a fiber of this engine.
  sim::Engine engine({.nprocs = kProcs});

  // 2. Shadow call stacks: workloads brand call sites so the tracer can
  //    compute ScalaTrace-style stack signatures.
  trace::CallSiteRegistry stacks(kProcs);

  // 3. The tool: Chameleon with a budget of 3 clusters, processing every
  //    marker call.
  core::ChameleonTool chameleon(kProcs, &stacks, {.k = 3});
  engine.set_tool(&chameleon);

  // 4. The application: a ring exchange with a compute phase per timestep
  //    and a marker at each timestep boundary.
  engine.run([&](sim::Mpi& mpi) {
    trace::CallScope main_scope(stacks.stack(mpi.rank()), "main");
    for (int step = 0; step < kSteps; ++step) {
      trace::CallScope loop_scope(stacks.stack(mpi.rank()), "main.timestep");
      const sim::Rank next = (mpi.rank() + 1) % mpi.size();
      const sim::Rank prev = (mpi.rank() + mpi.size() - 1) % mpi.size();
      mpi.compute(0.002);
      mpi.isend(next, /*bytes=*/4096, /*tag=*/1);
      mpi.recv(prev, 4096, 1);
      mpi.allreduce(8);
      mpi.marker();  // Chameleon's interim execution point
    }
  });

  // 5. Results: cluster structure, state machine counters, online trace.
  std::printf("=== clusters (K=%zu effective) ===\n%s\n",
              chameleon.effective_k(), chameleon.clusters().to_string().c_str());
  std::printf("=== transition graph ===\n");
  std::printf("markers processed: %llu\n",
              static_cast<unsigned long long>(chameleon.marker_calls_processed()));
  for (auto state :
       {core::MarkerState::kAllTracing, core::MarkerState::kClustering,
        core::MarkerState::kLead, core::MarkerState::kFinal}) {
    std::printf("  %-3s: %llu\n", core::marker_state_name(state),
                static_cast<unsigned long long>(chameleon.state_count(state)));
  }
  std::printf("\n=== online trace (built incrementally at rank 0) ===\n%s",
              trace::format_trace(chameleon.online_trace()).c_str());
  return 0;
}
