// Example: end-to-end trace -> file -> replay round trip.
//
// Demonstrates:
//   * serializing a Chameleon online trace to a file (the trace artifact a
//     user would archive),
//   * loading it back and replaying it at the original scale,
//   * the accuracy metric ACC = 1 - |t - t'|/t from the paper.
#include <cstdio>
#include <fstream>
#include <vector>

#include "core/chameleon.hpp"
#include "replay/replayer.hpp"
#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "trace/serialize.hpp"
#include "workloads/workload.hpp"

using namespace cham;

int main() {
  constexpr int kProcs = 32;
  const workloads::WorkloadInfo* sweep = workloads::find_workload("sweep3d");
  workloads::WorkloadParams params{.cls = 'A', .timesteps = 6};

  // Reference run.
  double app_time = 0;
  {
    sim::Engine engine({.nprocs = kProcs});
    trace::CallSiteRegistry stacks(kProcs);
    engine.run([&](sim::Mpi& mpi) { sweep->run(mpi, stacks, params); });
    app_time = engine.max_vtime();
  }

  // Traced run.
  std::vector<std::uint8_t> wire;
  {
    sim::Engine engine({.nprocs = kProcs});
    trace::CallSiteRegistry stacks(kProcs);
    core::ChameleonTool chameleon(kProcs, &stacks, {.k = 9});
    engine.set_tool(&chameleon);
    engine.run([&](sim::Mpi& mpi) { sweep->run(mpi, stacks, params); });
    wire = trace::encode_trace(chameleon.online_trace());
  }

  // Write the trace artifact and read it back, as a user workflow would.
  const char* path = "sweep3d_online.trace";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(wire.data()),
              static_cast<std::streamsize>(wire.size()));
  }
  std::vector<std::uint8_t> loaded;
  {
    std::ifstream in(path, std::ios::binary);
    loaded.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
  }
  const auto trace_nodes = trace::decode_trace(loaded);
  std::printf("trace file %s: %zu bytes, %zu top-level nodes\n", path,
              loaded.size(), trace_nodes.size());

  // Replay.
  const auto replayed = replay::replay_trace(trace_nodes, {.nprocs = kProcs});
  std::printf("application time : %.4f s\n", app_time);
  std::printf("replayed time    : %.4f s\n", replayed.vtime);
  std::printf("accuracy (ACC)   : %.2f%% (paper: 98.32%% for Sweep3D)\n",
              replay::replay_accuracy(app_time, replayed.vtime) * 100.0);
  std::remove(path);
  return 0;
}
