#!/usr/bin/env bash
# Full verification sweep: builds the tree in three configurations and runs
# the complete test suite in each.
#
#   1. Release          — the shipping configuration
#   2. ASan + UBSan     — memory and UB errors (fiber unwinding, wire decoding)
#   3. Werror           — warning-clean build enforced
#
# Usage: tools/check.sh [jobs]
# Build trees live under build-check/ (gitignored).

set -euo pipefail

jobs=${1:-2}
root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"

run_config() {
  local name=$1
  shift
  local dir="build-check/$name"
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] test ==="
  (cd "$dir" && ctest --output-on-failure -j "$jobs")
}

run_config release -DCMAKE_BUILD_TYPE=Release
run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCHAMELEON_ASAN=ON -DCHAMELEON_UBSAN=ON

# Fault matrix: replay the fault-labelled slice (injected crashes, drops,
# failover, the chamlint smoke) under ASan+UBSan with rotating base seeds —
# fiber cancellation and the salvage/retry paths are exactly where memory
# bugs would hide. Override the seed list with CHAMELEON_FAULT_SEEDS.
for seed in ${CHAMELEON_FAULT_SEEDS:-1 11 29}; do
  echo "=== [sanitize] fault matrix, seed $seed ==="
  (cd build-check/sanitize &&
    CHAMELEON_FAULT_SEED="$seed" ctest -L fault --output-on-failure -j "$jobs")
done

run_config werror -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCHAMELEON_WERROR=ON

# Hot-path benchmark smoke (release build): baseline and optimized runs must
# produce byte-identical traces, and the JSON report must carry the schema
# keys docs/PERF.md documents. Thresholded speedups are a full-scale,
# quiet-machine measurement — run `bench_hotpath` without --smoke for those.
echo "=== [release] bench_hotpath smoke ==="
smoke_json="build-check/release/bench_smoke.json"
build-check/release/bench/bench_hotpath --smoke --out "$smoke_json" >/dev/null
for key in '"schema": "chameleon.bench_hotpath.v1"' '"append_fold"' \
           '"inter_merge"' '"encode_decode"' '"counters"' \
           '"byte_identical": true'; do
  grep -qF "$key" "$smoke_json" ||
    { echo "bench_hotpath smoke: missing $key in $smoke_json" >&2; exit 1; }
done

# ChamScope smoke (release build): a real workload run with the timeline
# tracer and metrics registry enabled must produce documents that the
# bundled validators accept, and the cluster-evolution report must render.
echo "=== [release] chamscope smoke ==="
obs_dir="build-check/release/obs-smoke"
mkdir -p "$obs_dir"
chamtrace=build-check/release/tools/chamtrace
"$chamtrace" run --workload lu --procs 16 --steps 8 --freq 1 \
  --timeline "$obs_dir/timeline.json" \
  --metrics-out "$obs_dir/metrics.json" >/dev/null
"$chamtrace" validate --timeline "$obs_dir/timeline.json" \
  --metrics "$obs_dir/metrics.json"
"$chamtrace" report --workload lu --procs 16 --steps 8 --freq 1 \
  --format json --out "$obs_dir/report.json" >/dev/null
grep -qF '"schema": "chameleon.report.v1"' "$obs_dir/report.json" ||
  { echo "chamscope smoke: bad report schema in $obs_dir/report.json" >&2
    exit 1; }

echo "=== all configurations green ==="
