#!/usr/bin/env bash
# Full verification sweep: builds the tree in three configurations and runs
# the complete test suite in each.
#
#   1. Release          — the shipping configuration
#   2. ASan + UBSan     — memory and UB errors (fiber unwinding, wire decoding)
#   3. Werror           — warning-clean build enforced
#
# Usage: tools/check.sh [jobs]
# Build trees live under build-check/ (gitignored).

set -euo pipefail

jobs=${1:-2}
root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"

run_config() {
  local name=$1
  shift
  local dir="build-check/$name"
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] test ==="
  (cd "$dir" && ctest --output-on-failure -j "$jobs")
}

run_config release -DCMAKE_BUILD_TYPE=Release
run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCHAMELEON_ASAN=ON -DCHAMELEON_UBSAN=ON

# Fault matrix: replay the fault-labelled slice (injected crashes, drops,
# failover, the chamlint smoke) under ASan+UBSan with rotating base seeds —
# fiber cancellation and the salvage/retry paths are exactly where memory
# bugs would hide. Override the seed list with CHAMELEON_FAULT_SEEDS.
for seed in ${CHAMELEON_FAULT_SEEDS:-1 11 29}; do
  echo "=== [sanitize] fault matrix, seed $seed ==="
  (cd build-check/sanitize &&
    CHAMELEON_FAULT_SEED="$seed" ctest -L fault --output-on-failure -j "$jobs")
done

run_config werror -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCHAMELEON_WERROR=ON

echo "=== all configurations green ==="
