#!/usr/bin/env bash
# Full verification sweep: builds the tree in three configurations and runs
# the complete test suite in each.
#
#   1. Release          — the shipping configuration
#   2. ASan + UBSan     — memory and UB errors (fiber unwinding, wire decoding)
#   3. TSan             — the race- and engine-labelled slices (ChamRace
#                         analyzer tests, the ChamShard sharded scheduler)
#                         under ThreadSanitizer; CHAM_TSAN also enables the
#                         __tsan_* fiber-switch hooks (docs/RACE.md)
#   4. Werror           — warning-clean build enforced
#
# On top of the per-configuration suites it runs targeted smokes: the fault
# matrix, the ChamShard engine slice, and the ChamDurable corruption matrix
# under the sanitizers, and the bench/ChamScope/ChamProf/ChamRace/
# kill-resume/sharded determinism smokes against the release binaries. The
# ChamProf leg also builds a -DCHAMELEON_PROF=OFF tree and gates the
# shipping (hooks-in, profiler-off) wall time against it.
#
# Usage: tools/check.sh [jobs]
# Build trees live under build-check/ (gitignored).

set -euo pipefail

jobs=${1:-2}
root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root"

run_config() {
  local name=$1
  shift
  local dir="build-check/$name"
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] test ==="
  (cd "$dir" && ctest --output-on-failure -j "$jobs")
}

run_config release -DCMAKE_BUILD_TYPE=Release
run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCHAMELEON_ASAN=ON -DCHAMELEON_UBSAN=ON

# Fault matrix: replay the fault-labelled slice (injected crashes, drops,
# failover, the chamlint smoke) under ASan+UBSan with rotating base seeds —
# fiber cancellation and the salvage/retry paths are exactly where memory
# bugs would hide. Override the seed list with CHAMELEON_FAULT_SEEDS.
for seed in ${CHAMELEON_FAULT_SEEDS:-1 11 29}; do
  echo "=== [sanitize] fault matrix, seed $seed ==="
  (cd build-check/sanitize &&
    CHAMELEON_FAULT_SEED="$seed" ctest -L fault --output-on-failure -j "$jobs")
done

# ChamShard sanitizer leg: the engine-labelled slice (sharded scheduler
# unit tests, cross-thread determinism matrix, the multi-threaded
# kill/resume smoke) plus a 4-thread CLI run under ASan+UBSan.
echo "=== [sanitize] engine slice ==="
(cd build-check/sanitize && ctest -L engine --output-on-failure -j "$jobs")

# ChamScale sanitizer leg: the ranklist property suite and the ON-vs-OFF
# protocol differential suite under ASan+UBSan — the intern table, the
# arena, and the run-level decode fast path are exactly where an
# out-of-bounds run index or a dangling interned pointer would hide.
echo "=== [sanitize] scale slice ==="
(cd build-check/sanitize && ctest -L scale --output-on-failure -j "$jobs")
echo "=== [sanitize] sharded run smoke ==="
build-check/sanitize/tools/chamtrace run --workload lu --procs 16 \
  --steps 8 --freq 1 --threads 4 >/dev/null

# ChamRace/ChamShard TSan leg: the race- and engine-labelled slices — the
# full suite under TSan is minutes of fiber-hook overhead for no extra
# thread coverage; these are the slices with real threads in them.
echo "=== [tsan] configure ==="
cmake -B build-check/tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCHAM_TSAN=ON >/dev/null
echo "=== [tsan] build ==="
cmake --build build-check/tsan -j "$jobs"
echo "=== [tsan] race+engine slice ==="
(cd build-check/tsan && ctest -L 'race|engine' --output-on-failure -j "$jobs")

run_config werror -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCHAMELEON_WERROR=ON

# Hot-path benchmark smoke (release build): baseline and optimized runs must
# produce byte-identical traces, and the JSON report must carry the schema
# keys docs/PERF.md documents. Thresholded speedups are a full-scale,
# quiet-machine measurement — run `bench_hotpath` without --smoke for those.
echo "=== [release] bench_hotpath smoke ==="
smoke_json="build-check/release/bench_smoke.json"
build-check/release/bench/bench_hotpath --smoke --out "$smoke_json" >/dev/null
for key in '"schema": "chameleon.bench_hotpath.v1"' '"append_fold"' \
           '"inter_merge"' '"encode_decode"' '"counters"' \
           '"byte_identical": true'; do
  grep -qF "$key" "$smoke_json" ||
    { echo "bench_hotpath smoke: missing $key in $smoke_json" >&2; exit 1; }
done

# ChamShard engine bench smoke (release build): the thread matrix must
# produce identical digests at every thread count, and the committed
# bench_results/BENCH_engine.json must carry the documented schema. The
# >=3x speedup acceptance (4k fibers, 8 threads) is only meaningful on a
# host that actually has 8 cores — gate it on nproc so the 1-core CI box
# checks correctness while a workstation run checks the scaling claim too.
echo "=== [release] bench_engine smoke ==="
engine_json="build-check/release/bench_engine_smoke.json"
build-check/release/bench/bench_engine --smoke --out "$engine_json" \
  >/dev/null 2>&1
for key in '"schema": "chameleon.bench_engine.v1"' '"results"' \
           '"hardware_concurrency"' '"deterministic": true'; do
  grep -qF "$key" "$engine_json" ||
    { echo "bench_engine smoke: missing $key in $engine_json" >&2; exit 1; }
done
for key in '"schema": "chameleon.bench_engine.v1"' '"deterministic": true'; do
  grep -qF "$key" bench_results/BENCH_engine.json ||
    { echo "BENCH_engine.json: missing $key" >&2; exit 1; }
done
if [ "$(nproc)" -ge 8 ]; then
  echo "=== [release] bench_engine full matrix (>=3x gate) ==="
  full_json="build-check/release/bench_engine_full.json"
  build-check/release/bench/bench_engine --out "$full_json" >/dev/null 2>&1
  python3 - "$full_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
cell = [r for r in doc["results"] if r["fibers"] == 4096 and r["threads"] == 8]
speedup = float(cell[0]["speedup_vs_1thread"])
if speedup < 3.0:
    sys.exit(f"bench_engine: 4k fibers / 8 threads speedup {speedup} < 3.0")
print(f"bench_engine: 4k fibers / 8 threads speedup {speedup}")
EOF
else
  echo "bench_engine: $(nproc) core(s) — skipping the >=3x speedup gate"
fi

# ChamScale weak-scaling gate (release build): ON-vs-OFF digest identity at
# smoke scale, the documented schema and per-rank memory budget in the
# committed bench_results/BENCH_scale.json (rows at 1k/4k/16k/64k), and a
# 16k-rank sharded smoke proving the protocol completes at roadmap scale on
# this host. The full 64k row is a multi-GB, ~half-minute measurement —
# re-run `bench_scale` without --smoke on a big host to refresh it
# (docs/PERF.md "64k memory budget").
echo "=== [release] bench_scale smoke ==="
scale_json="build-check/release/bench_scale_smoke.json"
build-check/release/bench/bench_scale --smoke --out "$scale_json" >/dev/null
for key in '"schema": "chameleon.bench_scale.v1"' '"rows"' \
           '"baseline_identical": true'; do
  grep -qF "$key" "$scale_json" ||
    { echo "bench_scale smoke: missing $key in $scale_json" >&2; exit 1; }
done
python3 - bench_results/BENCH_scale.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
if doc.get("schema") != "chameleon.bench_scale.v1":
    sys.exit("BENCH_scale.json: wrong schema")
if doc.get("baseline_identical") is not True:
    sys.exit("BENCH_scale.json: baseline_identical must be true")
rows = {int(r["nprocs"]): r for r in doc["rows"]}
for p in (1024, 4096, 16384, 65536):
    if p not in rows:
        sys.exit(f"BENCH_scale.json: missing {p}-rank row")
    per_rank = float(rows[p]["rss_bytes_per_rank"])
    if per_rank > 128 * 1024:
        sys.exit(f"BENCH_scale.json: {p}-rank row spends {per_rank:.0f} "
                 "bytes/rank, over the 128 KiB weak-scaling budget")
print(f"BENCH_scale.json: 64k ranks in {rows[65536]['wall_seconds']}s at "
      f"{float(rows[65536]['rss_bytes_per_rank']) / 1024:.1f} KiB/rank")
EOF
echo "=== [release] bench_scale 16k-rank sharded smoke ==="
scale_16k="build-check/release/scale_16k_row.json"
build-check/release/bench/bench_scale --row 16384 --threads 4 > "$scale_16k"
python3 - "$scale_16k" <<'EOF'
import json, sys
row = json.load(open(sys.argv[1]))
if int(row["nprocs"]) != 16384 or int(row["clusters"]) < 1:
    sys.exit("bench_scale: 16k-rank smoke row malformed")
print(f"bench_scale: 16k ranks / 4 threads in {row['wall_seconds']}s "
      f"({int(row['max_rss_kb']) // 1024} MB peak)")
EOF

# Release multi-thread determinism: the same workload at --threads 1 and
# --threads 4 must write byte-identical trace and cluster-table files.
echo "=== [release] sharded determinism compare ==="
shard_dir="build-check/release/shard-smoke"
mkdir -p "$shard_dir"
chamtrace=build-check/release/tools/chamtrace
"$chamtrace" run --workload lu --procs 16 --steps 8 --freq 1 \
  --clusters-out "$shard_dir/c1.bin" >/dev/null
"$chamtrace" run --workload lu --procs 16 --steps 8 --freq 1 --threads 4 \
  --clusters-out "$shard_dir/c4.bin" >/dev/null
cmp -s "$shard_dir/c1.bin" "$shard_dir/c4.bin" ||
  { echo "sharded determinism: cluster tables differ across thread counts" >&2
    exit 1; }

# ChamScope smoke (release build): a real workload run with the timeline
# tracer and metrics registry enabled must produce documents that the
# bundled validators accept, and the cluster-evolution report must render.
echo "=== [release] chamscope smoke ==="
obs_dir="build-check/release/obs-smoke"
mkdir -p "$obs_dir"
chamtrace=build-check/release/tools/chamtrace
"$chamtrace" run --workload lu --procs 16 --steps 8 --freq 1 \
  --timeline "$obs_dir/timeline.json" \
  --metrics-out "$obs_dir/metrics.json" >/dev/null
"$chamtrace" validate --timeline "$obs_dir/timeline.json" \
  --metrics "$obs_dir/metrics.json"
"$chamtrace" report --workload lu --procs 16 --steps 8 --freq 1 \
  --format json --out "$obs_dir/report.json" >/dev/null
grep -qF '"schema": "chameleon.report.v1"' "$obs_dir/report.json" ||
  { echo "chamscope smoke: bad report schema in $obs_dir/report.json" >&2
    exit 1; }

# ChamProf smoke (release build): a profiled sharded run must produce a
# chameleon.prof.v1 document the validator accepts, with non-empty
# barrier-wait / lock-contention / phase-attribution telemetry, counter
# tracks merged into the timeline, and a summary `chamtrace profile`
# renders. A second run checks the --timeline-flush streaming mode.
echo "=== [release] champrof smoke ==="
prof_dir="build-check/release/prof-smoke"
mkdir -p "$prof_dir"
"$chamtrace" run --workload lu --procs 16 --threads 4 \
  --profile="$prof_dir/prof.json" \
  --timeline "$prof_dir/timeline.json" >/dev/null
"$chamtrace" validate --prof "$prof_dir/prof.json" \
  --timeline "$prof_dir/timeline.json"
"$chamtrace" profile "$prof_dir/prof.json" > "$prof_dir/summary.out"
for want in "barrier_wait" "phase breakdown" "busiest locks" "sampler:"; do
  grep -qF "$want" "$prof_dir/summary.out" ||
    { echo "champrof smoke: missing \"$want\" in profile summary" >&2; exit 1; }
done
python3 - "$prof_dir/prof.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
shards = doc["shards"]
if len(shards) != 4:
    sys.exit(f"champrof: expected 4 shards, got {len(shards)}")
if sum(s["barrier_wait_seconds"] for s in shards) <= 0:
    sys.exit("champrof: no barrier wait recorded")
if not any(lk["acquisitions"] > 0 for lk in doc["locks"]):
    sys.exit("champrof: no lock acquisitions recorded")
if not doc["phases"]:
    sys.exit("champrof: empty phase attribution")
if doc["overhead"]["profiling_seconds"] < 0:
    sys.exit("champrof: negative self-measured cost")
print(f"champrof: {len(shards)} shards, "
      f"{doc['samples']['total']} samples, "
      f"self cost {doc['overhead']['profiling_seconds'] * 1e3:.2f} ms")
EOF
grep -qF '"ph": "C"' "$prof_dir/timeline.json" ||
  grep -qF '"ph":"C"' "$prof_dir/timeline.json" ||
  { echo "champrof smoke: no counter tracks merged into timeline" >&2
    exit 1; }
"$chamtrace" run --workload lu --procs 16 --steps 8 --freq 1 \
  --timeline "$prof_dir/streamed.json" --timeline-flush 256 >/dev/null
"$chamtrace" validate --timeline "$prof_dir/streamed.json"

# ChamProf overhead bench (release build): profiled and unprofiled engine
# digests must match at smoke scale, and the committed
# bench_results/BENCH_profiler.json must carry the documented schema.
echo "=== [release] bench_profiler smoke ==="
profbench_json="build-check/release/bench_profiler_smoke.json"
build-check/release/bench/bench_profiler --smoke --out "$profbench_json" \
  >/dev/null 2>&1
for key in '"schema": "chameleon.bench_profiler.v1"' '"results"' \
           '"digests_match": true'; do
  grep -qF "$key" "$profbench_json" ||
    { echo "bench_profiler smoke: missing $key in $profbench_json" >&2
      exit 1; }
done
for key in '"schema": "chameleon.bench_profiler.v1"' '"overhead_ratio"' \
           '"digests_match": true'; do
  grep -qF "$key" bench_results/BENCH_profiler.json ||
    { echo "BENCH_profiler.json: missing $key" >&2; exit 1; }
done

# Disabled-profiler overhead gate: the shipping configuration compiles the
# hooks in but never installs a profiler, so its wall time must stay within
# noise of a -DCHAMELEON_PROF=OFF build that compiles them out entirely.
# Min-of-N on both sides keeps the comparison robust on a loaded box; the
# 1.35x tolerance is generous because each run is only a fraction of a
# second of which process startup is a sizable share.
echo "=== [noprof] disabled-profiler overhead gate ==="
cmake -B build-check/noprof -S . -DCMAKE_BUILD_TYPE=Release \
  -DCHAMELEON_PROF=OFF >/dev/null
cmake --build build-check/noprof -j "$jobs" --target chamtrace
python3 - "$chamtrace" build-check/noprof/tools/chamtrace <<'EOF'
import subprocess, sys, time
def best(binary, n=4):
    args = [binary, "run", "--workload", "lu", "--procs", "16",
            "--threads", "2"]
    times = []
    for _ in range(n):
        t0 = time.perf_counter()
        subprocess.run(args, check=True, stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL)
        times.append(time.perf_counter() - t0)
    return min(times)
hooks_in = best(sys.argv[1])
compiled_out = best(sys.argv[2])
ratio = hooks_in / compiled_out
print(f"disabled-profiler overhead: hooks-in {hooks_in:.4f}s vs "
      f"compiled-out {compiled_out:.4f}s (ratio {ratio:.3f})")
if ratio > 1.35:
    sys.exit(f"disabled-profiler overhead ratio {ratio:.3f} exceeds 1.35x")
EOF

# ChamRace smoke (release build): the seeded racefix fixture must fail the
# gate with its known conflicts, and a clean workload must produce a race
# report (with determinism audit) that the bundled validator accepts.
echo "=== [release] chamrace smoke ==="
race_dir="build-check/release/race-smoke"
mkdir -p "$race_dir"
if "$chamtrace" race --workload racefix --procs 8 --steps 4 --seeds 3 \
     > "$race_dir/racefix.out"; then
  echo "chamrace smoke: racefix unexpectedly clean" >&2
  exit 1
fi
for want in "write-write on racefix.shared_counter" \
            "racefix.config" "epochs deterministic"; do
  grep -qF "$want" "$race_dir/racefix.out" ||
    { echo "chamrace smoke: missing \"$want\" in racefix output" >&2; exit 1; }
done
"$chamtrace" race --workload lu --procs 8 --steps 6 --seeds 3 \
  --json "$race_dir/race.json" >/dev/null
"$chamtrace" validate --race "$race_dir/race.json"

# ChamDurable kill/resume smoke (release build): for each scheduler seed, a
# reference checkpointed run and a --kill-at-epoch SIGKILL'd run that is
# then resumed must produce byte-identical final cluster tables
# (docs/DURABILITY.md). Override the seed list with CHAMELEON_DURABLE_SEEDS.
echo "=== [release] chamdurable kill/resume smoke ==="
dur_dir="build-check/release/durable-smoke"
rm -rf "$dur_dir"
mkdir -p "$dur_dir"
for seed in ${CHAMELEON_DURABLE_SEEDS:-0 7 13 29 42}; do
  "$chamtrace" run --workload lu --procs 8 --class S --sched-seed "$seed" \
    --checkpoint-dir "$dur_dir/ref-$seed" \
    --clusters-out "$dur_dir/ref-$seed.bin" >/dev/null
  rc=0
  "$chamtrace" run --workload lu --procs 8 --class S --sched-seed "$seed" \
    --checkpoint-dir "$dur_dir/kill-$seed" --kill-at-epoch 4 \
    >/dev/null 2>&1 || rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "chamdurable smoke: --kill-at-epoch run survived (seed $seed)" >&2
    exit 1
  fi
  "$chamtrace" run --resume "$dur_dir/kill-$seed" \
    --clusters-out "$dur_dir/res-$seed.bin" >/dev/null
  cmp -s "$dur_dir/ref-$seed.bin" "$dur_dir/res-$seed.bin" ||
    { echo "chamdurable smoke: resumed clusterset differs (seed $seed)" >&2
      exit 1; }
done

# Corruption matrix at full depth under ASan+UBSan: >=1000 deterministic
# mutations across the manifest/snapshot/journal decoders plus the
# directory-level recover() sweep — every mutation must be rejected with a
# typed error (or land on tolerated slack), never crash or overallocate.
echo "=== [sanitize] chamdurable corruption matrix ==="
(cd build-check/sanitize &&
  CHAM_CORRUPT_ITERS="${CHAM_CORRUPT_ITERS:-1000}" \
  ctest -L durable --output-on-failure -j "$jobs")

echo "=== all configurations green ==="
