// chamlint — static validity checker for Chameleon/ScalaTrace trace files.
//
//   chamlint [--procs P] [--full-cover] [--callpath 0xHEX] [--quiet]
//            <trace-file>...
//
// Runs the TraceLint pass over each file twice: once at the wire level
// (catching corruptions the canonicalizing decoder would repair or reject
// wholesale — overlapping ranklist sections, zero-iteration loops,
// truncation, trailing bytes) and once over the decoded node tree
// (semantic invariants: operation/communicator/marker validity, endpoint
// and ranklist bounds, histogram consistency).
//
//   --procs P      enable rank-bound checks against world size P
//   --full-cover   expect a fully merged global trace: every rank of
//                  [0, P) must appear in some leaf's ranklist
//   --callpath S   verify the recorded Call-Path signature S (hex) against
//                  the trace's own events
//   --quiet        suppress per-diagnostic lines; print only summaries
//   --json         emit one JSON document on stdout instead of text
//   --log-json     structured one-line-JSON log records on stderr
//
// Diagnostics are machine-readable, one per line:
//   <file>: <severity>[<code>]: <message>
// With --json the whole report is a single JSON object:
//   {"files": [{"file": ..., "errors": N, "warnings": N, "infos": N,
//               "diagnostics": [{"severity", "code", "rank", "message"}]}],
//    "errors": N, "warnings": N}
// Exit status: 0 = no errors, 1 = errors found, 2 = usage/IO failure.
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/lint.hpp"
#include "support/json.hpp"
#include "support/logging.hpp"
#include "trace/serialize.hpp"

using namespace cham;

namespace {

int usage() {
  std::fputs(
      "usage: chamlint [--procs <P>] [--full-cover] [--callpath <hex>]"
      " [--quiet] [--json] [--log-json] <trace-file>...\n",
      stderr);
  return 2;
}

struct Options {
  analysis::LintOptions lint;
  bool quiet = false;
  bool json = false;
  bool log_json = false;
  bool check_callpath = false;
  std::uint64_t callpath = 0;
  std::vector<std::string> files;
};

/// Emit one file's lint result into the shared document writer (the
/// "files" array is open when this is called). Shape is stable for
/// downstream consumers:
///   {"file", "errors", "warnings", "infos", "diagnostics": [...]}
void append_json_file(support::json::Writer& w, const std::string& path,
                      const analysis::DiagnosticSink& sink) {
  std::size_t infos = 0;
  for (const auto& d : sink.diagnostics())
    if (d.severity == analysis::Severity::kInfo) ++infos;
  w.begin_object();
  w.member("file", path);
  w.member("errors", static_cast<std::uint64_t>(sink.errors()));
  w.member("warnings", static_cast<std::uint64_t>(sink.warnings()));
  w.member("infos", static_cast<std::uint64_t>(infos));
  w.key("diagnostics").begin_array();
  for (const auto& d : sink.diagnostics()) {
    w.begin_object();
    w.member("severity", analysis::severity_name(d.severity));
    w.member("code", d.code);
    w.member("rank", d.rank);
    w.member("message", d.message);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

bool parse_args(int argc, char** argv, Options& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--procs" && i + 1 < argc) {
      try {
        out.lint.nprocs = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        std::fprintf(stderr, "chamlint: --procs needs an integer, got '%s'\n",
                     argv[i]);
        return false;
      }
      if (out.lint.nprocs <= 0) {
        std::fprintf(stderr, "chamlint: --procs must be positive\n");
        return false;
      }
    } else if (arg == "--full-cover") {
      out.lint.expect_full_cover = true;
    } else if (arg == "--callpath" && i + 1 < argc) {
      out.check_callpath = true;
      try {
        out.callpath = std::stoull(argv[++i], nullptr, 16);
      } catch (const std::exception&) {
        std::fprintf(stderr,
                     "chamlint: --callpath needs a hex signature, got '%s'\n",
                     argv[i]);
        return false;
      }
    } else if (arg == "--quiet") {
      out.quiet = true;
    } else if (arg == "--json") {
      out.json = true;
    } else if (arg == "--log-json") {
      support::set_log_format(support::LogFormat::kJson);
      out.log_json = true;
    } else if (arg.rfind("--", 0) == 0) {
      return false;
    } else {
      out.files.push_back(arg);
    }
  }
  return !out.files.empty();
}

int lint_file(const std::string& path, const Options& opts,
              support::json::Writer* json_files, std::size_t* total_errors,
              std::size_t* total_warnings) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "chamlint: cannot open %s\n", path.c_str());
    return 2;
  }
  std::vector<std::uint8_t> bytes(std::istreambuf_iterator<char>(in), {});

  analysis::DiagnosticSink sink;
  // With structured logging on, findings also go out as log records (and
  // from there to any installed timeline/log observer).
  sink.set_log_forwarding(opts.log_json);
  const bool wire_ok = analysis::lint_trace_bytes(bytes, opts.lint, sink);
  if (wire_ok && sink.errors() == 0) {
    // Wire format is sound: decode and run the semantic checks too.
    try {
      const auto nodes = trace::decode_trace(bytes);
      analysis::lint_trace(nodes, opts.lint, sink);
      if (opts.check_callpath)
        analysis::lint_signature(nodes, opts.callpath, sink);
    } catch (const trace::DecodeError& e) {
      sink.report(analysis::Severity::kError, "wire.decode", -1, e.what());
    }
  }

  if (opts.json) {
    append_json_file(*json_files, path, sink);
    *total_errors += sink.errors();
    *total_warnings += sink.warnings();
  } else {
    if (!opts.quiet) {
      for (const auto& d : sink.diagnostics())
        std::printf("%s: %s\n", path.c_str(), d.to_string().c_str());
    }
    std::printf("%s: %zu error(s), %zu warning(s)\n", path.c_str(),
                sink.errors(), sink.warnings());
  }
  return sink.errors() > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return usage();
  int status = 0;
  support::json::Writer json_files;
  if (opts.json) json_files.begin_object().key("files").begin_array();
  std::size_t total_errors = 0;
  std::size_t total_warnings = 0;
  for (const auto& file : opts.files) {
    const int rc =
        lint_file(file, opts, &json_files, &total_errors, &total_warnings);
    if (rc == 2) return 2;
    if (rc > status) status = rc;
  }
  if (opts.json) {
    json_files.end_array();
    json_files.member("errors", static_cast<std::uint64_t>(total_errors));
    json_files.member("warnings", static_cast<std::uint64_t>(total_warnings));
    json_files.end_object();
    std::printf("%s\n", json_files.str().c_str());
  }
  return status;
}
