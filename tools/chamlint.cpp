// chamlint — static validity checker for Chameleon/ScalaTrace trace files.
//
//   chamlint [--procs P] [--full-cover] [--callpath 0xHEX] [--quiet]
//            <trace-file>...
//
// Runs the TraceLint pass over each file twice: once at the wire level
// (catching corruptions the canonicalizing decoder would repair or reject
// wholesale — overlapping ranklist sections, zero-iteration loops,
// truncation, trailing bytes) and once over the decoded node tree
// (semantic invariants: operation/communicator/marker validity, endpoint
// and ranklist bounds, histogram consistency).
//
//   --procs P      enable rank-bound checks against world size P
//   --full-cover   expect a fully merged global trace: every rank of
//                  [0, P) must appear in some leaf's ranklist
//   --callpath S   verify the recorded Call-Path signature S (hex) against
//                  the trace's own events
//   --quiet        suppress per-diagnostic lines; print only summaries
//   --json         emit one JSON document on stdout instead of text
//
// Diagnostics are machine-readable, one per line:
//   <file>: <severity>[<code>]: <message>
// With --json the whole report is a single JSON object:
//   {"files": [{"file": ..., "errors": N, "warnings": N, "infos": N,
//               "diagnostics": [{"severity", "code", "rank", "message"}]}],
//    "errors": N, "warnings": N}
// Exit status: 0 = no errors, 1 = errors found, 2 = usage/IO failure.
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/lint.hpp"
#include "trace/serialize.hpp"

using namespace cham;

namespace {

int usage() {
  std::fputs(
      "usage: chamlint [--procs <P>] [--full-cover] [--callpath <hex>]"
      " [--quiet] [--json] <trace-file>...\n",
      stderr);
  return 2;
}

struct Options {
  analysis::LintOptions lint;
  bool quiet = false;
  bool json = false;
  bool check_callpath = false;
  std::uint64_t callpath = 0;
  std::vector<std::string> files;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_json_file(std::string& out, const std::string& path,
                      const analysis::DiagnosticSink& sink) {
  if (!out.empty()) out += ",\n";
  std::size_t infos = 0;
  for (const auto& d : sink.diagnostics())
    if (d.severity == analysis::Severity::kInfo) ++infos;
  out += "    {\"file\": \"" + json_escape(path) + "\", \"errors\": " +
         std::to_string(sink.errors()) + ", \"warnings\": " +
         std::to_string(sink.warnings()) + ", \"infos\": " +
         std::to_string(infos) + ", \"diagnostics\": [";
  for (std::size_t i = 0; i < sink.diagnostics().size(); ++i) {
    const auto& d = sink.diagnostics()[i];
    if (i > 0) out += ", ";
    out += "\n      {\"severity\": \"" +
           std::string(analysis::severity_name(d.severity)) +
           "\", \"code\": \"" + json_escape(d.code) +
           "\", \"rank\": " + std::to_string(d.rank) + ", \"message\": \"" +
           json_escape(d.message) + "\"}";
  }
  if (!sink.diagnostics().empty()) out += "\n    ";
  out += "]}";
}

bool parse_args(int argc, char** argv, Options& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--procs" && i + 1 < argc) {
      try {
        out.lint.nprocs = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        std::fprintf(stderr, "chamlint: --procs needs an integer, got '%s'\n",
                     argv[i]);
        return false;
      }
      if (out.lint.nprocs <= 0) {
        std::fprintf(stderr, "chamlint: --procs must be positive\n");
        return false;
      }
    } else if (arg == "--full-cover") {
      out.lint.expect_full_cover = true;
    } else if (arg == "--callpath" && i + 1 < argc) {
      out.check_callpath = true;
      try {
        out.callpath = std::stoull(argv[++i], nullptr, 16);
      } catch (const std::exception&) {
        std::fprintf(stderr,
                     "chamlint: --callpath needs a hex signature, got '%s'\n",
                     argv[i]);
        return false;
      }
    } else if (arg == "--quiet") {
      out.quiet = true;
    } else if (arg == "--json") {
      out.json = true;
    } else if (arg.rfind("--", 0) == 0) {
      return false;
    } else {
      out.files.push_back(arg);
    }
  }
  return !out.files.empty();
}

int lint_file(const std::string& path, const Options& opts,
              std::string* json_files, std::size_t* total_errors,
              std::size_t* total_warnings) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "chamlint: cannot open %s\n", path.c_str());
    return 2;
  }
  std::vector<std::uint8_t> bytes(std::istreambuf_iterator<char>(in), {});

  analysis::DiagnosticSink sink;
  const bool wire_ok = analysis::lint_trace_bytes(bytes, opts.lint, sink);
  if (wire_ok && sink.errors() == 0) {
    // Wire format is sound: decode and run the semantic checks too.
    try {
      const auto nodes = trace::decode_trace(bytes);
      analysis::lint_trace(nodes, opts.lint, sink);
      if (opts.check_callpath)
        analysis::lint_signature(nodes, opts.callpath, sink);
    } catch (const trace::DecodeError& e) {
      sink.report(analysis::Severity::kError, "wire.decode", -1, e.what());
    }
  }

  if (opts.json) {
    append_json_file(*json_files, path, sink);
    *total_errors += sink.errors();
    *total_warnings += sink.warnings();
  } else {
    if (!opts.quiet) {
      for (const auto& d : sink.diagnostics())
        std::printf("%s: %s\n", path.c_str(), d.to_string().c_str());
    }
    std::printf("%s: %zu error(s), %zu warning(s)\n", path.c_str(),
                sink.errors(), sink.warnings());
  }
  return sink.errors() > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return usage();
  int status = 0;
  std::string json_files;
  std::size_t total_errors = 0;
  std::size_t total_warnings = 0;
  for (const auto& file : opts.files) {
    const int rc =
        lint_file(file, opts, &json_files, &total_errors, &total_warnings);
    if (rc == 2) return 2;
    if (rc > status) status = rc;
  }
  if (opts.json) {
    std::printf("{\n  \"files\": [\n%s\n  ],\n  \"errors\": %zu,\n"
                "  \"warnings\": %zu\n}\n",
                json_files.c_str(), total_errors, total_warnings);
  }
  return status;
}
