// chamtrace — command-line front end for the Chameleon tracing library.
//
//   chamtrace list
//       List the built-in benchmark workloads.
//   chamtrace run --workload lu --procs 64 [--tool chameleon|scalatrace|
//       acurdion|none] [--k K] [--freq N] [--class A-D] [--steps N]
//       [--auto-marker] [--fault plan] [--fault-seed N] [--sched-seed N]
//       [--threads N] [--out trace.bin] [--clusters-out c.bin] [--text]
//       [--perf]
//       [--checkpoint-dir d] [--snapshot-every N] [--resume d]
//       [--timeline t.json] [--metrics-out m.json] [--log-json]
//       Trace a workload and write the global/online trace. --fault takes a
//       fault-plan file, or an inline ';'-separated plan (docs/FAULTS.md);
//       the run then exercises the fault-tolerant protocol and the merged
//       trace may contain GAP nodes for intervals lost with dead leads.
//       --checkpoint-dir journals every marker epoch and periodically folds
//       the journal into an atomic snapshot (docs/DURABILITY.md); --resume
//       recovers from such a directory and continues the interrupted run —
//       every other run option is taken from the stored manifest.
//       --timeline records what the runtime itself did as Chrome
//       trace-event JSON (open in Perfetto); --timeline-flush N streams
//       the file incrementally every N events instead of buffering;
//       --metrics-out exports the ChamScope metrics registry;
//       --profile[=FILE] installs the ChamProf host-time profiler
//       (scheduler telemetry + sampling profiler) and writes the
//       chameleon.prof.v1 document (default prof.json); --tool none runs
//       the bare simulator (useful for timeline-only runs and overhead
//       baselines).
//   chamtrace report --workload lu --procs 64 [--format text|csv|json] ...
//       Run the workload under Chameleon with epoch recording on and print
//       the epoch-by-epoch cluster-evolution report (cluster count, leads,
//       membership churn) plus the per-state trace-memory table.
//   chamtrace race --workload lu --procs 64 [run options] [--seeds N]
//       [--no-audit] [--json r.json]
//       ChamRace: run the workload with the happens-before analyzer
//       installed on the annotation stream and report every access pair
//       unordered by the modelled sync edges (docs/RACE.md), then audit
//       determinism by replaying under N shuffled scheduler seeds and
//       diffing per-epoch wire-image digests. Exit 0 only when the run is
//       conflict-free AND schedule-independent. --json writes the
//       chameleon.race.v1 document.
//   chamtrace profile prof.json [--folded]
//       Render a saved chameleon.prof.v1 profile as a per-shard imbalance
//       summary (barrier-wait share, phase breakdown, busiest locks), or
//       with --folded as folded-stack lines for flamegraph tooling.
//   chamtrace validate [--timeline t.json] [--metrics m.json] [--race r.json]
//       [--prof p.json]
//       Structurally validate ChamScope output files.
//   chamtrace show trace.bin
//       Print a trace file in the human-readable PRSD form plus statistics.
//   chamtrace replay trace.bin --procs 64
//       Replay a trace at the given scale and report virtual time.
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <system_error>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/race/analyzer.hpp"
#include "analysis/race/annotate.hpp"
#include "analysis/race/determinism.hpp"
#include "core/acurdion.hpp"
#include "core/chameleon.hpp"
#include "durable/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/profiler.hpp"
#include "obs/prof/summary.hpp"
#include "obs/report.hpp"
#include "obs/timeline.hpp"
#include "obs/validate.hpp"
#include "replay/interp.hpp"
#include "replay/replayer.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/mpi.hpp"
#include "support/json.hpp"
#include "support/logging.hpp"
#include "trace/perf.hpp"
#include "trace/serialize.hpp"
#include "workloads/workload.hpp"

using namespace cham;

namespace {

int usage() {
  std::fputs(
      "usage:\n"
      "  chamtrace list\n"
      "  chamtrace run --workload <name> --procs <P> [--tool chameleon|"
      "scalatrace|acurdion|none]\n"
      "               [--k <K>] [--freq <N>] [--class A|B|C|D] [--steps <N>]"
      " [--auto-marker]\n"
      "               [--fault <plan-file-or-inline>] [--fault-seed <N>]"
      " [--sched-seed <N>]\n"
      "               [--threads <N>]\n"
      "               [--checkpoint-dir <dir>] [--snapshot-every <N>]\n"
      "               [--out <file>] [--clusters-out <file>] [--text]"
      " [--perf]\n"
      "               [--timeline <file>] [--timeline-flush <N>]"
      " [--metrics-out <file>]\n"
      "               [--profile[=<file>]] [--log-json]\n"
      "  chamtrace run --resume <dir> [--out <file>] [--clusters-out <file>]"
      " [output options]\n"
      "  chamtrace report --workload <name> --procs <P> [--format text|csv|"
      "json] [--out <file>]\n"
      "               [run options]\n"
      "  chamtrace race --workload <name> --procs <P> [run options]"
      " [--seeds <N>] [--no-audit]\n"
      "               [--json <file>]\n"
      "  chamtrace profile <prof-file> [--folded]\n"
      "  chamtrace validate [--timeline <file>] [--metrics <file>]"
      " [--race <file>] [--prof <file>]\n"
      "  chamtrace show <trace-file>\n"
      "  chamtrace replay <trace-file> --procs <P>\n",
      stderr);
  return 2;
}

/// Minimal flag parser: --name value / --name (boolean).
class Args {
 public:
  Args(int argc, char** argv, int from) {
    for (int i = from; i < argc; ++i) tokens_.emplace_back(argv[i]);
  }
  std::optional<std::string> value(const std::string& flag) const {
    for (std::size_t i = 0; i + 1 < tokens_.size(); ++i)
      if (tokens_[i] == flag) return tokens_[i + 1];
    return std::nullopt;
  }
  bool has(const std::string& flag) const {
    for (const auto& token : tokens_)
      if (token == flag) return true;
    return false;
  }
  /// Flag with an optional value: `--flag`, `--flag v`, or `--flag=v`.
  /// Absent -> nullopt; present without a value -> `fallback`.
  std::optional<std::string> value_or(const std::string& flag,
                                      const std::string& fallback) const {
    const std::string inline_form = flag + "=";
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i].rfind(inline_form, 0) == 0)
        return tokens_[i].substr(inline_form.size());
      if (tokens_[i] != flag) continue;
      if (i + 1 < tokens_.size() && tokens_[i + 1].rfind("--", 0) != 0)
        return tokens_[i + 1];
      return fallback;
    }
    return std::nullopt;
  }
  std::optional<std::string> positional() const {
    for (const auto& token : tokens_)
      if (token.rfind("--", 0) != 0) return token;
    return std::nullopt;
  }

 private:
  std::vector<std::string> tokens_;
};

int cmd_list() {
  std::printf("%-8s %-4s %-6s %s\n", "name", "K", "freq", "description");
  for (const auto& info : workloads::all_workloads()) {
    std::printf("%-8s %-4zu %-6d %s\n", std::string(info.name).c_str(),
                info.default_k, info.default_freq,
                std::string(info.description).c_str());
  }
  return 0;
}

/// --fault accepts either a fault-plan file or an inline ';'-separated
/// plan string ("crash rank=3 marker=2; drop src=1 dest=2 prob=0.5").
sim::FaultPlan load_fault_plan(const std::string& arg, std::uint64_t seed) {
  std::ifstream in(arg);
  if (in) {
    const std::string text{std::istreambuf_iterator<char>(in), {}};
    return sim::FaultPlan::parse(text, seed);
  }
  return sim::FaultPlan::parse(arg, seed);
}

std::vector<trace::TraceNode> load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::system_error(errno != 0 ? errno : ENOENT,
                            std::generic_category(), "cannot open " + path);
  std::vector<std::uint8_t> bytes(std::istreambuf_iterator<char>(in), {});
  return trace::decode_trace(bytes);
}

bool write_file(const std::string& path, std::string_view contents) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  return static_cast<bool>(file);
}

void print_stats(const std::vector<trace::TraceNode>& nodes) {
  std::size_t leaves = 0;
  std::uint64_t expanded = 0;
  for (const auto& node : nodes) {
    leaves += node.leaf_count();
    expanded += node.expanded_count();
  }
  std::printf("# top-level nodes: %zu, compressed events: %zu, expanded "
              "events: %llu\n",
              nodes.size(), leaves,
              static_cast<unsigned long long>(expanded));
  std::printf("# event-rank pairs on replay: %llu, encoded size: %zu bytes\n",
              static_cast<unsigned long long>(
                  replay::expanded_event_rank_pairs(nodes)),
              trace::encode_trace(nodes).size());
}

// --------------------------------------------------------------------------
// ChamScope wiring
// --------------------------------------------------------------------------

/// Owns the timeline/metrics/profiler instances for one run, installs the
/// process globals the runtime hooks consult, and tears everything down
/// (including the log observer and the sampler thread) on scope exit, so a
/// thrown workload cannot leave a dangling global behind.
class Observability {
 public:
  explicit Observability(const Args& args)
      : profile_path_(args.value_or("--profile", "prof.json")) {
    if (const auto path = args.value("--timeline")) {
      timeline_.emplace();
      // --timeline-flush N: stream events to the file as they accumulate
      // instead of buffering the whole run in memory.
      if (const auto every = args.value("--timeline-flush"))
        timeline_->set_flush(*path, std::stoul(*every));
      obs::set_timeline(&*timeline_);
      // Structured log records double as timeline instants so warnings
      // line up with the spans that produced them.
      support::set_log_observer(
          [tl = &*timeline_](const support::LogRecord& rec) {
            const int tid = rec.rank >= 0 ? obs::Timeline::rank_tid(rec.rank)
                                          : obs::Timeline::kSchedulerTid;
            tl->instant(
                tid, std::string("log.") + support::log_level_name(rec.level),
                "log", {obs::arg_str("msg", rec.message)});
          });
    }
    if (args.value("--metrics-out")) {
      metrics_.emplace();
      obs::set_metrics(&*metrics_);
    }
    if (profile_path_) {
      profiler_ = std::make_unique<obs::prof::Profiler>();
      if (obs::prof::kCompiledIn) {
        obs::prof::set_profiler(profiler_.get());
        profiler_->start_sampling();
      } else {
        CHAM_WARN() << "--profile requested but the ChamProf hooks were "
                       "compiled out (-DCHAMELEON_PROF=OFF); the report will "
                       "carry compiled_in:false and empty telemetry";
      }
    }
  }
  ~Observability() {
    if (profiler_) {
      obs::prof::set_profiler(nullptr);
      profiler_->stop_sampling();
    }
    support::set_log_observer(nullptr);
    obs::set_timeline(nullptr);
    obs::set_metrics(nullptr);
  }
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  [[nodiscard]] obs::Timeline* timeline() {
    return timeline_ ? &*timeline_ : nullptr;
  }
  [[nodiscard]] obs::MetricsRegistry* metrics() {
    return metrics_ ? &*metrics_ : nullptr;
  }
  [[nodiscard]] obs::prof::Profiler* profiler() { return profiler_.get(); }
  [[nodiscard]] const std::optional<std::string>& profile_path() const {
    return profile_path_;
  }

 private:
  std::optional<std::string> profile_path_;
  std::optional<obs::Timeline> timeline_;
  std::optional<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::prof::Profiler> profiler_;
};

/// Everything needed to run one workload under one tool. The tracer
/// pointer is null for --tool none (bare simulator, no tracing tool) —
/// every consumer of trace output must check it.
struct WorkloadRun {
  const workloads::WorkloadInfo* info = nullptr;
  int procs = 0;
  std::string tool_name;
  workloads::WorkloadParams params;
  core::ChameleonConfig config;

  std::optional<sim::Engine> engine;
  std::optional<trace::CallSiteRegistry> stacks;
  std::optional<sim::FaultInjector> injector;
  /// ChamDurable: set by --checkpoint-dir / --resume; the config holds a
  /// non-owning pointer, so these must outlive the tool below them.
  std::unique_ptr<durable::Checkpointer> checkpointer;
  std::optional<durable::RecoveredState> recovered;
  std::optional<trace::ScalaTraceTool> scalatrace;
  std::optional<core::ChameleonTool> chameleon;
  std::optional<core::AcurdionTool> acurdion;
  /// The selected tool viewed through the common tracer base; null when
  /// tool_name == "none".
  trace::ScalaTraceTool* tracer = nullptr;
};

/// Parse the shared run/report options and construct (but do not run) the
/// engine + tool. Returns 0 on success, a process exit code otherwise.
int setup_run(const Args& args, WorkloadRun& run) {
  const auto workload_name = args.value("--workload");
  const auto procs = args.value("--procs");
  if (!workload_name || !procs) return usage();
  run.info = workloads::find_workload(*workload_name);
  if (run.info == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (try: chamtrace list)\n",
                 workload_name->c_str());
    return 2;
  }
  run.procs = std::stoi(*procs);
  run.tool_name = args.value("--tool").value_or("chameleon");

  run.params.cls = args.value("--class").value_or("D")[0];
  run.params.timesteps = std::stoi(args.value("--steps").value_or("0"));

  run.config.k = static_cast<std::size_t>(std::stoul(
      args.value("--k").value_or(std::to_string(run.info->default_k))));
  run.config.call_frequency = std::stoi(
      args.value("--freq").value_or(std::to_string(run.info->default_freq)));
  run.config.auto_marker = args.has("--auto-marker");

  run.engine.emplace(sim::EngineOptions{
      .nprocs = run.procs,
      .sched_seed = std::stoull(args.value("--sched-seed").value_or("0")),
      .threads = std::stoi(args.value("--threads").value_or("1"))});
  run.stacks.emplace(run.procs);
  if (const auto fault = args.value("--fault")) {
    const std::uint64_t seed =
        std::stoull(args.value("--fault-seed").value_or("0"));
    run.injector.emplace(load_fault_plan(*fault, seed));
    run.engine->set_fault_injector(&*run.injector);
    run.engine->set_site_probe([stacks = &*run.stacks](sim::Rank rank) {
      const auto& frames = stacks->stack(rank).frames();
      return frames.empty() ? 0 : frames.back();
    });
  }
  if (run.tool_name == "scalatrace") {
    run.scalatrace.emplace(run.procs, &*run.stacks);
    run.tracer = &*run.scalatrace;
  } else if (run.tool_name == "acurdion") {
    run.acurdion.emplace(run.procs, &*run.stacks, run.config);
    run.tracer = &*run.acurdion;
  } else if (run.tool_name == "chameleon") {
    run.chameleon.emplace(run.procs, &*run.stacks, run.config);
    run.tracer = &*run.chameleon;
  } else if (run.tool_name != "none") {
    std::fprintf(stderr, "unknown tool '%s'\n", run.tool_name.c_str());
    return 2;
  }
  if (run.tracer != nullptr) run.engine->set_tool(run.tracer);
  return 0;
}

void execute(WorkloadRun& run) {
  run.engine->run(
      [&](sim::Mpi& mpi) { run.info->run(mpi, *run.stacks, run.params); });
}

// --------------------------------------------------------------------------
// ChamDurable wiring
// --------------------------------------------------------------------------

/// Everything a later `--resume` needs to re-execute this run
/// deterministically, captured from the fully resolved options.
durable::RunManifest make_manifest(const Args& args, const WorkloadRun& run) {
  durable::RunManifest m;
  m.workload = std::string(run.info->name);
  m.cls = std::string(1, run.params.cls);
  m.timesteps = run.params.timesteps;
  m.procs = run.procs;
  m.k = run.config.k;
  m.call_frequency = run.config.call_frequency;
  m.max_window = run.config.max_window;
  m.policy = static_cast<std::uint8_t>(run.config.policy);
  m.seed = run.config.seed;
  m.degrade_fraction = run.config.degrade_fraction;
  m.auto_marker = run.config.auto_marker;
  if (run.injector) {
    m.fault_plan = run.injector->plan().to_string();
    m.fault_seed = run.injector->plan().seed;
  }
  m.sched_seed = std::stoull(args.value("--sched-seed").value_or("0"));
  m.snapshot_every = std::stoi(args.value("--snapshot-every").value_or("8"));
  return m;
}

/// Crash faults keyed on call/marker/site indices fire identically during
/// the fast-forward replay, but toolop crashes and message drops hang off
/// tool communication the fast-forward skips — resuming such a plan would
/// diverge from the original run, so refuse it up front.
bool plan_replayable_on_resume(const sim::FaultPlan& plan) {
  for (const auto& spec : plan.faults) {
    if (spec.kind == sim::FaultKind::kDrop) return false;
    if (spec.kind == sim::FaultKind::kCrash && spec.at_toolop != 0)
      return false;
  }
  return true;
}

durable::CheckpointerOptions checkpointer_options(const Args& args,
                                                 std::int32_t snapshot_every) {
  durable::CheckpointerOptions opts;
  opts.snapshot_every = snapshot_every;
  opts.kill_after_epoch =
      std::stoull(args.value("--kill-at-epoch").value_or("0"));
  return opts;
}

/// `run --resume <dir>`: recover the durable state and rebuild the whole
/// run from the stored manifest (CLI workload/config flags are ignored —
/// the resumed run must replay the original one). Leaves run.engine unset
/// when the recovered run had already finalized: there is nothing left to
/// execute and the caller serves outputs straight from the recovery.
int setup_resume(const Args& args, const std::string& dir, WorkloadRun& run) {
  run.recovered.emplace(durable::recover(dir));
  const durable::RunManifest& m = run.recovered->manifest;
  run.info = workloads::find_workload(m.workload);
  if (run.info == nullptr) {
    std::fprintf(stderr, "checkpoint manifest names unknown workload '%s'\n",
                 m.workload.c_str());
    return 2;
  }
  std::optional<sim::FaultPlan> plan;
  if (!m.fault_plan.empty()) {
    plan = sim::FaultPlan::parse(m.fault_plan, m.fault_seed);
    if (!plan_replayable_on_resume(*plan)) {
      std::fprintf(stderr,
                   "cannot resume: the run's fault plan contains toolop "
                   "crashes or message drops, which do not replay "
                   "identically through the fast-forward "
                   "(docs/DURABILITY.md)\n");
      return 2;
    }
  }
  std::printf(
      "recovered %s/%d from %s: epoch %llu (snapshot %llu + %llu journal "
      "epoch(s)%s)%s\n",
      m.workload.c_str(), m.procs, dir.c_str(),
      static_cast<unsigned long long>(run.recovered->epoch),
      static_cast<unsigned long long>(run.recovered->snapshot_epoch),
      static_cast<unsigned long long>(run.recovered->journal_epochs_replayed),
      run.recovered->journal_torn_tail ? ", torn tail dropped" : "",
      run.recovered->finalized ? ", already finalized" : "");
  if (run.recovered->finalized) return 0;

  run.procs = m.procs;
  run.tool_name = "chameleon";
  run.params.cls = m.cls.empty() ? 'D' : m.cls[0];
  run.params.timesteps = m.timesteps;
  run.config.k = m.k;
  run.config.call_frequency = m.call_frequency;
  run.config.max_window = m.max_window;
  run.config.policy = static_cast<cluster::SelectPolicy>(m.policy);
  run.config.seed = m.seed;
  run.config.degrade_fraction = m.degrade_fraction;
  run.config.auto_marker = m.auto_marker;

  // --threads is an execution choice, not part of the recorded run: the
  // determinism contract makes the resumed output identical at any count,
  // so it may differ from the original run's.
  run.engine.emplace(sim::EngineOptions{
      .nprocs = run.procs,
      .sched_seed = m.sched_seed,
      .threads = std::stoi(args.value("--threads").value_or("1"))});
  run.stacks.emplace(run.procs);
  if (plan) {
    run.injector.emplace(*plan);
    run.engine->set_fault_injector(&*run.injector);
    run.engine->set_site_probe([stacks = &*run.stacks](sim::Rank rank) {
      const auto& frames = stacks->stack(rank).frames();
      return frames.empty() ? 0 : frames.back();
    });
  }
  run.checkpointer = durable::Checkpointer::attach(
      dir, *run.recovered, checkpointer_options(args, m.snapshot_every));
  run.config.checkpointer = run.checkpointer.get();
  run.config.resume = &*run.recovered;
  run.chameleon.emplace(run.procs, &*run.stacks, run.config);
  run.tracer = &*run.chameleon;
  run.engine->set_tool(run.tracer);
  return 0;
}

std::string rank_label(int rank) { return std::to_string(rank); }

/// Bridge every accumulator the run produced into the metrics registry:
/// tool-wide perf counters, per-rank per-phase seconds, Chameleon's
/// per-rank per-state seconds and trace-memory bytes, and the engine's
/// fault counters.
void export_run_metrics(obs::MetricsRegistry& reg, WorkloadRun& run) {
  const std::string& tool = run.tool_name;
  if (run.tracer != nullptr) {
    trace::export_to_metrics(run.tracer->perf_counters(), reg, tool);
    reg.set_counter("cham.merge.operations", {{"tool", tool}},
                    run.tracer->merge_operations());
    reg.set_counter("cham.merge.bytes", {{"tool", tool}},
                    run.tracer->merge_bytes());
    reg.set_counter("cham.events.recorded", {{"tool", tool}},
                    run.tracer->events_recorded_total());
    for (int r = 0; r < run.procs; ++r) {
      const trace::RankTraceState& st = run.tracer->rank_state(r);
      const obs::Labels base{{"rank", rank_label(r)}, {"tool", tool}};
      obs::Labels intra = base;
      intra.emplace_back("phase", "intra");
      reg.set_gauge("cham.rank.phase_seconds", intra, st.intra_timer.total());
      obs::Labels inter = base;
      inter.emplace_back("phase", "inter");
      reg.set_gauge("cham.rank.phase_seconds", inter, st.inter_timer.total());
      reg.set_counter("cham.rank.trace_bytes", base,
                      run.tracer->rank_trace_bytes(r));
    }
  }
  if (run.chameleon) {
    const core::ChameleonTool& cham = *run.chameleon;
    reg.set_counter("cham.run.markers_processed", {{"tool", tool}},
                    cham.marker_calls_processed());
    reg.set_counter("cham.run.clusters", {{"tool", tool}}, cham.effective_k());
    reg.set_counter("cham.run.callpaths", {{"tool", tool}},
                    cham.num_callpath_clusters());
    for (int s = 0; s < 4; ++s) {
      const auto state = static_cast<core::MarkerState>(s);
      const std::string state_name = core::marker_state_name(state);
      for (int r = 0; r < run.procs; ++r) {
        const obs::Labels labels{{"rank", rank_label(r)},
                                 {"state", state_name}};
        reg.set_gauge("cham.rank.state_seconds", labels,
                      cham.rank_state_seconds(r, state));
        const auto& sb = cham.rank_state_bytes(r, state);
        reg.set_counter("cham.mem.state_bytes", labels, sb.bytes_total);
        reg.set_counter("cham.mem.state_calls", labels, sb.calls);
      }
    }
    for (int r = 0; r < run.procs; ++r) {
      const obs::Labels labels{{"rank", rank_label(r)}};
      const support::MemTracker& mem = cham.rank_mem(r);
      reg.set_gauge("cham.mem.current_bytes", labels,
                    static_cast<double>(mem.current()));
      reg.set_gauge("cham.mem.peak_bytes", labels,
                    static_cast<double>(mem.peak()));
    }
  }
  reg.set_counter("cham.engine.ranks_failed", {},
                  static_cast<std::uint64_t>(run.engine->failed_count()));
  reg.set_counter("cham.engine.messages_lost", {}, run.engine->messages_lost());
  reg.set_counter("cham.engine.retransmissions", {},
                  run.engine->retransmissions());
}

/// Write profile/timeline/metrics output files if requested. Returns 0 or
/// an exit code on I/O failure. The profile is finished first: stopping the
/// sampler publishes the folded stacks, and the counter tracks must merge
/// into the timeline before the timeline itself is rendered.
int finish_observability(const Args& args, Observability& scope,
                         WorkloadRun& run) {
  if (obs::prof::Profiler* prof = scope.profiler()) {
    obs::prof::set_profiler(nullptr);  // hooks off before export
    prof->stop_sampling();
    if (obs::Timeline* tl = scope.timeline()) prof->export_counter_tracks(*tl);
    const std::string& path = *scope.profile_path();
    if (!write_file(path, prof->to_json_string())) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    std::printf(
        "wrote profile (%d shard(s), %llu sample(s), self-cost %.3f ms) to "
        "%s\n",
        prof->shards_bound(),
        static_cast<unsigned long long>(prof->samples_taken()),
        prof->self_seconds() * 1e3, path.c_str());
  }
  if (const auto path = args.value("--timeline")) {
    obs::Timeline* tl = scope.timeline();
    if (tl->flushing()) {
      if (!tl->finish_flush()) {
        std::fprintf(stderr, "failed to write %s\n", path->c_str());
        return 1;
      }
      std::printf("wrote timeline (%zu events, streamed) to %s\n",
                  tl->event_count(), path->c_str());
    } else {
      const std::string doc = tl->to_json();
      if (!write_file(*path, doc)) {
        std::fprintf(stderr, "failed to write %s\n", path->c_str());
        return 1;
      }
      std::printf("wrote timeline (%zu events) to %s\n", tl->event_count(),
                  path->c_str());
    }
  }
  if (const auto path = args.value("--metrics-out")) {
    export_run_metrics(*scope.metrics(), run);
    const std::string doc = scope.metrics()->to_json_string();
    if (!write_file(*path, doc)) {
      std::fprintf(stderr, "failed to write %s\n", path->c_str());
      return 1;
    }
    std::printf("wrote %zu metrics to %s\n", scope.metrics()->size(),
                path->c_str());
  }
  return 0;
}

// --------------------------------------------------------------------------
// Subcommands
// --------------------------------------------------------------------------

/// Serve `run --resume` outputs for an already-finalized checkpoint: the
/// durable wire images ARE the final state, so no re-execution happens and
/// --out/--clusters-out receive them byte-for-byte.
int emit_recovered_outputs(const Args& args, const WorkloadRun& run) {
  const durable::RecoveredState& rec = *run.recovered;
  const auto nodes = trace::decode_trace(rec.online_wire);
  print_stats(nodes);
  if (args.has("--text")) std::fputs(trace::format_trace(nodes).c_str(), stdout);
  const auto dump = [](const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
    if (!write_file(path, std::string_view(
                              reinterpret_cast<const char*>(bytes.data()),
                              bytes.size()))) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %zu bytes to %s\n", bytes.size(), path.c_str());
    return 0;
  };
  if (const auto out = args.value("--out"))
    if (int rc = dump(*out, rec.online_wire); rc != 0) return rc;
  if (const auto out = args.value("--clusters-out"))
    if (int rc = dump(*out, rec.clusters_wire); rc != 0) return rc;
  return 0;
}

int cmd_run(const Args& args) {
  WorkloadRun run;
  if (const auto dir = args.value("--resume")) {
    if (int rc = setup_resume(args, *dir, run); rc != 0) return rc;
    if (run.recovered->finalized) return emit_recovered_outputs(args, run);
  } else {
    if (int rc = setup_run(args, run); rc != 0) return rc;
    if (const auto dir = args.value("--checkpoint-dir")) {
      if (!run.chameleon) {
        std::fprintf(stderr,
                     "--checkpoint-dir journals the Chameleon protocol; "
                     "--tool %s has no epochs to checkpoint\n",
                     run.tool_name.c_str());
        return 2;
      }
      run.checkpointer = durable::Checkpointer::create(
          *dir, make_manifest(args, run),
          checkpointer_options(
              args, std::stoi(args.value("--snapshot-every").value_or("8"))));
      run.config.checkpointer = run.checkpointer.get();
      // Rebuild the tool with the checkpointer wired in (same pattern as
      // report's record_epochs rebuild).
      run.chameleon.emplace(run.procs, &*run.stacks, run.config);
      run.tracer = &*run.chameleon;
      run.engine->set_tool(run.tracer);
    }
  }
  if (args.has("--perf") && run.tracer == nullptr) {
    std::fprintf(stderr,
                 "--perf needs a tracing tool, but --tool none selected the "
                 "bare simulator; drop --perf or pick a tool\n");
    return 2;
  }
  if ((args.has("--text") || args.value("--out")) && run.tracer == nullptr) {
    std::fprintf(stderr,
                 "--text/--out need a tracing tool, but --tool none selected "
                 "the bare simulator\n");
    return 2;
  }

  Observability scope(args);
  execute(run);

  std::printf("traced %s on %d ranks with %s\n",
              std::string(run.info->name).c_str(), run.procs,
              run.tool_name.c_str());
  if (run.injector) {
    std::printf(
        "faults: %llu crash(es), %llu drop(s); %d rank(s) dead, %llu "
        "message(s) lost, %llu retransmission(s)\n",
        static_cast<unsigned long long>(run.injector->crashes_injected()),
        static_cast<unsigned long long>(run.injector->drops_injected()),
        run.engine->failed_count(),
        static_cast<unsigned long long>(run.engine->messages_lost()),
        static_cast<unsigned long long>(run.engine->retransmissions()));
  }
  if (run.checkpointer) {
    std::printf(
        "durable: %llu epoch(s) committed, %llu snapshot(s), %llu rank "
        "record(s), %llu fsync(s)\n",
        static_cast<unsigned long long>(run.checkpointer->epochs_committed()),
        static_cast<unsigned long long>(run.checkpointer->snapshots_written()),
        static_cast<unsigned long long>(run.checkpointer->records_appended()),
        static_cast<unsigned long long>(run.checkpointer->fsyncs()));
  }
  if (run.tracer != nullptr) {
    const std::vector<trace::TraceNode>& nodes =
        run.chameleon ? run.chameleon->online_trace()
                      : run.tracer->global_trace();
    print_stats(nodes);
    if (run.chameleon) {
      const core::ChameleonTool& cham = *run.chameleon;
      std::printf(
          "markers processed: %llu (C=%llu L=%llu AT=%llu), clusters: "
          "%zu over %zu call-paths\n",
          static_cast<unsigned long long>(cham.marker_calls_processed()),
          static_cast<unsigned long long>(
              cham.state_count(core::MarkerState::kClustering)),
          static_cast<unsigned long long>(
              cham.state_count(core::MarkerState::kLead)),
          static_cast<unsigned long long>(
              cham.state_count(core::MarkerState::kAllTracing)),
          cham.effective_k(), cham.num_callpath_clusters());
    }
    if (args.has("--perf")) {
      const trace::PerfCounters& perf = run.tracer->perf_counters();
      std::printf("perf counters (fast path %s):\n%s\n",
                  trace::fast_path_enabled() ? "on" : "off",
                  perf.to_string().c_str());
    }
    if (args.has("--text")) {
      std::fputs(trace::format_trace(nodes).c_str(), stdout);
    }
    if (const auto out = args.value("--out")) {
      const auto bytes = trace::encode_trace(nodes);
      if (!write_file(*out,
                      std::string_view(
                          reinterpret_cast<const char*>(bytes.data()),
                          bytes.size()))) {
        std::fprintf(stderr, "failed to write %s\n", out->c_str());
        return 1;
      }
      std::printf("wrote %zu bytes to %s\n", bytes.size(), out->c_str());
    }
    if (const auto out = args.value("--clusters-out")) {
      if (!run.chameleon) {
        std::fprintf(stderr,
                     "--clusters-out needs the Chameleon tool; --tool %s has "
                     "no cluster table\n",
                     run.tool_name.c_str());
        return 2;
      }
      const auto bytes = run.chameleon->clusters().encode();
      if (!write_file(*out,
                      std::string_view(
                          reinterpret_cast<const char*>(bytes.data()),
                          bytes.size()))) {
        std::fprintf(stderr, "failed to write %s\n", out->c_str());
        return 1;
      }
      std::printf("wrote cluster table (%zu bytes) to %s\n", bytes.size(),
                  out->c_str());
    }
  }
  return finish_observability(args, scope, run);
}

int cmd_report(const Args& args) {
  const std::string format = args.value("--format").value_or("text");
  if (format != "text" && format != "csv" && format != "json") {
    std::fprintf(stderr, "unknown report format '%s' (text|csv|json)\n",
                 format.c_str());
    return 2;
  }
  WorkloadRun run;
  if (int rc = setup_run(args, run); rc != 0) return rc;
  if (!run.chameleon) {
    std::fprintf(stderr,
                 "chamtrace report replays the Chameleon protocol; --tool %s "
                 "has no epochs to report\n",
                 run.tool_name.c_str());
    return 2;
  }
  // Epoch recording is off by default (costs O(P) per marker); the report
  // is the one consumer, so rebuild the tool with it enabled.
  run.config.record_epochs = true;
  run.chameleon.emplace(run.procs, &*run.stacks, run.config);
  run.tracer = &*run.chameleon;
  run.engine->set_tool(run.tracer);

  Observability scope(args);
  execute(run);

  const obs::ReportInput input =
      core::build_report_input(*run.chameleon, std::string(run.info->name));
  std::string rendered;
  if (format == "text") {
    rendered = obs::render_text(input);
  } else if (format == "csv") {
    rendered = obs::render_csv(input);
  } else {
    support::json::Writer w;
    obs::render_json(input, w);
    rendered = w.str();
    rendered.push_back('\n');
  }
  if (const auto out = args.value("--out")) {
    if (!write_file(*out, rendered)) {
      std::fprintf(stderr, "failed to write %s\n", out->c_str());
      return 1;
    }
    std::printf("wrote %s report (%zu epochs) to %s\n", format.c_str(),
                input.epochs.size(), out->c_str());
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  return finish_observability(args, scope, run);
}

/// Installs a race sink for one scope and guarantees removal even when the
/// workload throws, so no dangling analyzer outlives the run.
class RaceSinkScope {
 public:
  explicit RaceSinkScope(race::Sink* sink) { race::set_sink(sink); }
  ~RaceSinkScope() { race::set_sink(nullptr); }
  RaceSinkScope(const RaceSinkScope&) = delete;
  RaceSinkScope& operator=(const RaceSinkScope&) = delete;
};

int cmd_race(const Args& args) {
  WorkloadRun run;
  if (int rc = setup_run(args, run); rc != 0) return rc;

  // The vector-clock analyzer consumes the annotation stream in program
  // order and is not thread-safe, so the analyzed pass always runs
  // single-threaded — its findings are interleaving-independent anyway.
  // The requested thread count is exercised by the determinism audit below.
  const int requested_threads =
      std::stoi(args.value("--threads").value_or("1"));
  if (requested_threads > 1) {
    CHAM_WARN() << "race: analyzer pass clamped to --threads 1 (requested "
                << requested_threads
                << "; the RaceAnalyzer is single-threaded, and the "
                   "determinism audit covers multi-threaded runs)";
    run.engine.emplace(sim::EngineOptions{
        .nprocs = run.procs,
        .sched_seed = std::stoull(args.value("--sched-seed").value_or("0"))});
    if (run.injector) {
      run.engine->set_fault_injector(&*run.injector);
      run.engine->set_site_probe([stacks = &*run.stacks](sim::Rank rank) {
        const auto& frames = stacks->stack(rank).frames();
        return frames.empty() ? 0 : frames.back();
      });
    }
    if (run.tracer != nullptr) run.engine->set_tool(run.tracer);
  }

  Observability scope(args);

  // Pass 1: the analyzed run. Seed 0 keeps the scheduler in FIFO order —
  // the point of the vector clocks is that findings do not depend on the
  // observed interleaving.
  analysis::race::RaceAnalyzer analyzer(run.procs);
  {
    RaceSinkScope sink(&analyzer);
    execute(run);
  }

  analysis::DiagnosticSink diagnostics;
  analyzer.report(diagnostics);
  if (obs::Timeline* tl = scope.timeline()) {
    for (const auto& finding : analyzer.findings())
      tl->instant(obs::Timeline::rank_tid(finding.current.task >= 0
                                              ? finding.current.task
                                              : 0),
                  "race.conflict", "race",
                  {obs::arg_str("location", finding.location),
                   obs::arg_str("kind",
                                std::string(analysis::race::kind_name(
                                    finding.kind)))});
  }

  std::printf(
      "analyzed %s on %d ranks with %s: %llu accesses (%llu atomic), %llu "
      "sync ops, %zu locations, %llu epochs\n",
      std::string(run.info->name).c_str(), run.procs, run.tool_name.c_str(),
      static_cast<unsigned long long>(analyzer.accesses()),
      static_cast<unsigned long long>(analyzer.atomic_accesses()),
      static_cast<unsigned long long>(analyzer.sync_ops()),
      analyzer.locations(),
      static_cast<unsigned long long>(analyzer.epochs()));
  if (!diagnostics.clean())
    std::fputs(diagnostics.format_report().c_str(), stdout);

  // Pass 2: the determinism audit. Baseline FIFO (seed 0) plus N shuffled
  // scheduler seeds; every run records per-epoch wire-image digests and
  // the sequences must match element-wise. Only Chameleon commits epoch
  // state, so other tools have nothing to audit.
  std::optional<analysis::race::DeterminismResult> determinism;
  bool threads_deterministic = true;
  int divergent_thread_count = 0;
  std::size_t thread_runs = 0;
  const bool audit = !args.has("--no-audit") && run.chameleon.has_value();
  if (audit) {
    const auto digests_for = [&](std::uint64_t seed, int threads) {
      sim::Engine engine(sim::EngineOptions{
          .nprocs = run.procs, .sched_seed = seed, .threads = threads});
      trace::CallSiteRegistry stacks(run.procs);
      core::ChameleonConfig config = run.config;
      config.record_digests = true;
      core::ChameleonTool tool(run.procs, &stacks, config);
      engine.set_tool(&tool);
      engine.run([&](sim::Mpi& mpi) {
        run.info->run(mpi, stacks, run.params);
      });
      return tool.epoch_digests();
    };
    const int nseeds = std::stoi(args.value("--seeds").value_or("10"));
    std::vector<std::uint64_t> seeds{0};
    for (int s = 1; s <= nseeds; ++s)
      seeds.push_back(static_cast<std::uint64_t>(s));
    determinism = analysis::race::audit_determinism(
        [&](std::uint64_t seed) { return digests_for(seed, 1); }, seeds);

    // ChamShard leg: the same workload at 2 and 4 shards, FIFO and one
    // shuffled seed each, must reproduce the single-threaded per-epoch
    // digests element-for-element.
    const std::vector<std::uint64_t> baseline = digests_for(0, 1);
    for (const int threads : {2, 4}) {
      for (const std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{1}}) {
        ++thread_runs;
        if (digests_for(seed, threads) != baseline) {
          threads_deterministic = false;
          divergent_thread_count = threads;
        }
      }
    }
  }

  if (const auto out = args.value("--json")) {
    analysis::race::RaceReportMeta meta{std::string(run.info->name),
                                        run.tool_name, run.procs};
    meta.requested_threads = requested_threads;
    meta.analyzer_threads = 1;
    const std::string doc = analysis::race::write_race_json(
        analyzer, meta, determinism ? &*determinism : nullptr);
    if (!write_file(*out, doc)) {
      std::fprintf(stderr, "failed to write %s\n", out->c_str());
      return 1;
    }
    std::printf("wrote race report to %s\n", out->c_str());
  }
  if (int rc = finish_observability(args, scope, run); rc != 0) return rc;

  bool failed = false;
  if (!analyzer.findings().empty()) {
    std::printf("race: %zu conflicting access pair(s) found\n",
                analyzer.findings().size());
    failed = true;
  }
  if (determinism && !determinism->deterministic) {
    std::printf(
        "race: non-deterministic — seed %llu diverges from baseline at "
        "epoch %lld\n",
        static_cast<unsigned long long>(determinism->divergent_seed),
        static_cast<long long>(determinism->first_divergent_epoch));
    failed = true;
  } else if (determinism && failed) {
    std::printf("race: %zu epochs deterministic across %zu seeds\n",
                determinism->epochs_compared, determinism->seeds.size());
  }
  if (determinism && !threads_deterministic) {
    std::printf(
        "race: non-deterministic across thread counts — %d shards diverge "
        "from the single-threaded baseline\n",
        divergent_thread_count);
    failed = true;
  }
  if (!failed) {
    if (determinism)
      std::printf(
          "race: clean (0 findings; %zu epochs deterministic across %zu "
          "seeds and %zu multi-threaded runs)\n",
          determinism->epochs_compared, determinism->seeds.size(),
          thread_runs);
    else
      std::printf("race: clean (0 findings; determinism audit skipped)\n");
  }
  return failed ? 1 : 0;
}

/// `chamtrace profile <file> [--folded]`: render a saved chameleon.prof.v1
/// document. Parsing only requires well-formed JSON with the right schema
/// tag (the renderers tolerate missing sections, so a compiled_in:false
/// document still prints); `validate --prof` is the strict check.
int cmd_profile(const Args& args) {
  const auto path = args.positional();
  if (!path) return usage();
  std::ifstream in(*path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path->c_str());
    return 2;
  }
  const std::string text{std::istreambuf_iterator<char>(in), {}};
  support::json::Value doc;
  std::string error;
  if (!support::json::parse(text, &doc, &error)) {
    std::fprintf(stderr, "%s: %s\n", path->c_str(), error.c_str());
    return 2;
  }
  const support::json::Value* schema =
      doc.is_object() ? doc.find("schema") : nullptr;
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "chameleon.prof.v1") {
    std::fprintf(stderr, "%s: not a chameleon.prof.v1 document\n",
                 path->c_str());
    return 2;
  }
  std::fputs(args.has("--folded")
                 ? obs::prof::render_folded(doc).c_str()
                 : obs::prof::render_profile_summary(doc).c_str(),
             stdout);
  return 0;
}

int cmd_validate(const Args& args) {
  const auto timeline_path = args.value("--timeline");
  const auto metrics_path = args.value("--metrics");
  const auto race_path = args.value("--race");
  const auto prof_path = args.value("--prof");
  if (!timeline_path && !metrics_path && !race_path && !prof_path)
    return usage();
  int rc = 0;
  const auto check = [&rc](const std::string& path, auto validator,
                           const char* what) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      rc = 1;
      return;
    }
    const std::string text{std::istreambuf_iterator<char>(in), {}};
    std::string error;
    if (validator(text, &error)) {
      std::printf("%s: valid %s\n", path.c_str(), what);
    } else {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
      rc = 1;
    }
  };
  if (timeline_path)
    check(*timeline_path, obs::validate_timeline_json, "timeline");
  if (metrics_path) check(*metrics_path, obs::validate_metrics_json, "metrics");
  if (race_path) check(*race_path, obs::validate_race_json, "race report");
  if (prof_path) check(*prof_path, obs::validate_prof_json, "profile");
  return rc;
}

int cmd_show(const Args& args) {
  const auto path = args.positional();
  if (!path) return usage();
  const auto nodes = load_trace(*path);
  print_stats(nodes);
  std::fputs(trace::format_trace(nodes).c_str(), stdout);
  return 0;
}

int cmd_replay(const Args& args) {
  const auto path = args.positional();
  const auto procs = args.value("--procs");
  if (!path || !procs) return usage();
  const auto nodes = load_trace(*path);
  const auto result =
      replay::replay_trace(nodes, {.nprocs = std::stoi(*procs)});
  std::printf("replayed %llu events (%llu messages, %llu collectives)\n",
              static_cast<unsigned long long>(result.events_replayed),
              static_cast<unsigned long long>(result.messages),
              static_cast<unsigned long long>(result.collectives));
  std::printf("virtual completion time: %.6f s\n", result.vtime);
  if (result.cancelled_recvs != 0 || result.forced_collectives != 0) {
    std::printf("approximation: %llu cancelled recvs, %llu forced "
                "collectives\n",
                static_cast<unsigned long long>(result.cancelled_recvs),
                static_cast<unsigned long long>(result.forced_collectives));
  }
  return 0;
}

/// Uniform CLI failure reporting for bad input files: one line on stderr
/// (a JSON object when --log-json structured output was requested) and
/// exit code 2, distinguishing "your file is bad" from internal errors (1).
int report_input_error(const Args& args, const char* kind,
                       const std::string& message) {
  if (args.has("--log-json")) {
    support::json::Writer w(/*pretty=*/false);
    w.begin_object();
    w.member("error", "chamtrace");
    w.member("kind", kind);
    w.member("message", message);
    w.end_object();
    std::fprintf(stderr, "%s\n", w.str().c_str());
  } else {
    std::fprintf(stderr, "chamtrace: %s error: %s\n", kind, message.c_str());
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  try {
    if (args.has("--log-json"))
      support::set_log_format(support::LogFormat::kJson);
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(args);
    if (command == "report") return cmd_report(args);
    if (command == "race") return cmd_race(args);
    if (command == "profile") return cmd_profile(args);
    if (command == "validate") return cmd_validate(args);
    if (command == "show") return cmd_show(args);
    if (command == "replay") return cmd_replay(args);
  } catch (const trace::DecodeError& e) {
    return report_input_error(args, "decode", e.what());
  } catch (const std::system_error& e) {
    return report_input_error(args, "io", e.what());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chamtrace: %s\n", e.what());
    return 1;
  }
  return usage();
}
