// chamtrace — command-line front end for the Chameleon tracing library.
//
//   chamtrace list
//       List the built-in benchmark workloads.
//   chamtrace run --workload lu --procs 64 [--tool chameleon|scalatrace|
//       acurdion] [--k K] [--freq N] [--class A-D] [--steps N]
//       [--auto-marker] [--fault plan] [--fault-seed N]
//       [--out trace.bin] [--text]
//       Trace a workload and write the global/online trace. --fault takes a
//       fault-plan file, or an inline ';'-separated plan (docs/FAULTS.md);
//       the run then exercises the fault-tolerant protocol and the merged
//       trace may contain GAP nodes for intervals lost with dead leads.
//   chamtrace show trace.bin
//       Print a trace file in the human-readable PRSD form plus statistics.
//   chamtrace replay trace.bin --procs 64
//       Replay a trace at the given scale and report virtual time.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "core/acurdion.hpp"
#include "core/chameleon.hpp"
#include "replay/interp.hpp"
#include "replay/replayer.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/mpi.hpp"
#include "trace/perf.hpp"
#include "trace/serialize.hpp"
#include "workloads/workload.hpp"

using namespace cham;

namespace {

int usage() {
  std::fputs(
      "usage:\n"
      "  chamtrace list\n"
      "  chamtrace run --workload <name> --procs <P> [--tool chameleon|"
      "scalatrace|acurdion]\n"
      "               [--k <K>] [--freq <N>] [--class A|B|C|D] [--steps <N>]"
      " [--auto-marker]\n"
      "               [--fault <plan-file-or-inline>] [--fault-seed <N>]\n"
      "               [--out <file>] [--text] [--perf]\n"
      "  chamtrace show <trace-file>\n"
      "  chamtrace replay <trace-file> --procs <P>\n",
      stderr);
  return 2;
}

/// Minimal flag parser: --name value / --name (boolean).
class Args {
 public:
  Args(int argc, char** argv, int from) {
    for (int i = from; i < argc; ++i) tokens_.emplace_back(argv[i]);
  }
  std::optional<std::string> value(const std::string& flag) const {
    for (std::size_t i = 0; i + 1 < tokens_.size(); ++i)
      if (tokens_[i] == flag) return tokens_[i + 1];
    return std::nullopt;
  }
  bool has(const std::string& flag) const {
    for (const auto& token : tokens_)
      if (token == flag) return true;
    return false;
  }
  std::optional<std::string> positional() const {
    for (const auto& token : tokens_)
      if (token.rfind("--", 0) != 0) return token;
    return std::nullopt;
  }

 private:
  std::vector<std::string> tokens_;
};

int cmd_list() {
  std::printf("%-8s %-4s %-6s %s\n", "name", "K", "freq", "description");
  for (const auto& info : workloads::all_workloads()) {
    std::printf("%-8s %-4zu %-6d %s\n", std::string(info.name).c_str(),
                info.default_k, info.default_freq,
                std::string(info.description).c_str());
  }
  return 0;
}

/// --fault accepts either a fault-plan file or an inline ';'-separated
/// plan string ("crash rank=3 marker=2; drop src=1 dest=2 prob=0.5").
sim::FaultPlan load_fault_plan(const std::string& arg, std::uint64_t seed) {
  std::ifstream in(arg);
  if (in) {
    const std::string text{std::istreambuf_iterator<char>(in), {}};
    return sim::FaultPlan::parse(text, seed);
  }
  return sim::FaultPlan::parse(arg, seed);
}

std::vector<trace::TraceNode> load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<std::uint8_t> bytes(std::istreambuf_iterator<char>(in), {});
  return trace::decode_trace(bytes);
}

void print_stats(const std::vector<trace::TraceNode>& nodes) {
  std::size_t leaves = 0;
  std::uint64_t expanded = 0;
  for (const auto& node : nodes) {
    leaves += node.leaf_count();
    expanded += node.expanded_count();
  }
  std::printf("# top-level nodes: %zu, compressed events: %zu, expanded "
              "events: %llu\n",
              nodes.size(), leaves,
              static_cast<unsigned long long>(expanded));
  std::printf("# event-rank pairs on replay: %llu, encoded size: %zu bytes\n",
              static_cast<unsigned long long>(
                  replay::expanded_event_rank_pairs(nodes)),
              trace::encode_trace(nodes).size());
}

int cmd_run(const Args& args) {
  const auto workload_name = args.value("--workload");
  const auto procs = args.value("--procs");
  if (!workload_name || !procs) return usage();
  const workloads::WorkloadInfo* info = workloads::find_workload(*workload_name);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (try: chamtrace list)\n",
                 workload_name->c_str());
    return 2;
  }
  const int p = std::stoi(*procs);
  const std::string tool_name = args.value("--tool").value_or("chameleon");

  workloads::WorkloadParams params;
  params.cls = args.value("--class").value_or("D")[0];
  params.timesteps = std::stoi(args.value("--steps").value_or("0"));

  core::ChameleonConfig config;
  config.k = static_cast<std::size_t>(
      std::stoul(args.value("--k").value_or(std::to_string(info->default_k))));
  config.call_frequency =
      std::stoi(args.value("--freq").value_or(std::to_string(info->default_freq)));
  config.auto_marker = args.has("--auto-marker");

  sim::Engine engine({.nprocs = p});
  trace::CallSiteRegistry stacks(p);
  std::optional<sim::FaultInjector> injector;
  if (const auto fault = args.value("--fault")) {
    const std::uint64_t seed =
        std::stoull(args.value("--fault-seed").value_or("0"));
    injector.emplace(load_fault_plan(*fault, seed));
    engine.set_fault_injector(&*injector);
    engine.set_site_probe([&stacks](sim::Rank rank) {
      const auto& frames = stacks.stack(rank).frames();
      return frames.empty() ? 0 : frames.back();
    });
  }
  std::optional<trace::ScalaTraceTool> scalatrace;
  std::optional<core::ChameleonTool> chameleon;
  std::optional<core::AcurdionTool> acurdion;
  if (tool_name == "scalatrace") {
    scalatrace.emplace(p, &stacks);
    engine.set_tool(&*scalatrace);
  } else if (tool_name == "acurdion") {
    acurdion.emplace(p, &stacks, config);
    engine.set_tool(&*acurdion);
  } else if (tool_name == "chameleon") {
    chameleon.emplace(p, &stacks, config);
    engine.set_tool(&*chameleon);
  } else {
    std::fprintf(stderr, "unknown tool '%s'\n", tool_name.c_str());
    return 2;
  }

  engine.run([&](sim::Mpi& mpi) { info->run(mpi, stacks, params); });

  const std::vector<trace::TraceNode>& nodes =
      chameleon ? chameleon->online_trace()
                : scalatrace ? scalatrace->global_trace()
                             : acurdion->global_trace();

  std::printf("traced %s on %d ranks with %s\n", workload_name->c_str(), p,
              tool_name.c_str());
  if (injector) {
    std::printf(
        "faults: %llu crash(es), %llu drop(s); %d rank(s) dead, %llu "
        "message(s) lost, %llu retransmission(s)\n",
        static_cast<unsigned long long>(injector->crashes_injected()),
        static_cast<unsigned long long>(injector->drops_injected()),
        engine.failed_count(),
        static_cast<unsigned long long>(engine.messages_lost()),
        static_cast<unsigned long long>(engine.retransmissions()));
  }
  print_stats(nodes);
  if (chameleon) {
    std::printf("markers processed: %llu (C=%llu L=%llu AT=%llu), clusters: "
                "%zu over %zu call-paths\n",
                static_cast<unsigned long long>(chameleon->marker_calls_processed()),
                static_cast<unsigned long long>(
                    chameleon->state_count(core::MarkerState::kClustering)),
                static_cast<unsigned long long>(
                    chameleon->state_count(core::MarkerState::kLead)),
                static_cast<unsigned long long>(
                    chameleon->state_count(core::MarkerState::kAllTracing)),
                chameleon->effective_k(), chameleon->num_callpath_clusters());
  }
  if (args.has("--perf")) {
    const trace::PerfCounters& perf =
        chameleon ? chameleon->perf_counters()
                  : scalatrace ? scalatrace->perf_counters()
                               : acurdion->perf_counters();
    std::printf("perf counters (fast path %s):\n%s\n",
                trace::fast_path_enabled() ? "on" : "off",
                perf.to_string().c_str());
  }
  if (args.has("--text")) {
    std::fputs(trace::format_trace(nodes).c_str(), stdout);
  }
  if (const auto out = args.value("--out")) {
    const auto bytes = trace::encode_trace(nodes);
    std::ofstream file(*out, std::ios::binary | std::ios::trunc);
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    if (!file) {
      std::fprintf(stderr, "failed to write %s\n", out->c_str());
      return 1;
    }
    std::printf("wrote %zu bytes to %s\n", bytes.size(), out->c_str());
  }
  return 0;
}

int cmd_show(const Args& args) {
  const auto path = args.positional();
  if (!path) return usage();
  const auto nodes = load_trace(*path);
  print_stats(nodes);
  std::fputs(trace::format_trace(nodes).c_str(), stdout);
  return 0;
}

int cmd_replay(const Args& args) {
  const auto path = args.positional();
  const auto procs = args.value("--procs");
  if (!path || !procs) return usage();
  const auto nodes = load_trace(*path);
  const auto result =
      replay::replay_trace(nodes, {.nprocs = std::stoi(*procs)});
  std::printf("replayed %llu events (%llu messages, %llu collectives)\n",
              static_cast<unsigned long long>(result.events_replayed),
              static_cast<unsigned long long>(result.messages),
              static_cast<unsigned long long>(result.collectives));
  std::printf("virtual completion time: %.6f s\n", result.vtime);
  if (result.cancelled_recvs != 0 || result.forced_collectives != 0) {
    std::printf("approximation: %llu cancelled recvs, %llu forced "
                "collectives\n",
                static_cast<unsigned long long>(result.cancelled_recvs),
                static_cast<unsigned long long>(result.forced_collectives));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    Args args(argc, argv, 2);
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(args);
    if (command == "show") return cmd_show(args);
    if (command == "replay") return cmd_replay(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chamtrace: %s\n", e.what());
    return 1;
  }
  return usage();
}
