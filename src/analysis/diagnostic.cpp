#include "analysis/diagnostic.hpp"

#include <sstream>

#include "support/logging.hpp"

namespace cham::analysis {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << severity_name(severity) << '[' << code << ']';
  if (rank >= 0) os << " rank " << rank;
  os << ": " << message;
  return os.str();
}

void DiagnosticSink::report(Severity severity, std::string code, int rank,
                            std::string message) {
  if (severity == Severity::kError) ++errors_;
  if (severity == Severity::kWarning) ++warnings_;
  diags_.push_back({severity, std::move(code), rank, std::move(message)});
  if (log_forwarding_) {
    const Diagnostic& d = diags_.back();
    const support::LogLevel level =
        severity == Severity::kError   ? support::LogLevel::kError
        : severity == Severity::kWarning ? support::LogLevel::kWarn
                                         : support::LogLevel::kInfo;
    support::log_message(level, d.to_string());
  }
}

std::size_t DiagnosticSink::count(std::string_view code) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_)
    if (d.code == code) ++n;
  return n;
}

const Diagnostic* DiagnosticSink::find(std::string_view code) const {
  for (const Diagnostic& d : diags_)
    if (d.code == code) return &d;
  return nullptr;
}

std::string DiagnosticSink::format_report() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) os << d.to_string() << '\n';
  return os.str();
}

void DiagnosticSink::clear() {
  diags_.clear();
  errors_ = 0;
  warnings_ = 0;
}

}  // namespace cham::analysis
