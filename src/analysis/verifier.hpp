// ChamVerify runtime half: an MPI correctness checker as a PMPI tool.
//
// VerifierTool observes every traced call through the same pre/post hooks
// the tracer uses, so it composes with ChameleonTool in a sim::ToolChain —
// the standard "correctness tool rides along with the tracing tool" PMPI
// stacking. It checks, online:
//
//   * call-argument sanity: peer/root/tag bounds, communicator validity
//     (tool-internal traffic must never reach the hooks);
//   * collective call-sequence agreement: every rank's i-th collective on a
//     communicator must name the same operation and root (the engine aborts
//     the whole process on op mismatch, so this check fires first and, in
//     fail-fast mode, throws VerificationError instead);
//   * receive truncation: a matched message larger than the posted buffer;
//   * finalize-time leaks: messages sent but never received, receives
//     posted but never matched, request handles never waited on;
//   * deadlock: when the engine stalls, on_stall() builds a wait-for graph
//     from the engine's blocked-fiber introspection, finds cycles and
//     reports every blocked rank with its symbolic call-path backtrace —
//     so a deadlocked run produces a report instead of a hang.
//
// The tool only records diagnostics (see DiagnosticSink); it never repairs
// or alters the run. With fail_fast, errors detected inside a pre/post hook
// throw VerificationError out of the offending rank's fiber.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "sim/tool.hpp"
#include "sim/types.hpp"

namespace cham::trace {
class CallSiteRegistry;
}

namespace cham::analysis {

/// Thrown (fail-fast mode only) from the hook that detected an error.
class VerificationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct VerifierOptions {
  /// Throw VerificationError from the offending hook on the first error.
  /// Required to catch collective divergence before the engine's own
  /// fatal-abort consistency check runs.
  bool fail_fast = false;
};

class VerifierTool : public sim::Tool {
 public:
  /// `stacks` (optional) enables symbolic backtraces in deadlock reports;
  /// it must outlive the tool and be the registry the workload brands.
  explicit VerifierTool(int nprocs,
                        const trace::CallSiteRegistry* stacks = nullptr,
                        VerifierOptions opts = {});

  void on_pre(sim::Rank rank, const sim::CallInfo& info,
              sim::Pmpi& pmpi) override;
  void on_post(sim::Rank rank, const sim::CallInfo& info,
               sim::Pmpi& pmpi) override;
  void on_stall(sim::Engine& engine) override;

  [[nodiscard]] const DiagnosticSink& sink() const { return sink_; }
  /// True when no errors and no warnings were recorded.
  [[nodiscard]] bool clean() const { return sink_.clean(); }

  [[nodiscard]] std::uint64_t calls_checked() const { return calls_checked_; }

 private:
  /// One collective rendezvous as first described by the earliest arrival.
  struct CollRecord {
    sim::Op op = sim::Op::kBarrier;
    sim::Rank root = 0;
    std::size_t bytes = 0;
    sim::Rank first_rank = 0;
    int arrived = 0;
  };

  void error(std::string code, sim::Rank rank, std::string message);
  void check_arguments(sim::Rank rank, const sim::CallInfo& info);
  void check_collective(sim::Rank rank, const sim::CallInfo& info);
  void check_finalize_leaks(sim::Pmpi& pmpi);
  [[nodiscard]] std::string backtrace(sim::Rank rank) const;

  int nprocs_;
  const trace::CallSiteRegistry* stacks_;
  VerifierOptions opts_;
  DiagnosticSink sink_;
  std::uint64_t calls_checked_ = 0;

  // Per-rank collective sequence numbers on the traced communicators,
  // counted at pre-hook time (the engine's own counters advance too late
  // to catch divergence before its fatal consistency check).
  std::vector<std::uint64_t> coll_seq_;  // [comm * nprocs + rank]
  std::map<std::pair<int, std::uint64_t>, CollRecord> coll_sites_;

  // The traced call each rank is currently inside (between pre and post);
  // names the blocking call in deadlock reports.
  std::vector<sim::CallInfo> current_call_;  // [rank]
  std::vector<bool> in_call_;                // [rank]

  int finalized_ranks_ = 0;
  bool leaks_checked_ = false;
  bool stall_reported_ = false;
};

}  // namespace cham::analysis
