// ChamVerify static half: TraceLint, a validity checker for compressed
// RSD/PRSD traces.
//
// Two entry points at two levels of trust:
//
//   * lint_trace() walks an already-decoded node tree and checks the
//     semantic invariants of well-formed ScalaTrace output: loop structure
//     (no zero-iteration or empty-body RSDs), event validity (operation,
//     communicator, marker flag, endpoint kinds and bounds), ranklist
//     well-formedness and rank bounds, and delta-histogram consistency
//     (bin sums match counts, min <= max).
//
//   * lint_trace_bytes() re-walks the *wire format* byte-by-byte with a
//     reporting mini-decoder. This catches corruptions the canonicalizing
//     decoder silently repairs or rejects wholesale: overlapping ranklist
//     sections (decode_ranklist sorts and dedups, destroying the
//     evidence), non-positive section iterations, bad node marks,
//     truncation and trailing garbage — each as a diagnostic instead of a
//     DecodeError, so one corrupt trace yields a full report.
//
// lint_signature() closes the loop with the clustering layer: the
// Call-Path half of an interval signature is exactly recomputable from the
// compressed trace (XOR over distinct stack signatures in first-seen
// order, position-weighted), so a recorded signature that disagrees with
// its own trace indicates corruption or a tracer/clusterer bug.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "trace/event.hpp"

namespace cham::analysis {

struct LintOptions {
  /// World size; > 0 enables rank-bound checks on ranklists and absolute
  /// endpoints.
  int nprocs = 0;
  /// Expect a fully merged global trace: every rank of [0, nprocs) must
  /// appear in at least one leaf's ranklist. Leave off for per-cluster
  /// lead traces, which legitimately cover only their members.
  bool expect_full_cover = false;
};

/// Semantic checks over a decoded trace. Appends to `sink`.
void lint_trace(const std::vector<trace::TraceNode>& nodes,
                const LintOptions& opts, DiagnosticSink& sink);

/// Wire-level checks over an encoded trace. Appends to `sink`. Returns
/// false if the walk had to stop early (unrecoverable corruption).
bool lint_trace_bytes(const std::vector<std::uint8_t>& bytes,
                      const LintOptions& opts, DiagnosticSink& sink);

/// The Call-Path signature the clustering layer would compute for a rank
/// that observed exactly the events of this compressed trace, in order.
std::uint64_t recompute_callpath(const std::vector<trace::TraceNode>& nodes);

/// Compare the recorded Call-Path signature against the trace's own events;
/// reports "signature.mismatch" on disagreement.
void lint_signature(const std::vector<trace::TraceNode>& nodes,
                    std::uint64_t recorded_callpath, DiagnosticSink& sink);

}  // namespace cham::analysis
