// FastTrack-style vector-clock happens-before analyzer.
//
// Consumes the cham::race annotation stream (install with race::set_sink)
// and reports access pairs unordered by happens-before. Per location it
// keeps the last write (task, clock, epoch) and one last-read entry per
// task since that write; per task a vector clock advanced by the modelled
// sync objects (fiber scheduling, mailbox/inbox locks, collective sites,
// epoch barriers — see docs/RACE.md for the full edge catalogue).
//
// Findings are deduplicated by (location, kind, task pair) with an
// occurrence count, so a racy counter bumped every timestep reads as one
// finding, not ten thousand.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/race/annotate.hpp"
#include "analysis/race/determinism.hpp"
#include "analysis/race/vectorclock.hpp"

namespace cham::analysis::race {

/// One side of an unordered pair: which task touched the location, at what
/// local clock, during which protocol epoch.
struct RaceAccess {
  int task = -1;
  std::uint64_t clock = 0;  ///< 0 = no such access recorded
  std::uint64_t epoch = 0;
};

struct RaceFinding {
  enum class Kind : std::uint8_t { kWriteWrite, kWriteRead, kReadWrite };

  std::string location;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  Kind kind = Kind::kWriteWrite;
  RaceAccess prior;    ///< the earlier (already recorded) access
  RaceAccess current;  ///< the access that found it unordered
  std::uint64_t count = 1;  ///< occurrences of this (location, kind, pair)

  [[nodiscard]] std::string to_string() const;
};

/// "write-write", "write-read" (write then unordered read) or "read-write".
std::string_view kind_name(RaceFinding::Kind kind);

class RaceAnalyzer final : public cham::race::Sink {
 public:
  /// `nfibers` worker tasks (0..nfibers-1) plus the scheduler/main context
  /// as task -1. More tasks grow the clocks on demand.
  explicit RaceAnalyzer(int nfibers);

  void on_read(std::string_view loc, std::uint64_t a,
               std::uint64_t b) override;
  void on_write(std::string_view loc, std::uint64_t a,
                std::uint64_t b) override;
  void on_atomic(std::string_view loc, std::uint64_t a,
                 std::uint64_t b) override;
  void on_acquire(std::string_view sync, std::uint64_t a,
                  std::uint64_t b) override;
  void on_release(std::string_view sync, std::uint64_t a,
                  std::uint64_t b) override;
  void on_task(int task) override;
  void on_fork(int child) override;
  void on_epoch() override;

  [[nodiscard]] const std::vector<RaceFinding>& findings() const {
    return findings_;
  }
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t atomic_accesses() const { return atomics_; }
  [[nodiscard]] std::uint64_t sync_ops() const { return sync_ops_; }
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] std::size_t locations() const { return locs_.size(); }
  /// Worker tasks + 1 (the scheduler).
  [[nodiscard]] int tasks() const { return nfibers_ + 1; }

  /// Emit every finding as an error diagnostic (code "race.conflict").
  void report(DiagnosticSink& sink) const;

 private:
  struct Key {
    std::string name;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct LocState {
    RaceAccess write;              ///< last write; clock 0 = none yet
    std::vector<RaceAccess> reads;  ///< per task, last read since `write`
  };

  [[nodiscard]] std::size_t idx(int task) const {
    return task < 0 ? static_cast<std::size_t>(nfibers_)
                    : static_cast<std::size_t>(task);
  }
  [[nodiscard]] RaceAccess here();
  [[nodiscard]] bool ordered_before_now(const RaceAccess& access);
  void grow_tasks(std::size_t n);
  void record(const Key& key, RaceFinding::Kind kind, const RaceAccess& prior,
              const RaceAccess& current);

  int nfibers_;
  int cur_ = -1;
  std::uint64_t accesses_ = 0;
  std::uint64_t atomics_ = 0;
  std::uint64_t sync_ops_ = 0;
  std::uint64_t epochs_ = 0;
  std::vector<VectorClock> vc_;
  std::unordered_map<Key, LocState, KeyHash> locs_;
  std::unordered_map<Key, VectorClock, KeyHash> syncs_;
  std::vector<RaceFinding> findings_;
  /// (location key, kind, prior task, current task) -> findings_ index.
  std::unordered_map<std::string, std::size_t> dedup_;
};

/// Run metadata carried into the chameleon.race.v1 document.
struct RaceReportMeta {
  std::string workload;
  std::string tool;
  int procs = 0;
  /// Analyzer-pass thread accounting: the RaceAnalyzer is single-threaded,
  /// so `chamtrace race --threads N` clamps its instrumented pass to one
  /// thread (the determinism audit still sweeps real shard counts). The
  /// header records both numbers so a saved report is self-explaining.
  int requested_threads = 1;
  int analyzer_threads = 1;
};

/// Render the chameleon.race.v1 JSON document (docs/RACE.md documents the
/// shape). `determinism` is optional — null omits the block.
std::string write_race_json(const RaceAnalyzer& analyzer,
                            const RaceReportMeta& meta,
                            const DeterminismResult* determinism);

}  // namespace cham::analysis::race
