#include "analysis/race/determinism.hpp"

#include <algorithm>

namespace cham::analysis::race {

DeterminismResult audit_determinism(
    const std::function<std::vector<std::uint64_t>(std::uint64_t)>&
        run_digests,
    const std::vector<std::uint64_t>& seeds) {
  DeterminismResult result;
  result.seeds = seeds;
  if (seeds.empty()) return result;

  const std::vector<std::uint64_t> baseline = run_digests(seeds.front());
  result.epochs_compared = baseline.size();
  for (std::size_t i = 1; i < seeds.size(); ++i) {
    const std::vector<std::uint64_t> other = run_digests(seeds[i]);
    const std::size_t common = std::min(baseline.size(), other.size());
    std::size_t divergence = common;
    for (std::size_t e = 0; e < common; ++e) {
      if (baseline[e] != other[e]) {
        divergence = e;
        break;
      }
    }
    if (divergence == common && baseline.size() == other.size())
      continue;  // identical
    result.deterministic = false;
    result.first_divergent_epoch = static_cast<std::int64_t>(divergence);
    result.divergent_seed = seeds[i];
    break;
  }
  return result;
}

}  // namespace cham::analysis::race
