// Vector clocks for the happens-before race analyzer.
//
// One component per task (P fibers + the scheduler). Component values are
// Lamport-style counters: VC_t[u] = the latest operation of task u that
// happens-before task t's current point. Task t's own component VC_t[t] is
// its local clock, bumped whenever t releases a sync object (publishing a
// new point other tasks can order against).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace cham::analysis::race {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t ntasks) : c_(ntasks, 0) {}

  [[nodiscard]] std::uint64_t get(std::size_t task) const {
    return task < c_.size() ? c_[task] : 0;
  }

  void set(std::size_t task, std::uint64_t value) {
    grow(task + 1);
    c_[task] = value;
  }

  void bump(std::size_t task) {
    grow(task + 1);
    ++c_[task];
  }

  /// Pointwise maximum: after `join(o)` everything ordered before o is
  /// ordered before *this.
  void join(const VectorClock& o) {
    grow(o.c_.size());
    for (std::size_t i = 0; i < o.c_.size(); ++i)
      c_[i] = std::max(c_[i], o.c_[i]);
  }

  /// True when the point (task, clock) happens-before this clock's owner:
  /// the owner has synchronized with task at or past that clock value.
  [[nodiscard]] bool ordered_after(std::size_t task,
                                   std::uint64_t clock) const {
    return get(task) >= clock;
  }

  [[nodiscard]] std::size_t size() const { return c_.size(); }

 private:
  void grow(std::size_t n) {
    if (c_.size() < n) c_.resize(n, 0);
  }

  std::vector<std::uint64_t> c_;
};

}  // namespace cham::analysis::race
