#include "analysis/race/annotate.hpp"

namespace cham::race {

namespace {
std::atomic<Sink*> g_sink{nullptr};
}  // namespace

Sink* sink() noexcept { return g_sink.load(std::memory_order_acquire); }

void set_sink(Sink* s) noexcept { g_sink.store(s, std::memory_order_release); }

}  // namespace cham::race
