#include "analysis/race/analyzer.hpp"

#include <utility>

#include "support/hash.hpp"
#include "support/json.hpp"

namespace cham::analysis::race {

std::string_view kind_name(RaceFinding::Kind kind) {
  switch (kind) {
    case RaceFinding::Kind::kWriteWrite:
      return "write-write";
    case RaceFinding::Kind::kWriteRead:
      return "write-read";
    case RaceFinding::Kind::kReadWrite:
      return "read-write";
  }
  return "unknown";
}

namespace {
std::string task_name(int task) {
  return task < 0 ? "scheduler" : "task " + std::to_string(task);
}
}  // namespace

std::string RaceFinding::to_string() const {
  std::string s;
  s += kind_name(kind);
  s += " on ";
  s += location;
  s += "[" + std::to_string(a) + "," + std::to_string(b) + "]: ";
  s += task_name(prior.task) + " (epoch " + std::to_string(prior.epoch) +
       ") vs " + task_name(current.task) + " (epoch " +
       std::to_string(current.epoch) + "), " + std::to_string(count) +
       " occurrence" + (count == 1 ? "" : "s");
  return s;
}

RaceAnalyzer::RaceAnalyzer(int nfibers) : nfibers_(nfibers < 0 ? 0 : nfibers) {
  grow_tasks(static_cast<std::size_t>(tasks()));
}

std::size_t RaceAnalyzer::KeyHash::operator()(const Key& k) const {
  return static_cast<std::size_t>(support::hash_combine(
      support::fnv1a64(k.name), support::hash_combine(k.a, k.b)));
}

void RaceAnalyzer::grow_tasks(std::size_t n) {
  const std::size_t old = vc_.size();
  if (old >= n) return;
  vc_.resize(n);
  // Every task starts at local clock 1 so that clock 0 can mean "no access
  // recorded" in LocState.
  for (std::size_t i = old; i < n; ++i) vc_[i].set(i, 1);
}

RaceAccess RaceAnalyzer::here() {
  const std::size_t t = idx(cur_);
  grow_tasks(t + 1);
  return RaceAccess{cur_, vc_[t].get(t), epochs_};
}

bool RaceAnalyzer::ordered_before_now(const RaceAccess& access) {
  const std::size_t t = idx(cur_);
  grow_tasks(t + 1);
  return vc_[t].ordered_after(idx(access.task), access.clock);
}

void RaceAnalyzer::record(const Key& key, RaceFinding::Kind kind,
                          const RaceAccess& prior, const RaceAccess& current) {
  std::string dk = key.name;
  dk += '\x1f';
  dk += std::to_string(key.a) + "," + std::to_string(key.b) + "," +
        std::to_string(static_cast<int>(kind)) + "," +
        std::to_string(prior.task) + "," + std::to_string(current.task);
  if (auto it = dedup_.find(dk); it != dedup_.end()) {
    ++findings_[it->second].count;
    return;
  }
  RaceFinding f;
  f.location = key.name;
  f.a = key.a;
  f.b = key.b;
  f.kind = kind;
  f.prior = prior;
  f.current = current;
  dedup_.emplace(std::move(dk), findings_.size());
  findings_.push_back(std::move(f));
}

void RaceAnalyzer::on_read(std::string_view loc, std::uint64_t a,
                           std::uint64_t b) {
  ++accesses_;
  const Key key{std::string(loc), a, b};
  LocState& ls = locs_[key];
  const RaceAccess now = here();
  if (ls.write.clock != 0 && ls.write.task != cur_ &&
      !ordered_before_now(ls.write))
    record(key, RaceFinding::Kind::kWriteRead, ls.write, now);
  const std::size_t t = idx(cur_);
  if (ls.reads.size() <= t) ls.reads.resize(t + 1);
  ls.reads[t] = now;
}

void RaceAnalyzer::on_write(std::string_view loc, std::uint64_t a,
                            std::uint64_t b) {
  ++accesses_;
  const Key key{std::string(loc), a, b};
  LocState& ls = locs_[key];
  const RaceAccess now = here();
  if (ls.write.clock != 0 && ls.write.task != cur_ &&
      !ordered_before_now(ls.write))
    record(key, RaceFinding::Kind::kWriteWrite, ls.write, now);
  for (const RaceAccess& r : ls.reads) {
    if (r.clock == 0 || r.task == cur_) continue;
    if (!ordered_before_now(r))
      record(key, RaceFinding::Kind::kReadWrite, r, now);
  }
  ls.write = now;
  ls.reads.clear();  // the new write supersedes the read set
}

void RaceAnalyzer::on_atomic(std::string_view /*loc*/, std::uint64_t /*a*/,
                             std::uint64_t /*b*/) {
  ++atomics_;
}

void RaceAnalyzer::on_acquire(std::string_view sync, std::uint64_t a,
                              std::uint64_t b) {
  ++sync_ops_;
  const Key key{std::string(sync), a, b};
  const auto it = syncs_.find(key);
  if (it == syncs_.end()) return;  // never released: nothing to order against
  const std::size_t t = idx(cur_);
  grow_tasks(t + 1);
  vc_[t].join(it->second);
}

void RaceAnalyzer::on_release(std::string_view sync, std::uint64_t a,
                              std::uint64_t b) {
  ++sync_ops_;
  const Key key{std::string(sync), a, b};
  const std::size_t t = idx(cur_);
  grow_tasks(t + 1);
  syncs_[key].join(vc_[t]);
  // Publishing a new point: later accesses by this task must not appear
  // ordered before acquires that only saw the published clock.
  vc_[t].bump(t);
}

void RaceAnalyzer::on_task(int task) { cur_ = task; }

void RaceAnalyzer::on_fork(int child) {
  const std::size_t p = idx(cur_);
  const std::size_t c = idx(child);
  grow_tasks(std::max(p, c) + 1);
  vc_[c].join(vc_[p]);
  vc_[p].bump(p);
}

void RaceAnalyzer::on_epoch() { ++epochs_; }

void RaceAnalyzer::report(DiagnosticSink& sink) const {
  for (const RaceFinding& f : findings_)
    sink.report(Severity::kError, "race.conflict", f.current.task,
                f.to_string());
}

std::string write_race_json(const RaceAnalyzer& analyzer,
                            const RaceReportMeta& meta,
                            const DeterminismResult* determinism) {
  support::json::Writer w;
  w.begin_object();
  w.member("schema", "chameleon.race.v1");
  w.member("workload", meta.workload);
  w.member("tool", meta.tool);
  w.member("procs", meta.procs);
  w.key("threads").begin_object();
  w.member("requested", meta.requested_threads);
  w.member("analyzer", meta.analyzer_threads);
  w.member("clamped", meta.requested_threads != meta.analyzer_threads);
  w.end_object();
  w.member("tasks", analyzer.tasks());
  w.member("epochs", analyzer.epochs());
  w.member("accesses", analyzer.accesses());
  w.member("atomic_accesses", analyzer.atomic_accesses());
  w.member("sync_ops", analyzer.sync_ops());
  w.member("locations", static_cast<std::uint64_t>(analyzer.locations()));
  w.key("findings").begin_array();
  for (const RaceFinding& f : analyzer.findings()) {
    w.begin_object();
    w.member("location", f.location);
    w.member("a", f.a);
    w.member("b", f.b);
    w.member("kind", kind_name(f.kind));
    w.member("count", f.count);
    const auto side = [&w](const char* name, const RaceAccess& access) {
      w.key(name).begin_object();
      w.member("task", access.task);
      w.member("clock", access.clock);
      w.member("epoch", access.epoch);
      w.end_object();
    };
    side("first", f.prior);
    side("second", f.current);
    w.end_object();
  }
  w.end_array();
  if (determinism != nullptr) {
    w.key("determinism").begin_object();
    w.member("deterministic", determinism->deterministic);
    w.member("epochs_compared",
             static_cast<std::uint64_t>(determinism->epochs_compared));
    w.member("first_divergent_epoch", determinism->first_divergent_epoch);
    if (!determinism->deterministic)
      w.member("divergent_seed", determinism->divergent_seed);
    w.key("seeds").begin_array();
    for (std::uint64_t seed : determinism->seeds) w.value(seed);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  return w.str();
}

}  // namespace cham::analysis::race
