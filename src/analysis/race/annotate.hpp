// ChamRace annotation hooks: the instrumentation half of the happens-before
// race analyzer (see docs/RACE.md).
//
// The simulator is single-threaded today, but ROADMAP item 1 wants to shard
// the fiber engine across a worker-thread pool. Every piece of state that
// more than one fiber touches is annotated with RACE_READ / RACE_WRITE, and
// every ordering mechanism the sharded engine would have to turn into a real
// lock or atomic is modelled as an acquire/release pair on a named sync
// object. A registered Sink (normally analysis::race::RaceAnalyzer) replays
// the annotations through vector clocks and reports the access pairs that
// are unordered by happens-before — exactly the operations that become data
// races once fibers run on threads.
//
// This header is dependency-free on purpose: it is linked as the tiny
// `chameleon_racehook` library so that sim/, trace/ and core/ can annotate
// without depending on the full analysis stack. Same pattern as the src/obs
// global sinks: a null-checked global pointer, ~1ns per annotation when no
// sink is installed. The pointer is std::atomic (acquire/release) so install
// and shutdown are safe once the pilot thread pool lands.
//
// Identity rules:
//  - Locations and sync objects are named by (string literal, a, b), never
//    by raw addresses: container reallocation would silently rename an
//    address-keyed location mid-run.
//  - Tasks are fiber ids (0..P-1); the scheduler/main context is task -1.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

namespace cham::race {

/// Receiver for annotation events. All callbacks run on the annotating
/// task's context; `on_task` has already established which task that is.
class Sink {
 public:
  virtual ~Sink() = default;

  /// Plain (race-checked) accesses to a named location.
  virtual void on_read(std::string_view loc, std::uint64_t a,
                       std::uint64_t b) = 0;
  virtual void on_write(std::string_view loc, std::uint64_t a,
                        std::uint64_t b) = 0;
  /// Accesses that the sharded engine will make std::atomic (counters,
  /// completion flags): logged for coverage, never reported as races, and
  /// carrying no happens-before edge.
  virtual void on_atomic(std::string_view loc, std::uint64_t a,
                         std::uint64_t b) = 0;

  /// Sync-object edges: release publishes the caller's clock into the named
  /// object, acquire joins it into the caller. A mutex is a release at
  /// unlock and an acquire at lock (ScopedSync inverts this deliberately:
  /// entering a critical section acquires, leaving releases).
  virtual void on_acquire(std::string_view sync, std::uint64_t a,
                          std::uint64_t b) = 0;
  virtual void on_release(std::string_view sync, std::uint64_t a,
                          std::uint64_t b) = 0;

  /// Scheduling events: the current task changed (-1 = scheduler/main),
  /// the current task forked `child`, an epoch boundary (marker collective)
  /// completed.
  virtual void on_task(int task) = 0;
  virtual void on_fork(int child) = 0;
  virtual void on_epoch() = 0;
};

/// Install/fetch the global sink. Acquire/release so a sink constructed on
/// one thread is fully visible to annotation sites on another.
Sink* sink() noexcept;
void set_sink(Sink* s) noexcept;

// --- null-checked forwarders -----------------------------------------------

inline void read(std::string_view loc, std::uint64_t a = 0,
                 std::uint64_t b = 0) {
  if (Sink* s = sink()) s->on_read(loc, a, b);
}
inline void write(std::string_view loc, std::uint64_t a = 0,
                  std::uint64_t b = 0) {
  if (Sink* s = sink()) s->on_write(loc, a, b);
}
inline void atomic_access(std::string_view loc, std::uint64_t a = 0,
                          std::uint64_t b = 0) {
  if (Sink* s = sink()) s->on_atomic(loc, a, b);
}
inline void acquire(std::string_view sync, std::uint64_t a = 0,
                    std::uint64_t b = 0) {
  if (Sink* s = sink()) s->on_acquire(sync, a, b);
}
inline void release(std::string_view sync, std::uint64_t a = 0,
                    std::uint64_t b = 0) {
  if (Sink* s = sink()) s->on_release(sync, a, b);
}
inline void set_task(int task) {
  if (Sink* s = sink()) s->on_task(task);
}
inline void fork(int child) {
  if (Sink* s = sink()) s->on_fork(child);
}
inline void epoch() {
  if (Sink* s = sink()) s->on_epoch();
}

/// Models holding a mutex for the current scope: acquire on entry, release
/// on exit. The sharded engine replaces each distinct (name, a, b) with a
/// real lock (or a finer-grained scheme that preserves the same edges).
class ScopedSync {
 public:
  explicit ScopedSync(std::string_view sync, std::uint64_t a = 0,
                      std::uint64_t b = 0)
      : sync_(sync), a_(a), b_(b) {
    acquire(sync_, a_, b_);
  }
  ~ScopedSync() { release(sync_, a_, b_); }
  ScopedSync(const ScopedSync&) = delete;
  ScopedSync& operator=(const ScopedSync&) = delete;

 private:
  std::string_view sync_;
  std::uint64_t a_;
  std::uint64_t b_;
};

}  // namespace cham::race

// Macro spellings for the access annotations, so a future build flag can
// compile them out entirely (the inline forwarders are already ~free, but
// the sharded engine may want zero-overhead release builds).
#define RACE_READ(loc, a, b) ::cham::race::read((loc), (a), (b))
#define RACE_WRITE(loc, a, b) ::cham::race::write((loc), (a), (b))
#define RACE_ATOMIC(loc, a, b) ::cham::race::atomic_access((loc), (a), (b))
