// Determinism auditor: Chameleon's online protocol is only correct if
// per-epoch merges are order-independent. The auditor replays a workload
// under N shuffled scheduler seeds (sim::EngineOptions::sched_seed) and
// diffs per-epoch clusterset wire-image digests; the first divergent epoch
// pinpoints where scheduling order leaked into protocol state.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace cham::analysis::race {

struct DeterminismResult {
  bool deterministic = true;
  /// Seeds audited, in run order; seeds[0] is the baseline.
  std::vector<std::uint64_t> seeds;
  std::size_t epochs_compared = 0;
  /// First epoch whose digest differs from the baseline (-1 = none).
  std::int64_t first_divergent_epoch = -1;
  /// The seed that produced the divergence (meaningful when !deterministic).
  std::uint64_t divergent_seed = 0;
};

/// `run_digests(seed)` must execute the workload under the given scheduler
/// seed and return its per-epoch digests. The audit runs seeds.front()
/// as the baseline, then compares every other seed's digest vector
/// element-wise, stopping at the first divergence. A length mismatch
/// diverges at the first epoch one run is missing.
DeterminismResult audit_determinism(
    const std::function<std::vector<std::uint64_t>(std::uint64_t)>&
        run_digests,
    const std::vector<std::uint64_t>& seeds);

}  // namespace cham::analysis::race
