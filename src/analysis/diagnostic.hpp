// Machine-readable diagnostics for the correctness analysis layer.
//
// Both halves of ChamVerify — the runtime VerifierTool and the static
// TraceLint pass — report through a DiagnosticSink. Each diagnostic carries
// a severity, a stable dotted code (e.g. "deadlock.cycle",
// "ranklist.overlap") suitable for grepping and for test assertions, the
// rank it concerns (-1 when not rank-specific) and a human-readable
// message. The sink aggregates counts so callers can gate on "zero
// errors/warnings" without parsing text.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cham::analysis {

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

const char* severity_name(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;   ///< stable dotted identifier, e.g. "deadlock.cycle"
  int rank = -1;      ///< world rank concerned, -1 if not rank-specific
  std::string message;

  /// One line: "error[deadlock.cycle] rank 3: ...".
  [[nodiscard]] std::string to_string() const;
};

class DiagnosticSink {
 public:
  void report(Severity severity, std::string code, int rank,
              std::string message);

  /// Forward every reported diagnostic through support::log_message (at the
  /// matching log level) so findings land in the structured log stream —
  /// and, when ChamScope is attached there, on the timeline. Off by
  /// default: lint/verifier tests assert on the sink contents alone.
  void set_log_forwarding(bool enabled) { log_forwarding_ = enabled; }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] std::size_t errors() const { return errors_; }
  [[nodiscard]] std::size_t warnings() const { return warnings_; }
  /// No errors and no warnings (info diagnostics do not count).
  [[nodiscard]] bool clean() const { return errors_ == 0 && warnings_ == 0; }

  /// Number of diagnostics carrying `code`.
  [[nodiscard]] std::size_t count(std::string_view code) const;
  /// First diagnostic carrying `code`, or nullptr.
  [[nodiscard]] const Diagnostic* find(std::string_view code) const;

  /// All diagnostics, one to_string() line each.
  [[nodiscard]] std::string format_report() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
  bool log_forwarding_ = false;
};

}  // namespace cham::analysis
