#include "analysis/lint.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "support/histogram.hpp"
#include "trace/serialize.hpp"

namespace cham::analysis {

namespace {

constexpr std::uint8_t kLeafMark = 0xE1;
constexpr std::uint8_t kLoopMark = 0xE2;
constexpr std::uint32_t kMaxBodyLen = 1u << 20;

std::string at(const std::string& path) { return " (at " + path + ")"; }

void check_histogram(const support::Histogram& h, const std::string& path,
                     DiagnosticSink& sink) {
  std::uint64_t bin_sum = 0;
  for (int i = 0; i < support::Histogram::kBins; ++i) bin_sum += h.bin(i);
  if (bin_sum != h.count()) {
    std::ostringstream os;
    os << "histogram bins sum to " << bin_sum << " but count is " << h.count()
       << at(path);
    sink.report(Severity::kError, "histogram.bin_sum", -1, os.str());
  }
  if (h.count() > 0 && h.min() > h.max()) {
    std::ostringstream os;
    os << "histogram min " << h.min() << " exceeds max " << h.max()
       << at(path);
    sink.report(Severity::kError, "histogram.bounds", -1, os.str());
  }
  if (h.count() == 0 && h.total() != 0.0) {
    std::ostringstream os;
    os << "empty histogram carries total " << h.total() << at(path);
    sink.report(Severity::kError, "histogram.empty_sum", -1, os.str());
  }
}

void check_event(const trace::EventRecord& ev, const LintOptions& opts,
                 const std::string& path, DiagnosticSink& sink) {
  if (static_cast<std::uint8_t>(ev.op) >
      static_cast<std::uint8_t>(sim::Op::kGap)) {
    std::ostringstream os;
    os << "event carries invalid operation code "
       << static_cast<int>(static_cast<std::uint8_t>(ev.op)) << at(path);
    sink.report(Severity::kError, "event.bad_op", -1, os.str());
  }
  if (ev.op == sim::Op::kGap) {
    std::ostringstream os;
    os << "gap: interval of failed lead rank " << ev.tag
       << " lost for ranks " << ev.ranks.to_string() << at(path);
    sink.report(Severity::kInfo, "trace.gap", -1, os.str());
  }
  if (ev.comm != sim::kCommWorld && ev.comm != sim::kCommMarker) {
    std::ostringstream os;
    os << op_name(ev.op) << " recorded on communicator " << ev.comm
       << (ev.comm == sim::kCommTool
               ? " (tool-internal traffic leaked into the trace)"
               : " (unknown communicator)")
       << at(path);
    sink.report(Severity::kError, "event.bad_comm", -1, os.str());
  }
  if (ev.is_marker &&
      (ev.op != sim::Op::kBarrier || ev.comm != sim::kCommMarker)) {
    std::ostringstream os;
    os << op_name(ev.op) << " flagged as marker but is not a barrier on the "
       << "marker communicator" << at(path);
    sink.report(Severity::kError, "event.marker_mismatch", -1, os.str());
  }
  if (!ev.is_marker && ev.comm == sim::kCommMarker) {
    std::ostringstream os;
    os << op_name(ev.op) << " on the marker communicator without the marker "
       << "flag" << at(path);
    sink.report(Severity::kError, "event.marker_mismatch", -1, os.str());
  }
  for (const auto* ep : {&ev.src, &ev.dest}) {
    if (static_cast<std::uint8_t>(ep->kind) >
        static_cast<std::uint8_t>(trace::Endpoint::Kind::kAbsolute)) {
      std::ostringstream os;
      os << "event endpoint carries invalid kind "
         << static_cast<int>(static_cast<std::uint8_t>(ep->kind)) << at(path);
      sink.report(Severity::kError, "event.bad_endpoint", -1, os.str());
    } else if (opts.nprocs > 0 &&
               ep->kind == trace::Endpoint::Kind::kAbsolute &&
               (ep->value < 0 || ep->value >= opts.nprocs)) {
      std::ostringstream os;
      os << "absolute endpoint names rank " << ep->value << " outside world "
         << opts.nprocs << at(path);
      sink.report(Severity::kError, "endpoint.out_of_range", -1, os.str());
    }
  }
  if (ev.ranks.empty()) {
    sink.report(Severity::kError, "ranklist.empty", -1,
                "event has an empty ranklist" + at(path));
  } else if (opts.nprocs > 0) {
    const auto& members = ev.ranks.members();
    if (members.front() < 0 || members.back() >= opts.nprocs) {
      std::ostringstream os;
      os << "ranklist " << ev.ranks.to_string() << " exceeds world "
         << opts.nprocs << at(path);
      sink.report(Severity::kError, "ranklist.out_of_range", -1, os.str());
    }
  }
  check_histogram(ev.delta, path, sink);
}

void check_node(const trace::TraceNode& node, const LintOptions& opts,
                const std::string& path, DiagnosticSink& sink) {
  if (node.is_loop()) {
    if (node.body.empty()) {
      sink.report(Severity::kError, "rsd.empty_body", -1,
                  "loop node has an empty body" + at(path));
    }
    if (node.body.size() > kMaxBodyLen) {
      std::ostringstream os;
      os << "loop body length " << node.body.size() << " is implausible"
         << at(path);
      sink.report(Severity::kError, "rsd.body_length", -1, os.str());
    }
    if (node.iters == 1) {
      sink.report(Severity::kInfo, "rsd.single_iteration", -1,
                  "loop of a single iteration (compression never emits "
                  "these)" +
                      at(path));
    }
    for (std::size_t i = 0; i < node.body.size(); ++i) {
      check_node(node.body[i], opts, path + ".body[" + std::to_string(i) + ']',
                 sink);
    }
    return;
  }
  // A default-constructed TraceNode (iters == 0, empty body) reads as a
  // leaf; serialized zero-iteration loops are caught at the wire level.
  check_event(node.event, opts, path, sink);
}

void collect_cover(const trace::TraceNode& node, std::vector<bool>& seen) {
  if (node.is_loop()) {
    for (const auto& child : node.body) collect_cover(child, seen);
    return;
  }
  node.event.ranks.for_each_member([&](sim::Rank r) {
    if (r >= 0 && static_cast<std::size_t>(r) < seen.size())
      seen[static_cast<std::size_t>(r)] = true;
  });
}

void collect_callpath(const trace::TraceNode& node,
                      std::unordered_set<std::uint64_t>& seen,
                      std::vector<std::uint64_t>& order) {
  if (node.is_loop()) {
    // Compressed form preserves first-seen order: the first iteration of a
    // loop meets the body's signatures in body order, and later iterations
    // add no new distinct signatures.
    for (const auto& child : node.body) collect_callpath(child, seen, order);
    return;
  }
  if (seen.insert(node.event.stack_sig).second)
    order.push_back(node.event.stack_sig);
}

}  // namespace

void lint_trace(const std::vector<trace::TraceNode>& nodes,
                const LintOptions& opts, DiagnosticSink& sink) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    check_node(nodes[i], opts, "node[" + std::to_string(i) + ']', sink);
  }
  if (opts.expect_full_cover && opts.nprocs > 0) {
    std::vector<bool> seen(static_cast<std::size_t>(opts.nprocs), false);
    for (const auto& node : nodes) collect_cover(node, seen);
    std::vector<int> missing;
    for (int r = 0; r < opts.nprocs; ++r)
      if (!seen[static_cast<std::size_t>(r)]) missing.push_back(r);
    if (!missing.empty()) {
      std::ostringstream os;
      os << "merged trace covers no events of rank(s)";
      for (int r : missing) os << ' ' << r;
      sink.report(Severity::kError, "merge.missing_ranks", -1, os.str());
    }
  }
}

std::uint64_t recompute_callpath(const std::vector<trace::TraceNode>& nodes) {
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> order;
  for (const auto& node : nodes) collect_callpath(node, seen, order);
  std::uint64_t callpath = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    callpath ^= order[i] * static_cast<std::uint64_t>((i % 10) + 1);
  }
  return callpath;
}

void lint_signature(const std::vector<trace::TraceNode>& nodes,
                    std::uint64_t recorded_callpath, DiagnosticSink& sink) {
  const std::uint64_t actual = recompute_callpath(nodes);
  if (actual != recorded_callpath) {
    std::ostringstream os;
    os << "recorded Call-Path signature 0x" << std::hex << recorded_callpath
       << " does not match the trace's own events (recomputed 0x" << actual
       << ')';
    sink.report(Severity::kError, "signature.mismatch", -1, os.str());
  }
}

// ---------------------------------------------------------------------------
// Wire-level lint: a reporting mirror of trace/serialize.cpp's decoder.
// ---------------------------------------------------------------------------

namespace {

/// Thrown internally to abandon the walk on unrecoverable corruption after
/// the diagnostic has been recorded.
struct WalkAborted {};

class WireLinter {
 public:
  WireLinter(const std::vector<std::uint8_t>& bytes, const LintOptions& opts,
             DiagnosticSink& sink)
      : reader_(bytes), opts_(opts), sink_(sink) {}

  bool run() {
    try {
      const std::uint32_t len = reader_.u32();
      if (len > (1u << 24)) {
        fail("wire.bad_count",
             "trace claims " + std::to_string(len) + " top-level nodes");
      }
      for (std::uint32_t i = 0; i < len; ++i)
        node("node[" + std::to_string(i) + ']');
      if (!reader_.exhausted()) {
        sink_.report(Severity::kError, "wire.trailing_bytes", -1,
                     "bytes remain after the declared node count");
      }
      return true;
    } catch (const trace::DecodeError& e) {
      sink_.report(Severity::kError, "wire.truncated", -1, e.what());
      return false;
    } catch (const WalkAborted&) {
      return false;
    }
  }

 private:
  [[noreturn]] void fail(std::string code, std::string message) {
    sink_.report(Severity::kError, std::move(code), -1, std::move(message));
    throw WalkAborted{};
  }

  void node(const std::string& path) {
    const std::uint8_t mark = reader_.u8();
    if (mark == kLoopMark) {
      const std::uint64_t iters = reader_.u64();
      if (iters == 0) {
        // Recoverable: the structure is still walkable, keep going so one
        // corrupt trace yields a full report.
        sink_.report(Severity::kError, "rsd.zero_iterations", -1,
                     "loop with zero iterations" + at(path));
      }
      const std::uint32_t len = reader_.u32();
      if (len > kMaxBodyLen) {
        fail("rsd.body_length",
             "loop body length " + std::to_string(len) + " is implausible" +
                 at(path));
      }
      if (len == 0) {
        sink_.report(Severity::kError, "rsd.empty_body", -1,
                     "loop node has an empty body" + at(path));
      }
      for (std::uint32_t i = 0; i < len; ++i)
        node(path + ".body[" + std::to_string(i) + ']');
      return;
    }
    if (mark != kLeafMark) {
      std::ostringstream os;
      os << "unknown node mark 0x" << std::hex << static_cast<int>(mark)
         << at(path);
      fail("wire.bad_mark", os.str());
    }
    leaf(path);
  }

  void leaf(const std::string& path) {
    const std::uint8_t op = reader_.u8();
    if (op > static_cast<std::uint8_t>(sim::Op::kGap)) {
      sink_.report(Severity::kError, "event.bad_op", -1,
                   "invalid operation code " + std::to_string(op) + at(path));
    }
    reader_.u64();  // stack_sig
    endpoint(path);
    endpoint(path);
    reader_.u64();  // bytes
    reader_.i32();  // tag
    const std::uint8_t comm = reader_.u8();
    if (comm != sim::kCommWorld && comm != sim::kCommMarker) {
      sink_.report(Severity::kError, "event.bad_comm", -1,
                   "event on communicator " + std::to_string(comm) + at(path));
    }
    reader_.u8();  // is_marker
    ranklist(path);
    histogram(path);
  }

  void endpoint(const std::string& path) {
    const std::uint8_t kind = reader_.u8();
    if (kind > static_cast<std::uint8_t>(trace::Endpoint::Kind::kAbsolute)) {
      sink_.report(Severity::kError, "event.bad_endpoint", -1,
                   "invalid endpoint kind " + std::to_string(kind) + at(path));
    }
    reader_.i32();  // value
  }

  void ranklist(const std::string& path) {
    // u32 section count, matching serialize.cpp's 64k-rank widening.
    const std::size_t nsections = reader_.u32();
    std::vector<sim::Rank> ranks;
    for (std::size_t s = 0; s < nsections; ++s) {
      trace::RankSection sec;
      sec.start = reader_.i32();
      const std::size_t ndims = reader_.u16();
      if (ndims > 8) {
        fail("ranklist.bad_dims",
             "ranklist section with " + std::to_string(ndims) +
                 " dimensions" + at(path));
      }
      bool expandable = true;
      for (std::size_t d = 0; d < ndims; ++d) {
        const int iters = reader_.i32();
        const int stride = reader_.i32();
        if (iters <= 0) {
          std::ostringstream os;
          os << "ranklist section dimension with " << iters << " iterations"
             << at(path);
          sink_.report(Severity::kError, "ranklist.nonpositive_iters", -1,
                       os.str());
          expandable = false;
          continue;
        }
        sec.dims.push_back({iters, stride});
      }
      if (expandable) sec.expand_into(ranks);
    }
    if (ranks.empty() && nsections == 0) {
      sink_.report(Severity::kError, "ranklist.empty", -1,
                   "event has an empty ranklist" + at(path));
    }
    // "Every source rank covered exactly once": overlapping sections mean
    // a rank is claimed twice by the same event — a merge bug the
    // canonicalizing decoder silently repairs by dedup.
    std::vector<sim::Rank> sorted = ranks;
    std::sort(sorted.begin(), sorted.end());
    const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
    if (dup != sorted.end()) {
      std::ostringstream os;
      os << "ranklist sections overlap: rank " << *dup
         << " is covered more than once" << at(path);
      sink_.report(Severity::kError, "ranklist.overlap", -1, os.str());
    }
    if (opts_.nprocs > 0 && !sorted.empty() &&
        (sorted.front() < 0 || sorted.back() >= opts_.nprocs)) {
      std::ostringstream os;
      os << "ranklist reaches rank " << sorted.back() << " outside world "
         << opts_.nprocs << at(path);
      sink_.report(Severity::kError, "ranklist.out_of_range", -1, os.str());
    }
  }

  void histogram(const std::string& path) {
    std::uint64_t bin_sum = 0;
    for (int i = 0; i < support::Histogram::kBins; ++i) bin_sum += reader_.u64();
    const std::uint64_t count = reader_.u64();
    const double mn = reader_.f64();
    const double mx = reader_.f64();
    const double sum = reader_.f64();
    if (bin_sum != count) {
      std::ostringstream os;
      os << "histogram bins sum to " << bin_sum << " but count is " << count
         << at(path);
      sink_.report(Severity::kError, "histogram.bin_sum", -1, os.str());
    }
    if (count > 0 && mn > mx) {
      std::ostringstream os;
      os << "histogram min " << mn << " exceeds max " << mx << at(path);
      sink_.report(Severity::kError, "histogram.bounds", -1, os.str());
    }
    if (count == 0 && sum != 0.0) {
      std::ostringstream os;
      os << "empty histogram carries total " << sum << at(path);
      sink_.report(Severity::kError, "histogram.empty_sum", -1, os.str());
    }
  }

  trace::ByteReader reader_;
  const LintOptions& opts_;
  DiagnosticSink& sink_;
};

}  // namespace

bool lint_trace_bytes(const std::vector<std::uint8_t>& bytes,
                      const LintOptions& opts, DiagnosticSink& sink) {
  return WireLinter(bytes, opts, sink).run();
}

}  // namespace cham::analysis
