#include "analysis/verifier.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "trace/callsite.hpp"

namespace cham::analysis {

namespace {

constexpr int kTracedComms = 2;  // kCommWorld, kCommMarker

bool op_is_send(sim::Op op) {
  return op == sim::Op::kSend || op == sim::Op::kIsend;
}

bool op_is_recv(sim::Op op) {
  return op == sim::Op::kRecv || op == sim::Op::kIrecv;
}

bool op_has_root(sim::Op op) {
  return op == sim::Op::kBcast || op == sim::Op::kReduce ||
         op == sim::Op::kGather || op == sim::Op::kScatter;
}

}  // namespace

VerifierTool::VerifierTool(int nprocs, const trace::CallSiteRegistry* stacks,
                           VerifierOptions opts)
    : nprocs_(nprocs),
      stacks_(stacks),
      opts_(opts),
      coll_seq_(static_cast<std::size_t>(kTracedComms * nprocs), 0),
      current_call_(static_cast<std::size_t>(nprocs)),
      in_call_(static_cast<std::size_t>(nprocs), false) {}

void VerifierTool::error(std::string code, sim::Rank rank,
                         std::string message) {
  sink_.report(Severity::kError, code, rank, message);
  if (opts_.fail_fast) {
    throw VerificationError(sink_.diagnostics().back().to_string());
  }
}

void VerifierTool::on_pre(sim::Rank rank, const sim::CallInfo& info,
                          sim::Pmpi& pmpi) {
  ++calls_checked_;
  current_call_[static_cast<std::size_t>(rank)] = info;
  in_call_[static_cast<std::size_t>(rank)] = true;
  check_arguments(rank, info);
  if (sim::op_is_collective(info.op)) check_collective(rank, info);
  if (info.op == sim::Op::kFinalize && !leaks_checked_ &&
      ++finalized_ranks_ >= nprocs_ - pmpi.engine().failed_count()) {
    // Every surviving rank has entered MPI_Finalize: no further application
    // traffic can appear, so anything still queued in the engine is leaked.
    // Crashed ranks never reach finalize; they are discounted from the
    // quorum and their residue is excused below.
    leaks_checked_ = true;
    check_finalize_leaks(pmpi);
  }
}

void VerifierTool::on_post(sim::Rank rank, const sim::CallInfo& info,
                           sim::Pmpi& /*pmpi*/) {
  in_call_[static_cast<std::size_t>(rank)] = false;
  // MPI_ERR_TRUNCATE: the matched message is larger than the posted buffer.
  // A declared size of zero means "size unknown" (payload-carrying recv
  // through the raw facade) and is not checked.
  if ((info.op == sim::Op::kRecv || info.op == sim::Op::kWait) &&
      info.bytes > 0 && info.matched_bytes > info.bytes) {
    std::ostringstream os;
    os << op_name(info.op) << " posted " << info.bytes
       << " bytes but matched a " << info.matched_bytes << "-byte message"
       << " from rank " << info.matched_peer << " (truncation)";
    error("recv.truncation", rank, os.str());
  }
}

void VerifierTool::check_arguments(sim::Rank rank, const sim::CallInfo& info) {
  if (info.comm != sim::kCommWorld && info.comm != sim::kCommMarker) {
    std::ostringstream os;
    os << op_name(info.op) << " on invalid communicator " << info.comm
       << (info.comm == sim::kCommTool
               ? " (tool-internal traffic must not be traced)"
               : "");
    error("comm.invalid", rank, os.str());
    return;  // comm-indexed checks below would be out of bounds
  }
  if (info.is_marker &&
      (info.op != sim::Op::kBarrier || info.comm != sim::kCommMarker)) {
    error("comm.marker_misuse", rank,
          std::string(op_name(info.op)) +
              " flagged as marker but is not a barrier on the marker "
              "communicator");
  }
  if (!info.is_marker && info.comm == sim::kCommMarker) {
    error("comm.marker_misuse", rank,
          std::string(op_name(info.op)) +
              " on the marker communicator without the marker flag");
  }
  if (op_is_send(info.op)) {
    if (info.peer < 0 || info.peer >= nprocs_) {
      std::ostringstream os;
      os << op_name(info.op) << " to invalid rank " << info.peer << " (world "
         << nprocs_ << ")";
      error("send.invalid_peer", rank, os.str());
    }
    if (info.tag < 0) {
      std::ostringstream os;
      os << op_name(info.op) << " with invalid tag " << info.tag
         << " (wildcards are receive-only)";
      error("send.invalid_tag", rank, os.str());
    }
  }
  if (op_is_recv(info.op)) {
    if (info.peer != sim::kAnySource && (info.peer < 0 || info.peer >= nprocs_)) {
      std::ostringstream os;
      os << op_name(info.op) << " from invalid rank " << info.peer
         << " (world " << nprocs_ << ")";
      error("recv.invalid_peer", rank, os.str());
    }
    if (info.tag < 0 && info.tag != sim::kAnyTag) {
      std::ostringstream os;
      os << op_name(info.op) << " with invalid tag " << info.tag;
      error("recv.invalid_tag", rank, os.str());
    }
  }
  if (op_has_root(info.op) && (info.root < 0 || info.root >= nprocs_)) {
    std::ostringstream os;
    os << op_name(info.op) << " with invalid root " << info.root << " (world "
       << nprocs_ << ")";
    error("collective.invalid_root", rank, os.str());
  }
}

void VerifierTool::check_collective(sim::Rank rank,
                                    const sim::CallInfo& info) {
  if (info.comm != sim::kCommWorld && info.comm != sim::kCommMarker) return;
  auto& seq = coll_seq_[static_cast<std::size_t>(info.comm * nprocs_ + rank)];
  const auto key = std::make_pair(info.comm, seq);
  ++seq;

  auto [it, inserted] = coll_sites_.try_emplace(key);
  CollRecord& rec = it->second;
  if (inserted) {
    rec.op = info.op;
    rec.root = info.root;
    rec.bytes = info.bytes;
    rec.first_rank = rank;
  } else {
    if (rec.op != info.op) {
      std::ostringstream os;
      os << "collective #" << key.second << " on comm " << info.comm
         << " diverges: rank " << rank << " calls " << op_name(info.op)
         << " but rank " << rec.first_rank << " called " << op_name(rec.op);
      error("collective.divergence", rank, os.str());
    } else if (op_has_root(info.op) && rec.root != info.root) {
      std::ostringstream os;
      os << op_name(info.op) << " #" << key.second << " on comm " << info.comm
         << " diverges on root: rank " << rank << " names root " << info.root
         << " but rank " << rec.first_rank << " named root " << rec.root;
      error("collective.root_divergence", rank, os.str());
    } else if (rec.bytes != info.bytes) {
      std::ostringstream os;
      os << op_name(info.op) << " #" << key.second << " on comm " << info.comm
         << ": rank " << rank << " declares " << info.bytes
         << " bytes but rank " << rec.first_rank << " declared " << rec.bytes;
      sink_.report(Severity::kWarning, "collective.bytes_divergence", rank,
                   os.str());
    }
  }
  if (++rec.arrived == nprocs_) coll_sites_.erase(it);
}

void VerifierTool::check_finalize_leaks(sim::Pmpi& pmpi) {
  sim::Engine& engine = pmpi.engine();
  // Under fault injection a crashed rank's residue is expected, not a bug:
  // messages it sent before dying may sit unreceived forever, and anything
  // queued at the dead rank itself can no longer be drained.
  const bool ft = engine.fault_injection_enabled();
  const auto dead = [&](sim::Rank r) { return ft && engine.is_failed(r); };
  for (int comm = 0; comm < kTracedComms; ++comm) {
    for (sim::Rank r = 0; r < nprocs_; ++r) {
      if (dead(r)) continue;
      for (const sim::Message& msg : engine.unexpected_messages(comm, r)) {
        std::ostringstream os;
        os << "message leak: " << msg.bytes << " bytes from rank " << msg.src
           << " tag " << msg.tag << " on comm " << comm
           << " were never received";
        if (dead(msg.src)) {
          sink_.report(Severity::kInfo, "finalize.failed_peer_leak", r,
                       os.str() + " (sender crashed)");
          continue;
        }
        error("finalize.message_leak", r, os.str());
      }
      for (const sim::PendingRecvInfo& p : engine.pending_recvs(comm, r)) {
        if (p.src_match != sim::kAnySource && dead(p.src_match)) {
          std::ostringstream os;
          os << "receive posted for crashed rank " << p.src_match
             << " on comm " << comm << " will never match";
          sink_.report(Severity::kInfo, "finalize.failed_peer_leak", r,
                       os.str());
          continue;
        }
        std::ostringstream os;
        os << "receive posted for src ";
        if (p.src_match == sim::kAnySource)
          os << "ANY";
        else
          os << p.src_match;
        os << " tag ";
        if (p.tag_match == sim::kAnyTag)
          os << "ANY";
        else
          os << p.tag_match;
        os << " on comm " << comm << " never matched a send";
        error("finalize.pending_recv", r, os.str());
      }
    }
  }
  for (sim::Rank r = 0; r < nprocs_; ++r) {
    if (dead(r)) continue;
    // Unwaited send requests are benign under the engine's eager-send
    // semantics (the transfer completed at post time); unwaited receive
    // requests park a matched message — or a pending slot — forever.
    const auto counts = engine.active_requests(r);
    if (counts.recvs > 0) {
      std::ostringstream os;
      os << counts.recvs << " receive request(s) never completed by "
         << "MPI_Wait/MPI_Waitall";
      error("finalize.unwaited_recv", r, os.str());
    }
  }
  // Collectives some ranks entered and others will never reach: every
  // record still alive saw fewer than nprocs arrivals and no arrivals can
  // follow finalize. With injected failures a site every survivor entered
  // is complete (the engine routes collectives around dead ranks).
  const int live = nprocs_ - engine.failed_count();
  for (const auto& [key, rec] : coll_sites_) {
    if (ft && rec.arrived >= live) continue;
    std::ostringstream os;
    os << op_name(rec.op) << " #" << key.second << " on comm " << key.first
       << " was entered by only " << rec.arrived << '/' << nprocs_
       << " ranks";
    error("finalize.incomplete_collective", rec.first_rank, os.str());
  }
}

std::string VerifierTool::backtrace(sim::Rank rank) const {
  if (stacks_ == nullptr) return {};
  const auto& frames = stacks_->stack(rank).frames();
  if (frames.empty()) return "<no frames>";
  std::string out;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i > 0) out += " > ";
    out += trace::site_name(frames[i]);
  }
  return out;
}

void VerifierTool::on_stall(sim::Engine& engine) {
  if (stall_reported_) return;
  stall_reported_ = true;

  // Build the wait-for graph from the engine's blocked-fiber state: an edge
  // r -> s means "r cannot proceed until s acts".
  const int p = engine.nprocs();
  std::vector<std::vector<int>> edges(static_cast<std::size_t>(p));
  std::vector<bool> finished(static_cast<std::size_t>(p), false);
  for (sim::Rank r = 0; r < p; ++r)
    finished[static_cast<std::size_t>(r)] = engine.rank_finished(r);

  for (sim::Rank r = 0; r < p; ++r) {
    if (finished[static_cast<std::size_t>(r)]) continue;
    const sim::BlockedState& bs = engine.blocked_state(r);
    auto& out = edges[static_cast<std::size_t>(r)];
    switch (bs.kind) {
      case sim::BlockedState::Kind::kRecv:
        if (bs.src_match != sim::kAnySource) {
          out.push_back(bs.src_match);
        } else {
          // Wildcard: conservatively, any live rank could unblock it.
          for (sim::Rank s = 0; s < p; ++s)
            if (s != r && !finished[static_cast<std::size_t>(s)])
              out.push_back(s);
        }
        break;
      case sim::BlockedState::Kind::kCollective:
        // Waits for every live rank that has not yet reached this slot.
        for (sim::Rank s = 0; s < p; ++s) {
          if (s == r || finished[static_cast<std::size_t>(s)]) continue;
          if (engine.collective_seq(bs.comm, s) <= bs.slot) out.push_back(s);
        }
        break;
      case sim::BlockedState::Kind::kNone:
        break;
    }
  }

  // DFS cycle detection (0 = unvisited, 1 = on stack, 2 = done).
  std::vector<int> color(static_cast<std::size_t>(p), 0);
  std::vector<int> parent(static_cast<std::size_t>(p), -1);
  std::vector<int> cycle;
  const std::function<bool(int)> dfs = [&](int u) {
    color[static_cast<std::size_t>(u)] = 1;
    for (int v : edges[static_cast<std::size_t>(u)]) {
      if (color[static_cast<std::size_t>(v)] == 1) {
        cycle.push_back(v);
        for (int w = u; w != v && w != -1;
             w = parent[static_cast<std::size_t>(w)])
          cycle.push_back(w);
        std::reverse(cycle.begin(), cycle.end());
        return true;
      }
      if (color[static_cast<std::size_t>(v)] == 0) {
        parent[static_cast<std::size_t>(v)] = u;
        if (dfs(v)) return true;
      }
    }
    color[static_cast<std::size_t>(u)] = 2;
    return false;
  };
  for (int r = 0; r < p && cycle.empty(); ++r)
    if (color[static_cast<std::size_t>(r)] == 0) dfs(r);

  std::ostringstream os;
  if (!cycle.empty()) {
    os << "wait-for cycle: ";
    for (std::size_t i = 0; i < cycle.size(); ++i) os << cycle[i] << " -> ";
    os << cycle.front() << '\n';
  } else {
    os << "no rank can make progress (no wait-for cycle: a partner exited "
          "or never arrived)\n";
  }
  int blocked_count = 0;
  for (sim::Rank r = 0; r < p; ++r) {
    if (finished[static_cast<std::size_t>(r)]) continue;
    ++blocked_count;
    os << "  rank " << r << ": blocked in ";
    const sim::BlockedState& bs = engine.blocked_state(r);
    if (in_call_[static_cast<std::size_t>(r)]) {
      os << current_call_[static_cast<std::size_t>(r)].to_string();
    } else if (bs.kind == sim::BlockedState::Kind::kCollective) {
      os << op_name(bs.op) << " comm=" << bs.comm << " slot=" << bs.slot;
    } else {
      os << "internal communication";
    }
    const std::string bt = backtrace(r);
    if (!bt.empty()) os << "\n    at " << bt;
    os << '\n';
  }
  os << "  (" << blocked_count << '/' << p << " ranks blocked)";

  // Record only: the engine unwinds the fibers and throws DeadlockError
  // right after this hook returns; fail-fast must not preempt that.
  sink_.report(Severity::kError,
               cycle.empty() ? "deadlock.stall" : "deadlock.cycle",
               cycle.empty() ? -1 : cycle.front(), os.str());
}

}  // namespace cham::analysis
