#include "core/protocol.hpp"

#include "sim/mpi.hpp"
#include "support/logging.hpp"
#include "support/timer.hpp"

namespace cham::core {

namespace {
constexpr int kClusterTag = 0x7A03;
/// Tool-comm tag for orphaned subtree tables re-homed after a mid-reduction
/// crash (see the salvage round in hierarchical_cluster).
constexpr int kSalvageTag = 0x7A04;

/// Times a section and charges it to the rank's virtual clock (clustering
/// work is real compute on the node).
class CpuSection {
 public:
  CpuSection(double* sink, sim::Pmpi& pmpi)
      : sink_(sink), pmpi_(pmpi), start_(support::thread_cpu_seconds()) {}
  ~CpuSection() {
    const double elapsed = support::thread_cpu_seconds() - start_;
    *sink_ += elapsed;
    pmpi_.engine().advance_compute(pmpi_.rank(), elapsed);
  }
  CpuSection(const CpuSection&) = delete;
  CpuSection& operator=(const CpuSection&) = delete;

 private:
  double* sink_;
  sim::Pmpi& pmpi_;
  double start_;
};
}  // namespace

cluster::ClusterSet hierarchical_cluster(sim::Rank rank, sim::Pmpi& pmpi,
                                         const cluster::RankSignature& sig,
                                         std::size_t k,
                                         cluster::SelectPolicy policy,
                                         std::uint64_t seed,
                                         ClusterProtocolStats* stats) {
  double cpu = 0.0;
  std::uint64_t enc = 0;
  std::uint64_t dec = 0;
  cluster::ClusterSet mine = cluster::ClusterSet::leaf(rank, sig);
  sim::Engine& eng = pmpi.engine();
  const bool ft = eng.fault_injection_enabled();

  const auto idx = static_cast<std::size_t>(rank);
  const auto p = static_cast<std::size_t>(pmpi.size());
  // Set when the binomial parent died before accepting this subtree's
  // table; the salvage round below re-homes it at the surviving root.
  bool orphaned = false;
  for (std::size_t mask = 1; mask < p; mask <<= 1) {
    if (idx & mask) {
      std::vector<std::uint8_t> payload;
      {
        CpuSection section(&cpu, pmpi);
        payload = mine.encode();
      }
      enc += payload.size();
      const sim::CommResult sent = pmpi.send_bytes(
          static_cast<sim::Rank>(idx - mask), kClusterTag, std::move(payload));
      if (ft && sent != sim::CommResult::kOk) orphaned = true;
      break;
    }
    if (idx + mask < p) {
      const auto child = static_cast<sim::Rank>(idx + mask);
      if (ft && eng.is_failed(child)) {
        // Dead child: drain its table if it was sent before the crash,
        // otherwise its subtree is routed around (survivors in it will
        // re-home themselves via the salvage round).
        std::vector<std::uint8_t> payload;
        if (pmpi.try_recv_bytes(child, kClusterTag, &payload)) {
          dec += payload.size();
          CpuSection section(&cpu, pmpi);
          mine.absorb(cluster::ClusterSet::decode(payload));
          if (mine.total_clusters() > k) mine.shrink(k, policy, seed);
        }
        continue;
      }
      sim::RecvStatus status;
      std::vector<std::uint8_t> payload = pmpi.recv_bytes(
          static_cast<sim::Rank>(idx + mask), kClusterTag, &status);
      if (status.peer_failed) continue;  // child died before sending
      dec += payload.size();
      CpuSection section(&cpu, pmpi);
      mine.absorb(cluster::ClusterSet::decode(payload));
      if (mine.total_clusters() > k) mine.shrink(k, policy, seed);
    }
  }

  sim::Rank root = 0;
  if (ft) {
    // Salvage round: orphans whose parent died mid-reduction re-send their
    // table to the surviving root. The vote is an allreduce so every
    // survivor takes the same branch; the barrier guarantees all salvage
    // sends are queued (each orphan sends before arriving at it) so the
    // root can drain them non-blockingly.
    const std::uint64_t salvage_total =
        pmpi.allreduce_u64(orphaned ? 1 : 0, sim::ReduceOp::kSum);
    if (salvage_total > 0) {
      const sim::Rank refreshed = eng.live_ranks().front();
      if (orphaned && rank != refreshed) {
        std::vector<std::uint8_t> payload;
        {
          CpuSection section(&cpu, pmpi);
          payload = mine.encode();
        }
        enc += payload.size();
        pmpi.send_bytes(refreshed, kSalvageTag, std::move(payload));
        mine = cluster::ClusterSet{};  // handed off
      }
      pmpi.barrier();
      if (rank == eng.live_ranks().front()) {
        std::vector<std::uint8_t> payload;
        while (pmpi.try_recv_bytes(sim::kAnySource, kSalvageTag, &payload)) {
          dec += payload.size();
          CpuSection section(&cpu, pmpi);
          mine.absorb(cluster::ClusterSet::decode(payload));
          if (mine.total_clusters() > k) mine.shrink(k, policy, seed);
        }
      }
    }
    // Consistent across survivors: no crash point sits between the
    // collectives above and the broadcast below.
    root = eng.live_ranks().front();
  }

  std::vector<std::uint8_t> table;
  if (rank == root) {
    CpuSection section(&cpu, pmpi);
    mine.shrink(k, policy, seed);
    if (stats != nullptr) {
      stats->num_callpaths = mine.num_callpaths();
      stats->effective_k = mine.total_clusters();
    }
    table = mine.encode();
    enc += table.size();
  }
  table = pmpi.bcast_bytes(std::move(table), root);
  if (rank != root) dec += table.size();

  cluster::ClusterSet result;
  {
    CpuSection section(&cpu, pmpi);
    result = cluster::ClusterSet::decode(table);
  }
  if (stats != nullptr) {
    stats->cpu_seconds += cpu;
    stats->bytes_encoded += enc;
    stats->bytes_decoded += dec;
  }
  return result;
}

}  // namespace cham::core
