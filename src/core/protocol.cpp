#include "core/protocol.hpp"

#include "sim/mpi.hpp"
#include "support/logging.hpp"
#include "support/timer.hpp"

namespace cham::core {

namespace {
constexpr int kClusterTag = 0x7A03;

/// Times a section and charges it to the rank's virtual clock (clustering
/// work is real compute on the node).
class CpuSection {
 public:
  CpuSection(double* sink, sim::Pmpi& pmpi)
      : sink_(sink), pmpi_(pmpi), start_(support::thread_cpu_seconds()) {}
  ~CpuSection() {
    const double elapsed = support::thread_cpu_seconds() - start_;
    *sink_ += elapsed;
    pmpi_.engine().advance_compute(pmpi_.rank(), elapsed);
  }
  CpuSection(const CpuSection&) = delete;
  CpuSection& operator=(const CpuSection&) = delete;

 private:
  double* sink_;
  sim::Pmpi& pmpi_;
  double start_;
};
}  // namespace

cluster::ClusterSet hierarchical_cluster(sim::Rank rank, sim::Pmpi& pmpi,
                                         const cluster::RankSignature& sig,
                                         std::size_t k,
                                         cluster::SelectPolicy policy,
                                         std::uint64_t seed,
                                         ClusterProtocolStats* stats) {
  double cpu = 0.0;
  cluster::ClusterSet mine = cluster::ClusterSet::leaf(rank, sig);

  const auto idx = static_cast<std::size_t>(rank);
  const auto p = static_cast<std::size_t>(pmpi.size());
  for (std::size_t mask = 1; mask < p; mask <<= 1) {
    if (idx & mask) {
      std::vector<std::uint8_t> payload;
      {
        CpuSection section(&cpu, pmpi);
        payload = mine.encode();
      }
      pmpi.send_bytes(static_cast<sim::Rank>(idx - mask), kClusterTag,
                      std::move(payload));
      break;
    }
    if (idx + mask < p) {
      std::vector<std::uint8_t> payload =
          pmpi.recv_bytes(static_cast<sim::Rank>(idx + mask), kClusterTag);
      CpuSection section(&cpu, pmpi);
      mine.absorb(cluster::ClusterSet::decode(payload));
      if (mine.total_clusters() > k) mine.shrink(k, policy, seed);
    }
  }

  std::vector<std::uint8_t> table;
  if (rank == 0) {
    CpuSection section(&cpu, pmpi);
    mine.shrink(k, policy, seed);
    if (stats != nullptr) {
      stats->num_callpaths = mine.num_callpaths();
      stats->effective_k = mine.total_clusters();
    }
    table = mine.encode();
  }
  table = pmpi.bcast_bytes(std::move(table), /*root=*/0);

  cluster::ClusterSet result;
  {
    CpuSection section(&cpu, pmpi);
    result = cluster::ClusterSet::decode(table);
  }
  if (stats != nullptr) stats->cpu_seconds += cpu;
  return result;
}

}  // namespace cham::core
