#include "core/acurdion.hpp"

#include "analysis/race/annotate.hpp"
#include "core/protocol.hpp"
#include "sim/mpi.hpp"
#include "support/timer.hpp"
#include "trace/serialize.hpp"

namespace cham::core {

namespace {
constexpr int kOnlineTag = 0x7A02;
}  // namespace

AcurdionTool::AcurdionTool(int nprocs, trace::CallSiteRegistry* stacks,
                           ChameleonConfig config)
    : ScalaTraceTool(nprocs, stacks,
                     trace::TracerOptions{.max_window = config.max_window,
                                          .merge_at_finalize = false}),
      config_(config),
      whole_run_(static_cast<std::size_t>(nprocs)),
      rank_clustering_seconds_(static_cast<std::size_t>(nprocs), 0.0) {}

double AcurdionTool::clustering_seconds() const {
  double total = 0.0;
  for (const double seconds : rank_clustering_seconds_) total += seconds;
  return total;
}

void AcurdionTool::observe_event(sim::Rank rank,
                                 const trace::EventRecord& record,
                                 sim::Pmpi& /*pmpi*/) {
  // Streamed signature accumulation; accounted with intra tracing (see the
  // matching note in ChameleonTool::observe_event).
  whole_run_[static_cast<std::size_t>(rank)].observe(record);
}

void AcurdionTool::handle_finalize(sim::Rank rank, sim::Pmpi& pmpi) {
  const cluster::RankSignature sig =
      whole_run_[static_cast<std::size_t>(rank)].current();

  ClusterProtocolStats stats;
  cluster::ClusterSet table = hierarchical_cluster(
      rank, pmpi, sig, config_.k, config_.policy, config_.seed, &stats);
  rank_clustering_seconds_[static_cast<std::size_t>(rank)] +=
      stats.cpu_seconds;
  rank_perf(rank).bytes_encoded += stats.bytes_encoded;
  rank_perf(rank).bytes_decoded += stats.bytes_decoded;
  if (rank == 0) {
    RACE_WRITE("acurdion.table", 0, 0);
    clusters_ = table;
    effective_k_ = stats.effective_k;
  }

  const cluster::ClusterEntry* entry = table.cluster_of(rank);
  const bool is_lead = entry != nullptr && entry->lead == rank;
  const std::vector<sim::Rank> leads = table.leads();
  trace::RankTraceState& st = state(rank);

  std::vector<trace::TraceNode> merged;
  if (is_lead) {
    std::vector<trace::TraceNode> nodes = st.intra.take();
    {
      trace::ChargedSection timed(st.inter_timer, pmpi);
      trace::substitute_ranks(nodes, entry->members);
    }
    merged = radix_merge(rank, leads, std::move(nodes), pmpi);
  } else {
    st.intra.clear();
  }

  const sim::Rank merge_root = leads.front();
  if (merge_root != 0) {
    if (rank == merge_root) {
      std::vector<std::uint8_t> payload;
      {
        trace::ChargedSection timed(st.inter_timer, pmpi);
        payload = trace::encode_trace(merged);
      }
      rank_perf(rank).bytes_encoded += payload.size();
      pmpi.send_bytes(0, kOnlineTag, std::move(payload));
      merged.clear();
    } else if (rank == 0) {
      std::vector<std::uint8_t> payload = pmpi.recv_bytes(merge_root, kOnlineTag);
      rank_perf(rank).bytes_decoded += payload.size();
      trace::ChargedSection timed(st.inter_timer, pmpi);
      merged = trace::decode_trace(payload);
    }
  }
  if (rank == 0) {
    RACE_WRITE("trace.global", 0, 0);
    global_ = std::move(merged);
  }
}

const trace::PerfCounters& AcurdionTool::perf_counters() const {
  (void)ScalaTraceTool::perf_counters();  // aggregates + intra/inter seconds
  perf_.clustering_seconds = clustering_seconds();
  return perf_;
}

}  // namespace cham::core
