// Energy model for clustered tracing (the paper's stated future work).
//
// §VIII: "We currently plan to leverage the idle time for non
// representative processes at interim execution points by utilizing
// dynamic voltage frequency scaling (DVFS). This would reduce energy
// consumption and make clustered tracing energy efficient as well."
//
// The model: during the quiet lead phase, the P−K non-lead ranks perform
// no tracing work; the time a rank spends waiting (its completion-time
// deficit versus the slowest rank) can be spent in a DVFS-reduced state.
// Per-rank energy = P_busy * busy_seconds + P_idle * idle_seconds, where
// idle time is the deficit and P_idle reflects the chosen DVFS floor.
// Comparing the three tools quantifies Observation 1's "nearly no tracing
// overhead ... for the majority of processors" in Joules.
#pragma once

#include <cstddef>
#include <vector>

namespace cham::sim {
class Engine;
}

namespace cham::core {

struct PowerModel {
  /// Package power at full frequency (W per rank/core).
  double busy_watts = 95.0;
  /// Power at the DVFS floor while waiting/idle (W per rank/core).
  double idle_watts = 30.0;
  /// Fraction of a rank's deficit that DVFS can actually harvest (ramp
  /// latencies, OS jitter); 1.0 = ideal.
  double harvest_efficiency = 0.9;
};

struct EnergyReport {
  double busy_joules = 0.0;     ///< all ranks at busy power for their vtime
  double dvfs_joules = 0.0;     ///< with deficits harvested at idle power
  double savings_joules = 0.0;  ///< busy - dvfs
  double savings_fraction = 0.0;
  double total_deficit_seconds = 0.0;  ///< sum of per-rank wait time
};

/// Estimate energy for a completed run from per-rank completion times and
/// the per-rank blocked/waiting time the engine tracked (the harvestable
/// idle time). Vectors must have equal, nonzero length.
EnergyReport estimate_energy(const std::vector<double>& rank_vtimes,
                             const std::vector<double>& rank_wait_seconds,
                             const PowerModel& model = {});

/// Convenience: pull both vectors from a finished engine.
EnergyReport estimate_energy(const sim::Engine& engine,
                             const PowerModel& model = {});

}  // namespace cham::core
