#include "core/chameleon.hpp"

#include <algorithm>
#include <optional>

#include "analysis/race/annotate.hpp"
#include "core/protocol.hpp"
#include "durable/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/profiler.hpp"
#include "obs/timeline.hpp"
#include "sim/mpi.hpp"
#include "support/hash.hpp"
#include "support/logging.hpp"
#include "support/timer.hpp"
#include "trace/callsite.hpp"
#include "trace/serialize.hpp"

namespace cham::core {

namespace {
/// Tool-comm tag for the rank-0 handoff of the per-interval global trace.
constexpr int kOnlineTag = 0x7A02;

class CpuSection {
 public:
  explicit CpuSection(double* sink)
      : sink_(sink), start_(support::thread_cpu_seconds()) {}
  ~CpuSection() { *sink_ += support::thread_cpu_seconds() - start_; }
  CpuSection(const CpuSection&) = delete;
  CpuSection& operator=(const CpuSection&) = delete;

 private:
  double* sink_;
  double start_;
};

}  // namespace

const char* marker_state_name(MarkerState state) {
  switch (state) {
    case MarkerState::kAllTracing: return "AT";
    case MarkerState::kClustering: return "C";
    case MarkerState::kLead: return "L";
    case MarkerState::kFinal: return "F";
  }
  return "?";
}

ChameleonTool::ChameleonTool(int nprocs, trace::CallSiteRegistry* stacks,
                             ChameleonConfig config)
    : ScalaTraceTool(nprocs, stacks,
                     trace::TracerOptions{.max_window = config.max_window,
                                          .merge_at_finalize = false}),
      config_(config),
      cham_(static_cast<std::size_t>(nprocs)),
      bytes_(static_cast<std::size_t>(nprocs)),
      rank_state_seconds_(static_cast<std::size_t>(nprocs)),
      rank_clustering_seconds_(static_cast<std::size_t>(nprocs), 0.0),
      mem_(static_cast<std::size_t>(nprocs)) {
  CHAM_CHECK_MSG(config_.k >= 1, "K must be at least 1");
  CHAM_CHECK_MSG(config_.call_frequency >= 1, "Call_Frequency must be >= 1");

  const durable::RecoveredState* resume = config_.resume;
  if (resume == nullptr || resume->epoch == 0) return;

  // ChamDurable resume: restore the global protocol state up front (the
  // constructor runs before any fiber, so these cross-rank writes are
  // race-free), then arm every rank for the fast-forward replay. Per-rank
  // flags and partial traces are adopted at the recovered epoch, not here —
  // the replayed markers re-derive counters (auto-marker detection, marker
  // cadence) exactly as the original run did.
  resume_target_ = resume->epoch;
  trace::import_sites(resume->sites);
  online_ = trace::decode_trace(resume->online_wire);
  state_counts_ = resume->state_counts;
  effective_k_ = static_cast<std::size_t>(resume->effective_k);
  num_callpaths_ = static_cast<std::size_t>(resume->num_callpaths);
  gaps_emitted_.insert(resume->gap_ranks.begin(), resume->gap_ranks.end());
  const cluster::ClusterSet table =
      resume->clusters_wire.empty() ? cluster::ClusterSet{}
                                    : cluster::ClusterSet::decode(resume->clusters_wire);
  for (const durable::RankRecord& rec : resume->ranks)
    resume_records_.emplace(rec.rank, rec);
  for (int r = 0; r < nprocs; ++r) {
    cham_[static_cast<std::size_t>(r)].clusters = table;
    cham_[static_cast<std::size_t>(r)].fast_forward = true;
    state(r).storing = false;
  }
}

const cluster::ClusterSet& ChameleonTool::clusters() const {
  return cham_.front().clusters;
}

std::uint64_t ChameleonTool::marker_calls_processed() const {
  // Every live rank counts every processed marker it passed; the global
  // count is the longest-lived rank's view (ranks only ever die, so any
  // survivor saw every earlier marker).
  std::uint64_t processed = 0;
  for (const RankChamState& cs : cham_)
    processed = std::max(processed, cs.processed);
  return processed;
}

double ChameleonTool::state_seconds(MarkerState state) const {
  double total = 0.0;
  for (const auto& per_rank : rank_state_seconds_)
    total += per_rank[static_cast<std::size_t>(state)];
  return total;
}

double ChameleonTool::clustering_seconds() const {
  double total = 0.0;
  for (const double seconds : rank_clustering_seconds_) total += seconds;
  return total;
}

sim::Rank ChameleonTool::home_rank(sim::Pmpi& pmpi) {
  sim::Engine& eng = pmpi.engine();
  if (!eng.fault_injection_enabled() || eng.failed_count() == 0) return 0;
  return eng.live_ranks().front();
}

void ChameleonTool::handle_failures(sim::Rank rank, sim::Pmpi& pmpi) {
  sim::Engine& eng = pmpi.engine();
  if (!eng.fault_injection_enabled() || eng.failed_count() == 0) return;
  RankChamState& cs = cham_[static_cast<std::size_t>(rank)];
  if (cs.clusters.total_clusters() == 0) return;

  // Every survivor runs this after the same synchronization point (marker
  // barrier or the finalize settle barrier) and before the next crash
  // opportunity (the first tool-comm send/recv), so all observe the
  // identical failed set and repair their cluster-table copies identically.
  const sim::Rank home = cs.epoch_home;
  std::size_t lead_total = 0;
  std::size_t lead_dead = 0;
  for (auto& [callpath, entries] : cs.clusters.groups_mutable()) {
    for (cluster::ClusterEntry& entry : entries) {
      ++lead_total;
      if (!eng.is_failed(entry.lead)) continue;
      const sim::Rank dead = entry.lead;
      // The paper picks the cluster head as the group's representative;
      // under failure that rule degrades to the lowest-rank survivor of
      // the same group.
      sim::Rank promoted = sim::kAnySource;
      entry.members.for_each_member([&](sim::Rank member) {
        if (eng.is_failed(member)) return true;  // keep scanning
        promoted = member;
        return false;
      });
      // ChamDurable: the dead lead's last journaled partial trace survives
      // on disk, so the promoted survivor adopts it and carries on instead
      // of the home rank mourning the interval with a GAP node. Every
      // survivor consults the same shared Checkpointer, so the decision is
      // identical everywhere. Only the events between the lead's last
      // committed epoch and its death are lost (the residual tail window —
      // see docs/DURABILITY.md).
      std::optional<durable::RankRecord> saved;
      if (promoted != sim::kAnySource && config_.checkpointer != nullptr)
        saved = config_.checkpointer->latest_rank_record(dead);
      if (saved.has_value()) {
        if (rank == promoted) {
          state(rank).intra.restore(trace::decode_trace(saved->intra_wire));
          if (obs::Timeline* tl = obs::timeline())
            tl->instant(obs::Timeline::rank_tid(rank), "durable.lead_restore",
                        "durable",
                        {obs::arg_int("dead", dead),
                         obs::arg_int("epoch", static_cast<std::int64_t>(
                                                   saved->epoch))});
          if (auto* m = obs::metrics())
            m->add_counter("cham.durable.lead_restores", {}, 1);
        }
        // Mourned via restore: no gap node, and the loss does not count
        // toward the degrade fraction.
        if (rank == home) gaps_emitted_.insert(dead);
      } else {
        ++lead_dead;
        if (rank == home && gaps_emitted_.insert(dead).second) {
          // The dead lead's partial trace is gone; the interval it covered
          // for its cluster becomes an explicit gap in the online trace so
          // downstream consumers see the loss instead of silent absence.
          trace::EventRecord gap;
          gap.op = sim::Op::kGap;
          gap.tag = dead;
          gap.comm = sim::kCommWorld;
          gap.ranks = entry.members;
          trace::TraceNode node = trace::TraceNode::leaf(std::move(gap));
          if (config_.checkpointer != nullptr) {
            RACE_WRITE("cham.pending", 0, 0);
            pending_gaps_.push_back(node);
          }
          RACE_WRITE("cham.online", 0, 0);
          online_.push_back(std::move(node));
        }
      }
      if (promoted == sim::kAnySource) continue;  // whole cluster died
      entry.lead = promoted;
      if (rank == promoted) state(rank).storing = true;
    }
  }
  if (lead_dead == 0) return;
  const double fraction =
      static_cast<double>(lead_dead) / static_cast<double>(lead_total);
  if (fraction > config_.degrade_fraction) {
    // Too much representative coverage is gone: abandon lead-only tracing
    // and have every survivor trace for itself until the next clustering.
    cs.clusters = cluster::ClusterSet{};
    cs.lead_phase = false;
    cs.reclustering = true;
    state(rank).storing = true;
  }
}

void ChameleonTool::on_post(sim::Rank rank, const sim::CallInfo& info,
                            sim::Pmpi& pmpi) {
  ScalaTraceTool::on_post(rank, info, pmpi);
  if (!config_.auto_marker || info.is_marker) return;
  if (info.op == sim::Op::kInit || info.op == sim::Op::kFinalize) return;
  if (!sim::op_is_collective(info.op) || info.comm != sim::kCommWorld) return;

  // §VII automation: world collectives occur in the same order on every
  // rank of an SPMD code, so "the first collective call site seen twice"
  // is a globally consistent choice that needs no extra communication.
  RankChamState& cs = cham_[static_cast<std::size_t>(rank)];
  const std::uint64_t site = stacks_->stack(rank).signature();
  if (cs.auto_site == 0 && ++cs.site_counts[site] >= 2) {
    cs.auto_site = site;
    cs.site_counts.clear();
  }
  if (cs.auto_site == site) handle_marker_post(rank, pmpi);
}

void ChameleonTool::observe_event(sim::Rank rank,
                                  const trace::EventRecord& record,
                                  sim::Pmpi& /*pmpi*/) {
  // Signature computation runs on every rank regardless of the storing
  // flag — it is the cheap "observing" half of tracing the collective vote
  // depends on. The paper creates signatures at the marker from the
  // PRSD-compressed sequence (O(n), n = distinct events); this incremental
  // accumulator is the streaming equivalent, and its per-event cost is the
  // same hash-and-insert a real implementation performs while unwinding
  // the stack — it is accounted as part of intra tracing, not clustering.
  RankChamState& cs = cham_[static_cast<std::size_t>(rank)];
  if (cs.fast_forward) return;  // resume replay: signatures restart at adoption
  cs.interval.observe(record);
}

MarkerAction ChameleonTool::algorithm1(sim::Rank rank, sim::Pmpi& pmpi,
                                       const cluster::RankSignature& sig,
                                       double* cpu) {
  RankChamState& cs = cham_[static_cast<std::size_t>(rank)];
  if (cs.first_marker) {
    // First marker: no history to compare against; stay in AT without any
    // communication (every rank takes this branch simultaneously).
    cs.first_marker = false;
    cs.old_callpath = sig.callpath;
    return MarkerAction::kNone;
  }

  const std::uint64_t mismatch = cs.old_callpath != sig.callpath ? 1 : 0;
  // The collective vote: MPI_Reduce + MPI_Bcast, O(log P). Communication is
  // deliberately untimed (blocking); only local work counts as CPU. The
  // root is rank 0 until it dies, then the lowest survivor.
  const sim::Rank home = cs.epoch_home;
  const std::uint64_t sum = pmpi.reduce_u64(mismatch, sim::ReduceOp::kSum, home);
  const std::uint64_t glob = pmpi.bcast_u64(sum, home);

  // The local vote bookkeeping below is a handful of instructions — far
  // below timer resolution; only the clustering path (*cpu via
  // run_clustering) does measurable local work.
  (void)cpu;
  cs.old_callpath = sig.callpath;
  if (glob == 0) {
    if (cs.reclustering) {
      cs.reclustering = false;
      return MarkerAction::kCluster;
    }
    return MarkerAction::kNone;  // quiet lead phase
  }
  if (cs.lead_phase) {
    return MarkerAction::kFlush;
  }
  cs.reclustering = true;
  return MarkerAction::kNone;  // stay in / fall back to AT
}

void ChameleonTool::run_clustering(sim::Rank rank, sim::Pmpi& pmpi,
                                   const cluster::RankSignature& sig,
                                   double* cpu) {
  RankChamState& cs = cham_[static_cast<std::size_t>(rank)];
  obs::Span span(obs::Timeline::rank_tid(rank), "clustering", "protocol");
  const obs::prof::PhaseScope phase(obs::prof::Phase::kClustering);
  ClusterProtocolStats stats;
  cs.clusters = hierarchical_cluster(rank, pmpi, sig, config_.k,
                                     config_.policy, config_.seed, &stats);
  *cpu += stats.cpu_seconds;
  rank_perf(rank).bytes_encoded += stats.bytes_encoded;
  rank_perf(rank).bytes_decoded += stats.bytes_decoded;
  if (rank == cs.epoch_home) {
    // Single writer: only the epoch home publishes the clustering quota,
    // and home handoffs are barrier-ordered.
    RACE_WRITE("cham.quota", 0, 0);
    num_callpaths_ = stats.num_callpaths;
    effective_k_ = stats.effective_k;
  }

  // Non-leads stop storing traces from here on; their cluster's lead stands
  // in for them (this is where the Table IV zeros come from).
  const cluster::ClusterEntry* entry = cs.clusters.cluster_of(rank);
  if (entry == nullptr) {
    // Only possible when a crash dropped this rank's table mid-reduction:
    // unrepresented survivors trace for themselves (bounded degradation).
    CHAM_CHECK_MSG(pmpi.engine().fault_injection_enabled(),
                   "clustering lost a rank");
    state(rank).storing = true;
    return;
  }
  state(rank).storing = entry->lead == rank;
}

void ChameleonTool::lead_merge_into_online(sim::Rank rank, sim::Pmpi& pmpi) {
  RankChamState& cs = cham_[static_cast<std::size_t>(rank)];
  obs::Span span(obs::Timeline::rank_tid(rank), "lead_merge", "protocol");
  const obs::prof::PhaseScope phase(obs::prof::Phase::kLeadMerge);
  const std::vector<sim::Rank> leads = cs.clusters.leads();
  CHAM_CHECK_MSG(!leads.empty(), "merge without clusters");
  const cluster::ClusterEntry* entry = cs.clusters.cluster_of(rank);
  const bool is_lead = entry != nullptr && entry->lead == rank;
  trace::RankTraceState& st = state(rank);

  std::vector<trace::TraceNode> merged;
  if (is_lead) {
    std::vector<trace::TraceNode> nodes = st.intra.take();
    {
      trace::ChargedSection timed(st.inter_timer, pmpi);
      trace::substitute_ranks(nodes, entry->members);
    }
    merged = radix_merge(rank, leads, std::move(nodes), pmpi);
  }

  // Hand the interval's global trace to the home rank (Algorithm 3 lines
  // 36–44; rank 0 unless it died).
  const sim::Rank home = cs.epoch_home;
  const sim::Rank merge_root = leads.front();
  if (merge_root != home) {
    if (rank == merge_root) {
      std::vector<std::uint8_t> payload;
      {
        trace::ChargedSection timed(st.inter_timer, pmpi);
        payload = trace::encode_trace(merged);
      }
      rank_perf(rank).bytes_encoded += payload.size();
      pmpi.send_bytes(home, kOnlineTag, std::move(payload));
      merged.clear();
    } else if (rank == home) {
      sim::RecvStatus status;
      std::vector<std::uint8_t> payload =
          pmpi.recv_bytes(merge_root, kOnlineTag, &status);
      rank_perf(rank).bytes_decoded += payload.size();
      trace::ChargedSection timed(st.inter_timer, pmpi);
      // A merge root that died mid-handoff takes the interval with it; the
      // loss surfaces as a gap node at the next failure handling.
      if (!status.peer_failed) merged = trace::decode_trace(payload);
    }
  }
  if (rank == home && !merged.empty()) {
    obs::Span fold_span(obs::Timeline::rank_tid(rank), "append_fold", "trace");
    const obs::prof::PhaseScope phase(obs::prof::Phase::kFold);
    trace::ChargedSection timed(st.inter_timer, pmpi);
    if (config_.checkpointer != nullptr) {
      // Stage the pre-append interval for the epoch delta: recovery reruns
      // exactly this append_online on the journaled image.
      RACE_WRITE("cham.pending", 0, 0);
      pending_interval_wire_ = trace::encode_trace(merged);
    }
    RACE_WRITE("cham.online", 0, 0);
    trace::append_online(online_, std::move(merged), config_.max_window,
                         &rank_perf(rank));
  }

  // All processes start over (line 47): partial intra-node traces vanish;
  // only the last event's timing context survives (st.last_event_end).
  st.intra.clear();
}

void ChameleonTool::account_marker(sim::Rank rank, MarkerState state_tag,
                                   double sig_cpu, double cluster_cpu) {
  const auto s = static_cast<std::size_t>(state_tag);
  if (rank == 0) {
    // Single writer by construction (only rank 0's fiber touches it).
    RACE_WRITE("cham.counts", 0, 0);
    ++state_counts_[s];
  }
  RACE_WRITE("cham.rank", rank, 0);
  rank_state_seconds_[static_cast<std::size_t>(rank)][s] +=
      sig_cpu + cluster_cpu;
  rank_clustering_seconds_[static_cast<std::size_t>(rank)] +=
      sig_cpu + cluster_cpu;
}

void ChameleonTool::record_epoch(sim::Rank rank, MarkerState state_tag,
                                 MarkerAction action,
                                 std::uint64_t intra_bytes) {
  // Partial-trace footprint re-charge: current() follows the live interval,
  // peak() keeps the worst epoch this rank ever held.
  support::MemTracker& mem = mem_[static_cast<std::size_t>(rank)];
  mem.charge(static_cast<std::int64_t>(intra_bytes) - mem.current());

  const RankChamState& cs = cham_[static_cast<std::size_t>(rank)];
  if (obs::Timeline* tl = obs::timeline())
    tl->instant(obs::Timeline::rank_tid(rank),
                std::string("state.") + marker_state_name(state_tag),
                "protocol",
                {obs::arg_int("marker",
                              static_cast<std::int64_t>(cs.processed)),
                 obs::arg_int("clusters", static_cast<std::int64_t>(
                                              cs.clusters.total_clusters()))});

  if (config_.record_digests && rank == cs.epoch_home) {
    // Wire-image digest of what this epoch committed: the cluster table as
    // broadcast plus the online trace as it would ship. Appended by the
    // epoch home only; home handoffs are barrier-ordered. The trace side
    // uses the structural projection — ChargedSection bills host CPU time
    // into the virtual clock, so the full wire image's delta histograms are
    // not reproducible even under an identical schedule.
    const std::vector<std::uint8_t> table = cs.clusters.encode();
    const std::vector<std::uint8_t> wire = trace::encode_trace_structure(online_);
    RACE_READ("cham.online", 0, 0);
    RACE_WRITE("cham.epochs", 0, 0);
    epoch_digests_.push_back(support::hash_combine(
        support::fnv1a64(table.data(), table.size()),
        support::fnv1a64(wire.data(), wire.size())));
  }

  if (!config_.record_epochs || rank != cs.epoch_home) return;
  obs::EpochRecord record;
  record.marker = cs.processed;
  record.state = marker_state_name(state_tag);
  record.action = action == MarkerAction::kNone      ? "none"
                  : action == MarkerAction::kCluster ? "cluster"
                                                     : "flush";
  record.callpaths = num_callpaths_;
  record.clusters = cs.clusters.total_clusters();
  record.leads = cs.clusters.leads();
  record.lead_of.assign(static_cast<std::size_t>(nprocs_), -1);
  // One pass over cluster members instead of a cluster_of() probe per world
  // rank (O(P * clusters) at 64k). First entry wins, matching cluster_of's
  // group iteration order for ranks claimed by more than one cluster.
  for (const auto& [callpath, entries] : cs.clusters.groups()) {
    (void)callpath;
    for (const cluster::ClusterEntry& entry : entries) {
      entry.members.for_each_member([&](sim::Rank r) {
        if (r >= 0 && r < nprocs_ &&
            record.lead_of[static_cast<std::size_t>(r)] == -1) {
          record.lead_of[static_cast<std::size_t>(r)] = entry.lead;
        }
      });
    }
  }
  RACE_WRITE("cham.epochs", 0, 0);
  epochs_.push_back(std::move(record));
}

void ChameleonTool::adopt_resume_state(sim::Rank rank) {
  RankChamState& cs = cham_[static_cast<std::size_t>(rank)];
  cs.fast_forward = false;
  trace::RankTraceState& st = state(rank);
  const auto it = resume_records_.find(rank);
  if (it == resume_records_.end()) {
    // The rank was not in the recovered epoch's live set (it is about to
    // die again, or the whole run pre-dates clustering): trace for itself.
    st.storing = true;
    return;
  }
  const durable::RankRecord& rec = it->second;
  cs.first_marker = rec.first_marker;
  cs.reclustering = rec.reclustering;
  cs.lead_phase = rec.lead_phase;
  cs.old_callpath = rec.old_callpath;
  cs.markers_seen = rec.markers_seen;
  if (rec.auto_site != 0) cs.auto_site = rec.auto_site;
  st.storing = rec.storing;
  st.intra.restore(trace::decode_trace(rec.intra_wire));
  cs.interval.reset();
  if (obs::Timeline* tl = obs::timeline())
    tl->instant(obs::Timeline::rank_tid(rank), "durable.resume", "durable",
                {obs::arg_int("epoch", static_cast<std::int64_t>(rec.epoch))});
}

void ChameleonTool::journal_epoch(sim::Rank rank, sim::Pmpi& pmpi,
                                  MarkerState state_tag, MarkerAction action,
                                  bool final_epoch) {
  durable::Checkpointer* cp = config_.checkpointer;
  if (cp == nullptr) return;
  RankChamState& cs = cham_[static_cast<std::size_t>(rank)];
  trace::RankTraceState& st = state(rank);

  durable::RankRecord rec;
  rec.epoch = cs.processed;
  rec.rank = rank;
  rec.final_epoch = final_epoch;
  rec.first_marker = cs.first_marker;
  rec.reclustering = cs.reclustering;
  rec.lead_phase = cs.lead_phase;
  rec.storing = st.storing;
  rec.old_callpath = cs.old_callpath;
  rec.markers_seen = cs.markers_seen;
  rec.auto_site = cs.auto_site;
  rec.intra_wire = trace::encode_trace(st.intra.nodes());
  cp->append_rank_record(rec);

  // Commit barrier: every live rank's record reaches the journal before the
  // home rank's delta, so a delta present on recovery implies a complete
  // epoch (torn tails can only cut uncommitted epochs).
  pmpi.barrier();
  if (rank != cs.epoch_home) return;

  durable::EpochDelta delta;
  delta.epoch = cs.processed;
  delta.final_epoch = final_epoch;
  delta.state = static_cast<std::uint8_t>(state_tag);
  delta.action = static_cast<std::uint8_t>(action);
  RACE_READ("cham.pending", 0, 0);
  delta.gaps_wire = trace::encode_trace(pending_gaps_);
  delta.interval_wire = pending_interval_wire_;
  delta.clusters_wire = cs.clusters.encode();
  // state_counts_ is written by rank 0 only; a non-zero home exists only
  // after rank 0 died, so there is no live writer to race with.
  RACE_READ("cham.counts", 0, 0);
  delta.state_counts = state_counts_;
  delta.effective_k = effective_k_;
  delta.num_callpaths = num_callpaths_;
  sim::Engine& eng = pmpi.engine();
  if (eng.fault_injection_enabled() && eng.failed_count() > 0) {
    delta.live = eng.live_ranks();
  } else {
    delta.live.resize(static_cast<std::size_t>(nprocs_));
    for (int r = 0; r < nprocs_; ++r) delta.live[static_cast<std::size_t>(r)] = r;
  }
  RACE_READ("cham.online", 0, 0);
  cp->commit_epoch(delta, trace::encode_trace(online_));
  RACE_WRITE("cham.pending", 0, 0);
  pending_gaps_.clear();
  pending_interval_wire_.clear();
}

void ChameleonTool::handle_marker_post(sim::Rank rank, sim::Pmpi& pmpi) {
  RankChamState& cs = cham_[static_cast<std::size_t>(rank)];
  if (cs.fast_forward) {
    // Resume replay: count the marker cadence exactly as the original run
    // did, but skip all tracing and protocol work (the journal already
    // holds the outcome). At the recovered epoch the rank adopts its
    // journaled record and goes live.
    ++cs.markers_seen;
    if (cs.markers_seen %
            static_cast<std::uint64_t>(config_.call_frequency) != 0)
      return;
    RACE_WRITE("cham.rank", rank, 0);
    ++cs.processed;
    if (cs.processed >= resume_target_) adopt_resume_state(rank);
    return;
  }
  ++cs.markers_seen;
  if (cs.markers_seen % static_cast<std::uint64_t>(config_.call_frequency) != 0)
    return;
  cs.epoch_home = home_rank(pmpi);
  RACE_WRITE("cham.rank", rank, 0);
  ++cs.processed;

  // Dead leads are detected at the next processed marker: the marker
  // barrier is the synchronization point after which every survivor sees
  // the same failed set.
  handle_failures(rank, pmpi);

  trace::RankTraceState& st = state(rank);
  const std::uint64_t intra_bytes_before = st.intra.footprint_bytes();

  double sig_cpu = 0.0;
  cluster::RankSignature sig;
  {
    CpuSection section(&sig_cpu);
    sig = cs.interval.current();
    cs.interval.reset();
  }

  double cluster_cpu = 0.0;
  const MarkerAction action = algorithm1(rank, pmpi, sig, &cluster_cpu);

  const double inter_before = st.inter_timer.total();
  MarkerState state_tag = MarkerState::kAllTracing;
  switch (action) {
    case MarkerAction::kNone:
      state_tag = cs.lead_phase ? MarkerState::kLead : MarkerState::kAllTracing;
      break;
    case MarkerAction::kCluster:
      run_clustering(rank, pmpi, sig, &cluster_cpu);
      lead_merge_into_online(rank, pmpi);
      cs.lead_phase = true;
      state_tag = MarkerState::kClustering;
      break;
    case MarkerAction::kFlush:
      lead_merge_into_online(rank, pmpi);
      cs.lead_phase = false;
      cs.reclustering = true;
      st.storing = true;  // everyone traces again until the next clustering
      state_tag = MarkerState::kLead;
      break;
  }
  const double inter_delta = st.inter_timer.total() - inter_before;
  rank_state_seconds_[static_cast<std::size_t>(rank)]
                     [static_cast<std::size_t>(state_tag)] += inter_delta;
  account_marker(rank, state_tag, sig_cpu, cluster_cpu);

  // Table IV bookkeeping: the partial trace held during this interval plus
  // (at rank 0) the online trace after this marker's append.
  StateBytes& bucket =
      bytes_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(state_tag)];
  ++bucket.calls;
  bucket.bytes_total += intra_bytes_before;
  if (rank == 0 && !online_.empty()) {
    RACE_READ("cham.online", 0, 0);
    bucket.bytes_total += trace::footprint_bytes(online_);
  }

  record_epoch(rank, state_tag, action, intra_bytes_before);
  journal_epoch(rank, pmpi, state_tag, action, /*final_epoch=*/false);
}

void ChameleonTool::handle_finalize(sim::Rank rank, sim::Pmpi& pmpi) {
  RankChamState& cs = cham_[static_cast<std::size_t>(rank)];
  // Resume replay that reached finalize still fast-forwarding: the
  // recovered epoch was the run's last marker, so adopt the journaled
  // state now and process finalize live.
  if (cs.fast_forward) adopt_resume_state(rank);
  const bool ft = pmpi.engine().fault_injection_enabled();
  if (ft) {
    // Settle barrier: ranks crashing at finalize entry are dead by the
    // time this completes, so every survivor repairs against the same
    // failed set; the second barrier holds everyone until all repairs are
    // done before any merge traffic (a survivor crashing mid-merge must
    // not be half-repaired). Both are skipped without an injector to keep
    // fault-free runs bit-identical.
    pmpi.barrier();
    cs.epoch_home = home_rank(pmpi);
    handle_failures(rank, pmpi);
    pmpi.barrier();
  }
  trace::RankTraceState& st = state(rank);
  const std::uint64_t intra_bytes_before = st.intra.footprint_bytes();

  double sig_cpu = 0.0;
  cluster::RankSignature sig;
  {
    CpuSection section(&sig_cpu);
    sig = cs.interval.current();
    cs.interval.reset();
  }

  double cluster_cpu = 0.0;
  const double inter_before = st.inter_timer.total();
  MarkerAction final_action = MarkerAction::kFlush;
  if (cs.lead_phase) {
    // A clustering is active: the trailing events live in the lead traces.
    lead_merge_into_online(rank, pmpi);
  } else {
    // Forced re-clustering — MPI_Finalize guarantees a new Call-Path, so
    // Algorithm 1 is skipped and clustering runs unconditionally.
    final_action = MarkerAction::kCluster;
    run_clustering(rank, pmpi, sig, &cluster_cpu);
    lead_merge_into_online(rank, pmpi);
  }
  const double inter_delta = st.inter_timer.total() - inter_before;
  rank_state_seconds_[static_cast<std::size_t>(rank)]
                     [static_cast<std::size_t>(MarkerState::kFinal)] +=
      inter_delta;
  account_marker(rank, MarkerState::kFinal, sig_cpu, cluster_cpu);

  StateBytes& bucket = bytes_[static_cast<std::size_t>(rank)]
                             [static_cast<std::size_t>(MarkerState::kFinal)];
  ++bucket.calls;
  bucket.bytes_total += intra_bytes_before;
  if (rank == 0 && !online_.empty()) {
    RACE_READ("cham.online", 0, 0);
    bucket.bytes_total += trace::footprint_bytes(online_);
  }

  record_epoch(rank, MarkerState::kFinal, final_action, intra_bytes_before);
  journal_epoch(rank, pmpi, MarkerState::kFinal, final_action,
                /*final_epoch=*/true);
}

const trace::PerfCounters& ChameleonTool::perf_counters() const {
  (void)ScalaTraceTool::perf_counters();  // aggregates + intra/inter seconds
  perf_.clustering_seconds = clustering_seconds();
  return perf_;
}

obs::ReportInput build_report_input(const ChameleonTool& tool,
                                    std::string workload) {
  obs::ReportInput input;
  input.workload = std::move(workload);
  input.nranks = tool.nprocs();
  input.epochs = tool.epochs();
  for (int s = 0; s < 4; ++s) {
    const auto state = static_cast<MarkerState>(s);
    obs::StateMemoryRow row;
    row.state = marker_state_name(state);
    std::uint64_t mn = 0;
    std::uint64_t mx = 0;
    for (int r = 0; r < tool.nprocs(); ++r) {
      const auto& sb = tool.rank_state_bytes(r, state);
      if (sb.calls == 0 && sb.bytes_total == 0) continue;
      if (row.ranks == 0 || sb.bytes_total < mn) mn = sb.bytes_total;
      if (row.ranks == 0 || sb.bytes_total > mx) mx = sb.bytes_total;
      ++row.ranks;
      row.calls += sb.calls;
      row.bytes_total += sb.bytes_total;
    }
    row.bytes_min = mn;
    row.bytes_max = mx;
    input.memory.push_back(std::move(row));
  }
  return input;
}

}  // namespace cham::core
