// Shared clustering-reduction protocol.
//
// Both Chameleon (at every C marker) and ACURDION (once, in MPI_Finalize)
// run the same hierarchical signature clustering: leaf cluster sets are
// reduced over a binomial tree with budget-enforcing shrinks at internal
// nodes, and the root broadcasts the final top-K table to everyone.
#pragma once

#include <cstdint>

#include "cluster/clusterset.hpp"

namespace cham::sim {
class Pmpi;
}

namespace cham::core {

struct ClusterProtocolStats {
  double cpu_seconds = 0.0;       ///< local (non-blocking) work on this rank
  std::size_t num_callpaths = 0;  ///< valid at rank 0
  std::size_t effective_k = 0;    ///< valid at rank 0
  /// Cluster-table wire traffic originated/absorbed by this rank (feeds the
  /// tool-wide PerfCounters wire totals).
  std::uint64_t bytes_encoded = 0;
  std::uint64_t bytes_decoded = 0;
};

/// Runs the reduction + broadcast; every rank returns its copy of the final
/// cluster table. Collective over all ranks of the world.
cluster::ClusterSet hierarchical_cluster(sim::Rank rank, sim::Pmpi& pmpi,
                                         const cluster::RankSignature& sig,
                                         std::size_t k,
                                         cluster::SelectPolicy policy,
                                         std::uint64_t seed,
                                         ClusterProtocolStats* stats);

}  // namespace cham::core
