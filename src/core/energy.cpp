#include "core/energy.hpp"

#include <algorithm>

#include "sim/engine.hpp"
#include "support/logging.hpp"

namespace cham::core {

EnergyReport estimate_energy(const std::vector<double>& rank_vtimes,
                             const std::vector<double>& rank_wait_seconds,
                             const PowerModel& model) {
  CHAM_CHECK_MSG(!rank_vtimes.empty(), "energy estimate needs rank times");
  CHAM_CHECK_MSG(rank_vtimes.size() == rank_wait_seconds.size(),
                 "vtime/wait vectors must align");
  CHAM_CHECK_MSG(model.idle_watts <= model.busy_watts,
                 "idle power above busy power");

  EnergyReport report;
  for (std::size_t r = 0; r < rank_vtimes.size(); ++r) {
    const double runtime = rank_vtimes[r];
    // A rank cannot have waited longer than it ran.
    const double wait = std::min(rank_wait_seconds[r], runtime);
    report.total_deficit_seconds += wait;
    report.busy_joules += runtime * model.busy_watts;
    const double harvested = wait * model.harvest_efficiency;
    report.dvfs_joules += (runtime - harvested) * model.busy_watts +
                          harvested * model.idle_watts;
  }
  report.savings_joules = report.busy_joules - report.dvfs_joules;
  report.savings_fraction =
      report.busy_joules > 0 ? report.savings_joules / report.busy_joules : 0;
  return report;
}

EnergyReport estimate_energy(const sim::Engine& engine,
                             const PowerModel& model) {
  std::vector<double> vtimes, waits;
  vtimes.reserve(static_cast<std::size_t>(engine.nprocs()));
  waits.reserve(static_cast<std::size_t>(engine.nprocs()));
  for (int r = 0; r < engine.nprocs(); ++r) {
    vtimes.push_back(engine.vtime(r));
    waits.push_back(engine.wait_seconds(r));
  }
  return estimate_energy(vtimes, waits, model);
}

}  // namespace cham::core
