// Chameleon configuration.
#pragma once

#include <cstdint>

#include "cluster/select.hpp"

namespace cham::durable {
class Checkpointer;
struct RecoveredState;
}  // namespace cham::durable

namespace cham::core {

struct ChameleonConfig {
  /// Cluster budget K (Table I fixes it per benchmark: 3 for BT/SP/POP,
  /// 9 for LU/S3D/LUW, 2 for EMF). Grows dynamically if the number of
  /// distinct Call-Paths exceeds it.
  std::size_t k = 9;

  /// Algorithm 3's Call_Frequency: only every Nth marker call is processed.
  int call_frequency = 1;

  /// Lead-selection policy for Find-Top-K (Algorithm 2).
  cluster::SelectPolicy policy = cluster::SelectPolicy::kFarthest;

  /// RSD/PRSD fold window (inherited by the underlying tracer).
  int max_window = 32;

  /// Seed for the k-random policy.
  std::uint64_t seed = 0;

  /// Fault tolerance: when more than this fraction of cluster leads have
  /// died, the current clustering is abandoned and every survivor falls
  /// back to all-ranks tracing until the next clustering pass (too much of
  /// the representative coverage is gone for lead-only tracing to stand in
  /// for the groups).
  double degrade_fraction = 0.5;

  /// ChamScope: record one obs::EpochRecord per processed marker (state,
  /// cluster table, per-rank lead assignment) for `chamtrace report`. Off
  /// by default — the records cost O(P) per marker.
  bool record_epochs = false;

  /// ChamRace determinism audit: after every processed marker the epoch
  /// home hashes the broadcast cluster table's wire image together with
  /// the online trace encoding. Comparing the digest sequences of runs
  /// under different scheduler seeds proves (or pinpoints, by first
  /// divergent epoch) schedule independence. Off by default — each digest
  /// costs one encode of the cluster table and online trace.
  bool record_digests = false;

  /// §VII automation: when no explicit markers are inserted, detect the
  /// application's iterative structure and synthesize interim execution
  /// points. Heuristic: the first world-collective call site observed to
  /// recur becomes the marker site — for iterative SPMD codes every rank
  /// sees the same collective sequence, so the decision is globally
  /// consistent without communication. Codes without a recurring world
  /// collective fall back to finalize-only clustering (the paper: marker
  /// automation works "in some cases").
  bool auto_marker = false;

  /// ChamDurable: when set, every processed marker journals one RankRecord
  /// per live rank plus the home rank's EpochDelta (the commit marker), and
  /// the journal is periodically folded into an atomic snapshot. Owned by
  /// the caller; the tool only appends/queries. Also changes failure
  /// handling: a promoted lead restores the dead lead's last journaled
  /// partial trace instead of emitting a GAP node (and the loss does not
  /// count toward degrade_fraction).
  durable::Checkpointer* checkpointer = nullptr;

  /// ChamDurable resume: recovered state from durable::recover(). The tool
  /// restores the global protocol state up front, fast-forwards the
  /// deterministic workload replay through the first `resume->epoch`
  /// processed markers without tracing or protocol work, then has each
  /// rank adopt its journaled record and continue live.
  const durable::RecoveredState* resume = nullptr;
};

/// The transition-graph states of Figure 2. kLead covers both the quiet
/// lead phase and the flush that ends it (Table II counts both as L).
enum class MarkerState : std::uint8_t {
  kAllTracing,  // AT
  kClustering,  // C
  kLead,        // L
  kFinal,       // F
};

const char* marker_state_name(MarkerState state);

/// What Algorithm 1 tells Algorithm 3 to do at one processed marker.
enum class MarkerAction : std::uint8_t {
  kNone,        // AT / quiet lead phase: keep going
  kCluster,     // C: cluster, merge lead traces, reset partials
  kFlush,       // L: phase change — merge lead traces with old clusters
};

}  // namespace cham::core
