// Chameleon: online signature-based clustering on top of ScalaTrace.
//
// At every processed marker (an MPI_Barrier on the dedicated marker
// communicator, gated by Call_Frequency) each rank:
//
//   1. closes its interval signature (Call-Path, SRC, DEST — §III),
//   2. votes collectively on Call-Path repetition (Algorithm 1:
//      MPI_Reduce + MPI_Bcast, O(log P)),
//   3. acts on the outcome (Algorithm 3):
//        C      hierarchical signature clustering over a binomial tree,
//               broadcast of the top-K cluster table, lead-only trace merge
//               into the online trace at rank 0, partial-trace reset;
//               non-leads stop storing traces,
//        L      (flush, on a phase change while leading) lead-only merge
//               with the existing clusters, then back to all-tracing,
//        quiet  nothing — leads keep accumulating (RSD folding keeps their
//               partial traces near-constant in size), non-leads store 0
//               bytes.
//
// MPI_Finalize adds the trailing events: a flush when a clustering is
// active, otherwise one forced clustering pass (the paper: re-clustering
// "must be triggered" since MPI_Finalize itself is a new event).
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "cluster/clusterset.hpp"
#include "cluster/signature.hpp"
#include "core/config.hpp"
#include "durable/snapshot.hpp"
#include "obs/report.hpp"
#include "support/memtrack.hpp"
#include "trace/tracer.hpp"

namespace cham::core {

class ChameleonTool : public trace::ScalaTraceTool {
 public:
  ChameleonTool(int nprocs, trace::CallSiteRegistry* stacks,
                ChameleonConfig config = {});

  /// The incrementally built global trace (held at rank 0).
  [[nodiscard]] const std::vector<trace::TraceNode>& online_trace() const {
    return online_;
  }

  /// Cluster table from the most recent clustering (as seen by rank 0).
  [[nodiscard]] const cluster::ClusterSet& clusters() const;

  // --- experiment counters (identical on every rank; see Table II) --------
  [[nodiscard]] std::uint64_t marker_calls_processed() const;
  [[nodiscard]] std::uint64_t state_count(MarkerState state) const {
    return state_counts_[static_cast<std::size_t>(state)];
  }
  [[nodiscard]] std::uint64_t reclusterings() const {
    return state_count(MarkerState::kClustering);
  }
  [[nodiscard]] std::size_t effective_k() const { return effective_k_; }
  [[nodiscard]] std::size_t num_callpath_clusters() const {
    return num_callpaths_;
  }

  // --- per-state tool CPU time, aggregated over ranks (Figure 8) ----------
  // Accounting is kept strictly per rank (each fiber writes only its own
  // slot — a ChamRace-checked invariant); the aggregates sum on demand.
  [[nodiscard]] double state_seconds(MarkerState state) const;
  /// Same accounting, kept per rank (ChamScope metrics export).
  [[nodiscard]] double rank_state_seconds(sim::Rank rank,
                                          MarkerState state) const {
    return rank_state_seconds_.at(static_cast<std::size_t>(rank))
        .at(static_cast<std::size_t>(state));
  }
  /// Clustering work (signatures + vote bookkeeping + tree clustering).
  [[nodiscard]] double clustering_seconds() const;
  /// Online inter-compression work (lead merges + online append).
  [[nodiscard]] double online_inter_seconds() const { return inter_seconds(); }
  /// Total Chameleon overhead: intra tracing + clustering + inter.
  [[nodiscard]] double total_tool_seconds() const {
    return intra_seconds() + clustering_seconds() + inter_seconds();
  }

  /// Base counters plus the clustering phase time.
  [[nodiscard]] const trace::PerfCounters& perf_counters() const override;

  // --- per-rank, per-state memory accounting (Table IV) -------------------
  struct StateBytes {
    std::uint64_t calls = 0;
    std::uint64_t bytes_total = 0;
    [[nodiscard]] std::uint64_t bytes_per_call() const {
      return calls == 0 ? 0 : bytes_total / calls;
    }
  };
  [[nodiscard]] const StateBytes& rank_state_bytes(sim::Rank rank,
                                                   MarkerState state) const {
    return bytes_.at(static_cast<std::size_t>(rank))
        .at(static_cast<std::size_t>(state));
  }

  /// Partial-trace footprint per rank, re-charged at every marker boundary:
  /// current() tracks the live interval's bytes, peak() the worst epoch.
  [[nodiscard]] const support::MemTracker& rank_mem(sim::Rank rank) const {
    return mem_.at(static_cast<std::size_t>(rank));
  }

  /// Epoch-by-epoch protocol snapshots (only filled when
  /// ChameleonConfig::record_epochs is set; recorded by the home rank).
  [[nodiscard]] const std::vector<obs::EpochRecord>& epochs() const {
    return epochs_;
  }

  /// Per-epoch wire-image digests (only filled when
  /// ChameleonConfig::record_digests is set; hashed by the home rank from
  /// the broadcast cluster table + the online trace). The determinism
  /// auditor diffs these sequences across scheduler seeds.
  [[nodiscard]] const std::vector<std::uint64_t>& epoch_digests() const {
    return epoch_digests_;
  }

  [[nodiscard]] const ChameleonConfig& config() const { return config_; }

 public:
  /// Overridden to implement §VII auto-marker detection (see
  /// ChameleonConfig::auto_marker).
  void on_post(sim::Rank rank, const sim::CallInfo& info,
               sim::Pmpi& pmpi) override;

  /// Auto-detected marker call site (0 until one recurs); rank-0 view.
  [[nodiscard]] std::uint64_t auto_marker_site() const {
    return cham_.front().auto_site;
  }

 protected:
  void observe_event(sim::Rank rank, const trace::EventRecord& record,
                     sim::Pmpi& pmpi) override;
  void handle_marker_post(sim::Rank rank, sim::Pmpi& pmpi) override;
  void handle_finalize(sim::Rank rank, sim::Pmpi& pmpi) override;

 private:
  struct RankChamState {
    cluster::IntervalSignature interval;
    std::uint64_t old_callpath = 0;
    bool first_marker = true;
    bool reclustering = true;
    bool lead_phase = false;  // between C and its flush
    std::uint64_t markers_seen = 0;
    /// Home rank for the current marker epoch, captured right after the
    /// epoch's synchronization point while no crash can intervene — later
    /// protocol steps reuse it so every survivor agrees even if the home
    /// itself dies mid-protocol (consistency over freshness).
    sim::Rank epoch_home = 0;
    /// Processed markers this rank has participated in. Every live rank
    /// passes every processed marker's barrier, so all live copies agree —
    /// the counter stays per rank only so that no fiber ever writes a
    /// shared slot (ChamRace).
    std::uint64_t processed = 0;
    cluster::ClusterSet clusters;  // own copy, as broadcast
    /// ChamDurable resume: while set, this rank replays the workload
    /// without tracing or protocol work; cleared when the replay reaches
    /// the recovered epoch and the journaled record is adopted.
    bool fast_forward = false;
    // --- §VII auto-marker detection ---
    std::uint64_t auto_site = 0;  // chosen recurring collective site
    std::unordered_map<std::uint64_t, int> site_counts;
  };

  /// Fault tolerance: detect cluster leads that died since the last
  /// processed marker, promote the lowest-rank surviving member of each
  /// affected cluster, record an explicit gap node for the interval the
  /// dead lead's partial trace covered, and fall back to all-ranks tracing
  /// when more than config_.degrade_fraction of the leads are gone. No-op
  /// without an installed fault injector.
  void handle_failures(sim::Rank rank, sim::Pmpi& pmpi);
  /// Rank that owns the online trace and roots the vote: rank 0 until it
  /// dies, then the lowest surviving rank.
  [[nodiscard]] static sim::Rank home_rank(sim::Pmpi& pmpi);

  MarkerAction algorithm1(sim::Rank rank, sim::Pmpi& pmpi,
                          const cluster::RankSignature& sig, double* cpu);
  /// Hierarchical clustering + broadcast (Algorithm 3 lines 7–24).
  void run_clustering(sim::Rank rank, sim::Pmpi& pmpi,
                      const cluster::RankSignature& sig, double* cpu);
  /// Lead-only inter-compression + online-trace append (lines 25–48).
  void lead_merge_into_online(sim::Rank rank, sim::Pmpi& pmpi);
  void account_marker(sim::Rank rank, MarkerState state, double sig_cpu,
                      double cluster_cpu);
  /// ChamScope bookkeeping shared by marker and finalize processing: the
  /// epoch record (home rank, when enabled), the state instant on the
  /// timeline, and the per-rank partial-trace memory re-charge.
  void record_epoch(sim::Rank rank, MarkerState state, MarkerAction action,
                    std::uint64_t intra_bytes);

  /// ChamDurable: journal this rank's post-epoch record, cross the commit
  /// barrier (records precede the delta in the journal), then have the
  /// epoch home append the EpochDelta and fsync. No-op without a
  /// checkpointer.
  void journal_epoch(sim::Rank rank, sim::Pmpi& pmpi, MarkerState state,
                     MarkerAction action, bool final_epoch);
  /// End of the fast-forward replay: adopt this rank's recovered record
  /// (protocol flags, partial intra trace, storing flag).
  void adopt_resume_state(sim::Rank rank);

  ChameleonConfig config_;
  std::vector<RankChamState> cham_;
  std::vector<trace::TraceNode> online_;

  /// Dead leads already covered by a gap node in the online trace (gaps
  /// are emitted once per dead lead, by the home rank).
  std::set<sim::Rank> gaps_emitted_;

  std::array<std::uint64_t, 4> state_counts_{};  // written by rank 0 only
  std::size_t effective_k_ = 0;   // written by the epoch home only
  std::size_t num_callpaths_ = 0;  // written by the epoch home only
  std::vector<std::array<StateBytes, 4>> bytes_;
  std::vector<std::array<double, 4>> rank_state_seconds_;
  /// Per-rank clustering CPU (sig + vote + tree); clustering_seconds()
  /// sums. Single-writer per slot, like every other per-rank vector here.
  std::vector<double> rank_clustering_seconds_;
  std::vector<support::MemTracker> mem_;
  std::vector<obs::EpochRecord> epochs_;  // appended by the epoch home only
  std::vector<std::uint64_t> epoch_digests_;  // appended by the epoch home

  // --- ChamDurable ---
  /// Processed-marker count to fast-forward through on resume (0 = fresh).
  std::uint64_t resume_target_ = 0;
  /// Recovered per-rank records, adopted when fast-forward ends.
  std::unordered_map<int, durable::RankRecord> resume_records_;
  /// Gap nodes emitted this epoch / the interval handed to append_online,
  /// staged for the epoch delta. Written by the home rank's fiber only
  /// (home handoffs are barrier-ordered, same single-writer argument as
  /// online_).
  std::vector<trace::TraceNode> pending_gaps_;
  std::vector<std::uint8_t> pending_interval_wire_;
};

/// Assemble the `chamtrace report` input from a finished run: the recorded
/// epochs plus the per-state trace-memory table aggregated over ranks
/// (min/max/total of each rank's bytes charged to the state). Everything in
/// the result is deterministic for a fixed workload + config.
[[nodiscard]] obs::ReportInput build_report_input(const ChameleonTool& tool,
                                                  std::string workload);

}  // namespace cham::core
