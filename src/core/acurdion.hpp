// ACURDION baseline: signature clustering at MPI_Finalize only.
//
// The predecessor line of work ([1],[2],[3] in the paper) clusters once,
// late: every rank traces the whole run (so all P ranks pay full trace
// storage — the Table IV comparison), computes its whole-run signature in
// MPI_Finalize, participates in one hierarchical clustering, and only the
// K lead traces are merged into the global trace. Chameleon's Table III
// compares its repeated marker processing against this single pass.
#pragma once

#include "cluster/clusterset.hpp"
#include "cluster/signature.hpp"
#include "core/config.hpp"
#include "trace/tracer.hpp"

namespace cham::core {

class AcurdionTool : public trace::ScalaTraceTool {
 public:
  AcurdionTool(int nprocs, trace::CallSiteRegistry* stacks,
               ChameleonConfig config = {});

  [[nodiscard]] const cluster::ClusterSet& clusters() const {
    return clusters_;
  }
  [[nodiscard]] double clustering_seconds() const;
  [[nodiscard]] std::size_t effective_k() const { return effective_k_; }
  /// Total tool overhead: intra tracing + one clustering + lead merge.
  [[nodiscard]] double total_tool_seconds() const {
    return intra_seconds() + clustering_seconds() + inter_seconds();
  }

  /// Base counters plus the clustering phase time.
  [[nodiscard]] const trace::PerfCounters& perf_counters() const override;

 protected:
  void observe_event(sim::Rank rank, const trace::EventRecord& record,
                     sim::Pmpi& pmpi) override;
  void handle_finalize(sim::Rank rank, sim::Pmpi& pmpi) override;

 private:
  ChameleonConfig config_;
  std::vector<cluster::IntervalSignature> whole_run_;
  cluster::ClusterSet clusters_;  // rank-0 view
  /// Per-rank clustering CPU; each fiber writes only its own slot
  /// (ChamRace invariant, same discipline as the base tracer's counters).
  std::vector<double> rank_clustering_seconds_;
  std::size_t effective_k_ = 0;  // written by rank 0 only
};

}  // namespace cham::core
