// ScalaReplay equivalent: re-execute a compressed trace on the minimpi
// runtime and measure its virtual completion time.
//
// Every rank interprets the (single, global) trace, executing the events
// whose ranklist contains it: computation is simulated by advancing the
// virtual clock with each event's delta-time representative, communication
// is re-issued with endpoints re-resolved against the replaying rank's own
// id (the paper's enhancement: all members of a cluster replay their lead's
// trace, transposing relative parameters automatically).
//
// The accuracy metric is the paper's: ACC = 1 - |t - t'| / t.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/netmodel.hpp"
#include "trace/event.hpp"

namespace cham::replay {

struct ReplayOptions {
  int nprocs = 0;  ///< world size to replay at (required)
  sim::NetModel net{};
  std::size_t stack_bytes = 256 * 1024;
  /// Degrade gracefully when the clustered trace is an approximation (K
  /// below the natural behaviour-group count): unmatched receives and
  /// collectives are force-completed instead of deadlocking, and reported
  /// in ReplayResult.
  bool approximate = true;
};

struct ReplayResult {
  /// Virtual completion time of the slowest rank (the paper's replay time).
  double vtime = 0.0;
  std::uint64_t events_replayed = 0;
  std::uint64_t messages = 0;
  std::uint64_t collectives = 0;
  /// Approximation events (0 when the trace replays exactly).
  std::uint64_t cancelled_recvs = 0;
  std::uint64_t forced_collectives = 0;
};

/// Replay `trace` on a fresh engine. Throws on a structurally broken trace
/// (e.g. unmatched receives surface as a deadlock).
ReplayResult replay_trace(const std::vector<trace::TraceNode>& trace,
                          const ReplayOptions& options);

/// ACC = 1 - |reference - measured| / reference  (clamped to [0, 1]).
double replay_accuracy(double reference_seconds, double measured_seconds);

}  // namespace cham::replay
