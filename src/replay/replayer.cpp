#include "replay/replayer.hpp"

#include <cmath>

#include "replay/interp.hpp"
#include "sim/engine.hpp"
#include "sim/mpi.hpp"
#include "support/logging.hpp"

namespace cham::replay {

namespace {

void replay_rank(sim::Mpi& mpi, const std::vector<trace::TraceNode>& trace,
                 std::uint64_t* events_out) {
  EventCursor cursor(trace, mpi.rank());
  std::vector<sim::Request> outstanding;

  while (!cursor.done()) {
    const trace::EventRecord& ev = *cursor.current();

    // Simulated computation: the recorded delta-time distribution stands in
    // for the code between MPI calls (ScalaReplay's "sleeps").
    const double dt = ev.delta.representative();
    if (dt > 0) mpi.compute(dt);

    const sim::Rank src = ev.src.resolve(mpi.rank(), mpi.size());
    const sim::Rank dest = ev.dest.resolve(mpi.rank(), mpi.size());

    switch (ev.op) {
      case sim::Op::kSend:
        mpi.send(dest, ev.bytes, ev.tag);
        break;
      case sim::Op::kIsend:
        outstanding.push_back(mpi.isend(dest, ev.bytes, ev.tag));
        break;
      case sim::Op::kRecv:
        mpi.recv(src, ev.bytes, ev.tag);
        break;
      case sim::Op::kIrecv:
        outstanding.push_back(mpi.irecv(src, ev.bytes, ev.tag));
        break;
      case sim::Op::kWait:
        if (!outstanding.empty()) {
          mpi.wait(outstanding.front());
          outstanding.erase(outstanding.begin());
        }
        break;
      case sim::Op::kWaitall:
        mpi.waitall(outstanding);
        outstanding.clear();
        break;
      case sim::Op::kBarrier:
        if (ev.is_marker) {
          mpi.marker();
        } else {
          mpi.barrier();
        }
        break;
      case sim::Op::kBcast:
        mpi.bcast(ev.bytes, static_cast<sim::Rank>(ev.dest.value));
        break;
      case sim::Op::kReduce:
        mpi.reduce(ev.bytes, static_cast<sim::Rank>(ev.dest.value));
        break;
      case sim::Op::kAllreduce:
        mpi.allreduce(ev.bytes);
        break;
      case sim::Op::kGather:
        mpi.gather(ev.bytes, static_cast<sim::Rank>(ev.dest.value));
        break;
      case sim::Op::kScatter:
        mpi.scatter(ev.bytes, static_cast<sim::Rank>(ev.dest.value));
        break;
      case sim::Op::kAllgather:
        mpi.allgather(ev.bytes);
        break;
      case sim::Op::kAlltoall:
        mpi.alltoall(ev.bytes);
        break;
      case sim::Op::kInit:
      case sim::Op::kFinalize:
      case sim::Op::kGap:
        break;  // structural markers / lost intervals; nothing to re-issue
    }
    cursor.next();
  }
  // Drain any never-waited requests so the engine shuts down cleanly.
  mpi.waitall(outstanding);
  *events_out += cursor.yielded();
}

}  // namespace

ReplayResult replay_trace(const std::vector<trace::TraceNode>& trace,
                          const ReplayOptions& options) {
  CHAM_CHECK_MSG(options.nprocs >= 1, "replay needs a world size");
  sim::Engine engine({.nprocs = options.nprocs,
                      .stack_bytes = options.stack_bytes,
                      .net = options.net});
  if (options.approximate) engine.enable_approximate_progress();
  std::vector<std::uint64_t> per_rank(static_cast<std::size_t>(options.nprocs), 0);
  engine.run([&](sim::Mpi& mpi) {
    replay_rank(mpi, trace, &per_rank[static_cast<std::size_t>(mpi.rank())]);
  });

  ReplayResult result;
  result.vtime = engine.max_vtime();
  for (std::uint64_t n : per_rank) result.events_replayed += n;
  result.messages = engine.messages_sent();
  result.collectives = engine.collectives_run();
  result.cancelled_recvs = engine.cancelled_recvs();
  result.forced_collectives = engine.forced_collectives();
  return result;
}

double replay_accuracy(double reference_seconds, double measured_seconds) {
  if (reference_seconds <= 0) return 0.0;
  const double acc =
      1.0 - std::abs(reference_seconds - measured_seconds) / reference_seconds;
  return std::max(0.0, std::min(1.0, acc));
}

}  // namespace cham::replay
