// PRSD trace interpretation.
//
// ScalaReplay walks the compressed trace "on-the-fly": loops expand lazily,
// and a rank executes exactly the leaf events whose ranklist contains it.
// The iterator below yields those events in program order without ever
// materializing the expanded trace.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/event.hpp"

namespace cham::replay {

/// Lazy in-order iterator over the events of `trace` that rank `rank`
/// participates in.
class EventCursor {
 public:
  EventCursor(const std::vector<trace::TraceNode>& trace, sim::Rank rank);

  /// The current event, or nullptr when exhausted.
  [[nodiscard]] const trace::EventRecord* current() const;

  /// Advance to the next participating event.
  void next();

  [[nodiscard]] bool done() const { return current_ == nullptr; }

  /// Events yielded so far.
  [[nodiscard]] std::uint64_t yielded() const { return yielded_; }

 private:
  struct Frame {
    const std::vector<trace::TraceNode>* nodes;
    std::size_t index = 0;
    std::uint64_t remaining_iters = 0;  // for loop frames
  };

  void descend();

  const std::vector<trace::TraceNode>* root_;
  sim::Rank rank_;
  std::vector<Frame> stack_;
  const trace::EventRecord* current_ = nullptr;
  std::uint64_t yielded_ = 0;
};

/// Total (event, rank) pairs the trace expands to — the work a full replay
/// performs across all ranks.
std::uint64_t expanded_event_rank_pairs(const std::vector<trace::TraceNode>& trace);

}  // namespace cham::replay
