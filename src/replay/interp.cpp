#include "replay/interp.hpp"

namespace cham::replay {

EventCursor::EventCursor(const std::vector<trace::TraceNode>& trace,
                         sim::Rank rank)
    : root_(&trace), rank_(rank) {
  stack_.push_back(Frame{root_, 0, 1});
  descend();
}

const trace::EventRecord* EventCursor::current() const { return current_; }

void EventCursor::descend() {
  // Walk forward until a participating leaf is found or the walk ends.
  current_ = nullptr;
  while (!stack_.empty()) {
    Frame& frame = stack_.back();
    if (frame.index >= frame.nodes->size()) {
      // End of this body: one loop iteration done.
      if (frame.remaining_iters > 1) {
        --frame.remaining_iters;
        frame.index = 0;
        continue;
      }
      stack_.pop_back();
      if (!stack_.empty()) ++stack_.back().index;
      continue;
    }
    const trace::TraceNode& node = (*frame.nodes)[frame.index];
    if (node.is_loop()) {
      stack_.push_back(Frame{&node.body, 0, node.iters});
      continue;
    }
    if (node.event.ranks.contains(rank_)) {
      current_ = &node.event;
      ++yielded_;
      return;
    }
    ++frame.index;
  }
}

void EventCursor::next() {
  if (stack_.empty()) {
    current_ = nullptr;
    return;
  }
  ++stack_.back().index;
  descend();
}

namespace {
std::uint64_t pairs_of(const trace::TraceNode& node) {
  if (!node.is_loop()) return node.event.ranks.count();
  std::uint64_t body = 0;
  for (const auto& child : node.body) body += pairs_of(child);
  return body * node.iters;
}
}  // namespace

std::uint64_t expanded_event_rank_pairs(
    const std::vector<trace::TraceNode>& trace) {
  std::uint64_t total = 0;
  for (const auto& node : trace) total += pairs_of(node);
  return total;
}

}  // namespace cham::replay
