// ChamScope metrics registry.
//
// One process-wide registry of named metrics — counters, gauges, and
// histograms — each carrying a label set ({rank, tool, phase, state, ...}).
// The runtime does not update the registry on hot paths; instead the
// existing cheap accumulators (trace::PerfCounters, support::MemTracker,
// the per-rank SectionTimers inside the tools) are *bridged* into the
// registry at report time. That keeps the instrumented code identical to
// the uninstrumented code until the moment a snapshot is requested.
//
// The registry is exported as one JSON document (schema
// "chameleon.metrics.v1") through support/json so escaping and number
// formatting are shared with every other emitter in the tree.
//
// Thread-safety: every entry point takes an internal mutex, so shard
// workers of the multi-threaded engine may bridge concurrently. The one
// exception is histogram(), which hands out a pointer into the registry —
// use it only while the writers are quiescent (post-run inspection).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/histogram.hpp"
#include "support/json.hpp"

namespace cham::obs {

/// Ordered label set. Order is preserved in the export; callers pass labels
/// in a canonical order ({rank, tool, phase, ...}) so output is stable.
using Labels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  /// Add `delta` to a counter, creating it at zero first.
  void add_counter(std::string_view name, const Labels& labels,
                   std::uint64_t delta);

  /// Overwrite a counter (used when bridging an already-accumulated total).
  void set_counter(std::string_view name, const Labels& labels,
                   std::uint64_t value);

  /// Overwrite a gauge.
  void set_gauge(std::string_view name, const Labels& labels, double value);

  /// Record one sample into a histogram metric.
  void record(std::string_view name, const Labels& labels, double sample);

  /// Merge an existing support::Histogram into a histogram metric.
  void merge_histogram(std::string_view name, const Labels& labels,
                       const support::Histogram& histogram);

  // --- inspection (tests, report assembly) ---------------------------------
  [[nodiscard]] std::uint64_t counter(std::string_view name,
                                      const Labels& labels) const;
  [[nodiscard]] double gauge(std::string_view name, const Labels& labels) const;
  /// Pointer into the registry — only safe while no writer is active.
  [[nodiscard]] const support::Histogram* histogram(std::string_view name,
                                                    const Labels& labels) const;
  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(m_);
    return metrics_.size();
  }
  [[nodiscard]] bool empty() const {
    const std::lock_guard<std::mutex> lock(m_);
    return metrics_.empty();
  }
  void clear() {
    const std::lock_guard<std::mutex> lock(m_);
    metrics_.clear();
  }

  /// Emit the full registry into `w` as a complete JSON document:
  ///   {"schema": "chameleon.metrics.v1", "metrics": [ ... ]}
  /// Metrics appear sorted by (name, labels) so output is deterministic.
  void to_json(support::json::Writer& w) const;

  /// Convenience: the document as a string.
  [[nodiscard]] std::string to_json_string(bool pretty = true) const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind = Kind::kCounter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    support::Histogram histogram;
  };

  /// entry/find require m_ held by the caller.
  Entry& entry(std::string_view name, const Labels& labels, Kind kind);
  [[nodiscard]] const Entry* find(std::string_view name,
                                  const Labels& labels) const;
  static std::string make_key(std::string_view name, const Labels& labels);

  mutable std::mutex m_;
  std::map<std::string, Entry, std::less<>> metrics_;
};

/// Process-wide registry used by the runtime bridges. Null (the default)
/// means metrics collection is off; bridges check the pointer and return —
/// the only cost on the disabled path.
[[nodiscard]] MetricsRegistry* metrics();
void set_metrics(MetricsRegistry* registry);

}  // namespace cham::obs
