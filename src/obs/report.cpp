#include "obs/report.hpp"

#include <algorithm>

#include "support/table.hpp"

namespace cham::obs {

namespace {

int effective_lead(const EpochRecord& e, int rank) {
  if (rank < 0 || static_cast<std::size_t>(rank) >= e.lead_of.size())
    return rank;
  const int lead = e.lead_of[static_cast<std::size_t>(rank)];
  return lead >= 0 ? lead : rank;
}

std::string leads_to_string(const std::vector<int>& leads) {
  std::string out;
  for (const int lead : leads) {
    if (!out.empty()) out += ' ';
    out += std::to_string(lead);
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int churn(const EpochRecord& prev, const EpochRecord& cur) {
  const int nranks = static_cast<int>(
      std::max(prev.lead_of.size(), cur.lead_of.size()));
  int changed = 0;
  for (int r = 0; r < nranks; ++r)
    if (effective_lead(prev, r) != effective_lead(cur, r)) ++changed;
  return changed;
}

std::string render_text(const ReportInput& input) {
  std::string out = "cluster evolution: " + input.workload + " (" +
                    std::to_string(input.nranks) + " ranks, " +
                    std::to_string(input.epochs.size()) + " epochs)\n";

  support::Table epochs("per-marker epochs");
  epochs.header({"epoch", "marker", "state", "action", "callpaths", "clusters",
                 "churn", "leads"});
  for (std::size_t i = 0; i < input.epochs.size(); ++i) {
    const EpochRecord& e = input.epochs[i];
    const int c = i == 0 ? 0 : churn(input.epochs[i - 1], e);
    epochs.row({std::to_string(i + 1), std::to_string(e.marker), e.state,
                e.action, std::to_string(e.callpaths),
                std::to_string(e.clusters), std::to_string(c),
                leads_to_string(e.leads)});
  }
  out += epochs.render();

  if (!input.memory.empty()) {
    support::Table mem("trace memory by state");
    mem.header({"state", "ranks", "calls", "bytes_total", "bytes_min",
                "bytes_max"});
    for (const StateMemoryRow& row : input.memory)
      mem.row({row.state, std::to_string(row.ranks), std::to_string(row.calls),
               std::to_string(row.bytes_total), std::to_string(row.bytes_min),
               std::to_string(row.bytes_max)});
    out += '\n';
    out += mem.render();
  }
  return out;
}

std::string render_csv(const ReportInput& input) {
  std::string out =
      "epoch,marker,state,action,callpaths,clusters,churn,leads\n";
  for (std::size_t i = 0; i < input.epochs.size(); ++i) {
    const EpochRecord& e = input.epochs[i];
    const int c = i == 0 ? 0 : churn(input.epochs[i - 1], e);
    std::string leads;
    for (const int lead : e.leads) {
      if (!leads.empty()) leads += ' ';
      leads += std::to_string(lead);
    }
    out += std::to_string(i + 1) + ',' + std::to_string(e.marker) + ',' +
           e.state + ',' + e.action + ',' + std::to_string(e.callpaths) + ',' +
           std::to_string(e.clusters) + ',' + std::to_string(c) + ",\"" +
           leads + "\"\n";
  }
  return out;
}

void render_json(const ReportInput& input, support::json::Writer& w) {
  w.begin_object();
  w.member("schema", "chameleon.report.v1");
  w.member("workload", input.workload);
  w.member("nranks", input.nranks);
  w.key("epochs").begin_array();
  for (std::size_t i = 0; i < input.epochs.size(); ++i) {
    const EpochRecord& e = input.epochs[i];
    w.begin_object();
    w.member("epoch", i + 1);
    w.member("marker", e.marker);
    w.member("state", e.state);
    w.member("action", e.action);
    w.member("callpaths", e.callpaths);
    w.member("clusters", e.clusters);
    w.member("churn", i == 0 ? 0 : churn(input.epochs[i - 1], e));
    w.key("leads").begin_array();
    for (const int lead : e.leads) w.value(lead);
    w.end_array();
    w.key("lead_of").begin_array();
    for (const int lead : e.lead_of) w.value(lead);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("memory_by_state").begin_array();
  for (const StateMemoryRow& row : input.memory) {
    w.begin_object();
    w.member("state", row.state);
    w.member("ranks", row.ranks);
    w.member("calls", row.calls);
    w.member("bytes_total", row.bytes_total);
    w.member("bytes_min", row.bytes_min);
    w.member("bytes_max", row.bytes_max);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace cham::obs
