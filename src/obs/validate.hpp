// Structural validation of ChamScope output (`chamtrace validate`).
//
// tools/check.sh needs to prove that --timeline and --metrics-out produced
// documents Perfetto (resp. the metrics schema) will accept, without
// depending on any external JSON tooling. These validators parse the
// document with support/json and check the documented invariants:
//
// timeline — top-level "traceEvents" array; every event has ph/ts/pid/tid;
//   ts is finite and non-decreasing per tid; every "B" has a matching "E"
//   on the same tid (no span crosses tracks, nothing left open).
// metrics  — schema "chameleon.metrics.v1"; "metrics" array whose entries
//   carry name/type/labels/value with types matching the declared kind.
// race     — schema "chameleon.race.v1" (`chamtrace race --json`); finding
//   entries carry location/kind/first/second with a known conflict kind;
//   the optional determinism block is internally consistent.
// prof     — schema "chameleon.prof.v1" (`chamtrace run --profile`); shard
//   entries carry finite host-clock counters and a phases object; locks
//   carry name/acquisitions/contended/wait_seconds; the samples block's
//   folded stacks are well-formed; overhead.profiling_seconds is present.
#pragma once

#include <string>
#include <string_view>

namespace cham::obs {

/// Both return true on success; on failure, `error` (if non-null) gets a
/// one-line description including the offending event index or metric name.
bool validate_timeline_json(std::string_view text, std::string* error);
bool validate_metrics_json(std::string_view text, std::string* error);
bool validate_race_json(std::string_view text, std::string* error);
bool validate_prof_json(std::string_view text, std::string* error);

}  // namespace cham::obs
