// Cluster-evolution report (`chamtrace report`).
//
// The Chameleon tool records one EpochRecord per processed marker when
// ChameleonConfig::record_epochs is set. This module replays those records
// into the per-marker summary the paper's evaluation tables are built from:
// cluster count, lead ranks, and membership churn per epoch, plus the
// per-state trace-memory table (à la Table IV). Output renders as text,
// CSV, or JSON. Every field in the report is deterministic for a fixed
// workload + config (no wall-clock values), so golden tests can pin it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace cham::obs {

/// Snapshot of the clustering protocol at one processed marker.
struct EpochRecord {
  std::uint64_t marker = 0;   ///< 1-based processed-marker index
  std::string state;          ///< protocol state after the marker: AT/C/L/F
  std::string action;         ///< what Algorithm 1 decided: none/cluster/flush
  std::size_t callpaths = 0;  ///< distinct call-paths known at this epoch
  std::size_t clusters = 0;   ///< clusters in the current table
  std::vector<int> leads;     ///< lead ranks, ascending
  /// Per-rank assigned lead; -1 while unassigned (the rank traces for
  /// itself). Size = world size.
  std::vector<int> lead_of;
};

/// Aggregated trace memory charged to one protocol state (Table IV).
struct StateMemoryRow {
  std::string state;
  std::uint64_t ranks = 0;        ///< ranks that traced in this state
  std::uint64_t calls = 0;        ///< events charged to the state
  std::uint64_t bytes_total = 0;  ///< summed across ranks
  std::uint64_t bytes_min = 0;
  std::uint64_t bytes_max = 0;
};

struct ReportInput {
  std::string workload;
  int nranks = 0;
  std::vector<EpochRecord> epochs;
  std::vector<StateMemoryRow> memory;
};

/// Membership churn between consecutive epochs: the number of ranks whose
/// effective lead changed, where an unassigned rank's lead is itself.
[[nodiscard]] int churn(const EpochRecord& prev, const EpochRecord& cur);

[[nodiscard]] std::string render_text(const ReportInput& input);
[[nodiscard]] std::string render_csv(const ReportInput& input);
void render_json(const ReportInput& input, support::json::Writer& w);

}  // namespace cham::obs
