#include "obs/metrics.hpp"

#include <atomic>

#include "obs/prof/profiler.hpp"
#include "support/logging.hpp"

namespace cham::obs {

namespace {
// Atomic install/load so a sink can be (un)installed while worker
// threads are mid-run: release on store publishes the fully built
// object, acquire on load pairs with it (ChamRace satellite; the
// epoch-parallel pilot hammers this).
std::atomic<MetricsRegistry*> g_metrics{nullptr};
}  // namespace

MetricsRegistry* metrics() {
  return g_metrics.load(std::memory_order_acquire);
}
void set_metrics(MetricsRegistry* registry) {
  g_metrics.store(registry, std::memory_order_release);
}

std::string MetricsRegistry::make_key(std::string_view name,
                                      const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';  // unit separator — cannot appear in sane label text
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               const Labels& labels,
                                               Kind kind) {
  const std::string key = make_key(name, labels);
  auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    Entry e;
    e.name = std::string(name);
    e.labels = labels;
    e.kind = kind;
    it = metrics_.emplace(key, std::move(e)).first;
  }
  CHAM_CHECK_MSG(it->second.kind == kind,
                 "metric re-registered with a different kind: " + it->second.name);
  return it->second;
}

const MetricsRegistry::Entry* MetricsRegistry::find(std::string_view name,
                                                    const Labels& labels) const {
  const auto it = metrics_.find(make_key(name, labels));
  return it == metrics_.end() ? nullptr : &it->second;
}

void MetricsRegistry::add_counter(std::string_view name, const Labels& labels,
                                  std::uint64_t delta) {
  const prof::PhaseScope sink(prof::Phase::kObsSink);
  const prof::TimedLockGuard lock(m_, prof::LockClass::kMetricsSink);
  entry(name, labels, Kind::kCounter).counter += delta;
}

void MetricsRegistry::set_counter(std::string_view name, const Labels& labels,
                                  std::uint64_t value) {
  const prof::PhaseScope sink(prof::Phase::kObsSink);
  const prof::TimedLockGuard lock(m_, prof::LockClass::kMetricsSink);
  entry(name, labels, Kind::kCounter).counter = value;
}

void MetricsRegistry::set_gauge(std::string_view name, const Labels& labels,
                                double value) {
  const prof::PhaseScope sink(prof::Phase::kObsSink);
  const prof::TimedLockGuard lock(m_, prof::LockClass::kMetricsSink);
  entry(name, labels, Kind::kGauge).gauge = value;
}

void MetricsRegistry::record(std::string_view name, const Labels& labels,
                             double sample) {
  const prof::PhaseScope sink(prof::Phase::kObsSink);
  const prof::TimedLockGuard lock(m_, prof::LockClass::kMetricsSink);
  entry(name, labels, Kind::kHistogram).histogram.add(sample);
}

void MetricsRegistry::merge_histogram(std::string_view name,
                                      const Labels& labels,
                                      const support::Histogram& histogram) {
  const prof::PhaseScope sink(prof::Phase::kObsSink);
  const prof::TimedLockGuard lock(m_, prof::LockClass::kMetricsSink);
  entry(name, labels, Kind::kHistogram).histogram.merge(histogram);
}

std::uint64_t MetricsRegistry::counter(std::string_view name,
                                       const Labels& labels) const {
  const prof::TimedLockGuard lock(m_, prof::LockClass::kMetricsSink);
  const Entry* e = find(name, labels);
  return e != nullptr && e->kind == Kind::kCounter ? e->counter : 0;
}

double MetricsRegistry::gauge(std::string_view name, const Labels& labels) const {
  const prof::TimedLockGuard lock(m_, prof::LockClass::kMetricsSink);
  const Entry* e = find(name, labels);
  return e != nullptr && e->kind == Kind::kGauge ? e->gauge : 0.0;
}

const support::Histogram* MetricsRegistry::histogram(std::string_view name,
                                                     const Labels& labels) const {
  const prof::TimedLockGuard lock(m_, prof::LockClass::kMetricsSink);
  const Entry* e = find(name, labels);
  return e != nullptr && e->kind == Kind::kHistogram ? &e->histogram : nullptr;
}

void MetricsRegistry::to_json(support::json::Writer& w) const {
  const prof::PhaseScope sink(prof::Phase::kObsSink);
  const prof::TimedLockGuard lock(m_, prof::LockClass::kMetricsSink);
  w.begin_object();
  w.member("schema", "chameleon.metrics.v1");
  w.key("metrics").begin_array();
  for (const auto& [key, e] : metrics_) {
    (void)key;
    w.begin_object();
    w.member("name", e.name);
    switch (e.kind) {
      case Kind::kCounter: w.member("type", "counter"); break;
      case Kind::kGauge: w.member("type", "gauge"); break;
      case Kind::kHistogram: w.member("type", "histogram"); break;
    }
    w.key("labels").begin_object();
    for (const auto& [lk, lv] : e.labels) w.member(lk, lv);
    w.end_object();
    switch (e.kind) {
      case Kind::kCounter:
        w.member("value", e.counter);
        break;
      case Kind::kGauge:
        w.member("value", e.gauge);
        break;
      case Kind::kHistogram: {
        const support::Histogram& h = e.histogram;
        w.key("value").begin_object();
        w.member("count", h.count());
        w.member("min", h.min());
        w.member("max", h.max());
        w.member("mean", h.mean());
        w.member("total", h.total());
        w.key("bins").begin_array();
        for (int i = 0; i < support::Histogram::kBins; ++i) w.value(h.bin(i));
        w.end_array();
        w.end_object();
        break;
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string MetricsRegistry::to_json_string(bool pretty) const {
  support::json::Writer w(pretty);
  to_json(w);
  return w.str();
}

}  // namespace cham::obs
