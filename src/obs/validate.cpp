#include "obs/validate.hpp"

#include <cmath>
#include <map>

#include "support/json.hpp"

namespace cham::obs {

namespace {

using support::json::Value;

bool fail(std::string* error, std::string what) {
  if (error != nullptr) *error = std::move(what);
  return false;
}

}  // namespace

bool validate_timeline_json(std::string_view text, std::string* error) {
  Value doc;
  std::string parse_error;
  if (!support::json::parse(text, &doc, &parse_error))
    return fail(error, "timeline: parse error: " + parse_error);
  if (!doc.is_object()) return fail(error, "timeline: top level is not an object");
  const Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array())
    return fail(error, "timeline: missing traceEvents array");

  std::map<int, int> open_depth;     // tid -> open B spans
  std::map<int, double> last_ts;     // tid -> last seen ts
  std::size_t index = 0;
  for (const Value& ev : events->as_array()) {
    const std::string at = " (event " + std::to_string(index++) + ")";
    if (!ev.is_object()) return fail(error, "timeline: event is not an object" + at);
    const Value* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string())
      return fail(error, "timeline: event missing ph" + at);
    const std::string& kind = ph->as_string();
    const Value* tid = ev.find("tid");
    const Value* pid = ev.find("pid");
    if (tid == nullptr || !tid->is_number())
      return fail(error, "timeline: event missing tid" + at);
    if (pid == nullptr || !pid->is_number())
      return fail(error, "timeline: event missing pid" + at);
    if (kind == "M") continue;  // metadata events carry no ts

    const Value* ts = ev.find("ts");
    if (ts == nullptr || !ts->is_number() || !std::isfinite(ts->as_number()))
      return fail(error, "timeline: event missing finite ts" + at);
    const int t = static_cast<int>(tid->as_number());
    const auto prev = last_ts.find(t);
    if (prev != last_ts.end() && ts->as_number() < prev->second)
      return fail(error, "timeline: ts not monotonic on tid " +
                             std::to_string(t) + at);
    last_ts[t] = ts->as_number();

    if (kind == "B") {
      const Value* name = ev.find("name");
      if (name == nullptr || !name->is_string())
        return fail(error, "timeline: B event missing name" + at);
      ++open_depth[t];
    } else if (kind == "E") {
      if (open_depth[t] <= 0)
        return fail(error, "timeline: E without matching B on tid " +
                               std::to_string(t) + at);
      --open_depth[t];
    } else if (kind == "i") {
      const Value* name = ev.find("name");
      if (name == nullptr || !name->is_string())
        return fail(error, "timeline: instant missing name" + at);
    } else if (kind == "C") {
      // Counter sample (ChamProf counter tracks): needs a series name and
      // at least one numeric value in args.
      const Value* name = ev.find("name");
      if (name == nullptr || !name->is_string())
        return fail(error, "timeline: counter missing name" + at);
      const Value* args = ev.find("args");
      if (args == nullptr || !args->is_object() || args->as_object().empty())
        return fail(error, "timeline: counter missing args" + at);
      for (const auto& [key, v] : args->as_object())
        if (!v.is_number() || !std::isfinite(v.as_number()))
          return fail(error, "timeline: counter arg \"" + key +
                                 "\" not a finite number" + at);
    } else {
      return fail(error, "timeline: unknown ph \"" + kind + "\"" + at);
    }
  }
  for (const auto& [t, depth] : open_depth)
    if (depth != 0)
      return fail(error, "timeline: " + std::to_string(depth) +
                             " unclosed span(s) on tid " + std::to_string(t));
  return true;
}

bool validate_metrics_json(std::string_view text, std::string* error) {
  Value doc;
  std::string parse_error;
  if (!support::json::parse(text, &doc, &parse_error))
    return fail(error, "metrics: parse error: " + parse_error);
  if (!doc.is_object()) return fail(error, "metrics: top level is not an object");
  const Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "chameleon.metrics.v1")
    return fail(error, "metrics: missing schema chameleon.metrics.v1");
  const Value* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_array())
    return fail(error, "metrics: missing metrics array");

  for (const Value& m : metrics->as_array()) {
    if (!m.is_object()) return fail(error, "metrics: entry is not an object");
    const Value* name = m.find("name");
    if (name == nullptr || !name->is_string())
      return fail(error, "metrics: entry missing name");
    const std::string at = " (metric " + name->as_string() + ")";
    const Value* type = m.find("type");
    if (type == nullptr || !type->is_string())
      return fail(error, "metrics: entry missing type" + at);
    const Value* labels = m.find("labels");
    if (labels == nullptr || !labels->is_object())
      return fail(error, "metrics: entry missing labels object" + at);
    const Value* value = m.find("value");
    if (value == nullptr) return fail(error, "metrics: entry missing value" + at);
    const std::string& kind = type->as_string();
    if (kind == "counter" || kind == "gauge") {
      if (!value->is_number() || !std::isfinite(value->as_number()))
        return fail(error, "metrics: " + kind + " value not a finite number" + at);
    } else if (kind == "histogram") {
      if (!value->is_object() || value->find("count") == nullptr ||
          value->find("bins") == nullptr)
        return fail(error, "metrics: histogram value missing count/bins" + at);
    } else {
      return fail(error, "metrics: unknown type \"" + kind + "\"" + at);
    }
  }
  return true;
}

bool validate_race_json(std::string_view text, std::string* error) {
  Value doc;
  std::string parse_error;
  if (!support::json::parse(text, &doc, &parse_error))
    return fail(error, "race: parse error: " + parse_error);
  if (!doc.is_object()) return fail(error, "race: top level is not an object");
  const Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "chameleon.race.v1")
    return fail(error, "race: missing schema chameleon.race.v1");
  for (const char* key : {"accesses", "sync_ops", "locations", "epochs"}) {
    const Value* v = doc.find(key);
    if (v == nullptr || !v->is_number())
      return fail(error, std::string("race: missing numeric ") + key);
  }
  // Optional (added with the ChamProf PR): records the analyzer-pass
  // thread clamp so consumers can tell a requested --threads N run from an
  // actually-parallel one.
  if (const Value* threads = doc.find("threads"); threads != nullptr) {
    if (!threads->is_object())
      return fail(error, "race: threads is not an object");
    for (const char* key : {"requested", "analyzer"}) {
      const Value* v = threads->find(key);
      if (v == nullptr || !v->is_number())
        return fail(error, std::string("race: threads missing numeric ") + key);
    }
    const Value* clamped = threads->find("clamped");
    if (clamped == nullptr || !clamped->is_bool())
      return fail(error, "race: threads missing clamped bool");
  }
  const Value* findings = doc.find("findings");
  if (findings == nullptr || !findings->is_array())
    return fail(error, "race: missing findings array");

  auto check_access = [&](const Value& side, const std::string& at) {
    if (!side.is_object()) return fail(error, "race: access side not an object" + at);
    for (const char* key : {"task", "clock", "epoch"}) {
      const Value* v = side.find(key);
      if (v == nullptr || !v->is_number())
        return fail(error, std::string("race: access missing ") + key + at);
    }
    return true;
  };

  std::size_t index = 0;
  for (const Value& f : findings->as_array()) {
    const std::string at = " (finding " + std::to_string(index++) + ")";
    if (!f.is_object()) return fail(error, "race: finding is not an object" + at);
    const Value* location = f.find("location");
    if (location == nullptr || !location->is_string())
      return fail(error, "race: finding missing location" + at);
    const Value* kind = f.find("kind");
    if (kind == nullptr || !kind->is_string())
      return fail(error, "race: finding missing kind" + at);
    const std::string& k = kind->as_string();
    if (k != "write-write" && k != "write-read" && k != "read-write")
      return fail(error, "race: unknown kind \"" + k + "\"" + at);
    const Value* count = f.find("count");
    if (count == nullptr || !count->is_number() || count->as_number() < 1)
      return fail(error, "race: finding count not a positive number" + at);
    const Value* first = f.find("first");
    const Value* second = f.find("second");
    if (first == nullptr || second == nullptr)
      return fail(error, "race: finding missing first/second" + at);
    if (!check_access(*first, at) || !check_access(*second, at)) return false;
  }

  if (const Value* det = doc.find("determinism"); det != nullptr) {
    if (!det->is_object())
      return fail(error, "race: determinism is not an object");
    const Value* ok = det->find("deterministic");
    if (ok == nullptr || !ok->is_bool())
      return fail(error, "race: determinism missing deterministic bool");
    const Value* seeds = det->find("seeds");
    if (seeds == nullptr || !seeds->is_array() || seeds->as_array().empty())
      return fail(error, "race: determinism missing non-empty seeds array");
    const Value* divergent = det->find("first_divergent_epoch");
    if (divergent == nullptr || !divergent->is_number())
      return fail(error, "race: determinism missing first_divergent_epoch");
    if (!ok->as_bool() && divergent->as_number() < 0)
      return fail(error,
                  "race: non-deterministic result needs a divergent epoch");
  }
  return true;
}

bool validate_prof_json(std::string_view text, std::string* error) {
  Value doc;
  std::string parse_error;
  if (!support::json::parse(text, &doc, &parse_error))
    return fail(error, "prof: parse error: " + parse_error);
  if (!doc.is_object()) return fail(error, "prof: top level is not an object");
  const Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "chameleon.prof.v1")
    return fail(error, "prof: missing schema chameleon.prof.v1");
  const Value* compiled = doc.find("compiled_in");
  if (compiled == nullptr || !compiled->is_bool())
    return fail(error, "prof: missing compiled_in bool");

  auto finite_num = [&](const Value& obj, const char* key,
                        const std::string& at) {
    const Value* v = obj.find(key);
    if (v == nullptr || !v->is_number() || !std::isfinite(v->as_number()) ||
        v->as_number() < 0.0)
      return fail(error, std::string("prof: missing non-negative ") + key + at);
    return true;
  };

  const Value* shards = doc.find("shards");
  if (shards == nullptr || !shards->is_array() || shards->as_array().empty())
    return fail(error, "prof: missing non-empty shards array");
  for (const Value& sh : shards->as_array()) {
    if (!sh.is_object()) return fail(error, "prof: shard entry not an object");
    const std::string at =
        " (shard " +
        (sh.find("shard") != nullptr && sh.find("shard")->is_number()
             ? std::to_string(static_cast<int>(sh.find("shard")->as_number()))
             : std::string("?")) +
        ")";
    for (const char* key :
         {"barrier_wait_seconds", "plan_seconds", "dispatch_seconds",
          "epochs_planned", "dispatches", "wake_tokens", "ready_depth_sum",
          "ready_depth_max"})
      if (!finite_num(sh, key, at)) return false;
    const Value* phases = sh.find("phases");
    if (phases == nullptr || !phases->is_object())
      return fail(error, "prof: shard missing phases object" + at);
    for (const auto& [name, v] : phases->as_object())
      if (!v.is_number() || !std::isfinite(v.as_number()))
        return fail(error,
                    "prof: phase \"" + name + "\" not a finite number" + at);
  }

  const Value* locks = doc.find("locks");
  if (locks == nullptr || !locks->is_array() || locks->as_array().empty())
    return fail(error, "prof: missing non-empty locks array");
  for (const Value& lk : locks->as_array()) {
    if (!lk.is_object()) return fail(error, "prof: lock entry not an object");
    const Value* name = lk.find("name");
    if (name == nullptr || !name->is_string())
      return fail(error, "prof: lock entry missing name");
    const std::string at = " (lock " + name->as_string() + ")";
    for (const char* key : {"acquisitions", "contended", "wait_seconds"})
      if (!finite_num(lk, key, at)) return false;
  }

  const Value* phases = doc.find("phases");
  if (phases == nullptr || !phases->is_object())
    return fail(error, "prof: missing aggregate phases object");

  const Value* epochs = doc.find("epochs");
  if (epochs == nullptr || !epochs->is_object())
    return fail(error, "prof: missing epochs object");
  for (const char* key : {"planned", "series_recorded", "series_dropped"})
    if (!finite_num(*epochs, key, "")) return false;

  const Value* samples = doc.find("samples");
  if (samples == nullptr || !samples->is_object())
    return fail(error, "prof: missing samples object");
  for (const char* key : {"interval_us", "ticks", "total"})
    if (!finite_num(*samples, key, "")) return false;
  const Value* folded = samples->find("folded");
  if (folded == nullptr || !folded->is_array())
    return fail(error, "prof: samples missing folded array");
  for (const Value& f : folded->as_array()) {
    if (!f.is_object()) return fail(error, "prof: folded entry not an object");
    const Value* stack = f.find("stack");
    if (stack == nullptr || !stack->is_string() || stack->as_string().empty())
      return fail(error, "prof: folded entry missing stack");
    const Value* count = f.find("count");
    if (count == nullptr || !count->is_number() || count->as_number() < 1)
      return fail(error, "prof: folded entry count not positive (stack " +
                             stack->as_string() + ")");
  }

  const Value* overhead = doc.find("overhead");
  if (overhead == nullptr || !overhead->is_object())
    return fail(error, "prof: missing overhead object");
  if (!finite_num(*overhead, "profiling_seconds", "")) return false;
  return true;
}

}  // namespace cham::obs
