#include "obs/timeline.hpp"

#include <atomic>

#include "support/timer.hpp"

namespace cham::obs {

namespace {
// Atomic install/load so a sink can be (un)installed while worker
// threads are mid-run: release on store publishes the fully built
// object, acquire on load pairs with it (ChamRace satellite; the
// epoch-parallel pilot hammers this).
std::atomic<Timeline*> g_timeline{nullptr};
}  // namespace

Timeline* timeline() {
  return g_timeline.load(std::memory_order_acquire);
}
void set_timeline(Timeline* timeline) {
  g_timeline.store(timeline, std::memory_order_release);
}

TimelineArg arg_str(std::string_view key, std::string_view value) {
  return TimelineArg{std::string(key),
                     '"' + support::json::escape(value) + '"'};
}

TimelineArg arg_num(std::string_view key, double value) {
  return TimelineArg{std::string(key), support::json::number(value)};
}

TimelineArg arg_int(std::string_view key, std::int64_t value) {
  return TimelineArg{std::string(key), std::to_string(value)};
}

Timeline::Timeline() : t0_(support::thread_cpu_seconds()) {}

double Timeline::now_us() const {
  return (support::thread_cpu_seconds() - t0_) * 1e6;
}

void Timeline::set_track_name(int tid, std::string_view name) {
  const std::lock_guard<std::mutex> lock(m_);
  track_names_[tid] = std::string(name);
}

void Timeline::begin(int tid, std::string_view name, std::string_view cat,
                     std::vector<TimelineArg> args) {
  const double ts = now_us();  // clock read outside the lock
  const std::lock_guard<std::mutex> lock(m_);
  events_.push_back(
      Event{'B', ts, tid, std::string(name), std::string(cat), std::move(args)});
  ++open_depth_[tid];
}

void Timeline::end(int tid) {
  const double ts = now_us();
  const std::lock_guard<std::mutex> lock(m_);
  auto it = open_depth_.find(tid);
  if (it == open_depth_.end() || it->second == 0) return;
  --it->second;
  events_.push_back(Event{'E', ts, tid, {}, {}, {}});
}

void Timeline::instant(int tid, std::string_view name, std::string_view cat,
                       std::vector<TimelineArg> args) {
  const double ts = now_us();
  const std::lock_guard<std::mutex> lock(m_);
  events_.push_back(
      Event{'i', ts, tid, std::string(name), std::string(cat), std::move(args)});
}

std::size_t Timeline::event_count() const {
  const std::lock_guard<std::mutex> lock(m_);
  return events_.size();
}

std::size_t Timeline::open_spans() const {
  const std::lock_guard<std::mutex> lock(m_);
  std::size_t n = 0;
  for (const auto& [tid, depth] : open_depth_) n += static_cast<std::size_t>(depth);
  return n;
}

void Timeline::close_open_spans() {
  // Crashed ranks and cancelled fibers can leave spans open; close them at
  // the current time so the emitted document always balances.
  const double ts = now_us();
  for (auto& [tid, depth] : open_depth_) {
    for (; depth > 0; --depth)
      events_.push_back(Event{'E', ts, tid, {}, {}, {}});
  }
}

std::string Timeline::to_json(bool pretty) {
  const std::lock_guard<std::mutex> lock(m_);
  close_open_spans();
  support::json::Writer w(pretty);
  w.begin_object();
  w.member("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const auto& [tid, name] : track_names_) {
    w.begin_object();
    w.member("ph", "M");
    w.member("name", "thread_name");
    w.member("pid", 1);
    w.member("tid", tid);
    w.key("args").begin_object();
    w.member("name", name);
    w.end_object();
    w.end_object();
  }
  for (const Event& e : events_) {
    w.begin_object();
    w.member("ph", std::string_view(&e.ph, 1));
    w.member("ts", e.ts);
    w.member("pid", 1);
    w.member("tid", e.tid);
    if (e.ph != 'E') {
      w.member("name", e.name);
      if (!e.cat.empty()) w.member("cat", e.cat);
      if (e.ph == 'i') w.member("s", "t");
    }
    if (!e.args.empty()) {
      w.key("args").begin_object();
      for (const TimelineArg& a : e.args) w.key(a.key).raw(a.token);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace cham::obs
