#include "obs/timeline.hpp"

#include <atomic>
#include <utility>

#include "obs/prof/profiler.hpp"
#include "support/logging.hpp"
#include "support/timer.hpp"

namespace cham::obs {

namespace {
// Atomic install/load so a sink can be (un)installed while worker
// threads are mid-run: release on store publishes the fully built
// object, acquire on load pairs with it (ChamRace satellite; the
// epoch-parallel pilot hammers this).
std::atomic<Timeline*> g_timeline{nullptr};

/// Perfetto row order: scheduler first, shard workers next, rank tracks
/// after, ChamProf counter tracks last.
int track_sort_index(int tid) {
  if (tid == Timeline::kSchedulerTid) return 0;
  if (tid <= -1000) return 2000 + (-1000 - tid);  // counter_tid(s)
  if (tid < 0) return -tid;                       // shard_tid(s)
  return 1000 + (tid - 1);                        // rank_tid(r)
}
}  // namespace

Timeline* timeline() {
  return g_timeline.load(std::memory_order_acquire);
}
void set_timeline(Timeline* timeline) {
  g_timeline.store(timeline, std::memory_order_release);
}

TimelineArg arg_str(std::string_view key, std::string_view value) {
  return TimelineArg{std::string(key),
                     '"' + support::json::escape(value) + '"'};
}

TimelineArg arg_num(std::string_view key, double value) {
  return TimelineArg{std::string(key), support::json::number(value)};
}

TimelineArg arg_int(std::string_view key, std::int64_t value) {
  return TimelineArg{std::string(key), std::to_string(value)};
}

Timeline::Timeline() : t0_(support::thread_cpu_seconds()) {}

double Timeline::now_us() const {
  return (support::thread_cpu_seconds() - t0_) * 1e6;
}

void Timeline::set_track_name(int tid, std::string_view name) {
  const prof::TimedLockGuard lock(m_, prof::LockClass::kTimelineSink);
  track_names_[tid] = std::string(name);
}

void Timeline::push_event(Event e) {
  events_.push_back(std::move(e));
  if (flushing_ && events_.size() >= flush_every_) flush_events_locked();
}

void Timeline::begin(int tid, std::string_view name, std::string_view cat,
                     std::vector<TimelineArg> args) {
  const prof::PhaseScope sink(prof::Phase::kObsSink);
  const double ts = now_us();  // clock read outside the lock
  const prof::TimedLockGuard lock(m_, prof::LockClass::kTimelineSink);
  push_event(
      Event{'B', ts, tid, std::string(name), std::string(cat), std::move(args)});
  ++open_depth_[tid];
}

void Timeline::end(int tid) {
  const prof::PhaseScope sink(prof::Phase::kObsSink);
  const double ts = now_us();
  const prof::TimedLockGuard lock(m_, prof::LockClass::kTimelineSink);
  auto it = open_depth_.find(tid);
  if (it == open_depth_.end() || it->second == 0) return;
  --it->second;
  push_event(Event{'E', ts, tid, {}, {}, {}});
}

void Timeline::instant(int tid, std::string_view name, std::string_view cat,
                       std::vector<TimelineArg> args) {
  const prof::PhaseScope sink(prof::Phase::kObsSink);
  const double ts = now_us();
  const prof::TimedLockGuard lock(m_, prof::LockClass::kTimelineSink);
  push_event(
      Event{'i', ts, tid, std::string(name), std::string(cat), std::move(args)});
}

void Timeline::counter_at(double ts_us, int tid, std::string_view name,
                          double value) {
  const prof::TimedLockGuard lock(m_, prof::LockClass::kTimelineSink);
  push_event(Event{'C', ts_us, tid, std::string(name), {},
                   {arg_num("value", value)}});
}

std::size_t Timeline::event_count() const {
  const prof::TimedLockGuard lock(m_, prof::LockClass::kTimelineSink);
  return events_.size() + flushed_;
}

std::size_t Timeline::open_spans() const {
  const prof::TimedLockGuard lock(m_, prof::LockClass::kTimelineSink);
  std::size_t n = 0;
  for (const auto& [tid, depth] : open_depth_) n += static_cast<std::size_t>(depth);
  return n;
}

void Timeline::close_open_spans() {
  // Crashed ranks and cancelled fibers can leave spans open; close them at
  // the current time so the emitted document always balances.
  const double ts = now_us();
  for (auto& [tid, depth] : open_depth_) {
    for (; depth > 0; --depth)
      events_.push_back(Event{'E', ts, tid, {}, {}, {}});
  }
}

void Timeline::write_event(support::json::Writer& w, const Event& e) {
  w.begin_object();
  w.member("ph", std::string_view(&e.ph, 1));
  w.member("ts", e.ts);
  w.member("pid", 1);
  w.member("tid", e.tid);
  if (e.ph != 'E') {
    w.member("name", e.name);
    if (!e.cat.empty()) w.member("cat", e.cat);
    if (e.ph == 'i') w.member("s", "t");
  }
  if (!e.args.empty()) {
    w.key("args").begin_object();
    for (const TimelineArg& a : e.args) w.key(a.key).raw(a.token);
    w.end_object();
  }
  w.end_object();
}

void Timeline::write_metadata(support::json::Writer& w) const {
  for (const auto& [tid, name] : track_names_) {
    w.begin_object();
    w.member("ph", "M");
    w.member("name", "thread_name");
    w.member("pid", 1);
    w.member("tid", tid);
    w.key("args").begin_object();
    w.member("name", name);
    w.end_object();
    w.end_object();
  }
  // Explicit row order so Perfetto doesn't sort shard workers (negative
  // tids) above the scheduler or interleave them with rank tracks.
  for (const auto& [tid, name] : track_names_) {
    w.begin_object();
    w.member("ph", "M");
    w.member("name", "thread_sort_index");
    w.member("pid", 1);
    w.member("tid", tid);
    w.key("args").begin_object();
    w.member("sort_index", track_sort_index(tid));
    w.end_object();
    w.end_object();
  }
}

void Timeline::set_flush(const std::string& path, std::size_t every_n) {
  const prof::TimedLockGuard lock(m_, prof::LockClass::kTimelineSink);
  CHAM_CHECK_MSG(!flushing_, "timeline: set_flush() called twice");
  flush_out_.open(path, std::ios::binary | std::ios::trunc);
  CHAM_CHECK_MSG(flush_out_.is_open(),
                 "timeline: cannot open flush path " + path);
  flush_out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  flush_every_ = every_n == 0 ? 1 : every_n;
  flushing_ = true;
}

void Timeline::flush_events_locked() {
  for (const Event& e : events_) {
    if (flushed_ != 0) flush_out_ << ",\n";
    support::json::Writer w(/*pretty=*/false);
    write_event(w, e);
    flush_out_ << w.str();
    ++flushed_;
  }
  events_.clear();
  flush_out_.flush();
}

bool Timeline::finish_flush() {
  const prof::TimedLockGuard lock(m_, prof::LockClass::kTimelineSink);
  CHAM_CHECK_MSG(flushing_, "timeline: finish_flush() without set_flush()");
  close_open_spans();
  flush_events_locked();
  // Metadata lands at the end of the stream: Chrome trace format accepts
  // metadata records anywhere, and by now every track name is known.
  support::json::Writer w(/*pretty=*/false);
  w.begin_array();
  write_metadata(w);
  w.end_array();
  std::string meta = w.str();           // "[{...},{...}]" or "[]"
  meta = meta.substr(1, meta.size() - 2);  // strip the brackets
  if (!meta.empty()) {
    if (flushed_ != 0) flush_out_ << ",\n";
    flush_out_ << meta;
  }
  flush_out_ << "]}\n";
  flush_out_.flush();
  // Stream error bits are sticky, so one check here covers every chunked
  // write since set_flush() (disk full, vanished path, ...).
  const bool ok = flush_out_.good();
  flush_out_.close();
  flushing_ = false;
  flush_every_ = 0;
  return ok;
}

bool Timeline::flushing() const {
  const prof::TimedLockGuard lock(m_, prof::LockClass::kTimelineSink);
  return flushing_;
}

std::string Timeline::to_json(bool pretty) {
  const prof::PhaseScope sink(prof::Phase::kObsSink);
  const prof::TimedLockGuard lock(m_, prof::LockClass::kTimelineSink);
  CHAM_CHECK_MSG(!flushing_,
                 "timeline: to_json() unavailable in streaming mode; use "
                 "finish_flush()");
  close_open_spans();
  support::json::Writer w(pretty);
  w.begin_object();
  w.member("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  write_metadata(w);
  for (const Event& e : events_) write_event(w, e);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace cham::obs
