// ChamScope timeline tracer — Chrome trace-event / Perfetto JSON.
//
// Records what the Chameleon *runtime itself* is doing as the simulation
// executes: fiber scheduling slices, per-rank MPI calls, protocol state
// transitions (AT→C→L→F), marker epochs, fold/inter-merge spans, and fault
// events. The output ({"traceEvents": [...]}) loads directly in Perfetto or
// chrome://tracing.
//
// Track layout (all events share pid 1):
//   tid 0        — "scheduler": one slice per fiber dispatch, named "rank N"
//                  (shard 0 of the sharded engine reuses this track)
//   tid -s       — "shard s": dispatch slices of sharded-engine shard s > 0
//   tid rank+1   — "rank N": MPI call spans, protocol spans, fault instants
//
// Enabling: the runtime consults a single global pointer (set_timeline).
// When it is null — the default — every hook is one pointer compare and a
// branch; no allocation, no clock read. The pointer itself is installed
// with release semantics and loaded with acquire, so installation is safe
// even with worker threads in flight. The Timeline object itself is
// internally synchronized: every mutating entry point takes one mutex, so
// shard workers of the multi-threaded engine may emit concurrently.
// Timestamps are per-thread CPU time, so slices on different shard tracks
// measure work, not wall-clock alignment.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/json.hpp"

namespace cham::obs {

/// One event argument; `token` is a pre-rendered JSON value (use the
/// arg_str/arg_num/arg_int helpers so escaping stays centralized).
struct TimelineArg {
  std::string key;
  std::string token;
};

[[nodiscard]] TimelineArg arg_str(std::string_view key, std::string_view value);
[[nodiscard]] TimelineArg arg_num(std::string_view key, double value);
[[nodiscard]] TimelineArg arg_int(std::string_view key, std::int64_t value);

class Timeline {
 public:
  /// Track id of the fiber-scheduler track; rank r's track is `r + 1`.
  static constexpr int kSchedulerTid = 0;
  static constexpr int rank_tid(int rank) { return rank + 1; }
  /// Dispatch track of sharded-engine shard s. Shard 0 maps onto the
  /// classic scheduler track (tid 0); further shards get negative tids so
  /// they can never collide with rank tracks.
  static constexpr int shard_tid(int shard) { return -shard; }
  /// ChamProf counter tracks (per-shard ready depth etc.). Deep in the
  /// negative range so counter samples never share a tid with dispatch
  /// slices — the per-tid ts-monotonicity contract stays per-feed.
  static constexpr int counter_tid(int shard) { return -1000 - shard; }

  Timeline();

  /// Set the human-readable name of a track (emitted as thread_name
  /// metadata so Perfetto labels the row).
  void set_track_name(int tid, std::string_view name);

  /// Open a duration span ("B"). Every begin must be matched by end();
  /// spans left open (crashed ranks, cancelled fibers) are force-closed by
  /// to_json() so the document always has matched B/E pairs.
  void begin(int tid, std::string_view name, std::string_view cat,
             std::vector<TimelineArg> args = {});

  /// Close the innermost open span on `tid` ("E"). No-op if none is open.
  void end(int tid);

  /// Zero-duration instant ("i", thread scope).
  void instant(int tid, std::string_view name, std::string_view cat,
               std::vector<TimelineArg> args = {});

  /// Counter sample ("C") at an explicit timestamp (µs since timeline
  /// creation — see origin_seconds()). ChamProf uses this to merge
  /// host-clock counter tracks recorded outside the timeline.
  void counter_at(double ts_us, int tid, std::string_view name, double value);

  /// The host-clock origin (thread_cpu_seconds() at construction) that
  /// event timestamps are relative to.
  [[nodiscard]] double origin_seconds() const { return t0_; }

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::size_t open_spans() const;

  /// Streaming mode: write events to `path` in chunks of `every_n` instead
  /// of holding the whole run in memory (long multi-thread runs, future
  /// `serve` jobs). Output is always compact. Call finish_flush() — not
  /// to_json() — to complete the document; metadata records are appended
  /// at the end so late track names still land. The in-memory default
  /// (never calling set_flush) is byte-for-byte unchanged. finish_flush()
  /// returns false if the stream reported an I/O error (disk full, vanished
  /// path) at any point since set_flush().
  void set_flush(const std::string& path, std::size_t every_n);
  [[nodiscard]] bool finish_flush();
  [[nodiscard]] bool flushing() const;

  /// Render the complete document. Still-open spans are closed at the
  /// current time first (this mutates the timeline). Must not be used in
  /// streaming mode (the early events are already on disk).
  [[nodiscard]] std::string to_json(bool pretty = false);

 private:
  struct Event {
    char ph;      // 'B', 'E', 'i', or 'C'
    double ts;    // microseconds since timeline creation
    int tid;
    std::string name;
    std::string cat;
    std::vector<TimelineArg> args;
  };

  [[nodiscard]] double now_us() const;
  void close_open_spans();
  void push_event(Event e);  ///< append + chunked flush; caller holds m_
  void flush_events_locked();
  static void write_event(support::json::Writer& w, const Event& e);
  void write_metadata(support::json::Writer& w) const;

  /// Guards every field below; taken by each public entry point so shard
  /// workers can emit concurrently (satellite of the ChamShard PR).
  mutable std::mutex m_;
  std::vector<Event> events_;
  std::map<int, std::string> track_names_;
  std::map<int, int> open_depth_;
  double t0_;

  // Streaming state (set_flush). flushed_ counts events already on disk.
  std::ofstream flush_out_;
  std::size_t flush_every_ = 0;
  std::size_t flushed_ = 0;
  bool flushing_ = false;
};

/// Process-wide timeline. Null (the default) disables all tracing hooks;
/// checking this pointer is the entire cost of the disabled path.
[[nodiscard]] Timeline* timeline();
void set_timeline(Timeline* timeline);

/// RAII duration span on the global timeline. Safe during fiber
/// cancellation: the destructor runs while the FiberCancelled exception
/// unwinds, so nesting stays balanced even when a fault kills the rank.
class Span {
 public:
  Span(int tid, std::string_view name, std::string_view cat,
       std::vector<TimelineArg> args = {})
      : timeline_(timeline()), tid_(tid) {
    if (timeline_ != nullptr)
      timeline_->begin(tid_, name, cat, std::move(args));
  }
  ~Span() {
    if (timeline_ != nullptr) timeline_->end(tid_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Timeline* timeline_;
  int tid_;
};

}  // namespace cham::obs
