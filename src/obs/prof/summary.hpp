// Renderers for saved chameleon.prof.v1 profiles (`chamtrace profile`).
#pragma once

#include <string>

#include "support/json.hpp"

namespace cham::obs::prof {

/// Human-readable per-shard imbalance summary: barrier-wait share, phase
/// breakdown, busiest locks, sampler coverage, self-measured overhead.
/// `doc` must be a parsed chameleon.prof.v1 document.
[[nodiscard]] std::string render_profile_summary(
    const support::json::Value& doc);

/// The folded-stack samples, one "stack count" line per entry — pipe into
/// flamegraph.pl / speedscope.
[[nodiscard]] std::string render_folded(const support::json::Value& doc);

}  // namespace cham::obs::prof
