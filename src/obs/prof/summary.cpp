#include "obs/prof/summary.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string_view>
#include <vector>

namespace cham::obs::prof {

namespace {

double num(const support::json::Value& v, std::string_view key,
           double fallback = 0.0) {
  const support::json::Value* f = v.find(key);
  return f != nullptr && f->is_number() ? f->as_number() : fallback;
}

std::string str(const support::json::Value& v, std::string_view key) {
  const support::json::Value* f = v.find(key);
  return f != nullptr && f->is_string() ? f->as_string() : std::string();
}

void line(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
  out += '\n';
}

std::string pct(double part, double whole) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%",
                whole > 0.0 ? 100.0 * part / whole : 0.0);
  return buf;
}

}  // namespace

std::string render_profile_summary(const support::json::Value& doc) {
  std::string out;
  line(out, "profile: schema=%s compiled_in=%s", str(doc, "schema").c_str(),
       doc.find("compiled_in") != nullptr && doc.find("compiled_in")->is_bool()
           ? (doc.find("compiled_in")->as_bool() ? "true" : "false")
           : "?");

  const support::json::Value* shards = doc.find("shards");
  if (shards != nullptr && shards->is_array() && !shards->as_array().empty()) {
    line(out, "");
    line(out,
         "shard  barrier_wait  plan      dispatch   wait%%   epochs  "
         "dispatches  wake  ready avg/max");
    for (const support::json::Value& sh : shards->as_array()) {
      const double wait = num(sh, "barrier_wait_seconds");
      const double plan = num(sh, "plan_seconds");
      const double disp = num(sh, "dispatch_seconds");
      const double busy = wait + plan + disp;
      const double planned = num(sh, "epochs_planned");
      const double rsum = num(sh, "ready_depth_sum");
      const double total_epochs =
          doc.find("epochs") != nullptr ? num(*doc.find("epochs"), "planned")
                                        : 0.0;
      line(out,
           "%5d  %9.3fms  %7.3fms  %8.3fms  %s  %6.0f  %10.0f  %4.0f  "
           "%5.1f/%-4.0f",
           static_cast<int>(num(sh, "shard")), wait * 1e3, plan * 1e3,
           disp * 1e3, pct(wait, busy).c_str(), planned,
           num(sh, "dispatches"), num(sh, "wake_tokens"),
           total_epochs > 0.0 ? rsum / total_epochs : 0.0,
           num(sh, "ready_depth_max"));
    }
  }

  const support::json::Value* phases = doc.find("phases");
  if (phases != nullptr && phases->is_object()) {
    double total = 0.0;
    for (const auto& [name, v] : phases->as_object())
      if (v.is_number()) total += v.as_number();
    std::vector<std::pair<std::string, double>> rows;
    for (const auto& [name, v] : phases->as_object())
      if (v.is_number()) rows.emplace_back(name, v.as_number());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    line(out, "");
    line(out, "phase breakdown (host self-time):");
    for (const auto& [name, secs] : rows) {
      if (secs <= 0.0 && total > 0.0) continue;
      line(out, "  %-12s %9.3fms  %s", name.c_str(), secs * 1e3,
           pct(secs, total).c_str());
    }
  }

  const support::json::Value* locks = doc.find("locks");
  if (locks != nullptr && locks->is_array()) {
    std::vector<const support::json::Value*> rows;
    for (const support::json::Value& lk : locks->as_array()) rows.push_back(&lk);
    std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
      return num(*a, "wait_seconds") > num(*b, "wait_seconds");
    });
    line(out, "");
    line(out, "busiest locks:");
    for (const support::json::Value* lk : rows) {
      const double acq = num(*lk, "acquisitions");
      if (acq <= 0.0) continue;
      line(out, "  %-14s acq=%-10.0f contended=%-8.0f wait=%9.3fms (%s)",
           str(*lk, "name").c_str(), acq, num(*lk, "contended"),
           num(*lk, "wait_seconds") * 1e3,
           pct(num(*lk, "contended"), acq).c_str());
    }
  }

  const support::json::Value* samples = doc.find("samples");
  if (samples != nullptr && samples->is_object()) {
    line(out, "");
    line(out,
         "sampler: %.0f samples over %.0f ticks @ %.0fus (epochs %.0f..%.0f)",
         num(*samples, "total"), num(*samples, "ticks"),
         num(*samples, "interval_us"), num(*samples, "epoch_min"),
         num(*samples, "epoch_max"));
  }

  const support::json::Value* overhead = doc.find("overhead");
  if (overhead != nullptr) {
    line(out, "self-measured profiling cost: %.3fms",
         num(*overhead, "profiling_seconds") * 1e3);
  }
  return out;
}

std::string render_folded(const support::json::Value& doc) {
  std::string out;
  const support::json::Value* samples = doc.find("samples");
  const support::json::Value* folded =
      samples != nullptr ? samples->find("folded") : nullptr;
  if (folded == nullptr || !folded->is_array()) return out;
  for (const support::json::Value& e : folded->as_array()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s %.0f\n", str(e, "stack").c_str(),
                  num(e, "count"));
    out += buf;
  }
  return out;
}

}  // namespace cham::obs::prof
