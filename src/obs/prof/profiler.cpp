#include "obs/prof/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/timeline.hpp"
#include "support/logging.hpp"
#include "support/timer.hpp"

namespace cham::obs::prof {

double host_seconds() { return support::thread_cpu_seconds(); }

const char* lock_class_name(LockClass c) {
  switch (c) {
    case LockClass::kMailbox:
      return "mailbox";
    case LockClass::kInbox:
      return "inbox";
    case LockClass::kCollMap:
      return "collmap";
    case LockClass::kCollSite:
      return "collsite";
    case LockClass::kShardQueue:
      return "shard_queue";
    case LockClass::kTimelineSink:
      return "timeline_sink";
    case LockClass::kMetricsSink:
      return "metrics_sink";
    case LockClass::kCount:
      break;
  }
  return "?";
}

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kIdle:
      return "idle";
    case Phase::kEngine:
      return "engine";
    case Phase::kFold:
      return "fold";
    case Phase::kRadixMerge:
      return "radix_merge";
    case Phase::kInterMerge:
      return "inter_merge";
    case Phase::kClustering:
      return "clustering";
    case Phase::kLeadMerge:
      return "lead_merge";
    case Phase::kObsSink:
      return "obs_sink";
    case Phase::kCount:
      break;
  }
  return "?";
}

namespace {

std::atomic<Profiler*> g_profiler{nullptr};

/// Shard binding for the calling thread. Default 0: the driving thread runs
/// shard 0's fibers in both the sharded and single-threaded schedulers.
thread_local int t_worker_shard = 0;

/// Innermost live PhaseScope attached to this thread. Logically the chain
/// is *fiber*-local — scopes live on fiber stacks and straddle blocking
/// calls — so the schedulers swap this pointer at every dispatch boundary
/// via PhaseScope::suspend()/resume().
thread_local PhaseScope* t_phase_top = nullptr;

}  // namespace

Profiler* profiler_slot() { return g_profiler.load(std::memory_order_acquire); }

void set_profiler(Profiler* p) { g_profiler.store(p, std::memory_order_release); }

void bind_worker_shard(int shard) { t_worker_shard = shard; }

int worker_shard() { return t_worker_shard; }

// --------------------------------------------------------------------------
// PhaseScope
// --------------------------------------------------------------------------

void PhaseScope::enter(Phase p) {
  phase_ = p;
  parent_ = t_phase_top;
  t_phase_top = this;
  ShardSlot& slot = prof_->slot(t_worker_shard);
  prev_tag_ = slot.cur_phase.load(std::memory_order_relaxed);
  slot.cur_phase.store(static_cast<std::uint8_t>(p),
                       std::memory_order_relaxed);
  t0_ = host_seconds();
}

void PhaseScope::leave() {
  // Attribute *self* time: elapsed minus the dispatch-parked intervals
  // (the fiber was blocked; other fibers ran) minus what nested scopes
  // already claimed. The slot is re-resolved because a scope that
  // straddled a suspend() may leave from a different dispatch than it
  // entered.
  const double total = host_seconds() - t0_ - paused_seconds_;
  ShardSlot& slot = prof_->slot(t_worker_shard);
  slot.phase_seconds[static_cast<std::size_t>(phase_)] +=
      std::max(0.0, total - child_seconds_);
  slot.cur_phase.store(prev_tag_, std::memory_order_relaxed);
  t_phase_top = parent_;
  if (parent_ != nullptr) parent_->child_seconds_ += total;
}

PhaseScope* PhaseScope::suspend() {
  PhaseScope* top = t_phase_top;
  if (top == nullptr) return nullptr;
  t_phase_top = nullptr;
  const double now = host_seconds();
  for (PhaseScope* s = top; s != nullptr; s = s->parent_) s->paused_at_ = now;
  return top;
}

void PhaseScope::resume(PhaseScope* top) {
  t_phase_top = top;
  if (top == nullptr) return;
  const double now = host_seconds();
  for (PhaseScope* s = top; s != nullptr; s = s->parent_)
    s->paused_seconds_ += now - s->paused_at_;
  // Re-publish the innermost phase for the sampler (the dispatch hook just
  // stamped kEngine on this shard's slot).
  top->prof_->slot(t_worker_shard)
      .cur_phase.store(static_cast<std::uint8_t>(top->phase_),
                       std::memory_order_relaxed);
}

// --------------------------------------------------------------------------
// Profiler
// --------------------------------------------------------------------------

Profiler::Profiler(ProfilerOptions opts) : opts_(opts) {}

Profiler::~Profiler() { stop_sampling(); }

void Profiler::bind_shards(int nshards) {
  int cur = nshards_.load(std::memory_order_acquire);
  while (nshards > cur &&
         !nshards_.compare_exchange_weak(cur, nshards,
                                         std::memory_order_acq_rel)) {
  }
}

void Profiler::lock_acquire(std::mutex& m, LockClass c) {
  LockStats& st = locks_[static_cast<std::size_t>(c)];
  st.acquisitions.fetch_add(1, std::memory_order_relaxed);
  if (m.try_lock()) return;
  const double t0 = host_seconds();
  m.lock();
  const double waited = host_seconds() - t0;
  st.contended.fetch_add(1, std::memory_order_relaxed);
  st.wait_ns.fetch_add(static_cast<std::uint64_t>(waited * 1e9),
                       std::memory_order_relaxed);
}

void Profiler::note_epoch(std::uint64_t epoch,
                          const std::vector<std::uint32_t>& depth) {
  // Planner-only: every worker is parked on the epoch barrier, so plain
  // writes to any slot are exclusive here. This hook's own cost lands in
  // the self-measured overhead counter, not in plan_seconds semantics.
  const double t0 = host_seconds();
  ++epochs_planned_total_;
  for (std::size_t s = 0; s < depth.size(); ++s) {
    ShardSlot& sl = slot(static_cast<int>(s));
    sl.ready_depth_sum += depth[s];
    sl.ready_depth_max = std::max<std::uint64_t>(sl.ready_depth_max, depth[s]);
  }
  cur_epoch_.store(epoch, std::memory_order_relaxed);
  if (epoch_series_.size() >= opts_.max_epoch_samples) {
    ++epoch_samples_dropped_;
  } else {
    EpochSample es;
    es.t = t0;
    es.epoch = epoch;
    es.depth = depth;
    epoch_series_.push_back(std::move(es));
  }
  add_self_seconds(host_seconds() - t0);
}

// --------------------------------------------------------------------------
// Sampler
// --------------------------------------------------------------------------

void Profiler::start_sampling() {
  const std::lock_guard<std::mutex> lock(sampler_m_);
  if (sampling_) return;
  sampling_ = true;
  sampler_stop_ = false;
  sampler_ = std::thread([this] { sampler_loop(); });
}

void Profiler::stop_sampling() {
  {
    const std::lock_guard<std::mutex> lock(sampler_m_);
    if (!sampling_) return;
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  sampler_.join();
  const std::lock_guard<std::mutex> lock(sampler_m_);
  sampling_ = false;
}

void Profiler::sampler_loop() {
  const auto interval = std::chrono::microseconds(opts_.sample_interval_us);
  std::unique_lock<std::mutex> lock(sampler_m_);
  while (!sampler_stop_) {
    sampler_cv_.wait_for(lock, interval);
    if (sampler_stop_) break;
    const double t0 = host_seconds();
    ++sampler_ticks_;
    const int n = std::min(nshards_.load(std::memory_order_acquire),
                           kMaxShards);
    const std::uint64_t epoch = cur_epoch_.load(std::memory_order_relaxed);
    if (sampler_ticks_ == 1 || epoch < epoch_sampled_min_)
      epoch_sampled_min_ = epoch;
    epoch_sampled_max_ = std::max(epoch_sampled_max_, epoch);
    for (int s = 0; s < std::max(n, 1); ++s) {
      const ShardSlot& sl = slots_[static_cast<std::size_t>(s)];
      const int fiber = sl.cur_fiber.load(std::memory_order_relaxed);
      const auto tag = static_cast<Phase>(
          sl.cur_phase.load(std::memory_order_relaxed));
      char stack[96];
      if (fiber >= 0) {
        std::snprintf(stack, sizeof(stack), "shard_%d;rank_%d;%s", s, fiber,
                      phase_name(tag));
      } else {
        std::snprintf(stack, sizeof(stack), "shard_%d;scheduler;%s", s,
                      phase_name(tag));
      }
      ++folded_[stack];
      samples_.fetch_add(1, std::memory_order_relaxed);
    }
    add_self_seconds(host_seconds() - t0);
  }
}

// --------------------------------------------------------------------------
// Export
// --------------------------------------------------------------------------

void Profiler::to_json(support::json::Writer& w) {
  const double t0 = host_seconds();
  const int n = std::max(1, std::min(nshards_.load(std::memory_order_acquire),
                                     kMaxShards));

  // Aggregate phase totals and per-shard derived "engine" time (dispatch
  // time not claimed by any instrumented scope).
  std::array<double, static_cast<std::size_t>(Phase::kCount)> agg{};
  std::vector<double> engine_derived(static_cast<std::size_t>(n), 0.0);
  for (int s = 0; s < n; ++s) {
    const ShardSlot& sl = slots_[static_cast<std::size_t>(s)];
    double scoped = 0.0;
    for (std::size_t p = 0; p < agg.size(); ++p) {
      agg[p] += sl.phase_seconds[p];
      scoped += sl.phase_seconds[p];
    }
    engine_derived[static_cast<std::size_t>(s)] =
        std::max(0.0, sl.dispatch_seconds - scoped);
    agg[static_cast<std::size_t>(Phase::kEngine)] +=
        engine_derived[static_cast<std::size_t>(s)];
  }

  w.begin_object();
  w.member("schema", "chameleon.prof.v1");
  w.member("compiled_in", kCompiledIn);
  w.member("sample_interval_us",
           static_cast<double>(opts_.sample_interval_us));

  w.key("shards");
  w.begin_array();
  for (int s = 0; s < n; ++s) {
    const ShardSlot& sl = slots_[static_cast<std::size_t>(s)];
    w.begin_object();
    w.member("shard", static_cast<double>(s));
    w.member("barrier_wait_seconds", sl.barrier_wait_seconds);
    w.member("plan_seconds", sl.plan_seconds);
    w.member("dispatch_seconds", sl.dispatch_seconds);
    w.member("epochs_planned", static_cast<double>(sl.epochs_planned));
    w.member("dispatches", static_cast<double>(sl.dispatches));
    w.member("wake_tokens", static_cast<double>(sl.wake_tokens));
    w.member("ready_depth_sum", static_cast<double>(sl.ready_depth_sum));
    w.member("ready_depth_max", static_cast<double>(sl.ready_depth_max));
    w.key("phases");
    w.begin_object();
    for (std::size_t p = 0; p < sl.phase_seconds.size(); ++p) {
      const auto ph = static_cast<Phase>(p);
      if (ph == Phase::kIdle) continue;
      const double v = ph == Phase::kEngine
                           ? engine_derived[static_cast<std::size_t>(s)]
                           : sl.phase_seconds[p];
      w.member(phase_name(ph), v);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.key("locks");
  w.begin_array();
  for (std::size_t c = 0; c < locks_.size(); ++c) {
    const LockStats& st = locks_[c];
    w.begin_object();
    w.member("name", lock_class_name(static_cast<LockClass>(c)));
    w.member("acquisitions", static_cast<double>(
                                 st.acquisitions.load(std::memory_order_acquire)));
    w.member("contended",
             static_cast<double>(st.contended.load(std::memory_order_acquire)));
    w.member("wait_seconds",
             static_cast<double>(st.wait_ns.load(std::memory_order_acquire)) *
                 1e-9);
    w.end_object();
  }
  w.end_array();

  w.key("phases");
  w.begin_object();
  for (std::size_t p = 0; p < agg.size(); ++p) {
    const auto ph = static_cast<Phase>(p);
    if (ph == Phase::kIdle) continue;
    w.member(phase_name(ph), agg[p]);
  }
  w.end_object();

  w.key("epochs");
  w.begin_object();
  w.member("planned", static_cast<double>(epochs_planned_total_));
  w.member("series_recorded", static_cast<double>(epoch_series_.size()));
  w.member("series_dropped", static_cast<double>(epoch_samples_dropped_));
  w.end_object();

  // Sampler output. stop_sampling() must have joined the ticker before
  // export; the mutex guards against misuse, not a live sampler.
  {
    const std::lock_guard<std::mutex> lock(sampler_m_);
    CHAM_CHECK_MSG(!sampling_, "prof: stop_sampling() before to_json()");
    w.key("samples");
    w.begin_object();
    w.member("interval_us", static_cast<double>(opts_.sample_interval_us));
    w.member("ticks", static_cast<double>(sampler_ticks_));
    w.member("total",
             static_cast<double>(samples_.load(std::memory_order_acquire)));
    w.member("epoch_min", static_cast<double>(epoch_sampled_min_));
    w.member("epoch_max", static_cast<double>(epoch_sampled_max_));
    w.key("folded");
    w.begin_array();
    for (const auto& [stack, count] : folded_) {
      w.begin_object();
      w.member("stack", stack);
      w.member("count", static_cast<double>(count));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  add_self_seconds(host_seconds() - t0);
  w.key("overhead");
  w.begin_object();
  w.member("profiling_seconds", self_seconds());
  w.end_object();

  w.end_object();
}

std::string Profiler::to_json_string(bool pretty) {
  support::json::Writer w(pretty);
  to_json(w);
  std::string out = w.str();
  out.push_back('\n');
  return out;
}

void Profiler::export_counter_tracks(Timeline& tl) {
  const double t0 = host_seconds();
  const double origin = tl.origin_seconds();
  const int n = std::max(1, std::min(nshards_.load(std::memory_order_acquire),
                                     kMaxShards));
  for (int s = 0; s < n; ++s) {
    char name[48];
    std::snprintf(name, sizeof(name), "prof: ready_depth shard %d", s);
    tl.set_track_name(Timeline::counter_tid(s), name);
  }
  tl.set_track_name(Timeline::counter_tid(n), "prof: ready_depth total");
  for (const EpochSample& es : epoch_series_) {
    const double ts_us = (es.t - origin) * 1e6;
    double total = 0.0;
    for (std::size_t s = 0; s < es.depth.size(); ++s) {
      total += es.depth[s];
      char name[48];
      std::snprintf(name, sizeof(name), "ready_depth shard %zu", s);
      tl.counter_at(ts_us, Timeline::counter_tid(static_cast<int>(s)), name,
                    static_cast<double>(es.depth[s]));
    }
    tl.counter_at(ts_us, Timeline::counter_tid(n), "ready_depth total", total);
  }
  add_self_seconds(host_seconds() - t0);
}

}  // namespace cham::obs::prof
