// ChamProf — host-time profiler for the sharded engine.
//
// Everything else in the observability layer (timelines, metrics, --perf)
// lives on the *virtual* clock, so nothing could say where real wall time
// goes: how long workers sit at the epoch barrier, which mutex is hot, or
// whether the protocol or the obs sinks dominate a slow run. ChamProf adds
// two host-clock feeds:
//
//   1. Scheduler telemetry — per-shard counters (barrier wait, plan time,
//      dispatch time, ready-queue depth, wake-token round trips) written by
//      each shard's worker thread (or by the planner while every worker is
//      parked, which is the same exclusivity), timed-acquire lock-contention
//      tallies for the engine and sink mutexes, and host-time phase
//      attribution (PhaseScope) splitting engine vs protocol (fold,
//      radix/inter merge, clustering, lead merge) vs obs-sink overhead.
//   2. A sampling profiler — a ticker thread that periodically snapshots
//      each worker's published state (running fiber id, phase tag, epoch)
//      into folded-stack counts consumable by flamegraph tooling.
//
// Cost model: like the timeline/metrics sinks, the whole subsystem hangs
// off one global pointer (set_profiler). Null — the default — makes every
// hook a load-acquire plus branch: no clock read, no atomic RMW. Building
// with -DCHAMELEON_PROF=OFF compiles profiler() down to a constant nullptr
// so the branch folds away entirely; tools/check.sh gates the compiled-in-
// but-disabled configuration against that baseline. The profiler also
// measures itself: sampler and export time land in the exported
// "overhead.profiling_seconds" counter.
//
// Export: `chameleon.prof.v1` JSON (docs/OBSERVABILITY.md documents the
// schema) and Perfetto counter tracks merged into an existing Timeline.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/json.hpp"

namespace cham::obs {
class Timeline;
}  // namespace cham::obs

namespace cham::obs::prof {

/// True when the hooks are compiled in (the default). -DCHAMELEON_PROF=OFF
/// defines CHAM_PROF_DISABLED and every hook folds to nothing.
#if defined(CHAM_PROF_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Host clock (CLOCK_MONOTONIC, ~20ns vDSO): real time, unlike the virtual
/// clocks everything else in the tree measures.
[[nodiscard]] double host_seconds();

// --------------------------------------------------------------------------
// Lock contention
// --------------------------------------------------------------------------

/// Every profiled mutex class in the engine and the obs sinks. Keep
/// lock_class_name() in sync.
enum class LockClass : std::uint8_t {
  kMailbox = 0,   ///< per-(comm, rank) posted/unexpected queues
  kInbox,         ///< per-rank completion inbox
  kCollMap,       ///< collective site table (one per comm insert/erase)
  kCollSite,      ///< per-(comm, slot) collective rendezvous state
  kShardQueue,    ///< per-shard ready/run lists + fiber states
  kTimelineSink,  ///< Timeline internal mutex
  kMetricsSink,   ///< MetricsRegistry internal mutex
  kCount
};
[[nodiscard]] const char* lock_class_name(LockClass c);

/// Process-wide tally for one lock class. `contended` counts acquisitions
/// that missed the try_lock fast path; only those pay the two clock reads
/// that feed `wait_ns`.
struct LockStats {
  std::atomic<std::uint64_t> acquisitions{0};
  std::atomic<std::uint64_t> contended{0};
  std::atomic<std::uint64_t> wait_ns{0};
};

// --------------------------------------------------------------------------
// Phase attribution
// --------------------------------------------------------------------------

/// Host-time phase tags. kEngine is derived at export time (dispatch time
/// minus every measured scope) rather than scoped directly; kIdle is what
/// the sampler sees between dispatches. Keep phase_name() in sync.
enum class Phase : std::uint8_t {
  kIdle = 0,
  kEngine,       ///< fiber running outside any instrumented scope
  kFold,         ///< append_online interval fold
  kRadixMerge,   ///< binomial radix merge rounds
  kInterMerge,   ///< inter_merge DP inside a merge round
  kClustering,   ///< hierarchical clustering exchange
  kLeadMerge,    ///< lead merge into the online trace
  kObsSink,      ///< Timeline/MetricsRegistry mutation
  kCount
};
[[nodiscard]] const char* phase_name(Phase p);

// --------------------------------------------------------------------------
// Per-shard telemetry slot
// --------------------------------------------------------------------------

/// One shard's counters. Plain fields are owner-written: only the shard's
/// worker thread (or the epoch planner, which runs with every worker parked
/// on the barrier — the coord_m_ lock chain is the happens-before edge)
/// touches them, and readers wait for run() to join. The atomics are the
/// sampler-visible snapshot, written relaxed by the owner.
struct alignas(64) ShardSlot {
  double barrier_wait_seconds = 0.0;
  double plan_seconds = 0.0;
  double dispatch_seconds = 0.0;
  std::uint64_t epochs_planned = 0;  ///< epochs this shard's worker planned
  std::uint64_t dispatches = 0;
  std::uint64_t wake_tokens = 0;      ///< wake-pending tokens consumed
  std::uint64_t ready_depth_sum = 0;  ///< summed over planned epochs
  std::uint64_t ready_depth_max = 0;
  std::array<double, static_cast<std::size_t>(Phase::kCount)> phase_seconds{};

  std::atomic<int> cur_fiber{-1};
  std::atomic<std::uint8_t> cur_phase{static_cast<std::uint8_t>(Phase::kIdle)};
};

/// Hard cap on tracked shards (slots are a fixed array so the hot-path
/// lookup is lock-free); shard indices beyond it alias the last slot.
inline constexpr int kMaxShards = 128;

struct ProfilerOptions {
  std::uint64_t sample_interval_us = 500;  ///< sampler tick period
  std::size_t max_epoch_samples = 65536;   ///< counter-track series bound
};

// --------------------------------------------------------------------------
// Profiler
// --------------------------------------------------------------------------

class Profiler {
 public:
  explicit Profiler(ProfilerOptions opts = {});
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // --- scheduler telemetry -------------------------------------------------

  /// Declare the shard count of the scheduler about to run (grow-only; a
  /// later engine run with fewer shards accumulates into the same slots).
  void bind_shards(int nshards);
  [[nodiscard]] int shards_bound() const {
    return nshards_.load(std::memory_order_acquire);
  }
  [[nodiscard]] ShardSlot& slot(int shard) {
    const int i = shard >= 0 && shard < kMaxShards ? shard : kMaxShards - 1;
    return slots_[static_cast<std::size_t>(i)];
  }

  /// Timed acquire: try_lock first (uncontended = one relaxed increment, no
  /// clock read); only a miss pays two clock reads around the blocking lock.
  void lock_acquire(std::mutex& m, LockClass c);
  [[nodiscard]] LockStats& lock_stats(LockClass c) {
    return locks_[static_cast<std::size_t>(c)];
  }

  /// Planner hook (all workers parked): fold this epoch's per-shard ready
  /// depths into the slots and append one bounded counter-track sample.
  void note_epoch(std::uint64_t epoch, const std::vector<std::uint32_t>& depth);

  // --- sampling profiler ---------------------------------------------------

  void start_sampling();
  void stop_sampling();  ///< joins the ticker; folded stacks become readable
  [[nodiscard]] std::uint64_t samples_taken() const {
    return samples_.load(std::memory_order_acquire);
  }

  // --- self-measurement ----------------------------------------------------

  void add_self_seconds(double s) {
    self_ns_.fetch_add(static_cast<std::uint64_t>(s * 1e9),
                       std::memory_order_relaxed);
  }
  [[nodiscard]] double self_seconds() const {
    return static_cast<double>(self_ns_.load(std::memory_order_acquire)) * 1e-9;
  }

  // --- export --------------------------------------------------------------

  /// The chameleon.prof.v1 document. Call after the run (and after
  /// stop_sampling()); export time is added to the overhead counter.
  void to_json(support::json::Writer& w);
  [[nodiscard]] std::string to_json_string(bool pretty = true);

  /// Merge per-shard ready-depth counter tracks ("C" events on dedicated
  /// negative tids) into an existing timeline, plus a total-ready track.
  void export_counter_tracks(Timeline& tl);

 private:
  friend class PhaseScope;

  struct EpochSample {
    double t = 0.0;  ///< host_seconds() at plan time
    std::uint64_t epoch = 0;
    std::vector<std::uint32_t> depth;  ///< per-shard ready depth
  };

  void sampler_loop();

  ProfilerOptions opts_;
  std::array<ShardSlot, static_cast<std::size_t>(kMaxShards)> slots_;
  std::array<LockStats, static_cast<std::size_t>(LockClass::kCount)> locks_;
  std::atomic<int> nshards_{0};
  std::atomic<std::uint64_t> cur_epoch_{0};

  /// Epoch counter series; planner-written, export-read (post-run).
  std::vector<EpochSample> epoch_series_;
  std::uint64_t epoch_samples_dropped_ = 0;
  std::uint64_t epochs_planned_total_ = 0;

  // Sampler state. folded_ and the min/max epochs are ticker-thread-owned
  // while sampling; stop_sampling()'s join publishes them to the exporter.
  std::thread sampler_;
  std::mutex sampler_m_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  bool sampling_ = false;
  std::map<std::string, std::uint64_t> folded_;
  std::uint64_t sampler_ticks_ = 0;
  std::uint64_t epoch_sampled_min_ = 0;
  std::uint64_t epoch_sampled_max_ = 0;
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> self_ns_{0};
};

/// Process-wide profiler. Null (the default) disables every hook; with
/// CHAMELEON_PROF=OFF the accessor is a compile-time nullptr and the hooks
/// vanish from the binary.
[[nodiscard]] Profiler* profiler_slot();
void set_profiler(Profiler* p);
[[nodiscard]] inline Profiler* profiler() {
#if defined(CHAM_PROF_DISABLED)
  return nullptr;
#else
  return profiler_slot();
#endif
}

// --------------------------------------------------------------------------
// Hook helpers
// --------------------------------------------------------------------------

/// Bind the calling thread to a shard slot (worker_loop does this; the
/// driving thread defaults to shard 0, which also covers the
/// single-threaded FiberScheduler).
void bind_worker_shard(int shard);
[[nodiscard]] int worker_shard();

/// RAII host-time phase attribution. Nested scopes subtract child time, so
/// each phase accumulates *self* seconds; the scope also publishes the
/// phase tag for the sampler and restores the previous one on exit. With
/// no profiler installed the constructor is one load and branch.
///
/// Scopes live on fiber stacks and may straddle blocking MPI calls, so the
/// innermost-scope chain is *fiber-local*, not thread-local: the fiber
/// schedulers detach the outgoing fiber's chain at every dispatch boundary
/// (suspend) and reattach it when the fiber next runs (resume). Without
/// that handoff a fiber dispatched while another is blocked mid-scope
/// would chain onto the blocked fiber's stack-resident scope.
class PhaseScope {
 public:
  explicit PhaseScope(Phase p) : prof_(profiler()) {
    if (prof_ != nullptr) enter(p);
  }
  ~PhaseScope() {
    if (prof_ != nullptr) leave();
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  /// Dispatch-boundary hooks for the fiber schedulers. suspend() detaches
  /// the calling thread's open scope chain, stamping the park time so none
  /// of the blocked-out interval is attributed; the scheduler stores the
  /// returned chain with the fiber. resume() reattaches a fiber's chain on
  /// the thread about to run it and re-publishes the innermost phase tag
  /// for the sampler; resume(nullptr) just clears the thread's chain.
  [[nodiscard]] static PhaseScope* suspend();
  static void resume(PhaseScope* top);

 private:
  void enter(Phase p);
  void leave();

  Profiler* prof_;
  PhaseScope* parent_ = nullptr;
  Phase phase_ = Phase::kIdle;
  std::uint8_t prev_tag_ = 0;
  double t0_ = 0.0;
  double child_seconds_ = 0.0;
  double paused_seconds_ = 0.0;  ///< dispatch-parked time, excluded on leave
  double paused_at_ = 0.0;       ///< host_seconds() at the last suspend()
};

/// Drop-in lock_guard replacement feeding the contention tallies. With no
/// profiler installed it degenerates to lock()/unlock().
class TimedLockGuard {
 public:
  TimedLockGuard(std::mutex& m, LockClass c) : m_(m) {
    Profiler* prof = profiler();
    if (prof == nullptr)
      m_.lock();
    else
      prof->lock_acquire(m_, c);
  }
  ~TimedLockGuard() { m_.unlock(); }
  TimedLockGuard(const TimedLockGuard&) = delete;
  TimedLockGuard& operator=(const TimedLockGuard&) = delete;

 private:
  std::mutex& m_;
};

}  // namespace cham::obs::prof
