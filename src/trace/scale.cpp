#include "trace/scale.hpp"

namespace cham::trace {

namespace {
// Process-wide, like perf.cpp's fast-path flag: flipped by tests/benches
// before the engine runs, read-only while fibers execute.
ScaleOptions g_scale;
}  // namespace

ScaleOptions scale_options() { return g_scale; }

void set_scale_options(const ScaleOptions& options) { g_scale = options; }

}  // namespace cham::trace
