// Trace event records and PRSD trace nodes.
//
// An EventRecord is one (possibly folded) MPI event: operation, calling
// context (stack signature), relative endpoints, transfer parameters, the
// ranklist of participants, and the delta-time histogram of the compute
// time preceding the event. A TraceNode is either a leaf event or a loop
// (RSD/PRSD): <iters, body...> where body nodes may themselves be loops —
// the recursive structure the paper's background section describes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "support/hash.hpp"
#include "support/histogram.hpp"
#include "trace/endpoint.hpp"
#include "trace/ranklist.hpp"

namespace cham::trace {

/// Multiplier for the order-sensitive polynomial combination of node shape
/// hashes (a loop body's `body_seq` and fold_tail's rolling tail-window
/// hashes use the same scheme so they compare directly). Odd, so the map
/// x -> x * kShapeSeqBase is a bijection mod 2^64.
inline constexpr std::uint64_t kShapeSeqBase = 0x100000001b3ull;

struct EventRecord {
  sim::Op op = sim::Op::kSend;
  std::uint64_t stack_sig = 0;
  Endpoint src;
  Endpoint dest;
  std::uint64_t bytes = 0;
  std::int32_t tag = 0;
  int comm = sim::kCommWorld;
  bool is_marker = false;

  RankList ranks;
  support::Histogram delta;  ///< compute time preceding this event

  /// Identity for folding/merging: everything except ranklist & histogram.
  [[nodiscard]] bool same_shape(const EventRecord& other) const {
    return op == other.op && stack_sig == other.stack_sig &&
           src == other.src && dest == other.dest && bytes == other.bytes &&
           tag == other.tag && comm == other.comm &&
           is_marker == other.is_marker;
  }

  /// 64-bit hash over exactly the same_shape() fields. Never 0 (0 is the
  /// "not computed" sentinel on TraceNode), so equal shapes always yield
  /// equal, nonzero hashes.
  [[nodiscard]] std::uint64_t shape_hash() const;

  /// Hash over the merge-invariant fields only (no endpoints): two events
  /// that inter_merge can align always share it, so a mismatch proves
  /// non-mergeability without recursing into endpoint generalization.
  [[nodiscard]] std::uint64_t merge_class_hash() const;

  [[nodiscard]] std::string to_string() const;
};

struct TraceNode {
  /// Leaf when iters == 0; loop of `iters` iterations otherwise.
  std::uint64_t iters = 0;
  EventRecord event;            ///< valid for leaves
  std::vector<TraceNode> body;  ///< valid for loops

  /// Cached structural hashes (docs/PERF.md). `shape_hash` covers the whole
  /// subtree's same_shape() identity; `merge_hash` its merge-class identity
  /// (endpoints excluded); `body_seq` is the kShapeSeqBase-polynomial
  /// combination of the body's shape hashes, compared against fold_tail's
  /// rolling tail-window hashes in O(1). 0 means "not computed": the fast
  /// paths then fall back to deep comparison, never to a wrong answer. The
  /// leaf()/loop() factories and every library mutator (absorb_*,
  /// merge_into, fold rules, decode) keep these consistent; code that
  /// mutates shape fields directly must call rehash_shallow()/rehash_deep().
  std::uint64_t shape_hash = 0;
  std::uint64_t merge_hash = 0;
  std::uint64_t body_seq = 0;

  /// Size caches for loop nodes (leaves are computed directly). leaf_count
  /// only depends on the body structure, which is fixed at construction;
  /// the footprint depends on ranklists and is invalidated by the ranklist
  /// mutators (absorb_ranks, merge_into, substitute_ranks).
  mutable std::size_t leaf_count_cache = 0;   ///< 0 = unset
  mutable std::size_t footprint_cache = 0;    ///< 0 = unset

  [[nodiscard]] bool is_loop() const { return iters > 0; }

  static TraceNode leaf(EventRecord ev) {
    TraceNode n;
    n.event = std::move(ev);
    n.rehash_shallow();
    return n;
  }
  static TraceNode loop(std::uint64_t iters, std::vector<TraceNode> body) {
    TraceNode n;
    n.iters = iters;
    n.body = std::move(body);
    n.rehash_shallow();
    return n;
  }

  /// Recompute this node's hashes from the event / the children's cached
  /// hashes (children must already be consistent).
  void rehash_shallow();

  /// Recompute the whole subtree's hashes bottom-up.
  void rehash_deep();

  [[nodiscard]] bool hashed() const { return shape_hash != 0; }

  /// Structural equality ignoring ranklists and histograms ("same shape").
  [[nodiscard]] bool same_shape(const TraceNode& other) const;

  /// Fold another structurally-equal node's statistics (histograms) into
  /// this one; used when loop iterations collapse.
  void absorb_stats(const TraceNode& other);

  /// Union another structurally-equal node's ranklists and histograms into
  /// this one; used by inter-node merging.
  void absorb_ranks(const TraceNode& other);

  /// Number of leaf events in compressed form (the paper's n).
  [[nodiscard]] std::size_t leaf_count() const;

  /// Total raw MPI events this node represents when expanded.
  [[nodiscard]] std::uint64_t expanded_count() const;

  /// Approximate serialized footprint (drives space accounting).
  [[nodiscard]] std::size_t footprint_bytes() const;

  [[nodiscard]] std::string to_string(int indent = 0) const;
};

/// Shape equality over node sequences.
bool same_shape(const std::vector<TraceNode>& a,
                const std::vector<TraceNode>& b);

/// Replace every leaf's ranklist with `ranks` (Algorithm 3: a lead's trace
/// stands in for its whole cluster). Invalidate loop footprint caches along
/// the way; shape hashes are unaffected (ranklists are not shape).
void substitute_ranks(std::vector<TraceNode>& nodes, const RankList& ranks);

/// Sum of footprints (+ sequence overhead).
std::size_t footprint_bytes(const std::vector<TraceNode>& nodes);

/// Render a node sequence as an indented text trace.
std::string format_trace(const std::vector<TraceNode>& nodes);

}  // namespace cham::trace
