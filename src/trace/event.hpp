// Trace event records and PRSD trace nodes.
//
// An EventRecord is one (possibly folded) MPI event: operation, calling
// context (stack signature), relative endpoints, transfer parameters, the
// ranklist of participants, and the delta-time histogram of the compute
// time preceding the event. A TraceNode is either a leaf event or a loop
// (RSD/PRSD): <iters, body...> where body nodes may themselves be loops —
// the recursive structure the paper's background section describes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "support/histogram.hpp"
#include "trace/endpoint.hpp"
#include "trace/ranklist.hpp"

namespace cham::trace {

struct EventRecord {
  sim::Op op = sim::Op::kSend;
  std::uint64_t stack_sig = 0;
  Endpoint src;
  Endpoint dest;
  std::uint64_t bytes = 0;
  std::int32_t tag = 0;
  int comm = sim::kCommWorld;
  bool is_marker = false;

  RankList ranks;
  support::Histogram delta;  ///< compute time preceding this event

  /// Identity for folding/merging: everything except ranklist & histogram.
  [[nodiscard]] bool same_shape(const EventRecord& other) const {
    return op == other.op && stack_sig == other.stack_sig &&
           src == other.src && dest == other.dest && bytes == other.bytes &&
           tag == other.tag && comm == other.comm &&
           is_marker == other.is_marker;
  }

  [[nodiscard]] std::string to_string() const;
};

struct TraceNode {
  /// Leaf when iters == 0; loop of `iters` iterations otherwise.
  std::uint64_t iters = 0;
  EventRecord event;            ///< valid for leaves
  std::vector<TraceNode> body;  ///< valid for loops

  [[nodiscard]] bool is_loop() const { return iters > 0; }

  static TraceNode leaf(EventRecord ev) {
    TraceNode n;
    n.event = std::move(ev);
    return n;
  }
  static TraceNode loop(std::uint64_t iters, std::vector<TraceNode> body) {
    TraceNode n;
    n.iters = iters;
    n.body = std::move(body);
    return n;
  }

  /// Structural equality ignoring ranklists and histograms ("same shape").
  [[nodiscard]] bool same_shape(const TraceNode& other) const;

  /// Fold another structurally-equal node's statistics (histograms) into
  /// this one; used when loop iterations collapse.
  void absorb_stats(const TraceNode& other);

  /// Union another structurally-equal node's ranklists and histograms into
  /// this one; used by inter-node merging.
  void absorb_ranks(const TraceNode& other);

  /// Number of leaf events in compressed form (the paper's n).
  [[nodiscard]] std::size_t leaf_count() const;

  /// Total raw MPI events this node represents when expanded.
  [[nodiscard]] std::uint64_t expanded_count() const;

  /// Approximate serialized footprint (drives space accounting).
  [[nodiscard]] std::size_t footprint_bytes() const;

  [[nodiscard]] std::string to_string(int indent = 0) const;
};

/// Shape equality over node sequences.
bool same_shape(const std::vector<TraceNode>& a,
                const std::vector<TraceNode>& b);

/// Sum of footprints (+ sequence overhead).
std::size_t footprint_bytes(const std::vector<TraceNode>& nodes);

/// Render a node sequence as an indented text trace.
std::string format_trace(const std::vector<TraceNode>& nodes);

}  // namespace cham::trace
