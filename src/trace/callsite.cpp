#include "trace/callsite.hpp"

#include <map>
#include <mutex>
#include <sstream>

#include "analysis/race/annotate.hpp"

namespace cham::trace {

namespace {
// One global intern table shared by every rank — and, in the epoch-parallel
// pilot, by real threads, so it carries a real mutex. For ChamRace it is
// modelled as an atomic container (RACE_ATOMIC), NOT as a ScopedSync
// region: the table is interned-only (insert-if-absent, value immutable
// once present), so its internal lock is an implementation detail that
// must not contribute happens-before edges. Every CallScope interns, so
// modelling the lock would serialize the whole program under the analyzer
// and mask unrelated conflicts (the classic lock-based-HB false negative;
// see docs/RACE.md).
std::mutex& sites_mutex() {
  static std::mutex m;
  return m;
}
std::map<std::uint64_t, std::string>& site_names() {
  static std::map<std::uint64_t, std::string> names;
  return names;
}
}  // namespace

std::uint64_t intern_site(std::string_view name) {
  const std::uint64_t id = site_id(name);
  RACE_ATOMIC("trace.sites", 0, 0);
  const std::lock_guard<std::mutex> lock(sites_mutex());
  site_names().emplace(id, std::string(name));
  return id;
}

std::vector<std::pair<std::uint64_t, std::string>> export_sites() {
  RACE_ATOMIC("trace.sites", 0, 0);
  const std::lock_guard<std::mutex> lock(sites_mutex());
  const auto& names = site_names();
  return {names.begin(), names.end()};  // std::map: already sorted by id
}

void import_sites(
    const std::vector<std::pair<std::uint64_t, std::string>>& sites) {
  RACE_ATOMIC("trace.sites", 0, 0);
  const std::lock_guard<std::mutex> lock(sites_mutex());
  for (const auto& [id, name] : sites) site_names().emplace(id, name);
}

std::string site_name(std::uint64_t site) {
  RACE_ATOMIC("trace.sites", 0, 0);
  const std::lock_guard<std::mutex> lock(sites_mutex());
  const auto& names = site_names();
  if (const auto it = names.find(site); it != names.end()) return it->second;
  std::ostringstream os;
  os << "site:0x" << std::hex << site;
  return os.str();
}

}  // namespace cham::trace
