#include "trace/callsite.hpp"

#include <map>
#include <sstream>

namespace cham::trace {

namespace {
// Single-process engine: one global table, no locking needed.
std::map<std::uint64_t, std::string>& site_names() {
  static std::map<std::uint64_t, std::string> names;
  return names;
}
}  // namespace

std::uint64_t intern_site(std::string_view name) {
  const std::uint64_t id = site_id(name);
  site_names().emplace(id, std::string(name));
  return id;
}

std::string site_name(std::uint64_t site) {
  const auto& names = site_names();
  if (const auto it = names.find(site); it != names.end()) return it->second;
  std::ostringstream os;
  os << "site:0x" << std::hex << site;
  return os.str();
}

}  // namespace cham::trace
