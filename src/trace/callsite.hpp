// Shadow call stacks and stack signatures.
//
// Real ScalaTrace walks the native stack and hashes the return addresses of
// each frame into a 64-bit "stack signature" that uniquely identifies the
// calling sequence of an MPI event. Our workloads are communication
// skeletons, so instead of unwinding real frames they brand their call sites
// explicitly: each logical function/loop scope pushes a synthetic 64-bit
// return address (derived from a stable site name) onto a per-rank shadow
// stack. The signature is an order-sensitive hash over the active frames —
// the same calling sequence always yields the same signature, different
// sequences collide with 64-bit-hash probability.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/types.hpp"
#include "support/hash.hpp"

namespace cham::trace {

/// Stable synthetic "return address" for a named call site.
constexpr std::uint64_t site_id(std::string_view name) {
  return support::fnv1a64(name);
}

/// Record the id→name mapping of a call site so analysis tools can render
/// backtraces symbolically (the hash is one-way). Returns site_id(name).
std::uint64_t intern_site(std::string_view name);

/// Name of an interned site, or "site:0x<hex>" for ids never interned
/// (e.g. scopes branded with a bare site_id()).
std::string site_name(std::uint64_t site);

/// Snapshot of the whole intern table, sorted by id (ChamDurable persists
/// it so resumed runs and imported traces keep symbolic backtraces).
std::vector<std::pair<std::uint64_t, std::string>> export_sites();

/// Re-intern a persisted table (insert-if-absent, existing entries win).
void import_sites(
    const std::vector<std::pair<std::uint64_t, std::string>>& sites);

class CallStack {
 public:
  void push(std::uint64_t site) {
    const std::uint64_t prev = prefix_.empty() ? kEmptySignature : prefix_.back();
    prefix_.push_back(support::hash_combine(prev, site));
    sites_.push_back(site);
  }

  void pop() {
    prefix_.pop_back();
    sites_.pop_back();
  }

  /// Signature of the current calling sequence. O(1): prefix hashes are
  /// maintained incrementally.
  [[nodiscard]] std::uint64_t signature() const {
    return prefix_.empty() ? kEmptySignature : prefix_.back();
  }

  [[nodiscard]] std::size_t depth() const { return prefix_.size(); }

  /// Raw site ids of the active frames, outermost first. Render with
  /// site_name() for symbolic backtraces.
  [[nodiscard]] const std::vector<std::uint64_t>& frames() const {
    return sites_;
  }

  static constexpr std::uint64_t kEmptySignature = 0x9ae16a3b2f90404full;

 private:
  std::vector<std::uint64_t> prefix_;
  std::vector<std::uint64_t> sites_;
};

/// One shadow stack per rank; shared between the workload (which pushes
/// scopes) and the tracing tool (which reads signatures at hook time).
class CallSiteRegistry {
 public:
  explicit CallSiteRegistry(int nprocs)
      : stacks_(static_cast<std::size_t>(nprocs)) {}

  [[nodiscard]] CallStack& stack(sim::Rank rank) {
    return stacks_.at(static_cast<std::size_t>(rank));
  }
  [[nodiscard]] const CallStack& stack(sim::Rank rank) const {
    return stacks_.at(static_cast<std::size_t>(rank));
  }
  [[nodiscard]] int nprocs() const { return static_cast<int>(stacks_.size()); }

 private:
  std::vector<CallStack> stacks_;
};

/// RAII frame for workload code:
///   void sweep(Ctx& c) { CallScope scope(c.stack, site_id("lu.sweep")); ... }
class CallScope {
 public:
  CallScope(CallStack& stack, std::uint64_t site) : stack_(stack) {
    stack_.push(site);
  }
  /// Named variant: also interns the id→name mapping for backtraces.
  CallScope(CallStack& stack, std::string_view name)
      : CallScope(stack, intern_site(name)) {}
  ~CallScope() { stack_.pop(); }
  CallScope(const CallScope&) = delete;
  CallScope& operator=(const CallScope&) = delete;

 private:
  CallStack& stack_;
};

}  // namespace cham::trace
