#include "trace/perf.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace cham::trace {

namespace {
bool g_fast_path = true;
}  // namespace

bool fast_path_enabled() { return g_fast_path; }
void set_fast_path_enabled(bool enabled) { g_fast_path = enabled; }

void PerfCounters::add(const PerfCounters& other) {
  fold_windows_tested += other.fold_windows_tested;
  fold_hash_rejects += other.fold_hash_rejects;
  fold_hash_hits += other.fold_hash_hits;
  fold_false_positives += other.fold_false_positives;
  fold_deep_compares += other.fold_deep_compares;
  folds_performed += other.folds_performed;
  merge_prechecks += other.merge_prechecks;
  merge_hash_rejects += other.merge_hash_rejects;
  merge_deep_compares += other.merge_deep_compares;
  merge_deep_rejects += other.merge_deep_rejects;
  merge_memo_hits += other.merge_memo_hits;
  merge_zip_hits += other.merge_zip_hits;
  bytes_encoded += other.bytes_encoded;
  bytes_decoded += other.bytes_decoded;
  intra_seconds += other.intra_seconds;
  inter_seconds += other.inter_seconds;
  clustering_seconds += other.clustering_seconds;
}

void export_to_metrics(const PerfCounters& counters,
                       obs::MetricsRegistry& registry, std::string_view tool) {
  const obs::Labels t{{"tool", std::string(tool)}};
  registry.set_counter("cham.fold.windows_tested", t, counters.fold_windows_tested);
  registry.set_counter("cham.fold.hash_rejects", t, counters.fold_hash_rejects);
  registry.set_counter("cham.fold.hash_hits", t, counters.fold_hash_hits);
  registry.set_counter("cham.fold.false_positives", t, counters.fold_false_positives);
  registry.set_counter("cham.fold.deep_compares", t, counters.fold_deep_compares);
  registry.set_counter("cham.fold.performed", t, counters.folds_performed);
  registry.set_counter("cham.merge.prechecks", t, counters.merge_prechecks);
  registry.set_counter("cham.merge.hash_rejects", t, counters.merge_hash_rejects);
  registry.set_counter("cham.merge.deep_compares", t, counters.merge_deep_compares);
  registry.set_counter("cham.merge.deep_rejects", t, counters.merge_deep_rejects);
  registry.set_counter("cham.merge.memo_hits", t, counters.merge_memo_hits);
  registry.set_counter("cham.merge.zip_hits", t, counters.merge_zip_hits);
  const auto wire = [&](const char* dir, std::uint64_t v) {
    obs::Labels labels = t;
    labels.emplace_back("dir", dir);
    registry.set_counter("cham.wire.bytes", labels, v);
  };
  wire("encoded", counters.bytes_encoded);
  wire("decoded", counters.bytes_decoded);
  const auto phase = [&](const char* name, double seconds) {
    obs::Labels labels = t;
    labels.emplace_back("phase", name);
    registry.set_gauge("cham.phase.seconds", labels, seconds);
  };
  phase("intra", counters.intra_seconds);
  phase("inter", counters.inter_seconds);
  phase("clustering", counters.clustering_seconds);
}

std::string PerfCounters::to_string() const {
  std::ostringstream os;
  os << "fold: windows=" << fold_windows_tested
     << " hash_rejects=" << fold_hash_rejects
     << " hash_hits=" << fold_hash_hits
     << " false_positives=" << fold_false_positives
     << " deep_compares=" << fold_deep_compares
     << " folds=" << folds_performed << '\n';
  os << "merge: prechecks=" << merge_prechecks
     << " hash_rejects=" << merge_hash_rejects
     << " deep_compares=" << merge_deep_compares
     << " deep_rejects=" << merge_deep_rejects
     << " memo_hits=" << merge_memo_hits
     << " zip_hits=" << merge_zip_hits << '\n';
  os << "wire: bytes_encoded=" << bytes_encoded
     << " bytes_decoded=" << bytes_decoded << '\n';
  os.precision(6);
  os << std::fixed << "cpu: intra=" << intra_seconds
     << "s inter=" << inter_seconds << "s clustering=" << clustering_seconds
     << "s";
  return os.str();
}

}  // namespace cham::trace
