#include "trace/rsd.hpp"

#include "support/logging.hpp"
#include "trace/perf.hpp"

namespace cham::trace {

namespace {

/// Powers of kShapeSeqBase, grown on demand and cached across fold_tail
/// calls (the window limit rarely changes within a process).
const std::uint64_t* seq_powers(std::size_t limit) {
  thread_local std::vector<std::uint64_t> powers{1};
  while (powers.size() <= limit) powers.push_back(powers.back() * kShapeSeqBase);
  return powers.data();
}

/// Applies the two tail fold rules with the shape-hash fast path: a rolling
/// polynomial hash over the node sequence (same kShapeSeqBase scheme as
/// TraceNode::body_seq) makes every window test an O(1) compare; only
/// windows whose hashes match are deep-verified, so a hash collision can
/// cost time but never a wrong fold. With a persistent FoldState the prefix
/// array carries over between calls and is maintained incrementally (one
/// entry per append, one truncate-and-push per fold); without one, the tail
/// region the rules can touch is rebuilt per pass. With the fast path
/// disabled the folder runs the original deep comparisons — both modes take
/// identical fold decisions and produce byte-identical traces.
class TailFolder {
 public:
  TailFolder(std::vector<TraceNode>& nodes, std::size_t limit, bool fast,
             PerfCounters* pc, FoldState* state)
      : nodes_(nodes), limit_(limit), fast_(fast), pc_(pc),
        state_(fast ? state : nullptr),
        powers_(fast ? seq_powers(limit) : nullptr) {
    if (state != nullptr && !fast) state->clear();  // do not survive a toggle
  }

  int run() {
    if (state_ != nullptr) sync_state();
    int folds = 0;
    bool folded = true;
    while (folded) {
      folded = false;
      if (fast_ && state_ == nullptr) rebuild_tail_hashes();
      for (std::size_t len = 1; len <= limit_ && len <= nodes_.size(); ++len) {
        if (try_increment_loop(len) || try_fold_pair(len)) {
          folded = true;
          ++folds;
          if (pc_ != nullptr) ++pc_->folds_performed;
          break;  // restart with the shortest window after any change
        }
      }
    }
    return folds;
  }

 private:
  /// Bring the persistent prefix in line with the node sequence: extend by
  /// one entry after a plain append (the overwhelmingly common case), leave
  /// alone when already aligned, rebuild from scratch otherwise (first call
  /// or the sequence was mutated externally).
  void sync_state() {
    std::vector<std::uint64_t>& prefix = state_->prefix;
    if (prefix.size() == nodes_.size() + 1) return;
    if (!prefix.empty() && prefix.size() == nodes_.size()) {
      extend_prefix(nodes_.size() - 1);
      return;
    }
    prefix.assign(1, 0);
    for (std::size_t k = 0; k < nodes_.size(); ++k) extend_prefix(k);
  }

  /// Append the prefix entry covering nodes_[k] (entries 0..k are in place).
  void extend_prefix(std::size_t k) {
    TraceNode& node = nodes_[k];
    if (!node.hashed()) node.rehash_deep();
    state_->prefix.push_back(state_->prefix[k] * kShapeSeqBase +
                             node.shape_hash);
  }

  /// Non-persistent mode: recompute the rolling prefix hashes over the tail
  /// region the fold rules can touch (the last 2*limit windows). prefix_[k]
  /// combines the shape hashes of nodes_[base_ .. base_+k); window hashes
  /// derived from it are independent of base_, so they compare against each
  /// other and against loop body_seq values directly.
  void rebuild_tail_hashes() {
    const std::size_t region = std::min(nodes_.size(), 2 * limit_ + 1);
    base_ = nodes_.size() - region;
    prefix_.assign(region + 1, 0);
    for (std::size_t k = 0; k < region; ++k) {
      TraceNode& node = nodes_[base_ + k];
      if (!node.hashed()) node.rehash_deep();
      prefix_[k + 1] = prefix_[k] * kShapeSeqBase + node.shape_hash;
    }
  }

  /// Polynomial hash of the window nodes_[at, at+len); at must be >= base_.
  [[nodiscard]] std::uint64_t window_hash(std::size_t at,
                                          std::size_t len) const {
    const std::vector<std::uint64_t>& prefix =
        state_ != nullptr ? state_->prefix : prefix_;
    const std::size_t i = at - (state_ != nullptr ? 0 : base_);
    return prefix[i + len] - prefix[i] * powers_[len];
  }

  /// After a fold rewrote the tail so that nodes_[at] is now the (hashed)
  /// last node: discard the prefix entries the fold invalidated and append
  /// the entry for the new tail node.
  void refold_prefix(std::size_t at) {
    if (state_ == nullptr) return;  // next rebuild_tail_hashes() covers it
    state_->prefix.resize(at + 1);
    extend_prefix(at);
  }

  [[nodiscard]] bool deep_equal(std::size_t lhs_at, std::size_t rhs_at,
                                std::size_t len,
                                const std::vector<TraceNode>& lhs) const {
    for (std::size_t i = 0; i < len; ++i)
      if (!lhs[lhs_at + i].same_shape(nodes_[rhs_at + i])) return false;
    return true;
  }

  /// Window precheck-then-verify shared by both rules: lhs[lhs_at, +len)
  /// vs nodes_[rhs_at, +len), where `lhs_hash` is the lhs window's rolling
  /// hash (a loop's body_seq or another tail window).
  bool windows_match(std::uint64_t lhs_hash, const std::vector<TraceNode>& lhs,
                     std::size_t lhs_at, std::size_t rhs_at, std::size_t len) {
    if (pc_ != nullptr) ++pc_->fold_windows_tested;
    if (fast_) {
      if (lhs_hash != window_hash(rhs_at, len)) {
        if (pc_ != nullptr) ++pc_->fold_hash_rejects;
        return false;
      }
      if (pc_ != nullptr) {
        ++pc_->fold_hash_hits;
        ++pc_->fold_deep_compares;
      }
      const bool ok = deep_equal(lhs_at, rhs_at, len, lhs);
      if (!ok && pc_ != nullptr) ++pc_->fold_false_positives;
      return ok;
    }
    if (pc_ != nullptr) ++pc_->fold_deep_compares;
    return deep_equal(lhs_at, rhs_at, len, lhs);
  }

  /// Rule (a): the loop node right before the last `len` nodes has a body
  /// matching them — fold the window into one more iteration of that loop.
  bool try_increment_loop(std::size_t len) {
    if (nodes_.size() < len + 1) return false;
    const std::size_t loop_at = nodes_.size() - len - 1;
    TraceNode& loop = nodes_[loop_at];
    if (!loop.is_loop() || loop.body.size() != len) return false;
    if (!windows_match(loop.body_seq, loop.body, 0, loop_at + 1, len))
      return false;
    for (std::size_t i = 0; i < len; ++i)
      loop.body[i].absorb_stats(nodes_[loop_at + 1 + i]);
    ++loop.iters;
    loop.rehash_shallow();
    nodes_.resize(loop_at + 1);
    refold_prefix(loop_at);
    return true;
  }

  /// Rule (b): the last 2*len nodes form two structurally equal halves —
  /// fold them into a fresh loop of two iterations.
  bool try_fold_pair(std::size_t len) {
    if (nodes_.size() < 2 * len) return false;
    const std::size_t first = nodes_.size() - 2 * len;
    const std::size_t second = nodes_.size() - len;
    const std::uint64_t first_hash = fast_ ? window_hash(first, len) : 0;
    if (!windows_match(first_hash, nodes_, first, second, len)) return false;
    std::vector<TraceNode> body;
    body.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      TraceNode merged = std::move(nodes_[first + i]);
      merged.absorb_stats(nodes_[second + i]);
      body.push_back(std::move(merged));
    }
    nodes_.resize(first);
    nodes_.push_back(TraceNode::loop(2, std::move(body)));
    refold_prefix(first);
    return true;
  }

  std::vector<TraceNode>& nodes_;
  std::size_t limit_;
  bool fast_;
  PerfCounters* pc_;
  FoldState* state_;
  const std::uint64_t* powers_;
  std::size_t base_ = 0;
  std::vector<std::uint64_t> prefix_;  ///< non-persistent tail-region mode
};

}  // namespace

int fold_tail(std::vector<TraceNode>& nodes, int max_window, PerfCounters* pc,
              FoldState* state) {
  // A non-positive window means "no folding", not "unbounded": the old
  // static_cast turned negative windows into a near-infinite limit.
  if (max_window <= 0) return 0;
  TailFolder folder(nodes, static_cast<std::size_t>(max_window),
                    fast_path_enabled(), pc, state);
  return folder.run();
}

void IntraTrace::append(EventRecord ev) {
  ++recorded_;
  nodes_.push_back(TraceNode::leaf(std::move(ev)));
  fold_tail(nodes_, max_window_, perf_, &fold_state_);
}

std::vector<TraceNode> IntraTrace::take() {
  std::vector<TraceNode> out = std::move(nodes_);
  nodes_.clear();
  fold_state_.clear();
  return out;
}

std::size_t IntraTrace::compressed_events() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.leaf_count();
  return n;
}

}  // namespace cham::trace
