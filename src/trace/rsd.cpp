#include "trace/rsd.hpp"

#include "support/logging.hpp"

namespace cham::trace {

namespace {

/// Rule (a): the loop node right before the last `len` nodes has a body that
/// matches them — fold the window into one more iteration of that loop.
bool try_increment_loop(std::vector<TraceNode>& nodes, std::size_t len) {
  if (nodes.size() < len + 1) return false;
  const std::size_t loop_at = nodes.size() - len - 1;
  TraceNode& loop = nodes[loop_at];
  if (!loop.is_loop() || loop.body.size() != len) return false;
  for (std::size_t i = 0; i < len; ++i) {
    if (!loop.body[i].same_shape(nodes[loop_at + 1 + i])) return false;
  }
  for (std::size_t i = 0; i < len; ++i) {
    loop.body[i].absorb_stats(nodes[loop_at + 1 + i]);
  }
  ++loop.iters;
  nodes.resize(loop_at + 1);
  return true;
}

/// Rule (b): the last 2*len nodes form two structurally equal halves — fold
/// them into a fresh loop of two iterations.
bool try_fold_pair(std::vector<TraceNode>& nodes, std::size_t len) {
  if (nodes.size() < 2 * len) return false;
  const std::size_t first = nodes.size() - 2 * len;
  const std::size_t second = nodes.size() - len;
  for (std::size_t i = 0; i < len; ++i) {
    if (!nodes[first + i].same_shape(nodes[second + i])) return false;
  }
  std::vector<TraceNode> body;
  body.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    TraceNode merged = std::move(nodes[first + i]);
    merged.absorb_stats(nodes[second + i]);
    body.push_back(std::move(merged));
  }
  nodes.resize(first);
  nodes.push_back(TraceNode::loop(2, std::move(body)));
  return true;
}

}  // namespace

int fold_tail(std::vector<TraceNode>& nodes, int max_window) {
  int folds = 0;
  bool folded = true;
  while (folded) {
    folded = false;
    const auto limit = static_cast<std::size_t>(max_window);
    for (std::size_t len = 1; len <= limit && len <= nodes.size(); ++len) {
      if (try_increment_loop(nodes, len) || try_fold_pair(nodes, len)) {
        folded = true;
        ++folds;
        break;  // restart with the shortest window after any change
      }
    }
  }
  return folds;
}

void IntraTrace::append(EventRecord ev) {
  ++recorded_;
  nodes_.push_back(TraceNode::leaf(std::move(ev)));
  fold_tail(nodes_, max_window_);
}

std::vector<TraceNode> IntraTrace::take() {
  std::vector<TraceNode> out = std::move(nodes_);
  nodes_.clear();
  return out;
}

std::size_t IntraTrace::compressed_events() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.leaf_count();
  return n;
}

}  // namespace cham::trace
