// Inter-node trace merging.
//
// During the reduction over the radix tree, each internal node combines its
// compressed trace with the traces received from children. Two PRSD
// sequences are aligned with an LCS over structural shape (operation, stack
// signature, parameters, relative endpoints, loop structure): aligned nodes
// union their ranklists and merge delta-time histograms; unaligned runs are
// spliced in order. This is the O(n^2) step whose repetition over log P
// (ScalaTrace) versus log K (Chameleon) levels is the paper's headline
// complexity difference.
#pragma once

#include <vector>

#include "trace/event.hpp"

namespace cham::trace {

struct PerfCounters;

/// Merge two compressed sequences into one. Commutative up to the order of
/// spliced unmatched runs (a's runs precede b's at equal positions).
/// Candidate pairs are prechecked against cached merge-class hashes and the
/// mergeability verdicts are memoized across the DP fill and the backtrack;
/// `pc` (optional) receives the precheck/memo counters.
std::vector<TraceNode> inter_merge(std::vector<TraceNode> a,
                                   std::vector<TraceNode> b,
                                   PerfCounters* pc = nullptr);

/// Append one interval's merged trace to the growing online trace (held at
/// rank 0) and recompress the tail so repeated phases fold into loops —
/// this is what makes the online trace converge to the MPI_Finalize output
/// of plain ScalaTrace.
void append_online(std::vector<TraceNode>& online,
                   std::vector<TraceNode> interval, int max_window = 32,
                   PerfCounters* pc = nullptr);

}  // namespace cham::trace
