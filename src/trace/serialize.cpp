#include "trace/serialize.hpp"

#include <cstring>

#include "trace/scale.hpp"

namespace cham::trace {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::bytes(const std::uint8_t* data, std::size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > buf_.size()) throw DecodeError("trace buffer truncated");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i)
    v |= static_cast<std::uint16_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::vector<std::uint8_t> ByteReader::raw(std::size_t n) {
  need(n);
  std::vector<std::uint8_t> out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void encode_ranklist(ByteWriter& w, const RankList& ranks) {
  const auto sections = ranks.sections();
  // u32 section count: at 64k+ ranks an irregular member set can factor
  // into more than 65535 sections (the member cap admits up to 2^23 runs),
  // so the old u16 field could silently truncate.
  w.u32(static_cast<std::uint32_t>(sections.size()));
  for (const auto& sec : sections) {
    w.i32(sec.start);
    w.u16(static_cast<std::uint16_t>(sec.dims.size()));
    for (const auto& [iters, stride] : sec.dims) {
      w.i32(iters);
      w.i32(stride);
    }
  }
}

namespace {

/// Ceiling on the member count any single decoded ranklist may expand to.
/// Generous for the 64k-rank roadmap scale, but small enough that a hostile
/// <iters> product cannot balloon the expansion vector: decode throws before
/// allocating past it.
constexpr std::uint64_t kMaxDecodedRanks = 1ull << 24;

/// Minimum encoded sizes, used to bound length-prefixed element counts by
/// the bytes actually left in the buffer.
constexpr std::size_t kMinSectionBytes = 4 + 2;       // start + ndims
constexpr std::size_t kMinNodeBytes = 1 + 8 + 4;      // empty loop node

}  // namespace

namespace {

/// Map decoded sections straight to runs when they have the shape our
/// encoder emits (<=2 dims, positive strides, ascending disjoint order):
/// a 1-D section is one run, a 2-D section is `outer` runs. Keeps the
/// decode O(runs) — critical when every rank decodes the broadcast cluster
/// table, where member-level expansion is O(world) per ranklist. Returns
/// false (leaving `runs` unusable) for legacy/hostile shapes; the caller
/// falls back to the exact member expansion.
bool runs_from_sections(const std::vector<RankSection>& sections,
                        std::vector<RankRun>& runs) {
  sim::Rank prev_end = -1;
  bool first = true;
  const auto add = [&](sim::Rank start, int len, int stride) {
    if (len < 1 || (len > 1 && stride < 1)) return false;
    if (!first && start <= prev_end) return false;
    first = false;
    prev_end = start + (len - 1) * (len > 1 ? stride : 1);
    runs.push_back({start, len, len > 1 ? stride : 1});
    return true;
  };
  for (const auto& sec : sections) {
    switch (sec.dims.size()) {
      case 0:
        if (!add(sec.start, 1, 1)) return false;
        break;
      case 1:
        if (!add(sec.start, sec.dims[0].first, sec.dims[0].second))
          return false;
        break;
      case 2: {
        const auto [outer_iters, outer_stride] = sec.dims[0];
        const auto [len, stride] = sec.dims[1];
        if (outer_iters < 1 || outer_stride < 1) return false;
        for (int g = 0; g < outer_iters; ++g)
          if (!add(sec.start + g * outer_stride, len, stride)) return false;
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

}  // namespace

RankList decode_ranklist(ByteReader& r) {
  const std::size_t nsections = r.u32();
  if (nsections > r.remaining() / kMinSectionBytes)
    throw DecodeError("ranklist section count exceeds buffer");
  std::vector<RankSection> sections;
  sections.reserve(nsections);
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < nsections; ++s) {
    RankSection sec;
    sec.start = r.i32();
    const std::size_t ndims = r.u16();
    if (ndims > 8) throw DecodeError("ranklist dimension count implausible");
    std::uint64_t expanded = 1;
    for (std::size_t d = 0; d < ndims; ++d) {
      const int iters = r.i32();
      const int stride = r.i32();
      if (iters <= 0) throw DecodeError("non-positive ranklist iteration");
      expanded *= static_cast<std::uint64_t>(iters);
      if (expanded > kMaxDecodedRanks)
        throw DecodeError("ranklist expansion exceeds member cap");
      sec.dims.push_back({iters, stride});
    }
    total += expanded;
    if (total > kMaxDecodedRanks)
      throw DecodeError("ranklist expansion exceeds member cap");
    sections.push_back(std::move(sec));
  }
  if (scale_options().sparse_ranklists) {
    std::vector<RankRun> runs;
    if (runs_from_sections(sections, runs))
      return RankList::from_runs(std::move(runs));
  }
  std::vector<sim::Rank> ranks;
  ranks.reserve(total);
  for (const auto& sec : sections) sec.expand_into(ranks);
  return RankList::from_ranks(std::move(ranks));
}

namespace {

/// Version byte leading a standalone ranklist image. Bump on any change to
/// the section wire layout; decode rejects anything newer.
constexpr std::uint8_t kRankListImageVersion = 1;

}  // namespace

std::vector<std::uint8_t> encode_ranklist_image(const RankList& ranks) {
  ByteWriter w;
  w.reserve(1 + encoded_size_hint(ranks));
  w.u8(kRankListImageVersion);
  encode_ranklist(w, ranks);
  return w.take();
}

RankList decode_ranklist_image(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const std::uint8_t version = r.u8();
  if (version > kRankListImageVersion)
    throw DecodeError("ranklist image from a newer format version");
  RankList ranks = decode_ranklist(r);
  if (!r.exhausted()) throw DecodeError("trailing bytes after ranklist image");
  return ranks;
}

std::size_t encoded_size_hint(const RankList& ranks) {
  std::size_t n = 4;
  for (const auto& sec : ranks.sections()) n += 4 + 2 + 8 * sec.dims.size();
  return n;
}

std::size_t encoded_size_hint(const TraceNode& node) {
  if (node.is_loop()) {
    std::size_t n = 1 + 8 + 4;
    for (const auto& child : node.body) n += encoded_size_hint(child);
    return n;
  }
  // mark + op + stack + 2 endpoints + bytes + tag + comm + marker flag
  constexpr std::size_t kLeafFixed = 1 + 1 + 8 + 2 * 5 + 8 + 4 + 1 + 1;
  constexpr std::size_t kHistogram =
      static_cast<std::size_t>(support::Histogram::kBins) * 8 + 8 + 3 * 8;
  return kLeafFixed + encoded_size_hint(node.event.ranks) + kHistogram;
}

std::size_t encoded_size_hint(const std::vector<TraceNode>& nodes) {
  std::size_t n = 4;
  for (const auto& node : nodes) n += encoded_size_hint(node);
  return n;
}

namespace {

void encode_endpoint(ByteWriter& w, const Endpoint& ep) {
  w.u8(static_cast<std::uint8_t>(ep.kind));
  w.i32(ep.value);
}

Endpoint decode_endpoint(ByteReader& r) {
  Endpoint ep;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(Endpoint::Kind::kAbsolute))
    throw DecodeError("bad endpoint kind");
  ep.kind = static_cast<Endpoint::Kind>(kind);
  ep.value = r.i32();
  return ep;
}

void encode_histogram(ByteWriter& w, const support::Histogram& h) {
  for (int i = 0; i < support::Histogram::kBins; ++i) w.u64(h.bin(i));
  w.u64(h.count());
  w.f64(h.min());
  w.f64(h.max());
  w.f64(h.total());
}

support::Histogram decode_histogram(ByteReader& r) {
  std::array<std::uint64_t, support::Histogram::kBins> bins{};
  for (auto& b : bins) b = r.u64();
  const std::uint64_t count = r.u64();
  const double mn = r.f64();
  const double mx = r.f64();
  const double sum = r.f64();
  return support::Histogram::from_raw(bins, count, mn, mx, sum);
}

constexpr std::uint8_t kLeafMark = 0xE1;
constexpr std::uint8_t kLoopMark = 0xE2;

}  // namespace

void encode_node(ByteWriter& w, const TraceNode& node) {
  if (node.is_loop()) {
    w.u8(kLoopMark);
    w.u64(node.iters);
    w.u32(static_cast<std::uint32_t>(node.body.size()));
    for (const auto& child : node.body) encode_node(w, child);
    return;
  }
  w.u8(kLeafMark);
  const EventRecord& ev = node.event;
  w.u8(static_cast<std::uint8_t>(ev.op));
  w.u64(ev.stack_sig);
  encode_endpoint(w, ev.src);
  encode_endpoint(w, ev.dest);
  w.u64(ev.bytes);
  w.i32(ev.tag);
  w.u8(static_cast<std::uint8_t>(ev.comm));
  w.u8(ev.is_marker ? 1 : 0);
  encode_ranklist(w, ev.ranks);
  encode_histogram(w, ev.delta);
}

TraceNode decode_node(ByteReader& r) {
  const std::uint8_t mark = r.u8();
  if (mark == kLoopMark) {
    const std::uint64_t iters = r.u64();
    if (iters == 0) throw DecodeError("loop with zero iterations");
    const std::uint32_t len = r.u32();
    if (len > (1u << 20)) throw DecodeError("loop body length implausible");
    if (len > r.remaining() / kMinNodeBytes)
      throw DecodeError("loop body length exceeds buffer");
    std::vector<TraceNode> body;
    body.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) body.push_back(decode_node(r));
    // The loop() factory rehashes, so decoded nodes come out hash-consistent.
    return TraceNode::loop(iters, std::move(body));
  }
  if (mark != kLeafMark) throw DecodeError("bad node marker");
  EventRecord ev;
  ev.op = static_cast<sim::Op>(r.u8());
  ev.stack_sig = r.u64();
  ev.src = decode_endpoint(r);
  ev.dest = decode_endpoint(r);
  ev.bytes = r.u64();
  ev.tag = r.i32();
  ev.comm = r.u8();
  ev.is_marker = r.u8() != 0;
  ev.ranks = decode_ranklist(r);
  ev.delta = decode_histogram(r);
  return TraceNode::leaf(std::move(ev));
}

std::vector<std::uint8_t> encode_trace(const std::vector<TraceNode>& nodes) {
  ByteWriter w;
  w.reserve(encoded_size_hint(nodes));
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const auto& node : nodes) encode_node(w, node);
  return w.take();
}

namespace {

void encode_node_structure(ByteWriter& w, const TraceNode& node) {
  if (node.is_loop()) {
    w.u8(kLoopMark);
    w.u64(node.iters);
    w.u32(static_cast<std::uint32_t>(node.body.size()));
    for (const auto& child : node.body) encode_node_structure(w, child);
    return;
  }
  w.u8(kLeafMark);
  const EventRecord& ev = node.event;
  w.u8(static_cast<std::uint8_t>(ev.op));
  w.u64(ev.stack_sig);
  encode_endpoint(w, ev.src);
  encode_endpoint(w, ev.dest);
  w.u64(ev.bytes);
  w.i32(ev.tag);
  w.u8(static_cast<std::uint8_t>(ev.comm));
  w.u8(ev.is_marker ? 1 : 0);
  encode_ranklist(w, ev.ranks);
  w.u64(ev.delta.count());  // host-timed seconds excluded (see header)
}

}  // namespace

std::vector<std::uint8_t> encode_trace_structure(
    const std::vector<TraceNode>& nodes) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const auto& node : nodes) encode_node_structure(w, node);
  return w.take();
}

std::vector<TraceNode> decode_trace(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const std::uint32_t len = r.u32();
  if (len > (1u << 24)) throw DecodeError("trace length implausible");
  if (len > r.remaining() / kMinNodeBytes)
    throw DecodeError("trace length exceeds buffer");
  std::vector<TraceNode> nodes;
  nodes.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) nodes.push_back(decode_node(r));
  if (!r.exhausted()) throw DecodeError("trailing bytes after trace");
  return nodes;
}

}  // namespace cham::trace
