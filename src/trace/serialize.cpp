#include "trace/serialize.hpp"

#include <cstring>

namespace cham::trace {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::bytes(const std::uint8_t* data, std::size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > buf_.size()) throw DecodeError("trace buffer truncated");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i)
    v |= static_cast<std::uint16_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::vector<std::uint8_t> ByteReader::raw(std::size_t n) {
  need(n);
  std::vector<std::uint8_t> out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void encode_ranklist(ByteWriter& w, const RankList& ranks) {
  const auto sections = ranks.sections();
  w.u16(static_cast<std::uint16_t>(sections.size()));
  for (const auto& sec : sections) {
    w.i32(sec.start);
    w.u16(static_cast<std::uint16_t>(sec.dims.size()));
    for (const auto& [iters, stride] : sec.dims) {
      w.i32(iters);
      w.i32(stride);
    }
  }
}

namespace {

/// Ceiling on the member count any single decoded ranklist may expand to.
/// Generous for the 64k-rank roadmap scale, but small enough that a hostile
/// <iters> product cannot balloon the expansion vector: decode throws before
/// allocating past it.
constexpr std::uint64_t kMaxDecodedRanks = 1ull << 24;

/// Minimum encoded sizes, used to bound length-prefixed element counts by
/// the bytes actually left in the buffer.
constexpr std::size_t kMinSectionBytes = 4 + 2;       // start + ndims
constexpr std::size_t kMinNodeBytes = 1 + 8 + 4;      // empty loop node

}  // namespace

RankList decode_ranklist(ByteReader& r) {
  const std::size_t nsections = r.u16();
  if (nsections > r.remaining() / kMinSectionBytes)
    throw DecodeError("ranklist section count exceeds buffer");
  std::vector<sim::Rank> ranks;
  for (std::size_t s = 0; s < nsections; ++s) {
    RankSection sec;
    sec.start = r.i32();
    const std::size_t ndims = r.u16();
    if (ndims > 8) throw DecodeError("ranklist dimension count implausible");
    std::uint64_t expanded = 1;
    for (std::size_t d = 0; d < ndims; ++d) {
      const int iters = r.i32();
      const int stride = r.i32();
      if (iters <= 0) throw DecodeError("non-positive ranklist iteration");
      expanded *= static_cast<std::uint64_t>(iters);
      if (expanded > kMaxDecodedRanks)
        throw DecodeError("ranklist expansion exceeds member cap");
      sec.dims.push_back({iters, stride});
    }
    if (ranks.size() + expanded > kMaxDecodedRanks)
      throw DecodeError("ranklist expansion exceeds member cap");
    sec.expand_into(ranks);
  }
  return RankList::from_ranks(std::move(ranks));
}

std::size_t encoded_size_hint(const RankList& ranks) {
  std::size_t n = 2;
  for (const auto& sec : ranks.sections()) n += 4 + 2 + 8 * sec.dims.size();
  return n;
}

std::size_t encoded_size_hint(const TraceNode& node) {
  if (node.is_loop()) {
    std::size_t n = 1 + 8 + 4;
    for (const auto& child : node.body) n += encoded_size_hint(child);
    return n;
  }
  // mark + op + stack + 2 endpoints + bytes + tag + comm + marker flag
  constexpr std::size_t kLeafFixed = 1 + 1 + 8 + 2 * 5 + 8 + 4 + 1 + 1;
  constexpr std::size_t kHistogram =
      static_cast<std::size_t>(support::Histogram::kBins) * 8 + 8 + 3 * 8;
  return kLeafFixed + encoded_size_hint(node.event.ranks) + kHistogram;
}

std::size_t encoded_size_hint(const std::vector<TraceNode>& nodes) {
  std::size_t n = 4;
  for (const auto& node : nodes) n += encoded_size_hint(node);
  return n;
}

namespace {

void encode_endpoint(ByteWriter& w, const Endpoint& ep) {
  w.u8(static_cast<std::uint8_t>(ep.kind));
  w.i32(ep.value);
}

Endpoint decode_endpoint(ByteReader& r) {
  Endpoint ep;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(Endpoint::Kind::kAbsolute))
    throw DecodeError("bad endpoint kind");
  ep.kind = static_cast<Endpoint::Kind>(kind);
  ep.value = r.i32();
  return ep;
}

void encode_histogram(ByteWriter& w, const support::Histogram& h) {
  for (int i = 0; i < support::Histogram::kBins; ++i) w.u64(h.bin(i));
  w.u64(h.count());
  w.f64(h.min());
  w.f64(h.max());
  w.f64(h.total());
}

support::Histogram decode_histogram(ByteReader& r) {
  std::array<std::uint64_t, support::Histogram::kBins> bins{};
  for (auto& b : bins) b = r.u64();
  const std::uint64_t count = r.u64();
  const double mn = r.f64();
  const double mx = r.f64();
  const double sum = r.f64();
  return support::Histogram::from_raw(bins, count, mn, mx, sum);
}

constexpr std::uint8_t kLeafMark = 0xE1;
constexpr std::uint8_t kLoopMark = 0xE2;

}  // namespace

void encode_node(ByteWriter& w, const TraceNode& node) {
  if (node.is_loop()) {
    w.u8(kLoopMark);
    w.u64(node.iters);
    w.u32(static_cast<std::uint32_t>(node.body.size()));
    for (const auto& child : node.body) encode_node(w, child);
    return;
  }
  w.u8(kLeafMark);
  const EventRecord& ev = node.event;
  w.u8(static_cast<std::uint8_t>(ev.op));
  w.u64(ev.stack_sig);
  encode_endpoint(w, ev.src);
  encode_endpoint(w, ev.dest);
  w.u64(ev.bytes);
  w.i32(ev.tag);
  w.u8(static_cast<std::uint8_t>(ev.comm));
  w.u8(ev.is_marker ? 1 : 0);
  encode_ranklist(w, ev.ranks);
  encode_histogram(w, ev.delta);
}

TraceNode decode_node(ByteReader& r) {
  const std::uint8_t mark = r.u8();
  if (mark == kLoopMark) {
    const std::uint64_t iters = r.u64();
    if (iters == 0) throw DecodeError("loop with zero iterations");
    const std::uint32_t len = r.u32();
    if (len > (1u << 20)) throw DecodeError("loop body length implausible");
    if (len > r.remaining() / kMinNodeBytes)
      throw DecodeError("loop body length exceeds buffer");
    std::vector<TraceNode> body;
    body.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) body.push_back(decode_node(r));
    // The loop() factory rehashes, so decoded nodes come out hash-consistent.
    return TraceNode::loop(iters, std::move(body));
  }
  if (mark != kLeafMark) throw DecodeError("bad node marker");
  EventRecord ev;
  ev.op = static_cast<sim::Op>(r.u8());
  ev.stack_sig = r.u64();
  ev.src = decode_endpoint(r);
  ev.dest = decode_endpoint(r);
  ev.bytes = r.u64();
  ev.tag = r.i32();
  ev.comm = r.u8();
  ev.is_marker = r.u8() != 0;
  ev.ranks = decode_ranklist(r);
  ev.delta = decode_histogram(r);
  return TraceNode::leaf(std::move(ev));
}

std::vector<std::uint8_t> encode_trace(const std::vector<TraceNode>& nodes) {
  ByteWriter w;
  w.reserve(encoded_size_hint(nodes));
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const auto& node : nodes) encode_node(w, node);
  return w.take();
}

namespace {

void encode_node_structure(ByteWriter& w, const TraceNode& node) {
  if (node.is_loop()) {
    w.u8(kLoopMark);
    w.u64(node.iters);
    w.u32(static_cast<std::uint32_t>(node.body.size()));
    for (const auto& child : node.body) encode_node_structure(w, child);
    return;
  }
  w.u8(kLeafMark);
  const EventRecord& ev = node.event;
  w.u8(static_cast<std::uint8_t>(ev.op));
  w.u64(ev.stack_sig);
  encode_endpoint(w, ev.src);
  encode_endpoint(w, ev.dest);
  w.u64(ev.bytes);
  w.i32(ev.tag);
  w.u8(static_cast<std::uint8_t>(ev.comm));
  w.u8(ev.is_marker ? 1 : 0);
  encode_ranklist(w, ev.ranks);
  w.u64(ev.delta.count());  // host-timed seconds excluded (see header)
}

}  // namespace

std::vector<std::uint8_t> encode_trace_structure(
    const std::vector<TraceNode>& nodes) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const auto& node : nodes) encode_node_structure(w, node);
  return w.take();
}

std::vector<TraceNode> decode_trace(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const std::uint32_t len = r.u32();
  if (len > (1u << 24)) throw DecodeError("trace length implausible");
  if (len > r.remaining() / kMinNodeBytes)
    throw DecodeError("trace length exceeds buffer");
  std::vector<TraceNode> nodes;
  nodes.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) nodes.push_back(decode_node(r));
  if (!r.exhausted()) throw DecodeError("trailing bytes after trace");
  return nodes;
}

}  // namespace cham::trace
