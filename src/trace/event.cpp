#include "trace/event.hpp"

#include <sstream>

namespace cham::trace {

std::string Endpoint::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kNone:
      return "-";
    case Kind::kAny:
      return "*";
    case Kind::kAbsolute:
      os << '@' << value;
      return os.str();
    case Kind::kRelative:
      os << (value >= 0 ? "+" : "") << value;
      return os.str();
  }
  return "?";
}

std::string EventRecord::to_string() const {
  std::ostringstream os;
  os << sim::op_name(op) << " stack=0x" << std::hex << stack_sig << std::dec;
  if (src.kind != Endpoint::Kind::kNone) os << " src=" << src.to_string();
  if (dest.kind != Endpoint::Kind::kNone) os << " dest=" << dest.to_string();
  os << " bytes=" << bytes << " tag=" << tag;
  if (is_marker) os << " marker";
  os << " ranks=" << ranks.to_string();
  if (!delta.empty()) os << " dt=" << delta.to_string();
  return os.str();
}

namespace {

/// Salts keep a leaf's event hash, a loop's structural hash, and a loop's
/// merge-class hash in distinct hash families.
constexpr std::uint64_t kLoopShapeSalt = 0x5cf2ba21a7d3e901ull;
constexpr std::uint64_t kLoopMergeSalt = 0x8d1e44f0c3b79a57ull;

/// 0 is reserved as the "not computed" sentinel on TraceNode.
constexpr std::uint64_t nonzero(std::uint64_t h) { return h == 0 ? 1 : h; }

std::uint64_t endpoint_word(const Endpoint& ep) {
  return (static_cast<std::uint64_t>(static_cast<std::uint8_t>(ep.kind)) << 32) |
         static_cast<std::uint32_t>(ep.value);
}

}  // namespace

std::uint64_t EventRecord::shape_hash() const {
  std::uint64_t h = support::mix64(
      (static_cast<std::uint64_t>(static_cast<std::uint8_t>(op)) << 1) |
      (is_marker ? 1u : 0u));
  h = support::hash_combine(h, stack_sig);
  h = support::hash_combine(h, endpoint_word(src));
  h = support::hash_combine(h, endpoint_word(dest));
  h = support::hash_combine(h, bytes);
  h = support::hash_combine(
      h, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) << 8) ^
             static_cast<std::uint64_t>(static_cast<std::uint32_t>(comm)));
  return nonzero(h);
}

std::uint64_t EventRecord::merge_class_hash() const {
  std::uint64_t h = support::mix64(
      (static_cast<std::uint64_t>(static_cast<std::uint8_t>(op)) << 1) |
      (is_marker ? 1u : 0u));
  h = support::hash_combine(h, stack_sig);
  h = support::hash_combine(h, bytes);
  h = support::hash_combine(
      h, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) << 8) ^
             static_cast<std::uint64_t>(static_cast<std::uint32_t>(comm)));
  return nonzero(h);
}

void TraceNode::rehash_shallow() {
  if (is_loop()) {
    std::uint64_t seq = 0;
    std::uint64_t mh = support::mix64(iters ^ kLoopMergeSalt);
    for (const TraceNode& child : body) {
      seq = seq * kShapeSeqBase + child.shape_hash;
      mh = support::hash_combine(mh, child.merge_hash);
    }
    body_seq = seq;
    shape_hash =
        nonzero(support::hash_combine(support::mix64(iters ^ kLoopShapeSalt), seq));
    merge_hash = nonzero(mh);
  } else {
    shape_hash = event.shape_hash();
    merge_hash = event.merge_class_hash();
    body_seq = 0;
  }
}

void TraceNode::rehash_deep() {
  for (TraceNode& child : body) child.rehash_deep();
  rehash_shallow();
}

bool TraceNode::same_shape(const TraceNode& other) const {
  if (iters != other.iters) return false;
  if (is_loop()) {
    if (body.size() != other.body.size()) return false;
    for (std::size_t i = 0; i < body.size(); ++i)
      if (!body[i].same_shape(other.body[i])) return false;
    return true;
  }
  return event.same_shape(other.event);
}

void TraceNode::absorb_stats(const TraceNode& other) {
  if (is_loop()) {
    for (std::size_t i = 0; i < body.size(); ++i)
      body[i].absorb_stats(other.body[i]);
  } else {
    event.delta.merge(other.event.delta);
  }
}

void TraceNode::absorb_ranks(const TraceNode& other) {
  if (is_loop()) {
    footprint_cache = 0;
    for (std::size_t i = 0; i < body.size(); ++i)
      body[i].absorb_ranks(other.body[i]);
  } else {
    event.ranks.merge(other.event.ranks);
    event.delta.merge(other.event.delta);
  }
}

std::size_t TraceNode::leaf_count() const {
  if (!is_loop()) return 1;
  if (leaf_count_cache != 0) return leaf_count_cache;
  std::size_t n = 0;
  for (const auto& child : body) n += child.leaf_count();
  leaf_count_cache = n;
  return n;
}

std::uint64_t TraceNode::expanded_count() const {
  if (!is_loop()) return 1;
  std::uint64_t n = 0;
  for (const auto& child : body) n += child.expanded_count();
  return n * iters;
}

std::size_t TraceNode::footprint_bytes() const {
  if (is_loop()) {
    if (footprint_cache != 0) return footprint_cache;
    std::size_t bytes = 16;  // iters + body length
    for (const auto& child : body) bytes += child.footprint_bytes();
    footprint_cache = bytes;
    return bytes;
  }
  // op + stack sig + endpoints + bytes + tag + comm + flags
  std::size_t bytes = 1 + 8 + 2 * 5 + 8 + 4 + 1 + 1;
  bytes += event.ranks.footprint_bytes();
  bytes += support::Histogram::footprint_bytes();
  return bytes;
}

std::string TraceNode::to_string(int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (is_loop()) {
    os << pad << "loop iters=" << iters << " {\n";
    for (const auto& child : body) os << child.to_string(indent + 1);
    os << pad << "}\n";
  } else {
    os << pad << event.to_string() << '\n';
  }
  return os.str();
}

bool same_shape(const std::vector<TraceNode>& a,
                const std::vector<TraceNode>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!a[i].same_shape(b[i])) return false;
  return true;
}

void substitute_ranks(std::vector<TraceNode>& nodes, const RankList& ranks) {
  for (auto& node : nodes) {
    if (node.is_loop()) {
      node.footprint_cache = 0;
      substitute_ranks(node.body, ranks);
    } else {
      node.event.ranks = ranks;
    }
  }
}

std::size_t footprint_bytes(const std::vector<TraceNode>& nodes) {
  if (nodes.empty()) return 0;  // nothing allocated, nothing charged
  std::size_t bytes = 8;        // sequence length
  for (const auto& node : nodes) bytes += node.footprint_bytes();
  return bytes;
}

std::string format_trace(const std::vector<TraceNode>& nodes) {
  std::string out;
  for (const auto& node : nodes) out += node.to_string();
  return out;
}

}  // namespace cham::trace
