// RSD/PRSD intra-node (loop-level) trace compression.
//
// ScalaTrace captures innermost repeating event windows as Regular Section
// Descriptors and nests them recursively into power-RSDs. We implement the
// online variant: after every appended event the tail of the node sequence
// is checked for (a) a repetition of the body of the loop immediately
// preceding it (increment that loop's iteration count) or (b) two equal
// adjacent windows (fold into a new 2-iteration loop). Applying the rules
// to fixpoint builds nested loops, e.g.
//
//   for 1000 { for 100 { send; recv } barrier }
//     ==>  loop 1000 { loop 100 { send; recv } barrier }
//
// with delta-time histograms accumulating across folded iterations.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/event.hpp"

namespace cham::trace {

struct PerfCounters;

/// Persistent rolling-hash state for repeated fold_tail calls over the same
/// growing node sequence. `prefix[k]` is the kShapeSeqBase-polynomial
/// combination of nodes[0..k) shape hashes; fold_tail keeps it aligned with
/// the sequence incrementally (O(1) per append and per fold) instead of
/// rebuilding the tail window hashes on every call. Owned by IntraTrace;
/// callers that mutate the node sequence behind fold_tail's back must
/// clear() it.
struct FoldState {
  std::vector<std::uint64_t> prefix;
  void clear() { prefix.clear(); }
};

/// Apply the two fold rules at the tail of `nodes` until neither fires.
/// Window lengths 1..max_window are tried, shortest first (a non-positive
/// max_window disables folding entirely). Returns the number of folds
/// performed. Window candidates are prechecked against rolling shape
/// hashes and only deep-compared on a hash match; `pc` (optional) receives
/// the precheck/verify counters and `state` (optional) carries the rolling
/// prefix hashes across calls.
int fold_tail(std::vector<TraceNode>& nodes, int max_window,
              PerfCounters* pc = nullptr, FoldState* state = nullptr);

class IntraTrace {
 public:
  explicit IntraTrace(int max_window = 32, PerfCounters* perf = nullptr)
      : max_window_(max_window), perf_(perf) {}

  /// Append one event and recompress the tail.
  void append(EventRecord ev);

  [[nodiscard]] const std::vector<TraceNode>& nodes() const { return nodes_; }

  /// Move the compressed trace out, leaving this trace empty.
  [[nodiscard]] std::vector<TraceNode> take();

  /// Adopt an already-compressed node sequence (ChamDurable: a resumed run
  /// restores the journaled partial trace, a promoted lead adopts a dead
  /// lead's last durable image). The rolling fold state is rebuilt lazily by
  /// the next append.
  void restore(std::vector<TraceNode> nodes) {
    nodes_ = std::move(nodes);
    fold_state_.clear();
  }

  void clear() {
    nodes_.clear();
    fold_state_.clear();
  }

  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  /// Raw events appended since construction/clear-counter semantics: this
  /// counts *appends*, not compressed nodes.
  [[nodiscard]] std::uint64_t recorded_events() const { return recorded_; }

  /// Compressed leaf count (the paper's n).
  [[nodiscard]] std::size_t compressed_events() const;

  [[nodiscard]] std::size_t footprint_bytes() const {
    return trace::footprint_bytes(nodes_);
  }

 private:
  std::vector<TraceNode> nodes_;
  int max_window_;
  PerfCounters* perf_ = nullptr;
  FoldState fold_state_;
  std::uint64_t recorded_ = 0;
};

}  // namespace cham::trace
