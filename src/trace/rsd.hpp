// RSD/PRSD intra-node (loop-level) trace compression.
//
// ScalaTrace captures innermost repeating event windows as Regular Section
// Descriptors and nests them recursively into power-RSDs. We implement the
// online variant: after every appended event the tail of the node sequence
// is checked for (a) a repetition of the body of the loop immediately
// preceding it (increment that loop's iteration count) or (b) two equal
// adjacent windows (fold into a new 2-iteration loop). Applying the rules
// to fixpoint builds nested loops, e.g.
//
//   for 1000 { for 100 { send; recv } barrier }
//     ==>  loop 1000 { loop 100 { send; recv } barrier }
//
// with delta-time histograms accumulating across folded iterations.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/event.hpp"

namespace cham::trace {

/// Apply the two fold rules at the tail of `nodes` until neither fires.
/// Window lengths 1..max_window are tried, shortest first. Returns the
/// number of folds performed.
int fold_tail(std::vector<TraceNode>& nodes, int max_window);

class IntraTrace {
 public:
  explicit IntraTrace(int max_window = 32) : max_window_(max_window) {}

  /// Append one event and recompress the tail.
  void append(EventRecord ev);

  [[nodiscard]] const std::vector<TraceNode>& nodes() const { return nodes_; }

  /// Move the compressed trace out, leaving this trace empty.
  [[nodiscard]] std::vector<TraceNode> take();

  void clear() { nodes_.clear(); }

  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  /// Raw events appended since construction/clear-counter semantics: this
  /// counts *appends*, not compressed nodes.
  [[nodiscard]] std::uint64_t recorded_events() const { return recorded_; }

  /// Compressed leaf count (the paper's n).
  [[nodiscard]] std::size_t compressed_events() const;

  [[nodiscard]] std::size_t footprint_bytes() const {
    return trace::footprint_bytes(nodes_);
  }

 private:
  std::vector<TraceNode> nodes_;
  int max_window_;
  std::uint64_t recorded_ = 0;
};

}  // namespace cham::trace
