#include "trace/tracer.hpp"

#include <algorithm>

#include "analysis/race/annotate.hpp"
#include "obs/prof/profiler.hpp"
#include "obs/timeline.hpp"
#include "sim/mpi.hpp"
#include "support/logging.hpp"
#include "trace/scale.hpp"
#include "trace/serialize.hpp"

namespace cham::trace {

namespace {
/// Tool-comm tag for trace payloads during radix merges.
constexpr int kMergeTag = 0x7A01;
}  // namespace

ChargedSection::ChargedSection(support::SectionTimer& timer, sim::Pmpi& pmpi)
    : timer_(timer), pmpi_(pmpi), start_(support::thread_cpu_seconds()) {}

ChargedSection::~ChargedSection() {
  const double elapsed = support::thread_cpu_seconds() - start_;
  timer_.add(elapsed);
  pmpi_.engine().advance_compute(pmpi_.rank(), elapsed);
}

ScalaTraceTool::ScalaTraceTool(int nprocs, CallSiteRegistry* stacks,
                               TracerOptions opts)
    : nprocs_(nprocs), stacks_(stacks), opts_(opts) {
  CHAM_CHECK_MSG(stacks_ != nullptr, "tracer needs a call-site registry");
  CHAM_CHECK_MSG(stacks_->nprocs() == nprocs,
                 "registry size must match world size");
  // Pre-install per-rank singleton ranklists while still pre-fiber (no-op
  // when sparse ranklists are off): every event record starts as single(r).
  if (scale_options().sparse_ranklists) ranklist_intern_ensure_world(nprocs);
  rank_perf_.resize(static_cast<std::size_t>(nprocs));
  rank_merge_ops_.assign(static_cast<std::size_t>(nprocs), 0);
  rank_merge_bytes_.assign(static_cast<std::size_t>(nprocs), 0);
  state_.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r)
    state_.emplace_back(opts_.max_window,
                        &rank_perf_[static_cast<std::size_t>(r)]);
}

void ScalaTraceTool::on_init(sim::Rank rank, sim::Pmpi& pmpi) {
  state(rank).last_event_end = pmpi.vtime();
}

void ScalaTraceTool::on_pre(sim::Rank rank, const sim::CallInfo& /*info*/,
                            sim::Pmpi& pmpi) {
  state(rank).pre_vtime = pmpi.vtime();
}

void ScalaTraceTool::on_post(sim::Rank rank, const sim::CallInfo& info,
                             sim::Pmpi& pmpi) {
  if (info.op == sim::Op::kInit) return;
  if (info.op == sim::Op::kFinalize) {
    handle_finalize(rank, pmpi);
    return;
  }

  RankTraceState& st = state(rank);
  RACE_WRITE("trace.rank", rank, 0);
  const double delta = st.pre_vtime - st.last_event_end;
  EventRecord record = make_record(rank, info, delta);

  ++st.events_observed;
  observe_event(rank, record, pmpi);

  if (st.storing) {
    ++st.events_recorded;
    support::TimedSection timed(st.intra_timer);
    st.intra.append(std::move(record));
  }
  st.last_event_end = pmpi.vtime();

  if (info.is_marker) handle_marker_post(rank, pmpi);
}

EventRecord ScalaTraceTool::make_record(sim::Rank rank,
                                        const sim::CallInfo& info,
                                        double delta) const {
  EventRecord record;
  record.op = info.op;
  record.stack_sig = stacks_->stack(rank).signature();
  record.bytes = info.bytes;
  record.tag = info.tag;
  record.comm = info.comm;
  record.is_marker = info.is_marker;

  switch (info.op) {
    case sim::Op::kSend:
    case sim::Op::kIsend:
      record.dest = info.absolute_peer ? Endpoint::absolute(info.peer)
                                       : Endpoint::relative(rank, info.peer);
      break;
    case sim::Op::kRecv:
    case sim::Op::kIrecv:
    case sim::Op::kWait:
      if (info.peer == sim::kAnySource) {
        record.src = Endpoint::any();
      } else if (info.absolute_peer) {
        record.src = Endpoint::absolute(info.peer);
      } else {
        record.src = Endpoint::relative(rank, info.peer);
      }
      break;
    case sim::Op::kBcast:
    case sim::Op::kReduce:
    case sim::Op::kGather:
    case sim::Op::kScatter:
      record.dest = Endpoint::absolute(info.root);
      break;
    default:
      break;  // barrier, allreduce, allgather, alltoall, waitall: no endpoint
  }

  record.ranks = RankList::single(rank);
  if (delta > 0) record.delta.add(delta);
  return record;
}

void ScalaTraceTool::observe_event(sim::Rank /*rank*/,
                                   const EventRecord& /*record*/,
                                   sim::Pmpi& /*pmpi*/) {}

void ScalaTraceTool::handle_marker_post(sim::Rank /*rank*/,
                                        sim::Pmpi& /*pmpi*/) {
  // Plain ScalaTrace treats the marker as an ordinary barrier event.
}

void ScalaTraceTool::handle_finalize(sim::Rank rank, sim::Pmpi& pmpi) {
  if (!opts_.merge_at_finalize) return;
  std::vector<sim::Rank> everyone(static_cast<std::size_t>(nprocs_));
  for (int r = 0; r < nprocs_; ++r) everyone[static_cast<std::size_t>(r)] = r;
  std::vector<TraceNode> merged =
      radix_merge(rank, everyone, state(rank).intra.take(), pmpi);
  if (rank == 0) {
    RACE_WRITE("trace.global", 0, 0);
    global_ = std::move(merged);
  }
}

std::vector<TraceNode> ScalaTraceTool::radix_merge(
    sim::Rank self, const std::vector<sim::Rank>& participants,
    std::vector<TraceNode> mine, sim::Pmpi& pmpi) {
  const auto it =
      std::lower_bound(participants.begin(), participants.end(), self);
  CHAM_CHECK_MSG(it != participants.end() && *it == self,
                 "radix_merge: self not in participant list");
  const auto idx = static_cast<std::size_t>(it - participants.begin());
  const std::size_t n = participants.size();
  RankTraceState& st = state(self);
  RACE_WRITE("trace.rank", self, 0);
  trace::PerfCounters& perf = rank_perf(self);
  obs::Span merge_span(obs::Timeline::rank_tid(self), "radix_merge", "trace",
                       {obs::arg_int("participants",
                                     static_cast<std::int64_t>(n))});
  const obs::prof::PhaseScope merge_phase(obs::prof::Phase::kRadixMerge);

  for (std::size_t mask = 1; mask < n; mask <<= 1) {
    if (idx & mask) {
      // Ship the current partial result to the binomial parent and leave.
      std::vector<std::uint8_t> payload;
      {
        ChargedSection timed(st.inter_timer, pmpi);
        payload = encode_trace(mine);
      }
      perf.bytes_encoded += payload.size();
      pmpi.send_bytes(participants[idx - mask], kMergeTag,
                      std::move(payload));
      return {};
    }
    if (idx + mask < n) {
      // Receive the child's partial result (the blocking wait shows up in
      // virtual time, not CPU time) and fold it in (timed + charged).
      sim::RecvStatus status;
      std::vector<std::uint8_t> payload =
          pmpi.recv_bytes(participants[idx + mask], kMergeTag, &status);
      // A crashed child takes its subtree's partials with it; the merge
      // continues with what the survivors hold.
      if (status.peer_failed) continue;
      ++rank_merge_ops_[static_cast<std::size_t>(self)];
      rank_merge_bytes_[static_cast<std::size_t>(self)] += payload.size();
      perf.bytes_decoded += payload.size();
      obs::Span step_span(
          obs::Timeline::rank_tid(self), "inter_merge", "trace",
          {obs::arg_int("child", participants[idx + mask]),
           obs::arg_int("bytes", static_cast<std::int64_t>(payload.size()))});
      const obs::prof::PhaseScope step_phase(obs::prof::Phase::kInterMerge);
      ChargedSection timed(st.inter_timer, pmpi);
      std::vector<TraceNode> theirs = decode_trace(payload);
      mine = inter_merge(std::move(mine), std::move(theirs), &perf);
    }
  }
  return mine;
}

double ScalaTraceTool::intra_seconds() const {
  double total = 0;
  for (const auto& st : state_) total += st.intra_timer.total();
  return total;
}

double ScalaTraceTool::inter_seconds() const {
  double total = 0;
  for (const auto& st : state_) total += st.inter_timer.total();
  return total;
}

std::uint64_t ScalaTraceTool::merge_operations() const {
  std::uint64_t total = 0;
  for (const std::uint64_t ops : rank_merge_ops_) total += ops;
  return total;
}

std::uint64_t ScalaTraceTool::merge_bytes() const {
  std::uint64_t total = 0;
  for (const std::uint64_t bytes : rank_merge_bytes_) total += bytes;
  return total;
}

std::uint64_t ScalaTraceTool::events_recorded_total() const {
  std::uint64_t total = 0;
  for (const auto& st : state_) total += st.events_recorded;
  return total;
}

std::size_t ScalaTraceTool::rank_trace_bytes(sim::Rank r) const {
  return state_.at(static_cast<std::size_t>(r)).intra.footprint_bytes();
}

const PerfCounters& ScalaTraceTool::perf_counters() const {
  perf_.reset();
  for (const PerfCounters& rp : rank_perf_) perf_.add(rp);
  perf_.intra_seconds = intra_seconds();
  perf_.inter_seconds = inter_seconds();
  return perf_;
}

}  // namespace cham::trace
