#include "trace/merge.hpp"

#include <algorithm>
#include <optional>

#include "trace/perf.hpp"
#include "trace/rsd.hpp"
#include "trace/scale.hpp"

namespace cham::trace {

namespace {

/// The single world rank this endpoint targets for every member of `ranks`,
/// if such a rank exists. Absolute endpoints always have one; a relative
/// endpoint only when the ranklist is a singleton (then self + offset is
/// fixed). This is what lets master-worker patterns generalize: worker i's
/// "send -i" and worker j's "send -j" both target rank 0.
std::optional<sim::Rank> common_target(const Endpoint& ep,
                                       const RankList& ranks) {
  if (ep.kind == Endpoint::Kind::kAbsolute)
    return static_cast<sim::Rank>(ep.value);
  if (ep.kind == Endpoint::Kind::kRelative && ranks.count() == 1)
    return ranks.first() + ep.value;
  return std::nullopt;
}

/// Can endpoints a (over ranks ra) and b (over ranks rb) describe one merged
/// event? On success *out is the merged encoding.
bool endpoints_mergeable(const Endpoint& a, const RankList& ra,
                         const Endpoint& b, const RankList& rb,
                         Endpoint* out) {
  if (a == b) {
    *out = a;
    return true;
  }
  const auto ta = common_target(a, ra);
  const auto tb = common_target(b, rb);
  if (ta.has_value() && tb.has_value() && *ta == *tb) {
    *out = Endpoint::absolute(*ta);
    return true;
  }
  return false;
}

bool events_mergeable(const EventRecord& a, const EventRecord& b,
                      Endpoint* src_out, Endpoint* dest_out) {
  if (a.op != b.op || a.stack_sig != b.stack_sig || a.bytes != b.bytes ||
      a.tag != b.tag || a.comm != b.comm || a.is_marker != b.is_marker) {
    return false;
  }
  return endpoints_mergeable(a.src, a.ranks, b.src, b.ranks, src_out) &&
         endpoints_mergeable(a.dest, a.ranks, b.dest, b.ranks, dest_out);
}

bool nodes_mergeable_deep(const TraceNode& a, const TraceNode& b) {
  if (a.iters != b.iters) return false;
  if (a.is_loop()) {
    if (b.body.size() != a.body.size()) return false;
    for (std::size_t i = 0; i < a.body.size(); ++i)
      if (!nodes_mergeable_deep(a.body[i], b.body[i])) return false;
    return true;
  }
  Endpoint src, dest;
  return events_mergeable(a.event, b.event, &src, &dest);
}

/// Hash-precheck-then-verify: mergeable nodes always share their
/// (endpoint-independent) merge_hash, so a mismatch rejects in O(1); on a
/// match the deep check still settles endpoint generalization.
bool nodes_mergeable(const TraceNode& a, const TraceNode& b, bool fast,
                     PerfCounters* pc) {
  if (fast && a.hashed() && b.hashed()) {
    if (pc != nullptr) ++pc->merge_prechecks;
    if (a.merge_hash != b.merge_hash) {
      if (pc != nullptr) ++pc->merge_hash_rejects;
      return false;
    }
  }
  if (pc != nullptr) ++pc->merge_deep_compares;
  const bool ok = nodes_mergeable_deep(a, b);
  if (fast && !ok && pc != nullptr) ++pc->merge_deep_rejects;
  return ok;
}

/// Merge structurally-mergeable b into a: ranklist union, histogram merge,
/// endpoint generalization. Rehashed bottom-up (endpoint generalization
/// changes the shape) and loop size caches dropped (ranklists grew).
void merge_into(TraceNode& a, const TraceNode& b) {
  if (a.is_loop()) {
    for (std::size_t i = 0; i < a.body.size(); ++i)
      merge_into(a.body[i], b.body[i]);
    a.footprint_cache = 0;
    a.rehash_shallow();
    return;
  }
  Endpoint src, dest;
  const bool ok = events_mergeable(a.event, b.event, &src, &dest);
  (void)ok;  // guaranteed by nodes_mergeable before merge_into
  a.event.src = src;
  a.event.dest = dest;
  a.event.ranks.merge(b.event.ranks);
  a.event.delta.merge(b.event.delta);
  a.rehash_shallow();
}

/// Per-thread reusable DP/memo storage for inter_merge (scale option
/// `arena`): a weak-scaled fold performs O(log P) merges per epoch with
/// similarly sized tables, so reusing capacity removes the dominant
/// allocation in the merge tree. Safe with fibers: inter_merge never yields
/// to the scheduler mid-call, so the scratch is never observed mid-use.
struct MergeScratch {
  std::vector<std::uint32_t> dp;
  std::vector<std::uint8_t> memo;
};

MergeScratch& merge_scratch() {
  thread_local MergeScratch scratch;
  return scratch;
}

}  // namespace

std::vector<TraceNode> inter_merge(std::vector<TraceNode> a,
                                   std::vector<TraceNode> b,
                                   PerfCounters* pc) {
  if (a.empty()) return b;
  if (b.empty()) return a;

  const bool fast = fast_path_enabled();
  if (fast) {
    for (auto& node : a)
      if (!node.hashed()) node.rehash_deep();
    for (auto& node : b)
      if (!node.hashed()) node.rehash_deep();
  }

  const std::size_t na = a.size();
  const std::size_t nb = b.size();

  // Dedup zip: weak-scaled SPMD ranks produce structurally identical
  // sequences, so sibling subtrees usually align 1:1. When the sides have
  // equal length and every diagonal pair is mergeable (hash precheck makes
  // a mismatch O(1)), the LCS backtrack below would take the mergeable
  // branch at every step anyway — zip diagonally and skip the O(n^2) table.
  if (fast && scale_options().dedup_merge && na == nb) {
    bool diagonal = true;
    for (std::size_t i = 0; i < na && diagonal; ++i)
      diagonal = nodes_mergeable(a[i], b[i], true, pc);
    if (diagonal) {
      if (pc != nullptr) ++pc->merge_zip_hits;
      std::vector<TraceNode> merged;
      merged.reserve(na);
      for (std::size_t i = 0; i < na; ++i) {
        TraceNode node = std::move(a[i]);
        merge_into(node, b[i]);
        merged.push_back(std::move(node));
      }
      return merged;
    }
  }

  // Mergeability memo shared between the DP fill and the backtrack pass:
  // the fill evaluates every pair once, the backtrack replays its path from
  // the memo instead of re-running the structural comparison.
  MergeScratch local;
  MergeScratch& scratch = scale_options().arena ? merge_scratch() : local;
  std::vector<std::uint8_t>& memo = scratch.memo;
  if (fast) memo.assign(na * nb, 0);
  auto mergeable = [&](std::size_t i, std::size_t j) {
    if (!fast) return nodes_mergeable(a[i], b[j], false, pc);
    std::uint8_t& cell = memo[i * nb + j];
    if (cell != 0) {
      if (pc != nullptr) ++pc->merge_memo_hits;
      return cell == 1;
    }
    const bool ok = nodes_mergeable(a[i], b[j], true, pc);
    cell = ok ? 1 : 2;
    return ok;
  };

  // LCS table over mergeability (shape + endpoint generalization).
  std::vector<std::uint32_t>& dp = scratch.dp;
  dp.assign((na + 1) * (nb + 1), 0);
  auto at = [&dp, nb](std::size_t i, std::size_t j) -> std::uint32_t& {
    return dp[i * (nb + 1) + j];
  };
  for (std::size_t i = na; i-- > 0;) {
    for (std::size_t j = nb; j-- > 0;) {
      if (mergeable(i, j)) {
        at(i, j) = at(i + 1, j + 1) + 1;
      } else {
        at(i, j) = std::max(at(i + 1, j), at(i, j + 1));
      }
    }
  }

  std::vector<TraceNode> merged;
  merged.reserve(na + nb);
  std::size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (mergeable(i, j)) {
      TraceNode node = std::move(a[i]);
      merge_into(node, b[j]);
      merged.push_back(std::move(node));
      ++i;
      ++j;
    } else if (at(i + 1, j) >= at(i, j + 1)) {
      merged.push_back(std::move(a[i]));
      ++i;
    } else {
      merged.push_back(std::move(b[j]));
      ++j;
    }
  }
  for (; i < na; ++i) merged.push_back(std::move(a[i]));
  for (; j < nb; ++j) merged.push_back(std::move(b[j]));
  return merged;
}

void append_online(std::vector<TraceNode>& online,
                   std::vector<TraceNode> interval, int max_window,
                   PerfCounters* pc) {
  for (auto& node : interval) {
    online.push_back(std::move(node));
    fold_tail(online, max_window, pc);
  }
}

}  // namespace cham::trace
