// Location-independent endpoint encoding.
//
// ScalaTrace property (1): communication endpoints in SPMD codes differ per
// rank but are usually at a constant offset from the caller's rank, so they
// are stored as ±c relative to the current MPI task id. This is what lets a
// single lead trace be replayed by every member of its cluster: each
// replaying rank re-resolves the endpoints relative to its own id.
#pragma once

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace cham::trace {

struct Endpoint {
  enum class Kind : std::uint8_t {
    kNone,      ///< op has no such endpoint (e.g. barrier src)
    kRelative,  ///< peer = self + value (mod world as needed)
    kAny,       ///< wildcard (MPI_ANY_SOURCE)
    kAbsolute,  ///< peer = value (e.g. collective roots, master rank)
  };

  Kind kind = Kind::kNone;
  std::int32_t value = 0;

  static Endpoint none() { return {}; }
  static Endpoint any() { return {Kind::kAny, 0}; }
  static Endpoint absolute(sim::Rank r) {
    return {Kind::kAbsolute, static_cast<std::int32_t>(r)};
  }
  static Endpoint relative(sim::Rank self, sim::Rank peer) {
    return {Kind::kRelative, static_cast<std::int32_t>(peer - self)};
  }

  /// Resolve against a (possibly different) rank. `nprocs` clamps/wraps so
  /// transposed replays of boundary ranks stay inside the world.
  [[nodiscard]] sim::Rank resolve(sim::Rank self, int nprocs) const {
    switch (kind) {
      case Kind::kNone:
      case Kind::kAny:
        return sim::kAnySource;
      case Kind::kAbsolute:
        return static_cast<sim::Rank>(value);
      case Kind::kRelative: {
        const int raw = self + value;
        const int wrapped = ((raw % nprocs) + nprocs) % nprocs;
        return static_cast<sim::Rank>(wrapped);
      }
    }
    return sim::kAnySource;
  }

  /// Feature value for SRC/DEST clustering signatures: structurally close
  /// endpoints yield numerically close features, so distance-based
  /// clustering (K-farthest / K-medoid) groups ranks with similar
  /// communication geometry. The bias keeps negative offsets unsigned; the
  /// kScale factor keeps one-offset differences visible after the
  /// overflow-safe *integer* averaging over many events (a difference of a
  /// few offsets among dozens of events must not round to zero).
  [[nodiscard]] std::uint64_t feature() const {
    constexpr std::uint64_t kBias = 1ull << 32;
    constexpr std::uint64_t kScale = 1ull << 12;
    switch (kind) {
      case Kind::kNone:
        return 0;
      case Kind::kAny:
        return kBias << 16;  // far away from any concrete offset
      case Kind::kAbsolute:
        return (kBias << 8) +
               kScale * static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(value) + (1 << 20));
      case Kind::kRelative:
        return kBias + kScale * static_cast<std::uint64_t>(
                                    static_cast<std::int64_t>(value) + (1 << 20));
    }
    return 0;
  }

  bool operator==(const Endpoint& other) const = default;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace cham::trace
