#include "trace/ranklist.hpp"

#include <algorithm>
#include <sstream>

#include "support/logging.hpp"

namespace cham::trace {

std::size_t RankSection::count() const {
  std::size_t n = 1;
  for (const auto& [iters, stride] : dims) {
    (void)stride;
    n *= static_cast<std::size_t>(iters);
  }
  return n;
}

void RankSection::expand_into(std::vector<sim::Rank>& out) const {
  std::vector<sim::Rank> current{start};
  for (const auto& [iters, stride] : dims) {
    std::vector<sim::Rank> next;
    next.reserve(current.size() * static_cast<std::size_t>(iters));
    for (sim::Rank base : current)
      for (int k = 0; k < iters; ++k) next.push_back(base + k * stride);
    current = std::move(next);
  }
  out.insert(out.end(), current.begin(), current.end());
}

std::string RankSection::to_string() const {
  std::ostringstream os;
  os << '<' << dims.size() << ' ' << start;
  for (const auto& [iters, stride] : dims) os << ' ' << iters << ' ' << stride;
  os << '>';
  return os.str();
}

RankList RankList::single(sim::Rank r) {
  RankList list;
  list.members_.push_back(r);
  return list;
}

RankList RankList::from_ranks(std::vector<sim::Rank> ranks) {
  std::sort(ranks.begin(), ranks.end());
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
  RankList list;
  list.members_ = std::move(ranks);
  return list;
}

void RankList::merge(const RankList& other) {
  std::vector<sim::Rank> merged;
  merged.reserve(members_.size() + other.members_.size());
  std::set_union(members_.begin(), members_.end(), other.members_.begin(),
                 other.members_.end(), std::back_inserter(merged));
  members_ = std::move(merged);
}

bool RankList::contains(sim::Rank r) const {
  return std::binary_search(members_.begin(), members_.end(), r);
}

sim::Rank RankList::first() const {
  CHAM_CHECK_MSG(!members_.empty(), "first() on empty ranklist");
  return members_.front();
}

namespace {

/// Longest arithmetic progression starting at index `from` in the sorted,
/// unique member vector. Returns (length, stride); length >= 1.
std::pair<int, int> run_at(const std::vector<sim::Rank>& m, std::size_t from) {
  if (from + 1 >= m.size()) return {1, 1};
  const int stride = m[from + 1] - m[from];
  int len = 2;
  while (from + static_cast<std::size_t>(len) < m.size() &&
         m[from + static_cast<std::size_t>(len)] -
                 m[from + static_cast<std::size_t>(len) - 1] ==
             stride) {
    ++len;
  }
  return {len, stride};
}

}  // namespace

std::vector<RankSection> RankList::sections() const {
  // Pass 1: factor into maximal 1-D arithmetic progressions.
  std::vector<RankSection> runs;
  std::size_t i = 0;
  while (i < members_.size()) {
    auto [len, stride] = run_at(members_, i);
    RankSection sec;
    sec.start = members_[i];
    if (len > 1) sec.dims.push_back({len, stride});
    runs.push_back(std::move(sec));
    i += static_cast<std::size_t>(len);
  }
  // Pass 2: group consecutive runs with identical shape and equally spaced
  // starts into 2-D sections (e.g. the interior of a 2-D process grid).
  std::vector<RankSection> out;
  std::size_t r = 0;
  while (r < runs.size()) {
    std::size_t g = r + 1;
    if (g < runs.size() && runs[g].dims == runs[r].dims) {
      const int outer = runs[g].start - runs[r].start;
      while (g + 1 < runs.size() && runs[g + 1].dims == runs[r].dims &&
             runs[g + 1].start - runs[g].start == outer) {
        ++g;
      }
      const int group = static_cast<int>(g - r + 1);
      if (group >= 2 && outer > 0) {
        RankSection sec;
        sec.start = runs[r].start;
        sec.dims.push_back({group, outer});
        for (const auto& d : runs[r].dims) sec.dims.push_back(d);
        out.push_back(std::move(sec));
        r = g + 1;
        continue;
      }
    }
    out.push_back(runs[r]);
    ++r;
  }
  return out;
}

std::size_t RankList::footprint_bytes() const {
  // Serialized section: start (4) + dim count (2) + 8 per (iters, stride).
  std::size_t bytes = 2;  // section count
  for (const auto& sec : sections()) bytes += 6 + 8 * sec.dims.size();
  return bytes;
}

std::string RankList::to_string() const {
  std::ostringstream os;
  bool first_section = true;
  for (const auto& sec : sections()) {
    if (!first_section) os << ' ';
    os << sec.to_string();
    first_section = false;
  }
  return os.str();
}

}  // namespace cham::trace
