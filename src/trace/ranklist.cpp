#include "trace/ranklist.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "analysis/race/annotate.hpp"
#include "support/arena.hpp"
#include "support/hash.hpp"
#include "support/logging.hpp"
#include "trace/scale.hpp"

namespace cham::trace {

std::size_t RankSection::count() const {
  std::size_t n = 1;
  for (const auto& [iters, stride] : dims) {
    (void)stride;
    n *= static_cast<std::size_t>(iters);
  }
  return n;
}

void RankSection::expand_into(std::vector<sim::Rank>& out) const {
  std::vector<sim::Rank> current{start};
  for (const auto& [iters, stride] : dims) {
    std::vector<sim::Rank> next;
    next.reserve(current.size() * static_cast<std::size_t>(iters));
    for (sim::Rank base : current)
      for (int k = 0; k < iters; ++k) next.push_back(base + k * stride);
    current = std::move(next);
  }
  out.insert(out.end(), current.begin(), current.end());
}

std::string RankSection::to_string() const {
  std::ostringstream os;
  os << '<' << dims.size() << ' ' << start;
  for (const auto& [iters, stride] : dims) os << ' ' << iters << ' ' << stride;
  os << '>';
  return os.str();
}

namespace {

/// Longest arithmetic progression starting at index `from` in the sorted,
/// unique member vector. Returns (length, stride); length >= 1.
std::pair<int, int> run_at(const std::vector<sim::Rank>& m, std::size_t from) {
  if (from + 1 >= m.size()) return {1, 1};
  const int stride = m[from + 1] - m[from];
  int len = 2;
  while (from + static_cast<std::size_t>(len) < m.size() &&
         m[from + static_cast<std::size_t>(len)] -
                 m[from + static_cast<std::size_t>(len) - 1] ==
             stride) {
    ++len;
  }
  return {len, stride};
}

/// Pass 2 of the factorization, shared by the dense and sparse paths:
/// group consecutive runs with identical shape and equally spaced starts
/// into 2-D sections (e.g. the interior of a 2-D process grid).
std::vector<RankSection> group_runs(std::vector<RankSection> runs) {
  std::vector<RankSection> out;
  std::size_t r = 0;
  while (r < runs.size()) {
    std::size_t g = r + 1;
    if (g < runs.size() && runs[g].dims == runs[r].dims) {
      const int outer = runs[g].start - runs[r].start;
      while (g + 1 < runs.size() && runs[g + 1].dims == runs[r].dims &&
             runs[g + 1].start - runs[g].start == outer) {
        ++g;
      }
      const int group = static_cast<int>(g - r + 1);
      if (group >= 2 && outer > 0) {
        RankSection sec;
        sec.start = runs[r].start;
        sec.dims.push_back({group, outer});
        for (const auto& d : runs[r].dims) sec.dims.push_back(d);
        out.push_back(std::move(sec));
        r = g + 1;
        continue;
      }
    }
    out.push_back(runs[r]);
    ++r;
  }
  return out;
}

/// Streaming builder producing the same greedy run decomposition run_at
/// yields on the materialized member vector: a singleton run adopts the
/// next member unconditionally (fixing the stride), a longer run extends
/// only on a matching stride. push_run() feeds a whole arithmetic
/// progression in O(1) amortized instead of member-by-member.
class RunBuilder {
 public:
  void push(sim::Rank r) {
    if (cur_.len == 0) {
      cur_ = {r, 1, 1};
    } else if (cur_.len == 1) {
      cur_.stride = r - cur_.start;
      cur_.len = 2;
    } else if (r - cur_.back() == cur_.stride) {
      ++cur_.len;
    } else {
      emit();
      cur_ = {r, 1, 1};
    }
  }

  void push_run(const RankRun& r) {
    if (r.len <= 0) return;
    if (r.len == 1) {
      push(r.start);
      return;
    }
    if (cur_.len == 0) {
      cur_ = r;
      return;
    }
    if (cur_.len == 1) {
      // The second member always joins; the rest of `r` follows only if its
      // stride matches the one just formed.
      cur_.stride = r.start - cur_.start;
      cur_.len = 2;
      if (r.stride == cur_.stride) {
        cur_.len += r.len - 1;
      } else {
        emit();
        cur_ = {r.start + r.stride, r.len - 1, r.stride};
      }
      return;
    }
    if (r.start - cur_.back() == cur_.stride) {
      if (r.stride == cur_.stride) {
        cur_.len += r.len;
      } else {
        ++cur_.len;  // first member of r extends the current run...
        emit();      // ...then the stride changes, ending it
        cur_ = {r.start + r.stride, r.len - 1, r.stride};
      }
      return;
    }
    emit();
    cur_ = r;
  }

  std::vector<RankRun> take() {
    if (cur_.len > 0) emit();
    return std::move(runs_);
  }

 private:
  void emit() {
    if (cur_.len == 1) cur_.stride = 1;  // canonical singleton form
    runs_.push_back(cur_);
    cur_ = RankRun{0, 0, 0};
  }

  std::vector<RankRun> runs_;
  RankRun cur_{0, 0, 0};
};

std::uint64_t hash_runs(const std::vector<RankRun>& runs) {
  std::uint64_t h = support::fnv1a64("ranklist.runs");
  for (const RankRun& r : runs) {
    h = support::hash_combine(
        h, support::mix64(static_cast<std::uint32_t>(r.start)));
    h = support::hash_combine(
        h, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.len))
            << 32) |
               static_cast<std::uint32_t>(r.stride));
  }
  return h;
}

std::vector<RankSection> sections_of_runs(const RankRun* runs,
                                          std::uint32_t nruns) {
  std::vector<RankSection> pass1;
  pass1.reserve(nruns);
  for (std::uint32_t i = 0; i < nruns; ++i) {
    RankSection sec;
    sec.start = runs[i].start;
    if (runs[i].len > 1) sec.dims.push_back({runs[i].len, runs[i].stride});
    pass1.push_back(std::move(sec));
  }
  return group_runs(std::move(pass1));
}

std::size_t footprint_of_sections(const std::vector<RankSection>& sections) {
  // Serialized section: start (4) + dim count (2) + 8 per (iters, stride);
  // the leading section count is 4 bytes (widened from 2 for 64k ranks).
  std::size_t bytes = 4;
  for (const auto& sec : sections) bytes += 6 + 8 * sec.dims.size();
  return bytes;
}

// ---------------------------------------------------------------------------
// Intern table. One global table shared by every rank (and, under the
// sharded engine, by real threads). Same ChamRace treatment as the callsite
// table: interned-only (insert-if-absent, entries immutable once present),
// so it is modelled as an atomic container via RACE_ATOMIC rather than as a
// ScopedSync region — see callsite.cpp for the rationale.
// ---------------------------------------------------------------------------

struct InternTable {
  std::mutex mutex;
  support::Arena arena;
  // hash -> entries with that hash (collisions resolved by run compare).
  std::unordered_map<std::uint64_t, std::vector<const detail::InternedRuns*>>
      by_hash;
  // Pre-installed singleton entries for ranks [0, world); grown only by
  // ensure_world, which runs before fibers start.
  std::vector<const detail::InternedRuns*> singletons;
  // (lo, hi) pointer pair -> union result. Merge trees union the same pair
  // of member sets once per fold level; the memo collapses repeats to O(1).
  std::unordered_map<std::uint64_t, const detail::InternedRuns*> union_memo;
  std::vector<std::unique_ptr<detail::InternedRuns>> entries;

  std::size_t singleton_hits = 0;
  std::size_t intern_hits = 0;
  std::size_t union_memo_hits = 0;
  std::size_t union_computed = 0;
};

InternTable& intern_table() {
  static InternTable* table = new InternTable();
  return *table;
}

std::uint64_t pair_key(const void* a, const void* b) {
  const auto lo = reinterpret_cast<std::uintptr_t>(a < b ? a : b);
  const auto hi = reinterpret_cast<std::uintptr_t>(a < b ? b : a);
  return support::hash_combine(support::mix64(lo), support::mix64(hi));
}

bool same_runs(const detail::InternedRuns& e,
               const std::vector<RankRun>& runs) {
  if (e.nruns != runs.size()) return false;
  return std::equal(runs.begin(), runs.end(), e.runs);
}

/// Intern canonical runs; table mutex must be held.
const detail::InternedRuns* intern_locked(InternTable& t,
                                          std::vector<RankRun>&& runs) {
  const std::uint64_t h = hash_runs(runs);
  auto& bucket = t.by_hash[h];
  for (const detail::InternedRuns* e : bucket) {
    if (same_runs(*e, runs)) {
      ++t.intern_hits;
      return e;
    }
  }
  auto entry = std::make_unique<detail::InternedRuns>();
  entry->nruns = static_cast<std::uint32_t>(runs.size());
  RankRun* stored = t.arena.allocate_array<RankRun>(runs.size());
  std::copy(runs.begin(), runs.end(), stored);
  entry->runs = stored;
  entry->hash = h;
  std::size_t count = 0;
  for (const RankRun& r : runs) count += static_cast<std::size_t>(r.len);
  entry->count = count;
  entry->sections = sections_of_runs(entry->runs, entry->nruns);
  entry->footprint = footprint_of_sections(entry->sections);
  const detail::InternedRuns* raw = entry.get();
  bucket.push_back(raw);
  t.entries.push_back(std::move(entry));
  return raw;
}

const detail::InternedRuns* intern_runs(std::vector<RankRun>&& runs) {
  InternTable& t = intern_table();
  RACE_ATOMIC("trace.ranklist_intern", 0, 0);
  const std::lock_guard<std::mutex> lock(t.mutex);
  return intern_locked(t, std::move(runs));
}

const detail::InternedRuns* intern_singleton(sim::Rank r) {
  InternTable& t = intern_table();
  RACE_ATOMIC("trace.ranklist_intern", 0, 0);
  const std::lock_guard<std::mutex> lock(t.mutex);
  if (r >= 0 && static_cast<std::size_t>(r) < t.singletons.size()) {
    ++t.singleton_hits;
    return t.singletons[static_cast<std::size_t>(r)];
  }
  return intern_locked(t, {RankRun{r, 1, 1}});
}

/// Union of two interned member sets, streamed run-by-run: a run whose
/// remainder ends before the other side's next member is forwarded whole
/// (O(1) via push_run), so far-apart sets union in O(runs), not O(members).
std::vector<RankRun> union_runs(const detail::InternedRuns& a,
                                const detail::InternedRuns& b) {
  RunBuilder out;
  std::uint32_t ia = 0, ib = 0;
  std::int32_t ka = 0, kb = 0;  // position inside the current run
  const auto cur = [](const detail::InternedRuns& e, std::uint32_t i,
                      std::int32_t k) {
    return e.runs[i].start + k * e.runs[i].stride;
  };
  while (ia < a.nruns && ib < b.nruns) {
    const sim::Rank va = cur(a, ia, ka);
    const sim::Rank vb = cur(b, ib, kb);
    if (va == vb) {
      out.push(va);
      if (++ka == a.runs[ia].len) { ++ia; ka = 0; }
      if (++kb == b.runs[ib].len) { ++ib; kb = 0; }
    } else if (va < vb) {
      const RankRun& ra = a.runs[ia];
      if (ra.back() < vb) {  // whole remainder precedes b's next member
        out.push_run({va, ra.len - ka, ra.stride});
        ++ia; ka = 0;
      } else {
        out.push(va);
        if (++ka == ra.len) { ++ia; ka = 0; }
      }
    } else {
      const RankRun& rb = b.runs[ib];
      if (rb.back() < va) {
        out.push_run({vb, rb.len - kb, rb.stride});
        ++ib; kb = 0;
      } else {
        out.push(vb);
        if (++kb == rb.len) { ++ib; kb = 0; }
      }
    }
  }
  while (ia < a.nruns) {
    out.push_run({cur(a, ia, ka), a.runs[ia].len - ka, a.runs[ia].stride});
    ++ia; ka = 0;
  }
  while (ib < b.nruns) {
    out.push_run({cur(b, ib, kb), b.runs[ib].len - kb, b.runs[ib].stride});
    ++ib; kb = 0;
  }
  return out.take();
}

const detail::InternedRuns* union_interned(const detail::InternedRuns* a,
                                           const detail::InternedRuns* b) {
  if (a == b) return a;
  InternTable& t = intern_table();
  RACE_ATOMIC("trace.ranklist_intern", 0, 0);
  const std::lock_guard<std::mutex> lock(t.mutex);
  const std::uint64_t key = pair_key(a, b);
  if (const auto it = t.union_memo.find(key); it != t.union_memo.end()) {
    ++t.union_memo_hits;
    return it->second;
  }
  ++t.union_computed;
  const detail::InternedRuns* result = intern_locked(t, union_runs(*a, *b));
  t.union_memo.emplace(key, result);
  return result;
}

std::vector<RankRun> runs_of_members(const std::vector<sim::Rank>& members) {
  RunBuilder b;
  for (const sim::Rank r : members) b.push(r);
  return b.take();
}

}  // namespace

RankList RankList::single(sim::Rank r) {
  RankList list;
  if (scale_options().sparse_ranklists) {
    list.interned_ = intern_singleton(r);
  } else {
    list.members_.push_back(r);
  }
  return list;
}

RankList RankList::from_ranks(std::vector<sim::Rank> ranks) {
  std::sort(ranks.begin(), ranks.end());
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
  RankList list;
  if (ranks.empty()) return list;
  if (scale_options().sparse_ranklists) {
    list.interned_ = intern_runs(runs_of_members(ranks));
  } else {
    list.members_ = std::move(ranks);
  }
  return list;
}

RankList RankList::from_runs(std::vector<RankRun> runs) {
  RankList list;
  if (runs.empty()) return list;
  // Canonicalize boundaries (adjacent runs may fuse); O(runs) via push_run.
  RunBuilder b;
  for (const RankRun& r : runs) b.push_run(r);
  list.interned_ = intern_runs(b.take());
  return list;
}

void RankList::merge(const RankList& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  if (interned_ != nullptr && other.interned_ != nullptr) {
    interned_ = union_interned(interned_, other.interned_);
    return;
  }
  if (interned_ == nullptr && other.interned_ == nullptr) {
    // Seed path, unchanged: dense set_union.
    std::vector<sim::Rank> merged;
    merged.reserve(members_.size() + other.members_.size());
    std::set_union(members_.begin(), members_.end(), other.members_.begin(),
                   other.members_.end(), std::back_inserter(merged));
    members_ = std::move(merged);
    return;
  }
  // Mixed modes only occur across a scale-options flip (tests); union the
  // materialized members and re-store under the current options.
  std::vector<sim::Rank> mine = members();
  std::vector<sim::Rank> theirs = other.members();
  std::vector<sim::Rank> merged;
  merged.reserve(mine.size() + theirs.size());
  std::set_union(mine.begin(), mine.end(), theirs.begin(), theirs.end(),
                 std::back_inserter(merged));
  *this = from_ranks(std::move(merged));
}

RankList RankList::intersect(const RankList& a, const RankList& b) {
  std::vector<sim::Rank> out;
  const RankList& small = a.count() <= b.count() ? a : b;
  const RankList& large = a.count() <= b.count() ? b : a;
  small.for_each_member([&](sim::Rank r) {
    if (large.contains(r)) out.push_back(r);
  });
  return from_ranks(std::move(out));
}

bool RankList::contains(sim::Rank r) const {
  if (interned_ == nullptr)
    return std::binary_search(members_.begin(), members_.end(), r);
  // Binary search for the last run starting at or before r.
  const RankRun* runs = interned_->runs;
  std::uint32_t lo = 0, hi = interned_->nruns;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (runs[mid].start <= r) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return false;
  const RankRun& run = runs[lo - 1];
  const std::int64_t off = static_cast<std::int64_t>(r) - run.start;
  return off >= 0 && off % run.stride == 0 && off / run.stride < run.len;
}

std::vector<sim::Rank> RankList::members() const {
  if (interned_ == nullptr) return members_;
  std::vector<sim::Rank> out;
  out.reserve(interned_->count);
  for_each_member([&](sim::Rank r) { out.push_back(r); });
  return out;
}

sim::Rank RankList::first() const {
  CHAM_CHECK_MSG(!empty(), "first() on empty ranklist");
  return interned_ != nullptr ? interned_->runs[0].start : members_.front();
}

std::vector<RankSection> RankList::sections() const {
  if (interned_ != nullptr) return interned_->sections;
  // Pass 1: factor into maximal 1-D arithmetic progressions.
  std::vector<RankSection> runs;
  std::size_t i = 0;
  while (i < members_.size()) {
    auto [len, stride] = run_at(members_, i);
    RankSection sec;
    sec.start = members_[i];
    if (len > 1) sec.dims.push_back({len, stride});
    runs.push_back(std::move(sec));
    i += static_cast<std::size_t>(len);
  }
  return group_runs(std::move(runs));
}

std::size_t RankList::footprint_bytes() const {
  if (interned_ != nullptr) return interned_->footprint;
  return footprint_of_sections(sections());
}

std::string RankList::to_string() const {
  std::ostringstream os;
  bool first_section = true;
  for (const auto& sec : sections()) {
    if (!first_section) os << ' ';
    os << sec.to_string();
    first_section = false;
  }
  return os.str();
}

bool RankList::operator==(const RankList& other) const {
  if (interned_ != nullptr && other.interned_ != nullptr)
    return interned_ == other.interned_;  // canonical: same set <=> same entry
  if (interned_ == nullptr && other.interned_ == nullptr)
    return members_ == other.members_;
  // Mixed modes (tests flipping scale options): compare member streams.
  if (count() != other.count()) return false;
  return members() == other.members();
}

RankListInternStats ranklist_intern_stats() {
  InternTable& t = intern_table();
  RACE_ATOMIC("trace.ranklist_intern", 0, 0);
  const std::lock_guard<std::mutex> lock(t.mutex);
  RankListInternStats stats;
  stats.entries = t.entries.size();
  stats.singleton_hits = t.singleton_hits;
  stats.intern_hits = t.intern_hits;
  stats.union_memo_hits = t.union_memo_hits;
  stats.union_computed = t.union_computed;
  stats.arena_bytes = t.arena.bytes_reserved();
  return stats;
}

void ranklist_intern_ensure_world(int nprocs) {
  InternTable& t = intern_table();
  RACE_ATOMIC("trace.ranklist_intern", 0, 0);
  const std::lock_guard<std::mutex> lock(t.mutex);
  while (t.singletons.size() < static_cast<std::size_t>(nprocs)) {
    const auto r = static_cast<sim::Rank>(t.singletons.size());
    t.singletons.push_back(intern_locked(t, {RankRun{r, 1, 1}}));
  }
}

void ranklist_intern_reset() {
  InternTable& t = intern_table();
  RACE_ATOMIC("trace.ranklist_intern", 0, 0);
  const std::lock_guard<std::mutex> lock(t.mutex);
  t.by_hash.clear();
  t.singletons.clear();
  t.union_memo.clear();
  t.entries.clear();
  t.arena.reset();
  t.singleton_hits = 0;
  t.intern_hits = 0;
  t.union_memo_hits = 0;
  t.union_computed = 0;
}

}  // namespace cham::trace
