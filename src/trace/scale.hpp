// ChamScale: process-wide switches for the 64k-rank scaling paths.
//
// Three optimizations push the protocol from paper scale (hundreds of
// ranks) to the 16k/64k roadmap scale, and each one is independently
// toggleable so the differential test harness (tests/core/test_scale_diff,
// bench/bench_scale) can prove the optimized paths byte-identical to the
// seed semantics on the same inputs:
//
//   * sparse_ranklists — RankList stores interval runs in a global intern
//     table instead of a dense member vector: identical member sets are
//     stored once, compared by id, and unions of previously-seen pairs are
//     memoized (docs/PERF.md, DESIGN.md "Sparse ranklists").
//   * dedup_merge — inter_merge recognizes structurally identical per-rank
//     trace sequences by their merge hashes and zips them diagonally,
//     skipping the O(n^2) LCS table entirely (the common case in a weak-
//     scaled SPMD reduction, where sibling subtrees hold the same shape).
//   * arena — bulk storage: intern-table entries live in a chunked arena
//     (support/arena.hpp) torn down wholesale, and inter_merge reuses a
//     pooled scratch block for its DP/memo tables instead of reallocating
//     per fold.
//
// Like trace::set_fast_path_enabled, these are plain process-wide globals:
// flip them before the engine runs, never mid-fold. All default ON — OFF
// restores the pre-ChamScale code paths bit-for-bit.
#pragma once

namespace cham::trace {

struct ScaleOptions {
  bool sparse_ranklists = true;
  bool dedup_merge = true;
  bool arena = true;

  bool operator==(const ScaleOptions& other) const = default;
};

[[nodiscard]] ScaleOptions scale_options();
void set_scale_options(const ScaleOptions& options);

/// Convenience for tests and benches: everything on / everything off.
inline constexpr ScaleOptions kScaleAllOn{true, true, true};
inline constexpr ScaleOptions kScaleAllOff{false, false, false};

/// RAII guard that restores the previous options (test/bench hygiene).
class ScaleOptionsGuard {
 public:
  explicit ScaleOptionsGuard(const ScaleOptions& options)
      : saved_(scale_options()) {
    set_scale_options(options);
  }
  ~ScaleOptionsGuard() { set_scale_options(saved_); }
  ScaleOptionsGuard(const ScaleOptionsGuard&) = delete;
  ScaleOptionsGuard& operator=(const ScaleOptionsGuard&) = delete;

 private:
  ScaleOptions saved_;
};

}  // namespace cham::trace
