// Communication-group encoding: ScalaTrace's ranklist.
//
// ScalaTrace property (3): participant groups are stored as EBNF
// <dimension, start_rank, iteration_length, stride>+ sections, giving a
// near-constant-size encoding of the regular rank patterns SPMD codes
// produce (rows, columns, sub-lattices).
//
// Two storage modes share this interface (trace/scale.hpp):
//
//   * Dense (seed semantics, sparse_ranklists off): the exact member set as
//     a sorted unique vector, lazily factored into sections for
//     serialization — the pre-ChamScale representation, kept bit-for-bit.
//   * Sparse (sparse_ranklists on): the canonical greedy run factorization
//     <start, length, stride>+ held in a global intern table. Identical
//     member sets share one interned entry, equality is a pointer compare,
//     unions of previously-seen pairs come from a memo, and the factored
//     sections/footprint are computed once per distinct set. This is what
//     keeps the protocol's per-rank cluster-table copies O(clusters)
//     instead of O(members) at 64k ranks.
//
// The sparse runs are exactly pass 1 of the dense factorization (maximal
// arithmetic progressions, greedily from the lowest member), so both modes
// produce identical sections() and identical wire bytes — the property the
// `ctest -L scale` differential suites pin down.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace cham::trace {

/// One <dim, start, (iters, stride)...> section.
struct RankSection {
  sim::Rank start = 0;
  /// Outer-to-inner (iters, stride) pairs; empty means the singleton {start}.
  std::vector<std::pair<int, int>> dims;

  [[nodiscard]] std::size_t count() const;
  void expand_into(std::vector<sim::Rank>& out) const;
  [[nodiscard]] std::string to_string() const;
  bool operator==(const RankSection& other) const = default;
};

/// One maximal arithmetic progression of members: start, start + stride,
/// ..., start + (len-1) * stride. Canonical form: len >= 1, stride >= 1,
/// and singleton runs normalize stride to 1.
struct RankRun {
  sim::Rank start = 0;
  std::int32_t len = 1;
  std::int32_t stride = 1;

  [[nodiscard]] sim::Rank back() const { return start + (len - 1) * stride; }
  bool operator==(const RankRun& other) const = default;
};

namespace detail {

/// One interned member set: the canonical runs (stored in the interner's
/// arena), the member count, and the factored encoding cached once.
/// Immutable after interning; RankList holds these by pointer, so two lists
/// over the same member set compare equal in O(1).
struct InternedRuns {
  const RankRun* runs = nullptr;
  std::uint32_t nruns = 0;
  std::uint64_t hash = 0;
  std::size_t count = 0;
  std::size_t footprint = 0;
  std::vector<RankSection> sections;
};

}  // namespace detail

class RankList {
 public:
  RankList() = default;
  static RankList single(sim::Rank r);
  static RankList from_ranks(std::vector<sim::Rank> ranks);
  /// Build from sorted, pairwise-disjoint runs (the serializer's sparse
  /// decode path). Canonicalizes run boundaries in O(runs).
  static RankList from_runs(std::vector<RankRun> runs);

  /// Set union.
  void merge(const RankList& other);

  /// Set intersection (the property-test algebra; not a protocol hot path).
  [[nodiscard]] static RankList intersect(const RankList& a, const RankList& b);

  [[nodiscard]] bool contains(sim::Rank r) const;
  [[nodiscard]] std::size_t count() const {
    return interned_ != nullptr ? interned_->count : members_.size();
  }
  [[nodiscard]] bool empty() const { return count() == 0; }

  /// Materialized member vector, ascending. O(members) in sparse mode —
  /// use for_each_member (or runs()) on hot paths.
  [[nodiscard]] std::vector<sim::Rank> members() const;

  /// Visit members in ascending order without materializing them.
  /// `fn` returning bool stops early on false; void-returning fn visits all.
  template <typename Fn>
  void for_each_member(Fn&& fn) const {
    if (interned_ != nullptr) {
      for (std::uint32_t i = 0; i < interned_->nruns; ++i) {
        const RankRun& run = interned_->runs[i];
        for (std::int32_t k = 0; k < run.len; ++k) {
          if (!visit(fn, run.start + k * run.stride)) return;
        }
      }
      return;
    }
    for (const sim::Rank r : members_) {
      if (!visit(fn, r)) return;
    }
  }

  [[nodiscard]] sim::Rank first() const;

  /// The canonical run factorization (sparse mode only; empty span in
  /// dense mode — callers needing runs regardless should use sections()).
  [[nodiscard]] std::span<const RankRun> runs() const {
    if (interned_ == nullptr) return {};
    return {interned_->runs, interned_->nruns};
  }

  /// Opaque intern identity: non-null iff sparse, equal iff same member
  /// set. Exposed for the intern-table invariant tests and bench stats.
  [[nodiscard]] const void* intern_id() const { return interned_; }

  /// Greedy factorization into 1-D/2-D sections (the serialized form).
  [[nodiscard]] std::vector<RankSection> sections() const;

  /// Bytes the factored encoding occupies (drives Table IV space numbers).
  [[nodiscard]] std::size_t footprint_bytes() const;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const RankList& other) const;

 private:
  template <typename Fn>
  static bool visit(Fn&& fn, sim::Rank r) {
    if constexpr (std::is_void_v<decltype(fn(r))>) {
      fn(r);
      return true;
    } else {
      return static_cast<bool>(fn(r));
    }
  }

  // Exactly one of these is populated for a non-empty list: the dense
  // member vector (seed semantics) or the interned canonical runs.
  std::vector<sim::Rank> members_;
  const detail::InternedRuns* interned_ = nullptr;
};

/// Intern-table telemetry for bench_scale and the scale test suite.
struct RankListInternStats {
  std::size_t entries = 0;        ///< distinct member sets interned
  std::size_t singleton_hits = 0; ///< single() served from the world table
  std::size_t intern_hits = 0;    ///< intern() found an existing entry
  std::size_t union_memo_hits = 0;
  std::size_t union_computed = 0;
  std::size_t arena_bytes = 0;    ///< run storage held by the arena
};

[[nodiscard]] RankListInternStats ranklist_intern_stats();

/// Pre-install singleton entries for ranks [0, nprocs). Called once before
/// fibers start (tool constructors); makes RankList::single a table lookup.
void ranklist_intern_ensure_world(int nprocs);

/// Drop the whole intern table and its arena (bulk teardown between bench
/// runs / tests). Every sparse RankList must be dead — interned pointers
/// dangle after this.
void ranklist_intern_reset();

}  // namespace cham::trace
