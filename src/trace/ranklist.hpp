// Communication-group encoding: ScalaTrace's ranklist.
//
// ScalaTrace property (3): participant groups are stored as EBNF
// <dimension, start_rank, iteration_length, stride>+ sections, giving a
// near-constant-size encoding of the regular rank patterns SPMD codes
// produce (rows, columns, sub-lattices). We keep the exact member set for
// set algebra and lazily factor it into multi-dimensional sections for
// serialization and space accounting — the factored form is what makes the
// compressed trace size independent of P.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace cham::trace {

/// One <dim, start, (iters, stride)...> section.
struct RankSection {
  sim::Rank start = 0;
  /// Outer-to-inner (iters, stride) pairs; empty means the singleton {start}.
  std::vector<std::pair<int, int>> dims;

  [[nodiscard]] std::size_t count() const;
  void expand_into(std::vector<sim::Rank>& out) const;
  [[nodiscard]] std::string to_string() const;
  bool operator==(const RankSection& other) const = default;
};

class RankList {
 public:
  RankList() = default;
  static RankList single(sim::Rank r);
  static RankList from_ranks(std::vector<sim::Rank> ranks);

  /// Set union.
  void merge(const RankList& other);

  [[nodiscard]] bool contains(sim::Rank r) const;
  [[nodiscard]] std::size_t count() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  [[nodiscard]] const std::vector<sim::Rank>& members() const {
    return members_;
  }
  [[nodiscard]] sim::Rank first() const;

  /// Greedy factorization into 1-D/2-D sections (the serialized form).
  [[nodiscard]] std::vector<RankSection> sections() const;

  /// Bytes the factored encoding occupies (drives Table IV space numbers).
  [[nodiscard]] std::size_t footprint_bytes() const;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const RankList& other) const = default;

 private:
  std::vector<sim::Rank> members_;  // sorted, unique
};

}  // namespace cham::trace
