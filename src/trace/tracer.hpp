// ScalaTrace: the baseline tracing tool.
//
// Per rank it maintains an RSD/PRSD-compressed intra-node trace fed from
// the PMPI post hooks, with relative endpoint encoding and delta-time
// histograms. At MPI_Finalize all P ranks consolidate their traces in a
// reduction over a binomial radix tree rooted at rank 0 — the costly
// O(n^2 log P) step Chameleon attacks.
//
// Timing discipline: only pure-CPU segments (compression, signature and
// merge work) run inside SectionTimers. Blocking communication is never
// timed — on the fiber scheduler, thread CPU time advanced while blocked
// would belong to other ranks. Communication cost still shows up in the
// *virtual* clock, which the experiment harness reports separately.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/tool.hpp"
#include "support/timer.hpp"
#include "trace/callsite.hpp"
#include "trace/merge.hpp"
#include "trace/perf.hpp"
#include "trace/rsd.hpp"

namespace cham::sim {
class Pmpi;
}

namespace cham::trace {

struct TracerOptions {
  int max_window = 32;
  /// Plain ScalaTrace merges the global trace in MPI_Finalize; switch off
  /// to measure pure intra-node tracing.
  bool merge_at_finalize = true;
};

/// Per-rank tracing state (protected so Chameleon can drive it).
struct RankTraceState {
  explicit RankTraceState(int max_window, PerfCounters* perf = nullptr)
      : intra(max_window, perf) {}

  IntraTrace intra;
  double last_event_end = 0.0;
  double pre_vtime = 0.0;
  /// When false the rank observes events (signatures still computed) but
  /// stores nothing — Chameleon's non-lead behaviour in the L state.
  bool storing = true;
  std::uint64_t events_recorded = 0;
  std::uint64_t events_observed = 0;
  support::SectionTimer intra_timer;
  support::SectionTimer inter_timer;
};

/// Times a non-blocking tool section AND charges the elapsed time to the
/// rank's virtual clock: tool compute is real compute on the node, so it
/// must delay that rank (and, transitively, everyone who waits on it) —
/// this is what makes the aggregated virtual-time overhead reproduce the
/// paper's aggregated wall-clock overhead, including the P-wide wait for
/// the finalize-time merge chain.
class ChargedSection {
 public:
  ChargedSection(support::SectionTimer& timer, sim::Pmpi& pmpi);
  ~ChargedSection();
  ChargedSection(const ChargedSection&) = delete;
  ChargedSection& operator=(const ChargedSection&) = delete;

 private:
  support::SectionTimer& timer_;
  sim::Pmpi& pmpi_;
  double start_;
};

class ScalaTraceTool : public sim::Tool {
 public:
  ScalaTraceTool(int nprocs, CallSiteRegistry* stacks,
                 TracerOptions opts = {});

  void on_init(sim::Rank rank, sim::Pmpi& pmpi) override;
  void on_pre(sim::Rank rank, const sim::CallInfo& info,
              sim::Pmpi& pmpi) override;
  void on_post(sim::Rank rank, const sim::CallInfo& info,
               sim::Pmpi& pmpi) override;

  /// The consolidated global trace (valid at/after finalize; lives at the
  /// tool since rank 0 produced it).
  [[nodiscard]] const std::vector<TraceNode>& global_trace() const {
    return global_;
  }

  // --- aggregated statistics (sum over ranks) ---
  [[nodiscard]] double intra_seconds() const;
  [[nodiscard]] double inter_seconds() const;
  /// Hardware-independent inter-compression work: pairwise merge operations
  /// performed and compressed bytes shipped/merged across the whole run
  /// (summed over ranks). ScalaTrace performs P-1 merges at finalize;
  /// Chameleon (K-1) per re-clustering — the paper's O(n^2 log P) vs
  /// O(r n^2 log K) contrast.
  [[nodiscard]] std::uint64_t merge_operations() const;
  [[nodiscard]] std::uint64_t merge_bytes() const;
  [[nodiscard]] std::uint64_t events_recorded_total() const;
  [[nodiscard]] std::size_t rank_trace_bytes(sim::Rank r) const;
  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] const RankTraceState& rank_state(sim::Rank r) const {
    return state_.at(static_cast<std::size_t>(r));
  }

  /// Tool-wide fast-path counters, aggregated on demand from the per-rank
  /// counters (each rank's fiber only ever touches its own slot, so the hot
  /// paths stay free of cross-rank writes — a precondition for the sharded
  /// engine and what the ChamRace analyzer checks). The per-phase seconds
  /// fields are filled lazily from the section timers; derived tools add
  /// their clustering time.
  [[nodiscard]] virtual const PerfCounters& perf_counters() const;

 protected:
  RankTraceState& state(sim::Rank r) {
    return state_.at(static_cast<std::size_t>(r));
  }

  /// The calling rank's own counter slot. Hot-path writes go here, never to
  /// the aggregated perf_.
  PerfCounters& rank_perf(sim::Rank r) {
    return rank_perf_.at(static_cast<std::size_t>(r));
  }

  /// Build the event record for a completed call (relative endpoints,
  /// delta-time sample, singleton ranklist).
  [[nodiscard]] EventRecord make_record(sim::Rank rank,
                                        const sim::CallInfo& info,
                                        double delta) const;

  /// Hook points for derived tools (Chameleon, ACURDION).
  virtual void observe_event(sim::Rank rank, const EventRecord& record,
                             sim::Pmpi& pmpi);
  virtual void handle_marker_post(sim::Rank rank, sim::Pmpi& pmpi);
  virtual void handle_finalize(sim::Rank rank, sim::Pmpi& pmpi);

  /// Binomial-tree reduction of compressed traces over `participants`
  /// (sorted ascending; `self` must be a member). Returns the fully merged
  /// trace at participants[0], an empty vector elsewhere. Non-blocking CPU
  /// work is charged to each participant's inter_timer.
  std::vector<TraceNode> radix_merge(sim::Rank self,
                                     const std::vector<sim::Rank>& participants,
                                     std::vector<TraceNode> mine,
                                     sim::Pmpi& pmpi);

  int nprocs_;
  CallSiteRegistry* stacks_;
  TracerOptions opts_;
  /// One counter block per rank, written only by that rank's fiber.
  /// Declared before state_ (each RankTraceState's IntraTrace holds a
  /// pointer into it) and sized once in the constructor, never resized.
  std::vector<PerfCounters> rank_perf_;
  /// Aggregation scratch: perf_counters() sums rank_perf_ into it at report
  /// time. Mutable so the const accessor can fill it; never written on hot
  /// paths.
  mutable PerfCounters perf_;
  std::vector<RankTraceState> state_;
  std::vector<TraceNode> global_;
  /// Per-rank merge work (the receiving side of each pairwise fold).
  std::vector<std::uint64_t> rank_merge_ops_;
  std::vector<std::uint64_t> rank_merge_bytes_;
};

}  // namespace cham::trace
