// Binary trace (de)serialization.
//
// The wire format is what ranks ship up the radix tree during inter-node
// compression and what gets written as the final global trace file. It is
// exact: decode(encode(x)) reproduces x including ranklists (in factored
// section form) and delta-time histograms.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace cham::trace {

class ByteWriter {
 public:
  /// Pre-size the buffer (encoded_size_hint) so encoding a trace performs
  /// one allocation instead of a geometric growth series.
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);
  void bytes(const std::uint8_t* data, std::size_t len);

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();

  [[nodiscard]] bool exhausted() const { return pos_ == buf_.size(); }

  /// Copy out `n` raw bytes (bounds-checked; throws DecodeError short).
  std::vector<std::uint8_t> raw(std::size_t n);

  /// Bytes left to read. Decoders bound every length-prefixed allocation by
  /// this (each deferred element still occupies a known minimum encoding),
  /// so a hostile length field throws DecodeError before reserving memory.
  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void need(std::size_t n) const;
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

/// Thrown on malformed input.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void encode_ranklist(ByteWriter& w, const RankList& ranks);
RankList decode_ranklist(ByteReader& r);

/// Standalone, versioned ranklist image (golden-file format): a one-byte
/// format version followed by the section encoding. Decode rejects images
/// from future versions and trailing bytes.
std::vector<std::uint8_t> encode_ranklist_image(const RankList& ranks);
RankList decode_ranklist_image(const std::vector<std::uint8_t>& bytes);

/// Exact encoded sizes, used to reserve() writer buffers up front.
std::size_t encoded_size_hint(const RankList& ranks);
std::size_t encoded_size_hint(const TraceNode& node);
std::size_t encoded_size_hint(const std::vector<TraceNode>& nodes);

void encode_node(ByteWriter& w, const TraceNode& node);
TraceNode decode_node(ByteReader& r);

std::vector<std::uint8_t> encode_trace(const std::vector<TraceNode>& nodes);
std::vector<TraceNode> decode_trace(const std::vector<std::uint8_t>& bytes);

/// Schedule-invariant projection of the wire image: identical to
/// encode_trace except that each delta-time histogram contributes only its
/// sample count. The measured seconds (and the bin layout derived from
/// their range) come from ChargedSection, which bills *host* CPU time into
/// the virtual clock, so they legitimately differ run to run even for the
/// same schedule. The determinism audit digests this projection; everything
/// it keeps — structure, call sites, endpoints, ranklists, sample counts —
/// must be identical across scheduler seeds. Not decodable.
std::vector<std::uint8_t> encode_trace_structure(
    const std::vector<TraceNode>& nodes);

}  // namespace cham::trace
