// Performance counters for the compression fast path.
//
// The shape-hash fast path (docs/PERF.md) turns the fold/merge hot loops
// into hash-compare-then-verify. These counters expose how often the O(1)
// prechecks fire, how often they are wrong (hash collisions / endpoint
// mismatches), and how much wire traffic the reductions move — the raw
// material for `chamtrace run --perf` and bench_hotpath's JSON trajectory.
//
// Tools keep one PerfCounters block *per rank*, written only by that
// rank's fiber, and aggregate on demand at report time. A single shared
// instance would be an unordered write-write conflict the moment two
// ranks run concurrently — the ChamRace analyzer (docs/RACE.md) verifies
// the per-rank discipline ahead of the sharded engine.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cham::obs {
class MetricsRegistry;
}

namespace cham::trace {

struct PerfCounters {
  // --- intra-node folding (fold_tail) ---
  std::uint64_t fold_windows_tested = 0;  ///< windows past the cheap length checks
  std::uint64_t fold_hash_rejects = 0;    ///< rejected by the O(1) window hash
  std::uint64_t fold_hash_hits = 0;       ///< window hash matched, deep verify ran
  std::uint64_t fold_false_positives = 0; ///< hash matched but shapes differed
  std::uint64_t fold_deep_compares = 0;   ///< full window comparisons performed
  std::uint64_t folds_performed = 0;      ///< successful fold rules applied

  // --- inter-node merging (inter_merge) ---
  std::uint64_t merge_prechecks = 0;      ///< merge-hash prechecks evaluated
  std::uint64_t merge_hash_rejects = 0;   ///< pairs rejected by hash in O(1)
  std::uint64_t merge_deep_compares = 0;  ///< pairs that reached the deep check
  std::uint64_t merge_deep_rejects = 0;   ///< deep check failed after hash match
  std::uint64_t merge_memo_hits = 0;      ///< LCS cells answered from the memo
  std::uint64_t merge_zip_hits = 0;       ///< inter_merges zipped diagonally,
                                          ///< skipping the LCS table (dedup)

  // --- wire traffic (encode/decode during reductions and handoffs) ---
  std::uint64_t bytes_encoded = 0;
  std::uint64_t bytes_decoded = 0;

  // --- per-phase CPU seconds (filled by the owning tool at report time) ---
  double intra_seconds = 0.0;
  double inter_seconds = 0.0;
  double clustering_seconds = 0.0;

  void add(const PerfCounters& other);
  void reset() { *this = PerfCounters{}; }

  /// Multi-line human-readable summary (the `chamtrace run --perf` block).
  [[nodiscard]] std::string to_string() const;
};

/// Bridge one tool's counters into the ChamScope metrics registry under the
/// documented cham.fold.* / cham.merge.* / cham.wire.* / cham.phase.seconds
/// names, labelled with the tool. Called at report time, never on hot paths.
void export_to_metrics(const PerfCounters& counters,
                       obs::MetricsRegistry& registry, std::string_view tool);

/// Process-wide switch for the hash fast path. Disabling it restores the
/// pre-optimization deep-comparison code paths bit-for-bit — bench_hotpath
/// uses this to measure baseline-vs-optimized on identical inputs, and the
/// byte-identity tests use it to prove both modes produce the same traces.
[[nodiscard]] bool fast_path_enabled();
void set_fast_path_enabled(bool enabled);

}  // namespace cham::trace
