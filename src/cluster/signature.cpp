#include "cluster/signature.hpp"

namespace cham::cluster {

std::uint64_t signature_distance(const RankSignature& a,
                                 const RankSignature& b) {
  const std::uint64_t ds = a.src > b.src ? a.src - b.src : b.src - a.src;
  const std::uint64_t dd = a.dest > b.dest ? a.dest - b.dest : b.dest - a.dest;
  const std::uint64_t sum = ds + dd;
  return sum < ds ? ~0ull : sum;  // saturate on wrap
}

void IntervalSignature::observe(const trace::EventRecord& event) {
  if (seen_.insert(event.stack_sig).second) {
    order_.push_back(event.stack_sig);
  }
  // The paper notes the SRC/DEST signatures "often cover other parameters
  // as well (e.g., count)": folding the transfer size into the feature
  // separates behaviour groups that share endpoints but differ in message
  // size (remainder blocks), without losing the geometric distance.
  const std::uint64_t size_term = event.bytes / 64;
  if (event.src.kind != trace::Endpoint::Kind::kNone) {
    src_mean_.add(event.src.feature() + size_term);
  }
  if (event.dest.kind != trace::Endpoint::Kind::kNone) {
    dest_mean_.add(event.dest.feature() + size_term);
  }
}

RankSignature IntervalSignature::current() const {
  RankSignature sig;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    sig.callpath ^= order_[i] * static_cast<std::uint64_t>((i % 10) + 1);
  }
  sig.src = src_mean_.mean();
  sig.dest = dest_mean_.mean();
  return sig;
}

void IntervalSignature::reset() {
  order_.clear();
  seen_.clear();
  src_mean_ = {};
  dest_mean_ = {};
}

}  // namespace cham::cluster
