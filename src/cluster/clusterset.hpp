// Cluster maps exchanged over the radix tree.
//
// The clustering reduction of Algorithm 3 ships hashmaps of
// <Call-Path signature, ranklist> up a binomial tree: each internal node
// merges its children's cluster sets with its own, and whenever a Call-Path
// group holds more than its share of the K budget, shrinks it with
// Find-Top-K and folds the dropped clusters into their nearest survivor.
// Every cluster remembers its lead rank (the representative whose trace
// will stand in for the whole group) and the lead's SRC/DEST signature
// ("signature of head of top K clusters" in Algorithm 3).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/select.hpp"
#include "cluster/signature.hpp"
#include "trace/ranklist.hpp"
#include "trace/serialize.hpp"

namespace cham::cluster {

struct ClusterEntry {
  sim::Rank lead = 0;
  trace::RankList members;
  /// SRC/DEST signature of the lead process.
  std::uint64_t src = 0;
  std::uint64_t dest = 0;

  [[nodiscard]] RankSignature signature(std::uint64_t callpath) const {
    return RankSignature{callpath, src, dest};
  }

  bool operator==(const ClusterEntry& other) const = default;
};

class ClusterSet {
 public:
  ClusterSet() = default;

  /// The leaf contribution: one singleton cluster for `rank`.
  static ClusterSet leaf(sim::Rank rank, const RankSignature& sig);

  /// Concatenate another set's entries per Call-Path (no shrinking).
  void absorb(const ClusterSet& other);

  /// Enforce the K budget: each Call-Path group keeps at most
  /// max(1, k_total / num_callpaths) clusters; dropped clusters merge into
  /// their nearest kept cluster. If the number of Call-Paths exceeds
  /// k_total, K effectively grows to one per Call-Path (the paper's dynamic
  /// K increase). Returns the effective total cluster count.
  std::size_t shrink(std::size_t k_total, SelectPolicy policy,
                     std::uint64_t seed = 0);

  [[nodiscard]] std::size_t num_callpaths() const { return groups_.size(); }
  [[nodiscard]] std::size_t total_clusters() const;
  [[nodiscard]] std::size_t total_members() const;

  /// All lead ranks, ascending.
  [[nodiscard]] std::vector<sim::Rank> leads() const;

  /// The cluster containing `rank`, or nullptr.
  [[nodiscard]] const ClusterEntry* cluster_of(sim::Rank rank) const;

  [[nodiscard]] const std::map<std::uint64_t, std::vector<ClusterEntry>>&
  groups() const {
    return groups_;
  }

  /// Mutable access for in-place repair (lead failover re-points a dead
  /// cluster lead at a surviving member without re-running the reduction).
  [[nodiscard]] std::map<std::uint64_t, std::vector<ClusterEntry>>&
  groups_mutable() {
    return groups_;
  }

  /// Wire format for the tree exchange and the final broadcast.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static ClusterSet decode(const std::vector<std::uint8_t>& bytes);

  [[nodiscard]] std::string to_string() const;

  bool operator==(const ClusterSet& other) const = default;

 private:
  std::map<std::uint64_t, std::vector<ClusterEntry>> groups_;
};

}  // namespace cham::cluster
