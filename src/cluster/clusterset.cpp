#include "cluster/clusterset.hpp"

#include <algorithm>
#include <sstream>

#include "support/logging.hpp"

namespace cham::cluster {

ClusterSet ClusterSet::leaf(sim::Rank rank, const RankSignature& sig) {
  ClusterSet set;
  ClusterEntry entry;
  entry.lead = rank;
  entry.members = trace::RankList::single(rank);
  entry.src = sig.src;
  entry.dest = sig.dest;
  set.groups_[sig.callpath].push_back(std::move(entry));
  return set;
}

void ClusterSet::absorb(const ClusterSet& other) {
  for (const auto& [callpath, entries] : other.groups_) {
    auto& mine = groups_[callpath];
    mine.insert(mine.end(), entries.begin(), entries.end());
  }
}

std::size_t ClusterSet::shrink(std::size_t k_total, SelectPolicy policy,
                               std::uint64_t seed) {
  CHAM_CHECK_MSG(k_total >= 1, "cluster budget must be positive");
  // Dynamic K: at least one representative per Call-Path group, so no MPI
  // event class is ever dropped from the global trace.
  const std::size_t per_group =
      std::max<std::size_t>(1, k_total / std::max<std::size_t>(1, groups_.size()));

  for (auto& [callpath, entries] : groups_) {
    if (entries.size() <= per_group) continue;

    std::vector<RankSignature> points;
    points.reserve(entries.size());
    for (const auto& entry : entries) points.push_back(entry.signature(callpath));

    const std::vector<std::size_t> picked =
        find_top_k(points, per_group, policy, seed ^ callpath);

    // Fold every dropped cluster into its nearest survivor.
    std::vector<ClusterEntry> kept;
    kept.reserve(picked.size());
    for (std::size_t idx : picked) kept.push_back(std::move(entries[idx]));
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (std::find(picked.begin(), picked.end(), i) != picked.end()) continue;
      const std::size_t target = nearest_pick(points, picked, points[i]);
      kept[target].members.merge(entries[i].members);
    }
    entries = std::move(kept);
  }
  return total_clusters();
}

std::size_t ClusterSet::total_clusters() const {
  std::size_t n = 0;
  for (const auto& [callpath, entries] : groups_) n += entries.size();
  return n;
}

std::size_t ClusterSet::total_members() const {
  std::size_t n = 0;
  for (const auto& [callpath, entries] : groups_)
    for (const auto& entry : entries) n += entry.members.count();
  return n;
}

std::vector<sim::Rank> ClusterSet::leads() const {
  std::vector<sim::Rank> out;
  for (const auto& [callpath, entries] : groups_)
    for (const auto& entry : entries) out.push_back(entry.lead);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const ClusterEntry* ClusterSet::cluster_of(sim::Rank rank) const {
  for (const auto& [callpath, entries] : groups_)
    for (const auto& entry : entries)
      if (entry.members.contains(rank)) return &entry;
  return nullptr;
}

std::vector<std::uint8_t> ClusterSet::encode() const {
  trace::ByteWriter w;
  std::size_t hint = 4;
  for (const auto& [callpath, entries] : groups_) {
    hint += 8 + 4;
    for (const auto& entry : entries)
      hint += 4 + 8 + 8 + trace::encoded_size_hint(entry.members);
  }
  w.reserve(hint);
  w.u32(static_cast<std::uint32_t>(groups_.size()));
  for (const auto& [callpath, entries] : groups_) {
    w.u64(callpath);
    // u32 entry count: a 64k-rank world can legitimately hold more than
    // 65535 per-callpath clusters before the shrink step folds them.
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& entry : entries) {
      w.i32(entry.lead);
      w.u64(entry.src);
      w.u64(entry.dest);
      trace::encode_ranklist(w, entry.members);
    }
  }
  return w.take();
}

ClusterSet ClusterSet::decode(const std::vector<std::uint8_t>& bytes) {
  trace::ByteReader r(bytes);
  ClusterSet set;
  // Bound both counts by the bytes actually left (callpath+count header per
  // group, lead+src+dest+ranklist header per entry) so hostile length fields
  // throw before the per-group containers grow.
  const std::uint32_t ngroups = r.u32();
  if (ngroups > (1u << 16)) throw trace::DecodeError("cluster group count");
  if (ngroups > r.remaining() / (8 + 4))
    throw trace::DecodeError("cluster group count exceeds buffer");
  for (std::uint32_t g = 0; g < ngroups; ++g) {
    const std::uint64_t callpath = r.u64();
    const std::uint32_t count = r.u32();
    if (count > r.remaining() / (4 + 8 + 8 + 4))
      throw trace::DecodeError("cluster entry count exceeds buffer");
    auto& entries = set.groups_[callpath];
    for (std::uint32_t i = 0; i < count; ++i) {
      ClusterEntry entry;
      entry.lead = r.i32();
      entry.src = r.u64();
      entry.dest = r.u64();
      entry.members = trace::decode_ranklist(r);
      entries.push_back(std::move(entry));
    }
  }
  return set;
}

std::string ClusterSet::to_string() const {
  std::ostringstream os;
  for (const auto& [callpath, entries] : groups_) {
    os << "callpath=0x" << std::hex << callpath << std::dec << ":\n";
    for (const auto& entry : entries) {
      os << "  lead=" << entry.lead << " members=" << entry.members.to_string()
         << " (" << entry.members.count() << " ranks)\n";
    }
  }
  return os.str();
}

}  // namespace cham::cluster
