#include "cluster/select.hpp"

#include <algorithm>
#include <limits>

#include "support/logging.hpp"
#include "support/rng.hpp"

namespace cham::cluster {

const char* policy_name(SelectPolicy policy) {
  switch (policy) {
    case SelectPolicy::kFarthest: return "k-farthest";
    case SelectPolicy::kMedoid: return "k-medoid";
    case SelectPolicy::kRandom: return "k-random";
  }
  return "?";
}

namespace {

std::vector<std::size_t> pick_farthest(std::span<const RankSignature> points,
                                       std::size_t k) {
  const std::size_t n = points.size();
  std::vector<std::size_t> picked;
  picked.reserve(k);
  // Seed with the point of maximal total distance (the "most extreme" one).
  std::size_t best = 0;
  unsigned __int128 best_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    unsigned __int128 total = 0;
    for (std::size_t j = 0; j < n; ++j)
      total += signature_distance(points[i], points[j]);
    if (total > best_total) {
      best_total = total;
      best = i;
    }
  }
  picked.push_back(best);
  // Greedily add the point maximizing its distance to the picked set.
  std::vector<std::uint64_t> dist_to_set(n);
  for (std::size_t i = 0; i < n; ++i)
    dist_to_set[i] = signature_distance(points[i], points[best]);
  while (picked.size() < k) {
    std::size_t farthest = 0;
    std::uint64_t farthest_d = 0;
    bool found = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (std::find(picked.begin(), picked.end(), i) != picked.end()) continue;
      if (!found || dist_to_set[i] > farthest_d) {
        farthest = i;
        farthest_d = dist_to_set[i];
        found = true;
      }
    }
    CHAM_CHECK(found);
    picked.push_back(farthest);
    for (std::size_t i = 0; i < n; ++i) {
      dist_to_set[i] =
          std::min(dist_to_set[i], signature_distance(points[i], points[farthest]));
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

std::vector<std::size_t> pick_medoid(std::span<const RankSignature> points,
                                     std::size_t k) {
  const std::size_t n = points.size();
  // Initialize with the k-farthest picks, then iterate PAM-style: assign
  // every point to its nearest medoid, recompute each cluster's medoid as
  // the member minimizing intra-cluster distance, until stable.
  std::vector<std::size_t> medoids = pick_farthest(points, k);
  for (int round = 0; round < 16; ++round) {
    std::vector<std::vector<std::size_t>> groups(k);
    for (std::size_t i = 0; i < n; ++i) {
      groups[nearest_pick(points, medoids, points[i])].push_back(i);
    }
    bool changed = false;
    for (std::size_t g = 0; g < k; ++g) {
      if (groups[g].empty()) continue;
      std::size_t best = medoids[g];
      unsigned __int128 best_cost = std::numeric_limits<unsigned __int128>::max();
      for (std::size_t candidate : groups[g]) {
        unsigned __int128 cost = 0;
        for (std::size_t member : groups[g])
          cost += signature_distance(points[candidate], points[member]);
        if (cost < best_cost) {
          best_cost = cost;
          best = candidate;
        }
      }
      if (best != medoids[g]) {
        medoids[g] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }
  std::sort(medoids.begin(), medoids.end());
  medoids.erase(std::unique(medoids.begin(), medoids.end()), medoids.end());
  // Deduplication after swaps can shrink the set; refill deterministically.
  for (std::size_t i = 0; medoids.size() < k && i < n; ++i) {
    if (std::find(medoids.begin(), medoids.end(), i) == medoids.end())
      medoids.push_back(i);
  }
  std::sort(medoids.begin(), medoids.end());
  return medoids;
}

std::vector<std::size_t> pick_random(std::size_t n, std::size_t k,
                                     std::uint64_t seed) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  support::Rng rng(seed ^ 0x5eedc105ull);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.next_below(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace

std::vector<std::size_t> find_top_k(std::span<const RankSignature> points,
                                    std::size_t k, SelectPolicy policy,
                                    std::uint64_t seed) {
  CHAM_CHECK_MSG(k >= 1, "find_top_k requires k >= 1");
  if (k >= points.size()) {
    std::vector<std::size_t> all(points.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }
  switch (policy) {
    case SelectPolicy::kFarthest:
      return pick_farthest(points, k);
    case SelectPolicy::kMedoid:
      return pick_medoid(points, k);
    case SelectPolicy::kRandom:
      return pick_random(points.size(), k, seed);
  }
  return {};
}

std::size_t nearest_pick(std::span<const RankSignature> points,
                         std::span<const std::size_t> picked,
                         const RankSignature& point) {
  CHAM_CHECK(!picked.empty());
  std::size_t best = 0;
  std::uint64_t best_d = signature_distance(points[picked[0]], point);
  for (std::size_t i = 1; i < picked.size(); ++i) {
    const std::uint64_t d = signature_distance(points[picked[i]], point);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace cham::cluster
