// Lead selection: Find-Top-K (Algorithm 2) and its clustering policies.
//
// Clustering operates on SRC/DEST signatures, never on traces. The paper's
// Algorithm 2 is K-farthest selection over the distance matrix followed by
// nearest-assignment of the remainder; K-medoid and K-random are the
// alternatives its predecessors ([1],[2],[3]) compared — accuracy was found
// to be nearly identical, which bench_ablation_policy re-checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cluster/signature.hpp"

namespace cham::cluster {

enum class SelectPolicy : std::uint8_t { kFarthest, kMedoid, kRandom };

const char* policy_name(SelectPolicy policy);

/// Pick k representative indices out of `points` (k <= points.size()).
/// Deterministic: ties break toward lower index; kRandom derives from seed.
std::vector<std::size_t> find_top_k(std::span<const RankSignature> points,
                                    std::size_t k, SelectPolicy policy,
                                    std::uint64_t seed = 0);

/// Index (into `picked`) of the pick closest to `point`.
std::size_t nearest_pick(std::span<const RankSignature> points,
                         std::span<const std::size_t> picked,
                         const RankSignature& point);

}  // namespace cham::cluster
