// Per-interval rank signatures: Call-Path, SRC and DEST.
//
// Between two markers every rank folds the events it observes into an
// IntervalSignature. Following §III of the paper:
//
//   * Call-Path = XOR over the *distinct* stack signatures of the interval
//     (n = number of disjoint stack signatures, matching PRSD-compressed
//     events), each multiplied by ((sequence mod 10) + 1) so permuted call
//     sequences and recursion cannot cancel out.
//   * SRC / DEST = the average of the endpoint parameter signatures of the
//     interval's events, computed with an overflow-safe estimation function
//     (support::RunningMean) instead of sum-then-divide.
//
// Ranks that have tracing storage disabled (non-leads in state L) still
// feed this accumulator: signature computation is the cheap "observing"
// half of tracing that must keep running for the collective vote to work.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "support/stats.hpp"
#include "trace/event.hpp"

namespace cham::cluster {

/// The triple the clustering algorithms operate on.
struct RankSignature {
  std::uint64_t callpath = 0;
  std::uint64_t src = 0;
  std::uint64_t dest = 0;

  bool operator==(const RankSignature& other) const = default;
};

/// Distance between two rank signatures for K-farthest / K-medoid: the
/// saturating L1 distance over the SRC/DEST features (Call-Path equality is
/// enforced separately — clustering never mixes call paths).
std::uint64_t signature_distance(const RankSignature& a,
                                 const RankSignature& b);

class IntervalSignature {
 public:
  /// Fold one observed event into the interval.
  void observe(const trace::EventRecord& event);

  /// Number of distinct stack signatures observed (the paper's n).
  [[nodiscard]] std::size_t distinct_events() const { return order_.size(); }

  [[nodiscard]] bool empty() const { return order_.empty(); }

  /// Current (Call-Path, SRC, DEST) triple.
  [[nodiscard]] RankSignature current() const;

  /// Start a new interval.
  void reset();

 private:
  std::vector<std::uint64_t> order_;        // distinct sigs, first-seen order
  std::unordered_set<std::uint64_t> seen_;
  support::RunningMean src_mean_;
  support::RunningMean dest_mean_;
};

}  // namespace cham::cluster
