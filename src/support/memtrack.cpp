#include "support/memtrack.hpp"

#include <array>
#include <cstdio>

namespace cham::support {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

}  // namespace cham::support
