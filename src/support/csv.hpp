// CSV emission for bench results (machine-readable companion to Table).
#pragma once

#include <string>
#include <vector>

namespace cham::support {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> columns);

  void row(const std::vector<std::string>& cells);

  /// Full CSV content including header.
  [[nodiscard]] const std::string& content() const { return buffer_; }

  /// Write to a file; returns false on I/O error.
  [[nodiscard]] bool save(const std::string& path) const;

  static std::string escape(const std::string& cell);

 private:
  std::size_t columns_;
  std::string buffer_;
};

}  // namespace cham::support
