// CPU-time measurement of tool code.
//
// All ranks are fibers on one OS thread and timed sections never block, so
// a section's monotonic elapsed time equals the CPU it consumed: nothing
// else runs while the section executes. CLOCK_MONOTONIC is vDSO-served
// (~20ns/call), an order of magnitude cheaper than thread-CPU clocks —
// essential because the hottest sections measure sub-microsecond work.
// The experiments aggregate these section times across ranks, mirroring
// the paper's aggregated wall-clock.
#pragma once

#include <ctime>

namespace cham::support {

/// Monotonic seconds; inside a non-blocking fiber section this equals the
/// CPU time the section consumed.
inline double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Accumulates CPU time across start/stop sections.
class SectionTimer {
 public:
  void start() { start_ = thread_cpu_seconds(); }
  void stop() { total_ += thread_cpu_seconds() - start_; }
  void reset() { total_ = 0.0; }
  [[nodiscard]] double total() const { return total_; }
  void add(double seconds) { total_ += seconds; }

 private:
  double start_ = 0.0;
  double total_ = 0.0;
};

/// RAII section: accumulates into the given timer.
class TimedSection {
 public:
  explicit TimedSection(SectionTimer& timer) : timer_(timer) { timer_.start(); }
  ~TimedSection() { timer_.stop(); }
  TimedSection(const TimedSection&) = delete;
  TimedSection& operator=(const TimedSection&) = delete;

 private:
  SectionTimer& timer_;
};

}  // namespace cham::support
