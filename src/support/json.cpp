#include "support/json.hpp"

#include <cmath>
#include <cstdio>

#include "support/logging.hpp"

namespace cham::support::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // includes non-ASCII UTF-8 bytes, passed through
        }
    }
  }
  return out;
}

std::string number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  return buf;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void Writer::indent() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

void Writer::prefix(bool is_key) {
  if (stack_.empty()) return;  // top-level value
  Scope& scope = stack_.back();
  if (scope.is_object) {
    if (is_key) {
      CHAM_CHECK_MSG(!scope.expecting_value, "json: key after key");
      if (!scope.first) out_ += ',';
      scope.first = false;
      indent();
    } else {
      CHAM_CHECK_MSG(scope.expecting_value, "json: value in object needs key");
      scope.expecting_value = false;
    }
  } else {
    CHAM_CHECK_MSG(!is_key, "json: key inside array");
    if (!scope.first) out_ += ',';
    scope.first = false;
    indent();
  }
}

Writer& Writer::begin_object() {
  prefix(false);
  out_ += '{';
  stack_.push_back(Scope{.is_object = true});
  return *this;
}

Writer& Writer::end_object() {
  CHAM_CHECK_MSG(!stack_.empty() && stack_.back().is_object &&
                     !stack_.back().expecting_value,
                 "json: unbalanced end_object");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) indent();
  out_ += '}';
  return *this;
}

Writer& Writer::begin_array() {
  prefix(false);
  out_ += '[';
  stack_.push_back(Scope{.is_object = false});
  return *this;
}

Writer& Writer::end_array() {
  CHAM_CHECK_MSG(!stack_.empty() && !stack_.back().is_object,
                 "json: unbalanced end_array");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) indent();
  out_ += ']';
  return *this;
}

Writer& Writer::key(std::string_view k) {
  prefix(true);
  out_ += '"';
  out_ += escape(k);
  out_ += pretty_ ? "\": " : "\":";
  stack_.back().expecting_value = true;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  prefix(false);
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

Writer& Writer::value(bool v) {
  prefix(false);
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::value(double v) {
  prefix(false);
  out_ += number(v);
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  prefix(false);
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  prefix(false);
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::raw(std::string_view token) {
  prefix(false);
  out_ += token;
  return *this;
}

Writer& Writer::null() {
  prefix(false);
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

Value::Value(Array a)
    : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}

Value::Value(Object o)
    : kind_(Kind::kObject), object_(std::make_shared<Object>(std::move(o))) {}

const Array& Value::as_array() const {
  static const Array kEmpty;
  return array_ ? *array_ : kEmpty;
}

const Object& Value::as_object() const {
  static const Object kEmpty;
  return object_ ? *object_ : kEmpty;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto it = as_object().find(key);
  return it == as_object().end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse_document(Value* out) {
    skip_ws();
    Value v;
    if (!parse_value(&v)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    *out = std::move(v);
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (error_ != nullptr)
      *error_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = std::move(s);
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("truncated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case 'r': s += '\r'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("invalid \\u escape");
            }
            // Encode the code point as UTF-8 (surrogate pairs are not
            // combined — validation never inspects those strings).
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("invalid escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character");
      } else {
        s += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value* out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    *out = Value(v);
    return true;
  }

  bool parse_value(Value* out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        Object obj;
        skip_ws();
        if (consume('}')) {
          *out = Value(std::move(obj));
          return true;
        }
        while (true) {
          skip_ws();
          std::string k;
          if (!parse_string(&k)) return false;
          skip_ws();
          if (!consume(':')) return fail("expected ':'");
          Value v;
          if (!parse_value(&v)) return false;
          obj.insert_or_assign(std::move(k), std::move(v));
          skip_ws();
          if (consume(',')) continue;
          if (consume('}')) break;
          return fail("expected ',' or '}'");
        }
        *out = Value(std::move(obj));
        return true;
      }
      case '[': {
        ++pos_;
        Array arr;
        skip_ws();
        if (consume(']')) {
          *out = Value(std::move(arr));
          return true;
        }
        while (true) {
          Value v;
          if (!parse_value(&v)) return false;
          arr.push_back(std::move(v));
          skip_ws();
          if (consume(',')) continue;
          if (consume(']')) break;
          return fail("expected ',' or ']'");
        }
        *out = Value(std::move(arr));
        return true;
      }
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Value(std::move(s));
        return true;
      }
      case 't': return parse_literal("true") && (*out = Value(true), true);
      case 'f': return parse_literal("false") && (*out = Value(false), true);
      case 'n': return parse_literal("null") && (*out = Value{}, true);
      default: return parse_number(out);
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse(std::string_view text, Value* out, std::string* error) {
  Parser parser(text, error);
  Value v;
  if (!parser.parse_document(&v)) return false;
  *out = std::move(v);
  return true;
}

}  // namespace cham::support::json
