// Leveled, structured logging + check macros.
//
// Every message becomes a LogRecord carrying a timestamp, the current
// simulated rank (installed by the engine while fibers run), and the active
// tool name. Records render to stderr as text ("[WARN] rank 3 ...") or,
// under --log-json, as one JSON object per line. An optional observer sees
// every record regardless of format — ChamScope uses it to put log events
// on the timeline.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace cham::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* log_level_name(LogLevel level);

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// One emitted message with its runtime context attached.
struct LogRecord {
  double ts = 0.0;      ///< seconds, monotonic (support::thread_cpu_seconds)
  LogLevel level = LogLevel::kInfo;
  int rank = -1;        ///< simulated rank active when emitted, -1 outside
  std::string tool;     ///< active tool name, empty outside a run
  std::string message;
};

enum class LogFormat { kText, kJson };
void set_log_format(LogFormat format);
LogFormat log_format();

/// Installed by the simulation engine for the duration of a run so records
/// carry the rank whose fiber emitted them. Null = no rank context. The
/// slot is thread-local: concurrent engines (epoch-parallel pilot) each
/// install a provider for their own thread without interfering.
void set_log_rank_provider(std::function<int()> provider);

/// Name of the tool being driven (set by the CLI); attached to records.
void set_log_tool(std::string tool);

/// Sees every record that passes the level filter, before it is printed.
/// Null disables. ChamScope attaches here to emit timeline instants.
void set_log_observer(std::function<void(const LogRecord&)> observer);

void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

[[noreturn]] void fatal(const char* file, int line, const std::string& what);

}  // namespace cham::support

#define CHAM_LOG(level) ::cham::support::detail::LogLine(level)
#define CHAM_INFO() CHAM_LOG(::cham::support::LogLevel::kInfo)
#define CHAM_WARN() CHAM_LOG(::cham::support::LogLevel::kWarn)
#define CHAM_DEBUG() CHAM_LOG(::cham::support::LogLevel::kDebug)

// Invariant check, active in all build types: a tracing tool that silently
// corrupts its trace is worse than one that aborts.
#define CHAM_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::cham::support::fatal(__FILE__, __LINE__, "check failed: " #cond); \
  } while (0)

#define CHAM_CHECK_MSG(cond, msg)                                     \
  do {                                                                \
    if (!(cond))                                                      \
      ::cham::support::fatal(__FILE__, __LINE__,                      \
                             std::string("check failed: " #cond " — ") + \
                                 (msg));                              \
  } while (0)
