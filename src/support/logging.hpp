// Minimal leveled logging + check macros.
#pragma once

#include <sstream>
#include <string>

namespace cham::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

[[noreturn]] void fatal(const char* file, int line, const std::string& what);

}  // namespace cham::support

#define CHAM_LOG(level) ::cham::support::detail::LogLine(level)
#define CHAM_INFO() CHAM_LOG(::cham::support::LogLevel::kInfo)
#define CHAM_WARN() CHAM_LOG(::cham::support::LogLevel::kWarn)
#define CHAM_DEBUG() CHAM_LOG(::cham::support::LogLevel::kDebug)

// Invariant check, active in all build types: a tracing tool that silently
// corrupts its trace is worse than one that aborts.
#define CHAM_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::cham::support::fatal(__FILE__, __LINE__, "check failed: " #cond); \
  } while (0)

#define CHAM_CHECK_MSG(cond, msg)                                     \
  do {                                                                \
    if (!(cond))                                                      \
      ::cham::support::fatal(__FILE__, __LINE__,                      \
                             std::string("check failed: " #cond " — ") + \
                                 (msg));                              \
  } while (0)
