// Fixed-bin histogram for delta times.
//
// ScalaTrace stores the computation time between consecutive MPI events of a
// folded loop as a histogram rather than a scalar ([27] in the paper:
// "delta times are represented in histograms for repetitive signatures").
// This lets load-imbalanced codes (Sweep3D) compress without losing the
// timing distribution the replayer needs.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace cham::support {

class Histogram {
 public:
  static constexpr int kBins = 16;

  Histogram() = default;

  /// Record a sample (seconds, or any non-negative quantity).
  void add(double value);

  /// Merge another histogram (used when loop iterations fold and when
  /// inter-node merging unions events across ranks).
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double total() const { return sum_; }

  /// Count in bin i of the current [min,max] range.
  [[nodiscard]] std::uint64_t bin(int i) const { return bins_.at(static_cast<std::size_t>(i)); }

  /// Draw a representative sample for replay: the mean of the distribution.
  /// (ScalaReplay replays average delays; we keep the same policy.)
  [[nodiscard]] double representative() const { return mean(); }

  /// Approximate p-quantile (p in [0,1]) from the binned counts, using the
  /// upper edge of the bin containing the p-th sample. Empty histogram → 0;
  /// p is clamped into [0,1].
  [[nodiscard]] double percentile(double p) const;

  /// Approximate serialized footprint in bytes (for space accounting).
  [[nodiscard]] static constexpr std::size_t footprint_bytes() {
    return sizeof(std::uint64_t) * (kBins + 1) + sizeof(double) * 3;
  }

  [[nodiscard]] std::string to_string() const;

  bool operator==(const Histogram& other) const;

  /// Exact reconstruction from serialized state (trace deserialization).
  static Histogram from_raw(const std::array<std::uint64_t, kBins>& bins,
                            std::uint64_t count, double min, double max,
                            double sum);
  [[nodiscard]] const std::array<std::uint64_t, kBins>& raw_bins() const {
    return bins_;
  }

 private:
  void rebin(double new_min, double new_max);
  [[nodiscard]] int bin_index(double value) const;

  std::array<std::uint64_t, kBins> bins_{};
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace cham::support
