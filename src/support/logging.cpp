#include "support/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "support/json.hpp"
#include "support/timer.hpp"

namespace cham::support {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogFormat> g_format{LogFormat::kText};
// Thread-local, not global: the provider answers "which rank is running on
// THIS thread". Under the epoch-parallel pilot each worker thread hosts its
// own engine, and a shared slot would be both a data race (caught by the
// CHAM_TSAN leg) and the wrong answer for every thread but the last writer.
thread_local std::function<int()> g_rank_provider;
std::string g_tool;
std::function<void(const LogRecord&)> g_observer;
}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_format(LogFormat format) { g_format.store(format); }
LogFormat log_format() { return g_format.load(); }

void set_log_rank_provider(std::function<int()> provider) {
  g_rank_provider = std::move(provider);
}

void set_log_tool(std::string tool) { g_tool = std::move(tool); }

void set_log_observer(std::function<void(const LogRecord&)> observer) {
  g_observer = std::move(observer);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;

  LogRecord record;
  record.ts = thread_cpu_seconds();
  record.level = level;
  record.rank = g_rank_provider ? g_rank_provider() : -1;
  record.tool = g_tool;
  record.message = message;

  if (g_observer) g_observer(record);

  if (g_format.load() == LogFormat::kJson) {
    json::Writer w(/*pretty=*/false);
    w.begin_object();
    w.member("ts", record.ts);
    w.member("level", log_level_name(level));
    if (record.rank >= 0) w.member("rank", record.rank);
    if (!record.tool.empty()) w.member("tool", record.tool);
    w.member("msg", record.message);
    w.end_object();
    std::fprintf(stderr, "%s\n", w.str().c_str());
  } else if (record.rank >= 0) {
    std::fprintf(stderr, "[%s] [t=%.6f rank %d] %s\n", log_level_name(level),
                 record.ts, record.rank, message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", log_level_name(level), message.c_str());
  }
}

void fatal(const char* file, int line, const std::string& what) {
  std::fprintf(stderr, "[FATAL] %s:%d: %s\n", file, line, what.c_str());
  // Throwing lets tests assert on invariant violations via EXPECT_THROW
  // instead of killing the process; benches/examples do not catch it, so
  // there it still terminates with a message.
  throw std::logic_error(what);
}

}  // namespace cham::support
