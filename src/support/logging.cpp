#include "support/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cham::support {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

void fatal(const char* file, int line, const std::string& what) {
  std::fprintf(stderr, "[FATAL] %s:%d: %s\n", file, line, what.c_str());
  // Throwing lets tests assert on invariant violations via EXPECT_THROW
  // instead of killing the process; benches/examples do not catch it, so
  // there it still terminates with a message.
  throw std::logic_error(what);
}

}  // namespace cham::support
