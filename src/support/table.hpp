// Plain-text table rendering for bench output.
//
// Benches print the same rows the paper's tables/figures report; this keeps
// the formatting logic out of every bench binary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cham::support {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cells);
  Table& row(std::vector<std::string> cells);

  /// Render with column widths fitted to content.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string percent(double fraction, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cham::support
