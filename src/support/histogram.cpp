#include "support/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cham::support {

int Histogram::bin_index(double value) const {
  if (max_ <= min_) return 0;
  const double t = (value - min_) / (max_ - min_);
  const int idx = static_cast<int>(t * kBins);
  return std::clamp(idx, 0, kBins - 1);
}

void Histogram::rebin(double new_min, double new_max) {
  if (count_ == 0) {
    min_ = new_min;
    max_ = new_max;
    return;
  }
  if (new_min >= min_ && new_max <= max_) return;
  // Redistribute existing counts into the widened range using bin centers.
  std::array<std::uint64_t, kBins> old = bins_;
  const double old_min = min_;
  const double old_span = max_ - min_;
  min_ = std::min(min_, new_min);
  max_ = std::max(max_, new_max);
  bins_.fill(0);
  for (int i = 0; i < kBins; ++i) {
    if (old[static_cast<std::size_t>(i)] == 0) continue;
    const double center =
        old_span > 0
            ? old_min + (static_cast<double>(i) + 0.5) * old_span / kBins
            : old_min;
    bins_[static_cast<std::size_t>(bin_index(center))] += old[static_cast<std::size_t>(i)];
  }
}

void Histogram::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else if (value < min_ || value > max_) {
    rebin(std::min(min_, value), std::max(max_, value));
  }
  bins_[static_cast<std::size_t>(bin_index(value))] += 1;
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  rebin(std::min(min_, other.min_), std::max(max_, other.max_));
  const double other_span = other.max_ - other.min_;
  for (int i = 0; i < kBins; ++i) {
    const std::uint64_t c = other.bins_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    const double center =
        other_span > 0
            ? other.min_ + (static_cast<double>(i) + 0.5) * other_span / kBins
            : other.min_;
    bins_[static_cast<std::size_t>(bin_index(center))] += c;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  const double span = max_ - min_;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBins; ++i) {
    seen += bins_[static_cast<std::size_t>(i)];
    if (static_cast<double>(seen) >= target)
      return span > 0
                 ? min_ + (static_cast<double>(i) + 1.0) * span / kBins
                 : min_;
  }
  return max_;
}

bool Histogram::operator==(const Histogram& other) const {
  return bins_ == other.bins_ && count_ == other.count_ && min_ == other.min_ &&
         max_ == other.max_ && sum_ == other.sum_;
}

Histogram Histogram::from_raw(const std::array<std::uint64_t, kBins>& bins,
                              std::uint64_t count, double min, double max,
                              double sum) {
  Histogram h;
  h.bins_ = bins;
  h.count_ = count;
  h.min_ = min;
  h.max_ = max;
  h.sum_ = sum;
  return h;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  os << "hist{n=" << count_ << " min=" << min_ << " max=" << max_
     << " mean=" << mean() << "}";
  return os.str();
}

}  // namespace cham::support
