#include "support/stats.hpp"

#include <cmath>

namespace cham::support {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace cham::support
