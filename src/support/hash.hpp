// 64-bit hashing primitives used for stack signatures and event identity.
//
// All hashes here are deterministic across runs and platforms: they feed the
// Call-Path / SRC / DEST signatures that Chameleon's collective vote compares
// across ranks, so any nondeterminism would break clustering.
#pragma once

#include <cstdint>
#include <string_view>

namespace cham::support {

/// FNV-1a 64-bit over raw bytes.
constexpr std::uint64_t fnv1a64(const void* data, std::size_t len,
                                std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// splitmix64 finalizer — strong avalanche for composing word-sized values.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-sensitive combination of two 64-bit hashes.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4)));
}

}  // namespace cham::support
