// Byte accounting for trace storage.
//
// Table IV of the paper reports per-state allocated trace bytes per rank.
// Every trace buffer charges its footprint to the owning rank's MemTracker;
// the Chameleon state machine snapshots the tracker when entering/leaving
// AT/C/L/F so the bench can reproduce the table.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

namespace cham::support {

class MemTracker {
 public:
  void charge(std::int64_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
    if (bytes > 0) allocated_total_ += static_cast<std::uint64_t>(bytes);
  }

  void reset() {
    current_ = 0;
    peak_ = 0;
    allocated_total_ = 0;
  }

  [[nodiscard]] std::int64_t current() const { return current_; }
  [[nodiscard]] std::int64_t peak() const { return peak_; }
  [[nodiscard]] std::uint64_t allocated_total() const { return allocated_total_; }

 private:
  std::int64_t current_ = 0;
  std::int64_t peak_ = 0;
  std::uint64_t allocated_total_ = 0;
};

/// Scoped charge: charges on construction, refunds on destruction.
class ScopedCharge {
 public:
  ScopedCharge(MemTracker& tracker, std::int64_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    tracker_.charge(bytes_);
  }
  ~ScopedCharge() { tracker_.charge(-bytes_); }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

 private:
  MemTracker& tracker_;
  std::int64_t bytes_;
};

std::string format_bytes(std::uint64_t bytes);

}  // namespace cham::support
