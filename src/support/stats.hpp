// Streaming statistics.
//
// RunningMean implements the overflow-safe "estimation function" the paper
// relies on for SRC/DEST signatures (§III: "aggregating event values and then
// taking the average could result in an overflow, [so] we utilized an
// estimation function"): the mean is updated incrementally instead of
// sum-then-divide. RunningStats adds Welford variance for benchmark reports.
#pragma once

#include <cstdint>
#include <limits>

namespace cham::support {

/// Incremental mean over 64-bit unsigned samples without overflow.
class RunningMean {
 public:
  void add(std::uint64_t value) {
    ++count_;
    // mean += (value - mean) / count, done in signed 128-bit-free arithmetic:
    // split into quotient and remainder to stay exact for integer streams.
    if (value >= mean_) {
      mean_ += (value - mean_) / count_ + correction(value - mean_);
    } else {
      mean_ -= (mean_ - value) / count_ + correction(mean_ - value);
    }
  }

  [[nodiscard]] std::uint64_t mean() const { return mean_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Merge another running mean (weighted), still overflow-safe.
  void merge(const RunningMean& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    // Weighted average via incremental steps of the coarser stream.
    const std::uint64_t total = count_ + other.count_;
    // mean = mean + (other.mean - mean) * other.count / total
    if (other.mean_ >= mean_) {
      const std::uint64_t d = other.mean_ - mean_;
      mean_ += mul_div(d, other.count_, total);
    } else {
      const std::uint64_t d = mean_ - other.mean_;
      mean_ -= mul_div(d, other.count_, total);
    }
    count_ = total;
  }

 private:
  // Carry sub-integer residue so long streams do not drift; residue is kept
  // in units of 1/count and folded in once it exceeds one.
  std::uint64_t correction(std::uint64_t delta) {
    residue_ += delta % count_;
    if (residue_ >= count_) {
      residue_ -= count_;
      return 1;
    }
    return 0;
  }

  static std::uint64_t mul_div(std::uint64_t value, std::uint64_t num,
                               std::uint64_t den) {
    // value * num / den without overflow via __int128 (GCC/Clang).
    return static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(value) * num / den);
  }

  std::uint64_t mean_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t residue_ = 0;
};

/// Welford mean/variance/min/max over doubles.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace cham::support
