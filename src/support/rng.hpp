// Deterministic pseudo-random number generator (xoshiro256**).
//
// Workload generators use this instead of std::mt19937 so that trace
// contents are bit-identical across runs and standard-library versions.
#pragma once

#include <cstdint>

#include "support/hash.hpp"

namespace cham::support {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) {
    // Seed the four lanes through splitmix64 so a zero seed is safe.
    for (auto& lane : s_) {
      seed = mix64(seed);
      lane = seed;
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace cham::support
