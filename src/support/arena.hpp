// Chunked bump allocator with bulk teardown.
//
// ChamScale's intern table stores every distinct ranklist's run vector for
// the lifetime of a run; allocating those out of the general heap at 64k
// ranks means millions of small allocations that are only ever freed all at
// once. The arena trades individual deallocation away: allocate() is a
// pointer bump, reset() returns every chunk in one sweep, and the stats
// feed bench_scale's memory accounting.
//
// Ownership rule (DESIGN.md "Arena ownership"): objects placed in an arena
// must be trivially destructible OR the owner must run their destructors
// before reset() — the arena never calls destructors itself. The ranklist
// interner satisfies this by storing runs as trailing arrays of a POD
// header, so reset() is safe without any destructor pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace cham::support {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` with the given alignment (power of two).
  /// Requests larger than the chunk size get a dedicated chunk.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    std::uintptr_t p = (cursor_ + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    if (p + bytes > limit_) {
      grow(bytes + align);
      p = (cursor_ + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    }
    cursor_ = p + bytes;
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  template <typename T>
  T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Drop every chunk at once. Invalidates all outstanding pointers; the
  /// caller owns the proof that none are live (see header comment).
  void reset() {
    chunks_.clear();
    cursor_ = 0;
    limit_ = 0;
    bytes_allocated_ = 0;
    bytes_reserved_ = 0;
  }

  [[nodiscard]] std::size_t bytes_allocated() const { return bytes_allocated_; }
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

 private:
  void grow(std::size_t at_least) {
    const std::size_t size = at_least > chunk_bytes_ ? at_least : chunk_bytes_;
    chunks_.push_back(std::make_unique<std::byte[]>(size));
    cursor_ = reinterpret_cast<std::uintptr_t>(chunks_.back().get());
    limit_ = cursor_ + size;
    bytes_reserved_ += size;
  }

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace cham::support
