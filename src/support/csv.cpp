#include "support/csv.hpp"

#include <fstream>

namespace cham::support {

CsvWriter::CsvWriter(std::vector<std::string> columns)
    : columns_(columns.size()) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) buffer_ += ',';
    buffer_ += escape(columns[i]);
  }
  buffer_ += '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < columns_; ++i) {
    if (i) buffer_ += ',';
    if (i < cells.size()) buffer_ += escape(cells[i]);
  }
  buffer_ += '\n';
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << buffer_;
  return static_cast<bool>(out);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace cham::support
