// Shared JSON emission and a minimal parser.
//
// Every JSON producer in the tree (chamlint --json, bench_hotpath reports,
// the ChamScope metrics/timeline exporters) goes through Writer so string
// escaping and number formatting are implemented exactly once. The parser
// is deliberately small — just enough to load a document back into a Value
// tree so tools/tests can validate structure (chamtrace validate,
// tools/check.sh) without an external JSON dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cham::support::json {

/// Escape `s` for inclusion inside a JSON string literal (quotes are not
/// added). Control characters become \uXXXX; non-ASCII bytes pass through
/// unchanged (JSON is UTF-8 on the wire).
std::string escape(std::string_view s);

/// Render a double as a JSON number token. Non-finite values have no JSON
/// representation and are emitted as 0 (observability output must never
/// produce an unparseable document).
std::string number(double value);

/// Streaming JSON writer with automatic comma/indent management.
///
///   Writer w;
///   w.begin_object();
///   w.member("schema", "chameleon.metrics.v1");
///   w.key("values").begin_array();
///   w.value(1.5).value("x");
///   w.end_array().end_object();
///   w.str();  // the finished document
class Writer {
 public:
  /// `pretty` adds newlines and two-space indentation.
  explicit Writer(bool pretty = true) : pretty_(pretty) {}

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Object member key; must be followed by a value or container.
  Writer& key(std::string_view k);

  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(bool v);
  Writer& value(double v);
  Writer& value(std::uint64_t v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  /// A pre-rendered JSON token spliced in verbatim (no quoting/escaping).
  Writer& raw(std::string_view token);
  Writer& null();

  template <typename T>
  Writer& member(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// The document so far. Valid once every container has been closed.
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void prefix(bool is_key);
  void indent();

  struct Scope {
    bool is_object = false;
    bool first = true;
    bool expecting_value = false;  ///< a key was written, value pending
  };

  std::string out_;
  std::vector<Scope> stack_;
  bool pretty_;
};

// --- minimal parser (validation only) --------------------------------------

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value, std::less<>>;

/// A parsed JSON value. Numbers are held as double — sufficient for the
/// validation use cases (timestamps, counters below 2^53).
class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double d) : kind_(Kind::kNumber), num_(d) {}
  explicit Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  explicit Value(Array a);
  explicit Value(Object o);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  /// Indirect so Value stays movable despite the recursive containers.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parse a complete JSON document. Returns false and fills `error` (with a
/// byte offset) on malformed input; `out` is untouched in that case.
bool parse(std::string_view text, Value* out, std::string* error);

}  // namespace cham::support::json
