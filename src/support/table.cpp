#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cham::support {

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::render() const {
  std::vector<std::size_t> widths;
  auto fit = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  fit(header_);
  for (const auto& r : rows_) fit(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&os, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << c << std::string(widths[i] - c.size() + 2, ' ');
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Table::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace cham::support
