// Write-ahead journal of per-epoch protocol deltas.
//
// Between snapshots every committed epoch appends to `journal.bin`: first
// one RankRecord per live rank (each written by its owning fiber before the
// epoch's closing barrier), then a single EpochDelta written by the home
// rank — the commit marker. Recovery replays deltas in file order on top of
// the last snapshot; an epoch whose delta never hit the disk is simply not
// part of the run. The final frame of a SIGKILL'd journal may be torn —
// that exact case (clean truncation mid-frame) is tolerated and reported;
// every other inconsistency (checksum, type, magic, mid-file damage) is a
// typed trace::DecodeError.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "durable/snapshot.hpp"

namespace cham::durable {

inline constexpr std::uint16_t kJournalVersion = 1;

enum class RecordType : std::uint8_t {
  kRankRecord = 1,
  kEpochDelta = 2,
};

/// The home rank's per-epoch commit record: everything the global protocol
/// state gained this epoch. Counters are absolute (not increments) so a
/// replayed prefix is insensitive to where the snapshot cut the journal.
struct EpochDelta {
  std::uint64_t epoch = 0;
  bool final_epoch = false;  ///< finalize flush, not a marker epoch
  std::uint8_t state = 0;    ///< MarkerState after the vote
  std::uint8_t action = 0;   ///< MarkerAction taken
  /// GAP nodes emitted for leads that died this epoch (pre-interval).
  std::vector<std::uint8_t> gaps_wire;
  /// encode_trace() of the merged interval handed to append_online.
  std::vector<std::uint8_t> interval_wire;
  /// ClusterSet::encode() of the table after this epoch (may be empty).
  std::vector<std::uint8_t> clusters_wire;
  std::array<std::uint64_t, 4> state_counts{};  ///< cumulative AT/C/L/F
  std::uint64_t effective_k = 0;
  std::uint64_t num_callpaths = 0;
  /// Ranks that participated; recovery requires a same-epoch RankRecord for
  /// each before accepting the delta as committed.
  std::vector<std::int32_t> live;
};

std::vector<std::uint8_t> encode_epoch_delta(const EpochDelta& delta);
EpochDelta decode_epoch_delta(const std::vector<std::uint8_t>& bytes);

/// One parsed journal frame.
struct JournalRecord {
  RecordType type = RecordType::kRankRecord;
  std::vector<std::uint8_t> payload;
};

struct JournalImage {
  std::uint16_t version = 0;
  std::uint64_t config_digest = 0;
  std::vector<JournalRecord> records;
  /// True when the file ended mid-frame (interrupted append). The torn
  /// frame is dropped; everything before it is intact and checksummed.
  bool torn_tail = false;
};

/// Parse a raw journal file image. `expect_digest` != 0 pins the config
/// digest. Throws trace::DecodeError on header or mid-file corruption.
JournalImage parse_journal(const std::vector<std::uint8_t>& bytes,
                           std::uint64_t expect_digest);

/// Header-only image for a fresh journal file.
std::vector<std::uint8_t> journal_header(std::uint64_t config_digest);

/// Frame a record for appending: magic, type, length, checksum, payload.
std::vector<std::uint8_t> frame_record(RecordType type,
                                       const std::vector<std::uint8_t>& payload);

/// Append-only journal file handle with explicit sync points.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Create/truncate `path` with a fresh header (fsynced).
  void create(const std::string& path, std::uint64_t config_digest);
  /// Reopen an existing journal for appending (no header rewrite).
  void open_append(const std::string& path);
  void append(RecordType type, const std::vector<std::uint8_t>& payload);
  /// fsync the journal fd — the epoch commit point.
  void sync();
  void close();
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }
  [[nodiscard]] std::uint64_t syncs() const { return syncs_; }

 private:
  int fd_ = -1;
  std::uint64_t bytes_ = 0;
  std::uint64_t syncs_ = 0;
};

}  // namespace cham::durable
