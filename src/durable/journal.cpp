#include "durable/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

#include "durable/wire.hpp"
#include "support/hash.hpp"

namespace cham::durable {

namespace {

// Frame layout: magic u32, type u8, payload_len u64, checksum u64, payload.
constexpr std::uint32_t kFrameMagic = 0x524A4843;  // "CHJR"
constexpr std::size_t kFrameHeader = 4 + 1 + 8 + 8;
// Journal header: magic u32, version u16, config_digest u64.
constexpr std::size_t kJournalHeader = 4 + 2 + 8;

constexpr std::size_t kMinLiveBytes = 4;

[[noreturn]] void throw_sys(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

std::vector<std::uint8_t> encode_epoch_delta(const EpochDelta& delta) {
  trace::ByteWriter w;
  w.u64(delta.epoch);
  w.u8(delta.final_epoch ? 1 : 0);
  w.u8(delta.state);
  w.u8(delta.action);
  put_blob(w, delta.gaps_wire);
  put_blob(w, delta.interval_wire);
  put_blob(w, delta.clusters_wire);
  for (const std::uint64_t c : delta.state_counts) w.u64(c);
  w.u64(delta.effective_k);
  w.u64(delta.num_callpaths);
  w.u32(static_cast<std::uint32_t>(delta.live.size()));
  for (const std::int32_t rank : delta.live) w.i32(rank);
  return w.take();
}

EpochDelta decode_epoch_delta(const std::vector<std::uint8_t>& bytes) {
  trace::ByteReader r(bytes);
  EpochDelta delta;
  delta.epoch = r.u64();
  delta.final_epoch = r.u8() != 0;
  delta.state = r.u8();
  delta.action = r.u8();
  delta.gaps_wire = get_blob(r);
  delta.interval_wire = get_blob(r);
  delta.clusters_wire = get_blob(r);
  for (std::uint64_t& c : delta.state_counts) c = r.u64();
  delta.effective_k = r.u64();
  delta.num_callpaths = r.u64();
  const std::uint32_t nlive = r.u32();
  if (nlive > r.remaining() / kMinLiveBytes)
    throw trace::DecodeError("epoch delta live count exceeds buffer");
  delta.live.reserve(nlive);
  for (std::uint32_t i = 0; i < nlive; ++i) delta.live.push_back(r.i32());
  if (!r.exhausted())
    throw trace::DecodeError("epoch delta has trailing bytes");
  return delta;
}

std::vector<std::uint8_t> journal_header(std::uint64_t config_digest) {
  trace::ByteWriter w;
  w.u32(kJournalMagic);
  w.u16(kJournalVersion);
  w.u64(config_digest);
  return w.take();
}

std::vector<std::uint8_t> frame_record(
    RecordType type, const std::vector<std::uint8_t>& payload) {
  trace::ByteWriter w;
  w.reserve(kFrameHeader + payload.size());
  w.u32(kFrameMagic);
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(payload.size());
  w.u64(support::fnv1a64(payload.data(), payload.size()));
  w.bytes(payload.data(), payload.size());
  return w.take();
}

JournalImage parse_journal(const std::vector<std::uint8_t>& bytes,
                           std::uint64_t expect_digest) {
  if (bytes.size() < kJournalHeader)
    throw trace::DecodeError("journal: header truncated");
  trace::ByteReader r(bytes);
  if (r.u32() != kJournalMagic)
    throw trace::DecodeError("journal: bad magic");
  JournalImage image;
  image.version = r.u16();
  if (image.version == 0 || image.version > kJournalVersion)
    throw trace::DecodeError("journal: unsupported format version " +
                             std::to_string(image.version));
  image.config_digest = r.u64();
  if (expect_digest != 0 && image.config_digest != expect_digest)
    throw trace::DecodeError("journal: config digest mismatch");
  while (!r.exhausted()) {
    // A frame cut short by SIGKILL is a clean end of journal; anything that
    // parses past the header but fails verification is corruption.
    if (r.remaining() < kFrameHeader) {
      image.torn_tail = true;
      break;
    }
    if (r.u32() != kFrameMagic)
      throw trace::DecodeError("journal: bad record magic");
    const std::uint8_t type = r.u8();
    if (type != static_cast<std::uint8_t>(RecordType::kRankRecord) &&
        type != static_cast<std::uint8_t>(RecordType::kEpochDelta))
      throw trace::DecodeError("journal: unknown record type");
    const std::uint64_t len = r.u64();
    const std::uint64_t sum = r.u64();
    if (len > r.remaining()) {
      image.torn_tail = true;
      break;
    }
    JournalRecord rec;
    rec.type = static_cast<RecordType>(type);
    rec.payload = r.raw(static_cast<std::size_t>(len));
    if (support::fnv1a64(rec.payload.data(), rec.payload.size()) != sum)
      throw trace::DecodeError("journal: record checksum mismatch");
    image.records.push_back(std::move(rec));
  }
  return image;
}

JournalWriter::~JournalWriter() { close(); }

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(other.fd_), bytes_(other.bytes_), syncs_(other.syncs_) {
  other.fd_ = -1;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    bytes_ = other.bytes_;
    syncs_ = other.syncs_;
    other.fd_ = -1;
  }
  return *this;
}

void JournalWriter::create(const std::string& path,
                           std::uint64_t config_digest) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) throw_sys("open journal: " + path);
  bytes_ = 0;
  const auto header = journal_header(config_digest);
  std::size_t off = 0;
  while (off < header.size()) {
    const ssize_t n = ::write(fd_, header.data() + off, header.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_sys("write journal header: " + path);
    }
    off += static_cast<std::size_t>(n);
  }
  bytes_ += header.size();
  sync();
}

void JournalWriter::open_append(const std::string& path) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) throw_sys("open journal for append: " + path);
  bytes_ = 0;
}

void JournalWriter::append(RecordType type,
                           const std::vector<std::uint8_t>& payload) {
  const auto frame = frame_record(type, payload);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_sys("append journal record");
    }
    off += static_cast<std::size_t>(n);
  }
  bytes_ += frame.size();
}

void JournalWriter::sync() {
  if (fd_ < 0) return;
  if (::fsync(fd_) != 0) throw_sys("fsync journal");
  ++syncs_;
}

void JournalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace cham::durable
